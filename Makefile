# Targets mirror .github/workflows/ci.yml so contributors run exactly
# what CI runs.

GO ?= go

.PHONY: build test test-short bench fmt vet ci

build:
	$(GO) build ./...

## test runs the full suite, including the slow paper-artifact
## simulations (~30 s).
test:
	$(GO) test ./...

## test-short is the CI test job: race detector on, slow suites skipped.
test-short:
	$(GO) test -race -short ./...

## bench runs the medium micro-benchmarks (naive vs spatial grid).
bench:
	$(GO) test -bench=BenchmarkMedium -benchmem -run='^$$' ./internal/mac

fmt:
	$(GO) fmt ./...

vet:
	$(GO) vet ./...

## ci is the whole pipeline: build, formatting gate, vet, short tests,
## and a single-iteration benchmark smoke run.
ci: build
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; fi
	$(GO) vet ./...
	$(GO) test -race -short ./...
	$(GO) test -bench=BenchmarkMedium -benchtime=1x -run='^$$' ./internal/mac
