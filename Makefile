# Targets mirror .github/workflows/ci.yml so contributors run exactly
# what CI runs.

GO ?= go
# bash + pipefail so `go test | tee` pipelines fail when go test fails.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -c

# Benchmarks under the CI regression gate (spanner construction + MAC
# medium + dense node-state plane + beacon tick + the event-core
# scheduler pair + the parallel Runner sweep + the serial/sharded
# world-step pair + the per-plane WorldStep{Beacon,Mobility,AntiEntropy}
# benchmarks on a pinned 4-worker pool + the calibration probe benchgate
# normalizes by). The gate covers ns/op (calibration-normalized) and,
# from -benchmem, B/op and allocs/op (raw).
BENCH_GATE_PATTERN := BenchmarkSpanner|BenchmarkDelaunay|BenchmarkMedium|BenchmarkNeighborTable|BenchmarkBeaconTick|BenchmarkScheduler|BenchmarkRunner|BenchmarkWorldStep|BenchmarkCalibration
BENCH_GATE_PKGS := . ./internal/geom ./internal/ldt ./internal/mac ./internal/dtn ./internal/des ./internal/sim
BENCH_GATE_FLAGS := -benchmem -count 5 -benchtime 0.3s -run '^$$'

.PHONY: build test test-short bench bench-gate bench-baseline mem-gate api api-check doc-check atlas atlas-check atlas-golden fmt vet ci

build:
	$(GO) build ./...

## test runs the full suite, including the slow paper-artifact
## simulations (~30 s).
test:
	$(GO) test ./...

## test-short is the CI test job: race detector on, slow suites skipped.
test-short:
	$(GO) test -race -short ./...

## bench runs the gated benchmarks once, without the regression gate.
bench:
	$(GO) test -bench '$(BENCH_GATE_PATTERN)' -benchmem -run '^$$' $(BENCH_GATE_PKGS)

## bench-gate is the CI regression job: five repetitions per benchmark,
## median ns/op normalized by the calibration probe, fail on >15%
## regression vs ci/bench_baseline.json. Emits BENCH_spanner.json. The
## Runner and WorldStep macro-benchmarks gate on memory only
## (-skip-ns): their wall-clock depends on the host's core count, which
## the single-threaded calibration probe cannot normalize. The sharded
## world-step additionally skips the memory gate (-skip-mem): its
## worker-pool buffers scale with GOMAXPROCS, so B/op is
## host-dependent too.
bench-gate:
	$(GO) test -bench '$(BENCH_GATE_PATTERN)' $(BENCH_GATE_FLAGS) $(BENCH_GATE_PKGS) | tee bench.txt
	$(GO) run ./cmd/benchgate -in bench.txt -baseline ci/bench_baseline.json \
		-out BENCH_spanner.json -tolerance 0.15 -skip-ns '^(Runner|WorldStep)' -skip-mem '^WorldStepSharded'

## bench-baseline refreshes the committed baseline (run on an idle
## machine; commit the result together with the change that moved it).
bench-baseline:
	$(GO) test -bench '$(BENCH_GATE_PATTERN)' $(BENCH_GATE_FLAGS) $(BENCH_GATE_PKGS) | tee bench.txt
	$(GO) run ./cmd/benchgate -in bench.txt -write ci/bench_baseline.json

## mem-gate is the CI memory-ceiling job: run the 10k-node giant scale
## tier (fast path vs heap event core, byte-identity asserted inside
## the sweep) and fail if its sampled peak heap exceeds the committed
## per-scenario ceiling in ci/mem_budget.json.
mem-gate:
	$(GO) run ./cmd/glrexp -exp scale -sizes 10000 -memreport memreport.json | tee scale-giant.txt
	$(GO) run ./cmd/benchgate -gate-mem-ceiling memreport.json -mem-budget ci/mem_budget.json

## api regenerates the committed public-API surface (api/glr.txt). Run
## it — and commit the diff — whenever a public-API change is
## intentional.
api:
	$(GO) doc -all . > api/glr.txt

## api-check is the CI API-surface gate: any drift of `go doc -all`
## against the committed api/glr.txt fails, so public-API breaks are
## always explicit in review.
api-check:
	@$(GO) doc -all . > .api-current.txt || { \
		rm -f .api-current.txt; \
		echo "go doc failed; cannot check the API surface" >&2; exit 1; }
	@if ! diff -u api/glr.txt .api-current.txt; then \
		rm -f .api-current.txt; \
		echo "public API surface drifted from api/glr.txt;" >&2; \
		echo "run 'make api' and commit the diff if intentional" >&2; \
		exit 1; \
	fi; rm -f .api-current.txt

## doc-check is the godoc audit: every exported identifier in the root
## package and internal/matrix must carry a doc comment (vet-style
## diagnostics, non-zero exit on omissions).
doc-check:
	$(GO) run ./cmd/doccheck . internal/matrix

## atlas (re)builds the committed regime-map atlas: executes the
## declared scenario matrix against the result cache in
## docs/atlas-cache/ (only cells without a valid cache entry compute),
## checks the paper-figure slice against ci/atlas_golden.json, and
## renders docs/ATLAS.md + docs/atlas.json. With a warm cache this is
## pure rendering and byte-identical to the run that computed the cells.
atlas:
	$(GO) run ./cmd/glratlas -v

## atlas-check is the CI job: regenerate the atlas from the committed
## cache and fail on any byte drift of the committed artifacts, then
## compute a small uncached slice end to end (driver + cache + renderer
## smoke, ≤2 min).
atlas-check:
	$(GO) run ./cmd/glratlas
	git diff --exit-code -- docs/ATLAS.md docs/atlas.json docs/atlas-cache ci/atlas_golden.json
	$(GO) run ./cmd/glratlas -short -cache $(or $(TMPDIR),/tmp)/glr-atlas-short-cache -out $(or $(TMPDIR),/tmp)/glr-atlas-short

## atlas-golden re-pins ci/atlas_golden.json from the current atlas.
## Run it — and commit the diff — only when the paper-figure numbers
## move intentionally (bump internal/matrix.Version alongside semantic
## simulation changes so stale cache cells recompute).
atlas-golden:
	$(GO) run ./cmd/glratlas -write-golden

fmt:
	$(GO) fmt ./...

vet:
	$(GO) vet ./...

## ci is the whole pipeline: build, formatting gate, vet, API-surface
## gate, godoc audit, short tests, the atlas gate, and the
## benchmark-regression gate.
ci: build
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; fi
	$(GO) vet ./...
	$(MAKE) api-check
	$(MAKE) doc-check
	$(GO) test -race -short ./...
	$(MAKE) atlas-check
	$(MAKE) bench-gate
	$(MAKE) mem-gate
