module glr

go 1.24
