package glr

import (
	"strings"
	"testing"
)

// TestScenarioDefaultsMatchLegacyDefaults: NewScenario() with no
// options must equal the legacy DefaultConfig(100) run.
func TestScenarioDefaultsMatchLegacyDefaults(t *testing.T) {
	if testing.Short() {
		t.Skip("full 200-message default run; skipped in -short")
	}
	sc, err := NewScenario()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(DefaultConfig(100))
	if err != nil {
		t.Fatal(err)
	}
	if res != want {
		t.Errorf("builder defaults diverged from DefaultConfig(100): %+v vs %+v", res, want)
	}
}

// TestMobilityModelsRun: every pluggable mobility model yields a
// working, deterministic scenario.
func TestMobilityModelsRun(t *testing.T) {
	tracePaths := make([][]TracePoint, 20)
	for i := range tracePaths {
		x := float64(50 + i*70)
		tracePaths[i] = []TracePoint{
			{T: 0, X: x, Y: 50},
			{T: 60, X: x, Y: 250},
			{T: 120, X: x, Y: 50},
		}
	}
	models := map[string]Mobility{
		"waypoint": Waypoint{MaxSpeed: 15, Pause: 2},
		"static":   Static{},
		"walk":     RandomWalk{MaxSpeed: 10, LegTime: 15},
		"trace":    Trace{Paths: tracePaths},
	}
	for name, m := range models {
		t.Run(name, func(t *testing.T) {
			opts := []Option{
				WithRange(250),
				WithMobility(m),
				WithWorkload(PaperWorkload{Messages: 8}),
				WithSimTime(120),
			}
			if name != "trace" {
				opts = append(opts, WithNodes(20))
			}
			sc, err := NewScenario(opts...)
			if err != nil {
				t.Fatal(err)
			}
			a, err := sc.Run()
			if err != nil {
				t.Fatal(err)
			}
			if a.Generated != 8 {
				t.Errorf("generated %d, want 8", a.Generated)
			}
			b, err := sc.Run()
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Errorf("%s mobility not deterministic: %+v vs %+v", name, a, b)
			}
		})
	}
}

// TestTraceSetsNodeCount: with no WithNodes option the trajectory count
// determines the network size.
func TestTraceSetsNodeCount(t *testing.T) {
	paths := [][]TracePoint{
		{{T: 0, X: 100, Y: 100}},
		{{T: 0, X: 150, Y: 100}},
		{{T: 0, X: 200, Y: 100}},
	}
	sc, err := NewScenario(
		WithMobility(Trace{Paths: paths}),
		WithWorkload(ScheduleWorkload{{Src: 0, Dst: 2, At: 1}}),
		WithSimTime(60),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Generated != 1 {
		t.Errorf("generated %d, want 1", res.Generated)
	}
	// A *Trace infers the node count just like a Trace value.
	if _, err := NewScenario(
		WithMobility(&Trace{Paths: paths}),
		WithWorkload(ScheduleWorkload{{Src: 0, Dst: 2, At: 1}}),
		WithSimTime(60),
	); err != nil {
		t.Errorf("pointer Trace rejected: %v", err)
	}
	// Mismatched explicit node count must be rejected.
	if _, err := NewScenario(
		WithNodes(5),
		WithMobility(Trace{Paths: paths}),
	); err == nil {
		t.Error("trace count != node count accepted")
	}
}

// TestWorkloadsRun: every pluggable workload produces a valid,
// deterministic schedule.
func TestWorkloadsRun(t *testing.T) {
	loads := map[string]Workload{
		"paper":    PaperWorkload{Messages: 10},
		"uniform":  UniformWorkload{Messages: 10, Rate: 2},
		"poisson":  PoissonWorkload{Messages: 10, Rate: 2},
		"hotspot":  HotspotWorkload{Messages: 10, Rate: 2, Sinks: 3},
		"schedule": ScheduleWorkload{{Src: 0, Dst: 9, At: 1}, {Src: 5, Dst: 2, At: 3.5}},
	}
	for name, w := range loads {
		t.Run(name, func(t *testing.T) {
			sc, err := NewScenario(
				WithNodes(25),
				WithRange(250),
				WithWorkload(w),
				WithSimTime(130),
			)
			if err != nil {
				t.Fatal(err)
			}
			a, err := sc.Run()
			if err != nil {
				t.Fatal(err)
			}
			want := 10
			if name == "schedule" {
				want = 2
			}
			if a.Generated != want {
				t.Errorf("generated %d, want %d", a.Generated, want)
			}
			b, err := sc.Run()
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Errorf("%s workload not deterministic", name)
			}
		})
	}
}

// TestPaperWorkloadSmallNetworks: the default workload must fit any
// node count WithNodes permits, shrinking its source set below the
// paper's 45 when the network cannot host it.
func TestPaperWorkloadSmallNetworks(t *testing.T) {
	for _, n := range []int{2, 5, 10, 46, 50} {
		sc, err := NewScenario(
			WithNodes(n),
			WithRange(250),
			WithWorkload(PaperWorkload{Messages: 30}),
			WithSimTime(80),
		)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		res, err := sc.Run()
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res.Generated == 0 {
			t.Errorf("n=%d generated nothing", n)
		}
	}
	// The default workload with no options at all must also build.
	if _, err := NewScenario(WithNodes(10)); err != nil {
		t.Errorf("default workload rejected a 10-node network: %v", err)
	}
}

// TestWorkloadSeedVariation: randomized workloads must draw their
// schedules from the run seed, so different seeds give different
// traffic.
func TestWorkloadSeedVariation(t *testing.T) {
	w := PoissonWorkload{Messages: 30, Rate: 1}
	a, err := w.Schedule(20, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.Schedule(20, 2)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical Poisson schedules")
	}
	c, err := w.Schedule(20, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != c[i] {
			t.Fatal("same seed produced different Poisson schedules")
		}
	}
}

// TestOptionValidation: malformed options fail at construction with
// descriptive errors.
func TestOptionValidation(t *testing.T) {
	cases := map[string][]Option{
		"nil option":         {nil},
		"one node":           {WithNodes(1)},
		"negative range":     {WithRange(-5)},
		"zero range":         {WithRange(0)},
		"bad region":         {WithRegion(100, -1)},
		"bad simtime":        {WithSimTime(-3)},
		"bad storage":        {WithStorageLimit(-1)},
		"bad protocol":       {WithProtocol("carrier-pigeon")},
		"nil mobility":       {WithMobility(nil)},
		"typed-nil mobility": {WithMobility((*Trace)(nil))},
		"nil workload":       {WithWorkload(nil)},
		"bad speeds":         {WithMobility(Waypoint{MinSpeed: 10, MaxSpeed: 5})},
		"min over default":   {WithMobility(Waypoint{MinSpeed: 25})}, // default max is 20
		"walk min over max":  {WithMobility(RandomWalk{MinSpeed: 25})},
		"negative speed":     {WithMobility(RandomWalk{MaxSpeed: -2})},
		"negative pause":     {WithMobility(Waypoint{Pause: -1})},
		"empty trace":        {WithMobility(Trace{})},
		"one-node trace": {
			WithMobility(Trace{Paths: [][]TracePoint{{{T: 0, X: 1, Y: 1}}}}),
			WithWorkload(UniformWorkload{Messages: 3}),
		},
		"negative messages": {WithWorkload(PaperWorkload{Messages: -1})},
		"negative rate":     {WithWorkload(UniformWorkload{Messages: 5, Rate: -1})},
		"too many sinks":    {WithNodes(5), WithWorkload(HotspotWorkload{Messages: 5, Sinks: 5})},
		"bad glr knob":      {WithGLR(GLRConfig{Copies: -2})},
		"bad glr location":  {WithGLR(GLRConfig{Location: "bogus"})},
		"bad epidemic knob": {WithEpidemic(EpidemicConfig{DataSendRate: -1})},
	}
	for name, opts := range cases {
		if _, err := NewScenario(opts...); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestConfigValidation pins the satellite fix: invalid legacy Config
// values error out instead of silently passing through as "unset".
func TestConfigValidation(t *testing.T) {
	check := func(name string, mutate func(*Config)) {
		cfg := DefaultConfig(100)
		cfg.Messages = 5
		cfg.SimTime = 50
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	check("negative nodes", func(c *Config) { c.Nodes = -3 })
	check("negative range", func(c *Config) { c.Range = -10 })
	check("negative messages", func(c *Config) { c.Messages = -1 })
	check("negative simtime", func(c *Config) { c.SimTime = -1 })
	check("negative storage", func(c *Config) { c.StorageLimit = -1 })
	check("negative speed", func(c *Config) { c.MaxSpeed = -1 })
	check("negative width", func(c *Config) { c.Width = -500; c.Height = 300 })
	check("negative copies", func(c *Config) { c.GLRConfig = &GLRConfig{Copies: -1} })
	check("negative K", func(c *Config) { c.GLRConfig = &GLRConfig{K: -2} })
	check("negative check interval", func(c *Config) { c.GLRConfig = &GLRConfig{CheckInterval: -0.5} })
	check("negative exchange interval", func(c *Config) {
		c.Protocol = Epidemic
		c.EpidemicConfig = &EpidemicConfig{ExchangeInterval: -1}
	})
	check("negative send rate", func(c *Config) {
		c.Protocol = Epidemic
		c.EpidemicConfig = &EpidemicConfig{DataSendRate: -2}
	})

	// Errors carry the glr: prefix of the package.
	cfg := DefaultConfig(100)
	cfg.GLRConfig = &GLRConfig{Copies: -1}
	_, err := Run(cfg)
	if err == nil || !strings.Contains(err.Error(), "glr:") {
		t.Errorf("validation error %v lacks package prefix", err)
	}
}
