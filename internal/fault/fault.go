// Package fault models disruption injected into a simulation run:
// stochastic link blackouts, scheduled region blackouts, node churn
// (crash/restart with state loss), GPS error on advertised positions,
// and Byzantine nodes that lie about their location and silently drop
// custody. A set of declarative Specs compiles into a Plan whose
// queries are pure functions of the compiled state and their arguments,
// so the same (specs, n, region, horizon, seed) tuple always replays
// the identical fault schedule — independent of engine escape hatches,
// shard counts, and call order.
//
// Determinism contract. Stochastic faults (link blackouts, GPS noise,
// Byzantine membership) are stateless: each query hashes (seed, salt,
// arguments) through a splitmix64 mixer, so concurrent shards asking
// the same question get the same answer with no shared mutable state.
// Churn is precomputed: Compile draws every outage interval up front
// from a dedicated rand stream (never the world's RNG, whose draw
// sequence must stay byte-identical to a fault-free run), and Down is
// a binary search over the sorted schedule.
package fault

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"glr/internal/geom"
	"glr/internal/mobility"
)

// Kind identifies one disruption model.
type Kind string

// The disruption models a Spec can declare.
const (
	// LinkBlackout severs random links: in every epoch of length
	// Period, each unordered node pair is independently blacked out
	// with probability Rate (frames between the pair are lost).
	LinkBlackout Kind = "link-blackout"
	// RegionBlackout jams a rectangle for a scheduled window: frames
	// with either endpoint inside [X,X+W]×[Y,Y+H] are lost while
	// Start ≤ t < End.
	RegionBlackout Kind = "region-blackout"
	// Churn crashes nodes and restarts them with state loss: each node
	// fails as a Poisson process of rate Rate (crashes per second) and
	// stays down for Duration seconds per outage.
	Churn Kind = "churn"
	// GPSNoise perturbs the position a node advertises in its beacons
	// by independent Gaussian error with standard deviation Sigma
	// meters per axis (clamped to the deployment region).
	GPSNoise Kind = "gps-noise"
	// Byzantine marks a Fraction of nodes adversarial: they advertise
	// a lying position (mirrored across the region center) and
	// silently drop every protocol frame handed to them, losing any
	// custody without acknowledgment.
	Byzantine Kind = "byzantine"
)

// Spec declares one fault model. It is flat and serializable so fault
// sets can ride through scenario matrices and result caches; fields
// not used by a Kind must stay zero.
type Spec struct {
	// Kind selects the model.
	Kind Kind
	// Rate is the per-epoch link-blackout probability (LinkBlackout,
	// in [0,1]) or the per-node crash rate in crashes per second
	// (Churn).
	Rate float64
	// Period is the LinkBlackout epoch length in seconds (default 10).
	Period float64
	// Duration is the Churn per-outage downtime in seconds.
	Duration float64
	// Start and End bound the RegionBlackout window ([Start, End)).
	Start, End float64
	// X, Y, W, H is the RegionBlackout rectangle.
	X, Y, W, H float64
	// Sigma is the GPSNoise per-axis standard deviation in meters.
	Sigma float64
	// Fraction is the Byzantine share of nodes, in [0,1].
	Fraction float64
}

// defaultLinkPeriod is the epoch length a LinkBlackout spec with zero
// Period resolves to.
const defaultLinkPeriod = 10.0

// Validate checks the spec against the deployment region and horizon,
// rejecting negative rates and durations, probabilities outside [0,1],
// blackout rectangles outside the region, and inverted windows.
func (s Spec) Validate(region mobility.Region, simTime float64) error {
	switch s.Kind {
	case LinkBlackout:
		if s.Rate < 0 || s.Rate > 1 {
			return fmt.Errorf("fault: %s rate %v outside [0,1]", s.Kind, s.Rate)
		}
		if s.Period < 0 {
			return fmt.Errorf("fault: %s period %v is negative", s.Kind, s.Period)
		}
	case RegionBlackout:
		if s.W < 0 || s.H < 0 {
			return fmt.Errorf("fault: %s rectangle %vx%v has negative size", s.Kind, s.W, s.H)
		}
		if s.X < 0 || s.Y < 0 || s.X+s.W > region.W || s.Y+s.H > region.H {
			return fmt.Errorf("fault: %s rectangle (%v,%v)+%vx%v outside region %vx%v",
				s.Kind, s.X, s.Y, s.W, s.H, region.W, region.H)
		}
		if s.Start < 0 || s.End < s.Start {
			return fmt.Errorf("fault: %s window [%v,%v) is invalid", s.Kind, s.Start, s.End)
		}
	case Churn:
		if s.Rate < 0 {
			return fmt.Errorf("fault: %s rate %v is negative", s.Kind, s.Rate)
		}
		if s.Duration < 0 {
			return fmt.Errorf("fault: %s duration %v is negative", s.Kind, s.Duration)
		}
		if s.Rate > 0 && s.Duration == 0 {
			return fmt.Errorf("fault: %s needs a positive outage duration", s.Kind)
		}
	case GPSNoise:
		if s.Sigma < 0 {
			return fmt.Errorf("fault: %s sigma %v is negative", s.Kind, s.Sigma)
		}
	case Byzantine:
		if s.Fraction < 0 || s.Fraction > 1 {
			return fmt.Errorf("fault: %s fraction %v outside [0,1]", s.Kind, s.Fraction)
		}
	default:
		return fmt.Errorf("fault: unknown kind %q", s.Kind)
	}
	return nil
}

// Event is one fault occurrence surfaced to observers: a node crash or
// restart, or a region blackout starting or lifting.
type Event struct {
	// Kind is the model that fired (Churn or RegionBlackout).
	Kind Kind
	// Time is the simulation time of the occurrence.
	Time float64
	// Node is the affected node, or -1 for region-scoped events.
	Node int
	// Restored is false when disruption begins (crash, blackout start)
	// and true when it ends (restart, blackout lift).
	Restored bool
}

// Outage is one churn interval: node is down in [Down, Up).
type Outage struct {
	Node     int
	Down, Up float64
}

// Window is one scheduled region-blackout activation, for observer
// notifications.
type Window struct {
	Start, End float64
}

// Plan is a compiled fault set. All query methods are pure: they read
// only immutable compiled state and their arguments, so they are safe
// to call concurrently from shard workers.
type Plan struct {
	seed   int64
	region mobility.Region

	links     []Spec // LinkBlackout specs with Period defaulted
	regions   []Spec // RegionBlackout specs
	sigma     float64
	byzantine []bool

	outages []Outage // all churn intervals, sorted by (Down, Node)
	perNode [][2]int // per-node [first,last) range into byNode
	byNode  []Outage // churn intervals grouped by node, time-sorted
	windows []Window // region-blackout activations, time-sorted
}

// Hash salts separating the independent stochastic streams.
const (
	saltLink = 0x6c696e6b // "link"
	saltGPS  = 0x67707378 // "gpsx"
	saltGPSY = 0x67707379 // "gpsy"
	saltByz  = 0x62797a61 // "byza"
)

// splitmix64 is the finalizing mixer behind every stochastic fault
// stream (Steele, Lea & Flood's SplittableRandom).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// u01 hashes (seed, salt, a, b, c) to a uniform float in [0,1).
func (p *Plan) u01(salt, a, b, c uint64) float64 {
	h := splitmix64(uint64(p.seed) ^ salt)
	h = splitmix64(h ^ a)
	h = splitmix64(h ^ b)
	h = splitmix64(h ^ c)
	return float64(h>>11) / (1 << 53)
}

// Compile resolves a fault set for a run: it validates every spec,
// draws the full churn schedule from a dedicated rand stream seeded by
// the run seed, and fixes Byzantine membership. A nil plan (no specs)
// means a fault-free run; callers must not touch the world's own RNGs
// here, so fault-free runs stay byte-identical to a build without this
// package.
func Compile(specs []Spec, n int, region mobility.Region, simTime float64, seed int64) (*Plan, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	p := &Plan{seed: seed, region: region, byzantine: make([]bool, n)}
	// The churn stream is independent of every world RNG: world seeds
	// derive from cfg.Seed via documented offsets, so a distinct salt
	// keeps the streams disjoint.
	churnRNG := rand.New(rand.NewSource(seed ^ 0x6661756c74 /* "fault" */))
	for _, s := range specs {
		if err := s.Validate(region, simTime); err != nil {
			return nil, err
		}
		switch s.Kind {
		case LinkBlackout:
			if s.Rate == 0 {
				continue
			}
			if s.Period == 0 {
				s.Period = defaultLinkPeriod
			}
			p.links = append(p.links, s)
		case RegionBlackout:
			if s.W == 0 || s.H == 0 || s.End == s.Start {
				continue
			}
			end := math.Min(s.End, simTime)
			if end > s.Start {
				p.windows = append(p.windows, Window{Start: s.Start, End: end})
			}
			p.regions = append(p.regions, s)
		case Churn:
			if s.Rate == 0 {
				continue
			}
			for node := 0; node < n; node++ {
				t := churnRNG.ExpFloat64() / s.Rate
				for t < simTime {
					up := math.Min(t+s.Duration, simTime)
					p.outages = append(p.outages, Outage{Node: node, Down: t, Up: up})
					t = up + churnRNG.ExpFloat64()/s.Rate
				}
			}
		case GPSNoise:
			// Multiple noise specs compose as independent Gaussians.
			p.sigma = math.Sqrt(p.sigma*p.sigma + s.Sigma*s.Sigma)
		case Byzantine:
			for _, node := range p.selectByzantine(s.Fraction, n) {
				p.byzantine[node] = true
			}
		}
	}
	sort.Slice(p.outages, func(i, j int) bool {
		if p.outages[i].Down != p.outages[j].Down {
			return p.outages[i].Down < p.outages[j].Down
		}
		return p.outages[i].Node < p.outages[j].Node
	})
	sort.Slice(p.windows, func(i, j int) bool { return p.windows[i].Start < p.windows[j].Start })
	p.indexOutages(n)
	return p, nil
}

// selectByzantine picks round(fraction*n) nodes by hash ranking: every
// node draws a stable score, the lowest scores are adversarial. The
// same seed always corrupts the same nodes; growing the fraction only
// adds members.
func (p *Plan) selectByzantine(fraction float64, n int) []int {
	k := int(math.Round(fraction * float64(n)))
	if k <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	nodes := make([]int, n)
	for i := range nodes {
		nodes[i] = i
	}
	sort.Slice(nodes, func(i, j int) bool {
		si := p.u01(saltByz, uint64(nodes[i]), 0, 0)
		sj := p.u01(saltByz, uint64(nodes[j]), 0, 0)
		if si != sj {
			return si < sj
		}
		return nodes[i] < nodes[j]
	})
	return nodes[:k]
}

// indexOutages groups the outage schedule by node for Down's binary
// search.
func (p *Plan) indexOutages(n int) {
	p.byNode = append([]Outage(nil), p.outages...)
	sort.Slice(p.byNode, func(i, j int) bool {
		if p.byNode[i].Node != p.byNode[j].Node {
			return p.byNode[i].Node < p.byNode[j].Node
		}
		return p.byNode[i].Down < p.byNode[j].Down
	})
	p.perNode = make([][2]int, n)
	for i := range p.perNode {
		p.perNode[i] = [2]int{len(p.byNode), len(p.byNode)}
	}
	for i := 0; i < len(p.byNode); {
		j := i
		for j < len(p.byNode) && p.byNode[j].Node == p.byNode[i].Node {
			j++
		}
		p.perNode[p.byNode[i].Node] = [2]int{i, j}
		i = j
	}
}

// Outages returns the full churn schedule sorted by (Down, Node), for
// event scheduling and replay tests.
func (p *Plan) Outages() []Outage { return p.outages }

// Windows returns the scheduled region-blackout activations in start
// order, for observer notifications.
func (p *Plan) Windows() []Window { return p.windows }

// Down reports whether node is crashed at time t.
func (p *Plan) Down(node int, t float64) bool {
	r := p.perNode[node]
	ivls := p.byNode[r[0]:r[1]]
	// First interval starting after t; the one before it is the only
	// candidate containing t.
	i := sort.Search(len(ivls), func(i int) bool { return ivls[i].Down > t })
	return i > 0 && t < ivls[i-1].Up
}

// DownCount reports how many nodes are crashed at time t (for
// fault-intensity sampling; O(outages)).
func (p *Plan) DownCount(t float64) int {
	c := 0
	for _, o := range p.outages {
		if o.Down <= t && t < o.Up {
			c++
		}
	}
	return c
}

// Byzantine reports whether node is adversarial.
func (p *Plan) Byzantine(node int) bool { return p.byzantine[node] }

// BlocksReception reports whether a frame from src arriving at dst at
// time t must be lost: the receiver is crashed, the pair's link is
// blacked out this epoch, or either endpoint sits inside an active
// region blackout. Pure; safe from shard workers.
func (p *Plan) BlocksReception(src, dst int, t float64, srcPos, dstPos geom.Point) bool {
	if p.Down(dst, t) {
		return true
	}
	for _, s := range p.links {
		lo, hi := src, dst
		if lo > hi {
			lo, hi = hi, lo
		}
		epoch := uint64(math.Floor(t / s.Period))
		if p.u01(saltLink, uint64(lo), uint64(hi), epoch) < s.Rate {
			return true
		}
	}
	for _, s := range p.regions {
		if t < s.Start || t >= s.End {
			continue
		}
		if inRect(srcPos, s) || inRect(dstPos, s) {
			return true
		}
	}
	return false
}

func inRect(pt geom.Point, s Spec) bool {
	return pt.X >= s.X && pt.X <= s.X+s.W && pt.Y >= s.Y && pt.Y <= s.Y+s.H
}

// AdvertisedPos returns the position node claims in a beacon sent at
// time t from truePos: Byzantine nodes lie (the point mirrored across
// the region center), honest nodes report truePos perturbed by GPS
// noise, clamped to the region. Pure; the perturbation depends only on
// (seed, node, t).
func (p *Plan) AdvertisedPos(node int, t float64, truePos geom.Point) geom.Point {
	if p.byzantine[node] {
		return geom.Point{X: p.region.W - truePos.X, Y: p.region.H - truePos.Y}
	}
	if p.sigma == 0 {
		return truePos
	}
	tb := math.Float64bits(t)
	u1 := p.u01(saltGPS, uint64(node), tb, 0)
	u2 := p.u01(saltGPSY, uint64(node), tb, 0)
	// Box-Muller; u1 is bounded away from 0 so the log is finite.
	r := p.sigma * math.Sqrt(-2*math.Log(1-u1))
	dx := r * math.Cos(2*math.Pi*u2)
	dy := r * math.Sin(2*math.Pi*u2)
	return geom.Point{
		X: clamp(truePos.X+dx, 0, p.region.W),
		Y: clamp(truePos.Y+dy, 0, p.region.H),
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
