package fault

import (
	"math"
	"reflect"
	"testing"

	"glr/internal/geom"
	"glr/internal/mobility"
)

var testRegion = mobility.Region{W: 1500, H: 300}

func compile(t *testing.T, specs []Spec, n int, seed int64) *Plan {
	t.Helper()
	p, err := Compile(specs, n, testRegion, 600, seed)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return p
}

func TestValidateRejectsMalformedSpecs(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
	}{
		{"unknown kind", Spec{Kind: "meteor"}},
		{"negative link rate", Spec{Kind: LinkBlackout, Rate: -0.1}},
		{"link rate above one", Spec{Kind: LinkBlackout, Rate: 1.5}},
		{"negative link period", Spec{Kind: LinkBlackout, Rate: 0.2, Period: -5}},
		{"negative churn rate", Spec{Kind: Churn, Rate: -1, Duration: 10}},
		{"negative churn duration", Spec{Kind: Churn, Rate: 0.01, Duration: -10}},
		{"churn without duration", Spec{Kind: Churn, Rate: 0.01}},
		{"negative sigma", Spec{Kind: GPSNoise, Sigma: -25}},
		{"fraction above one", Spec{Kind: Byzantine, Fraction: 1.2}},
		{"negative fraction", Spec{Kind: Byzantine, Fraction: -0.2}},
		{"rect outside region", Spec{Kind: RegionBlackout, X: 1400, Y: 0, W: 200, H: 100, Start: 0, End: 100}},
		{"rect negative origin", Spec{Kind: RegionBlackout, X: -10, Y: 0, W: 50, H: 50, Start: 0, End: 100}},
		{"rect negative size", Spec{Kind: RegionBlackout, X: 0, Y: 0, W: -50, H: 50, Start: 0, End: 100}},
		{"inverted window", Spec{Kind: RegionBlackout, X: 0, Y: 0, W: 50, H: 50, Start: 100, End: 50}},
		{"negative window start", Spec{Kind: RegionBlackout, X: 0, Y: 0, W: 50, H: 50, Start: -1, End: 50}},
	}
	for _, c := range cases {
		if err := c.spec.Validate(testRegion, 600); err == nil {
			t.Errorf("%s: Validate accepted %+v", c.name, c.spec)
		}
	}
	ok := []Spec{
		{Kind: LinkBlackout, Rate: 0.3},
		{Kind: RegionBlackout, X: 100, Y: 50, W: 200, H: 100, Start: 60, End: 300},
		{Kind: Churn, Rate: 0.002, Duration: 30},
		{Kind: GPSNoise, Sigma: 25},
		{Kind: Byzantine, Fraction: 0.2},
	}
	for _, s := range ok {
		if err := s.Validate(testRegion, 600); err != nil {
			t.Errorf("Validate rejected valid spec %+v: %v", s, err)
		}
	}
}

func TestCompileEmptyIsNil(t *testing.T) {
	p, err := Compile(nil, 50, testRegion, 600, 1)
	if err != nil || p != nil {
		t.Fatalf("Compile(nil) = %v, %v; want nil plan", p, err)
	}
}

// Same seed must replay the identical schedule and identical stochastic
// verdicts; a different seed must diverge.
func TestPlanDeterministicReplay(t *testing.T) {
	specs := []Spec{
		{Kind: Churn, Rate: 0.01, Duration: 30},
		{Kind: LinkBlackout, Rate: 0.3, Period: 20},
		{Kind: GPSNoise, Sigma: 40},
		{Kind: Byzantine, Fraction: 0.25},
	}
	a := compile(t, specs, 40, 7)
	b := compile(t, specs, 40, 7)
	if !reflect.DeepEqual(a.Outages(), b.Outages()) {
		t.Fatal("same seed produced different churn schedules")
	}
	for node := 0; node < 40; node++ {
		if a.Byzantine(node) != b.Byzantine(node) {
			t.Fatalf("same seed disagrees on Byzantine(%d)", node)
		}
	}
	pos := geom.Point{X: 700, Y: 150}
	for i := 0; i < 200; i++ {
		tm := float64(i) * 2.7
		src, dst := i%40, (i*7+3)%40
		if a.BlocksReception(src, dst, tm, pos, pos) != b.BlocksReception(src, dst, tm, pos, pos) {
			t.Fatalf("same seed disagrees on BlocksReception at t=%v", tm)
		}
		if a.AdvertisedPos(src, tm, pos) != b.AdvertisedPos(src, tm, pos) {
			t.Fatalf("same seed disagrees on AdvertisedPos at t=%v", tm)
		}
	}

	c := compile(t, specs, 40, 8)
	if reflect.DeepEqual(a.Outages(), c.Outages()) {
		t.Fatal("different seeds produced identical churn schedules")
	}
}

func TestDownMatchesSchedule(t *testing.T) {
	p := compile(t, []Spec{{Kind: Churn, Rate: 0.02, Duration: 25}}, 30, 3)
	outs := p.Outages()
	if len(outs) == 0 {
		t.Fatal("expected a non-empty churn schedule")
	}
	naive := func(node int, tm float64) bool {
		for _, o := range outs {
			if o.Node == node && o.Down <= tm && tm < o.Up {
				return true
			}
		}
		return false
	}
	sawDown := false
	for node := 0; node < 30; node++ {
		for i := 0; i < 240; i++ {
			tm := float64(i) * 2.5
			got := p.Down(node, tm)
			if got != naive(node, tm) {
				t.Fatalf("Down(%d, %v) = %v, schedule says %v", node, tm, got, naive(node, tm))
			}
			sawDown = sawDown || got
		}
	}
	if !sawDown {
		t.Fatal("no sampled instant had a node down")
	}
	// Boundary semantics: down at Down, up again at Up.
	o := outs[0]
	if !p.Down(o.Node, o.Down) || p.Down(o.Node, o.Up) {
		t.Fatalf("interval [%v,%v) boundaries mishandled", o.Down, o.Up)
	}
}

func TestLinkBlackoutRateAndSymmetry(t *testing.T) {
	p := compile(t, []Spec{{Kind: LinkBlackout, Rate: 0.3, Period: 10}}, 200, 11)
	pos := geom.Point{}
	blocked, total := 0, 0
	for src := 0; src < 200; src++ {
		for d := 1; d < 5; d++ {
			dst := (src + d) % 200
			for e := 0; e < 5; e++ {
				tm := float64(e)*10 + 5
				b := p.BlocksReception(src, dst, tm, pos, pos)
				if b != p.BlocksReception(dst, src, tm, pos, pos) {
					t.Fatalf("link blackout not symmetric for (%d,%d)", src, dst)
				}
				total++
				if b {
					blocked++
				}
			}
		}
	}
	frac := float64(blocked) / float64(total)
	if math.Abs(frac-0.3) > 0.03 {
		t.Fatalf("blocked fraction %.3f, want ≈0.30", frac)
	}
}

func TestRegionBlackoutWindowAndRect(t *testing.T) {
	p := compile(t, []Spec{{Kind: RegionBlackout, X: 100, Y: 50, W: 200, H: 100, Start: 60, End: 300}}, 10, 1)
	in := geom.Point{X: 200, Y: 100}
	out := geom.Point{X: 800, Y: 100}
	if !p.BlocksReception(0, 1, 100, in, out) || !p.BlocksReception(0, 1, 100, out, in) {
		t.Fatal("endpoint inside the rect during the window must be blocked")
	}
	if p.BlocksReception(0, 1, 100, out, out) {
		t.Fatal("frame entirely outside the rect must pass")
	}
	if p.BlocksReception(0, 1, 30, in, in) || p.BlocksReception(0, 1, 300, in, in) {
		t.Fatal("frame outside the window must pass")
	}
	if ws := p.Windows(); len(ws) != 1 || ws[0] != (Window{Start: 60, End: 300}) {
		t.Fatalf("Windows() = %v", ws)
	}
}

func TestByzantineSelection(t *testing.T) {
	p := compile(t, []Spec{{Kind: Byzantine, Fraction: 0.25}}, 40, 5)
	count := 0
	for node := 0; node < 40; node++ {
		if p.Byzantine(node) {
			count++
		}
	}
	if count != 10 {
		t.Fatalf("Byzantine count = %d, want 10", count)
	}
	// Byzantine nodes lie: the advertised position is the mirror image.
	for node := 0; node < 40; node++ {
		truePos := geom.Point{X: 100, Y: 100}
		adv := p.AdvertisedPos(node, 1, truePos)
		if p.Byzantine(node) {
			want := geom.Point{X: testRegion.W - 100, Y: testRegion.H - 100}
			if adv != want {
				t.Fatalf("Byzantine node %d advertised %v, want %v", node, adv, want)
			}
		} else if adv != truePos {
			t.Fatalf("honest node %d advertised %v without GPS noise", node, adv)
		}
	}
}

func TestGPSNoisePerturbsWithinRegion(t *testing.T) {
	p := compile(t, []Spec{{Kind: GPSNoise, Sigma: 30}}, 10, 9)
	truePos := geom.Point{X: 10, Y: 5} // near the corner so clamping is exercised
	moved := false
	for i := 0; i < 100; i++ {
		adv := p.AdvertisedPos(3, float64(i)*1.3, truePos)
		if adv != truePos {
			moved = true
		}
		if adv.X < 0 || adv.X > testRegion.W || adv.Y < 0 || adv.Y > testRegion.H {
			t.Fatalf("advertised position %v escaped the region", adv)
		}
	}
	if !moved {
		t.Fatal("GPS noise never perturbed the advertised position")
	}
}

func TestDownCount(t *testing.T) {
	p := compile(t, []Spec{{Kind: Churn, Rate: 0.02, Duration: 25}}, 30, 3)
	for _, tm := range []float64{0, 50, 150, 300, 599} {
		want := 0
		for node := 0; node < 30; node++ {
			if p.Down(node, tm) {
				want++
			}
		}
		if got := p.DownCount(tm); got != want {
			t.Fatalf("DownCount(%v) = %d, want %d", tm, got, want)
		}
	}
}
