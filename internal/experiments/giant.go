package experiments

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"time"

	"glr/internal/asciiplot"
	"glr/internal/core"
	"glr/internal/metrics"
	"glr/internal/mobility"
	"glr/internal/sim"
)

// GiantTierNodes is the node count at which the scale sweep switches to
// the reduced giant-world protocol: two modes (the full fast path vs
// the reference binary-heap event core), a single replication, a short
// fixed horizon, and a sampled heap-peak instead of allocation
// counting. Below it the four-mode NodeCountSweep applies; above it
// that protocol's 4×runs full-horizon executions would take hours and
// its alloc counters would say nothing about residency, which is the
// constraint that actually binds at 10k–100k nodes.
const GiantTierNodes = 5000

// giantHorizon and giantMsgs bound the giant tier's work: the point is
// wall clock per simulated second and resident memory at 10k–100k
// nodes, not delivery statistics, so the horizon is short and the
// traffic load nominal.
const (
	giantHorizon = 60.0
	giantMsgs    = 100
)

// GiantPoint is one giant-tier point: the same scenario run twice — the
// full fast path (calendar queue, aggregated beacons, compact tables)
// and the reference binary-heap event core (DisableCalendarQueue) —
// with wall clock and peak heap measured for each.
type GiantPoint struct {
	N        int
	Region   mobility.Region
	Msgs     int
	Delivery float64
	Events   uint64 // events dispatched (identical across modes)
	WallFast time.Duration
	WallHeap time.Duration
	PeakFast uint64 // peak sampled HeapAlloc bytes, fast path
	PeakHeap uint64 // peak sampled HeapAlloc bytes, heap event core
	// Identical reports that both runs produced byte-identical
	// end-to-end reports — the calendar queue is pure performance work.
	Identical bool
}

// QueueSpeedup returns heap-event-core wall clock over fast-path wall
// clock.
func (p GiantPoint) QueueSpeedup() float64 {
	if p.WallFast <= 0 {
		return 0
	}
	return float64(p.WallHeap) / float64(p.WallFast)
}

// GiantResult is the giant-tier sweep artifact.
type GiantResult struct {
	Points []GiantPoint
}

// MemPoint is one scenario's machine-readable memory digest inside the
// report `glrexp -memreport` writes.
type MemPoint struct {
	N             int    `json:"n"`
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
	WallMs        int64  `json:"wall_ms"`
}

// MemReport digests the sweep for cmd/benchgate's -gate-mem-ceiling
// mode: scenario name → fast-path peak heap and wall clock, gated
// against the committed budgets in ci/mem_budget.json.
func (r *GiantResult) MemReport() map[string]MemPoint {
	out := make(map[string]MemPoint, len(r.Points))
	for _, p := range r.Points {
		out[fmt.Sprintf("scale-%d", p.N)] = MemPoint{
			N:             p.N,
			PeakHeapBytes: p.PeakFast,
			WallMs:        p.WallFast.Milliseconds(),
		}
	}
	return out
}

// sampleHeapPeak starts a ~20 Hz runtime.ReadMemStats sampler and
// returns a stop function yielding the peak HeapAlloc it observed
// (including one final sample at stop time). Sampling sees live heap
// plus not-yet-collected garbage — exactly the residency a host must
// provision for.
func sampleHeapPeak() (stop func() uint64) {
	done := make(chan struct{})
	result := make(chan uint64, 1)
	go func() {
		var m runtime.MemStats
		var peak uint64
		tick := time.NewTicker(50 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				runtime.ReadMemStats(&m)
				result <- max(peak, m.HeapAlloc)
				return
			case <-tick.C:
				runtime.ReadMemStats(&m)
				peak = max(peak, m.HeapAlloc)
			}
		}
	}()
	return func() uint64 { close(done); return <-result }
}

// giantScenario is nodeCountScenario clamped to the giant tier's fixed
// short horizon and nominal traffic load.
func giantScenario(n int, seed int64) sim.Scenario {
	s := nodeCountScenario(n, giantMsgs, seed)
	s.SimTime = giantHorizon
	return s
}

// GiantSweep measures giant worlds (10k–100k nodes) at the paper's
// density: each size runs the same GLR scenario twice — the full fast
// path, then with the event core pinned to the reference binary heap
// (sim.Scenario.DisableCalendarQueue) — recording wall clock, the peak
// sampled heap, and the dispatched-event count, and asserting the two
// reports are byte-identical. One replication per size: the trend, not
// the confidence interval, is the artifact.
func GiantSweep(o Options, sizes []int) (*GiantResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	ctx := o.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	res := &GiantResult{}
	for _, n := range sizes {
		if n < GiantTierNodes {
			return nil, fmt.Errorf("experiments: giant tier is for ≥ %d nodes, got %d", GiantTierNodes, n)
		}
		point := GiantPoint{N: n, Msgs: giantMsgs, Identical: true}
		var reports [2]metrics.Report
		for i, heapCore := range []bool{false, true} {
			s := giantScenario(n, o.BaseSeed)
			point.Region = s.Region
			s.DisableCalendarQueue = heapCore
			factory, err := core.New(core.DefaultConfig())
			if err != nil {
				return nil, err
			}
			// Collect the previous mode's garbage so this mode's peak
			// measures its own residency, then sample across world
			// construction (where the tables allocate) and the run.
			runtime.GC()
			stopSampler := sampleHeapPeak()
			start := time.Now()
			w, err := sim.NewWorld(s, factory)
			if err != nil {
				stopSampler()
				return nil, err
			}
			rep, err := w.RunContext(ctx)
			elapsed := time.Since(start)
			peak := stopSampler()
			if err != nil {
				return nil, err
			}
			reports[i] = rep
			if heapCore {
				point.WallHeap, point.PeakHeap = elapsed, peak
			} else {
				point.WallFast, point.PeakFast = elapsed, peak
				point.Delivery = rep.DeliveryRatio
				point.Events = w.Scheduler().Processed()
			}
		}
		if reports[0] != reports[1] {
			point.Identical = false
		}
		res.Points = append(res.Points, point)
		o.progress("scale(giant): n=%d -> wall %v vs %v on the heap core (%.2fx), peak heap %s vs %s, %d events, identical=%v",
			n, point.WallFast.Round(time.Millisecond), point.WallHeap.Round(time.Millisecond),
			point.QueueSpeedup(), fmtBytes(point.PeakFast), fmtBytes(point.PeakHeap),
			point.Events, point.Identical)
	}
	return res, nil
}

// Render prints the giant-tier table.
func (r *GiantResult) Render() string {
	rows := make([][]string, len(r.Points))
	allIdentical := true
	for i, p := range r.Points {
		if !p.Identical {
			allIdentical = false
		}
		rows[i] = []string{
			fmt.Sprintf("%d", p.N),
			fmt.Sprintf("%.0fx%.0f m", p.Region.W, p.Region.H),
			fmt.Sprintf("%.0f s", giantHorizon),
			fmt.Sprintf("%.2f", p.Delivery),
			fmt.Sprintf("%dM", p.Events/1e6),
			p.WallFast.Round(time.Millisecond).String(),
			p.WallHeap.Round(time.Millisecond).String(),
			fmt.Sprintf("%.2fx", p.QueueSpeedup()),
			fmtBytes(p.PeakFast),
			fmtBytes(p.PeakHeap),
		}
	}
	var sb strings.Builder
	sb.WriteString(asciiplot.Table{
		Title:   "Giant-world tier (fixed density, GLR, 1 run/point, fast path vs heap event core)",
		Headers: []string{"Nodes", "Region", "Horizon", "Delivery", "Events", "Wall", "Wall(heap)", "Spd-up", "Peak heap", "Peak(heap)"},
		Rows:    rows,
	}.Render())
	sb.WriteString("\"Wall\" runs the full fast path — calendar event core, cell-aggregated\n" +
		"beacons, compact tables — and \"Wall(heap)\" the same scenario with the\n" +
		"event core pinned to the reference binary heap (DisableCalendarQueue).\n" +
		"Peak-heap columns are the maximum HeapAlloc a ~20 Hz\n" +
		"runtime.ReadMemStats sampler observed across world construction and\n" +
		"the run; `glrexp -memreport` emits the fast-path numbers for\n" +
		"benchgate's -gate-mem-ceiling CI gate.\n")
	if allIdentical {
		sb.WriteString("Calendar and heap event cores produced byte-identical reports at every point.\n")
	} else {
		sb.WriteString("WARNING: the calendar and heap event cores disagreed at some point —\n" +
			"this should never happen; see TestCalendarHeapDispatchEquality and\n" +
			"TestShardedFullStackEquivalence.\n")
	}
	return sb.String()
}

// fmtBytes renders a byte count with a binary-scaled unit.
func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
	default:
		return fmt.Sprintf("%d B", b)
	}
}
