package experiments

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"strings"
	"time"

	"glr/internal/asciiplot"
	"glr/internal/core"
	"glr/internal/ldt"
	"glr/internal/metrics"
	"glr/internal/mobility"
	"glr/internal/shard"
	"glr/internal/sim"
	"glr/internal/stats"
)

// NodeCountSizes is the default sweep: the paper's evaluation runs at
// tens of nodes; the sweep scales an order of magnitude beyond it.
var NodeCountSizes = []int{100, 250, 500, 1000}

// paperDensity is the paper's node density: 50 nodes in 1500 × 300 m.
const paperDensity = 50.0 / (1500 * 300)

// NodeCountPoint is one sweep point: the same scenario run four ways —
// the full serial fast path (dense tables + spanner cache, sharding
// off), the from-scratch spanner reference
// (core.Config.DisableSpannerCache), the map-backed table reference
// (sim.Scenario.DisableDenseTables), and the sharded engine (an
// automatic GOMAXPROCS-wide worker pool) — with wall-clock,
// spanner-construction time, and heap-allocation pressure measured for
// each. All runs use the grid-indexed medium (PR 1); the naive medium
// keeps its own benchmarks in internal/mac.
type NodeCountPoint struct {
	N               int
	Region          mobility.Region
	Delivery        stats.MeanCI  // fast-path runs
	DeliveryScratch stats.MeanCI  // from-scratch spanner runs
	WallCached      time.Duration // mean per run
	WallScratch     time.Duration
	WallMapTables   time.Duration
	WallSharded     time.Duration // sharded-engine runs
	ShardWorkers    int           // pool width of the sharded runs (GOMAXPROCS)
	SpannerCached   time.Duration // mean spanner-construction time per run
	SpannerScratch  time.Duration
	SpannerSharded  time.Duration    // mean spanner time within the sharded runs
	Phases          sim.PhaseProf    // sharded runs: mean per-phase wall clock
	Thresholds      shard.Thresholds // fork thresholds the sharded runs calibrated
	TriHitRate      float64          // fast-path runs: witness-triangulation reuse
	AllocsDense     uint64           // mean heap allocations per fast-path run
	AllocsMapTables uint64           // mean heap allocations per map-backed run
	GCDense         uint32           // mean GC cycles per fast-path run
	GCMapTables     uint32           // mean GC cycles per map-backed run
	Identical       bool             // all four reports matched exactly at every seed
}

// SpannerSpeedup returns from-scratch spanner-construction time over
// cached.
func (p NodeCountPoint) SpannerSpeedup() float64 {
	if p.SpannerCached <= 0 {
		return 0
	}
	return float64(p.SpannerScratch) / float64(p.SpannerCached)
}

// WallSpeedup returns from-scratch wall-clock over cached wall-clock.
func (p NodeCountPoint) WallSpeedup() float64 {
	if p.WallCached <= 0 {
		return 0
	}
	return float64(p.WallScratch) / float64(p.WallCached)
}

// ShardSpeedup returns serial fast-path wall-clock over sharded-engine
// wall-clock (1.0 on a single-CPU host, where the automatic pool
// resolves serial).
func (p NodeCountPoint) ShardSpeedup() float64 {
	if p.WallSharded <= 0 {
		return 0
	}
	return float64(p.WallCached) / float64(p.WallSharded)
}

// AllocReduction returns the fraction of heap allocations the dense
// state plane removes relative to the map-backed reference (0.3 = 30%
// fewer allocations).
func (p NodeCountPoint) AllocReduction() float64 {
	if p.AllocsMapTables == 0 {
		return 0
	}
	return 1 - float64(p.AllocsDense)/float64(p.AllocsMapTables)
}

// NodeCountResult is the node-count scaling sweep artifact.
type NodeCountResult struct {
	Points []NodeCountPoint
	Runs   int
	msgs   []int // messages per point, aligned with Points
}

// nodeCountScenario builds the sweep scenario for n nodes: the paper's
// density and mobility at 100 m range, region grown with n (5:1 aspect
// like the paper's 1500 × 300), uniform random traffic proportional to
// n, and a horizon long enough for delivery.
func nodeCountScenario(n, msgs int, seed int64) sim.Scenario {
	h := math.Sqrt(float64(n) / paperDensity / 5)
	s := sim.DefaultScenario(100)
	s.Name = fmt.Sprintf("scale-%d", n)
	s.N = n
	s.Seed = seed
	s.Region = mobility.Region{W: 5 * h, H: h}
	s.Traffic = sim.UniformTraffic(n, msgs, 2.0, seed*977+5)
	s.SimTime = float64(msgs)/2.0 + 240
	return s
}

// instrRun is one instrumented run's measurements: the report, the
// shared-cache stats, the heap Mallocs / GC-cycle deltas across the run
// (runtime.ReadMemStats), and — when profiled — the per-phase wall
// clock and the fork thresholds the world ran with.
type instrRun struct {
	rep     metrics.Report
	spanner ldt.SpannerStats
	mallocs uint64
	gc      uint32
	phases  sim.PhaseProf
	thr     shard.Thresholds
}

// executeInstrumented runs one GLR scenario with spanner and allocation
// instrumentation; profile additionally turns on per-phase wall-clock
// attribution (which never changes the report — see sim.PhaseProf).
func executeInstrumented(ctx context.Context, s sim.Scenario, cfg core.Config, profile bool) (instrRun, error) {
	factory, maint, err := core.NewInstrumented(cfg)
	if err != nil {
		return instrRun{}, err
	}
	w, err := sim.NewWorld(s, factory)
	if err != nil {
		return instrRun{}, err
	}
	if profile {
		w.EnablePhaseProfile()
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	rep, err := w.RunContext(ctx)
	runtime.ReadMemStats(&after)
	if err != nil {
		return instrRun{}, err
	}
	return instrRun{
		rep:     rep,
		spanner: maint.Stats(),
		mallocs: after.Mallocs - before.Mallocs,
		gc:      after.NumGC - before.NumGC,
		phases:  w.PhaseProfile(),
		thr:     w.ForkThresholds(),
	}, nil
}

// NodeCountSweep measures how the simulator scales with node count at
// fixed density. Each seed runs the same scenario four ways:
//
//   - fast: dense tables + spanner cache, serial (sharding off);
//   - scratch: core.Config.DisableSpannerCache (from-scratch spanner);
//   - map: sim.Scenario.DisableDenseTables (map-backed tables);
//   - sharded: the fast stack on the sharded engine (automatic
//     GOMAXPROCS-wide worker pool).
//
// It reports delivery, wall-clock, spanner-construction time fast vs
// scratch, heap-allocation pressure fast vs map, and serial-vs-sharded
// wall clock — and asserts all four reports are identical. sizes nil
// means NodeCountSizes.
// Replications are run sequentially (never in parallel) so the
// wall-clock comparison is not distorted by CPU contention; o.Runs is
// capped at 3 — even when overridden via `glrexp -runs` — because the
// point is the timing trend, not tight confidence intervals.
func NodeCountSweep(o Options, sizes []int) (*NodeCountResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if sizes == nil {
		sizes = NodeCountSizes
	}
	ctx := o.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	runs := min(o.Runs, 3)
	res := &NodeCountResult{Runs: runs}

	for _, n := range sizes {
		if n < 2 {
			return nil, fmt.Errorf("experiments: node count %d must be ≥ 2", n)
		}
		msgs := o.messages(n)
		point := NodeCountPoint{N: n, Identical: true}
		cached := make([]float64, runs)
		scratch := make([]float64, runs)
		var hitStats ldt.SpannerStats
		var allocsDense, allocsMap uint64
		var gcDense, gcMap uint32
		point.ShardWorkers = runtime.GOMAXPROCS(0)
		for r := 0; r < runs; r++ {
			seed := o.BaseSeed + int64(r)
			var reports [4]metrics.Report
			for i, mode := range []string{"fast", "scratch", "map", "sharded"} {
				s := nodeCountScenario(n, msgs, seed)
				point.Region = s.Region
				// The serial modes pin sharding off so their timings
				// measure the legacy engine; "sharded" leaves the
				// default automatic pool on.
				s.DisableSharding = mode != "sharded"
				cfg := core.DefaultConfig()
				switch mode {
				case "scratch":
					cfg.DisableSpannerCache = true
				case "map":
					s.DisableDenseTables = true
				}
				start := time.Now()
				ir, err := executeInstrumented(ctx, s, cfg, mode == "sharded")
				elapsed := time.Since(start)
				if err != nil {
					return nil, err
				}
				reports[i] = ir.rep
				switch mode {
				case "scratch":
					scratch[r] = ir.rep.DeliveryRatio
					point.WallScratch += elapsed
					point.SpannerScratch += ir.spanner.BuildTime
				case "map":
					point.WallMapTables += elapsed
					allocsMap += ir.mallocs
					gcMap += ir.gc
				case "sharded":
					point.WallSharded += elapsed
					point.SpannerSharded += ir.spanner.BuildTime
					point.Phases.Beacon += ir.phases.Beacon
					point.Phases.Mobility += ir.phases.Mobility
					point.Phases.Rx += ir.phases.Rx
					point.Phases.AntiEntropy += ir.phases.AntiEntropy
					point.Thresholds = ir.thr
				default:
					cached[r] = ir.rep.DeliveryRatio
					point.WallCached += elapsed
					point.SpannerCached += ir.spanner.BuildTime
					hitStats.Add(ir.spanner)
					allocsDense += ir.mallocs
					gcDense += ir.gc
				}
			}
			if reports[0] != reports[1] || reports[0] != reports[2] || reports[0] != reports[3] {
				point.Identical = false
			}
		}
		point.Delivery = stats.ConfidenceInterval(cached, o.Confidence)
		point.DeliveryScratch = stats.ConfidenceInterval(scratch, o.Confidence)
		point.WallCached /= time.Duration(runs)
		point.WallScratch /= time.Duration(runs)
		point.WallMapTables /= time.Duration(runs)
		point.WallSharded /= time.Duration(runs)
		point.SpannerCached /= time.Duration(runs)
		point.SpannerScratch /= time.Duration(runs)
		point.SpannerSharded /= time.Duration(runs)
		point.Phases.Beacon /= time.Duration(runs)
		point.Phases.Mobility /= time.Duration(runs)
		point.Phases.Rx /= time.Duration(runs)
		point.Phases.AntiEntropy /= time.Duration(runs)
		point.TriHitRate = hitStats.TriHitRate()
		point.AllocsDense = allocsDense / uint64(runs)
		point.AllocsMapTables = allocsMap / uint64(runs)
		point.GCDense = gcDense / uint32(runs)
		point.GCMapTables = gcMap / uint32(runs)
		res.Points = append(res.Points, point)
		res.msgs = append(res.msgs, msgs)
		o.progress("scale: n=%d -> delivery %.2f, spanner %v vs %v (%.1fx, hit %.0f%%), wall %v vs %v, sharded %v (%.1fx on %d workers), allocs %dM vs %dM (-%.0f%%)",
			n, point.Delivery.Mean,
			point.SpannerCached.Round(time.Millisecond), point.SpannerScratch.Round(time.Millisecond),
			point.SpannerSpeedup(), 100*point.TriHitRate,
			point.WallCached.Round(time.Millisecond), point.WallScratch.Round(time.Millisecond),
			point.WallSharded.Round(time.Millisecond), point.ShardSpeedup(), point.ShardWorkers,
			point.AllocsDense/1e6, point.AllocsMapTables/1e6, 100*point.AllocReduction())
	}
	return res, nil
}

// Render prints the sweep table.
func (r *NodeCountResult) Render() string {
	rows := make([][]string, len(r.Points))
	allIdentical := true
	for i, p := range r.Points {
		if !p.Identical {
			allIdentical = false
		}
		rows[i] = []string{
			fmt.Sprintf("%d", p.N),
			fmt.Sprintf("%.0fx%.0f m", p.Region.W, p.Region.H),
			fmt.Sprintf("%d", r.msgs[i]),
			fmt.Sprintf("%.2f±%.2f", p.Delivery.Mean, p.Delivery.HalfWidth),
			p.SpannerCached.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1fx", p.SpannerSpeedup()),
			fmt.Sprintf("%.0f%%", 100*p.TriHitRate),
			p.WallCached.Round(time.Millisecond).String(),
			p.WallSharded.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1fx", p.ShardSpeedup()),
			fmt.Sprintf("%.0fM", float64(p.AllocsDense)/1e6),
			fmt.Sprintf("%.0fM", float64(p.AllocsMapTables)/1e6),
			fmt.Sprintf("-%.0f%%", 100*p.AllocReduction()),
			fmt.Sprintf("%d/%d", p.GCDense, p.GCMapTables),
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if len(r.Points) > 0 {
		workers = r.Points[len(r.Points)-1].ShardWorkers
	}
	var sb strings.Builder
	sb.WriteString(asciiplot.Table{
		Title:   fmt.Sprintf("Node-count scaling sweep (fixed density, GLR, %d run(s)/point)", r.Runs),
		Headers: []string{"Nodes", "Region", "Msgs", "Delivery", "Spanner", "Spd-up", "Tri hits", "Wall", "Sharded", "Shd-up", "Allocs", "Allocs(map)", "Δalloc", "GC d/m"},
		Rows:    rows,
	}.Render())
	sb.WriteString("\nSharded per-phase wall clock (share of the sharded run's wall):\n")
	for _, p := range r.Points {
		pct := func(d time.Duration) float64 {
			if p.WallSharded <= 0 {
				return 0
			}
			return 100 * float64(d) / float64(p.WallSharded)
		}
		sb.WriteString(fmt.Sprintf(
			"  n=%-5d beacon %5.1f%%  mobility %5.1f%%  rx %5.1f%%  anti-entropy %5.1f%%  spanner %5.1f%%\n",
			p.N, pct(p.Phases.Beacon), pct(p.Phases.Mobility), pct(p.Phases.Rx),
			pct(p.Phases.AntiEntropy), pct(p.SpannerSharded)))
	}
	if len(r.Points) > 0 {
		thr := r.Points[len(r.Points)-1].Thresholds
		sb.WriteString(fmt.Sprintf(
			"Calibrated fork thresholds (%d worker(s)): rx≥%s, beacon≥%s, mobility≥%s, diff≥%s\n",
			workers, fmtThreshold(thr.RxMin), fmtThreshold(thr.BeaconMin),
			fmtThreshold(thr.MobilityMin), fmtThreshold(thr.DiffMin)))
	}
	sb.WriteString("\nSpanner columns time the GLR routing loop's local-graph construction\n" +
		"through the shared ldt.Maintainer; \"Spd-up\" is the from-scratch reference\n" +
		"(DisableSpannerCache) over it. \"Wall\" is the serial fast path and\n" +
		fmt.Sprintf("\"Sharded\" the same run on the sharded engine (%d worker(s) here);\n", workers) +
		"\"Shd-up\" is serial over sharded. Alloc columns count heap allocations\n" +
		"per run (runtime.ReadMemStats Mallocs) on the dense slice-backed state\n" +
		"plane vs the map-backed reference tables (DisableDenseTables); \"GC d/m\"\n" +
		"is garbage-collection cycles dense/map.\n")
	if allIdentical {
		sb.WriteString("All four paths produced identical end-to-end reports at every point.\n")
	} else {
		sb.WriteString("WARNING: the fast, from-scratch-spanner, map-table, and sharded runs\n" +
			"disagreed at some point — this should never happen; see the\n" +
			"equivalence tests in internal/core and internal/sim.\n")
	}
	return sb.String()
}

// fmtThreshold renders one fork threshold; serial engines and degenerate
// calibrations carry math.MaxInt, printed as "never".
func fmtThreshold(v int) string {
	if v == math.MaxInt {
		return "never"
	}
	return fmt.Sprintf("%d", v)
}

// SpannerSpeedupAtLargestN returns the spanner-construction speedup at
// the biggest sweep point (the headline the ROADMAP tracks).
func (r *NodeCountResult) SpannerSpeedupAtLargestN() float64 {
	if len(r.Points) == 0 {
		return 0
	}
	return r.Points[len(r.Points)-1].SpannerSpeedup()
}

// AllocReductionAtLargestN returns the heap-allocation reduction of the
// dense state plane at the biggest sweep point.
func (r *NodeCountResult) AllocReductionAtLargestN() float64 {
	if len(r.Points) == 0 {
		return 0
	}
	return r.Points[len(r.Points)-1].AllocReduction()
}
