package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"glr/internal/asciiplot"
	"glr/internal/mobility"
	"glr/internal/sim"
	"glr/internal/stats"
)

// NodeCountSizes is the default sweep: the paper's evaluation runs at
// tens of nodes; the sweep scales an order of magnitude beyond it.
var NodeCountSizes = []int{100, 250, 500, 1000}

// paperDensity is the paper's node density: 50 nodes in 1500 × 300 m.
const paperDensity = 50.0 / (1500 * 300)

// NodeCountPoint is one sweep point: the same scenario run with the
// spatial index (the default) and with the naive full-scan medium, with
// wall-clock time measured for each.
type NodeCountPoint struct {
	N             int
	Region        mobility.Region
	Delivery      stats.MeanCI // grid runs
	DeliveryNaive stats.MeanCI
	WallGrid      time.Duration // mean per run
	WallNaive     time.Duration
}

// Speedup returns naive wall-clock over grid wall-clock.
func (p NodeCountPoint) Speedup() float64 {
	if p.WallGrid <= 0 {
		return 0
	}
	return float64(p.WallNaive) / float64(p.WallGrid)
}

// NodeCountResult is the node-count scaling sweep artifact.
type NodeCountResult struct {
	Points []NodeCountPoint
	Runs   int
	msgs   []int // messages per point, aligned with Points
}

// nodeCountScenario builds the sweep scenario for n nodes: the paper's
// density and mobility at 100 m range, region grown with n (5:1 aspect
// like the paper's 1500 × 300), uniform random traffic proportional to
// n, and a horizon long enough for delivery.
func nodeCountScenario(n, msgs int, seed int64) sim.Scenario {
	h := math.Sqrt(float64(n) / paperDensity / 5)
	s := sim.DefaultScenario(100)
	s.Name = fmt.Sprintf("scale-%d", n)
	s.N = n
	s.Seed = seed
	s.Region = mobility.Region{W: 5 * h, H: h}
	s.Traffic = sim.UniformTraffic(n, msgs, 2.0, seed*977+5)
	s.SimTime = float64(msgs)/2.0 + 240
	return s
}

// NodeCountSweep measures how the simulator scales with node count at
// fixed density: delivery ratio plus wall-clock per run for the
// grid-indexed medium vs the naive O(n²) resolution. sizes nil means
// NodeCountSizes. Replications are run sequentially (never in parallel)
// so the wall-clock comparison is not distorted by CPU contention; runs
// are capped at 3 because the point is the timing trend, not tight
// confidence intervals.
func NodeCountSweep(o Options, sizes []int) (*NodeCountResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if sizes == nil {
		sizes = NodeCountSizes
	}
	runs := min(o.Runs, 3)
	res := &NodeCountResult{Runs: runs}

	for _, n := range sizes {
		if n < 2 {
			return nil, fmt.Errorf("experiments: node count %d must be ≥ 2", n)
		}
		msgs := o.messages(n)
		point := NodeCountPoint{N: n}
		grid := make([]float64, runs)
		naive := make([]float64, runs)
		var wallGrid, wallNaive time.Duration
		for r := 0; r < runs; r++ {
			seed := o.BaseSeed + int64(r)
			for _, disable := range []bool{false, true} {
				s := nodeCountScenario(n, msgs, seed)
				s.DisableSpatialIndex = disable
				point.Region = s.Region
				start := time.Now()
				rep, err := (runSpec{scenario: s, proto: ProtoGLR}).execute()
				elapsed := time.Since(start)
				if err != nil {
					return nil, err
				}
				if disable {
					naive[r] = rep.DeliveryRatio
					wallNaive += elapsed
				} else {
					grid[r] = rep.DeliveryRatio
					wallGrid += elapsed
				}
			}
		}
		point.Delivery = stats.ConfidenceInterval(grid, o.Confidence)
		point.DeliveryNaive = stats.ConfidenceInterval(naive, o.Confidence)
		point.WallGrid = wallGrid / time.Duration(runs)
		point.WallNaive = wallNaive / time.Duration(runs)
		res.Points = append(res.Points, point)
		res.msgs = append(res.msgs, msgs)
		o.progress("scale: n=%d -> delivery %.2f, wall grid %v vs naive %v (%.1fx)",
			n, point.Delivery.Mean, point.WallGrid.Round(time.Millisecond),
			point.WallNaive.Round(time.Millisecond), point.Speedup())
	}
	return res, nil
}

// Render prints the sweep table.
func (r *NodeCountResult) Render() string {
	rows := make([][]string, len(r.Points))
	for i, p := range r.Points {
		rows[i] = []string{
			fmt.Sprintf("%d", p.N),
			fmt.Sprintf("%.0fx%.0f m", p.Region.W, p.Region.H),
			fmt.Sprintf("%d", r.msgs[i]),
			fmt.Sprintf("%.2f±%.2f", p.Delivery.Mean, p.Delivery.HalfWidth),
			fmt.Sprintf("%.2f±%.2f", p.DeliveryNaive.Mean, p.DeliveryNaive.HalfWidth),
			p.WallGrid.Round(time.Millisecond).String(),
			p.WallNaive.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1fx", p.Speedup()),
		}
	}
	var sb strings.Builder
	sb.WriteString(asciiplot.Table{
		Title:   fmt.Sprintf("Node-count scaling sweep (fixed density, GLR, %d run(s)/point)", r.Runs),
		Headers: []string{"Nodes", "Region", "Msgs", "Delivery", "Delivery naive", "Wall grid", "Wall naive", "Speedup"},
		Rows:    rows,
	}.Render())
	sb.WriteString("The spatial-grid medium resolves receptions over the sender's\n" +
		"neighborhood only, so per-beacon cost stays flat as the network grows;\n" +
		"the naive medium scans every radio per airing and falls behind\n" +
		"quadratically. Delivery ratios agree up to MAC-level tie-breaking.\n")
	return sb.String()
}

// SpeedupGrowsWithN reports whether the grid's wall-clock advantage
// increases from the smallest to the largest sweep point.
func (r *NodeCountResult) SpeedupGrowsWithN() bool {
	n := len(r.Points)
	if n < 2 {
		return false
	}
	return r.Points[n-1].Speedup() > r.Points[0].Speedup()
}
