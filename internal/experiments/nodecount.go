package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"glr/internal/asciiplot"
	"glr/internal/core"
	"glr/internal/ldt"
	"glr/internal/metrics"
	"glr/internal/mobility"
	"glr/internal/sim"
	"glr/internal/stats"
)

// NodeCountSizes is the default sweep: the paper's evaluation runs at
// tens of nodes; the sweep scales an order of magnitude beyond it.
var NodeCountSizes = []int{100, 250, 500, 1000}

// paperDensity is the paper's node density: 50 nodes in 1500 × 300 m.
const paperDensity = 50.0 / (1500 * 300)

// NodeCountPoint is one sweep point: the same scenario run with the
// shared spanner cache (the default) and with the from-scratch reference
// spanner path, with wall-clock and spanner-construction time measured
// for each. Both runs use the grid-indexed medium (PR 1); the naive
// medium keeps its own benchmarks in internal/mac.
type NodeCountPoint struct {
	N               int
	Region          mobility.Region
	Delivery        stats.MeanCI  // cached runs
	DeliveryScratch stats.MeanCI  // from-scratch runs
	WallCached      time.Duration // mean per run
	WallScratch     time.Duration
	SpannerCached   time.Duration // mean spanner-construction time per run
	SpannerScratch  time.Duration
	TriHitRate      float64 // cached runs: witness-triangulation reuse
	Identical       bool    // cached and from-scratch reports matched exactly
}

// SpannerSpeedup returns from-scratch spanner-construction time over
// cached.
func (p NodeCountPoint) SpannerSpeedup() float64 {
	if p.SpannerCached <= 0 {
		return 0
	}
	return float64(p.SpannerScratch) / float64(p.SpannerCached)
}

// WallSpeedup returns from-scratch wall-clock over cached wall-clock.
func (p NodeCountPoint) WallSpeedup() float64 {
	if p.WallCached <= 0 {
		return 0
	}
	return float64(p.WallScratch) / float64(p.WallCached)
}

// NodeCountResult is the node-count scaling sweep artifact.
type NodeCountResult struct {
	Points []NodeCountPoint
	Runs   int
	msgs   []int // messages per point, aligned with Points
}

// nodeCountScenario builds the sweep scenario for n nodes: the paper's
// density and mobility at 100 m range, region grown with n (5:1 aspect
// like the paper's 1500 × 300), uniform random traffic proportional to
// n, and a horizon long enough for delivery.
func nodeCountScenario(n, msgs int, seed int64) sim.Scenario {
	h := math.Sqrt(float64(n) / paperDensity / 5)
	s := sim.DefaultScenario(100)
	s.Name = fmt.Sprintf("scale-%d", n)
	s.N = n
	s.Seed = seed
	s.Region = mobility.Region{W: 5 * h, H: h}
	s.Traffic = sim.UniformTraffic(n, msgs, 2.0, seed*977+5)
	s.SimTime = float64(msgs)/2.0 + 240
	return s
}

// executeInstrumented runs one GLR scenario with spanner instrumentation.
func executeInstrumented(s sim.Scenario, cfg core.Config) (metrics.Report, ldt.SpannerStats, error) {
	factory, maint, err := core.NewInstrumented(cfg)
	if err != nil {
		return metrics.Report{}, ldt.SpannerStats{}, err
	}
	w, err := sim.NewWorld(s, factory)
	if err != nil {
		return metrics.Report{}, ldt.SpannerStats{}, err
	}
	rep := w.Run()
	return rep, maint.Stats(), nil
}

// NodeCountSweep measures how the simulator scales with node count at
// fixed density: delivery ratio, wall-clock, and spanner-construction
// time per run for the cached spanner path vs the from-scratch reference
// (core.Config.DisableSpannerCache). sizes nil means NodeCountSizes.
// Replications are run sequentially (never in parallel) so the
// wall-clock comparison is not distorted by CPU contention; o.Runs is
// capped at 3 — even when overridden via `glrexp -runs` — because the
// point is the timing trend, not tight confidence intervals.
func NodeCountSweep(o Options, sizes []int) (*NodeCountResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if sizes == nil {
		sizes = NodeCountSizes
	}
	runs := min(o.Runs, 3)
	res := &NodeCountResult{Runs: runs}

	for _, n := range sizes {
		if n < 2 {
			return nil, fmt.Errorf("experiments: node count %d must be ≥ 2", n)
		}
		msgs := o.messages(n)
		point := NodeCountPoint{N: n, Identical: true}
		cached := make([]float64, runs)
		scratch := make([]float64, runs)
		var hitStats ldt.SpannerStats
		for r := 0; r < runs; r++ {
			seed := o.BaseSeed + int64(r)
			var reports [2]metrics.Report
			for i, disable := range []bool{false, true} {
				s := nodeCountScenario(n, msgs, seed)
				point.Region = s.Region
				cfg := core.DefaultConfig()
				cfg.DisableSpannerCache = disable
				start := time.Now()
				rep, st, err := executeInstrumented(s, cfg)
				elapsed := time.Since(start)
				if err != nil {
					return nil, err
				}
				reports[i] = rep
				if disable {
					scratch[r] = rep.DeliveryRatio
					point.WallScratch += elapsed
					point.SpannerScratch += st.BuildTime
				} else {
					cached[r] = rep.DeliveryRatio
					point.WallCached += elapsed
					point.SpannerCached += st.BuildTime
					hitStats.Add(st)
				}
			}
			if reports[0] != reports[1] {
				point.Identical = false
			}
		}
		point.Delivery = stats.ConfidenceInterval(cached, o.Confidence)
		point.DeliveryScratch = stats.ConfidenceInterval(scratch, o.Confidence)
		point.WallCached /= time.Duration(runs)
		point.WallScratch /= time.Duration(runs)
		point.SpannerCached /= time.Duration(runs)
		point.SpannerScratch /= time.Duration(runs)
		point.TriHitRate = hitStats.TriHitRate()
		res.Points = append(res.Points, point)
		res.msgs = append(res.msgs, msgs)
		o.progress("scale: n=%d -> delivery %.2f, spanner %v vs %v (%.1fx, hit %.0f%%), wall %v vs %v",
			n, point.Delivery.Mean,
			point.SpannerCached.Round(time.Millisecond), point.SpannerScratch.Round(time.Millisecond),
			point.SpannerSpeedup(), 100*point.TriHitRate,
			point.WallCached.Round(time.Millisecond), point.WallScratch.Round(time.Millisecond))
	}
	return res, nil
}

// Render prints the sweep table.
func (r *NodeCountResult) Render() string {
	rows := make([][]string, len(r.Points))
	allIdentical := true
	for i, p := range r.Points {
		if !p.Identical {
			allIdentical = false
		}
		rows[i] = []string{
			fmt.Sprintf("%d", p.N),
			fmt.Sprintf("%.0fx%.0f m", p.Region.W, p.Region.H),
			fmt.Sprintf("%d", r.msgs[i]),
			fmt.Sprintf("%.2f±%.2f", p.Delivery.Mean, p.Delivery.HalfWidth),
			p.SpannerCached.Round(time.Millisecond).String(),
			p.SpannerScratch.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1fx", p.SpannerSpeedup()),
			fmt.Sprintf("%.0f%%", 100*p.TriHitRate),
			p.WallCached.Round(time.Millisecond).String(),
			p.WallScratch.Round(time.Millisecond).String(),
		}
	}
	var sb strings.Builder
	sb.WriteString(asciiplot.Table{
		Title:   fmt.Sprintf("Node-count scaling sweep (fixed density, GLR, %d run(s)/point)", r.Runs),
		Headers: []string{"Nodes", "Region", "Msgs", "Delivery", "Spanner cached", "Spanner scratch", "Speedup", "Tri hits", "Wall cached", "Wall scratch"},
		Rows:    rows,
	}.Render())
	sb.WriteString("Spanner columns time the GLR routing loop's local-graph construction:\n" +
		"\"cached\" goes through the shared ldt.Maintainer (mesh triangulator,\n" +
		"witness-triangulation reuse across ticks and nodes), \"scratch\" rebuilds\n" +
		"per check with the reference construction (DisableSpannerCache).\n")
	if allIdentical {
		sb.WriteString("Both paths produced identical end-to-end reports at every point.\n")
	} else {
		sb.WriteString("WARNING: cached and from-scratch runs disagreed at some point —\n" +
			"this should never happen; see the equivalence tests in internal/core.\n")
	}
	return sb.String()
}

// SpannerSpeedupAtLargestN returns the spanner-construction speedup at
// the biggest sweep point (the headline the ROADMAP tracks).
func (r *NodeCountResult) SpannerSpeedupAtLargestN() float64 {
	if len(r.Points) == 0 {
		return 0
	}
	return r.Points[len(r.Points)-1].SpannerSpeedup()
}
