package experiments

import (
	"fmt"
	"strings"

	"glr/internal/asciiplot"
	"glr/internal/core"
	"glr/internal/sim"
)

// AblationResult measures the contribution of GLR's individual design
// choices (the ones DESIGN.md calls out) on a sparse 100 m scenario:
// the LDTG spanner vs simpler routing graphs, face routing, the progress
// hysteresis, and the tree multiplicity chosen by Algorithm 1.
type AblationResult struct {
	Rows     []AblationRow
	Messages int
	Radius   float64
}

// AblationRow is one variant's outcome.
type AblationRow struct {
	Name string
	Agg  Agg
}

// Ablation runs the design-choice study.
func Ablation(o Options) (*AblationResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	msgs := o.messages(1180)
	const radius = 100.0
	res := &AblationResult{Messages: msgs, Radius: radius}

	variants := []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"baseline (LDTG, face, 3 trees)", func(*core.Config) {}},
		{"gabriel spanner", func(c *core.Config) { c.Spanner = core.SpannerGabriel }},
		{"raw UDG (no planarization)", func(c *core.Config) { c.Spanner = core.SpannerUDG }},
		{"no face routing", func(c *core.Config) { c.DisableFaceRouting = true }},
		{"no progress hysteresis", func(c *core.Config) { c.ProgressHysteresis = 0 }},
		{"single copy (MaxDSTD only)", func(c *core.Config) { c.Copies = 1 }},
		{"five copies (extra Mid trees)", func(c *core.Config) { c.Copies = 5 }},
		{"no custody transfer", func(c *core.Config) { c.Custody = false }},
	}
	for _, v := range variants {
		cfg := core.DefaultConfig()
		v.mutate(&cfg)
		s := sim.DefaultScenario(radius)
		s.Traffic = sim.PaperTraffic(msgs)
		s.SimTime = o.horizon(3800, msgs)
		agg, err := o.runPoint(runSpec{scenario: s, proto: ProtoGLR, glrCfg: &cfg})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, AblationRow{Name: v.name, Agg: agg})
		o.progress("ablation: %s -> ratio %.3f latency %s", v.name,
			agg.DeliveryRatio.Mean, agg.AvgLatency)
	}
	return res, nil
}

// Render prints the ablation table.
func (r *AblationResult) Render() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			row.Name,
			fmt.Sprintf("%.1f%%", 100*row.Agg.DeliveryRatio.Mean),
			row.Agg.AvgLatency.String(),
			row.Agg.AvgHops.String(),
			row.Agg.AvgPeakStorage.String(),
		}
	}
	var sb strings.Builder
	sb.WriteString(asciiplot.Table{
		Title: fmt.Sprintf("GLR design-choice ablation (%d msgs, %.0f m, paper traffic)",
			r.Messages, r.Radius),
		Headers: []string{"Variant", "Delivered", "Latency (s)", "Hops", "Avg peak storage"},
		Rows:    rows,
	}.Render())
	return sb.String()
}
