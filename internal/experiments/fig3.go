package experiments

import (
	"fmt"
	"strings"

	"glr/internal/asciiplot"
	"glr/internal/core"
	"glr/internal/sim"
)

// Fig3Result reproduces Figure 3: GLR delivery latency as a function of
// the route-check interval (0.6–1.6 s; 1980 messages, 100 m radius).
type Fig3Result struct {
	Intervals []float64
	Latency   []Agg
	Messages  int
}

// Fig3CheckInterval runs the Figure-3 sweep.
func Fig3CheckInterval(o Options) (*Fig3Result, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	msgs := o.messages(1980)
	res := &Fig3Result{
		Intervals: []float64{0.6, 0.8, 0.9, 1.0, 1.2, 1.4, 1.6},
		Messages:  msgs,
	}
	for _, iv := range res.Intervals {
		cfg := core.DefaultConfig()
		cfg.CheckInterval = iv
		s := sim.DefaultScenario(100)
		s.Traffic = sim.PaperTraffic(msgs)
		s.SimTime = o.horizon(3800, msgs)
		agg, err := o.runPoint(runSpec{scenario: s, proto: ProtoGLR, glrCfg: &cfg})
		if err != nil {
			return nil, err
		}
		res.Latency = append(res.Latency, agg)
		o.progress("fig3: interval %.1f s -> latency %s", iv, agg.AvgLatency)
	}
	return res, nil
}

// Render prints the figure.
func (r *Fig3Result) Render() string {
	var sb strings.Builder
	xs := r.Intervals
	ys := make([]float64, len(r.Latency))
	for i, a := range r.Latency {
		ys[i] = a.AvgLatency.Mean
	}
	sb.WriteString(asciiplot.Chart{
		Title:  fmt.Sprintf("Figure 3: latency vs route-check interval (%d msgs, 100 m)", r.Messages),
		XLabel: "check interval (s)",
		YLabel: "latency (s)",
		Series: []asciiplot.Series{{Name: "GLR", X: xs, Y: ys}},
	}.Render())
	rows := make([][]string, len(xs))
	for i := range xs {
		rows[i] = []string{
			fmt.Sprintf("%.1f", xs[i]),
			r.Latency[i].AvgLatency.String(),
			fmt.Sprintf("%.3f", r.Latency[i].DeliveryRatio.Mean),
		}
	}
	sb.WriteString(asciiplot.Table{
		Headers: []string{"Interval (s)", "Latency (s)", "Delivery ratio"},
		Rows:    rows,
	}.Render())
	sb.WriteString("Paper: latency grows mildly with the interval " +
		"(≈19 s at 0.6 s to ≈24 s at 1.6 s; more frequent checks reduce latency).\n")
	return sb.String()
}
