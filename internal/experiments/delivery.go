package experiments

import (
	"fmt"
	"strings"

	"glr/internal/asciiplot"
	"glr/internal/core"
	"glr/internal/sim"
)

// Table3Result reproduces Table 3: delivery ratio with and without custody
// transfer (890 messages, 50 m, 1200 s).
type Table3Result struct {
	Without  Agg
	With     Agg
	Messages int
}

// Table3Custody runs the Table-3 comparison.
func Table3Custody(o Options) (*Table3Result, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	msgs := o.messages(890)
	res := &Table3Result{Messages: msgs}
	for _, custody := range []bool{false, true} {
		cfg := core.DefaultConfig()
		cfg.Custody = custody
		s := sim.DefaultScenario(50)
		s.Traffic = sim.PaperTraffic(msgs)
		s.SimTime = o.horizon(1200, msgs)
		agg, err := o.runPoint(runSpec{scenario: s, proto: ProtoGLR, glrCfg: &cfg})
		if err != nil {
			return nil, err
		}
		if custody {
			res.With = agg
		} else {
			res.Without = agg
		}
		o.progress("table3: custody=%v -> ratio %.3f", custody, agg.DeliveryRatio.Mean)
	}
	return res, nil
}

// Render prints measured-vs-paper rows.
func (r *Table3Result) Render() string {
	var sb strings.Builder
	sb.WriteString(asciiplot.Table{
		Title:   fmt.Sprintf("Table 3: delivery ratio with/without custody transfer (%d msgs, 50 m, 1200 s)", r.Messages),
		Headers: []string{"Scenario", "Measured", "Paper"},
		Rows: [][]string{
			{"without custody transfer",
				fmt.Sprintf("%.1f%%±%.1f%%", 100*r.Without.DeliveryRatio.Mean, 100*r.Without.DeliveryRatio.HalfWidth),
				fmt.Sprintf("%.1f%%±%.0f%%", 100*PaperTable3.WithoutCustody, 100*PaperTable3.WithoutCI)},
			{"with custody transfer",
				fmt.Sprintf("%.1f%%±%.1f%%", 100*r.With.DeliveryRatio.Mean, 100*r.With.DeliveryRatio.HalfWidth),
				fmt.Sprintf("%.1f%%±%.0f%%", 100*PaperTable3.WithCustody, 100*PaperTable3.WithCI)},
		},
	}.Render())
	sb.WriteString("Paper: custody transfer lifts the delivery ratio (84.7% -> 97.9%).\n")
	return sb.String()
}

// CustodyHelps reports whether custody raised the delivery ratio.
func (r *Table3Result) CustodyHelps() bool {
	return r.With.DeliveryRatio.Mean > r.Without.DeliveryRatio.Mean
}

// Fig7Result reproduces Figure 7: delivery ratio vs per-node storage limit
// for GLR and epidemic (1980 messages, 50 m). Limits scale with MsgScale
// so the pressure regime matches the paper's.
type Fig7Result struct {
	Limits   []int
	GLR      []Agg
	Epidemic []Agg
	Messages int
}

// Fig7StorageLimit runs the Figure-7 sweep.
func Fig7StorageLimit(o Options) (*Fig7Result, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	msgs := o.messages(1980)
	res := &Fig7Result{Messages: msgs}
	for _, paperLimit := range []int{25, 50, 100, 150, 200} {
		limit := o.messages(paperLimit) // same scaling as message counts
		s := sim.DefaultScenario(50)
		s.Traffic = sim.PaperTraffic(msgs)
		s.SimTime = o.horizon(3800, msgs)
		s.StorageLimit = limit
		glr, err := o.runPoint(runSpec{scenario: s, proto: ProtoGLR})
		if err != nil {
			return nil, err
		}
		epi, err := o.runPoint(runSpec{scenario: s, proto: ProtoEpidemic})
		if err != nil {
			return nil, err
		}
		res.Limits = append(res.Limits, limit)
		res.GLR = append(res.GLR, glr)
		res.Epidemic = append(res.Epidemic, epi)
		o.progress("fig7: limit %d -> GLR %.3f, epidemic %.3f", limit,
			glr.DeliveryRatio.Mean, epi.DeliveryRatio.Mean)
	}
	return res, nil
}

// Render prints the figure.
func (r *Fig7Result) Render() string {
	xs := make([]float64, len(r.Limits))
	glr := make([]float64, len(r.GLR))
	epi := make([]float64, len(r.Epidemic))
	for i := range r.Limits {
		xs[i] = float64(r.Limits[i])
		glr[i] = r.GLR[i].DeliveryRatio.Mean
		epi[i] = r.Epidemic[i].DeliveryRatio.Mean
	}
	var sb strings.Builder
	sb.WriteString(asciiplot.Chart{
		Title:  fmt.Sprintf("Figure 7: delivery ratio vs storage limit (%d msgs, 50 m)", r.Messages),
		XLabel: "storage limit (messages/node)",
		YLabel: "delivery ratio",
		YMin:   0, YMax: 1,
		Series: []asciiplot.Series{
			{Name: "GLR", X: xs, Y: glr},
			{Name: "Epidemic", X: xs, Y: epi},
		},
	}.Render())
	rows := make([][]string, len(xs))
	for i := range xs {
		rows[i] = []string{
			fmt.Sprintf("%d", r.Limits[i]),
			fmt.Sprintf("%.3f", glr[i]),
			fmt.Sprintf("%.3f", epi[i]),
		}
	}
	sb.WriteString(asciiplot.Table{
		Headers: []string{"Limit (msgs/node)", "GLR ratio", "Epidemic ratio"},
		Rows:    rows,
	}.Render())
	sb.WriteString("Paper: GLR holds ~100% down to small limits; epidemic's ratio collapses\n" +
		"once storage drops below the number of messages in transit.\n")
	return sb.String()
}

// GLRBeatsEpidemicUnderPressure reports whether GLR's delivery ratio
// exceeds epidemic's at the tightest storage limit.
func (r *Fig7Result) GLRBeatsEpidemicUnderPressure() bool {
	if len(r.GLR) == 0 {
		return false
	}
	return r.GLR[0].DeliveryRatio.Mean > r.Epidemic[0].DeliveryRatio.Mean
}
