package experiments

import (
	"fmt"
	"strings"

	"glr/internal/asciiplot"
	"glr/internal/sim"
)

// Table4Result reproduces Table 4: GLR peak storage vs message count
// (50 m, 3 copies by Algorithm 1).
type Table4Result struct {
	Messages []int
	Agg      []Agg
}

// Table4StorageByMessages runs the Table-4 sweep.
func Table4StorageByMessages(o Options) (*Table4Result, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	res := &Table4Result{}
	for _, paperMsgs := range PaperTable4.Messages {
		msgs := o.messages(paperMsgs)
		s := sim.DefaultScenario(50)
		s.Traffic = sim.PaperTraffic(msgs)
		s.SimTime = o.horizon(3800, msgs)
		agg, err := o.runPoint(runSpec{scenario: s, proto: ProtoGLR})
		if err != nil {
			return nil, err
		}
		res.Messages = append(res.Messages, msgs)
		res.Agg = append(res.Agg, agg)
		o.progress("table4: %d msgs -> max peak %s", msgs, agg.MaxPeakStorage)
	}
	return res, nil
}

// Render prints measured-vs-paper rows.
func (r *Table4Result) Render() string {
	rows := make([][]string, len(r.Messages))
	for i := range r.Messages {
		rows[i] = []string{
			fmt.Sprintf("%d", r.Messages[i]),
			r.Agg[i].MaxPeakStorage.String(),
			fmt.Sprintf("%.1f±%.2f", PaperTable4.MaxPeak[i], PaperTable4.MaxCI[i]),
			r.Agg[i].AvgPeakStorage.String(),
			fmt.Sprintf("%.1f±%.2f", PaperTable4.AvgPeak[i], PaperTable4.AvgCI[i]),
		}
	}
	var sb strings.Builder
	sb.WriteString(asciiplot.Table{
		Title:   "Table 4: GLR storage requirement vs message count (50 m, 3 copies)",
		Headers: []string{"Messages", "Max peak", "Paper max", "Avg peak", "Paper avg"},
		Rows:    rows,
	}.Render())
	sb.WriteString("Paper: storage grows with the number of messages in transit.\n")
	return sb.String()
}

// StorageGrowsWithMessages reports the Table-4 trend.
func (r *Table4Result) StorageGrowsWithMessages() bool {
	n := len(r.Agg)
	if n < 2 {
		return false
	}
	return r.Agg[n-1].AvgPeakStorage.Mean > r.Agg[0].AvgPeakStorage.Mean
}

// Table5Result reproduces Table 5: GLR peak storage vs radius (1980
// messages; Algorithm 1 picks 3 copies at 50/100 m, 1 copy beyond).
type Table5Result struct {
	Radius   []float64
	Agg      []Agg
	Messages int
}

// Table5StorageByRadius runs the Table-5 sweep.
func Table5StorageByRadius(o Options) (*Table5Result, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	msgs := o.messages(1980)
	res := &Table5Result{Messages: msgs}
	for _, radius := range PaperTable5.Radius {
		s := sim.DefaultScenario(radius)
		s.Traffic = sim.PaperTraffic(msgs)
		s.SimTime = o.horizon(3800, msgs)
		agg, err := o.runPoint(runSpec{scenario: s, proto: ProtoGLR})
		if err != nil {
			return nil, err
		}
		res.Radius = append(res.Radius, radius)
		res.Agg = append(res.Agg, agg)
		o.progress("table5: %.0f m -> max peak %s", radius, agg.MaxPeakStorage)
	}
	return res, nil
}

// Render prints measured-vs-paper rows.
func (r *Table5Result) Render() string {
	rows := make([][]string, len(r.Radius))
	for i := range r.Radius {
		rows[i] = []string{
			fmt.Sprintf("%.0f m", r.Radius[i]),
			r.Agg[i].MaxPeakStorage.String(),
			fmt.Sprintf("%.1f±%.2f", PaperTable5.MaxPeak[i], PaperTable5.MaxCI[i]),
			r.Agg[i].AvgPeakStorage.String(),
			fmt.Sprintf("%.1f±%.2f", PaperTable5.AvgPeak[i], PaperTable5.AvgCI[i]),
		}
	}
	var sb strings.Builder
	sb.WriteString(asciiplot.Table{
		Title:   fmt.Sprintf("Table 5: GLR storage requirement vs radius (%d msgs)", r.Messages),
		Headers: []string{"Radius", "Max peak", "Paper max", "Avg peak", "Paper avg"},
		Rows:    rows,
	}.Render())
	sb.WriteString("Paper: the longer the radius, the smaller the storage requirement.\n")
	return sb.String()
}

// StorageShrinksWithRadius reports the Table-5 trend (rows are ordered
// 250 m down to 50 m, so storage should increase along the rows).
func (r *Table5Result) StorageShrinksWithRadius() bool {
	n := len(r.Agg)
	if n < 2 {
		return false
	}
	return r.Agg[0].AvgPeakStorage.Mean < r.Agg[n-1].AvgPeakStorage.Mean
}
