package experiments

import (
	"fmt"
	"strings"

	"glr/internal/asciiplot"
	"glr/internal/core"
	"glr/internal/sim"
)

// Table2Result reproduces Table 2: message delivery under four
// destination-location knowledge regimes (1980 messages, 100 m).
type Table2Result struct {
	Rows     []Table2Row
	Messages int
}

// Table2Row is one measured regime.
type Table2Row struct {
	Copies   int
	Scenario string
	Agg      Agg
	Paper    PaperTable2Row
}

// Table2LocationKnowledge runs the Table-2 study.
func Table2LocationKnowledge(o Options) (*Table2Result, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	msgs := o.messages(1980)
	regimes := []struct {
		copies int
		loc    core.LocationKnowledge
		paper  PaperTable2Row
	}{
		{1, core.LocAllKnow, PaperTable2[0]},
		{3, core.LocSourceKnows, PaperTable2[1]},
		{1, core.LocSourceKnows, PaperTable2[2]},
		{3, core.LocNoneKnow, PaperTable2[3]},
	}
	res := &Table2Result{Messages: msgs}
	for _, reg := range regimes {
		cfg := core.DefaultConfig()
		cfg.Copies = reg.copies
		cfg.Location = reg.loc
		s := sim.DefaultScenario(100)
		s.Traffic = sim.PaperTraffic(msgs)
		s.SimTime = o.horizon(3800, msgs)
		agg, err := o.runPoint(runSpec{scenario: s, proto: ProtoGLR, glrCfg: &cfg})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Table2Row{
			Copies:   reg.copies,
			Scenario: reg.paper.Scenario,
			Agg:      agg,
			Paper:    reg.paper,
		})
		o.progress("table2: %d copies / %s -> latency %s", reg.copies, reg.paper.Scenario, agg.AvgLatency)
	}
	return res, nil
}

// Render prints measured-vs-paper rows.
func (r *Table2Result) Render() string {
	rows := make([][]string, 0, len(r.Rows)*2)
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d copies", row.Copies), row.Scenario, "measured",
			fmt.Sprintf("%.1f%%", 100*row.Agg.DeliveryRatio.Mean),
			row.Agg.AvgLatency.String(),
			row.Agg.AvgHops.String(),
			row.Agg.AvgPeakStorage.String(),
		})
		rows = append(rows, []string{
			"", "", "paper",
			fmt.Sprintf("%.1f%%", 100*row.Paper.Rate),
			fmt.Sprintf("%.1f±%.1f", row.Paper.Latency, row.Paper.LatencyCI),
			fmt.Sprintf("%.1f±%.1f", row.Paper.Hops, row.Paper.HopsCI),
			fmt.Sprintf("%.1f±%.1f", row.Paper.Storage, row.Paper.StorageCI),
		})
	}
	var sb strings.Builder
	sb.WriteString(asciiplot.Table{
		Title:   fmt.Sprintf("Table 2: location-information availability (%d msgs, 100 m)", r.Messages),
		Headers: []string{"Copies", "Destination location", "Source", "Rate", "Latency (s)", "Hops", "Storage"},
		Rows:    rows,
	}.Render())
	sb.WriteString("Paper ordering: all-know(1cp) < source-knows(3cp) < source-knows(1cp) < none-know(3cp) on latency.\n")
	return sb.String()
}

// LatencyOrderingHolds reports whether the paper's qualitative Table-2
// ordering came out of the measurement (used by tests).
func (r *Table2Result) LatencyOrderingHolds() bool {
	if len(r.Rows) != 4 {
		return false
	}
	l := func(i int) float64 { return r.Rows[i].Agg.AvgLatency.Mean }
	return l(0) <= l(1) && l(1) <= l(2) && l(2) <= l(3)
}
