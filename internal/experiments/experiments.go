// Package experiments regenerates every table and figure of the paper's
// evaluation section (§3). Each experiment is a function taking Options
// and returning a typed result whose Render method prints the artifact in
// the paper's layout, side by side with the paper's reported values where
// the paper gives them.
//
// All experiments honour the paper's methodology: multiple independent
// replications (10 in the paper) with different seeds, aggregated as mean
// ± Student-t confidence half-width at the 90% level.
package experiments

import (
	"context"
	"fmt"
	"math"

	"glr/internal/core"
	"glr/internal/epidemic"
	"glr/internal/metrics"
	"glr/internal/runner"
	"glr/internal/sim"
	"glr/internal/stats"
)

// Options scales an experiment between quick smoke runs and full paper
// fidelity.
type Options struct {
	// Runs is the number of independent replications (paper: 10).
	Runs int
	// MsgScale multiplies every message count (1.0 = paper scale). The
	// per-node storage limits of Figure 7 scale along with it so the
	// pressure regime is preserved.
	MsgScale float64
	// TimeScale multiplies simulation horizons (1.0 = paper scale).
	// Horizons never drop below the traffic generation span + slack.
	TimeScale float64
	// Confidence is the two-sided confidence level (paper: 0.90).
	Confidence float64
	// BaseSeed seeds replication r with BaseSeed + r.
	BaseSeed int64
	// Parallel runs replications on all CPUs.
	Parallel bool
	// Ctx, when non-nil, cancels replication sweeps: once done, queued
	// runs are abandoned and in-flight ones stop between event batches.
	Ctx context.Context
	// Progress, when non-nil, receives one line per completed scenario.
	Progress func(format string, args ...any)
}

// PaperOptions reproduces the paper's methodology at full scale. A full
// pass over every experiment takes tens of CPU-minutes.
func PaperOptions() Options {
	return Options{Runs: 10, MsgScale: 1, TimeScale: 1, Confidence: 0.90, BaseSeed: 1, Parallel: true}
}

// QuickOptions is a scaled-down configuration for tests, benchmarks, and
// smoke runs: 3 replications at one-fifth the message load.
func QuickOptions() Options {
	return Options{Runs: 3, MsgScale: 0.2, TimeScale: 1, Confidence: 0.90, BaseSeed: 1, Parallel: true}
}

// Validate reports a descriptive error for unusable options.
func (o Options) Validate() error {
	switch {
	case o.Runs < 1:
		return fmt.Errorf("experiments: runs %d must be ≥ 1", o.Runs)
	case o.MsgScale <= 0 || o.MsgScale > 1:
		return fmt.Errorf("experiments: message scale %v must be in (0,1]", o.MsgScale)
	case o.TimeScale <= 0 || o.TimeScale > 1:
		return fmt.Errorf("experiments: time scale %v must be in (0,1]", o.TimeScale)
	case o.Confidence <= 0 || o.Confidence >= 1:
		return fmt.Errorf("experiments: confidence %v must be in (0,1)", o.Confidence)
	}
	return nil
}

// messages scales a paper message count.
func (o Options) messages(paperCount int) int {
	n := int(math.Round(float64(paperCount) * o.MsgScale))
	if n < 1 {
		n = 1
	}
	return n
}

// horizon scales a paper simulation time, keeping enough room for the
// scaled traffic (generated at 1 msg/s) plus delivery slack.
func (o Options) horizon(paperTime float64, msgs int) float64 {
	t := paperTime * o.TimeScale
	floor := float64(msgs) + 600
	if t < floor {
		t = floor
	}
	return t
}

func (o Options) progress(format string, args ...any) {
	if o.Progress != nil {
		o.Progress(format, args...)
	}
}

// ProtocolKind selects a routing protocol for a scenario run.
type ProtocolKind int

// Protocols under comparison.
const (
	ProtoGLR ProtocolKind = iota
	ProtoEpidemic
)

// String implements fmt.Stringer.
func (p ProtocolKind) String() string {
	if p == ProtoEpidemic {
		return "Epidemic"
	}
	return "GLR"
}

// runSpec describes one scenario execution.
type runSpec struct {
	scenario sim.Scenario
	proto    ProtocolKind
	glrCfg   *core.Config     // nil = DefaultConfig
	epiCfg   *epidemic.Config // nil = DefaultConfig
}

// execute builds and runs one world under ctx.
func (rs runSpec) execute(ctx context.Context) (metrics.Report, error) {
	var factory sim.ProtocolFactory
	var err error
	switch rs.proto {
	case ProtoEpidemic:
		cfg := epidemic.DefaultConfig()
		if rs.epiCfg != nil {
			cfg = *rs.epiCfg
		}
		factory, err = epidemic.New(cfg)
	default:
		cfg := core.DefaultConfig()
		if rs.glrCfg != nil {
			cfg = *rs.glrCfg
		}
		factory, err = core.New(cfg)
	}
	if err != nil {
		return metrics.Report{}, err
	}
	w, err := sim.NewWorld(rs.scenario, factory)
	if err != nil {
		return metrics.Report{}, err
	}
	return w.RunContext(ctx)
}

// replicate runs spec o.Runs times with seeds BaseSeed..BaseSeed+Runs-1
// through the shared worker pool (internal/runner) and returns the
// per-run reports in seed order.
func (o Options) replicate(spec runSpec) ([]metrics.Report, error) {
	workers := 1
	if o.Parallel {
		workers = 0 // runner.Run: GOMAXPROCS
	}
	jobs := make([]runner.Job[metrics.Report], o.Runs)
	for r := 0; r < o.Runs; r++ {
		s := spec
		s.scenario.Seed = o.BaseSeed + int64(r)
		jobs[r] = func(ctx context.Context) (metrics.Report, error) {
			return s.execute(ctx)
		}
	}
	return runner.Run(o.Ctx, workers, jobs)
}

// Agg aggregates replications of one scenario point: mean ± CI for every
// metric the paper reports.
type Agg struct {
	DeliveryRatio  stats.MeanCI
	AvgLatency     stats.MeanCI
	AvgHops        stats.MeanCI
	MaxPeakStorage stats.MeanCI
	AvgPeakStorage stats.MeanCI
}

// aggregate folds replication reports at the configured confidence level.
func (o Options) aggregate(reports []metrics.Report) Agg {
	pull := func(f func(metrics.Report) float64) stats.MeanCI {
		xs := make([]float64, len(reports))
		for i, r := range reports {
			xs[i] = f(r)
		}
		return stats.ConfidenceInterval(xs, o.Confidence)
	}
	return Agg{
		DeliveryRatio:  pull(func(r metrics.Report) float64 { return r.DeliveryRatio }),
		AvgLatency:     pull(func(r metrics.Report) float64 { return r.AvgLatency }),
		AvgHops:        pull(func(r metrics.Report) float64 { return r.AvgHops }),
		MaxPeakStorage: pull(func(r metrics.Report) float64 { return float64(r.MaxPeakStorage) }),
		AvgPeakStorage: pull(func(r metrics.Report) float64 { return r.AvgPeakStorage }),
	}
}

// runPoint is the common "replicate one scenario and aggregate" helper.
func (o Options) runPoint(spec runSpec) (Agg, error) {
	reports, err := o.replicate(spec)
	if err != nil {
		return Agg{}, err
	}
	return o.aggregate(reports), nil
}
