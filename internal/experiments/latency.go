package experiments

import (
	"fmt"
	"strings"

	"glr/internal/asciiplot"
	"glr/internal/sim"
)

// LatencySweepResult reproduces Figures 4 and 5: GLR vs epidemic delivery
// latency as the number of messages in transit grows, at a fixed radius.
type LatencySweepResult struct {
	Radius   float64
	Messages []int
	GLR      []Agg
	Epidemic []Agg
	Figure   string // "Figure 4" (50 m) or "Figure 5" (100 m)
}

// Fig45Latency runs the Figure-4 (radius 50) or Figure-5 (radius 100)
// sweep.
func Fig45Latency(o Options, radius float64) (*LatencySweepResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	figure := "Figure 4"
	if radius >= 100 {
		figure = "Figure 5"
	}
	res := &LatencySweepResult{Radius: radius, Figure: figure}
	for _, paperMsgs := range []int{400, 800, 1180, 1580, 1980} {
		msgs := o.messages(paperMsgs)
		res.Messages = append(res.Messages, msgs)
		s := sim.DefaultScenario(radius)
		s.Traffic = sim.PaperTraffic(msgs)
		s.SimTime = o.horizon(3800, msgs)
		glr, err := o.runPoint(runSpec{scenario: s, proto: ProtoGLR})
		if err != nil {
			return nil, err
		}
		epi, err := o.runPoint(runSpec{scenario: s, proto: ProtoEpidemic})
		if err != nil {
			return nil, err
		}
		res.GLR = append(res.GLR, glr)
		res.Epidemic = append(res.Epidemic, epi)
		o.progress("%s: %d msgs -> GLR %s, epidemic %s", figure, msgs, glr.AvgLatency, epi.AvgLatency)
	}
	return res, nil
}

// Render prints the figure.
func (r *LatencySweepResult) Render() string {
	xs := make([]float64, len(r.Messages))
	glr := make([]float64, len(r.GLR))
	epi := make([]float64, len(r.Epidemic))
	for i := range r.Messages {
		xs[i] = float64(r.Messages[i])
		glr[i] = r.GLR[i].AvgLatency.Mean
		epi[i] = r.Epidemic[i].AvgLatency.Mean
	}
	var sb strings.Builder
	sb.WriteString(asciiplot.Chart{
		Title:      fmt.Sprintf("%s: latency vs messages in transit (%.0f m radius)", r.Figure, r.Radius),
		XLabel:     "messages in transit",
		YLabel:     "latency (s)",
		ForceYZero: true,
		Series: []asciiplot.Series{
			{Name: "GLR", X: xs, Y: glr},
			{Name: "Epidemic", X: xs, Y: epi},
		},
	}.Render())
	rows := make([][]string, len(xs))
	for i := range xs {
		rows[i] = []string{
			fmt.Sprintf("%d", r.Messages[i]),
			r.GLR[i].AvgLatency.String(),
			r.Epidemic[i].AvgLatency.String(),
			fmt.Sprintf("%.3f", r.GLR[i].DeliveryRatio.Mean),
			fmt.Sprintf("%.3f", r.Epidemic[i].DeliveryRatio.Mean),
		}
	}
	sb.WriteString(asciiplot.Table{
		Headers: []string{"Messages", "GLR lat (s)", "Epidemic lat (s)", "GLR ratio", "Epi ratio"},
		Rows:    rows,
	}.Render())
	sb.WriteString("Paper: epidemic latency grows with messages in transit due to contention;\n" +
		"GLR stays flatter and wins at high load.\n")
	return sb.String()
}

// EpidemicGrowsWithLoad reports whether epidemic latency increased from
// the lightest to the heaviest load point (the paper's headline trend).
func (r *LatencySweepResult) EpidemicGrowsWithLoad() bool {
	if len(r.Epidemic) < 2 {
		return false
	}
	return r.Epidemic[len(r.Epidemic)-1].AvgLatency.Mean > r.Epidemic[0].AvgLatency.Mean
}

// Fig6Result reproduces Figure 6: latency vs transmission radius at 1980
// messages (GLR uses 3 copies at 50/100 m, 1 copy at 150/200/250 m via
// Algorithm 1).
type Fig6Result struct {
	Radius   []float64
	GLR      []Agg
	Epidemic []Agg
	Messages int
}

// Fig6LatencyRadius runs the Figure-6 sweep.
func Fig6LatencyRadius(o Options) (*Fig6Result, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	msgs := o.messages(1980)
	res := &Fig6Result{Messages: msgs}
	for _, radius := range []float64{50, 100, 150, 200, 250} {
		s := sim.DefaultScenario(radius)
		s.Traffic = sim.PaperTraffic(msgs)
		s.SimTime = o.horizon(3800, msgs)
		glr, err := o.runPoint(runSpec{scenario: s, proto: ProtoGLR})
		if err != nil {
			return nil, err
		}
		epi, err := o.runPoint(runSpec{scenario: s, proto: ProtoEpidemic})
		if err != nil {
			return nil, err
		}
		res.Radius = append(res.Radius, radius)
		res.GLR = append(res.GLR, glr)
		res.Epidemic = append(res.Epidemic, epi)
		o.progress("fig6: %.0f m -> GLR %s, epidemic %s", radius, glr.AvgLatency, epi.AvgLatency)
	}
	return res, nil
}

// Render prints the figure.
func (r *Fig6Result) Render() string {
	glr := make([]float64, len(r.GLR))
	epi := make([]float64, len(r.Epidemic))
	for i := range r.Radius {
		glr[i] = r.GLR[i].AvgLatency.Mean
		epi[i] = r.Epidemic[i].AvgLatency.Mean
	}
	var sb strings.Builder
	sb.WriteString(asciiplot.Chart{
		Title:      fmt.Sprintf("Figure 6: latency vs radius (%d messages)", r.Messages),
		XLabel:     "radius (m)",
		YLabel:     "latency (s)",
		ForceYZero: true,
		Series: []asciiplot.Series{
			{Name: "GLR", X: r.Radius, Y: glr},
			{Name: "Epidemic", X: r.Radius, Y: epi},
		},
	}.Render())
	rows := make([][]string, len(r.Radius))
	for i := range r.Radius {
		rows[i] = []string{
			fmt.Sprintf("%.0f m", r.Radius[i]),
			r.GLR[i].AvgLatency.String(),
			r.Epidemic[i].AvgLatency.String(),
		}
	}
	sb.WriteString(asciiplot.Table{
		Headers: []string{"Radius", "GLR lat (s)", "Epidemic lat (s)"},
		Rows:    rows,
	}.Render())
	sb.WriteString("Paper: both curves fall with radius; GLR stays below epidemic.\n")
	return sb.String()
}

// BothDecreaseWithRadius reports whether both protocols' latencies fall
// from 50 m to 250 m (the paper's Figure-6 trend).
func (r *Fig6Result) BothDecreaseWithRadius() bool {
	n := len(r.Radius)
	if n < 2 {
		return false
	}
	return r.GLR[n-1].AvgLatency.Mean < r.GLR[0].AvgLatency.Mean &&
		r.Epidemic[n-1].AvgLatency.Mean < r.Epidemic[0].AvgLatency.Mean
}
