package experiments

import (
	"fmt"
	"strings"

	"glr/internal/asciiplot"
	"glr/internal/fault"
	"glr/internal/sim"
)

// DisruptionIntensities are the fault-intensity knob positions the
// robustness sweep evaluates, from fault-free to the full composite.
var DisruptionIntensities = []float64{0, 0.25, 0.5, 0.75, 1.0}

// DisruptionFaults composes the sweep's fault set at intensity x in
// [0,1]: churn, link blackouts, GPS noise, and Byzantine nodes all
// scale together so one knob moves the network from pristine to
// heavily disrupted. Intensity 0 is the empty set — the byte-identical
// fault-free fast path.
func DisruptionFaults(x float64) []fault.Spec {
	if x == 0 {
		return nil
	}
	return []fault.Spec{
		{Kind: fault.Churn, Rate: 0.004 * x, Duration: 30},
		{Kind: fault.LinkBlackout, Rate: 0.3 * x, Period: 20},
		{Kind: fault.GPSNoise, Sigma: 50 * x},
		{Kind: fault.Byzantine, Fraction: 0.2 * x},
	}
}

// DisruptionResult holds the robustness curve: delivery and latency for
// GLR and epidemic at each fault intensity.
type DisruptionResult struct {
	Intensity []float64
	GLR       []Agg
	Epidemic  []Agg
	Messages  int
}

// Disruption runs the robustness sweep: both protocols across the
// composite fault ramp at the paper's baseline scenario (100 m range).
// The same seeds replay the same fault schedules for both protocols, so
// the curves differ only in routing behavior.
func Disruption(o Options) (*DisruptionResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	msgs := o.messages(1980)
	res := &DisruptionResult{Messages: msgs}
	for _, x := range DisruptionIntensities {
		s := sim.DefaultScenario(100)
		s.Traffic = sim.PaperTraffic(msgs)
		s.SimTime = o.horizon(3800, msgs)
		s.Faults = DisruptionFaults(x)
		glrAgg, err := o.runPoint(runSpec{scenario: s, proto: ProtoGLR})
		if err != nil {
			return nil, err
		}
		epiAgg, err := o.runPoint(runSpec{scenario: s, proto: ProtoEpidemic})
		if err != nil {
			return nil, err
		}
		res.Intensity = append(res.Intensity, x)
		res.GLR = append(res.GLR, glrAgg)
		res.Epidemic = append(res.Epidemic, epiAgg)
		o.progress("disruption: intensity %.2f -> GLR %s, epidemic %s",
			x, glrAgg.DeliveryRatio, epiAgg.DeliveryRatio)
	}
	return res, nil
}

// Render prints the robustness table and the delivery-vs-intensity
// curve.
func (r *DisruptionResult) Render() string {
	rows := make([][]string, len(r.Intensity))
	for i := range r.Intensity {
		rows[i] = []string{
			fmt.Sprintf("%.2f", r.Intensity[i]),
			r.GLR[i].DeliveryRatio.String(),
			r.GLR[i].AvgLatency.String(),
			r.Epidemic[i].DeliveryRatio.String(),
			r.Epidemic[i].AvgLatency.String(),
		}
	}
	var sb strings.Builder
	sb.WriteString(asciiplot.Table{
		Title: fmt.Sprintf("Robustness: delivery under composite disruption (%d msgs, 100 m)\n"+
			"intensity x scales churn(rate=%.3fx,dur=30) + link-blackout(rate=%.1fx,period=20)\n"+
			"+ gps-noise(sigma=%.0fx) + byzantine(frac=%.1fx)", r.Messages, 0.004, 0.3, 50.0, 0.2),
		Headers: []string{"Intensity", "GLR delivery", "GLR latency (s)", "Epi delivery", "Epi latency (s)"},
		Rows:    rows,
	}.Render())
	glrSeries := asciiplot.Series{Name: "GLR", Marker: '*', X: r.Intensity}
	epiSeries := asciiplot.Series{Name: "Epidemic", Marker: '+', X: r.Intensity}
	for i := range r.Intensity {
		glrSeries.Y = append(glrSeries.Y, r.GLR[i].DeliveryRatio.Mean)
		epiSeries.Y = append(epiSeries.Y, r.Epidemic[i].DeliveryRatio.Mean)
	}
	sb.WriteString(asciiplot.Chart{
		Title:  "mean delivery ratio vs fault intensity",
		XLabel: "intensity",
		YMin:   0, YMax: 1,
		Series: []asciiplot.Series{glrSeries, epiSeries},
	}.Render())
	sb.WriteString("Robustness curve: delivery degrades monotonically with fault intensity;\n")
	sb.WriteString("epidemic's redundant copies buy fault tolerance at higher overhead.\n")
	return sb.String()
}

// DeliveryDegrades reports whether the fault-free point beats the full
// disruption point for both protocols — the sweep's sanity trend.
func (r *DisruptionResult) DeliveryDegrades() bool {
	n := len(r.Intensity)
	if n < 2 {
		return false
	}
	return r.GLR[0].DeliveryRatio.Mean > r.GLR[n-1].DeliveryRatio.Mean &&
		r.Epidemic[0].DeliveryRatio.Mean > r.Epidemic[n-1].DeliveryRatio.Mean
}
