package experiments

import (
	"fmt"
	"strings"

	"glr/internal/asciiplot"
	"glr/internal/sim"
)

// Table6Result reproduces Table 6: average hop counts of GLR vs epidemic
// across radii (1980 messages).
type Table6Result struct {
	Radius   []float64
	GLR      []Agg
	Epidemic []Agg
	Messages int
}

// Table6HopCounts runs the Table-6 sweep.
func Table6HopCounts(o Options) (*Table6Result, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	msgs := o.messages(1980)
	res := &Table6Result{Messages: msgs}
	for _, radius := range PaperTable6.Radius {
		s := sim.DefaultScenario(radius)
		s.Traffic = sim.PaperTraffic(msgs)
		s.SimTime = o.horizon(3800, msgs)
		glr, err := o.runPoint(runSpec{scenario: s, proto: ProtoGLR})
		if err != nil {
			return nil, err
		}
		epi, err := o.runPoint(runSpec{scenario: s, proto: ProtoEpidemic})
		if err != nil {
			return nil, err
		}
		res.Radius = append(res.Radius, radius)
		res.GLR = append(res.GLR, glr)
		res.Epidemic = append(res.Epidemic, epi)
		o.progress("table6: %.0f m -> GLR %s, epidemic %s hops", radius, glr.AvgHops, epi.AvgHops)
	}
	return res, nil
}

// Render prints measured-vs-paper rows.
func (r *Table6Result) Render() string {
	rows := make([][]string, len(r.Radius))
	for i := range r.Radius {
		rows[i] = []string{
			fmt.Sprintf("%.0f m", r.Radius[i]),
			r.GLR[i].AvgHops.String(),
			fmt.Sprintf("%.2f±%.2f", PaperTable6.GLR[i], PaperTable6.GLRCI[i]),
			r.Epidemic[i].AvgHops.String(),
			fmt.Sprintf("%.2f±%.2f", PaperTable6.Epidemic[i], PaperTable6.EpiCI[i]),
		}
	}
	var sb strings.Builder
	sb.WriteString(asciiplot.Table{
		Title:   fmt.Sprintf("Table 6: hop counts vs radius (%d msgs)", r.Messages),
		Headers: []string{"Radius", "GLR hops", "Paper GLR", "Epidemic hops", "Paper epidemic"},
		Rows:    rows,
	}.Render())
	sb.WriteString("Paper: GLR re-forwards whenever relative positions change, so its hop\n" +
		"counts exceed epidemic's and grow as the radius shrinks.\n")
	return sb.String()
}

// GLRHopsExceedEpidemic reports the Table-6 relationship at the sparsest
// radius.
func (r *Table6Result) GLRHopsExceedEpidemic() bool {
	n := len(r.Radius)
	if n == 0 {
		return false
	}
	return r.GLR[n-1].AvgHops.Mean > r.Epidemic[n-1].AvgHops.Mean
}

// GLRHopsGrowAsRadiusShrinks reports the other Table-6 trend (rows ordered
// 250 m → 50 m).
func (r *Table6Result) GLRHopsGrowAsRadiusShrinks() bool {
	n := len(r.GLR)
	if n < 2 {
		return false
	}
	return r.GLR[n-1].AvgHops.Mean > r.GLR[0].AvgHops.Mean
}
