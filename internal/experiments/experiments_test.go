package experiments

import (
	"strings"
	"testing"
)

// tinyOptions keeps experiment tests fast: one replication at 5% load.
func tinyOptions() Options {
	return Options{Runs: 1, MsgScale: 0.05, TimeScale: 1, Confidence: 0.90, BaseSeed: 7, Parallel: true}
}

func TestOptionsValidate(t *testing.T) {
	if err := PaperOptions().Validate(); err != nil {
		t.Errorf("paper options invalid: %v", err)
	}
	if err := QuickOptions().Validate(); err != nil {
		t.Errorf("quick options invalid: %v", err)
	}
	bad := []Options{
		{Runs: 0, MsgScale: 1, TimeScale: 1, Confidence: 0.9},
		{Runs: 1, MsgScale: 0, TimeScale: 1, Confidence: 0.9},
		{Runs: 1, MsgScale: 2, TimeScale: 1, Confidence: 0.9},
		{Runs: 1, MsgScale: 1, TimeScale: 0, Confidence: 0.9},
		{Runs: 1, MsgScale: 1, TimeScale: 1, Confidence: 1},
	}
	for i, o := range bad {
		if o.Validate() == nil {
			t.Errorf("bad options %d accepted", i)
		}
	}
}

func TestOptionsScaling(t *testing.T) {
	o := Options{Runs: 1, MsgScale: 0.25, TimeScale: 0.5, Confidence: 0.9}
	if got := o.messages(1980); got != 495 {
		t.Errorf("messages = %d, want 495", got)
	}
	if got := o.messages(1); got != 1 {
		t.Errorf("messages floor = %d, want 1", got)
	}
	// Horizon never below generation span + slack.
	if got := o.horizon(3800, 495); got < 495+600 {
		t.Errorf("horizon = %v, too small", got)
	}
	if got := o.horizon(3800, 10); got != 1900 {
		t.Errorf("horizon = %v, want 1900 (scaled)", got)
	}
}

func TestFig1Connectivity(t *testing.T) {
	o := tinyOptions()
	res, err := Fig1Connectivity(o)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's qualitative claim must reproduce: 250 m mostly
	// connected (few components), 100 m essentially never connected.
	if res.ConnectedFrac[0] < 0.5 {
		t.Errorf("250 m connected fraction = %v, expected mostly connected", res.ConnectedFrac[0])
	}
	if res.ConnectedFrac[1] > 0.1 {
		t.Errorf("100 m connected fraction = %v, expected almost never", res.ConnectedFrac[1])
	}
	if res.EdgeCount[0].Mean <= res.EdgeCount[1].Mean {
		t.Error("larger radius must produce more edges")
	}
	out := res.Render()
	for _, want := range []string{"Figure 1", "Radius", "Connected", "O"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFig3CheckInterval(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	res, err := Fig3CheckInterval(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Latency) != len(res.Intervals) {
		t.Fatalf("got %d points", len(res.Latency))
	}
	for i, a := range res.Latency {
		if a.DeliveryRatio.Mean <= 0 {
			t.Errorf("interval %v: nothing delivered", res.Intervals[i])
		}
	}
	if !strings.Contains(res.Render(), "Figure 3") {
		t.Error("render missing title")
	}
}

func TestTable3Custody(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	res, err := Table3Custody(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.With.DeliveryRatio.Mean <= 0 {
		t.Fatal("custody run delivered nothing")
	}
	out := res.Render()
	if !strings.Contains(out, "custody") || !strings.Contains(out, "84.7%") {
		t.Error("render should include measured and paper values")
	}
}

func TestFig45LatencySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	o := tinyOptions()
	res, err := Fig45Latency(o, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Figure != "Figure 5" {
		t.Errorf("figure label = %q", res.Figure)
	}
	if len(res.GLR) != 5 || len(res.Epidemic) != 5 {
		t.Fatalf("want 5 sweep points")
	}
	if !strings.Contains(res.Render(), "Figure 5") {
		t.Error("render missing title")
	}
}

func TestDisruptionSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	res, err := Disruption(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Intensity) != len(DisruptionIntensities) {
		t.Fatalf("want %d sweep points, got %d", len(DisruptionIntensities), len(res.Intensity))
	}
	if res.GLR[0].DeliveryRatio.Mean == 0 {
		t.Error("fault-free GLR point delivered nothing")
	}
	out := res.Render()
	if !strings.Contains(out, "Robustness") || !strings.Contains(out, "fault intensity") {
		t.Error("render missing robustness table or curve")
	}
}

func TestDisruptionFaultsRamp(t *testing.T) {
	if got := DisruptionFaults(0); got != nil {
		t.Errorf("intensity 0 must be the empty fault set, got %v", got)
	}
	full := DisruptionFaults(1)
	if len(full) != 4 {
		t.Fatalf("want 4 composed models, got %d", len(full))
	}
	half := DisruptionFaults(0.5)
	for i := range full {
		if half[i].Kind != full[i].Kind {
			t.Errorf("model %d kind changed with intensity", i)
		}
	}
	if half[0].Rate*2 != full[0].Rate {
		t.Error("churn rate does not scale linearly with intensity")
	}
}

func TestTable4StorageSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	res, err := Table4StorageByMessages(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.StorageGrowsWithMessages() {
		t.Error("storage should grow with message count")
	}
	if !strings.Contains(res.Render(), "Table 4") {
		t.Error("render missing title")
	}
}

func TestNodeCountSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	// Tiny sizes keep this a smoke test; the real sweep (100..1000
	// nodes) runs through `glrexp -exp scale`.
	res, err := NodeCountSweep(tinyOptions(), []int{20, 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(res.Points))
	}
	for _, p := range res.Points {
		if p.WallCached <= 0 || p.WallScratch <= 0 {
			t.Errorf("n=%d: wall-clock not measured: cached %v scratch %v", p.N, p.WallCached, p.WallScratch)
		}
		if p.SpannerCached <= 0 || p.SpannerScratch <= 0 {
			t.Errorf("n=%d: spanner time not measured: cached %v scratch %v", p.N, p.SpannerCached, p.SpannerScratch)
		}
		if !p.Identical {
			t.Errorf("n=%d: fast, from-scratch, and map-table runs diverged", p.N)
		}
		if p.AllocsDense == 0 || p.AllocsMapTables == 0 {
			t.Errorf("n=%d: allocation pressure not measured: dense %d map %d",
				p.N, p.AllocsDense, p.AllocsMapTables)
		}
		if p.Region.W <= p.Region.H {
			t.Errorf("n=%d: region %v should keep the 5:1 aspect", p.N, p.Region)
		}
	}
	// Density must stay fixed: region area scales linearly with n.
	a0 := res.Points[0].Region.Area() / float64(res.Points[0].N)
	a1 := res.Points[1].Region.Area() / float64(res.Points[1].N)
	if a0 < a1*0.99 || a0 > a1*1.01 {
		t.Errorf("per-node area drifts: %.1f vs %.1f", a0, a1)
	}
	out := res.Render()
	for _, want := range []string{"scaling sweep", "Spanner", "Spd-up", "Allocs", "Δalloc", "identical"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestNodeCountSweepRejectsBadSizes(t *testing.T) {
	if _, err := NodeCountSweep(tinyOptions(), []int{1}); err == nil {
		t.Error("node count 1 accepted")
	}
}

func TestAggregateConfidence(t *testing.T) {
	// aggregate must produce zero halfwidth for single runs and sane CIs
	// for multiple.
	o := Options{Runs: 1, MsgScale: 1, TimeScale: 1, Confidence: 0.9}
	agg := o.aggregate(nil)
	if agg.AvgLatency.Mean != 0 {
		t.Error("empty aggregate should be zero")
	}
}

func TestProtocolKindString(t *testing.T) {
	if ProtoGLR.String() != "GLR" || ProtoEpidemic.String() != "Epidemic" {
		t.Error("protocol names wrong")
	}
}
