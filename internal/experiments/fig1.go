package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"glr/internal/asciiplot"
	"glr/internal/geom"
	"glr/internal/mobility"
	"glr/internal/stats"
)

// Fig1Result reproduces Figure 1: the connectivity structure of 50
// uniformly random nodes in a 1000×1000 m area at 250 m and 100 m radii.
// The paper draws one topology per radius; we additionally quantify the
// claim ("when the radius is 250m, the networks are either connected or
// only a few nodes are disconnected ... [at 100m] the possibility of
// network connection is almost impossible") over many seeds.
type Fig1Result struct {
	Radii          []float64
	EdgeCount      []stats.MeanCI
	ComponentCount []stats.MeanCI
	IsolatedNodes  []stats.MeanCI
	ConnectedFrac  []float64
	Snapshots      []string // one rendered topology per radius
}

// Fig1Connectivity runs the Figure-1 study.
func Fig1Connectivity(o Options) (*Fig1Result, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	const n = 50
	region := mobility.Region{W: 1000, H: 1000}
	trials := o.Runs * 10 // cheap static study: use more seeds
	res := &Fig1Result{Radii: []float64{250, 100}}
	for _, r := range res.Radii {
		var edges, comps, isolated []float64
		connected := 0
		var snapshot string
		for t := 0; t < trials; t++ {
			rng := rand.New(rand.NewSource(o.BaseSeed + int64(t)))
			pts := make([]geom.Point, n)
			for i := range pts {
				pts[i] = region.RandomPoint(rng)
			}
			g := geom.UnitDiskGraph(pts, r)
			edges = append(edges, float64(g.EdgeCount()))
			cs := g.Components()
			comps = append(comps, float64(len(cs)))
			iso := 0
			for _, c := range cs {
				if len(c) == 1 {
					iso++
				}
			}
			isolated = append(isolated, float64(iso))
			if g.Connected() {
				connected++
			}
			if t == 0 {
				pp := make([][2]float64, n)
				for i, p := range pts {
					pp[i] = [2]float64{p.X, p.Y}
				}
				snapshot = asciiplot.Scatter{
					Title:  fmt.Sprintf("Figure 1: 50 nodes, radius %.0f m, 1000x1000 m", r),
					W:      region.W,
					H:      region.H,
					Points: pp,
					Edges:  g.Edges(),
				}.Render()
			}
		}
		res.EdgeCount = append(res.EdgeCount, stats.ConfidenceInterval(edges, o.Confidence))
		res.ComponentCount = append(res.ComponentCount, stats.ConfidenceInterval(comps, o.Confidence))
		res.IsolatedNodes = append(res.IsolatedNodes, stats.ConfidenceInterval(isolated, o.Confidence))
		res.ConnectedFrac = append(res.ConnectedFrac, float64(connected)/float64(trials))
		res.Snapshots = append(res.Snapshots, snapshot)
		o.progress("fig1: radius %.0f m done (%d trials)", r, trials)
	}
	return res, nil
}

// Render prints the figure and the quantified connectivity claim.
func (r *Fig1Result) Render() string {
	var sb strings.Builder
	for _, snap := range r.Snapshots {
		sb.WriteString(snap)
		sb.WriteByte('\n')
	}
	rows := make([][]string, len(r.Radii))
	for i := range r.Radii {
		rows[i] = []string{
			fmt.Sprintf("%.0f m", r.Radii[i]),
			r.EdgeCount[i].String(),
			r.ComponentCount[i].String(),
			r.IsolatedNodes[i].String(),
			fmt.Sprintf("%.0f%%", 100*r.ConnectedFrac[i]),
		}
	}
	sb.WriteString(asciiplot.Table{
		Title:   "Figure 1 (quantified): topology of 50 nodes in 1000x1000 m",
		Headers: []string{"Radius", "Edges", "Components", "Isolated", "Connected"},
		Rows:    rows,
	}.Render())
	sb.WriteString("\nPaper claim: at 250 m networks are connected or nearly so;\n" +
		"at 100 m connection is almost impossible.\n")
	return sb.String()
}
