package experiments

// The paper's reported numbers, embedded so every rendered artifact can
// print "paper vs measured" side by side (EXPERIMENTS.md is generated from
// these comparisons). Values are transcribed from the tables; figure
// values are approximate readings noted as such where used.

// PaperTable2Row holds one row of Table 2 (location-information
// availability, 100 m, 1980 messages).
type PaperTable2Row struct {
	Copies    int
	Scenario  string
	Rate      float64 // delivery ratio
	Latency   float64 // seconds
	LatencyCI float64
	Hops      float64
	HopsCI    float64
	Storage   float64 // messages per node (peak)
	StorageCI float64
}

// PaperTable2 is Table 2 as published.
var PaperTable2 = []PaperTable2Row{
	{Copies: 1, Scenario: "All nodes know", Rate: 1.0, Latency: 120.2, LatencyCI: 8.5, Hops: 14.9, HopsCI: 0.3, Storage: 38.3, StorageCI: 1.4},
	{Copies: 3, Scenario: "Only source knows", Rate: 1.0, Latency: 149.7, LatencyCI: 9.6, Hops: 17.3, HopsCI: 0.4, Storage: 43.6, StorageCI: 1.4},
	{Copies: 1, Scenario: "Only source knows", Rate: 1.0, Latency: 156.1, LatencyCI: 11.2, Hops: 18.0, HopsCI: 0.3, Storage: 40.3, StorageCI: 2.0},
	{Copies: 3, Scenario: "No nodes know", Rate: 0.999, Latency: 212.4, LatencyCI: 16.6, Hops: 23.1, HopsCI: 0.5, Storage: 50.9, StorageCI: 3.8},
}

// PaperTable3 is Table 3 (custody transfer, 890 messages, 50 m, 1200 s).
var PaperTable3 = struct {
	WithoutCustody, WithoutCI float64
	WithCustody, WithCI       float64
}{
	WithoutCustody: 0.847, WithoutCI: 0.01,
	WithCustody: 0.979, WithCI: 0.01,
}

// PaperTable4 is Table 4 (storage vs message count, 50 m, 3 copies).
var PaperTable4 = struct {
	Messages []int
	MaxPeak  []float64
	MaxCI    []float64
	AvgPeak  []float64
	AvgCI    []float64
}{
	Messages: []int{400, 600, 890, 1180, 1980},
	MaxPeak:  []float64{39, 43.9, 49.1, 59.9, 69},
	MaxCI:    []float64{4.67, 3.38, 2.97, 7.17, 5.82},
	AvgPeak:  []float64{21.31, 25.77, 30.2, 37.28, 43.64},
	AvgCI:    []float64{0.59, 1.05, 1.23, 2.82, 1.42},
}

// PaperTable5 is Table 5 (storage vs radius, 1980 messages; 3 copies at
// 50/100 m, 1 copy at 150/200/250 m).
var PaperTable5 = struct {
	Radius  []float64
	MaxPeak []float64
	MaxCI   []float64
	AvgPeak []float64
	AvgCI   []float64
}{
	Radius:  []float64{250, 200, 150, 100, 50},
	MaxPeak: []float64{6.9, 14.3, 24.3, 48.4, 69},
	MaxCI:   []float64{4.29, 4.81, 4.54, 6.52, 5.82},
	AvgPeak: []float64{1.76, 3.28, 8.36, 25.82, 43.64},
	AvgCI:   []float64{0.72, 1.06, 0.95, 1.37, 1.42},
}

// PaperTable6 is Table 6 (hop counts vs radius, 1980 messages).
var PaperTable6 = struct {
	Radius   []float64
	GLR      []float64
	GLRCI    []float64
	Epidemic []float64
	EpiCI    []float64
}{
	Radius:   []float64{250, 200, 150, 100, 50},
	GLR:      []float64{3.4, 4.1, 5.23, 8.75, 17.32},
	GLRCI:    []float64{0.04, 0.05, 0.13, 0.13, 0.4},
	Epidemic: []float64{3.19, 3.64, 4.58, 4.92, 3.92},
	EpiCI:    []float64{0.14, 0.07, 0.07, 0.06, 0.05},
}

// PaperFig3 describes Figure 3 (latency vs route-check interval, 1980
// messages, 100 m): approximate curve read from the figure — latency
// rises from ≈19 s at 0.6 s to ≈24 s at 1.6 s.
var PaperFig3 = struct {
	Intervals []float64
	Latency   []float64 // approximate figure readings
}{
	Intervals: []float64{0.6, 0.9, 1.2, 1.6},
	Latency:   []float64{19, 20.5, 22, 24},
}
