package runner

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"glr/internal/metrics"
)

func countingJob(i int, ran *atomic.Int32) Job[metrics.Report] {
	return func(context.Context) (metrics.Report, error) {
		ran.Add(1)
		return metrics.Report{Generated: i}, nil
	}
}

func TestRunPreservesJobOrder(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		var ran atomic.Int32
		jobs := make([]Job[metrics.Report], 20)
		for i := range jobs {
			jobs[i] = countingJob(i, &ran)
		}
		reports, err := Run(context.Background(), workers, jobs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if int(ran.Load()) != len(jobs) {
			t.Fatalf("workers=%d: ran %d of %d jobs", workers, ran.Load(), len(jobs))
		}
		for i, rep := range reports {
			if rep.Generated != i {
				t.Fatalf("workers=%d: reports[%d].Generated = %d", workers, i, rep.Generated)
			}
		}
	}
}

func TestRunEmpty(t *testing.T) {
	reports, err := Run[metrics.Report](context.Background(), 4, nil)
	if err != nil || len(reports) != 0 {
		t.Fatalf("empty run: %v, %v", reports, err)
	}
}

func TestRunPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	jobs := []Job[metrics.Report]{
		func(context.Context) (metrics.Report, error) { return metrics.Report{}, nil },
		func(context.Context) (metrics.Report, error) { return metrics.Report{}, boom },
		func(context.Context) (metrics.Report, error) { return metrics.Report{}, nil },
	}
	if _, err := Run(context.Background(), 1, jobs); !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
}

func TestRunErrorStopsClaiming(t *testing.T) {
	var ran atomic.Int32
	jobs := make([]Job[metrics.Report], 50)
	for i := range jobs {
		i := i
		jobs[i] = func(context.Context) (metrics.Report, error) {
			ran.Add(1)
			if i == 0 {
				return metrics.Report{}, fmt.Errorf("early failure")
			}
			return metrics.Report{}, nil
		}
	}
	if _, err := Run(context.Background(), 1, jobs); err == nil {
		t.Fatal("error swallowed")
	}
	if got := ran.Load(); got != 1 {
		t.Fatalf("sequential pool ran %d jobs after failure, want 1", got)
	}
}

func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	jobs := make([]Job[metrics.Report], 8)
	for i := range jobs {
		jobs[i] = countingJob(i, &ran)
	}
	if _, err := Run(ctx, 2, jobs); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("pre-canceled pool still ran %d jobs", ran.Load())
	}
}

func TestRunCancellationMidFlight(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int32
	jobs := make([]Job[metrics.Report], 16)
	for i := range jobs {
		i := i
		jobs[i] = func(ctx context.Context) (metrics.Report, error) {
			ran.Add(1)
			if i == 0 {
				cancel()
			}
			// Honour ctx like sim.World.RunContext does.
			select {
			case <-ctx.Done():
				return metrics.Report{}, ctx.Err()
			case <-time.After(time.Millisecond):
			}
			return metrics.Report{}, nil
		}
	}
	if _, err := Run(ctx, 2, jobs); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if got := ran.Load(); got == int32(len(jobs)) {
		t.Fatalf("cancellation did not stop the pool (all %d jobs ran)", got)
	}
}

// TestFailureAbortsInFlightJobs: the first job error must cancel the
// context handed to in-flight siblings, not just stop new claims.
func TestFailureAbortsInFlightJobs(t *testing.T) {
	boom := errors.New("boom")
	started := make(chan struct{})
	jobs := []Job[metrics.Report]{
		func(ctx context.Context) (metrics.Report, error) {
			<-started // wait until the failing job is definitely running
			select {
			case <-ctx.Done():
				return metrics.Report{}, ctx.Err()
			case <-time.After(5 * time.Second):
				return metrics.Report{}, errors.New("in-flight job was not aborted")
			}
		},
		func(context.Context) (metrics.Report, error) {
			close(started)
			return metrics.Report{}, boom
		},
	}
	begin := time.Now()
	_, err := Run(context.Background(), 2, jobs)
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want the genuine job error", err)
	}
	if elapsed := time.Since(begin); elapsed > 2*time.Second {
		t.Fatalf("failure took %v to abort the in-flight job", elapsed)
	}
}

// TestLateCancelKeepsCompletedResults: a context that expires after the
// last job has already finished must not discard the completed sweep.
func TestLateCancelKeepsCompletedResults(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	jobs := make([]Job[metrics.Report], 4)
	for i := range jobs {
		i := i
		jobs[i] = func(context.Context) (metrics.Report, error) {
			if i == len(jobs)-1 {
				cancel() // expires as the final job completes
			}
			return metrics.Report{Generated: i}, nil
		}
	}
	reports, err := Run(ctx, 1, jobs)
	if err != nil {
		t.Fatalf("completed sweep discarded: %v", err)
	}
	for i, rep := range reports {
		if rep.Generated != i {
			t.Fatalf("reports[%d].Generated = %d", i, rep.Generated)
		}
	}
}

func TestNilContext(t *testing.T) {
	var ran atomic.Int32
	if _, err := Run(nil, 1, []Job[metrics.Report]{countingJob(0, &ran)}); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 1 {
		t.Fatal("nil-context run skipped the job")
	}
}

// TestRunNotify: every successful job reports its index exactly once;
// failed jobs never notify.
func TestRunNotify(t *testing.T) {
	jobs := make([]Job[int], 12)
	boom := errors.New("boom")
	for i := range jobs {
		i := i
		jobs[i] = func(context.Context) (int, error) {
			if i == len(jobs)-1 {
				return 0, boom
			}
			return i * i, nil
		}
	}
	var mu sync.Mutex
	seen := map[int]int{}
	notify := func(i int) {
		mu.Lock()
		seen[i]++
		mu.Unlock()
	}
	results, err := RunNotify(context.Background(), 1, jobs, notify)
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	if results != nil {
		t.Fatalf("failed sweep returned results: %v", results)
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("job %d notified %d times", i, n)
		}
		if i == len(jobs)-1 {
			t.Fatal("failed job notified")
		}
	}
	if len(seen) != len(jobs)-1 {
		t.Fatalf("notified %d of %d successful jobs", len(seen), len(jobs)-1)
	}
}

// TestRunGenericResult: the pool is generic over the result type.
func TestRunGenericResult(t *testing.T) {
	type pair struct{ a, b int }
	jobs := make([]Job[pair], 5)
	for i := range jobs {
		i := i
		jobs[i] = func(context.Context) (pair, error) { return pair{i, 2 * i}, nil }
	}
	out, err := Run(context.Background(), 3, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range out {
		if p != (pair{i, 2 * i}) {
			t.Fatalf("out[%d] = %v", i, p)
		}
	}
}
