// Package runner executes batches of independent simulation runs across
// a bounded worker pool. It is the shared engine behind the public
// glr.Runner and the replication loops of internal/experiments: jobs go
// in as closures, reports come out in job order, and a context cancels
// both queued jobs and (via sim.World.RunContext) runs in flight.
package runner

import (
	"context"
	"errors"
	"runtime"
	"sync"

	"glr/internal/metrics"
)

// Job is one independent simulation run. It receives the pool's context
// and should abandon work promptly once the context is done (worlds do
// so when run through sim.World.RunContext).
type Job func(ctx context.Context) (metrics.Report, error)

// Run executes jobs across a pool of workers goroutines (0 or negative
// means GOMAXPROCS) and returns their reports in job order — the result
// is identical whatever the worker count, so parallel sweeps are
// reproducible. On the first job error the pool stops claiming new jobs
// and cancels the context passed to in-flight ones (worlds run through
// sim.World.RunContext stop at the next event batch); the first genuine
// error in job order is returned. A done outer context surfaces as its
// ctx.Err.
func Run(outer context.Context, workers int, jobs []Job) ([]metrics.Report, error) {
	if outer == nil {
		outer = context.Background()
	}
	// Child context so a failing job can abort its in-flight siblings
	// without touching the caller's ctx.
	ctx, abort := context.WithCancel(outer)
	defer abort()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	reports := make([]metrics.Report, len(jobs))
	errs := make([]error, len(jobs))

	var (
		next int // index of the next unclaimed job
		mu   sync.Mutex
		wg   sync.WaitGroup
	)
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		if next >= len(jobs) {
			return -1
		}
		i := next
		next++
		return i
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := claim()
				if i < 0 {
					return
				}
				reports[i], errs[i] = jobs[i](ctx)
				if errs[i] != nil {
					abort()
				}
			}
		}()
	}
	wg.Wait()
	complete := next >= len(jobs)
	for _, err := range errs {
		if err != nil {
			complete = false
		}
	}
	if complete {
		// Every job was claimed and succeeded: the result set is whole,
		// even if ctx happened to expire after the last job finished.
		return reports, nil
	}
	if err := outer.Err(); err != nil {
		return nil, err
	}
	// A job failed: prefer the first genuine error in job order over the
	// cancellations our own abort induced in its in-flight siblings.
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil {
			firstErr = err
		}
		if !errors.Is(err, context.Canceled) {
			return nil, err
		}
	}
	return nil, firstErr
}
