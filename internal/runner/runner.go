// Package runner executes batches of independent simulation runs across
// a bounded worker pool. It is the shared engine behind the public
// glr.Runner, the replication loops of internal/experiments, and the
// scenario-matrix driver of internal/matrix: jobs go in as closures,
// results come out in job order, and a context cancels both queued jobs
// and (via sim.World.RunContext) runs in flight. The pool is generic
// over the job result type, so callers that need more than a
// metrics.Report per run — the matrix driver carries an observer time
// series alongside each result — share the same claiming, cancellation,
// and error-ordering machinery.
package runner

import (
	"context"
	"errors"
	"runtime"
	"sync"
)

// Job is one independent simulation run producing a T. It receives the
// pool's context and should abandon work promptly once the context is
// done (worlds do so when run through sim.World.RunContext).
type Job[T any] func(ctx context.Context) (T, error)

// Run executes jobs across a pool of workers goroutines (0 or negative
// means GOMAXPROCS) and returns their results in job order — the result
// is identical whatever the worker count, so parallel sweeps are
// reproducible. On the first job error the pool stops claiming new jobs
// and cancels the context passed to in-flight ones (worlds run through
// sim.World.RunContext stop at the next event batch); the first genuine
// error in job order is returned. A done outer context surfaces as its
// ctx.Err.
func Run[T any](outer context.Context, workers int, jobs []Job[T]) ([]T, error) {
	return RunNotify(outer, workers, jobs, nil)
}

// RunNotify is Run with a completion hook: after each job finishes,
// notify (when non-nil) receives the job's index. It is invoked from
// worker goroutines — possibly concurrently — so callers that aggregate
// progress must synchronize; it must not block, or it stalls the pool.
func RunNotify[T any](outer context.Context, workers int, jobs []Job[T], notify func(i int)) ([]T, error) {
	if outer == nil {
		outer = context.Background()
	}
	// Child context so a failing job can abort its in-flight siblings
	// without touching the caller's ctx.
	ctx, abort := context.WithCancel(outer)
	defer abort()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]T, len(jobs))
	errs := make([]error, len(jobs))

	var (
		next int // index of the next unclaimed job
		mu   sync.Mutex
		wg   sync.WaitGroup
	)
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		if next >= len(jobs) {
			return -1
		}
		i := next
		next++
		return i
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := claim()
				if i < 0 {
					return
				}
				results[i], errs[i] = jobs[i](ctx)
				if errs[i] != nil {
					abort()
				} else if notify != nil {
					notify(i)
				}
			}
		}()
	}
	wg.Wait()
	complete := next >= len(jobs)
	for _, err := range errs {
		if err != nil {
			complete = false
		}
	}
	if complete {
		// Every job was claimed and succeeded: the result set is whole,
		// even if ctx happened to expire after the last job finished.
		return results, nil
	}
	if err := outer.Err(); err != nil {
		return nil, err
	}
	// A job failed: prefer the first genuine error in job order over the
	// cancellations our own abort induced in its in-flight siblings.
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil {
			firstErr = err
		}
		if !errors.Is(err, context.Canceled) {
			return nil, err
		}
	}
	return nil, firstErr
}
