package phy

import (
	"math"
	"testing"
)

func TestFreeSpaceInverseSquare(t *testing.T) {
	m := DefaultFreeSpace()
	p100 := m.RxPower(1, 100)
	p200 := m.RxPower(1, 200)
	if ratio := p100 / p200; math.Abs(ratio-4) > 1e-9 {
		t.Errorf("doubling distance should quarter power, ratio = %v", ratio)
	}
}

func TestTwoRayFourthPowerBeyondCrossover(t *testing.T) {
	m := DefaultTwoRayGround()
	dc := m.Crossover()
	if dc < 50 || dc > 120 {
		t.Fatalf("crossover = %v m, expected ≈86 m for 914 MHz / 1.5 m antennas", dc)
	}
	d := dc * 2
	p1 := m.RxPower(1, d)
	p2 := m.RxPower(1, 2*d)
	if ratio := p1 / p2; math.Abs(ratio-16) > 1e-9 {
		t.Errorf("doubling distance beyond crossover should cut power 16x, ratio = %v", ratio)
	}
}

func TestTwoRayMatchesFreeSpaceNearField(t *testing.T) {
	tr := DefaultTwoRayGround()
	fs := DefaultFreeSpace()
	d := tr.Crossover() / 2
	if got, want := tr.RxPower(1, d), fs.RxPower(1, d); math.Abs(got-want) > 1e-15 {
		t.Errorf("near-field TwoRay %v != FreeSpace %v", got, want)
	}
}

func TestTwoRayContinuousAtCrossover(t *testing.T) {
	m := DefaultTwoRayGround()
	dc := m.Crossover()
	below := m.RxPower(1, dc*(1-1e-9))
	above := m.RxPower(1, dc*(1+1e-9))
	if math.Abs(below-above)/below > 1e-6 {
		t.Errorf("discontinuity at crossover: %v vs %v", below, above)
	}
}

func TestMonotoneDecay(t *testing.T) {
	models := []Propagation{DefaultFreeSpace(), DefaultTwoRayGround()}
	for _, m := range models {
		prev := math.Inf(1)
		for d := 1.0; d <= 1000; d += 7 {
			p := m.RxPower(1, d)
			if p >= prev {
				t.Fatalf("%T: power not strictly decreasing at d=%v", m, d)
			}
			prev = p
		}
	}
}

func TestRxPowerAtZeroDistance(t *testing.T) {
	for _, m := range []Propagation{DefaultFreeSpace(), DefaultTwoRayGround()} {
		if !math.IsInf(m.RxPower(1, 0), 1) {
			t.Errorf("%T: zero distance should give +Inf", m)
		}
	}
}

func TestThresholdForRangeRoundTrip(t *testing.T) {
	for _, m := range []Propagation{DefaultFreeSpace(), DefaultTwoRayGround()} {
		for _, r := range []float64{50, 100, 150, 200, 250} {
			thresh, err := ThresholdForRange(m, NS2DefaultTxPower, r)
			if err != nil {
				t.Fatalf("%T range %v: %v", m, r, err)
			}
			got := m.MaxRange(NS2DefaultTxPower, thresh)
			if math.Abs(got-r)/r > 1e-9 {
				t.Errorf("%T: round trip range %v -> %v", m, r, got)
			}
		}
	}
}

func TestThresholdForRangeErrors(t *testing.T) {
	m := DefaultTwoRayGround()
	if _, err := ThresholdForRange(m, 1, 0); err == nil {
		t.Error("zero range should error")
	}
	if _, err := ThresholdForRange(m, 1, -5); err == nil {
		t.Error("negative range should error")
	}
}

func TestMaxRangeInfiniteForZeroThreshold(t *testing.T) {
	for _, m := range []Propagation{DefaultFreeSpace(), DefaultTwoRayGround()} {
		if !math.IsInf(m.MaxRange(1, 0), 1) {
			t.Errorf("%T: zero threshold should give infinite range", m)
		}
	}
}

func TestReceptionInsideRangeOnly(t *testing.T) {
	m := DefaultTwoRayGround()
	const want = 250.0
	thresh, err := ThresholdForRange(m, NS2DefaultTxPower, want)
	if err != nil {
		t.Fatal(err)
	}
	if p := m.RxPower(NS2DefaultTxPower, want*0.99); p < thresh {
		t.Error("reception should succeed just inside range")
	}
	if p := m.RxPower(NS2DefaultTxPower, want*1.01); p >= thresh {
		t.Error("reception should fail just outside range")
	}
}

func TestMaxRangeNearFieldRegime(t *testing.T) {
	// A threshold so high that the range lands below the crossover must be
	// solved with the free-space formula, not the fourth-power one.
	m := DefaultTwoRayGround()
	want := m.Crossover() / 3
	thresh, err := ThresholdForRange(m, NS2DefaultTxPower, want)
	if err != nil {
		t.Fatal(err)
	}
	got := m.MaxRange(NS2DefaultTxPower, thresh)
	if math.Abs(got-want)/want > 1e-9 {
		t.Errorf("near-field MaxRange = %v, want %v", got, want)
	}
}
