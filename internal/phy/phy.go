// Package phy models radio propagation. The paper's NS-2 setup uses the
// Two-Ray Ground model ("which considers both the direct path and a ground
// reflection path") with omnidirectional antennas; transmission ranges of
// 50–250 m are obtained by tuning the receive threshold. This package
// reproduces that machinery: given a propagation model, a transmit power
// and a receive threshold, it answers "at what distance does reception
// stop", and conversely derives the threshold that yields a desired range.
package phy

import (
	"fmt"
	"math"
)

// SpeedOfLight in m/s.
const SpeedOfLight = 299792458.0

// Propagation computes received signal power at distance d.
type Propagation interface {
	// RxPower returns the received power in watts for transmit power pt
	// (watts) at distance d (metres). d must be > 0.
	RxPower(pt, d float64) float64
	// MaxRange returns the largest distance at which RxPower ≥ rxThresh.
	MaxRange(pt, rxThresh float64) float64
}

// FreeSpace is the Friis free-space model:
// Pr = Pt·Gt·Gr·λ² / ((4π·d)²·L).
type FreeSpace struct {
	Gt, Gr float64 // antenna gains (dimensionless)
	L      float64 // system loss ≥ 1
	Lambda float64 // wavelength, metres
}

// DefaultFreeSpace mirrors NS-2's defaults at 914 MHz: unity gains, unity
// loss.
func DefaultFreeSpace() FreeSpace {
	return FreeSpace{Gt: 1, Gr: 1, L: 1, Lambda: SpeedOfLight / 914e6}
}

// RxPower implements Propagation.
func (f FreeSpace) RxPower(pt, d float64) float64 {
	if d <= 0 {
		return math.Inf(1)
	}
	den := (4 * math.Pi * d) * (4 * math.Pi * d) * f.L
	return pt * f.Gt * f.Gr * f.Lambda * f.Lambda / den
}

// MaxRange implements Propagation.
func (f FreeSpace) MaxRange(pt, rxThresh float64) float64 {
	if rxThresh <= 0 {
		return math.Inf(1)
	}
	return f.Lambda / (4 * math.Pi) * math.Sqrt(pt*f.Gt*f.Gr/(f.L*rxThresh))
}

// TwoRayGround combines free-space attenuation near the transmitter with
// the fourth-power ground-reflection law beyond the crossover distance
// dc = 4π·ht·hr/λ:
//
//	d < dc:  Pr = Pt·Gt·Gr·λ² / ((4π·d)²·L)
//	d ≥ dc:  Pr = Pt·Gt·Gr·ht²·hr² / (d⁴·L)
type TwoRayGround struct {
	Gt, Gr float64 // antenna gains
	Ht, Hr float64 // antenna heights, metres
	L      float64 // system loss ≥ 1
	Lambda float64 // wavelength, metres
}

// DefaultTwoRayGround mirrors NS-2's wireless defaults: unity gains, 1.5 m
// antenna heights, unity system loss, 914 MHz carrier.
func DefaultTwoRayGround() TwoRayGround {
	return TwoRayGround{Gt: 1, Gr: 1, Ht: 1.5, Hr: 1.5, L: 1, Lambda: SpeedOfLight / 914e6}
}

// Crossover returns the distance where the model switches from free-space
// to fourth-power attenuation.
func (m TwoRayGround) Crossover() float64 {
	return 4 * math.Pi * m.Ht * m.Hr / m.Lambda
}

// RxPower implements Propagation.
func (m TwoRayGround) RxPower(pt, d float64) float64 {
	if d <= 0 {
		return math.Inf(1)
	}
	if d < m.Crossover() {
		den := (4 * math.Pi * d) * (4 * math.Pi * d) * m.L
		return pt * m.Gt * m.Gr * m.Lambda * m.Lambda / den
	}
	return pt * m.Gt * m.Gr * m.Ht * m.Ht * m.Hr * m.Hr / (d * d * d * d * m.L)
}

// MaxRange implements Propagation.
func (m TwoRayGround) MaxRange(pt, rxThresh float64) float64 {
	if rxThresh <= 0 {
		return math.Inf(1)
	}
	dc := m.Crossover()
	// Try the far regime first: d = (Pt·Gt·Gr·ht²·hr² / (L·thresh))^(1/4).
	far := math.Pow(pt*m.Gt*m.Gr*m.Ht*m.Ht*m.Hr*m.Hr/(m.L*rxThresh), 0.25)
	if far >= dc {
		return far
	}
	near := m.Lambda / (4 * math.Pi) * math.Sqrt(pt*m.Gt*m.Gr/(m.L*rxThresh))
	return math.Min(near, dc)
}

// ThresholdForRange returns the receive threshold that makes MaxRange equal
// to wantRange under model m with transmit power pt. This is how the
// paper's "transmission range 50–250 m" rows are realised.
func ThresholdForRange(m Propagation, pt, wantRange float64) (float64, error) {
	if wantRange <= 0 {
		return 0, fmt.Errorf("phy: range %v must be positive", wantRange)
	}
	thresh := m.RxPower(pt, wantRange)
	if math.IsInf(thresh, 1) || thresh <= 0 {
		return 0, fmt.Errorf("phy: cannot achieve range %v", wantRange)
	}
	return thresh, nil
}

// NS2DefaultTxPower is NS-2's default wireless transmit power in watts
// (0.28183815 W, which with the default thresholds yields a 250 m range
// under TwoRayGround).
const NS2DefaultTxPower = 0.28183815

// HaloWidth returns the shard-halo width for a medium whose radios reach
// rangeM metres and whose spatial index tolerates indexSlack metres of
// inter-reindex drift: the distance within which a transmission's
// receiver candidates can lie, and therefore the minimum stripe width
// that guarantees one shard's receivers reach at most into the adjacent
// stripes. Carrier sensing and interference verdicts read further
// (rangeM × (1+CSRangeFactor)), but those reads are immutable during a
// parallel section, so only the reception reach bounds the stripes.
func HaloWidth(rangeM, indexSlack float64) float64 {
	return rangeM + indexSlack
}
