package matrix

import "glr"

// GoldenSection names the section whose delivery-ratio means are pinned
// by ci/atlas_golden.json: the reproduction of the paper's
// delivery-vs-density figure (delivery ratio against transmission range
// at fixed node count, i.e. increasing effective density).
const GoldenSection = "paper-density"

// DefaultSections declares the committed atlas: the full regime map
// plus the paper-figure slice. Growing the atlas means appending an
// axis value or a section here — existing cells keep their cache keys,
// so only the new cells compute.
func DefaultSections() []Section {
	return []Section{
		{
			Name:  "regime",
			Title: "Regime map — protocol × mobility × workload × density × storage",
			Note: "Where does geometric routing beat epidemic flooding? Each row is " +
				"one scenario coordinate; the winner column compares mean delivery " +
				"ratio between the protocols at that coordinate.",
			Matrix: glr.Matrix{
				Protocols:     []glr.Protocol{glr.GLR, glr.Epidemic},
				Mobilities:    []glr.MobilityKind{glr.MobilityWaypoint, glr.MobilityStatic, glr.MobilityRandomWalk},
				Workloads:     []glr.WorkloadKind{glr.WorkloadPaper, glr.WorkloadUniform, glr.WorkloadPoisson, glr.WorkloadHotspot},
				Nodes:         []int{30, 50},
				Ranges:        []float64{100},
				StorageLimits: []int{0, 10},
				Messages:      150,
				Seeds:         3,
			},
			ChartX:      "nodes",
			SeriesChart: true,
		},
		{
			Name:  GoldenSection,
			Title: "Paper figure — delivery ratio vs density",
			Note: "Reproduces the paper's delivery-vs-density sweep: transmission " +
				"range grows at a fixed node count, so the effective network density " +
				"rises left to right. Pinned by `ci/atlas_golden.json`.",
			Matrix: glr.Matrix{
				Protocols:  []glr.Protocol{glr.GLR, glr.Epidemic},
				Mobilities: []glr.MobilityKind{glr.MobilityWaypoint},
				Workloads:  []glr.WorkloadKind{glr.WorkloadPaper},
				Nodes:      []int{50},
				Ranges:     []float64{50, 100, 150, 200, 250},
				Messages:   150,
				Seeds:      3,
			},
			ChartX: "range",
		},
		{
			Name:  "disruption",
			Title: "Disruption — robustness under injected faults",
			Note: "How do the protocols hold up when the network misbehaves? Each " +
				"fault row composes disruption models from `glr.WithFaults` at " +
				"rising intensity: node churn with state loss, stochastic link " +
				"blackouts, GPS error on advertised positions, and Byzantine nodes " +
				"that lie about location and drop custody. \"none\" is the " +
				"fault-free baseline (byte-identical to a run without the fault " +
				"subsystem).",
			Matrix: glr.Matrix{
				Protocols:  []glr.Protocol{glr.GLR, glr.Epidemic},
				Mobilities: []glr.MobilityKind{glr.MobilityWaypoint},
				Workloads:  []glr.WorkloadKind{glr.WorkloadPaper},
				Nodes:      []int{40},
				Ranges:     []float64{100},
				Faults: [][]glr.Fault{
					nil,
					{
						{Kind: glr.FaultChurn, Rate: 0.002, Duration: 30},
						{Kind: glr.FaultLinkBlackout, Rate: 0.15, Period: 20},
					},
					{
						{Kind: glr.FaultGPSNoise, Sigma: 50},
						{Kind: glr.FaultByzantine, Fraction: 0.2},
					},
					{
						{Kind: glr.FaultChurn, Rate: 0.004, Duration: 30},
						{Kind: glr.FaultLinkBlackout, Rate: 0.3, Period: 20},
						{Kind: glr.FaultGPSNoise, Sigma: 50},
						{Kind: glr.FaultByzantine, Fraction: 0.2},
					},
				},
				Messages: 150,
				Seeds:    3,
			},
			SeriesChart: true,
		},
	}
}

// ShortSections is the CI-sized atlas slice (8 cells × 2 seeds): small
// enough to compute uncached in well under two minutes, large enough to
// exercise the driver, cache, and renderer — including the fault axis —
// end to end.
func ShortSections() []Section {
	return []Section{
		{
			Name:  "short",
			Title: "Short slice — CI smoke matrix",
			Matrix: glr.Matrix{
				Protocols:  []glr.Protocol{glr.GLR, glr.Epidemic},
				Mobilities: []glr.MobilityKind{glr.MobilityWaypoint},
				Workloads:  []glr.WorkloadKind{glr.WorkloadPaper, glr.WorkloadUniform},
				Nodes:      []int{30},
				Ranges:     []float64{100},
				Faults: [][]glr.Fault{
					nil,
					{{Kind: glr.FaultChurn, Rate: 0.004, Duration: 30}},
				},
				Messages: 60,
				Seeds:    2,
			},
			ChartX:      "range",
			SeriesChart: true,
		},
	}
}
