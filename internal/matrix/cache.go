package matrix

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"glr"
)

// cellKey content-addresses one cell's replication sweep: the SHA-256 of
// the canonical JSON of (module version, cell spec, seed range). Any
// perturbation — an axis value, the message count or horizon baked into
// the cell, the base seed or replication count, or a Version bump when
// simulation semantics change — produces a different key, so a cache
// can never serve results for a scenario other than the one requested.
func cellKey(version string, c glr.Cell, baseSeed int64, runs int) string {
	payload, err := json.Marshal(struct {
		Version  string
		Cell     glr.Cell
		BaseSeed int64
		Runs     int
	}{version, c, baseSeed, runs})
	if err != nil {
		// A Cell is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("matrix: marshal cell key: %v", err))
	}
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}

// cacheEntry is the on-disk record of one computed cell: the full spec
// it answers for (so hits can be verified, not trusted), the per-seed
// results and time series, and a checksum over the payload.
type cacheEntry struct {
	Key      string
	Version  string
	Cell     glr.Cell
	BaseSeed int64
	Runs     int
	Results  []glr.Result
	Series   Series
	Checksum string
}

// checksum hashes the entry's payload (everything but the Checksum
// field itself).
func (e cacheEntry) checksum() string {
	e.Checksum = ""
	payload, err := json.Marshal(e)
	if err != nil {
		panic(fmt.Sprintf("matrix: marshal cache entry: %v", err))
	}
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}

// cachePath places an entry inside dir, named by a prefix of its key.
func cachePath(dir, key string) string {
	return filepath.Join(dir, key[:16]+".json")
}

// loadCell returns the cached entry for key, or false on any miss: no
// file, unreadable JSON, a spec that keys to something other than key
// (tampered or stale contents), a checksum mismatch (corruption), or a
// result count that disagrees with the recorded seed range. Corrupt
// entries are reported as misses so the driver recomputes them; they
// are never trusted.
func loadCell(dir, key string) (cacheEntry, bool) {
	raw, err := os.ReadFile(cachePath(dir, key))
	if err != nil {
		return cacheEntry{}, false
	}
	var e cacheEntry
	if err := json.Unmarshal(raw, &e); err != nil {
		return cacheEntry{}, false
	}
	if e.Key != key {
		return cacheEntry{}, false
	}
	// Re-derive the key from the stored spec: the entry must answer for
	// exactly the requested scenario, not merely claim the right key.
	if cellKey(e.Version, e.Cell, e.BaseSeed, e.Runs) != key {
		return cacheEntry{}, false
	}
	if e.Checksum != e.checksum() {
		return cacheEntry{}, false
	}
	if len(e.Results) != e.Runs || len(e.Series.Delivery) != e.Runs {
		return cacheEntry{}, false
	}
	return e, true
}

// storeCell persists an entry atomically (write-temp + rename), filling
// in its checksum.
func storeCell(dir string, e cacheEntry) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("matrix: create cache dir: %w", err)
	}
	e.Checksum = e.checksum()
	raw, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return fmt.Errorf("matrix: marshal cache entry: %w", err)
	}
	raw = append(raw, '\n')
	path := cachePath(dir, e.Key)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("matrix: write cache entry: %w", err)
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("matrix: write cache entry: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("matrix: write cache entry: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("matrix: write cache entry: %w", err)
	}
	return nil
}
