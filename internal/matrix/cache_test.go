package matrix

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"glr"
)

// tinyMatrix is a single-cell, two-seed matrix small enough to simulate
// in a few milliseconds.
func tinyMatrix() glr.Matrix {
	return glr.Matrix{
		Protocols:     []glr.Protocol{glr.GLR},
		Mobilities:    []glr.MobilityKind{glr.MobilityWaypoint},
		Workloads:     []glr.WorkloadKind{glr.WorkloadUniform},
		Nodes:         []int{10},
		Ranges:        []float64{150},
		StorageLimits: []int{0},
		Messages:      6,
		SimTime:       120,
		Seeds:         2,
	}
}

func tinySections() []Section {
	return []Section{{Name: "tiny", Title: "Tiny", Matrix: tinyMatrix(), ChartX: "range", SeriesChart: true}}
}

func tinyCell(t *testing.T) glr.Cell {
	t.Helper()
	cells := tinyMatrix().Normalized().Cells()
	if len(cells) != 1 {
		t.Fatalf("tiny matrix has %d cells, want 1", len(cells))
	}
	return cells[0]
}

// TestCellKeyStable: identical specs key identically.
func TestCellKeyStable(t *testing.T) {
	c := tinyCell(t)
	if cellKey(Version, c, 1, 2) != cellKey(Version, c, 1, 2) {
		t.Fatal("identical specs produced different keys")
	}
}

// TestCellKeyPerturbation: any axis value, seed-range, or version
// perturbation changes the key.
func TestCellKeyPerturbation(t *testing.T) {
	base := tinyCell(t)
	ref := cellKey(Version, base, 1, 2)
	perturb := map[string]func() string{
		"protocol": func() string { c := base; c.Protocol = glr.Epidemic; return cellKey(Version, c, 1, 2) },
		"mobility": func() string { c := base; c.Mobility = glr.MobilityStatic; return cellKey(Version, c, 1, 2) },
		"workload": func() string { c := base; c.Workload = glr.WorkloadPoisson; return cellKey(Version, c, 1, 2) },
		"nodes":    func() string { c := base; c.Nodes++; return cellKey(Version, c, 1, 2) },
		"range":    func() string { c := base; c.Range += 10; return cellKey(Version, c, 1, 2) },
		"storage":  func() string { c := base; c.StorageLimit = 5; return cellKey(Version, c, 1, 2) },
		"messages": func() string { c := base; c.Messages++; return cellKey(Version, c, 1, 2) },
		"simtime":  func() string { c := base; c.SimTime += 1; return cellKey(Version, c, 1, 2) },
		"baseSeed": func() string { return cellKey(Version, base, 2, 2) },
		"runs":     func() string { return cellKey(Version, base, 1, 3) },
		"version":  func() string { return cellKey(Version+"-bumped", base, 1, 2) },
	}
	for name, f := range perturb {
		if f() == ref {
			t.Errorf("perturbing %s did not change the cache key", name)
		}
	}
}

// TestDriverCacheRoundTrip: a second run over the same cache serves
// every cell from disk and reproduces the computed atlas exactly.
func TestDriverCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d := &Driver{Cache: dir, Workers: 1}
	cold, err := d.Run(context.Background(), tinySections())
	if err != nil {
		t.Fatal(err)
	}
	if cold.Computed != 1 || cold.CacheHits != 0 {
		t.Fatalf("cold run: computed %d, hits %d", cold.Computed, cold.CacheHits)
	}
	warm, err := d.Run(context.Background(), tinySections())
	if err != nil {
		t.Fatal(err)
	}
	if warm.Computed != 0 || warm.CacheHits != 1 {
		t.Fatalf("warm run: computed %d, hits %d", warm.Computed, warm.CacheHits)
	}
	if !reflect.DeepEqual(cold.Sections[0].Cells[0].Results, warm.Sections[0].Cells[0].Results) {
		t.Fatal("cached results differ from computed results")
	}
	coldMD, warmMD := cold.Markdown(nil), warm.Markdown(nil)
	if coldMD != warmMD {
		t.Fatal("cached ATLAS.md render differs from computed render")
	}
	coldJSON, err := cold.JSON()
	if err != nil {
		t.Fatal(err)
	}
	warmJSON, err := warm.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(coldJSON) != string(warmJSON) {
		t.Fatal("cached atlas.json differs from computed atlas.json")
	}
}

// TestDriverVersionBumpMisses: a semantic version bump invalidates
// every previously cached cell.
func TestDriverVersionBumpMisses(t *testing.T) {
	dir := t.TempDir()
	if _, err := (&Driver{Cache: dir, Workers: 1}).Run(context.Background(), tinySections()); err != nil {
		t.Fatal(err)
	}
	bumped, err := (&Driver{Cache: dir, Workers: 1, Version: Version + "-v2"}).Run(context.Background(), tinySections())
	if err != nil {
		t.Fatal(err)
	}
	if bumped.CacheHits != 0 || bumped.Computed != 1 {
		t.Fatalf("version bump: computed %d, hits %d; want recompute", bumped.Computed, bumped.CacheHits)
	}
}

// TestDriverSeedPerturbationMisses: changing the seed range misses the
// cache even though the cell spec is unchanged.
func TestDriverSeedPerturbationMisses(t *testing.T) {
	dir := t.TempDir()
	if _, err := (&Driver{Cache: dir, Workers: 1}).Run(context.Background(), tinySections()); err != nil {
		t.Fatal(err)
	}
	secs := tinySections()
	secs[0].Matrix.BaseSeed = 7
	moved, err := (&Driver{Cache: dir, Workers: 1}).Run(context.Background(), secs)
	if err != nil {
		t.Fatal(err)
	}
	if moved.CacheHits != 0 || moved.Computed != 1 {
		t.Fatalf("seed move: computed %d, hits %d; want recompute", moved.Computed, moved.CacheHits)
	}
}

// cacheFile returns the single entry file of a cache dir.
func cacheFile(t *testing.T, dir string) string {
	t.Helper()
	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("cache dir: %v, %v", entries, err)
	}
	return entries[0]
}

// TestCorruptedEntryRecomputed: a corrupted cache entry is treated as a
// miss — recomputed and rewritten — never trusted.
func TestCorruptedEntryRecomputed(t *testing.T) {
	corruptions := map[string]func([]byte) []byte{
		"truncated":  func(b []byte) []byte { return b[:len(b)/2] },
		"not-json":   func([]byte) []byte { return []byte("not json at all\n") },
		"bit-flip":   func(b []byte) []byte { b[len(b)/2] ^= 0x20; return b },
		"result-dig": func(b []byte) []byte { return []byte(strings.Replace(string(b), `"Delivered":`, `"Delivered": 9`, 1)) },
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			d := &Driver{Cache: dir, Workers: 1}
			if _, err := d.Run(context.Background(), tinySections()); err != nil {
				t.Fatal(err)
			}
			path := cacheFile(t, dir)
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			orig := append([]byte(nil), raw...)
			if err := os.WriteFile(path, corrupt(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			again, err := d.Run(context.Background(), tinySections())
			if err != nil {
				t.Fatal(err)
			}
			if again.CacheHits != 0 || again.Computed != 1 {
				t.Fatalf("corrupted entry served: computed %d, hits %d", again.Computed, again.CacheHits)
			}
			// The recompute must also repair the entry on disk.
			healed, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if string(healed) != string(orig) {
				t.Fatal("recomputed entry does not match the original (determinism broken)")
			}
		})
	}
}

// TestMislabeledEntryMisses: an entry whose contents answer for a
// different spec than its filename claims is rejected.
func TestMislabeledEntryMisses(t *testing.T) {
	dir := t.TempDir()
	d := &Driver{Cache: dir, Workers: 1}
	if _, err := d.Run(context.Background(), tinySections()); err != nil {
		t.Fatal(err)
	}
	src := cacheFile(t, dir)
	raw, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	// Install the entry under the key of a different spec.
	other := tinyCell(t)
	other.Nodes++
	otherKey := cellKey(Version, other, 1, 2)
	if err := os.WriteFile(cachePath(dir, otherKey), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := loadCell(dir, otherKey); ok {
		t.Fatal("cache served an entry recorded for a different spec")
	}
}

// TestGoldenRoundTrip: a golden extracted from an atlas passes against
// it, survives a file round trip, and fails once the atlas drifts.
func TestGoldenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	atlas, err := (&Driver{Cache: dir, Workers: 1}).Run(context.Background(), tinySections())
	if err != nil {
		t.Fatal(err)
	}
	g, err := GoldenFromAtlas(atlas, "tiny")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "golden.json")
	if err := WriteGolden(path, g); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadGolden(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Check(atlas); err != nil {
		t.Fatalf("golden self-check failed: %v", err)
	}
	drift := *loaded
	drift.Cells = append([]GoldenCell(nil), loaded.Cells...)
	drift.Cells[0].Mean += drift.Cells[0].HalfWidth + 0.05
	if err := drift.Check(atlas); err == nil {
		t.Fatal("golden check passed despite drift beyond CI bounds")
	}
	missing := *loaded
	missing.Cells = append([]GoldenCell(nil), loaded.Cells...)
	missing.Cells[0].Label = "no/such/cell"
	if err := missing.Check(atlas); err == nil {
		t.Fatal("golden check passed with a pinned cell absent from the atlas")
	}
}

// TestMeanCurve: pointwise mean over the shortest common length, times
// on the shared sampling grid.
func TestMeanCurve(t *testing.T) {
	s := Series{Every: 5, Delivery: [][]float64{{0.2, 0.4, 0.6}, {0.4, 0.6}}}
	times, means := s.MeanCurve()
	if len(times) != 2 || len(means) != 2 {
		t.Fatalf("curve lengths: %d, %d", len(times), len(means))
	}
	if times[0] != 5 || times[1] != 10 {
		t.Fatalf("times = %v", times)
	}
	if math.Abs(means[0]-0.3) > 1e-12 || math.Abs(means[1]-0.5) > 1e-12 {
		t.Fatalf("means = %v", means)
	}
}
