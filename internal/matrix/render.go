package matrix

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"glr"
	"glr/internal/asciiplot"
	"glr/internal/stats"
)

// coordinateAxes are the cell dimensions a regime map compares
// protocols across, in table-column order.
var coordinateAxes = []string{"mobility", "workload", "nodes", "range", "storage", "faults"}

// coordValue renders one cell's value on a named coordinate axis,
// matching the formatting of Matrix.Axes.
func coordValue(c glr.Cell, axis string) string {
	switch axis {
	case "mobility":
		return string(c.Mobility)
	case "workload":
		return string(c.Workload)
	case "nodes":
		return strconv.Itoa(c.Nodes)
	case "range":
		return strconv.FormatFloat(c.Range, 'g', -1, 64)
	case "storage":
		if c.StorageLimit == 0 {
			return "unlimited"
		}
		return strconv.Itoa(c.StorageLimit)
	case "faults":
		if c.Faults == "" {
			return "none"
		}
		return c.Faults
	default:
		return ""
	}
}

// axisNumber reads one cell's value on a numeric axis (for trend-plot x
// coordinates).
func axisNumber(c glr.Cell, axis string) (float64, bool) {
	switch axis {
	case "nodes":
		return float64(c.Nodes), true
	case "range":
		return c.Range, true
	case "storage":
		return float64(c.StorageLimit), true
	default:
		return 0, false
	}
}

// fmtCI renders a mean ± half-width pair at the given precision.
func fmtCI(ci stats.MeanCI, prec int) string {
	return fmt.Sprintf("%.*f±%.*f", prec, ci.Mean, prec, ci.HalfWidth)
}

// mdTable renders a GitHub-flavored markdown table.
func mdTable(headers []string, rows [][]string) string {
	var sb strings.Builder
	sb.WriteString("| " + strings.Join(headers, " | ") + " |\n")
	seps := make([]string, len(headers))
	for i := range seps {
		seps[i] = "---"
	}
	sb.WriteString("| " + strings.Join(seps, " | ") + " |\n")
	for _, row := range rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return sb.String()
}

// group is one coordinate of a section with its per-protocol cells, in
// section protocol order.
type group struct {
	coord glr.Cell // protocol cleared
	cells []*CellResult
}

// groups folds a section's cells by coordinate, preserving first-seen
// order; within a group, cells keep the section's cell order (protocol
// innermost, so protocol order).
func (sr *SectionResult) groups() []group {
	index := map[glr.Cell]int{}
	var gs []group
	for ci := range sr.Cells {
		cr := &sr.Cells[ci]
		coord := cr.Cell.Coordinate()
		gi, ok := index[coord]
		if !ok {
			gi = len(gs)
			index[coord] = gi
			gs = append(gs, group{coord: coord})
		}
		gs[gi].cells = append(gs[gi].cells, cr)
	}
	return gs
}

// winner picks the group's best protocol by mean delivery ratio (ties
// break toward lower mean latency, then cell order) and reports whether
// its confidence interval is disjoint from every rival's — the regime
// map's significance mark.
func (g group) winner() (*CellResult, bool) {
	best := g.cells[0]
	for _, c := range g.cells[1:] {
		switch {
		case c.Agg.DeliveryRatio.Mean > best.Agg.DeliveryRatio.Mean:
			best = c
		case c.Agg.DeliveryRatio.Mean == best.Agg.DeliveryRatio.Mean &&
			c.Agg.AvgLatency.Mean < best.Agg.AvgLatency.Mean:
			best = c
		}
	}
	significant := true
	for _, c := range g.cells {
		if c == best {
			continue
		}
		if best.Agg.DeliveryRatio.Lo() <= c.Agg.DeliveryRatio.Hi() {
			significant = false
		}
	}
	return best, significant
}

// variableAxes returns the section's coordinate axes that sweep more
// than one value (constant axes stay out of the regime table).
func (sr *SectionResult) variableAxes() []string {
	byName := map[string][]string{}
	for _, ax := range sr.Axes {
		byName[ax.Name] = ax.Values
	}
	var out []string
	for _, name := range coordinateAxes {
		if len(byName[name]) > 1 {
			out = append(out, name)
		}
	}
	return out
}

// protocols returns the section's protocol axis values in sweep order.
func (sr *SectionResult) protocols() []string {
	for _, ax := range sr.Axes {
		if ax.Name == "protocol" {
			return ax.Values
		}
	}
	return nil
}

// regimeTable renders the section's winner-per-coordinate markdown
// table.
func (sr *SectionResult) regimeTable() string {
	axes := sr.variableAxes()
	protos := sr.protocols()
	multi := len(protos) > 1
	headers := append([]string{}, axes...)
	if multi {
		headers = append(headers, "winner")
	}
	for _, p := range protos {
		headers = append(headers, p+" delivery", p+" latency (s)")
	}
	var rows [][]string
	for _, g := range sr.groups() {
		row := make([]string, 0, len(headers))
		for _, ax := range axes {
			row = append(row, coordValue(g.coord, ax))
		}
		if multi {
			best, significant := g.winner()
			if significant {
				row = append(row, "**"+strings.ToUpper(string(best.Cell.Protocol))+"**")
			} else {
				row = append(row, string(best.Cell.Protocol)+" ≈")
			}
		}
		for _, c := range g.cells {
			row = append(row, fmtCI(c.Agg.DeliveryRatio, 3), fmtCI(c.Agg.AvgLatency, 1))
		}
		rows = append(rows, row)
	}
	return mdTable(headers, rows)
}

// overheadTable renders per-protocol hop, storage, duplicate, and frame
// aggregates for the section's first coordinate — the cost side of the
// regime map.
func (sr *SectionResult) overheadTable() string {
	gs := sr.groups()
	if len(gs) == 0 {
		return ""
	}
	headers := []string{"protocol (" + gs[0].coord.Label() + ")", "hops", "avg peak storage", "duplicates", "frames"}
	var rows [][]string
	for _, c := range gs[0].cells {
		rows = append(rows, []string{
			string(c.Cell.Protocol),
			fmtCI(c.Agg.AvgHops, 1),
			fmtCI(c.Agg.AvgPeakStorage, 1),
			fmtCI(c.Agg.Duplicates, 0),
			fmtCI(c.Agg.Frames, 0),
		})
	}
	return mdTable(headers, rows)
}

// pinnedLabel names the coordinate a trend plot holds fixed: the
// group's label with the swept axis left out.
func pinnedLabel(coord glr.Cell, skip string) string {
	var parts []string
	for _, ax := range coordinateAxes {
		if ax != skip {
			parts = append(parts, coordValue(coord, ax))
		}
	}
	return strings.Join(parts, "/")
}

// trendChart plots mean delivery ratio against the section's ChartX
// axis, one series per protocol, other coordinate axes pinned at their
// first values.
func (sr *SectionResult) trendChart() string {
	if sr.chartX == "" {
		return ""
	}
	gs := sr.groups()
	if len(gs) == 0 {
		return ""
	}
	byCell := map[glr.Cell]*CellResult{}
	for ci := range sr.Cells {
		byCell[sr.Cells[ci].Cell] = &sr.Cells[ci]
	}
	// Walk the groups that match the first coordinate on every axis but
	// chartX: those are the swept points.
	pin := gs[0].coord
	var series []asciiplot.Series
	protos := sr.protocols()
	markers := []rune{'*', '+', 'o', 'x'}
	for pi, p := range protos {
		var xs, ys []float64
		for _, g := range gs {
			match := g.coord
			if x, ok := axisNumber(match, sr.chartX); ok {
				ref := pin
				// Compare with chartX neutralized on both sides.
				switch sr.chartX {
				case "nodes":
					match.Nodes, ref.Nodes = 0, 0
				case "range":
					match.Range, ref.Range = 0, 0
				case "storage":
					match.StorageLimit, ref.StorageLimit = 0, 0
				}
				if match != ref {
					continue
				}
				cell := g.coord
				cell.Protocol = glr.Protocol(p)
				if cr, ok := byCell[cell]; ok {
					xs = append(xs, x)
					ys = append(ys, cr.Agg.DeliveryRatio.Mean)
				}
			}
		}
		if len(xs) > 1 {
			series = append(series, asciiplot.Series{Name: p, Marker: markers[pi%len(markers)], X: xs, Y: ys})
		}
	}
	if len(series) == 0 {
		return ""
	}
	chart := asciiplot.Chart{
		Title:  fmt.Sprintf("mean delivery ratio vs %s (%s)", sr.chartX, pinnedLabel(pin, sr.chartX)),
		XLabel: sr.chartX,
		YMin:   0, YMax: 1,
		Series: series,
	}
	return "```text\n" + chart.Render() + "```\n"
}

// seriesChartMD plots the mean delivery-ratio time series at the
// section's first coordinate, one series per protocol.
func (sr *SectionResult) seriesChartMD() string {
	if !sr.seriesChart {
		return ""
	}
	gs := sr.groups()
	if len(gs) == 0 {
		return ""
	}
	markers := []rune{'*', '+', 'o', 'x'}
	var series []asciiplot.Series
	for i, c := range gs[0].cells {
		times, means := c.Series.MeanCurve()
		if len(times) == 0 {
			continue
		}
		series = append(series, asciiplot.Series{
			Name: string(c.Cell.Protocol), Marker: markers[i%len(markers)], X: times, Y: means,
		})
	}
	if len(series) == 0 {
		return ""
	}
	chart := asciiplot.Chart{
		Title:  fmt.Sprintf("mean delivery ratio over time (%s)", gs[0].coord.Label()),
		XLabel: "simulated seconds",
		YMin:   0, YMax: 1,
		Series: series,
	}
	return "```text\n" + chart.Render() + "```\n"
}

// axesTable renders the section's axes.
func (sr *SectionResult) axesTable() string {
	rows := make([][]string, len(sr.Axes))
	for i, ax := range sr.Axes {
		rows[i] = []string{ax.Name, strings.Join(ax.Values, ", ")}
	}
	return mdTable([]string{"axis", "values"}, rows)
}

// Markdown renders the atlas as the committed docs/ATLAS.md: regime-map
// tables with per-cell winners and confidence intervals, overhead
// tables, and ASCII trend plots. When golden is non-nil its comparison
// table is appended to the section it pins. The output is fully
// deterministic for a given atlas, so a cache-served regeneration is
// byte-identical to the run that computed the cells.
func (a *Atlas) Markdown(golden *Golden) string {
	var sb strings.Builder
	sb.WriteString("# GLR scenario atlas — regime map\n\n")
	sb.WriteString("> Generated by `make atlas` (cmd/glratlas) from the committed result\n")
	sb.WriteString("> cache in `docs/atlas-cache/`. Do not edit by hand: change the\n")
	sb.WriteString("> declared sections in `internal/matrix/sections.go`, re-run\n")
	sb.WriteString("> `make atlas`, and commit the regenerated atlas together with the\n")
	sb.WriteString("> new cache cells. Only cells without a valid cache entry recompute.\n\n")
	cells := 0
	for _, sr := range a.Sections {
		cells += len(sr.Cells)
	}
	fmt.Fprintf(&sb, "Atlas version `%s` — %d cell(s) across %d section(s). ", a.Version, cells, len(a.Sections))
	sb.WriteString("Every cell aggregates its seeds as mean ± two-sided 90% Student-t\n")
	sb.WriteString("confidence half-width; **bold** winners have a delivery-ratio interval\n")
	sb.WriteString("disjoint from every rival's, \"≈\" marks overlapping intervals.\n\n")
	for si := range a.Sections {
		sr := &a.Sections[si]
		fmt.Fprintf(&sb, "## %s\n\n", sr.Title)
		if sr.Note != "" {
			sb.WriteString(sr.Note + "\n\n")
		}
		fmt.Fprintf(&sb, "%d cells × %d seeds (base seed %d), %d messages per run.\n\n",
			len(sr.Cells), sr.Runs, sr.BaseSeed, messagesOf(sr))
		sb.WriteString(sr.axesTable() + "\n")
		sb.WriteString("### Regime map\n\n")
		sb.WriteString(sr.regimeTable() + "\n")
		if ot := sr.overheadTable(); ot != "" {
			sb.WriteString("### Overhead\n\n")
			sb.WriteString(ot + "\n")
		}
		if tc := sr.trendChart(); tc != "" {
			sb.WriteString("### Trend\n\n")
			sb.WriteString(tc + "\n")
		}
		if sc := sr.seriesChartMD(); sc != "" {
			sb.WriteString("### Time series\n\n")
			sb.WriteString(sc + "\n")
		}
		if golden != nil && golden.Section == sr.Name {
			sb.WriteString(golden.table(sr))
		}
	}
	return sb.String()
}

// messagesOf reads the per-run message count off a section (constant
// across its cells by construction).
func messagesOf(sr *SectionResult) int {
	if len(sr.Cells) == 0 {
		return 0
	}
	return sr.Cells[0].Cell.Messages
}

// JSON renders the machine-readable docs/atlas.json.
func (a *Atlas) JSON() ([]byte, error) {
	raw, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(raw, '\n'), nil
}

// section finds a section by name.
func (a *Atlas) section(name string) *SectionResult {
	for i := range a.Sections {
		if a.Sections[i].Name == name {
			return &a.Sections[i]
		}
	}
	return nil
}

// Golden pins one section's per-cell delivery-ratio means: the
// committed expectation the regenerated atlas is diffed against. The
// paper-figure slice commits its numbers to ci/atlas_golden.json, so
// any semantic drift in the simulator shows up as a golden failure
// rather than a silently shifted figure.
type Golden struct {
	// Section names the pinned section.
	Section string
	// Metric documents what Mean pins (always "deliveryRatio" today).
	Metric string
	// Epsilon is the absolute slack added on top of each cell's
	// confidence half-width (covers floating-point formatting drift;
	// the simulation itself is deterministic).
	Epsilon float64
	// Cells are the pinned per-cell expectations.
	Cells []GoldenCell
}

// GoldenCell is one pinned cell: its label and the expected mean ±
// confidence half-width.
type GoldenCell struct {
	Label     string
	Mean      float64
	HalfWidth float64
}

// GoldenFromAtlas extracts a golden snapshot of the named section.
func GoldenFromAtlas(a *Atlas, section string) (*Golden, error) {
	sr := a.section(section)
	if sr == nil {
		return nil, fmt.Errorf("matrix: no section %q in atlas", section)
	}
	g := &Golden{Section: section, Metric: "deliveryRatio", Epsilon: 1e-9}
	for i := range sr.Cells {
		cr := &sr.Cells[i]
		g.Cells = append(g.Cells, GoldenCell{
			Label:     cr.Cell.Label(),
			Mean:      cr.Agg.DeliveryRatio.Mean,
			HalfWidth: cr.Agg.DeliveryRatio.HalfWidth,
		})
	}
	return g, nil
}

// Check verifies the atlas against the golden numbers: every pinned
// cell must exist and its regenerated delivery-ratio mean must lie
// within the golden's confidence interval widened by Epsilon.
func (g *Golden) Check(a *Atlas) error {
	sr := a.section(g.Section)
	if sr == nil {
		return fmt.Errorf("matrix: golden pins section %q, absent from atlas", g.Section)
	}
	byLabel := map[string]*CellResult{}
	for i := range sr.Cells {
		byLabel[sr.Cells[i].Cell.Label()] = &sr.Cells[i]
	}
	for _, gc := range g.Cells {
		cr, ok := byLabel[gc.Label]
		if !ok {
			return fmt.Errorf("matrix: golden cell %q absent from section %q", gc.Label, g.Section)
		}
		diff := math.Abs(cr.Agg.DeliveryRatio.Mean - gc.Mean)
		if tol := gc.HalfWidth + g.Epsilon; diff > tol {
			return fmt.Errorf("matrix: golden mismatch at %q: delivery %.6f, golden %.6f±%.6f (|Δ| %.6f > %.6f)",
				gc.Label, cr.Agg.DeliveryRatio.Mean, gc.Mean, gc.HalfWidth, diff, tol)
		}
	}
	return nil
}

// table renders the golden comparison for ATLAS.md.
func (g *Golden) table(sr *SectionResult) string {
	byLabel := map[string]*CellResult{}
	for i := range sr.Cells {
		byLabel[sr.Cells[i].Cell.Label()] = &sr.Cells[i]
	}
	var rows [][]string
	for _, gc := range g.Cells {
		cr, ok := byLabel[gc.Label]
		if !ok {
			continue
		}
		rows = append(rows, []string{
			gc.Label,
			fmt.Sprintf("%.3f±%.3f", gc.Mean, gc.HalfWidth),
			fmt.Sprintf("%.3f", cr.Agg.DeliveryRatio.Mean),
			fmt.Sprintf("%.6f", math.Abs(cr.Agg.DeliveryRatio.Mean-gc.Mean)),
		})
	}
	var sb strings.Builder
	sb.WriteString("### Golden check\n\n")
	sb.WriteString("Regenerated delivery-ratio means against the committed golden\n")
	sb.WriteString("numbers (`ci/atlas_golden.json`); `make atlas` fails if any cell\n")
	sb.WriteString("drifts outside its golden confidence interval.\n\n")
	sb.WriteString(mdTable([]string{"cell", "golden", "regenerated", "|Δ|"}, rows) + "\n")
	return sb.String()
}

// ReadGolden loads a golden file.
func ReadGolden(path string) (*Golden, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var g Golden
	if err := json.Unmarshal(raw, &g); err != nil {
		return nil, fmt.Errorf("matrix: parse golden %s: %w", path, err)
	}
	return &g, nil
}

// WriteGolden persists a golden file.
func WriteGolden(path string, g *Golden) error {
	raw, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
