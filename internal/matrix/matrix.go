// Package matrix is the scenario-matrix driver behind cmd/glratlas: it
// executes the cross-product of scenario axes a glr.Matrix describes —
// protocol × mobility × workload × node count × transmission range ×
// storage limit — with multi-seed replication, collects each run's
// final metrics plus an observer time series, and aggregates mean ±
// Student-t confidence half-width per cell.
//
// The driver is resumable: every cell's replication sweep is
// content-addressed by the SHA-256 of its canonicalized spec (cell +
// seed range + atlas Version), and results are persisted in an on-disk
// cache keyed by that hash. A re-run recomputes only cells whose key
// has no valid cache entry — a new axis value, a different seed range,
// a Version bump, or a corrupted entry — so a large atlas accumulates
// incrementally across CI runs instead of being recomputed from
// scratch.
//
// The output layer renders the accumulated results as a regime-map
// atlas: docs/ATLAS.md (per-cell winners with confidence intervals and
// ASCII trend plots) and the machine-readable docs/atlas.json. One
// declared section reproduces the paper's delivery-vs-density figure
// and is diffed against committed golden numbers.
package matrix

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"glr"
	"glr/internal/runner"
	"glr/internal/stats"
)

// shardBudget splits GOMAXPROCS between the driver's replication
// workers and each run's shard pool, mirroring the public Runner's
// division: w concurrent runs each get GOMAXPROCS/w shard workers,
// minimum 1 (serial).
func shardBudget(workers int) int {
	procs := runtime.GOMAXPROCS(0)
	w := workers
	if w <= 0 {
		w = procs
	}
	if b := procs / w; b > 1 {
		return b
	}
	return 1
}

// Version namespaces every cache key. Bump it whenever simulation
// semantics change in a way that invalidates previously computed
// results (protocol behavior, metric definitions, workload schedules);
// every cell then misses and recomputes under the new version.
const Version = "glr-atlas-v1"

// confidence is the two-sided confidence level for per-cell aggregates
// (the paper's 90%). It is fixed so committed atlas artifacts are
// reproducible byte for byte.
const confidence = 0.90

// seriesPoints is the number of periodic delivery-ratio samples
// collected per run: each run is observed every SimTime/seriesPoints
// simulated seconds, so every seed of a cell samples on an identical
// grid.
const seriesPoints = 24

// Section is one named sub-matrix of an atlas: a title and prose note
// for the rendered document, the matrix to sweep, and rendering hints.
type Section struct {
	// Name is a stable slug identifying the section (golden files pin
	// sections by it).
	Name string
	// Title heads the section in ATLAS.md.
	Title string
	// Note is an optional prose paragraph rendered under the title.
	Note string
	// Matrix is the scenario cross-product to execute.
	Matrix glr.Matrix
	// ChartX, when set to the name of a numeric axis ("nodes", "range",
	// or "storage"), renders an ASCII trend plot of mean delivery ratio
	// against that axis, one series per protocol, with the remaining
	// coordinate axes pinned at their first values.
	ChartX string
	// SeriesChart renders an ASCII plot of the mean delivery-ratio time
	// series at the section's first coordinate, one series per
	// protocol.
	SeriesChart bool
}

// Driver executes sections against the result cache.
type Driver struct {
	// Cache is the on-disk result cache directory; empty disables
	// caching (every cell recomputes).
	Cache string
	// Workers bounds concurrent replications (0 = GOMAXPROCS).
	Workers int
	// Version overrides the cache namespace (default the package
	// Version; tests use it to model semantic bumps).
	Version string
	// Progress, when non-nil, receives one line per completed run and
	// per section summary.
	Progress func(format string, args ...any)
}

// Series is the per-cell observer time series: every seed's periodic
// delivery-ratio samples, observed every Every simulated seconds
// (first sample at Every).
type Series struct {
	Every    float64
	Delivery [][]float64 // [seed][sample]
}

// MeanCurve averages the per-seed series pointwise, over the shortest
// common length.
func (s Series) MeanCurve() (times, means []float64) {
	if len(s.Delivery) == 0 {
		return nil, nil
	}
	n := len(s.Delivery[0])
	for _, d := range s.Delivery[1:] {
		if len(d) < n {
			n = len(d)
		}
	}
	times = make([]float64, n)
	means = make([]float64, n)
	for i := 0; i < n; i++ {
		sum := 0.0
		for _, d := range s.Delivery {
			sum += d[i]
		}
		times[i] = float64(i+1) * s.Every
		means[i] = sum / float64(len(s.Delivery))
	}
	return times, means
}

// Agg is one cell's replication aggregate: mean ± confidence half-width
// for every headline metric, plus total frames (control + data + acks)
// as the overhead measure.
type Agg struct {
	DeliveryRatio  stats.MeanCI
	AvgLatency     stats.MeanCI
	AvgHops        stats.MeanCI
	AvgPeakStorage stats.MeanCI
	MaxPeakStorage stats.MeanCI
	Duplicates     stats.MeanCI
	Frames         stats.MeanCI
}

// aggregate folds per-seed results at the fixed confidence level.
func aggregate(results []glr.Result) Agg {
	pull := func(f func(glr.Result) float64) stats.MeanCI {
		xs := make([]float64, len(results))
		for i, r := range results {
			xs[i] = f(r)
		}
		return stats.ConfidenceInterval(xs, confidence)
	}
	return Agg{
		DeliveryRatio:  pull(func(r glr.Result) float64 { return r.DeliveryRatio }),
		AvgLatency:     pull(func(r glr.Result) float64 { return r.AvgLatency }),
		AvgHops:        pull(func(r glr.Result) float64 { return r.AvgHops }),
		AvgPeakStorage: pull(func(r glr.Result) float64 { return r.AvgPeakStorage }),
		MaxPeakStorage: pull(func(r glr.Result) float64 { return float64(r.MaxPeakStorage) }),
		Duplicates:     pull(func(r glr.Result) float64 { return float64(r.Duplicates) }),
		Frames: pull(func(r glr.Result) float64 {
			return float64(r.ControlFrames + r.DataFrames + r.Acks)
		}),
	}
}

// CellResult is one cell's accumulated outcome: the spec, its cache
// key, the per-seed results and time series, and the aggregate.
type CellResult struct {
	Cell    glr.Cell
	Key     string
	Seeds   []int64
	Results []glr.Result
	Series  Series
	Agg     Agg
	// Cached reports whether this run served the cell from the cache.
	// It is runtime information, deliberately excluded from atlas.json
	// so a fully cached regeneration is byte-identical to the run that
	// computed the cells.
	Cached bool `json:"-"`
}

// SectionResult is one executed section.
type SectionResult struct {
	Name     string
	Title    string
	Note     string `json:",omitempty"`
	Axes     []glr.Axis
	BaseSeed int64
	Runs     int
	Cells    []CellResult

	chartX      string
	seriesChart bool
}

// Atlas is the executed whole: every section's cells, ready for
// rendering.
type Atlas struct {
	Version  string
	Sections []SectionResult
	// Computed and CacheHits count cells by provenance for this run
	// (runtime information, excluded from atlas.json).
	Computed  int `json:"-"`
	CacheHits int `json:"-"`
}

// seedRange lists the seeds of a replication sweep: base..base+runs-1.
func seedRange(base int64, runs int) []int64 {
	seeds := make([]int64, runs)
	for i := range seeds {
		seeds[i] = base + int64(i)
	}
	return seeds
}

// seedOut is one replication's harvest.
type seedOut struct {
	res      glr.Result
	delivery []float64
}

// pending identifies a cell awaiting computation.
type pending struct {
	section, cell int // indices into the atlas
	spec          glr.Cell
	key           string
	baseSeed      int64
	runs          int
	every         float64
	firstJob      int // index of the cell's first job in the pool
}

// Run executes the sections, serving every cell it can from the cache
// and computing the rest across the worker pool, then persists newly
// computed cells back to the cache. The returned atlas is fully
// aggregated and deterministic: for fixed sections and version, a fully
// cached run returns exactly what the computing run did.
func (d *Driver) Run(ctx context.Context, sections []Section) (*Atlas, error) {
	version := d.Version
	if version == "" {
		version = Version
	}
	atlas := &Atlas{Version: version}
	var misses []pending
	for si, sec := range sections {
		m := sec.Matrix.Normalized()
		if err := m.Validate(); err != nil {
			return nil, fmt.Errorf("matrix: section %q: %w", sec.Name, err)
		}
		cells := m.Cells()
		sr := SectionResult{
			Name:     sec.Name,
			Title:    sec.Title,
			Note:     sec.Note,
			Axes:     m.Axes(),
			BaseSeed: m.BaseSeed,
			Runs:     m.Seeds,
			Cells:    make([]CellResult, len(cells)),

			chartX:      sec.ChartX,
			seriesChart: sec.SeriesChart,
		}
		for ci, c := range cells {
			key := cellKey(version, c, m.BaseSeed, m.Seeds)
			cr := CellResult{Cell: c, Key: key, Seeds: seedRange(m.BaseSeed, m.Seeds)}
			if d.Cache != "" {
				if e, ok := loadCell(d.Cache, key); ok {
					cr.Results, cr.Series, cr.Cached = e.Results, e.Series, true
					atlas.CacheHits++
				}
			}
			if !cr.Cached {
				misses = append(misses, pending{
					section: si, cell: ci,
					spec: c, key: key,
					baseSeed: m.BaseSeed, runs: m.Seeds,
					every: c.SimTime / seriesPoints,
				})
			}
			sr.Cells[ci] = cr
		}
		atlas.Sections = append(atlas.Sections, sr)
	}

	// One shared pool over every missing (cell, seed): a sweep with a
	// few straggler cells still saturates the workers. Each run's shard
	// pool is capped so driver workers × shard workers stays within
	// GOMAXPROCS (results are byte-identical at any parallelism; cached
	// atlases stay valid regardless of the split).
	budget := shardBudget(d.Workers)
	var jobs []runner.Job[seedOut]
	for mi := range misses {
		p := &misses[mi]
		p.firstJob = len(jobs)
		for _, seed := range seedRange(p.baseSeed, p.runs) {
			spec, every, seed := p.spec, p.every, seed
			jobs = append(jobs, func(ctx context.Context) (seedOut, error) {
				var out seedOut
				obs := &glr.Observer{
					SampleEvery: every,
					OnSample:    func(s glr.Sample) { out.delivery = append(out.delivery, s.DeliveryRatio) },
				}
				sc, err := spec.Scenario(glr.WithSeed(seed), glr.WithObserver(obs), glr.WithParallelism(budget))
				if err != nil {
					return seedOut{}, fmt.Errorf("matrix: cell %s seed %d: %w", spec.Label(), seed, err)
				}
				res, err := sc.RunContext(ctx)
				if err != nil {
					return seedOut{}, fmt.Errorf("matrix: cell %s seed %d: %w", spec.Label(), seed, err)
				}
				out.res = res
				return out, nil
			})
		}
	}
	d.progress("atlas: %d cell(s) cached, %d to compute (%d run(s))",
		atlas.CacheHits, len(misses), len(jobs))
	var (
		mu   sync.Mutex
		done int
	)
	outs, err := runner.RunNotify(ctx, d.Workers, jobs, func(int) {
		mu.Lock()
		done++
		n := done
		mu.Unlock()
		d.progress("atlas: run %d/%d done", n, len(jobs))
	})
	if err != nil {
		return nil, err
	}

	for _, p := range misses {
		cr := &atlas.Sections[p.section].Cells[p.cell]
		cr.Results = make([]glr.Result, p.runs)
		cr.Series = Series{Every: p.every, Delivery: make([][]float64, p.runs)}
		for k := 0; k < p.runs; k++ {
			cr.Results[k] = outs[p.firstJob+k].res
			cr.Series.Delivery[k] = outs[p.firstJob+k].delivery
		}
		atlas.Computed++
		if d.Cache != "" {
			if err := storeCell(d.Cache, cacheEntry{
				Key: p.key, Version: version, Cell: p.spec,
				BaseSeed: p.baseSeed, Runs: p.runs,
				Results: cr.Results, Series: cr.Series,
			}); err != nil {
				return nil, err
			}
		}
		d.progress("atlas: cell %s -> delivery %.3f", p.spec.Label(), aggregate(cr.Results).DeliveryRatio.Mean)
	}
	for si := range atlas.Sections {
		for ci := range atlas.Sections[si].Cells {
			cr := &atlas.Sections[si].Cells[ci]
			cr.Agg = aggregate(cr.Results)
		}
	}
	return atlas, nil
}

func (d *Driver) progress(format string, args ...any) {
	if d.Progress != nil {
		d.Progress(format, args...)
	}
}
