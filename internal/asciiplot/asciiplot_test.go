package asciiplot

import (
	"strings"
	"testing"
)

func TestChartRenderBasics(t *testing.T) {
	c := Chart{
		Title:  "Delivery latency",
		XLabel: "messages",
		Series: []Series{
			{Name: "GLR", X: []float64{0, 1, 2}, Y: []float64{1, 2, 3}},
			{Name: "Epidemic", X: []float64{0, 1, 2}, Y: []float64{2, 4, 6}},
		},
	}
	out := c.Render()
	for _, want := range []string{"Delivery latency", "messages", "GLR", "Epidemic", "*", "+"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 18 {
		t.Errorf("chart too short: %d lines", len(lines))
	}
}

func TestChartEmptySeries(t *testing.T) {
	out := Chart{Series: []Series{{Name: "nothing"}}}.Render()
	if out == "" {
		t.Error("empty chart should still render axes")
	}
}

func TestChartNaNSkipped(t *testing.T) {
	c := Chart{Series: []Series{{
		Name: "holes",
		X:    []float64{0, 1, 2},
		Y:    []float64{1, nan(), 3},
	}}}
	out := c.Render()
	if !strings.Contains(out, "*") {
		t.Error("non-NaN points should render")
	}
}

func nan() float64 { return float64NaN }

var float64NaN = func() float64 {
	var z float64
	return z / z
}()

func TestChartConstantSeries(t *testing.T) {
	// Degenerate ranges (all same x or y) must not divide by zero.
	c := Chart{Series: []Series{{Name: "flat", X: []float64{1, 1, 1}, Y: []float64{5, 5, 5}}}}
	out := c.Render()
	if !strings.Contains(out, "*") {
		t.Errorf("flat series should still draw:\n%s", out)
	}
}

func TestChartForcedYRange(t *testing.T) {
	c := Chart{
		YMin: 0, YMax: 1, ForceYZero: true,
		Series: []Series{{Name: "ratio", X: []float64{0, 1}, Y: []float64{0.9, 0.95}}},
	}
	out := c.Render()
	if !strings.Contains(out, "1") {
		t.Errorf("forced range should label 1:\n%s", out)
	}
}

func TestScatterRender(t *testing.T) {
	s := Scatter{
		Title: "50 nodes, 100m",
		W:     1000, H: 1000,
		Points: [][2]float64{{100, 100}, {900, 900}, {500, 500}},
		Edges:  [][2]int{{0, 2}},
	}
	out := s.Render()
	if strings.Count(out, "O") != 3 {
		t.Errorf("want 3 node markers:\n%s", out)
	}
	if !strings.Contains(out, ".") {
		t.Errorf("edge dots missing:\n%s", out)
	}
	if !strings.Contains(out, "50 nodes, 100m") {
		t.Error("title missing")
	}
}

func TestScatterPointsOnBoundary(t *testing.T) {
	s := Scatter{W: 100, H: 100, Points: [][2]float64{{0, 0}, {100, 100}}}
	out := s.Render()
	if strings.Count(out, "O") != 2 {
		t.Errorf("boundary points must clamp into canvas:\n%s", out)
	}
}

func TestTableRender(t *testing.T) {
	tb := Table{
		Title:   "Table 3: Message delivery ratio comparison (50m)",
		Headers: []string{"Scenario", "Delivery ratio"},
		Rows: [][]string{
			{"without custody", "84.7%±1%"},
			{"with custody", "97.9%±1%"},
		},
	}
	out := tb.Render()
	for _, want := range []string{"Scenario", "without custody", "97.9%±1%", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	// Alignment: header and first column cells start at the same offset.
	lines := strings.Split(out, "\n")
	if len(lines) < 5 {
		t.Fatalf("table too short:\n%s", out)
	}
}
