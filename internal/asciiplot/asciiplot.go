// Package asciiplot renders the paper's figures as terminal text: XY line
// charts for the latency/delivery-ratio sweeps and scatter plots for the
// Figure-1 topology snapshots. It intentionally mimics the gnuplot charts
// the paper prints, so an experiment run can be eyeballed against the
// original figure.
package asciiplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name   string
	Marker rune
	X, Y   []float64
}

// Chart lays out one or more series on a shared canvas.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot-area columns (default 60)
	Height int // plot-area rows (default 18)
	Series []Series
	// YMin/YMax force the y range when both are set (YMax > YMin).
	YMin, YMax float64
	ForceYZero bool // extend the y range down to zero
}

// markers used when a series does not set one.
var defaultMarkers = []rune{'*', '+', 'o', 'x', '#', '@'}

// Render draws the chart.
func (c Chart) Render() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 60
	}
	if h <= 0 {
		h = 18
	}
	var sb strings.Builder
	if c.Title != "" {
		sb.WriteString(center(c.Title, w+10))
		sb.WriteByte('\n')
	}
	xmin, xmax, ymin, ymax := c.bounds()
	if c.ForceYZero && ymin > 0 {
		ymin = 0
	}
	if c.YMax > c.YMin {
		ymin, ymax = c.YMin, c.YMax
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]rune, h)
	for i := range grid {
		grid[i] = make([]rune, w)
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}
	for si, s := range c.Series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[si%len(defaultMarkers)]
		}
		for i := range s.X {
			if i >= len(s.Y) {
				break
			}
			x, y := s.X[i], s.Y[i]
			if math.IsNaN(x) || math.IsNaN(y) {
				continue
			}
			col := int(math.Round((x - xmin) / (xmax - xmin) * float64(w-1)))
			row := int(math.Round((y - ymin) / (ymax - ymin) * float64(h-1)))
			if col < 0 || col >= w || row < 0 || row >= h {
				continue
			}
			grid[h-1-row][col] = marker
		}
	}

	// y-axis labels on selected rows.
	for i, row := range grid {
		frac := float64(h-1-i) / float64(h-1)
		yval := ymin + frac*(ymax-ymin)
		label := "        "
		if i == 0 || i == h-1 || i == h/2 {
			label = fmt.Sprintf("%8.5g", yval)
		}
		sb.WriteString(label)
		sb.WriteString(" |")
		sb.WriteString(string(row))
		sb.WriteByte('\n')
	}
	sb.WriteString(strings.Repeat(" ", 9))
	sb.WriteByte('+')
	sb.WriteString(strings.Repeat("-", w))
	sb.WriteByte('\n')
	xlo := fmt.Sprintf("%-10.5g", xmin)
	xhi := fmt.Sprintf("%10.5g", xmax)
	pad := w - len(xlo) - len(xhi) + 10
	if pad < 1 {
		pad = 1
	}
	sb.WriteString(strings.Repeat(" ", 9))
	sb.WriteString(xlo)
	sb.WriteString(strings.Repeat(" ", pad))
	sb.WriteString(xhi)
	sb.WriteByte('\n')
	if c.XLabel != "" {
		sb.WriteString(center(c.XLabel, w+10))
		sb.WriteByte('\n')
	}
	// Legend.
	for si, s := range c.Series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[si%len(defaultMarkers)]
		}
		fmt.Fprintf(&sb, "%10s%c %s\n", "", marker, s.Name)
	}
	return sb.String()
}

func (c Chart) bounds() (xmin, xmax, ymin, ymax float64) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	any := false
	for _, s := range c.Series {
		for i := range s.X {
			if i >= len(s.Y) || math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			any = true
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if !any {
		return 0, 1, 0, 1
	}
	return xmin, xmax, ymin, ymax
}

func center(s string, width int) string {
	if len(s) >= width {
		return s
	}
	left := (width - len(s)) / 2
	return strings.Repeat(" ", left) + s
}

// Scatter renders point positions in a bounded region with optional edges
// — the Figure-1 topology snapshot style.
type Scatter struct {
	Title         string
	W, H          float64 // region extent in metres
	Width, Height int     // canvas size in characters
	Points        [][2]float64
	Edges         [][2]int // indices into Points
}

// Render draws the scatter.
func (s Scatter) Render() string {
	cw, ch := s.Width, s.Height
	if cw <= 0 {
		cw = 64
	}
	if ch <= 0 {
		ch = 20
	}
	grid := make([][]rune, ch)
	for i := range grid {
		grid[i] = make([]rune, cw)
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}
	toCell := func(p [2]float64) (int, int) {
		col := int(p[0] / s.W * float64(cw-1))
		row := int(p[1] / s.H * float64(ch-1))
		return clamp(col, 0, cw-1), clamp(row, 0, ch-1)
	}
	// Edges first (drawn with light dots), points on top.
	for _, e := range s.Edges {
		a, b := s.Points[e[0]], s.Points[e[1]]
		const steps = 24
		for t := 0; t <= steps; t++ {
			f := float64(t) / steps
			col, row := toCell([2]float64{a[0] + f*(b[0]-a[0]), a[1] + f*(b[1]-a[1])})
			if grid[ch-1-row][col] == ' ' {
				grid[ch-1-row][col] = '.'
			}
		}
	}
	for _, p := range s.Points {
		col, row := toCell(p)
		grid[ch-1-row][col] = 'O'
	}
	var sb strings.Builder
	if s.Title != "" {
		sb.WriteString(center(s.Title, cw))
		sb.WriteByte('\n')
	}
	sb.WriteByte('+')
	sb.WriteString(strings.Repeat("-", cw))
	sb.WriteString("+\n")
	for _, row := range grid {
		sb.WriteByte('|')
		sb.WriteString(string(row))
		sb.WriteString("|\n")
	}
	sb.WriteByte('+')
	sb.WriteString(strings.Repeat("-", cw))
	sb.WriteString("+\n")
	return sb.String()
}

func clamp(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Table renders an aligned text table in the paper's style.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// Render draws the table.
func (t Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[min(i, len(widths)-1)], cell)
		}
		sb.WriteByte('\n')
	}
	line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return sb.String()
}
