package shard

import (
	"math"
	"testing"
)

func TestCalibrateSerialNeverForks(t *testing.T) {
	for _, w := range []int{-1, 0, 1} {
		got := Calibrate(w)
		if got != Never() {
			t.Fatalf("Calibrate(%d) = %+v, want Never()", w, got)
		}
	}
}

func TestCalibrateProducesFiniteThresholds(t *testing.T) {
	thr := Calibrate(4)
	for name, v := range map[string]int{
		"RxMin":       thr.RxMin,
		"BeaconMin":   thr.BeaconMin,
		"MobilityMin": thr.MobilityMin,
		"DiffMin":     thr.DiffMin,
	} {
		if v < 2 || v > 1<<20 {
			t.Errorf("%s = %d outside the clamp [2, 1<<20]", name, v)
		}
	}
	// A reception verdict costs far more than a map probe, so its
	// break-even batch must not be larger.
	if thr.RxMin > thr.DiffMin {
		t.Errorf("RxMin %d > DiffMin %d: heavier items should break even sooner",
			thr.RxMin, thr.DiffMin)
	}
}

func TestCalibrateMemoized(t *testing.T) {
	a := Calibrate(3)
	b := Calibrate(3)
	if a != b {
		t.Fatalf("Calibrate(3) not memoized: %+v then %+v", a, b)
	}
}

func TestChunkBounds(t *testing.T) {
	for _, tc := range []struct{ n, parts int }{
		{0, 1}, {1, 1}, {1, 4}, {5, 4}, {8, 4}, {9, 4}, {100, 7}, {3, 8},
	} {
		covered := 0
		prevHi := 0
		for c := 0; c < tc.parts; c++ {
			lo, hi := ChunkBounds(tc.n, tc.parts, c)
			if lo != prevHi {
				t.Fatalf("n=%d parts=%d chunk %d starts at %d, want %d (gap/overlap)",
					tc.n, tc.parts, c, lo, prevHi)
			}
			if hi < lo || hi > tc.n {
				t.Fatalf("n=%d parts=%d chunk %d bounds [%d,%d) invalid", tc.n, tc.parts, c, lo, hi)
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != tc.n || prevHi != tc.n {
			t.Fatalf("n=%d parts=%d covers %d items ending at %d", tc.n, tc.parts, covered, prevHi)
		}
	}
}

func TestBreakEvenClamps(t *testing.T) {
	if got := breakEven(0, 10, 0.5); got != 2 {
		t.Errorf("zero fork cost: got %d, want floor 2", got)
	}
	if got := breakEven(1e12, 1e-6, 0.5); got != 1<<20 {
		t.Errorf("degenerate measurement: got %d, want cap %d", got, 1<<20)
	}
	if got := breakEven(100, 0, 0.5); got != math.MaxInt {
		t.Errorf("zero item cost: got %d, want MaxInt", got)
	}
}
