// Package shard provides the worker pool behind within-run parallelism:
// a fixed set of workers that the simulation's single event-loop
// goroutine forks work onto for bounded parallel sections (sharded
// reception verdicts) and fire-and-forget speculative builds (spanner
// precomputation), then joins before committing any state.
//
// The pool never owns simulation state and never decides commit order —
// parallel sections compute pure read-only verdicts into caller-indexed
// slots, and every mutation happens on the event-loop goroutine in the
// exact order the serial engine would use. That discipline is what keeps
// sharded runs byte-identical to serial ones (see docs/ARCHITECTURE.md).
package shard

import (
	"sync"
	"sync/atomic"
)

// Pool is a fixed-size worker pool for fork-join sections and
// asynchronous speculative tasks. A Pool with one worker degenerates to
// inline serial execution and starts no goroutines.
//
// Run and Submit may only be called from one goroutine at a time (the
// simulation event loop); the workers themselves may call neither.
type Pool struct {
	workers int
	tasks   chan func()
	closed  atomic.Bool
}

// NewPool returns a pool with the given number of workers (values < 1
// are treated as 1). workers-1 goroutines are started; the caller of Run
// acts as the final worker.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers}
	if workers > 1 {
		// Buffer enough for a full fork plus a backlog of speculative
		// submissions without blocking the event loop.
		p.tasks = make(chan func(), 8*workers)
		for i := 0; i < workers-1; i++ {
			go p.worker()
		}
	}
	return p
}

// Workers returns the pool size (≥ 1).
func (p *Pool) Workers() int { return p.workers }

func (p *Pool) worker() {
	for fn := range p.tasks {
		fn()
	}
}

// Run executes fn(0..n-1) across the pool and returns when every call
// has finished (a fork-join barrier). Work is claimed by atomic counter,
// so uneven shards balance across workers; the caller participates, so a
// single-worker pool runs everything inline. fn must not call back into
// the pool.
func (p *Pool) Run(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if p.workers == 1 || n == 1 || p.closed.Load() {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	body := func() {
		defer wg.Done()
		for {
			i := int(next.Add(1) - 1)
			if i >= n {
				return
			}
			fn(i)
		}
	}
	helpers := p.workers - 1
	if helpers > n-1 {
		helpers = n - 1
	}
	wg.Add(helpers)
	for i := 0; i < helpers; i++ {
		p.tasks <- body
	}
	for {
		i := int(next.Add(1) - 1)
		if i >= n {
			break
		}
		fn(i)
	}
	wg.Wait()
}

// Submit hands fn to a worker without waiting for it. It reports whether
// the task was accepted: false means the pool is serial, closed, or its
// queue is full — callers treat speculative work as best-effort and fall
// back to doing nothing.
func (p *Pool) Submit(fn func()) bool {
	if p.workers == 1 || p.closed.Load() {
		return false
	}
	select {
	case p.tasks <- fn:
		return true
	default:
		return false
	}
}

// Close drains the workers and releases them. After Close, Run executes
// inline and Submit reports false; Close is idempotent. Pending
// submitted tasks still run before the workers exit.
func (p *Pool) Close() {
	if p.closed.CompareAndSwap(false, true) && p.tasks != nil {
		close(p.tasks)
	}
}
