package shard

import (
	"math"
	"sync"
	"time"
)

// Calibrated fork cost model.
//
// Forking a parallel section onto the pool costs a fixed dispatch price
// (waking helpers, the join barrier); running it inline costs the batch
// size times the per-item work. Forking pays off only above the
// break-even batch size
//
//	n* = forkCost / (itemCost × (1 − 1/W))
//
// where W is the worker count — the parallel section still runs the
// items, it just spreads them over W workers, so the saving per item is
// the (1 − 1/W) fraction moved off the event loop. Each stepping plane
// has a very different per-item cost (an interference verdict is ~100×
// a summary-vector map probe), so one shared constant either forks
// hopeless micro-batches or leaves real work serial; Calibrate measures
// the dispatch price and a synthetic per-item kernel for each plane
// once per process and derives one threshold per plane.
//
// Thresholds gate only WHETHER a section forks, never what it computes
// — the forked and inline paths are byte-identical by construction
// (see docs/ARCHITECTURE.md) — so the wall-clock nondeterminism of the
// measurement is harmless to reproducibility. Runs that must pin the
// decision (equivalence tests, cross-host benchmarks) bypass Calibrate
// with explicit thresholds.

// Thresholds holds the per-plane minimum batch sizes at which a
// parallel section forks onto the pool instead of running inline on the
// event loop. A plane forks when its batch size is ≥ its threshold, so
// 0 forces forking and math.MaxInt pins the plane serial.
type Thresholds struct {
	// RxMin gates the broadcast-reception plane: in-range candidate
	// receivers per resolved airing.
	RxMin int
	// BeaconMin gates the beacon plane: hello frames constructed per
	// aggregated beacon event.
	BeaconMin int
	// MobilityMin gates the mobility plane: radios re-extrapolated per
	// bulk spatial-index refresh.
	MobilityMin int
	// DiffMin gates the anti-entropy plane: summary-vector ids diffed
	// per epidemic exchange.
	DiffMin int
}

// Never returns thresholds that pin every plane serial — the resolution
// for serial engines (and single-worker pools), where forking can never
// pay.
func Never() Thresholds {
	return Thresholds{
		RxMin:       math.MaxInt,
		BeaconMin:   math.MaxInt,
		MobilityMin: math.MaxInt,
		DiffMin:     math.MaxInt,
	}
}

// calCache memoizes Calibrate per worker count: the measurement costs a
// few hundred microseconds, and a replication sweep builds one world
// per run.
var calCache = struct {
	sync.Mutex
	m map[int]Thresholds
}{m: make(map[int]Thresholds)}

// Calibrate measures the pool dispatch overhead against per-plane
// synthetic item kernels and returns the break-even batch size of each
// plane for a pool of the given worker count. Results are memoized per
// worker count for the process lifetime. Workers ≤ 1 always returns
// Never — a serial pool runs everything inline regardless.
func Calibrate(workers int) Thresholds {
	if workers <= 1 {
		return Never()
	}
	calCache.Lock()
	defer calCache.Unlock()
	if t, ok := calCache.m[workers]; ok {
		return t
	}
	t := measure(workers)
	calCache.m[workers] = t
	return t
}

// calSink defeats dead-code elimination of the measurement kernels.
var calSink uint64

// kernelReps sizes each kernel timing loop: large enough that the
// time.Now pair amortizes to well under a nanosecond per item.
const kernelReps = 4096

// timeKernel returns the per-item cost of fn in nanoseconds, taking the
// minimum of a few repetitions to shed scheduler noise.
func timeKernel(fn func(reps int)) float64 {
	best := math.Inf(1)
	for trial := 0; trial < 3; trial++ {
		start := time.Now()
		fn(kernelReps)
		if ns := float64(time.Since(start)) / kernelReps; ns < best {
			best = ns
		}
	}
	return best
}

// measure runs the actual calibration for a pool of the given width.
func measure(workers int) Thresholds {
	p := NewPool(workers)
	defer p.Close()

	// Dispatch price: a fork-join over `workers` empty bodies, the
	// fixed cost every parallel section pays. Warm the pool first so
	// the helpers are parked in their receive loops, then take the
	// minimum of several forks.
	for i := 0; i < 4; i++ {
		p.Run(workers, func(int) {})
	}
	forkNs := math.Inf(1)
	const forkTrials = 32
	for trial := 0; trial < forkTrials; trial++ {
		start := time.Now()
		p.Run(workers, func(int) {})
		if ns := float64(time.Since(start)); ns < forkNs {
			forkNs = ns
		}
	}

	// Per-plane item kernels, shaped after each plane's hot loop.
	var pts [32]struct{ x, y float64 }
	for i := range pts {
		pts[i].x, pts[i].y = float64(i)*7.3, float64(i)*3.1
	}
	// Reception verdict: distance² comparisons against a handful of
	// interferer candidates (corruptedAt's inner loop).
	rxNs := timeKernel(func(reps int) {
		acc := 0.0
		for r := 0; r < reps; r++ {
			px, py := pts[r%16].x, pts[r%16].y
			for _, q := range pts[:8] {
				dx, dy := q.x-px, q.y-py
				if d2 := dx*dx + dy*dy; d2 < 500 {
					acc += d2
				}
			}
		}
		calSink += uint64(acc)
	})
	// Hello construction: filling a small advertised-neighbor slice
	// (AppendAdvertised's copy loop plus frame setup arithmetic).
	var advBuf [16]int64
	beaconNs := timeKernel(func(reps int) {
		for r := 0; r < reps; r++ {
			for i := range advBuf {
				advBuf[i] = int64(r+i) * 20
			}
			calSink += uint64(advBuf[r%16])
		}
	})
	// Position extrapolation: a short waypoint scan plus a lerp
	// (mobility.Model.Position's steady-state shape).
	mobNs := timeKernel(func(reps int) {
		acc := 0.0
		for r := 0; r < reps; r++ {
			t := float64(r % 97)
			i := 0
			for i < 6 && pts[i].x < t {
				i++
			}
			frac := t - float64(int(t))
			acc += pts[i%32].x + (pts[(i+1)%32].x-pts[i%32].x)*frac
		}
		calSink += uint64(acc)
	})
	// Anti-entropy diff: one map probe per advertised id.
	probe := make(map[uint64]struct{}, 64)
	for i := uint64(0); i < 64; i++ {
		probe[i*2654435761] = struct{}{}
	}
	diffNs := timeKernel(func(reps int) {
		hits := 0
		for r := 0; r < reps; r++ {
			if _, ok := probe[uint64(r)*2654435761]; ok {
				hits++
			}
		}
		calSink += uint64(hits)
	})

	saving := 1 - 1/float64(workers)
	return Thresholds{
		RxMin:       breakEven(forkNs, rxNs, saving),
		BeaconMin:   breakEven(forkNs, beaconNs, saving),
		MobilityMin: breakEven(forkNs, mobNs, saving),
		DiffMin:     breakEven(forkNs, diffNs, saving),
	}
}

// breakEven converts the measured costs into a threshold, clamped to
// [2, 1<<20]: below 2 a "batch" is a single item (forking it buys
// nothing even at zero cost), and the cap keeps a degenerate
// measurement from overflowing into never-fork territory by accident.
func breakEven(forkNs, itemNs, saving float64) int {
	if itemNs <= 0 || saving <= 0 {
		return math.MaxInt
	}
	n := int(math.Ceil(forkNs / (itemNs * saving)))
	if n < 2 {
		n = 2
	}
	if n > 1<<20 {
		n = 1 << 20
	}
	return n
}

// ChunkBounds splits n items into parts contiguous chunks and returns
// the half-open bounds [lo, hi) of chunk c. Chunks differ in size by at
// most one and cover [0, n) disjointly — the partition parallel planes
// use to guarantee each item (and so each per-item mutable structure,
// like a mobility model) is touched by exactly one worker.
func ChunkBounds(n, parts, c int) (lo, hi int) {
	return n * c / parts, n * (c + 1) / parts
}
