package shard

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolRunCoversAll: every index is executed exactly once, for pool
// sizes both below and above the item count, including the degenerate
// serial pool.
func TestPoolRunCoversAll(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		for _, n := range []int{0, 1, 3, 64, 1000} {
			p := NewPool(workers)
			counts := make([]int32, n)
			p.Run(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, c)
				}
			}
			p.Close()
		}
	}
}

// TestPoolRunJoins: Run must not return before every call finished.
func TestPoolRunJoins(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var done atomic.Int32
	p.Run(32, func(i int) {
		time.Sleep(time.Millisecond)
		done.Add(1)
	})
	if got := done.Load(); got != 32 {
		t.Fatalf("Run returned with %d/32 calls finished", got)
	}
}

// TestPoolSubmit: submitted tasks run; serial and closed pools refuse.
func TestPoolSubmit(t *testing.T) {
	if NewPool(1).Submit(func() {}) {
		t.Fatal("serial pool accepted a submission")
	}
	p := NewPool(2)
	ch := make(chan struct{})
	if !p.Submit(func() { close(ch) }) {
		t.Fatal("submission refused")
	}
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("submitted task never ran")
	}
	p.Close()
	if p.Submit(func() {}) {
		t.Fatal("closed pool accepted a submission")
	}
	// Run after Close degrades to inline execution.
	ran := make([]bool, 4)
	p.Run(4, func(i int) { ran[i] = true })
	for i, ok := range ran {
		if !ok {
			t.Fatalf("index %d skipped after Close", i)
		}
	}
	p.Close() // idempotent
}

// TestPoolWorkers reports the clamped size.
func TestPoolWorkers(t *testing.T) {
	if got := NewPool(0).Workers(); got != 1 {
		t.Fatalf("Workers() = %d, want 1", got)
	}
	p := NewPool(3)
	defer p.Close()
	if got := p.Workers(); got != 3 {
		t.Fatalf("Workers() = %d, want 3", got)
	}
}
