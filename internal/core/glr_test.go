package core

import (
	"testing"

	"glr/internal/mobility"
	"glr/internal/sim"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"k zero", func(c *Config) { c.K = 0 }},
		{"check interval", func(c *Config) { c.CheckInterval = 0 }},
		{"cache timeout", func(c *Config) { c.CacheTimeout = 0 }},
		{"copies negative", func(c *Config) { c.Copies = -1 }},
		{"copies too many", func(c *Config) { c.Copies = 6 }},
		{"connectivity s", func(c *Config) { c.ConnectivityS = 1 }},
		{"stale threshold", func(c *Config) { c.StaleRelocateAfter = 0 }},
		{"ack bits", func(c *Config) { c.AckBits = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if cfg.Validate() == nil {
				t.Error("expected validation error")
			}
		})
	}
	if _, err := New(Config{}); err == nil {
		t.Error("New must validate")
	}
}

// buildWorld wires a GLR world or fails the test.
func buildWorld(t *testing.T, s sim.Scenario, cfg Config) *sim.World {
	t.Helper()
	factory, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := sim.NewWorld(s, factory)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func denseScenario(seed int64) sim.Scenario {
	s := sim.DefaultScenario(250)
	s.Seed = seed
	s.N = 15
	s.SimTime = 120
	s.Region = mobility.Region{W: 600, H: 300}
	s.Traffic = []sim.TrafficItem{
		{Src: 0, Dst: 9, At: 5},
		{Src: 3, Dst: 12, At: 6},
		{Src: 7, Dst: 1, At: 7},
	}
	return s
}

func TestGLRDeliversDenseMobile(t *testing.T) {
	w := buildWorld(t, denseScenario(2), DefaultConfig())
	r := w.Run()
	if r.Delivered != r.Generated {
		t.Fatalf("delivered %d/%d: %+v", r.Delivered, r.Generated, r)
	}
	if r.AvgLatency <= 0 || r.AvgLatency > 60 {
		t.Errorf("suspicious latency %v", r.AvgLatency)
	}
	if r.Acks == 0 {
		t.Error("custody acks expected")
	}
}

func TestGLRDeliversDenseStatic(t *testing.T) {
	// Static connected topology: greedy + face on the LDTG must deliver
	// multi-hop without any mobility assist.
	s := denseScenario(5)
	s.Mobility = sim.MobilityStatic
	s.Range = 220
	s.N = 25
	s.Region = mobility.Region{W: 900, H: 300}
	s.Traffic = []sim.TrafficItem{
		{Src: 0, Dst: 24, At: 5},
		{Src: 24, Dst: 0, At: 6},
		{Src: 5, Dst: 20, At: 7},
	}
	w := buildWorld(t, s, DefaultConfig())
	r := w.Run()
	if r.Delivered < 2 { // static UDG may be disconnected for a pair
		t.Fatalf("delivered %d/%d on static topology", r.Delivered, r.Generated)
	}
}

func TestGLRStoreAndForwardAcrossPartition(t *testing.T) {
	// Sparse mobile network: 50 m range in a 1500×300 strip is far below
	// the connectivity threshold; delivery requires store-carry-forward.
	s := sim.DefaultScenario(50)
	s.Seed = 3
	s.N = 40
	s.SimTime = 1500
	s.Traffic = []sim.TrafficItem{
		{Src: 0, Dst: 30, At: 10},
		{Src: 5, Dst: 35, At: 20},
		{Src: 12, Dst: 22, At: 30},
		{Src: 33, Dst: 2, At: 40},
	}
	w := buildWorld(t, s, DefaultConfig())
	r := w.Run()
	if r.Delivered < 3 {
		t.Fatalf("store-and-forward delivered only %d/%d", r.Delivered, r.Generated)
	}
	if r.AvgLatency < 1 {
		t.Errorf("latency %v implausibly low for a partitioned network", r.AvgLatency)
	}
}

// buildProbedWorld wires a GLR world and returns the per-node protocol
// instances for white-box assertions.
func buildProbedWorld(t *testing.T, s sim.Scenario, cfg Config) (*sim.World, []*GLR) {
	t.Helper()
	factory, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var instances []*GLR
	wrapped := func(n *sim.Node) sim.Protocol {
		p := factory(n)
		instances = append(instances, p.(*GLR))
		return p
	}
	w, err := sim.NewWorld(s, wrapped)
	if err != nil {
		t.Fatal(err)
	}
	return w, instances
}

func TestGLRCopyCountRule(t *testing.T) {
	// Algorithm 1 on the paper's strip: threshold ≈ 133 m ⇒ 1 copy at
	// 150–250 m, 3 copies at 50–100 m.
	tests := []struct {
		rng  float64
		want int
	}{
		{250, 1}, {200, 1}, {150, 1}, {100, 3}, {50, 3}, {20, 5},
	}
	for _, tt := range tests {
		s := sim.DefaultScenario(tt.rng)
		s.N = 50
		s.SimTime = 10
		_, instances := buildProbedWorld(t, s, DefaultConfig())
		if got := instances[0].CopyCount(); got != tt.want {
			t.Errorf("range %.0f m: copies = %d, want %d", tt.rng, got, tt.want)
		}
	}
	// Forced copies override the rule.
	cfg := DefaultConfig()
	cfg.Copies = 2
	s := sim.DefaultScenario(50)
	s.SimTime = 10
	_, instances := buildProbedWorld(t, s, cfg)
	if got := instances[0].CopyCount(); got != 2 {
		t.Errorf("forced copies = %d, want 2", got)
	}
}
