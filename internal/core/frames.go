package core

import (
	"glr/internal/dtn"
	"glr/internal/geom"
	"glr/internal/ldt"
	"glr/internal/sim"
)

// dataFrame carries one message copy hop to hop. The geo header includes
// the sender's position and timestamp, enabling §2.3.1 diffusion; the
// message itself carries the destination-location estimate.
//
// Frames travel as pooled pointers (one world-shared framePool): the
// receiver copies Msg/Face out during reception, and the sender recycles
// the frame when the MAC reports the unicast resolved — the only point
// after which neither the medium nor any receiver reads it.
type dataFrame struct {
	Msg       dtn.Message
	Face      ldt.FaceState // face-mode state travels with the copy
	SenderPos geom.Point
	SentAt    float64

	owner  *GLR          // sending instance, for the completion callback
	onDone func(ok bool) // persistent MAC callback (one alloc per pooled frame)
}

// framePool recycles dataFrame boxes on the internal/des free-list
// pattern. It is shared by every node of a world (single-threaded like
// the scheduler), so one node's completed send stocks the next node's.
type framePool struct {
	free     []*dataFrame
	freeAcks []*ackBox
}

// take returns a recycled (or fresh) frame.
func (p *framePool) take() *dataFrame {
	if n := len(p.free); n > 0 {
		f := p.free[n-1]
		p.free = p.free[:n-1]
		return f
	}
	f := &dataFrame{}
	f.onDone = func(ok bool) { f.owner.dataFrameResolved(f, ok) }
	return f
}

// put recycles f, dropping every reference but the persistent callback.
func (p *framePool) put(f *dataFrame) {
	*f = dataFrame{onDone: f.onDone}
	p.free = append(p.free, f)
}

// dataFrameResolved is the MAC completion callback for a data frame:
// custody bookkeeping for failed branches, then recycle.
func (g *GLR) dataFrameResolved(f *dataFrame, ok bool) {
	if g.cfg.Custody && !ok {
		g.onSendFailed(f.Msg.ID, f.Msg.Flags)
	}
	g.frames.put(f)
}

// ackFrame is the custody acknowledgment (§2.3.2): it identifies the
// message ("source node, destination node, message count") and the tree
// branch ("it is needed because messages in different tree branches follow
// different routing paths"), and piggybacks the receiver's destination-
// location knowledge so the sender's table benefits from reverse
// diffusion ("notifies the message holder if it has more recent
// destination location than that of the message holder").
type ackFrame struct {
	ID         dtn.MessageID
	Dst        int
	Flags      dtn.TreeFlags
	SenderPos  geom.Point
	DstLoc     geom.Point
	DstLocTime float64
	DstKnown   bool
}

// ackBox is a pooled ackFrame: one ack is sent per received copy under
// custody, so the payload boxes recycle exactly like dataFrames.
type ackBox struct {
	ackFrame
	owner  *GLR
	onDone func(ok bool)
}

// takeAck returns a recycled (or fresh) ack box.
func (p *framePool) takeAck() *ackBox {
	if n := len(p.freeAcks); n > 0 {
		a := p.freeAcks[n-1]
		p.freeAcks = p.freeAcks[:n-1]
		return a
	}
	a := &ackBox{}
	a.onDone = func(bool) { a.owner.frames.putAck(a) }
	return a
}

// putAck recycles a.
func (p *framePool) putAck(a *ackBox) {
	*a = ackBox{onDone: a.onDone}
	p.freeAcks = append(p.freeAcks, a)
}

// forward transmits a stored message to its per-tree targets and performs
// the custody bookkeeping. targets lists next-hop picks sorted by node
// id (deterministic transmission order); it may alias the instance's
// scratch and is not retained.
func (g *GLR) forward(m *dtn.Message, targets []hopTarget) {
	now := g.n.Now()
	selfPos := g.n.Pos()
	faceState := ldt.FaceState{}
	if st := g.state(m.ID); st != nil && st.hasFace {
		faceState = st.face
	}

	if g.cfg.Custody {
		// Move Store→Cache and record every branch as pending BEFORE
		// transmitting: a full link-layer queue makes the MAC resolve a
		// frame synchronously inside Unicast, and onSendFailed must find
		// the custody state in place to return the branch to the Store
		// immediately rather than letting it ride out the cache timeout.
		g.store.MarkSent(m.ID, now)
		st := g.ensureState(m.ID)
		for _, tgt := range targets {
			st.pending |= tgt.flags
		}
		st.hasPending = true
	}

	for _, tgt := range targets {
		f := g.frames.take()
		f.owner = g
		f.Msg = *m
		f.Msg.Flags = tgt.flags
		f.Face = faceState
		f.SenderPos = selfPos
		f.SentAt = now
		bits := m.PayloadBits + g.cfg.GeoHeaderBits
		g.n.Unicast(tgt.dst, sim.KindData, f, bits, f.onDone)
	}

	if g.cfg.Custody {
		return
	}
	// Fire and forget (§2.3.2 inverted): without custody transfer the
	// sender deletes the message as soon as it is sent — no link-layer
	// or protocol confirmation is awaited, so any copy that dies in
	// transit (collision, receiver moved away, queue overflow) is gone:
	// "delivered with high probability but without any guarantee".
	g.store.MarkSent(m.ID, now)
	g.store.Ack(m.ID)
	g.forget(m.ID)
}

// onSendFailed reacts to a MAC-level unicast failure (no receiver after
// retries). Under custody the failed branch returns to the Store
// immediately instead of waiting for the cache timeout; branches still in
// flight keep their pending-ack state.
func (g *GLR) onSendFailed(id dtn.MessageID, flags dtn.TreeFlags) {
	if !g.cfg.Custody {
		return
	}
	st := g.state(id)
	if st == nil || !st.hasPending {
		return
	}
	if remaining := st.pending &^ flags; remaining == 0 {
		st.pending = 0
		st.hasPending = false
	} else {
		st.pending = remaining
	}
	if m := g.store.ReturnToStore(id); m != nil {
		g.stats.CustodyReturns++
		m.Flags = flags // only the failed branches reroute
	} else if m := g.store.Get(id); m != nil {
		m.Flags |= flags // an earlier failure already returned it
	}
}

// tableFrame carries a full location table for the §2.3.1 exchange
// extension.
type tableFrame struct {
	Rows []tableRow
}

type tableRow struct {
	ID   int
	Pos  geom.Point
	Time float64
}

// OnFrame implements sim.Protocol.
func (g *GLR) OnFrame(payload any, from int) {
	switch f := payload.(type) {
	case *dataFrame:
		g.onData(f, from)
	case *ackBox:
		g.onAck(f.ackFrame, from)
	case ackFrame: // white-box tests construct bare acks
		g.onAck(f, from)
	case tableFrame:
		g.onTable(f)
	}
}

// onTable merges a peer's location table (fresher rows win).
func (g *GLR) onTable(f tableFrame) {
	for _, row := range f.Rows {
		g.n.Locations().Update(row.ID, row.Pos, row.Time)
	}
}

// maybeExchangeTable unicasts our full location table to a peer if the
// extension is enabled and the pair has not synced recently.
func (g *GLR) maybeExchangeTable(peer int) {
	if !g.cfg.FullTableExchange {
		return
	}
	now := g.n.Now()
	if last, ok := g.lastTableSync[peer]; ok && now-last < g.cfg.TableExchangeInterval {
		return
	}
	g.lastTableSync[peer] = now
	loc := g.n.Locations()
	ids := loc.IDs()
	rows := make([]tableRow, 0, len(ids))
	for _, id := range ids {
		if e, ok := loc.Get(id); ok {
			rows = append(rows, tableRow{ID: id, Pos: e.Pos, Time: e.Time})
		}
	}
	if len(rows) == 0 {
		return
	}
	bits := 8*8 + len(rows)*20*8 // header + 20 bytes per row
	g.n.Unicast(peer, sim.KindControl, tableFrame{Rows: rows}, bits, nil)
}

// onData handles an arriving message copy. f is the sender's pooled
// frame: everything kept past this call is copied out here.
func (g *GLR) onData(f *dataFrame, from int) {
	m := f.Msg // independent copy
	m.Hops++

	// Location diffusion (§2.3.1): the frame teaches us the sender's
	// position; the message header and our table reconcile, newer wins
	// in both directions.
	g.n.Locations().Update(from, f.SenderPos, f.SentAt)
	if e, ok := g.n.Locations().Get(m.Dst); ok {
		m.UpdateDstLoc(e.Pos, e.Time, true)
	}
	if m.DstLocKnown {
		g.n.Locations().Update(m.Dst, m.DstLoc, m.DstLocTime)
	}

	if m.Dst == g.n.ID() {
		// Arrived. Acknowledge so the sender clears its Cache (when
		// custody is in use); report only the first copy.
		if g.cfg.Custody {
			g.sendAck(from, &m)
		}
		st := g.ensureState(m.ID)
		if !st.delivered {
			st.delivered = true
			g.n.ReportDelivered(&m)
		}
		return
	}

	// Custody accept: store the copy and acknowledge this tree branch.
	if g.cfg.Custody {
		g.sendAck(from, &m)
	}
	if f.Face.Active {
		st := g.ensureState(m.ID)
		st.face = f.Face
		st.hasFace = true
	}
	g.addToStore(&m)
}

// onAck completes custody transfer for the acknowledged tree branches.
func (g *GLR) onAck(f ackFrame, from int) {
	g.n.Locations().Update(from, f.SenderPos, g.n.Now())
	if f.DstKnown {
		g.n.Locations().Update(f.Dst, f.DstLoc, f.DstLocTime)
	}
	st := g.state(f.ID)
	if st == nil || !st.hasPending {
		return
	}
	remaining := st.pending &^ f.Flags
	if remaining != 0 {
		st.pending = remaining
		return
	}
	st.pending = 0
	st.hasPending = false
	g.store.Ack(f.ID)
	g.forget(f.ID)
}

// sendAck unicasts a custody/delivery acknowledgment for the received
// copy from a pooled box, piggybacking our destination-location
// knowledge.
func (g *GLR) sendAck(to int, m *dtn.Message) {
	a := g.frames.takeAck()
	a.owner = g
	a.ackFrame = ackFrame{
		ID:        m.ID,
		Dst:       m.Dst,
		Flags:     m.Flags,
		SenderPos: g.n.Pos(),
	}
	if m.Dst == g.n.ID() {
		// We ARE the destination: our own position is the freshest
		// possible estimate.
		a.DstLoc, a.DstLocTime, a.DstKnown = g.n.Pos(), g.n.Now(), true
	} else if e, ok := g.n.Locations().Get(m.Dst); ok {
		a.DstLoc, a.DstLocTime, a.DstKnown = e.Pos, e.Time, true
	}
	g.n.Unicast(to, sim.KindAck, a, g.cfg.AckBits, a.onDone)
}

// OnBeacon implements sim.Protocol. Node-level bookkeeping (neighbor and
// location tables, through the dense per-world views) already ran;
// routing reacts at the next route check ("when ... new path emerges in
// the locally constructed trees, it will send the stored messages"). The
// beacon also drives spanner-cache invalidation: a directly heard
// position is the freshest possible, so cache entries built from
// superseded coordinates become eviction candidates. With the §2.3.1
// extension enabled, meeting a peer also triggers a full location-table
// exchange.
func (g *GLR) OnBeacon(b sim.Beacon) {
	g.maint.Observe(b.From, b.Pos)
	g.maybeExchangeTable(b.From)
	// The beacon just changed the two-hop view, invalidating any earlier
	// prediction for the pending route check — re-speculate from the
	// fresh tables so the pre-built spanner matches what the check sees.
	g.speculateNextCheck()
}
