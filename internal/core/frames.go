package core

import (
	"sort"

	"glr/internal/dtn"
	"glr/internal/geom"
	"glr/internal/ldt"
	"glr/internal/sim"
)

// dataFrame carries one message copy hop to hop. The geo header includes
// the sender's position and timestamp, enabling §2.3.1 diffusion; the
// message itself carries the destination-location estimate.
type dataFrame struct {
	Msg       dtn.Message
	Face      ldt.FaceState // face-mode state travels with the copy
	SenderPos geom.Point
	SentAt    float64
}

// ackFrame is the custody acknowledgment (§2.3.2): it identifies the
// message ("source node, destination node, message count") and the tree
// branch ("it is needed because messages in different tree branches follow
// different routing paths"), and piggybacks the receiver's destination-
// location knowledge so the sender's table benefits from reverse
// diffusion ("notifies the message holder if it has more recent
// destination location than that of the message holder").
type ackFrame struct {
	ID         dtn.MessageID
	Dst        int
	Flags      dtn.TreeFlags
	SenderPos  geom.Point
	DstLoc     geom.Point
	DstLocTime float64
	DstKnown   bool
}

// forward transmits a stored message to its per-tree targets and performs
// the custody bookkeeping. targets maps next-hop node id → the tree flags
// the copy sent there carries.
func (g *GLR) forward(m *dtn.Message, targets map[int]dtn.TreeFlags) {
	now := g.n.Now()
	selfPos := g.n.Pos()
	faceState := ldt.FaceState{}
	if st := g.face[m.ID]; st != nil {
		faceState = *st
	}

	// Deterministic transmission order regardless of map layout.
	dsts := make([]int, 0, len(targets))
	for dst := range targets {
		dsts = append(dsts, dst)
	}
	sort.Ints(dsts)

	var sentFlags dtn.TreeFlags
	for _, dst := range dsts {
		flags := targets[dst]
		copyMsg := *m
		copyMsg.Flags = flags
		frame := dataFrame{Msg: copyMsg, Face: faceState, SenderPos: selfPos, SentAt: now}
		bits := m.PayloadBits + g.cfg.GeoHeaderBits
		id, branch := m.ID, flags
		g.n.Unicast(dst, sim.KindData, frame, bits, func(ok bool) {
			if g.cfg.Custody && !ok {
				g.onSendFailed(id, branch)
			}
		})
		sentFlags |= flags
	}

	if g.cfg.Custody {
		// Move Store→Cache and await per-branch acks.
		g.store.MarkSent(m.ID, now)
		g.pendingAcks[m.ID] |= sentFlags
		return
	}
	// Fire and forget (§2.3.2 inverted): without custody transfer the
	// sender deletes the message as soon as it is sent — no link-layer
	// or protocol confirmation is awaited, so any copy that dies in
	// transit (collision, receiver moved away, queue overflow) is gone:
	// "delivered with high probability but without any guarantee".
	g.store.MarkSent(m.ID, now)
	g.store.Ack(m.ID)
	g.forget(m.ID)
}

// onSendFailed reacts to a MAC-level unicast failure (no receiver after
// retries). Under custody the failed branch returns to the Store
// immediately instead of waiting for the cache timeout; branches still in
// flight keep their pending-ack state.
func (g *GLR) onSendFailed(id dtn.MessageID, flags dtn.TreeFlags) {
	if !g.cfg.Custody {
		return
	}
	pending, ok := g.pendingAcks[id]
	if !ok {
		return
	}
	if remaining := pending &^ flags; remaining == 0 {
		delete(g.pendingAcks, id)
	} else {
		g.pendingAcks[id] = remaining
	}
	if m := g.store.ReturnToStore(id); m != nil {
		g.stats.CustodyReturns++
		m.Flags = flags // only the failed branches reroute
	} else if m := g.store.Get(id); m != nil {
		m.Flags |= flags // an earlier failure already returned it
	}
}

// tableFrame carries a full location table for the §2.3.1 exchange
// extension.
type tableFrame struct {
	Rows []tableRow
}

type tableRow struct {
	ID   int
	Pos  geom.Point
	Time float64
}

// OnFrame implements sim.Protocol.
func (g *GLR) OnFrame(payload any, from int) {
	switch f := payload.(type) {
	case dataFrame:
		g.onData(f, from)
	case ackFrame:
		g.onAck(f, from)
	case tableFrame:
		g.onTable(f)
	}
}

// onTable merges a peer's location table (fresher rows win).
func (g *GLR) onTable(f tableFrame) {
	for _, row := range f.Rows {
		g.n.Locations().Update(row.ID, row.Pos, row.Time)
	}
}

// maybeExchangeTable unicasts our full location table to a peer if the
// extension is enabled and the pair has not synced recently.
func (g *GLR) maybeExchangeTable(peer int) {
	if !g.cfg.FullTableExchange {
		return
	}
	now := g.n.Now()
	if last, ok := g.lastTableSync[peer]; ok && now-last < g.cfg.TableExchangeInterval {
		return
	}
	g.lastTableSync[peer] = now
	loc := g.n.Locations()
	ids := loc.IDs()
	rows := make([]tableRow, 0, len(ids))
	for _, id := range ids {
		if e, ok := loc.Get(id); ok {
			rows = append(rows, tableRow{ID: id, Pos: e.Pos, Time: e.Time})
		}
	}
	if len(rows) == 0 {
		return
	}
	bits := 8*8 + len(rows)*20*8 // header + 20 bytes per row
	g.n.Unicast(peer, sim.KindControl, tableFrame{Rows: rows}, bits, nil)
}

// onData handles an arriving message copy.
func (g *GLR) onData(f dataFrame, from int) {
	m := f.Msg // independent copy
	m.Hops++

	// Location diffusion (§2.3.1): the frame teaches us the sender's
	// position; the message header and our table reconcile, newer wins
	// in both directions.
	g.n.Locations().Update(from, f.SenderPos, f.SentAt)
	if e, ok := g.n.Locations().Get(m.Dst); ok {
		m.UpdateDstLoc(e.Pos, e.Time, true)
	}
	if m.DstLocKnown {
		g.n.Locations().Update(m.Dst, m.DstLoc, m.DstLocTime)
	}

	if m.Dst == g.n.ID() {
		// Arrived. Acknowledge so the sender clears its Cache (when
		// custody is in use); report only the first copy.
		if g.cfg.Custody {
			g.sendAck(from, &m)
		}
		if !g.deliveredHere[m.ID] {
			g.deliveredHere[m.ID] = true
			g.n.ReportDelivered(&m)
		}
		return
	}

	// Custody accept: store the copy and acknowledge this tree branch.
	if g.cfg.Custody {
		g.sendAck(from, &m)
	}
	if f.Face.Active {
		st := f.Face
		g.face[m.ID] = &st
	}
	g.addToStore(&m)
}

// onAck completes custody transfer for the acknowledged tree branches.
func (g *GLR) onAck(f ackFrame, from int) {
	g.n.Locations().Update(from, f.SenderPos, g.n.Now())
	if f.DstKnown {
		g.n.Locations().Update(f.Dst, f.DstLoc, f.DstLocTime)
	}
	remaining, ok := g.pendingAcks[f.ID]
	if !ok {
		return
	}
	remaining &^= f.Flags
	if remaining != 0 {
		g.pendingAcks[f.ID] = remaining
		return
	}
	delete(g.pendingAcks, f.ID)
	g.store.Ack(f.ID)
	g.forget(f.ID)
}

// sendAck unicasts a custody/delivery acknowledgment for the received
// copy, piggybacking our destination-location knowledge.
func (g *GLR) sendAck(to int, m *dtn.Message) {
	ack := ackFrame{
		ID:        m.ID,
		Dst:       m.Dst,
		Flags:     m.Flags,
		SenderPos: g.n.Pos(),
	}
	if m.Dst == g.n.ID() {
		// We ARE the destination: our own position is the freshest
		// possible estimate.
		ack.DstLoc, ack.DstLocTime, ack.DstKnown = g.n.Pos(), g.n.Now(), true
	} else if e, ok := g.n.Locations().Get(m.Dst); ok {
		ack.DstLoc, ack.DstLocTime, ack.DstKnown = e.Pos, e.Time, true
	}
	g.n.Unicast(to, sim.KindAck, ack, g.cfg.AckBits, nil)
}

// OnBeacon implements sim.Protocol. Node-level bookkeeping (neighbor and
// location tables) already ran; routing reacts at the next route check
// ("when ... new path emerges in the locally constructed trees, it will
// send the stored messages"). The beacon also drives spanner-cache
// invalidation: a directly heard position is the freshest possible, so
// cache entries built from superseded coordinates become eviction
// candidates. With the §2.3.1 extension enabled, meeting a peer also
// triggers a full location-table exchange.
func (g *GLR) OnBeacon(b sim.Beacon) {
	g.maint.Observe(b.From, b.Pos)
	g.maybeExchangeTable(b.From)
}
