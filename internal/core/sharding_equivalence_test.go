package core

import (
	"fmt"
	"reflect"
	"testing"

	"glr/internal/metrics"
	"glr/internal/sim"
)

// TestShardedRunEquivalence: across randomized mobile scenarios, a run on
// the sharded engine — parallel reception verdicts plus speculative
// spanner builds — must produce *identical* end-to-end results to the
// serial engine at every worker count. Parallelism is forced (2/4/8)
// rather than automatic so the property holds on single-CPU CI hosts
// too. Any divergence means a worker observed or influenced simulation
// state outside the byte-identity discipline.
func TestShardedRunEquivalence(t *testing.T) {
	const trials = 12
	delivered := 0
	specBuilds := uint64(0)
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("seed=%d", trial), func(t *testing.T) {
			run := func(parallelism int, disable bool) metrics.Report {
				factory, maint, err := NewInstrumented(equivConfig(trial, false))
				if err != nil {
					t.Fatal(err)
				}
				s := equivScenario(trial)
				s.Parallelism = parallelism
				s.DisableSharding = disable
				w, err := sim.NewWorld(s, factory)
				if err != nil {
					t.Fatal(err)
				}
				rep := w.Run()
				specBuilds += maint.Stats().SpecBuilds
				return rep
			}
			serial := run(0, true)
			delivered += serial.Delivered
			for _, workers := range []int{2, 4, 8} {
				sharded := run(workers, false)
				if !reflect.DeepEqual(serial, sharded) {
					t.Fatalf("parallelism=%d diverged from serial:\n  serial:  %+v\n  sharded: %+v",
						workers, serial, sharded)
				}
			}
		})
	}
	if delivered == 0 {
		t.Fatal("equivalence suite delivered nothing; scenarios too hostile to be meaningful")
	}
	if specBuilds == 0 {
		t.Fatal("no sharded run launched a speculative spanner build; the engine never engaged")
	}
}

// TestShardedFullStackEquivalence crosses the sharding escape hatch with
// every other one — dense tables, spatial index, spanner cache, calendar
// queue — in all thirty-two combinations. Every combination must
// reproduce the all-fast sharded run bit for bit, so any mix of
// reference paths and engines is interchangeable.
func TestShardedFullStackEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack flag cross is slow")
	}
	var first interface{}
	var firstName string
	for mask := 0; mask < 32; mask++ {
		denseOff := mask&1 != 0
		spatialOff := mask&2 != 0
		spannerOff := mask&4 != 0
		shardOff := mask&8 != 0
		calendarOff := mask&16 != 0
		name := fmt.Sprintf("dense=%t spatial=%t spanner=%t shard=%t calendar=%t",
			!denseOff, !spatialOff, !spannerOff, !shardOff, !calendarOff)

		cfg := equivConfig(2, spannerOff)
		factory, _, err := NewInstrumented(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s := equivScenario(2)
		s.DisableDenseTables = denseOff
		s.DisableSpatialIndex = spatialOff
		s.DisableSharding = shardOff
		s.DisableCalendarQueue = calendarOff
		if !shardOff {
			s.Parallelism = 4 // force workers; auto may resolve serial on 1-CPU hosts
		}
		w, err := sim.NewWorld(s, factory)
		if err != nil {
			t.Fatal(err)
		}
		rep := w.Run()
		if first == nil {
			first, firstName = rep, name
			continue
		}
		if !reflect.DeepEqual(first, rep) {
			t.Fatalf("variant [%s] diverged from [%s]:\n  first: %+v\n  this:  %+v",
				name, firstName, first, rep)
		}
	}
}
