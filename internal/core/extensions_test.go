package core

import (
	"testing"

	"glr/internal/sim"
)

func TestFullTableExchangeSpreadsKnowledge(t *testing.T) {
	// With the §2.3.1 extension, nodes that meet merge whole location
	// tables, so a node ends up knowing about nodes it never heard
	// directly.
	run := func(enabled bool) int {
		cfg := DefaultConfig()
		cfg.FullTableExchange = enabled
		cfg.TableExchangeInterval = 5
		s := sim.DefaultScenario(100)
		s.Seed = 41
		s.N = 30
		s.SimTime = 300
		s.Traffic = nil
		w, _ := buildProbedWorld(t, s, cfg)
		w.Run()
		known := 0
		for i := 0; i < s.N; i++ {
			known += w.Node(i).Locations().Len()
		}
		return known
	}
	with := run(true)
	without := run(false)
	if with <= without {
		t.Errorf("full table exchange should spread knowledge: with=%d without=%d", with, without)
	}
}

func TestTableExchangeValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FullTableExchange = true
	cfg.TableExchangeInterval = 0
	if cfg.Validate() == nil {
		t.Error("zero exchange interval with the extension enabled should be rejected")
	}
}

func TestTableExchangeRateLimited(t *testing.T) {
	// Control-frame volume with the extension on must stay bounded by
	// the per-pair rate limit (not explode per beacon).
	cfg := DefaultConfig()
	cfg.FullTableExchange = true
	cfg.TableExchangeInterval = 10
	s := sim.DefaultScenario(250)
	s.Seed = 42
	s.N = 10
	s.SimTime = 50
	s.Traffic = nil
	w, _ := buildProbedWorld(t, s, cfg)
	r := w.Run()
	// Beacons: 10 nodes × 50 s ≈ 500 control frames. Table syncs: at
	// most 10×9 pairs × (50/10) ≈ 450. Anything far beyond that means
	// the rate limit failed.
	if r.ControlFrames > 1200 {
		t.Errorf("control frames = %d — table exchange not rate-limited", r.ControlFrames)
	}
}
