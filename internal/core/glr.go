// Package core implements GLR — the Geometric Localized Routing protocol
// that is the paper's contribution (§2). Per node it maintains:
//
//   - a custody Store/Cache pair (§2.3.2) holding message copies;
//   - one consolidated msgState record per message, carrying the
//     pending-ack flag set (acks identify the tree branch), the
//     face-routing state (§2.3, local-minimum escape), the
//     stale-location stuck timer (§3.3 remedy), and the face-failure
//     backoff — with a single cleanup path (forget) so per-message state
//     cannot half-leak.
//
// The routing loop (Algorithm 2) runs every checkinterval: construct the
// LDTG from 2-hop beacon knowledge, pick MaxDSTD/MinDSTD/MidDSTD next hops
// for the tree flags each message carries (Algorithm 1 decides how many
// trees at the source), unicast copies with custody transfer, and fall
// back to face routing or store-and-wait when no neighbor makes progress.
package core

import (
	"fmt"

	"glr/internal/dtn"
	"glr/internal/geom"
	"glr/internal/ldt"
	"glr/internal/sim"
)

// SpannerKind selects the local routing graph construction.
type SpannerKind int

// Routing-graph choices.
const (
	// SpannerLDTG is the paper's k-localized Delaunay triangulation.
	SpannerLDTG SpannerKind = iota
	// SpannerGabriel uses the Gabriel graph restricted to unit-disk
	// edges — planar and connected, but a worse spanner (unbounded
	// stretch).
	SpannerGabriel
	// SpannerUDG routes greedily over all unit-disk neighbors with no
	// planarization.
	SpannerUDG
)

// String implements fmt.Stringer.
func (s SpannerKind) String() string {
	switch s {
	case SpannerGabriel:
		return "gabriel"
	case SpannerUDG:
		return "udg"
	}
	return "ldtg"
}

// LocationKnowledge selects the Table-2 location-availability regime.
type LocationKnowledge int

// Location regimes.
const (
	// LocSourceKnows: the source stamps the true destination location at
	// generation time; relays refine it by diffusion (the paper's
	// default assumption).
	LocSourceKnows LocationKnowledge = iota
	// LocAllKnow: every node reads the true destination location before
	// each routing decision (Table 2, row 1).
	LocAllKnow
	// LocNoneKnow: the source stamps a random location ("random location
	// is given at the beginning"); only diffusion corrects it (Table 2,
	// row 4).
	LocNoneKnow
)

// Config parameterises GLR. Start from DefaultConfig.
type Config struct {
	// K is the neighborhood radius (hops) used for LDTG construction;
	// the paper's experiments use distance-2 information.
	K int
	// CheckInterval is the store-and-forward route re-check period
	// (§3.2; the paper's default is 0.9 s, swept in Figure 3).
	CheckInterval float64
	// CacheTimeout is how long a sent message waits in the Cache for a
	// custody ack before moving back to the Store (§2.3.2).
	CacheTimeout float64
	// Copies forces the number of identical copies (tree flags). 0 means
	// decide per Algorithm 1 from network sparsity.
	Copies int
	// ConnectivityS is the s in the Georgiou et al. connectivity bound
	// (connected w.p. ≥ 1−1/s); Algorithm 1 compares the node range
	// against the resulting threshold radius.
	ConnectivityS float64
	// Custody enables custody transfer (§2.3.2). Table 3 compares off.
	Custody bool
	// Location selects the Table-2 knowledge regime.
	Location LocationKnowledge
	// StaleRelocateAfter is the stuck time after which a carrier that is
	// closest to the (stale) destination estimate re-draws it (§3.3).
	StaleRelocateAfter float64
	// ProgressHysteresis is the fraction of the transmission range by
	// which a neighbor must be closer to the destination before a relay
	// hands the message over. Mobile nodes travelling together jostle
	// past each other constantly; without a margin every route check
	// swaps custody back and forth inside the pair, inflating hop counts
	// without advancing the message.
	ProgressHysteresis float64
	// FaceRetryBackoff is the minimum wait after a failed face walk
	// before the walk may be retried even if the local topology changed.
	// In sparse mobile networks cluster membership churns every few
	// seconds; unbounded retries circulate messages around disconnected
	// clusters, burning transmissions without progress.
	FaceRetryBackoff float64
	// DisableFaceRouting makes local minima store-and-wait instead of
	// walking faces — an ablation of the paper's §2.3 escape mechanism.
	DisableFaceRouting bool
	// Spanner selects the routing graph: the paper's LDTG (default),
	// the Gabriel graph (a simpler planar spanner), or the raw unit-disk
	// graph (no planarization — face routing loses its guarantees).
	// Ablation knob for the §2.1 design choice.
	Spanner SpannerKind
	// DisableSpannerCache makes every route check rebuild its spanner
	// from scratch with the reference construction instead of going
	// through the shared ldt.Maintainer (which reuses witness
	// triangulations across check intervals and across nodes). Results
	// are identical; the node-count sweep uses it to measure the win.
	DisableSpannerCache bool
	// FullTableExchange implements the §2.3.1 extension the paper
	// describes but leaves disabled: "for best location accuracy,
	// location tables should be exchanged whenever two nodes meet each
	// other. Since this will add extra overhead ... it is not used in
	// the experimentation." When enabled, a node hearing a beacon from a
	// peer it has not synced with recently unicasts its whole location
	// table; the peer merges fresher rows.
	FullTableExchange bool
	// TableExchangeInterval rate-limits full table exchanges per pair.
	TableExchangeInterval float64
	// GeoHeaderBits/AckBits size the protocol's on-air overhead.
	GeoHeaderBits int
	AckBits       int
}

// DefaultConfig returns the paper's settings.
func DefaultConfig() Config {
	return Config{
		K:                     2,
		CheckInterval:         0.9,
		CacheTimeout:          4.5,
		Copies:                0,
		ConnectivityS:         10,
		Custody:               true,
		Location:              LocSourceKnows,
		StaleRelocateAfter:    30,
		ProgressHysteresis:    0.2,
		FaceRetryBackoff:      15,
		TableExchangeInterval: 30,
		GeoHeaderBits:         40 * 8,
		AckBits:               20 * 8,
	}
}

// Validate reports a descriptive error for unusable configurations.
func (c Config) Validate() error {
	switch {
	case c.K < 1:
		return fmt.Errorf("core: K %d must be ≥ 1", c.K)
	case c.CheckInterval <= 0:
		return fmt.Errorf("core: check interval %v must be positive", c.CheckInterval)
	case c.CacheTimeout <= 0:
		return fmt.Errorf("core: cache timeout %v must be positive", c.CacheTimeout)
	case c.Copies < 0 || c.Copies > 5:
		return fmt.Errorf("core: copies %d must be 0 (auto) or 1..5", c.Copies)
	case c.ConnectivityS <= 1:
		return fmt.Errorf("core: connectivity s %v must exceed 1", c.ConnectivityS)
	case c.StaleRelocateAfter <= 0:
		return fmt.Errorf("core: stale relocate threshold %v must be positive", c.StaleRelocateAfter)
	case c.ProgressHysteresis < 0 || c.ProgressHysteresis >= 1:
		return fmt.Errorf("core: progress hysteresis %v must be in [0,1)", c.ProgressHysteresis)
	case c.FaceRetryBackoff < 0:
		return fmt.Errorf("core: face retry backoff %v must be nonnegative", c.FaceRetryBackoff)
	case c.FullTableExchange && c.TableExchangeInterval <= 0:
		return fmt.Errorf("core: table exchange interval %v must be positive", c.TableExchangeInterval)
	case c.GeoHeaderBits < 0 || c.AckBits <= 0:
		return fmt.Errorf("core: invalid frame overhead sizes")
	}
	return nil
}

// msgState consolidates every piece of per-message auxiliary state a
// node keeps besides the stored copy itself. One record per message
// replaces the six parallel maps an earlier revision kept, so cleanup
// is a single delete (forget) that cannot half-leak.
type msgState struct {
	// pending tracks the tree-branch flags that were sent and not yet
	// acknowledged ("this notification contains ... the extracted tree
	// branch information"). hasPending distinguishes "no entry" from a
	// fully-acked zero value.
	pending    dtn.TreeFlags
	hasPending bool
	// face carries face-routing state while the copy is stored here.
	face    ldt.FaceState
	hasFace bool
	// stuckSince records when the stored message last failed to make
	// any progress, for the §3.3 stale-location remedy.
	stuckSince float64
	hasStuck   bool
	// failTopo remembers the neighborhood signature at the moment a face
	// walk failed; the walk is not retried until the local topology
	// changes (otherwise every check re-traverses the same dead loop).
	failTopo    uint64
	hasFailTopo bool
	// failAt rate-limits face-walk retries after failure.
	failAt    float64
	hasFailAt bool
	// delivered dedupes arrivals when this node is the destination. It
	// survives forget: a later duplicate copy must still be recognized.
	delivered bool
}

// hopTarget is one forwarding decision: the tree flags the copy sent to
// dst carries.
type hopTarget struct {
	dst   int
	flags dtn.TreeFlags
}

// GLR is one node's protocol instance.
type GLR struct {
	cfg Config
	n   *sim.Node
	// maint caches spanner state (witness triangulations and accepted
	// neighbor sets) keyed by exact member positions. It is shared by
	// every node of a world — the simulation is single-threaded, and
	// overlapping neighborhoods make one node's construction the next
	// node's cache hit. Invalidation rides the beacon path (OnBeacon →
	// Observe).
	maint *ldt.Maintainer
	// frames pools dataFrame payload boxes across all nodes of the
	// world (shared via the factory, like maint).
	frames *framePool

	store *dtn.CustodyStore
	// msgs holds the consolidated per-message state; see msgState.
	msgs map[dtn.MessageID]*msgState
	// lastTableSync rate-limits §2.3.1 full table exchanges per peer.
	lastTableSync map[int]float64

	// Scratch buffers reused across route checks so the routing loop
	// stops materializing intermediate slices and maps per tick.
	thIDs   []int          // 2-hop ids (dense-table AppendTwoHop output)
	thPts   []geom.Point   // 2-hop positions, parallel to thIDs
	stored  []*dtn.Message // per-check snapshot of the Store
	closer  []cand         // progress candidates for the message being routed
	targets []hopTarget    // per-tree forwarding picks, sorted by dst
	checkFn func()         // routeCheck bound once (rescheduling a method value would allocate)

	// nextCheckAt mirrors the instant the pending routeCheck timer fires
	// (Init's phased start, then now+CheckInterval at every reschedule) so
	// speculative spanner builds can target the exact future view the
	// check will query. specIDs/specPts are the preview scratch.
	nextCheckAt float64
	specIDs     []int
	specPts     []geom.Point

	stats Stats
}

// state returns the per-message record, or nil.
func (g *GLR) state(id dtn.MessageID) *msgState { return g.msgs[id] }

// ensureState returns the per-message record, creating it if absent.
func (g *GLR) ensureState(id dtn.MessageID) *msgState {
	st := g.msgs[id]
	if st == nil {
		st = &msgState{}
		g.msgs[id] = st
	}
	return st
}

// Stats counts forwarding decisions, exposed for ablation benchmarks and
// white-box tests.
type Stats struct {
	GreedyForwards uint64 // tree-based forwards (Algorithm 2 main path)
	DirectForwards uint64 // destination was an audible neighbor
	FaceForwards   uint64 // perimeter-mode forwards
	FaceFailures   uint64 // face walks that completed a loop
	Relocations    uint64 // §3.3 stale-location re-draws
	CustodyReturns uint64 // cache-timeout or MAC-failure returns to Store
}

// Stats returns the node's forwarding counters.
func (g *GLR) Stats() Stats { return g.stats }

// New builds a GLR factory for sim.NewWorld.
func New(cfg Config) (sim.ProtocolFactory, error) {
	factory, _, err := NewInstrumented(cfg)
	return factory, err
}

// NewInstrumented is New plus access to the world's shared spanner
// cache, for experiments that report construction cost and hit rates.
// Every node built by the returned factory shares the one Maintainer
// (and one dataFrame pool).
func NewInstrumented(cfg Config) (sim.ProtocolFactory, *ldt.Maintainer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	maint := ldt.NewMaintainer(cfg.DisableSpannerCache)
	frames := &framePool{}
	return func(n *sim.Node) sim.Protocol {
		return &GLR{
			cfg:           cfg,
			n:             n,
			maint:         maint,
			frames:        frames,
			store:         dtn.NewCustodyStore(n.StorageLimit()),
			msgs:          make(map[dtn.MessageID]*msgState),
			lastTableSync: make(map[int]float64),
		}
	}, maint, nil
}

// Init implements sim.Protocol: start the periodic route check with a
// random phase so nodes do not check in lockstep. When the world runs
// the sharded engine, the shared spanner cache goes concurrent so idle
// worker time can pre-build the spanners the next checks will need —
// results stay byte-identical (see internal/ldt/speculate.go).
func (g *GLR) Init(n *sim.Node) {
	if p := n.ShardPool(); p != nil {
		g.maint.EnableConcurrent(p)
	}
	g.checkFn = g.routeCheck
	phase := n.Rand().Float64() * g.cfg.CheckInterval
	g.nextCheckAt = n.Now() + phase
	n.After(phase, g.checkFn)
}

// Restart implements sim.Restarter (fault-injected node churn): the
// node reboots with empty custody storage, no per-message state — even
// the delivered bits that suppress re-acceptance are gone — and no
// table-sync history. The shared spanner cache (maint) survives: it is
// world-level memoization keyed by exact positions, not node state. The
// periodic route-check timer keeps its cadence across the restart.
func (g *GLR) Restart() {
	g.store = dtn.NewCustodyStore(g.n.StorageLimit())
	clear(g.msgs)
	clear(g.lastTableSync)
}

// StorageUsed implements sim.Protocol: Store + Cache occupancy.
func (g *GLR) StorageUsed() int { return g.store.Total() }

// CopyCount implements Algorithm 1: single copy when the transmission
// range exceeds the connectivity-threshold radius (the network is likely
// connected and "multiple message copies should be avoided"), three trees
// when sparse, five when very sparse ("if more than three identical
// message copies are needed ... multiple MidDSTD trees are extracted").
func (g *GLR) CopyCount() int {
	if g.cfg.Copies > 0 {
		return g.cfg.Copies
	}
	rstar := geom.ConnectivityThreshold(g.n.NodeCount(), g.n.Region().Area(), g.cfg.ConnectivityS)
	r := g.n.Range()
	switch {
	case r >= rstar:
		return 1
	case r >= rstar/4:
		return 3
	default:
		return 5
	}
}

// OnMessageGenerated implements sim.Protocol (the source-side half of
// Algorithm 2).
func (g *GLR) OnMessageGenerated(m *dtn.Message) {
	now := g.n.Now()
	switch g.cfg.Location {
	case LocAllKnow, LocSourceKnows:
		m.DstLoc = g.n.OraclePosition(m.Dst)
		m.DstLocTime = now
		m.DstLocKnown = true
	case LocNoneKnow:
		m.DstLoc = g.n.Region().RandomPoint(g.n.Rand())
		m.DstLocTime = now
		m.DstLocKnown = false
	}
	flags := dtn.TreeFlags(0)
	for _, f := range dtn.AllTreeFlags(g.CopyCount()) {
		flags |= f
	}
	m.Flags = flags
	g.addToStore(m)
}

// addToStore inserts a message, cleaning up auxiliary state for anything
// the bounded store dropped.
func (g *GLR) addToStore(m *dtn.Message) {
	dropped, _ := g.store.Add(m)
	if dropped != nil {
		g.forget(dropped.ID)
	}
}

// forget clears auxiliary per-message state — the single cleanup path
// for msgState. Only the delivery-dedup bit survives: a duplicate copy
// arriving after cleanup must still be recognized as already delivered.
func (g *GLR) forget(id dtn.MessageID) {
	st, ok := g.msgs[id]
	if !ok {
		return
	}
	if st.delivered {
		*st = msgState{delivered: true}
		return
	}
	delete(g.msgs, id)
}
