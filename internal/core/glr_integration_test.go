package core

import (
	"testing"

	"glr/internal/dtn"
	"glr/internal/mobility"
	"glr/internal/sim"
)

func TestGLRCustodyKeepsMessagesUntilAck(t *testing.T) {
	// White-box: after generation, the message must sit in the Store;
	// after forwarding it must live in the Cache until acked.
	s := denseScenario(7)
	s.Traffic = []sim.TrafficItem{{Src: 0, Dst: 9, At: 5}}
	w, instances := buildProbedWorld(t, s, DefaultConfig())
	sched := w.Scheduler()
	sched.Run(5.05) // message generated, routing not yet run
	src := instances[0]
	if src.store.Total() != 1 {
		t.Fatalf("source should hold the fresh message, has %d", src.store.Total())
	}
	r := w.Run()
	if r.Delivered != 1 {
		t.Fatalf("message not delivered: %+v", r)
	}
	// After delivery and acks, no node should still hold the message
	// (custody clears hop by hop; copies die at the destination).
	total := 0
	for _, g := range instances {
		total += g.store.Total()
	}
	if total != 0 {
		t.Errorf("custody left %d copies behind", total)
	}
}

func TestGLRNoCustodyFireAndForget(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Custody = false
	s := denseScenario(8)
	w, instances := buildProbedWorld(t, s, cfg)
	r := w.Run()
	if r.Acks != 0 {
		t.Errorf("custody disabled but %d acks were sent", r.Acks)
	}
	if r.Delivered == 0 {
		t.Error("dense network should deliver even without custody")
	}
	for i, g := range instances {
		if g.store.CacheLen() != 0 {
			t.Errorf("node %d has %d cached messages without custody", i, g.store.CacheLen())
		}
	}
}

func TestGLRLocationRegimes(t *testing.T) {
	// All three Table-2 regimes must deliver in a dense network; the
	// none-know regime relies on diffusion and the stale-location remedy.
	for _, tt := range []struct {
		name string
		loc  LocationKnowledge
	}{
		{"all know", LocAllKnow},
		{"source knows", LocSourceKnows},
		{"none know", LocNoneKnow},
	} {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Location = tt.loc
			cfg.StaleRelocateAfter = 10
			s := denseScenario(9)
			s.SimTime = 300
			w, _ := buildProbedWorld(t, s, cfg)
			r := w.Run()
			if r.Delivered != r.Generated {
				t.Errorf("regime %q delivered %d/%d", tt.name, r.Delivered, r.Generated)
			}
		})
	}
}

func TestGLRDeterministicRuns(t *testing.T) {
	run := func() any {
		w := buildWorld(t, denseScenario(11), DefaultConfig())
		return w.Run()
	}
	if run() != run() {
		t.Error("identical seeds must give identical reports")
	}
}

func TestGLRStorageLimitRespected(t *testing.T) {
	s := sim.DefaultScenario(50)
	s.Seed = 12
	s.N = 30
	s.SimTime = 400
	s.StorageLimit = 5
	s.Traffic = sim.PaperTraffic(200)
	for i := range s.Traffic {
		if s.Traffic[i].Src >= 30 || s.Traffic[i].Dst >= 30 {
			s.Traffic[i].Src %= 30
			s.Traffic[i].Dst = (s.Traffic[i].Dst % 30)
			if s.Traffic[i].Src == s.Traffic[i].Dst {
				s.Traffic[i].Dst = (s.Traffic[i].Dst + 1) % 30
			}
		}
	}
	w, instances := buildProbedWorld(t, s, DefaultConfig())
	// Sample occupancy as the run progresses.
	for ti := 50.0; ti < 400; ti += 50 {
		ti := ti
		w.Scheduler().At(ti, func() {
			for i, g := range instances {
				if g.store.Total() > 5 {
					t.Errorf("node %d exceeds storage limit at t=%v: %d", i, ti, g.store.Total())
				}
			}
		})
	}
	r := w.Run()
	if r.MaxPeakStorage > 5 {
		t.Errorf("peak storage %d exceeds limit 5", r.MaxPeakStorage)
	}
}

func TestGLRDuplicateSuppressionAtDestination(t *testing.T) {
	// With 3 copies in a sparse network, the destination may receive
	// several; the collector must count one delivery and some duplicates
	// are tolerable.
	s := sim.DefaultScenario(100)
	s.Seed = 13
	s.N = 30
	s.SimTime = 600
	s.Traffic = []sim.TrafficItem{{Src: 0, Dst: 20, At: 5}}
	w, _ := buildProbedWorld(t, s, DefaultConfig())
	r := w.Run()
	if r.Delivered > 1 {
		t.Fatalf("single logical message counted %d times", r.Delivered)
	}
}

func TestGLRHopsAccumulate(t *testing.T) {
	// In a long thin strip with moderate range, delivery needs several
	// hops; the hop metric must reflect that.
	s := sim.DefaultScenario(150)
	s.Seed = 14
	s.N = 40
	s.SimTime = 300
	s.Region = mobility.Region{W: 1500, H: 300}
	s.Traffic = []sim.TrafficItem{{Src: 0, Dst: 39, At: 5}, {Src: 1, Dst: 38, At: 6}}
	w, _ := buildProbedWorld(t, s, DefaultConfig())
	r := w.Run()
	if r.Delivered == 0 {
		t.Skip("unlucky topology: nothing delivered")
	}
	if r.AvgHops < 1 {
		t.Errorf("AvgHops = %v, want ≥ 1", r.AvgHops)
	}
}

func TestGLRTreeFlagSplitIntegrity(t *testing.T) {
	// White-box: a sparse-source message must carry the union of the
	// first three tree flags after generation.
	s := sim.DefaultScenario(50) // sparse ⇒ 3 copies
	s.N = 50
	s.SimTime = 20
	s.Traffic = []sim.TrafficItem{{Src: 0, Dst: 10, At: 1}}
	w, instances := buildProbedWorld(t, s, DefaultConfig())
	w.Scheduler().Run(1.01)
	msgs := instances[0].store.StoredMessages()
	if len(msgs) != 1 {
		t.Fatalf("source holds %d messages", len(msgs))
	}
	want := dtn.FlagMax | dtn.FlagMin | dtn.FlagMid
	if msgs[0].Flags != want {
		t.Errorf("flags = %v, want %v", msgs[0].Flags, want)
	}
	_ = w
}
