package core

import (
	"testing"

	"glr/internal/sim"
)

func TestSpannerKindString(t *testing.T) {
	tests := []struct {
		k    SpannerKind
		want string
	}{{SpannerLDTG, "ldtg"}, {SpannerGabriel, "gabriel"}, {SpannerUDG, "udg"}}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", tt.k, got, tt.want)
		}
	}
}

func TestSpannerVariantsDeliver(t *testing.T) {
	// Every routing-graph variant must still deliver in a dense mobile
	// network — the ablation changes efficiency, not correctness.
	for _, spanner := range []SpannerKind{SpannerLDTG, SpannerGabriel, SpannerUDG} {
		t.Run(spanner.String(), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Spanner = spanner
			w := buildWorld(t, denseScenario(21), cfg)
			r := w.Run()
			if r.Delivered != r.Generated {
				t.Errorf("%v delivered %d/%d", spanner, r.Delivered, r.Generated)
			}
		})
	}
}

func TestNoFaceRoutingStillDeliversWithMobility(t *testing.T) {
	// Without face routing, local minima wait for mobility; in a mobile
	// network delivery must still happen (slower is fine).
	cfg := DefaultConfig()
	cfg.DisableFaceRouting = true
	s := sim.DefaultScenario(100)
	s.Seed = 22
	s.N = 30
	s.SimTime = 600
	s.Traffic = []sim.TrafficItem{
		{Src: 0, Dst: 20, At: 5},
		{Src: 3, Dst: 25, At: 6},
		{Src: 9, Dst: 15, At: 7},
	}
	w, instances := buildProbedWorld(t, s, cfg)
	r := w.Run()
	if r.Delivered < 2 {
		t.Fatalf("delivered %d/%d without face routing", r.Delivered, r.Generated)
	}
	for _, g := range instances {
		if st := g.Stats(); st.FaceForwards != 0 || st.FaceFailures != 0 {
			t.Fatal("face routing ran despite being disabled")
		}
	}
}

func TestStatsCountersPopulated(t *testing.T) {
	s := sim.DefaultScenario(100)
	s.Seed = 23
	s.N = 30
	s.SimTime = 500
	s.Traffic = sim.PaperTraffic(60)
	for i := range s.Traffic {
		s.Traffic[i].Src %= 30
		s.Traffic[i].Dst %= 30
		if s.Traffic[i].Src == s.Traffic[i].Dst {
			s.Traffic[i].Dst = (s.Traffic[i].Dst + 1) % 30
		}
	}
	w, instances := buildProbedWorld(t, s, DefaultConfig())
	w.Run()
	var agg Stats
	for _, g := range instances {
		st := g.Stats()
		agg.GreedyForwards += st.GreedyForwards
		agg.DirectForwards += st.DirectForwards
		agg.FaceForwards += st.FaceForwards
	}
	if agg.GreedyForwards == 0 {
		t.Error("greedy forwards should occur")
	}
	if agg.DirectForwards == 0 {
		t.Error("direct deliveries should occur")
	}
}

func TestHysteresisReducesHops(t *testing.T) {
	// The hysteresis exists to stop custody ping-pong between jostling
	// pairs; with it off, delivered messages should take at least as
	// many hops on average.
	run := func(h float64) float64 {
		cfg := DefaultConfig()
		cfg.ProgressHysteresis = h
		s := sim.DefaultScenario(50)
		s.Seed = 24
		s.N = 40
		s.SimTime = 900
		s.Traffic = sim.PaperTraffic(80)
		for i := range s.Traffic {
			s.Traffic[i].Src %= 40
			s.Traffic[i].Dst %= 40
			if s.Traffic[i].Src == s.Traffic[i].Dst {
				s.Traffic[i].Dst = (s.Traffic[i].Dst + 1) % 40
			}
		}
		w := buildWorld(t, s, cfg)
		return w.Run().AvgHops
	}
	with := run(0.2)
	without := run(0)
	if without < with*0.8 {
		t.Errorf("hops without hysteresis (%.1f) unexpectedly below with (%.1f)", without, with)
	}
}

func TestFiveCopiesUseExtraMidTrees(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Copies = 5
	s := sim.DefaultScenario(50)
	s.N = 50
	s.SimTime = 10
	s.Traffic = []sim.TrafficItem{{Src: 0, Dst: 30, At: 1}}
	w, instances := buildProbedWorld(t, s, cfg)
	w.Scheduler().Run(1.01)
	msgs := instances[0].store.StoredMessages()
	if len(msgs) != 1 {
		t.Fatalf("source holds %d messages", len(msgs))
	}
	if got := msgs[0].Flags.Count(); got != 5 {
		t.Errorf("flag count = %d, want 5", got)
	}
	_ = w
}
