package core

import (
	"testing"

	"glr/internal/dtn"
	"glr/internal/geom"
	"glr/internal/sim"
)

// frameWorld builds a tiny static world for white-box frame handling
// tests and returns it with the per-node protocol instances.
func frameWorld(t *testing.T, cfg Config) (*sim.World, []*GLR) {
	t.Helper()
	s := sim.DefaultScenario(250)
	s.Seed = 71
	s.N = 4
	s.SimTime = 100
	s.Mobility = sim.MobilityStatic
	s.Traffic = nil
	return buildProbedWorld(t, s, cfg)
}

func TestOnAckPartialBranches(t *testing.T) {
	w, instances := frameWorld(t, DefaultConfig())
	g := instances[0]
	w.Scheduler().Run(0.1)

	m := &dtn.Message{ID: dtn.MessageID{Src: 0, Seq: 0}, Dst: 3, Flags: dtn.FlagMax | dtn.FlagMin}
	g.store.Add(m)
	g.store.MarkSent(m.ID, 0)
	st := g.ensureState(m.ID)
	st.pending = dtn.FlagMax | dtn.FlagMin
	st.hasPending = true

	// Ack for just the Max branch: message stays cached awaiting Min.
	g.onAck(ackFrame{ID: m.ID, Dst: 3, Flags: dtn.FlagMax, SenderPos: geom.Pt(0, 0)}, 1)
	if g.store.CacheLen() != 1 {
		t.Fatal("message must stay cached until every branch acks")
	}
	if st.pending != dtn.FlagMin {
		t.Fatalf("pending = %v, want min", st.pending)
	}
	// Ack for the remaining branch releases it.
	g.onAck(ackFrame{ID: m.ID, Dst: 3, Flags: dtn.FlagMin, SenderPos: geom.Pt(0, 0)}, 2)
	if g.store.Total() != 0 {
		t.Fatal("fully-acked message must leave custody")
	}
	if st := g.state(m.ID); st != nil && st.hasPending {
		t.Fatal("pending-ack state must clear")
	}
}

func TestOnAckUnknownMessageIgnored(t *testing.T) {
	_, instances := frameWorld(t, DefaultConfig())
	g := instances[0]
	g.onAck(ackFrame{ID: dtn.MessageID{Src: 9, Seq: 9}, Flags: dtn.FlagMax}, 1)
	if g.store.Total() != 0 {
		t.Fatal("stray ack must not create state")
	}
}

func TestOnDataDeliversAndAcks(t *testing.T) {
	w, instances := frameWorld(t, DefaultConfig())
	g := instances[2]
	w.Scheduler().Run(0.1)
	msg := dtn.Message{ID: dtn.MessageID{Src: 0, Seq: 0}, Dst: 2, PayloadBits: 800}
	g.onData(&dataFrame{Msg: msg, SenderPos: geom.Pt(1, 1), SentAt: 0.05}, 0)
	if st := g.state(msg.ID); st == nil || !st.delivered {
		t.Fatal("destination must record the delivery")
	}
	// A duplicate copy must not double-report: GLR suppresses it at the
	// protocol level, so the collector records exactly one delivery.
	g.onData(&dataFrame{Msg: msg, SenderPos: geom.Pt(1, 1), SentAt: 0.06}, 1)
	rep := w.Collector().Report()
	if rep.Delivered != 1 {
		t.Errorf("delivered = %d, want 1", rep.Delivered)
	}
	if g.store.Total() != 0 {
		t.Error("the destination must not store copies of its own messages")
	}
}

func TestOnDataRelayStoresAndLearnsLocations(t *testing.T) {
	w, instances := frameWorld(t, DefaultConfig())
	g := instances[1]
	w.Scheduler().Run(0.1)
	msg := dtn.Message{
		ID: dtn.MessageID{Src: 0, Seq: 1}, Dst: 3, PayloadBits: 800,
		DstLoc: geom.Pt(42, 7), DstLocTime: 0.04, DstLocKnown: true,
	}
	g.onData(&dataFrame{Msg: msg, SenderPos: geom.Pt(9, 9), SentAt: 0.05}, 0)
	if g.store.Total() != 1 {
		t.Fatal("relay must store the copy")
	}
	// Diffusion: the relay learned both the sender's position and the
	// destination estimate carried in the header.
	if e, ok := g.n.Locations().Get(0); !ok || !e.Pos.Eq(geom.Pt(9, 9)) {
		t.Error("sender position not learned")
	}
	if e, ok := g.n.Locations().Get(3); !ok || !e.Pos.Eq(geom.Pt(42, 7)) {
		t.Error("destination estimate not diffused into the table")
	}
}

func TestOnSendFailedReturnsBranchToStore(t *testing.T) {
	w, instances := frameWorld(t, DefaultConfig())
	g := instances[0]
	w.Scheduler().Run(0.1)
	m := &dtn.Message{ID: dtn.MessageID{Src: 0, Seq: 2}, Dst: 3, Flags: dtn.FlagMax | dtn.FlagMin}
	g.store.Add(m)
	g.store.MarkSent(m.ID, 0)
	st := g.ensureState(m.ID)
	st.pending = dtn.FlagMax | dtn.FlagMin
	st.hasPending = true

	g.onSendFailed(m.ID, dtn.FlagMin)
	if g.store.StoreLen() != 1 {
		t.Fatal("failed branch must return to the Store")
	}
	if got := g.store.Get(m.ID).Flags; got != dtn.FlagMin {
		t.Errorf("returned flags = %v, want min only", got)
	}
	if st.pending != dtn.FlagMax {
		t.Errorf("pending = %v, want max", st.pending)
	}
	// The other branch fails too: flags merge on the stored copy.
	g.onSendFailed(m.ID, dtn.FlagMax)
	if got := g.store.Get(m.ID).Flags; got != dtn.FlagMax|dtn.FlagMin {
		t.Errorf("merged flags = %v", got)
	}
}

func TestRefreshDstLocRegimes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Location = LocAllKnow
	w, instances := frameWorld(t, cfg)
	g := instances[0]
	w.Scheduler().Run(0.1)
	m := &dtn.Message{ID: dtn.MessageID{Src: 0, Seq: 3}, Dst: 2}
	g.refreshDstLoc(m)
	if !m.DstLocKnown {
		t.Fatal("all-know regime must stamp the location")
	}
	if !m.DstLoc.Eq(w.Node(2).Pos()) {
		t.Error("all-know regime must use the oracle position")
	}

	// Source-knows regime: the table (not the oracle) feeds refreshes.
	cfg2 := DefaultConfig()
	_, inst2 := frameWorld(t, cfg2)
	g2 := inst2[0]
	m2 := &dtn.Message{ID: dtn.MessageID{Src: 0, Seq: 4}, Dst: 2}
	g2.n.Locations().Update(2, geom.Pt(123, 45), 9)
	g2.refreshDstLoc(m2)
	if !m2.DstLoc.Eq(geom.Pt(123, 45)) {
		t.Error("table entry should refresh the estimate")
	}
}
