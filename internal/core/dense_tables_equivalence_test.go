package core

import (
	"fmt"
	"reflect"
	"testing"

	"glr/internal/sim"
)

// TestDenseTablesRunEquivalence: across randomized mobile scenarios, a
// run on the dense slice-backed neighbor/location tables must produce
// *identical* end-to-end results — delivery, latency, hops, storage,
// frame counts — to the same run on the map-backed reference path
// (sim.Scenario.DisableDenseTables). Any divergence means the dense
// state plane changed an observation order or a routing decision.
func TestDenseTablesRunEquivalence(t *testing.T) {
	const trials = 15
	delivered := 0
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("seed=%d", trial), func(t *testing.T) {
			var reports [2]interface{}
			for i, disable := range []bool{false, true} {
				factory, _, err := NewInstrumented(equivConfig(trial, false))
				if err != nil {
					t.Fatal(err)
				}
				s := equivScenario(trial)
				s.DisableDenseTables = disable
				w, err := sim.NewWorld(s, factory)
				if err != nil {
					t.Fatal(err)
				}
				rep := w.Run()
				reports[i] = rep
				delivered += rep.Delivered
			}
			if !reflect.DeepEqual(reports[0], reports[1]) {
				t.Fatalf("dense-table run diverged from map-backed:\n  dense: %+v\n  map:   %+v",
					reports[0], reports[1])
			}
		})
	}
	if delivered == 0 {
		t.Fatal("equivalence suite delivered nothing; scenarios too hostile to be meaningful")
	}
}

// TestDenseTablesFullStackEquivalence crosses the dense-table flag with
// the spatial-index and spanner-cache flags: all three escape hatches
// must agree pairwise with the all-fast default, so any combination of
// the reference paths reproduces the optimized stack bit for bit.
func TestDenseTablesFullStackEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack flag cross is slow")
	}
	base := func() sim.Scenario { return equivScenario(2) }
	type variant struct {
		name       string
		denseOff   bool
		spatialOff bool
		spannerOff bool
	}
	variants := []variant{
		{name: "all-fast"},
		{name: "map-tables", denseOff: true},
		{name: "naive-medium", spatialOff: true},
		{name: "scratch-spanner", spannerOff: true},
		{name: "all-reference", denseOff: true, spatialOff: true, spannerOff: true},
	}
	var first interface{}
	for _, v := range variants {
		cfg := equivConfig(2, v.spannerOff)
		factory, _, err := NewInstrumented(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s := base()
		s.DisableDenseTables = v.denseOff
		s.DisableSpatialIndex = v.spatialOff
		w, err := sim.NewWorld(s, factory)
		if err != nil {
			t.Fatal(err)
		}
		rep := w.Run()
		if first == nil {
			first = rep
			continue
		}
		if !reflect.DeepEqual(first, rep) {
			t.Fatalf("variant %q diverged from all-fast:\n  fast: %+v\n  %s: %+v",
				v.name, first, v.name, rep)
		}
	}
}
