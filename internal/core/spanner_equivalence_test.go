package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"glr/internal/ldt"
	"glr/internal/sim"
)

// equivScenario builds a randomized mobile scenario for the cache
// equivalence property: paper-style density and mobility at a small
// scale, random size, range, and traffic.
func equivScenario(trial int) sim.Scenario {
	rng := rand.New(rand.NewSource(int64(trial)*104729 + 11))
	n := 20 + rng.Intn(20)
	s := sim.DefaultScenario(80 + rng.Float64()*120)
	s.Name = fmt.Sprintf("spanner-equiv-%d", trial)
	s.Seed = int64(trial)*31 + 5
	s.N = n
	s.Region.W = 600 + rng.Float64()*600
	s.Region.H = 200 + rng.Float64()*200
	s.SimTime = 60 + rng.Float64()*30
	s.Traffic = sim.UniformTraffic(n, 10+rng.Intn(15), 1.0, int64(trial)*977+1)
	return s
}

// equivConfig randomizes the spanner variant so Gabriel and UDG ablations
// go through the cache equivalence too.
func equivConfig(trial int, disableCache bool) Config {
	cfg := DefaultConfig()
	cfg.Spanner = SpannerKind(trial % 3)
	cfg.DisableSpannerCache = disableCache
	return cfg
}

// TestSpannerCacheRunEquivalence: across ≥20 randomized mobile scenarios,
// a run with the shared spanner cache must produce *identical* end-to-end
// results — delivery, latency, hops, storage, frame counts — to the same
// run on the from-scratch reference path. Any divergence means the cache
// (or the mesh triangulator under it) changed a routing decision.
func TestSpannerCacheRunEquivalence(t *testing.T) {
	const trials = 21
	delivered := 0
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("seed=%d", trial), func(t *testing.T) {
			var reports [2]interface{}
			for i, disable := range []bool{false, true} {
				factory, maint, err := NewInstrumented(equivConfig(trial, disable))
				if err != nil {
					t.Fatal(err)
				}
				w, err := sim.NewWorld(equivScenario(trial), factory)
				if err != nil {
					t.Fatal(err)
				}
				rep := w.Run()
				reports[i] = rep
				delivered += rep.Delivered
				st := maint.Stats()
				if st.Queries == 0 {
					t.Fatal("no spanner queries recorded")
				}
				if disable && (st.TriBuilds != 0 || st.TriHits != 0 || st.ResultHits != 0) {
					t.Fatalf("from-scratch run used the cache: %+v", st)
				}
			}
			if !reflect.DeepEqual(reports[0], reports[1]) {
				t.Fatalf("cached run diverged from from-scratch:\n  cached: %+v\n  scratch: %+v",
					reports[0], reports[1])
			}
		})
	}
	if delivered == 0 {
		t.Fatal("equivalence suite delivered nothing; scenarios too hostile to be meaningful")
	}
}

// TestSpannerCachePerNodeEquivalence freezes running worlds at several
// checkpoints and compares, node by node, the cached accepted-neighbor
// set against a from-scratch reference construction over the same
// neighbor-table state.
func TestSpannerCachePerNodeEquivalence(t *testing.T) {
	compared := 0
	for trial := 0; trial < 6; trial++ {
		factory, _, err := NewInstrumented(equivConfig(0, false)) // LDTG
		if err != nil {
			t.Fatal(err)
		}
		var instances []*GLR
		capture := func(n *sim.Node) sim.Protocol {
			p := factory(n)
			instances = append(instances, p.(*GLR))
			return p
		}
		w, err := sim.NewWorld(equivScenario(trial), capture)
		if err != nil {
			t.Fatal(err)
		}
		for _, until := range []float64{8, 17, 33} {
			w.Scheduler().Run(until)
			for _, g := range instances {
				view, nbrIDs, _ := g.localSpanner()
				if view == nil {
					continue
				}
				local, err := view.LDTGNeighborsRef(g.cfg.K)
				if err != nil {
					t.Fatal(err)
				}
				var want []int
				for _, li := range local {
					want = append(want, view.IDs[li])
				}
				got := append([]int(nil), nbrIDs...)
				sort.Ints(got)
				sort.Ints(want)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d t=%.0f node %d: cached %v != from-scratch %v",
						trial, until, g.n.ID(), got, want)
				}
				compared++
			}
		}
	}
	if compared < 100 {
		t.Fatalf("only %d per-node comparisons ran; scenarios degenerate", compared)
	}
}

// TestDisableSpannerCacheConfig exercises the flag end to end: both modes
// must run and the cached mode must actually reuse state in a static
// scenario.
func TestDisableSpannerCacheConfig(t *testing.T) {
	s := sim.DefaultScenario(120)
	s.N = 25
	s.Mobility = sim.MobilityStatic
	s.SimTime = 30
	s.Traffic = sim.UniformTraffic(s.N, 8, 1.0, 3)

	factory, maint, err := NewInstrumented(Config{})
	if err == nil {
		t.Fatal("invalid zero config accepted")
	}
	_ = factory
	_ = maint

	cfg := DefaultConfig()
	factory, maint, err = NewInstrumented(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.NewWorld(s, factory); err != nil {
		t.Fatal(err)
	}
	// Static nodes: after the first check interval every view repeats, so
	// the result cache must serve the steady state.
	w, err := sim.NewWorld(s, factory)
	if err != nil {
		t.Fatal(err)
	}
	w.Run()
	st := maint.Stats()
	if st.ResultHits == 0 {
		t.Errorf("static scenario produced no result-cache hits: %+v", st)
	}
	if maint.Disabled() {
		t.Error("default config should enable the cache")
	}

	cfg.DisableSpannerCache = true
	_, maint, err = NewInstrumented(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !maint.Disabled() {
		t.Error("DisableSpannerCache not honored")
	}
}

// stats sanity for ldt.Maintainer wiring: the shared cache must see
// queries from many nodes of one world.
func TestMaintainerSharedAcrossNodes(t *testing.T) {
	factory, maint, err := NewInstrumented(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := equivScenario(3)
	w, err := sim.NewWorld(s, factory)
	if err != nil {
		t.Fatal(err)
	}
	w.Scheduler().Run(12)
	st := maint.Stats()
	if st.Queries < uint64(s.N) {
		t.Errorf("shared maintainer saw %d queries for %d nodes", st.Queries, s.N)
	}
	if st.TriBuilds+st.TriHits == 0 {
		t.Error("no witness triangulations recorded")
	}
	var _ ldt.SpannerStats = st
}
