package core

import (
	"glr/internal/dtn"
	"glr/internal/geom"
	"glr/internal/ldt"
)

// routeCheck is the periodic store-and-forward loop (Algorithm 2): expire
// custody timeouts, refresh destination estimates, and attempt to forward
// every stored message along its trees.
func (g *GLR) routeCheck() {
	now := g.n.Now()

	// Custody timeouts: unacknowledged branches go back to the Store
	// "for another round of transfer rescheduling".
	for _, m := range g.store.ExpireCache(now - g.cfg.CacheTimeout) {
		g.stats.CustodyReturns++
		if st := g.state(m.ID); st != nil {
			if st.hasPending && st.pending != 0 {
				m.Flags = st.pending
			}
			st.pending = 0
			st.hasPending = false
		}
	}

	if g.store.StoreLen() > 0 {
		view, nbrIDs, nbrPts := g.localSpanner()
		g.stored = g.store.AppendStored(g.stored[:0])
		for _, m := range g.stored {
			g.routeMessage(m, view, nbrIDs, nbrPts)
		}
	}

	g.nextCheckAt = now + g.cfg.CheckInterval
	g.n.After(g.cfg.CheckInterval, g.checkFn)
	g.speculateNextCheck()
}

// speculateNextCheck hands the shared spanner cache a prediction of this
// node's next route-check query — the two-hop view as it will look when
// the pending check timer fires — so a shard worker can build the LDTG
// off the event goroutine. Purely an optimization: the prediction is
// adopted only if it matches the real query byte for byte (a beacon
// heard in between changes the view and the speculation is discarded),
// so results are identical with or without it.
func (g *GLR) speculateNextCheck() {
	if !g.maint.Speculative() || g.store.StoreLen() == 0 {
		return
	}
	at := g.nextCheckAt
	g.specIDs, g.specPts = g.n.AppendTwoHopAt(g.specIDs[:0], g.specPts[:0], at)
	g.maint.Speculate(g.n.ID(), g.specIDs, g.specPts, g.n.Range(), g.spannerVariant(), g.cfg.K, at)
}

// localSpanner constructs this node's current routing-graph incident
// edges from 2-hop beacon knowledge (the LDTG by default; Gabriel or the
// raw UDG under ablation), through the world's shared spanner cache —
// or from scratch when Config.DisableSpannerCache is set. It returns the
// view plus parallel id/position slices of the accepted neighbors
// (global ids). The 2-hop point set is assembled in per-instance scratch
// buffers (the dense neighbor table appends without allocating); the
// Maintainer copies what it caches, so reuse across checks is safe.
func (g *GLR) localSpanner() (*ldt.LocalView, []int, []geom.Point) {
	g.thIDs, g.thPts = g.n.Neighbors().AppendTwoHop(g.thIDs[:0], g.thPts[:0], g.n.ID(), g.n.Pos())
	view, err := ldt.NewLocalView(g.n.ID(), g.thIDs, g.thPts, g.n.Range())
	if err != nil {
		return nil, nil, nil
	}
	nbrIDs, nbrPts, err := g.maint.Neighbors(view, g.spannerVariant(), g.cfg.K, g.n.Now())
	if err != nil {
		return view, nil, nil
	}
	return view, nbrIDs, nbrPts
}

// spannerVariant maps the config's spanner choice to the cache's.
func (g *GLR) spannerVariant() ldt.Variant {
	switch g.cfg.Spanner {
	case SpannerGabriel:
		return ldt.VariantGabriel
	case SpannerUDG:
		return ldt.VariantUDG
	}
	return ldt.VariantLDTG
}

// refreshDstLoc updates a message's destination estimate before a routing
// decision, per the configured knowledge regime and the local location
// table (§2.3.1).
func (g *GLR) refreshDstLoc(m *dtn.Message) {
	if g.cfg.Location == LocAllKnow {
		m.DstLoc = g.n.OraclePosition(m.Dst)
		m.DstLocTime = g.n.Now()
		m.DstLocKnown = true
		return
	}
	if e, ok := g.n.Locations().Get(m.Dst); ok {
		m.UpdateDstLoc(e.Pos, e.Time, true)
	}
}

// cand is one forwarding candidate: an accepted spanner neighbor closer
// to the destination estimate than we are.
type cand struct {
	id  int
	pos geom.Point
	d2  float64
}

// addTarget merges flags into the (sorted, ≤5-entry) scratch target list.
func (g *GLR) addTarget(dst int, flags dtn.TreeFlags) {
	for i := range g.targets {
		if g.targets[i].dst == dst {
			g.targets[i].flags |= flags
			return
		}
		if g.targets[i].dst > dst {
			g.targets = append(g.targets, hopTarget{})
			copy(g.targets[i+1:], g.targets[i:])
			g.targets[i] = hopTarget{dst: dst, flags: flags}
			return
		}
	}
	g.targets = append(g.targets, hopTarget{dst: dst, flags: flags})
}

// routeMessage attempts to forward one stored message (the per-message
// body of Algorithm 2).
func (g *GLR) routeMessage(m *dtn.Message, view *ldt.LocalView, nbrIDs []int, nbrPts []geom.Point) {
	g.refreshDstLoc(m)
	now := g.n.Now()

	// Direct delivery: the destination is an audible neighbor.
	if nb, ok := g.n.Neighbors().Get(m.Dst); ok && nb.Pos.Dist(g.n.Pos()) <= g.n.Range() {
		g.stats.DirectForwards++
		g.targets = append(g.targets[:0], hopTarget{dst: m.Dst, flags: m.Flags})
		g.forward(m, g.targets)
		return
	}
	if view == nil || len(nbrIDs) == 0 {
		g.noteStuck(m, now)
		return
	}

	selfPos := g.n.Pos()
	// Candidates: LDTG neighbors closer to the destination estimate ("if
	// there are neighbors closer to destination"), with a small progress
	// margin so pairs of nodes jostling past each other do not swap
	// custody every check.
	closer := g.closer[:0]
	selfD := selfPos.Dist(m.DstLoc)
	needD := selfD - g.cfg.ProgressHysteresis*g.n.Range()
	needD2 := needD * needD
	if needD <= 0 {
		needD2 = 0
	}
	for i, id := range nbrIDs {
		if d2 := nbrPts[i].Dist2(m.DstLoc); d2 < needD2 {
			closer = append(closer, cand{id: id, pos: nbrPts[i], d2: d2})
		}
	}
	g.closer = closer

	if len(closer) == 0 {
		if g.cfg.DisableFaceRouting {
			g.noteStuck(m, now)
			return
		}
		g.tryFaceRoute(m, nbrIDs, nbrPts, now)
		return
	}
	// Insertion sort by progress: candidate sets are small (spanner
	// degree), the input order (spanner output) is deterministic, and
	// sort.Slice's closure + reflection swapper would allocate twice per
	// routed message.
	for i := 1; i < len(closer); i++ {
		c := closer[i]
		j := i - 1
		for j >= 0 && closer[j].d2 > c.d2 {
			closer[j+1] = closer[j]
			j--
		}
		closer[j+1] = c
	}

	// Tree extraction (§2.3): Max = maximum progress (closest to the
	// destination), Min = least positive progress, Mid = median, with
	// Mid2/Mid3 interleaved for five-copy operation.
	pick := func(f dtn.TreeFlags) int {
		n := len(closer)
		switch f {
		case dtn.FlagMax:
			return 0
		case dtn.FlagMin:
			return n - 1
		case dtn.FlagMid:
			return n / 2
		case dtn.FlagMid2:
			return n / 4
		default: // FlagMid3
			return (3 * n) / 4
		}
	}
	g.targets = g.targets[:0]
	for _, f := range dtn.AllTreeFlags(5) {
		if !m.Flags.Has(f) {
			continue
		}
		c := closer[pick(f)]
		g.addTarget(c.id, f)
	}
	if st := g.state(m.ID); st != nil {
		st.hasStuck = false
		st.hasFace = false
		st.face = ldt.FaceState{}
		st.hasFailTopo = false
	}
	g.stats.GreedyForwards++
	g.forward(m, g.targets)
}

// topoSignature hashes the current LDTG neighbor id set (FNV-1a), used to
// detect whether the local topology changed since a face walk failed.
func topoSignature(nbrIDs []int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, id := range nbrIDs {
		h ^= uint64(id) + 1
		h *= prime64
	}
	return h
}

// tryFaceRoute handles a greedy local minimum: advance the message's face
// state on the planar LDTG, or store-and-wait when the face walk fails
// (mobility will change the topology before the next check). A failed
// walk is not retried until the local neighbor set changes — re-walking
// the same dead loop every check would burn transmissions for nothing.
func (g *GLR) tryFaceRoute(m *dtn.Message, nbrIDs []int, nbrPts []geom.Point, now float64) {
	// A single-neighbor local minimum is a dead end, not a face: handing
	// the message over just swaps the carrier inside an isolated pair.
	if len(nbrIDs) < 2 && !g.faceActive(m.ID) {
		g.noteStuck(m, now)
		return
	}
	sig := topoSignature(nbrIDs)
	if st := g.state(m.ID); st != nil {
		if st.hasFailTopo && st.failTopo == sig {
			g.noteStuck(m, now)
			return
		}
		if st.hasFailAt && now-st.failAt < g.cfg.FaceRetryBackoff {
			g.noteStuck(m, now)
			return
		}
	}
	st := g.ensureState(m.ID)
	st.hasFace = true
	next, dec := st.face.Step(g.n.ID(), g.n.Pos(), nbrIDs, nbrPts, m.DstLoc)
	switch dec {
	case ldt.FaceForward:
		g.stats.FaceForwards++
		st.hasFailTopo = false
		g.targets = append(g.targets[:0], hopTarget{dst: nbrIDs[next], flags: m.Flags})
		g.forward(m, g.targets)
	case ldt.FaceExitGreedy:
		// We are closer than the face entry point; greedy will resume at
		// the next check. Clear the face state and treat as waiting.
		st.hasFace = false
		st.face = ldt.FaceState{}
		g.noteStuck(m, now)
	case ldt.FaceFail:
		g.stats.FaceFailures++
		st.hasFace = false
		st.face = ldt.FaceState{}
		st.failTopo = sig
		st.hasFailTopo = true
		st.failAt = now
		st.hasFailAt = true
		g.noteStuck(m, now)
	}
}

// faceActive reports whether a face walk is in progress for the message.
func (g *GLR) faceActive(id dtn.MessageID) bool {
	st := g.state(id)
	return st != nil && st.hasFace && st.face.Active
}

// noteStuck starts (or checks) the stale-location stuck timer (§3.3).
// The remedy fires only "when the message reaches a node that is closest
// to a stale destination location": the carrier must have been stuck for
// the threshold AND be essentially at the claimed coordinates (within
// transmission range) with no destination in sight — then the estimate is
// re-drawn so the closest node "could deliver it out to another node to
// increase the delivery probability". A carrier merely far away from the
// estimate keeps waiting: mobility, not relocation, is the cure there.
func (g *GLR) noteStuck(m *dtn.Message, now float64) {
	st := g.ensureState(m.ID)
	if !st.hasStuck {
		st.stuckSince = now
		st.hasStuck = true
		return
	}
	if now-st.stuckSince < g.cfg.StaleRelocateAfter {
		return
	}
	if g.n.Pos().Dist(m.DstLoc) > g.n.Range() {
		return // not at the claimed location: keep store-and-waiting
	}
	g.stats.Relocations++
	m.DstLoc = g.n.Region().RandomPoint(g.n.Rand())
	m.DstLocTime = now
	m.DstLocKnown = false
	st.stuckSince = now
}
