package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want Sample
	}{
		{"empty", nil, Sample{}},
		{"single", []float64{3}, Sample{N: 1, Mean: 3, Min: 3, Max: 3}},
		{"pair", []float64{1, 3}, Sample{N: 2, Mean: 2, StdDev: math.Sqrt(2), Min: 1, Max: 3}},
		{"constant", []float64{5, 5, 5}, Sample{N: 3, Mean: 5, Min: 5, Max: 5}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Summarize(tt.xs)
			if got.N != tt.want.N || math.Abs(got.Mean-tt.want.Mean) > 1e-12 ||
				math.Abs(got.StdDev-tt.want.StdDev) > 1e-12 ||
				got.Min != tt.want.Min || got.Max != tt.want.Max {
				t.Errorf("Summarize = %+v, want %+v", got, tt.want)
			}
		})
	}
}

// Known Student-t critical values (two-sided) to 3 decimals.
func TestTCritical(t *testing.T) {
	tests := []struct {
		df    int
		level float64
		want  float64
	}{
		{9, 0.90, 1.833}, // the paper's setting: 10 runs, 90%
		{9, 0.95, 2.262},
		{1, 0.90, 6.314},
		{4, 0.99, 4.604},
		{29, 0.95, 2.045},
		{100, 0.90, 1.660},
	}
	for _, tt := range tests {
		got := tCritical(tt.df, tt.level)
		if math.Abs(got-tt.want) > 2e-3 {
			t.Errorf("tCritical(df=%d, level=%v) = %.4f, want %.3f", tt.df, tt.level, got, tt.want)
		}
	}
}

func TestTCriticalEdgeCases(t *testing.T) {
	if got := tCritical(0, 0.9); got != 0 {
		t.Errorf("df=0 should give 0, got %v", got)
	}
	if got := tCritical(5, 0); got != 0 {
		t.Errorf("level=0 should give 0, got %v", got)
	}
	if got := tCritical(5, 1); !math.IsInf(got, 1) {
		t.Errorf("level=1 should give +Inf, got %v", got)
	}
}

func TestTCDFSymmetry(t *testing.T) {
	for _, df := range []float64{1, 3, 9, 30} {
		for _, x := range []float64{0.5, 1, 2, 5} {
			if got := tCDF(x, df) + tCDF(-x, df); math.Abs(got-1) > 1e-10 {
				t.Errorf("tCDF(%v)+tCDF(-%v) = %v, want 1 (df=%v)", x, x, got, df)
			}
		}
	}
	if got := tCDF(0, 7); got != 0.5 {
		t.Errorf("tCDF(0) = %v, want 0.5", got)
	}
}

func TestConfidenceInterval(t *testing.T) {
	// Hand-checked example: xs with mean 10, sd 2, n = 4, 95% CI
	// halfwidth = 3.182 * 2 / 2 = 3.182.
	xs := []float64{8, 12, 8, 12}
	ci := ConfidenceInterval(xs, 0.95)
	if math.Abs(ci.Mean-10) > 1e-12 {
		t.Errorf("mean = %v, want 10", ci.Mean)
	}
	sd := Summarize(xs).StdDev
	want := 3.1824 * sd / 2
	if math.Abs(ci.HalfWidth-want) > 1e-2 {
		t.Errorf("halfwidth = %v, want %v", ci.HalfWidth, want)
	}
	if !ci.Contains(10) || ci.Contains(100) {
		t.Error("Contains misbehaves")
	}
	if math.Abs(ci.Lo()-(ci.Mean-ci.HalfWidth)) > 1e-12 ||
		math.Abs(ci.Hi()-(ci.Mean+ci.HalfWidth)) > 1e-12 {
		t.Error("Lo/Hi inconsistent")
	}
}

func TestConfidenceIntervalDegenerate(t *testing.T) {
	if ci := ConfidenceInterval(nil, 0.9); ci.HalfWidth != 0 || ci.Mean != 0 {
		t.Errorf("empty CI = %+v", ci)
	}
	if ci := ConfidenceInterval([]float64{7}, 0.9); ci.HalfWidth != 0 || ci.Mean != 7 {
		t.Errorf("single CI = %+v", ci)
	}
	if ci := ConfidenceInterval([]float64{4, 4, 4}, 0.9); ci.HalfWidth != 0 {
		t.Errorf("constant CI halfwidth = %v, want 0", ci.HalfWidth)
	}
}

// Property: the 90% CI over normal samples contains the true mean roughly
// 90% of the time (allow generous slack for 400 trials).
func TestCICoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const trials = 400
	const trueMean = 5.0
	hits := 0
	for i := 0; i < trials; i++ {
		xs := make([]float64, 10)
		for j := range xs {
			xs[j] = trueMean + rng.NormFloat64()*3
		}
		if ConfidenceInterval(xs, 0.90).Contains(trueMean) {
			hits++
		}
	}
	rate := float64(hits) / trials
	if rate < 0.84 || rate > 0.96 {
		t.Errorf("90%% CI coverage = %.3f, want ≈0.90", rate)
	}
}

// Property: CI halfwidth shrinks as sample size grows (for the same
// underlying distribution).
func TestCIShrinksWithN(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	width := func(n int) float64 {
		total := 0.0
		for rep := 0; rep < 20; rep++ {
			xs := make([]float64, n)
			for j := range xs {
				xs[j] = rng.NormFloat64()
			}
			total += ConfidenceInterval(xs, 0.9).HalfWidth
		}
		return total / 20
	}
	if w10, w100 := width(10), width(100); w100 >= w10 {
		t.Errorf("halfwidth should shrink with n: w10=%v w100=%v", w10, w100)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {-5, 1}, {110, 5}, {62.5, 3.5},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile should be NaN")
	}
}

func TestAccumulatorMatchesSummarize(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		var acc Accumulator
		for i, r := range raw {
			xs[i] = float64(r) / 7
			acc.Add(xs[i])
		}
		want := Summarize(xs)
		got := acc.Sample()
		tol := 1e-9 * (1 + math.Abs(want.Mean))
		return got.N == want.N &&
			math.Abs(got.Mean-want.Mean) < tol &&
			math.Abs(got.StdDev-want.StdDev) < 1e-6*(1+want.StdDev) &&
			got.Min == want.Min && got.Max == want.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var acc Accumulator
	if acc.N() != 0 || acc.Mean() != 0 || acc.Variance() != 0 {
		t.Error("zero-value accumulator should report zeros")
	}
}

func TestMeanCIString(t *testing.T) {
	ci := MeanCI{Mean: 120.2, HalfWidth: 8.5, N: 10}
	if got := ci.String(); got != "120.20±8.50" {
		t.Errorf("String = %q", got)
	}
}
