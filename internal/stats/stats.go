// Package stats provides the small statistical toolkit the paper's
// methodology requires: sample means, standard deviations, and Student-t
// confidence intervals ("all points ... are obtained as an average of 10
// different runs ... confidence intervals ... at 90% confidence level"),
// plus streaming accumulators used by the metrics collectors.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample summarises a batch of observations.
type Sample struct {
	N      int
	Mean   float64
	StdDev float64 // sample standard deviation (n−1 denominator)
	Min    float64
	Max    float64
}

// Summarize computes a Sample over xs. An empty input returns the zero
// Sample.
func Summarize(xs []float64) Sample {
	if len(xs) == 0 {
		return Sample{}
	}
	s := Sample{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// MeanCI holds a sample mean together with its confidence half-width, in
// the paper's "value ± halfwidth" presentation.
type MeanCI struct {
	Mean      float64
	HalfWidth float64
	N         int
}

// String renders the interval in the paper's table style.
func (m MeanCI) String() string {
	return fmt.Sprintf("%.2f±%.2f", m.Mean, m.HalfWidth)
}

// Lo returns the lower bound of the interval.
func (m MeanCI) Lo() float64 { return m.Mean - m.HalfWidth }

// Hi returns the upper bound of the interval.
func (m MeanCI) Hi() float64 { return m.Mean + m.HalfWidth }

// Contains reports whether x lies within the interval (inclusive).
func (m MeanCI) Contains(x float64) bool { return x >= m.Lo() && x <= m.Hi() }

// ConfidenceInterval returns the mean of xs with a two-sided Student-t
// confidence interval at the given level (e.g. 0.90). Fewer than two
// observations yield a zero half-width.
func ConfidenceInterval(xs []float64, level float64) MeanCI {
	s := Summarize(xs)
	ci := MeanCI{Mean: s.Mean, N: s.N}
	if s.N < 2 || s.StdDev == 0 {
		return ci
	}
	t := tCritical(s.N-1, level)
	ci.HalfWidth = t * s.StdDev / math.Sqrt(float64(s.N))
	return ci
}

// tCritical returns the two-sided Student-t critical value for the given
// degrees of freedom and confidence level, computed by bisection on the
// regularized incomplete beta function (no lookup tables, stdlib only).
func tCritical(df int, level float64) float64 {
	if df <= 0 {
		return 0
	}
	if level <= 0 {
		return 0
	}
	if level >= 1 {
		return math.Inf(1)
	}
	target := 1 - (1-level)/2 // upper-tail quantile, e.g. 0.95 for 90% CI
	lo, hi := 0.0, 1e3
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if tCDF(mid, float64(df)) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// tCDF is the CDF of Student's t distribution with df degrees of freedom,
// expressed through the regularized incomplete beta function.
func tCDF(t, df float64) float64 {
	if t == 0 {
		return 0.5
	}
	x := df / (df + t*t)
	p := 0.5 * regIncBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Numerical Recipes betacf).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(math.Log(x)*a+math.Log(1-x)*b+lbeta) / a
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x)
	}
	// Symmetry relation for faster convergence.
	lbetaSwap := math.Exp(math.Log(1-x)*b+math.Log(x)*a+lbeta) / b
	return 1 - lbetaSwap*betacf(b, a, 1-x)
}

func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between order statistics. Empty input returns NaN.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
