package stats

import "math"

// Accumulator is a streaming mean/variance/extrema tracker (Welford's
// algorithm). The zero value is ready to use.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		a.min = math.Min(a.min, x)
		a.max = math.Max(a.max, x)
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// N returns the number of observations.
func (a *Accumulator) N() int { return a.n }

// Mean returns the running mean, or 0 with no observations.
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the unbiased sample variance, or 0 for n < 2.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Min returns the smallest observation, or 0 with no observations.
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest observation, or 0 with no observations.
func (a *Accumulator) Max() float64 { return a.max }

// Sample converts the accumulated state into a Sample.
func (a *Accumulator) Sample() Sample {
	return Sample{N: a.n, Mean: a.mean, StdDev: a.StdDev(), Min: a.min, Max: a.max}
}
