package metrics

import (
	"testing"

	"glr/internal/dtn"
)

func TestHooksFire(t *testing.T) {
	c := NewCollector(4)
	var createdIDs []dtn.MessageID
	var deliveredFirst, deliveredDup int
	c.SetHooks(Hooks{
		Created: func(id dtn.MessageID, at float64, dst int) {
			createdIDs = append(createdIDs, id)
			if dst != 3 || at != 1.5 {
				t.Errorf("created hook got (dst=%d, at=%v)", dst, at)
			}
		},
		Delivered: func(id dtn.MessageID, createdAt, at float64, dst, hops int, first bool) {
			if createdAt != 1.5 || dst != 3 {
				t.Errorf("delivered hook got (createdAt=%v, dst=%d)", createdAt, dst)
			}
			if first {
				deliveredFirst++
				if at != 4.0 || hops != 2 {
					t.Errorf("first delivery hook got (at=%v, hops=%d)", at, hops)
				}
			} else {
				deliveredDup++
			}
		},
	})
	id := dtn.MessageID{Src: 0, Seq: 7}
	c.Created(id, 1.5, 3)
	if !c.Delivered(id, 4.0, 2) {
		t.Error("first delivery not reported as first")
	}
	if c.Delivered(id, 5.0, 4) {
		t.Error("duplicate reported as first")
	}
	if len(createdIDs) != 1 || createdIDs[0] != id {
		t.Errorf("created hook ids %v", createdIDs)
	}
	if deliveredFirst != 1 || deliveredDup != 1 {
		t.Errorf("delivered hook fired first=%d dup=%d, want 1/1", deliveredFirst, deliveredDup)
	}
}

func TestSnapshotTracksReport(t *testing.T) {
	c := NewCollector(2)
	a := dtn.MessageID{Src: 0, Seq: 0}
	b := dtn.MessageID{Src: 1, Seq: 0}
	c.Created(a, 1, 1)
	c.Created(b, 2, 0)
	c.Delivered(a, 3, 1)
	c.CountControlFrame()
	c.CountDataFrame()
	c.CountAck()

	snap := c.Snapshot()
	if snap.Generated != 2 || snap.Delivered != 1 || snap.Duplicates != 0 {
		t.Errorf("snapshot counters %+v", snap)
	}
	if snap.LatencySum != 2 {
		t.Errorf("latency sum %v, want 2", snap.LatencySum)
	}
	if snap.ControlFrames != 1 || snap.DataFrames != 1 || snap.Acks != 1 {
		t.Errorf("frame counters %+v", snap)
	}

	c.Delivered(b, 6, 3)
	c.Delivered(b, 7, 4) // duplicate
	snap = c.Snapshot()
	if snap.Delivered != 2 || snap.Duplicates != 1 {
		t.Errorf("snapshot after dup %+v", snap)
	}
	if snap.LatencySum != 6 {
		t.Errorf("latency sum %v, want 6", snap.LatencySum)
	}

	rep := c.Report()
	wantAvg := snap.LatencySum / float64(snap.Delivered)
	if rep.AvgLatency != wantAvg {
		t.Errorf("report latency %v, snapshot-derived %v", rep.AvgLatency, wantAvg)
	}
	if rep.Generated != snap.Generated || rep.Delivered != snap.Delivered {
		t.Errorf("report/snapshot mismatch: %+v vs %+v", rep, snap)
	}
}

func TestNoHooksIsSafe(t *testing.T) {
	c := NewCollector(1)
	id := dtn.MessageID{Src: 0, Seq: 0}
	c.Created(id, 0, 0)
	c.Delivered(id, 1, 1)
	c.Delivered(id, 2, 2)
	if got := c.Snapshot().Duplicates; got != 1 {
		t.Errorf("duplicates %d, want 1", got)
	}
}
