// Package metrics collects the per-run observables the paper reports:
// delivery ratio, average delivery latency (first-copy arrival), average
// hop count over delivered messages, and per-node peak storage occupancy
// ("max peak storage" / "average peak storage" in Tables 4–5).
package metrics

import (
	"sort"

	"glr/internal/dtn"
	"glr/internal/stats"
)

// Collector accumulates one simulation run's observables. It is not
// goroutine-safe; each run owns its collector.
type Collector struct {
	created    map[dtn.MessageID]createdInfo
	delivered  map[dtn.MessageID]deliveredInfo
	duplicates int
	// latencySum accumulates first-copy latencies in delivery order so
	// Snapshot can report a running mean without walking the maps. The
	// final Report still sums in sorted-id order (see Report).
	latencySum float64

	peakStorage []int // per node

	controlFrames uint64
	dataFrames    uint64
	acks          uint64

	hooks Hooks
}

// Hooks are optional per-event callbacks observers attach to a
// collector. Callbacks fire synchronously on the simulation goroutine,
// after the collector's own state is updated; they must not mutate the
// run. Nil members are skipped.
type Hooks struct {
	// Created fires when a message is generated.
	Created func(id dtn.MessageID, at float64, dst int)
	// Delivered fires when a copy arrives at its destination. first is
	// true for the copy that counts (latency/hops), false for
	// duplicates. createdAt and dst echo the generation record.
	Delivered func(id dtn.MessageID, createdAt, at float64, dst, hops int, first bool)
}

// SetHooks installs per-event callbacks (replacing any previous set).
func (c *Collector) SetHooks(h Hooks) { c.hooks = h }

type createdInfo struct {
	at  float64
	dst int
}

type deliveredInfo struct {
	at   float64
	hops int
}

// NewCollector returns a collector for n nodes.
func NewCollector(n int) *Collector {
	return &Collector{
		created:     make(map[dtn.MessageID]createdInfo),
		delivered:   make(map[dtn.MessageID]deliveredInfo),
		peakStorage: make([]int, n),
	}
}

// Created records a message generation.
func (c *Collector) Created(id dtn.MessageID, at float64, dst int) {
	c.created[id] = createdInfo{at: at, dst: dst}
	if c.hooks.Created != nil {
		c.hooks.Created(id, at, dst)
	}
}

// Delivered records an arrival at the destination. Only the first copy
// counts for latency/hops; later copies increment the duplicate counter.
// It reports whether this was the first arrival.
func (c *Collector) Delivered(id dtn.MessageID, at float64, hops int) bool {
	first := true
	if _, dup := c.delivered[id]; dup {
		c.duplicates++
		first = false
	} else {
		c.delivered[id] = deliveredInfo{at: at, hops: hops}
		if created, ok := c.created[id]; ok {
			c.latencySum += at - created.at
		}
	}
	if c.hooks.Delivered != nil {
		ci := c.created[id]
		c.hooks.Delivered(id, ci.at, at, ci.dst, hops, first)
	}
	return first
}

// Snapshot is the running digest Snapshot returns: counters so far, for
// periodic samplers observing a run in flight.
type Snapshot struct {
	Generated  int
	Delivered  int
	Duplicates int
	// LatencySum is the sum of first-copy latencies of the Delivered
	// messages (accumulated in delivery order; the end-of-run Report
	// recomputes means in sorted-id order).
	LatencySum    float64
	ControlFrames uint64
	DataFrames    uint64
	Acks          uint64
}

// Snapshot returns the counters accumulated so far. O(1); safe to call
// mid-run from the simulation goroutine.
func (c *Collector) Snapshot() Snapshot {
	return Snapshot{
		Generated:     len(c.created),
		Delivered:     len(c.delivered),
		Duplicates:    c.duplicates,
		LatencySum:    c.latencySum,
		ControlFrames: c.controlFrames,
		DataFrames:    c.dataFrames,
		Acks:          c.acks,
	}
}

// IsDelivered reports whether the message has already reached its
// destination (used by protocols to stop forwarding stale copies).
func (c *Collector) IsDelivered(id dtn.MessageID) bool {
	_, ok := c.delivered[id]
	return ok
}

// SampleStorage folds a storage-occupancy observation for a node into its
// running peak.
func (c *Collector) SampleStorage(node, used int) {
	if used > c.peakStorage[node] {
		c.peakStorage[node] = used
	}
}

// CountControlFrame increments the control-plane frame counter (beacons,
// summary vectors, location queries, acks...).
func (c *Collector) CountControlFrame() { c.controlFrames++ }

// CountDataFrame increments the data-plane frame counter.
func (c *Collector) CountDataFrame() { c.dataFrames++ }

// CountAck increments the custody-ack counter.
func (c *Collector) CountAck() { c.acks++ }

// Report is the digest of one run.
type Report struct {
	Generated      int
	Delivered      int
	DeliveryRatio  float64
	AvgLatency     float64 // seconds, over delivered messages
	AvgHops        float64 // over delivered messages
	MaxPeakStorage int     // max over nodes of per-node peak occupancy
	AvgPeakStorage float64
	Duplicates     int
	ControlFrames  uint64
	DataFrames     uint64
	Acks           uint64
}

// Report digests the collector.
func (c *Collector) Report() Report {
	r := Report{
		Generated:     len(c.created),
		Delivered:     len(c.delivered),
		Duplicates:    c.duplicates,
		ControlFrames: c.controlFrames,
		DataFrames:    c.dataFrames,
		Acks:          c.acks,
	}
	if r.Generated > 0 {
		r.DeliveryRatio = float64(r.Delivered) / float64(r.Generated)
	}
	// Accumulate in sorted id order: float summation order must not
	// depend on map iteration, or identical runs would differ in the
	// last bits of their means.
	var lat, hops stats.Accumulator
	for _, id := range c.deliveredIDs() {
		created, ok := c.created[id]
		if !ok {
			continue
		}
		d := c.delivered[id]
		lat.Add(d.at - created.at)
		hops.Add(float64(d.hops))
	}
	r.AvgLatency = lat.Mean()
	r.AvgHops = hops.Mean()
	var peak stats.Accumulator
	for _, p := range c.peakStorage {
		if p > r.MaxPeakStorage {
			r.MaxPeakStorage = p
		}
		peak.Add(float64(p))
	}
	r.AvgPeakStorage = peak.Mean()
	return r
}

// Latencies returns the delivery latencies of all delivered messages in
// deterministic (message-id) order, for distribution plots.
func (c *Collector) Latencies() []float64 {
	out := make([]float64, 0, len(c.delivered))
	for _, id := range c.deliveredIDs() {
		if created, ok := c.created[id]; ok {
			out = append(out, c.delivered[id].at-created.at)
		}
	}
	return out
}

// deliveredIDs returns delivered message ids sorted by (src, seq).
func (c *Collector) deliveredIDs() []dtn.MessageID {
	ids := make([]dtn.MessageID, 0, len(c.delivered))
	for id := range c.delivered {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].Src != ids[j].Src {
			return ids[i].Src < ids[j].Src
		}
		return ids[i].Seq < ids[j].Seq
	})
	return ids
}
