package metrics

import (
	"math"
	"testing"

	"glr/internal/dtn"
)

func id(src, seq int) dtn.MessageID { return dtn.MessageID{Src: src, Seq: seq} }

func TestDeliveryAccounting(t *testing.T) {
	c := NewCollector(3)
	c.Created(id(0, 0), 10, 1)
	c.Created(id(0, 1), 20, 2)
	if !c.Delivered(id(0, 0), 15, 3) {
		t.Error("first delivery should report true")
	}
	if c.Delivered(id(0, 0), 16, 4) {
		t.Error("duplicate delivery should report false")
	}
	if !c.IsDelivered(id(0, 0)) || c.IsDelivered(id(0, 1)) {
		t.Error("IsDelivered wrong")
	}
	r := c.Report()
	if r.Generated != 2 || r.Delivered != 1 || r.Duplicates != 1 {
		t.Errorf("report = %+v", r)
	}
	if r.DeliveryRatio != 0.5 {
		t.Errorf("ratio = %v, want 0.5", r.DeliveryRatio)
	}
	if r.AvgLatency != 5 {
		t.Errorf("latency = %v, want 5 (first copy only)", r.AvgLatency)
	}
	if r.AvgHops != 3 {
		t.Errorf("hops = %v, want 3", r.AvgHops)
	}
}

func TestEmptyReport(t *testing.T) {
	r := NewCollector(2).Report()
	if r.DeliveryRatio != 0 || r.AvgLatency != 0 || r.Generated != 0 {
		t.Errorf("empty report = %+v", r)
	}
}

func TestPeakStorage(t *testing.T) {
	c := NewCollector(3)
	c.SampleStorage(0, 5)
	c.SampleStorage(0, 3) // below peak: ignored
	c.SampleStorage(1, 10)
	c.SampleStorage(2, 0)
	r := c.Report()
	if r.MaxPeakStorage != 10 {
		t.Errorf("MaxPeakStorage = %d, want 10", r.MaxPeakStorage)
	}
	if math.Abs(r.AvgPeakStorage-5) > 1e-12 {
		t.Errorf("AvgPeakStorage = %v, want 5", r.AvgPeakStorage)
	}
}

func TestFrameCounters(t *testing.T) {
	c := NewCollector(1)
	c.CountControlFrame()
	c.CountControlFrame()
	c.CountDataFrame()
	c.CountAck()
	r := c.Report()
	if r.ControlFrames != 2 || r.DataFrames != 1 || r.Acks != 1 {
		t.Errorf("counters = %+v", r)
	}
}

func TestLatencies(t *testing.T) {
	c := NewCollector(1)
	c.Created(id(0, 0), 0, 0)
	c.Created(id(0, 1), 10, 0)
	c.Delivered(id(0, 0), 7, 1)
	c.Delivered(id(0, 1), 25, 1)
	lats := c.Latencies()
	if len(lats) != 2 {
		t.Fatalf("got %d latencies", len(lats))
	}
	sum := lats[0] + lats[1]
	if sum != 22 { // 7 + 15
		t.Errorf("latencies = %v", lats)
	}
}

func TestDeliveredWithoutCreated(t *testing.T) {
	// Robustness: a delivery with no matching creation must not poison
	// the averages.
	c := NewCollector(1)
	c.Created(id(0, 0), 0, 0)
	c.Delivered(id(9, 9), 5, 2) // unknown creation
	c.Delivered(id(0, 0), 8, 4)
	r := c.Report()
	if r.AvgLatency != 8 || r.AvgHops != 4 {
		t.Errorf("unknown-creation delivery should be excluded from averages: %+v", r)
	}
}
