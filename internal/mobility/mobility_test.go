package mobility

import (
	"math"
	"math/rand"
	"testing"

	"glr/internal/geom"
)

var testRegion = Region{W: 1500, H: 300}

func testWaypointConfig() WaypointConfig {
	return WaypointConfig{Region: testRegion, MinSpeed: 0, MaxSpeed: 20, Pause: 0}
}

func TestWaypointConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*WaypointConfig)
		wantErr bool
	}{
		{"valid", func(*WaypointConfig) {}, false},
		{"zero width", func(c *WaypointConfig) { c.Region.W = 0 }, true},
		{"zero height", func(c *WaypointConfig) { c.Region.H = 0 }, true},
		{"zero max speed", func(c *WaypointConfig) { c.MaxSpeed = 0 }, true},
		{"min above max", func(c *WaypointConfig) { c.MinSpeed = 30 }, true},
		{"negative pause", func(c *WaypointConfig) { c.Pause = -1 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := testWaypointConfig()
			tt.mutate(&cfg)
			err := cfg.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestWaypointStaysInRegion(t *testing.T) {
	w, err := NewWaypoint(testWaypointConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for ti := 0; ti <= 4000; ti++ {
		p := w.Position(float64(ti))
		if !testRegion.Contains(p) {
			t.Fatalf("position %v at t=%d outside region", p, ti)
		}
	}
}

func TestWaypointSpeedBounded(t *testing.T) {
	cfg := testWaypointConfig()
	w, err := NewWaypoint(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	const dt = 0.1
	for ti := 0; ti < 20000; ti++ {
		t0 := float64(ti) * dt
		d := w.Position(t0).Dist(w.Position(t0 + dt))
		if d > cfg.MaxSpeed*dt*(1+1e-9) {
			t.Fatalf("node moved %v m in %v s — exceeds max speed %v", d, dt, cfg.MaxSpeed)
		}
	}
}

func TestWaypointDeterministicAndStable(t *testing.T) {
	w1, _ := NewWaypoint(testWaypointConfig(), 77)
	w2, _ := NewWaypoint(testWaypointConfig(), 77)
	// Query w1 monotonically, w2 in a scrambled order; trajectories must
	// be identical functions of t regardless of query pattern.
	times := []float64{10, 500, 3, 1200, 0, 999.5, 10}
	mono := make([]geom.Point, 0, len(times))
	for _, tt := range []float64{0, 3, 10, 500, 999.5, 1200} {
		mono = append(mono, w1.Position(tt))
	}
	_ = mono
	for _, tt := range times {
		p1 := w1.Position(tt)
		p2 := w2.Position(tt)
		if !p1.Eq(p2) {
			t.Fatalf("same seed diverged at t=%v: %v vs %v", tt, p1, p2)
		}
	}
}

func TestWaypointDifferentSeedsDiffer(t *testing.T) {
	w1, _ := NewWaypoint(testWaypointConfig(), 1)
	w2, _ := NewWaypoint(testWaypointConfig(), 2)
	same := true
	for _, tt := range []float64{0, 100, 200} {
		if !w1.Position(tt).Eq(w2.Position(tt)) {
			same = false
		}
	}
	if same {
		t.Error("different seeds should produce different trajectories")
	}
}

func TestWaypointPause(t *testing.T) {
	cfg := testWaypointConfig()
	cfg.Pause = 50
	cfg.MinSpeed = 19
	cfg.MaxSpeed = 20
	w, err := NewWaypoint(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	// At some instant the node must be pausing: scan pairs and confirm at
	// least one long still period exists.
	still := 0
	for ti := 0; ti < 5000; ti++ {
		a := w.Position(float64(ti))
		b := w.Position(float64(ti) + 1)
		if a.Dist(b) == 0 {
			still++
		}
	}
	if still == 0 {
		t.Error("with 50s pauses the node should be observed standing still")
	}
}

func TestWaypointNegativeTimeClamped(t *testing.T) {
	w, _ := NewWaypoint(testWaypointConfig(), 4)
	if !w.Position(-5).Eq(w.Position(0)) {
		t.Error("negative time should clamp to start position")
	}
}

func TestStatic(t *testing.T) {
	s := Static{P: geom.Pt(5, 7)}
	for _, tt := range []float64{0, 1, 1e6} {
		if !s.Position(tt).Eq(geom.Pt(5, 7)) {
			t.Fatal("static node moved")
		}
	}
}

func TestRandomWalkStaysInRegion(t *testing.T) {
	cfg := RandomWalkConfig{Region: Region{W: 100, H: 100}, MinSpeed: 1, MaxSpeed: 10, LegTime: 5}
	w, err := NewRandomWalk(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	for ti := 0; ti <= 2000; ti++ {
		p := w.Position(float64(ti) * 0.5)
		if !cfg.Region.Contains(p) {
			t.Fatalf("random walk escaped region: %v", p)
		}
	}
}

func TestRandomWalkValidation(t *testing.T) {
	valid := RandomWalkConfig{Region: Region{W: 10, H: 10}, MaxSpeed: 5, LegTime: 1}
	if _, err := NewRandomWalk(valid, 1); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []RandomWalkConfig{
		{Region: Region{W: 0, H: 10}, MaxSpeed: 5, LegTime: 1},
		{Region: Region{W: 10, H: 10}, MaxSpeed: 0, LegTime: 1},
		{Region: Region{W: 10, H: 10}, MaxSpeed: 5, LegTime: 0},
		{Region: Region{W: 10, H: 10}, MinSpeed: 9, MaxSpeed: 5, LegTime: 1},
	}
	for i, cfg := range bad {
		if _, err := NewRandomWalk(cfg, 1); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestReflectInto(t *testing.T) {
	r := Region{W: 10, H: 10}
	tests := []struct {
		in   geom.Point
		want geom.Point
	}{
		{geom.Pt(5, 5), geom.Pt(5, 5)},
		{geom.Pt(12, 5), geom.Pt(8, 5)},  // past right wall: bounce back
		{geom.Pt(-3, 5), geom.Pt(3, 5)},  // past left wall
		{geom.Pt(5, 13), geom.Pt(5, 7)},  // past top
		{geom.Pt(25, 5), geom.Pt(5, 5)},  // full period: back to start
		{geom.Pt(5, -14), geom.Pt(5, 6)}, // multiple bounces
	}
	for _, tt := range tests {
		got := reflectInto(tt.in, r)
		if got.Dist(tt.want) > 1e-9 {
			t.Errorf("reflectInto(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestTrace(t *testing.T) {
	tr, err := NewTrace([]TracePoint{
		{T: 0, P: geom.Pt(0, 0)},
		{T: 10, P: geom.Pt(10, 0)},
		{T: 20, P: geom.Pt(10, 20)},
	})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		at   float64
		want geom.Point
	}{
		{-1, geom.Pt(0, 0)},
		{0, geom.Pt(0, 0)},
		{5, geom.Pt(5, 0)},
		{10, geom.Pt(10, 0)},
		{15, geom.Pt(10, 10)},
		{20, geom.Pt(10, 20)},
		{99, geom.Pt(10, 20)},
	}
	for _, tt := range tests {
		if got := tr.Position(tt.at); got.Dist(tt.want) > 1e-9 {
			t.Errorf("Position(%v) = %v, want %v", tt.at, got, tt.want)
		}
	}
}

func TestTraceValidation(t *testing.T) {
	if _, err := NewTrace(nil); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := NewTrace([]TracePoint{{T: 0}, {T: 0}}); err == nil {
		t.Error("non-increasing trace accepted")
	}
}

func TestUniformStatic(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	models := UniformStatic(50, testRegion, rng)
	if len(models) != 50 {
		t.Fatalf("got %d models", len(models))
	}
	for _, m := range models {
		if !testRegion.Contains(m.Position(0)) {
			t.Fatal("static node outside region")
		}
	}
}

func TestWaypointField(t *testing.T) {
	models, err := WaypointField(10, testWaypointConfig(), 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 10 {
		t.Fatalf("got %d models", len(models))
	}
	// Node trajectories must be mutually distinct.
	distinct := false
	for i := 1; i < len(models); i++ {
		if !models[0].Position(100).Eq(models[i].Position(100)) {
			distinct = true
		}
	}
	if !distinct {
		t.Error("waypoint field nodes share a trajectory")
	}
	// Reproducibility across constructions.
	again, _ := WaypointField(10, testWaypointConfig(), 42)
	for i := range models {
		if !models[i].Position(500).Eq(again[i].Position(500)) {
			t.Fatal("field not reproducible for identical seed")
		}
	}
}

func TestWaypointCoversRegion(t *testing.T) {
	// Over a long horizon the node should visit all four quadrants — a
	// weak ergodicity check guarding against stuck trajectories.
	w, _ := NewWaypoint(testWaypointConfig(), 9)
	var q [4]bool
	for ti := 0; ti < 40000; ti++ {
		p := w.Position(float64(ti))
		qi := 0
		if p.X > testRegion.W/2 {
			qi++
		}
		if p.Y > testRegion.H/2 {
			qi += 2
		}
		q[qi] = true
	}
	for i, visited := range q {
		if !visited {
			t.Errorf("quadrant %d never visited", i)
		}
	}
}

func TestRegionHelpers(t *testing.T) {
	r := Region{W: 4, H: 2}
	if r.Area() != 8 {
		t.Errorf("Area = %v, want 8", r.Area())
	}
	if !r.Contains(geom.Pt(0, 0)) || !r.Contains(geom.Pt(4, 2)) {
		t.Error("region should contain its corners")
	}
	if r.Contains(geom.Pt(4.1, 1)) || r.Contains(geom.Pt(-0.1, 1)) {
		t.Error("region should exclude outside points")
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		if p := r.RandomPoint(rng); !r.Contains(p) {
			t.Fatalf("RandomPoint outside region: %v", p)
		}
	}
}

func TestWaypointLipschitzContinuity(t *testing.T) {
	// |pos(t+h) − pos(t)| ≤ maxSpeed·h for all t, h — continuity of the
	// analytic trajectory across leg boundaries.
	w, _ := NewWaypoint(testWaypointConfig(), 10)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		t0 := rng.Float64() * 3800
		h := rng.Float64() * 2
		d := w.Position(t0).Dist(w.Position(t0 + h))
		if d > 20*h+1e-9 {
			t.Fatalf("discontinuity: moved %v in %v s at t=%v", d, h, t0)
		}
	}
}

func BenchmarkWaypointPosition(b *testing.B) {
	w, _ := NewWaypoint(testWaypointConfig(), 12)
	w.Position(3800) // pre-generate legs
	rng := rand.New(rand.NewSource(13))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Position(rng.Float64() * 3800)
	}
}

func TestWaypointLegInvariants(t *testing.T) {
	w, _ := NewWaypoint(testWaypointConfig(), 14)
	w.Position(2000)
	for i, l := range w.legs {
		if l.t1 < l.t0 {
			t.Fatalf("leg %d has negative duration", i)
		}
		if i > 0 {
			prev := w.legs[i-1]
			if math.Abs(prev.end()-l.t0) > 1e-9 {
				t.Fatalf("gap between legs %d and %d", i-1, i)
			}
			if !prev.to.Eq(l.from) {
				t.Fatalf("leg %d does not start where %d ended", i, i-1)
			}
		}
	}
}
