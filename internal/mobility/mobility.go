// Package mobility provides node movement models for the simulator: the
// random waypoint model used by the paper (NS-2 setdest equivalent), plus
// static placements, a reflecting random walk, and scripted traces.
//
// Models expose an analytic Position(t): the discrete-event simulator never
// steps positions forward tick by tick; it evaluates the trajectory exactly
// at event times. Trajectories are generated lazily but remembered, so
// Position may be queried at arbitrary (also non-monotone) times ≥ 0 and
// always returns the same answer for the same t.
//
// A single model instance is NOT safe for concurrent use (lazy trajectory
// extension mutates internal state, and the randomized models each own a
// private RNG), but distinct instances share nothing — every stochastic
// model is seeded with its own stream precisely so trajectories never
// depend on cross-node query interleaving. The sharded engine's parallel
// planes rely on exactly this split: any partition of nodes across workers
// may query positions concurrently, provided each node's model is touched
// by exactly one worker per fork, and the returned positions are
// byte-identical to any serial query order.
package mobility

import (
	"fmt"
	"math"
	"math/rand"

	"glr/internal/geom"
)

// Model yields a node's position at any simulated time t ≥ 0.
type Model interface {
	Position(t float64) geom.Point
}

// Region is an axis-aligned rectangle [0,W]×[0,H] in metres.
type Region struct {
	W, H float64
}

// Contains reports whether p lies inside the region (inclusive).
func (r Region) Contains(p geom.Point) bool {
	return p.X >= 0 && p.X <= r.W && p.Y >= 0 && p.Y <= r.H
}

// Area returns the region's area in square metres.
func (r Region) Area() float64 { return r.W * r.H }

// RandomPoint returns a uniform point in the region.
func (r Region) RandomPoint(rng *rand.Rand) geom.Point {
	return geom.Pt(rng.Float64()*r.W, rng.Float64()*r.H)
}

// Static is a model that never moves.
type Static struct {
	P geom.Point
}

// Position implements Model.
func (s Static) Position(float64) geom.Point { return s.P }

// WaypointConfig parameterises the random waypoint model. The paper's
// setting is MinSpeed≈0, MaxSpeed=20 m/s, Pause=0 on a 1500×300 m region.
type WaypointConfig struct {
	Region   Region
	MinSpeed float64 // m/s; clamped up to a small positive floor
	MaxSpeed float64 // m/s
	Pause    float64 // seconds at each waypoint
}

// speedFloor avoids the classical random-waypoint pathology where speeds
// drawn arbitrarily close to zero make a node crawl for unbounded time.
const speedFloor = 0.1

// Validate reports a descriptive error for nonsensical configurations.
func (c WaypointConfig) Validate() error {
	if c.Region.W <= 0 || c.Region.H <= 0 {
		return fmt.Errorf("mobility: region %vx%v must be positive", c.Region.W, c.Region.H)
	}
	if c.MaxSpeed <= 0 {
		return fmt.Errorf("mobility: max speed %v must be positive", c.MaxSpeed)
	}
	if c.MinSpeed > c.MaxSpeed {
		return fmt.Errorf("mobility: min speed %v exceeds max %v", c.MinSpeed, c.MaxSpeed)
	}
	if c.Pause < 0 {
		return fmt.Errorf("mobility: pause %v must be nonnegative", c.Pause)
	}
	return nil
}

// leg is one movement episode: travel from from to to over [t0, t1], then
// stand still at to until t1+pause.
type leg struct {
	t0, t1 float64
	from   geom.Point
	to     geom.Point
	pause  float64
}

func (l leg) end() float64 { return l.t1 + l.pause }

func (l leg) at(t float64) geom.Point {
	if t >= l.t1 {
		return l.to
	}
	if t <= l.t0 {
		return l.from
	}
	return l.from.Lerp(l.to, (t-l.t0)/(l.t1-l.t0))
}

// Waypoint is the random waypoint mobility model: pick a uniform
// destination in the region, travel to it in a straight line at a uniform
// random speed, pause, repeat.
type Waypoint struct {
	cfg  WaypointConfig
	rng  *rand.Rand
	legs []leg
}

// NewWaypoint creates a waypoint model with its own RNG stream (the model
// consumes randomness lazily; sharing an rng across models would make
// trajectories depend on query interleaving, destroying reproducibility).
func NewWaypoint(cfg WaypointConfig, seed int64) (*Waypoint, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w := &Waypoint{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
	start := cfg.Region.RandomPoint(w.rng)
	w.legs = append(w.legs, w.nextLeg(0, start))
	return w, nil
}

func (w *Waypoint) nextLeg(t0 float64, from geom.Point) leg {
	to := w.cfg.Region.RandomPoint(w.rng)
	lo := math.Max(w.cfg.MinSpeed, speedFloor)
	hi := math.Max(w.cfg.MaxSpeed, lo)
	speed := lo + w.rng.Float64()*(hi-lo)
	dist := from.Dist(to)
	dur := dist / speed
	if dur == 0 {
		dur = 1e-9 // degenerate zero-length hop; keep time advancing
	}
	return leg{t0: t0, t1: t0 + dur, from: from, to: to, pause: w.cfg.Pause}
}

// Position implements Model.
func (w *Waypoint) Position(t float64) geom.Point {
	if t < 0 {
		t = 0
	}
	for w.legs[len(w.legs)-1].end() < t {
		last := w.legs[len(w.legs)-1]
		w.legs = append(w.legs, w.nextLeg(last.end(), last.to))
	}
	// Binary search for the covering leg.
	lo, hi := 0, len(w.legs)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if w.legs[mid].end() < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return w.legs[lo].at(t)
}

// RandomWalkConfig parameterises the reflecting random walk model.
type RandomWalkConfig struct {
	Region   Region
	MinSpeed float64
	MaxSpeed float64
	LegTime  float64 // duration of each straight leg, seconds
}

// RandomWalk moves in a uniformly random direction for LegTime seconds at a
// uniform random speed, reflecting off region boundaries.
type RandomWalk struct {
	cfg  RandomWalkConfig
	rng  *rand.Rand
	legs []leg
}

// NewRandomWalk creates a random-walk model with its own RNG stream.
func NewRandomWalk(cfg RandomWalkConfig, seed int64) (*RandomWalk, error) {
	if cfg.Region.W <= 0 || cfg.Region.H <= 0 {
		return nil, fmt.Errorf("mobility: region %vx%v must be positive", cfg.Region.W, cfg.Region.H)
	}
	if cfg.LegTime <= 0 {
		return nil, fmt.Errorf("mobility: leg time %v must be positive", cfg.LegTime)
	}
	if cfg.MaxSpeed <= 0 || cfg.MinSpeed > cfg.MaxSpeed {
		return nil, fmt.Errorf("mobility: bad speed range [%v,%v]", cfg.MinSpeed, cfg.MaxSpeed)
	}
	w := &RandomWalk{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
	start := cfg.Region.RandomPoint(w.rng)
	w.legs = append(w.legs, w.nextLeg(0, start))
	return w, nil
}

func (w *RandomWalk) nextLeg(t0 float64, from geom.Point) leg {
	theta := w.rng.Float64() * 2 * math.Pi
	lo := math.Max(w.cfg.MinSpeed, speedFloor)
	hi := math.Max(w.cfg.MaxSpeed, lo)
	speed := lo + w.rng.Float64()*(hi-lo)
	raw := from.Add(geom.Pt(math.Cos(theta), math.Sin(theta)).Scale(speed * w.cfg.LegTime))
	to := reflectInto(raw, w.cfg.Region)
	return leg{t0: t0, t1: t0 + w.cfg.LegTime, from: from, to: to}
}

// reflectInto mirrors p across region boundaries until it falls inside,
// implementing a billiard reflection of the leg endpoint.
func reflectInto(p geom.Point, r Region) geom.Point {
	reflect1 := func(x, lim float64) float64 {
		if lim <= 0 {
			return 0
		}
		period := 2 * lim
		x = math.Mod(x, period)
		if x < 0 {
			x += period
		}
		if x > lim {
			x = period - x
		}
		return x
	}
	return geom.Pt(reflect1(p.X, r.W), reflect1(p.Y, r.H))
}

// Position implements Model.
func (w *RandomWalk) Position(t float64) geom.Point {
	if t < 0 {
		t = 0
	}
	for w.legs[len(w.legs)-1].end() < t {
		last := w.legs[len(w.legs)-1]
		w.legs = append(w.legs, w.nextLeg(last.end(), last.to))
	}
	lo, hi := 0, len(w.legs)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if w.legs[mid].end() < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return w.legs[lo].at(t)
}

// TracePoint is one scripted waypoint: be at P at time T.
type TracePoint struct {
	T float64
	P geom.Point
}

// Trace replays a scripted trajectory, interpolating linearly between
// waypoints and holding the last position afterwards.
type Trace struct {
	pts []TracePoint
}

// NewTrace builds a trace model. Waypoints must have strictly increasing
// times and there must be at least one.
func NewTrace(pts []TracePoint) (*Trace, error) {
	if len(pts) == 0 {
		return nil, fmt.Errorf("mobility: trace needs at least one waypoint")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].T <= pts[i-1].T {
			return nil, fmt.Errorf("mobility: trace times must be strictly increasing (index %d)", i)
		}
	}
	cp := make([]TracePoint, len(pts))
	copy(cp, pts)
	return &Trace{pts: cp}, nil
}

// Position implements Model.
func (tr *Trace) Position(t float64) geom.Point {
	pts := tr.pts
	if t <= pts[0].T {
		return pts[0].P
	}
	for i := 1; i < len(pts); i++ {
		if t <= pts[i].T {
			a, b := pts[i-1], pts[i]
			frac := (t - a.T) / (b.T - a.T)
			return a.P.Lerp(b.P, frac)
		}
	}
	return pts[len(pts)-1].P
}

// UniformStatic places n static nodes uniformly at random in the region
// using rng, returning one model per node. Used for Figure-1 style
// connectivity studies.
func UniformStatic(n int, r Region, rng *rand.Rand) []Model {
	models := make([]Model, n)
	for i := range models {
		models[i] = Static{P: r.RandomPoint(rng)}
	}
	return models
}

// WaypointField creates n independent waypoint models seeded from seed,
// one RNG stream per node.
func WaypointField(n int, cfg WaypointConfig, seed int64) ([]Model, error) {
	models := make([]Model, n)
	for i := range models {
		m, err := NewWaypoint(cfg, seed+int64(i)*7919)
		if err != nil {
			return nil, err
		}
		models[i] = m
	}
	return models, nil
}
