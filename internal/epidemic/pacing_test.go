package epidemic

import (
	"testing"

	"glr/internal/mobility"
	"glr/internal/sim"
)

func TestTokenBucketPacesTransfers(t *testing.T) {
	// A static pair with many messages: with a tight data budget, the
	// count of transferred messages over a fixed window is bounded by
	// rate×time + burst.
	s := denseScenario(31)
	s.Mobility = sim.MobilityStatic
	s.N = 2
	s.Region = mobility.Region{W: 100, H: 100} // guaranteed in range
	s.SimTime = 60
	s.Traffic = nil
	for i := 0; i < 120; i++ {
		s.Traffic = append(s.Traffic, sim.TrafficItem{Src: 0, Dst: 1, At: 0.1})
	}
	cfg := DefaultConfig()
	cfg.DataSendRate = 2 // 2 msgs/s
	factory, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var instances []*Epidemic
	w, err := sim.NewWorld(s, func(n *sim.Node) sim.Protocol {
		p := factory(n)
		instances = append(instances, p.(*Epidemic))
		return p
	})
	if err != nil {
		t.Fatal(err)
	}
	r := w.Run()
	// 60 s at 2 msg/s + burst(MaxBatch) is the ceiling for node 1's
	// receptions; beacons and sv overhead make the practical number
	// lower. All messages are distinct (Seq differs), dst is node 1.
	maxExpected := int(cfg.DataSendRate*s.SimTime) + cfg.MaxBatch
	if r.Delivered > maxExpected {
		t.Errorf("delivered %d messages; pacing ceiling is %d", r.Delivered, maxExpected)
	}
	if r.Delivered == 0 {
		t.Error("pacing must not starve transfers entirely")
	}
	_ = instances
}

func TestUnpacedTransfersFaster(t *testing.T) {
	run := func(rate float64) int {
		s := denseScenario(32)
		s.Mobility = sim.MobilityStatic
		s.N = 2
		s.Region = mobility.Region{W: 100, H: 100}
		s.SimTime = 30
		s.Traffic = nil
		for i := 0; i < 100; i++ {
			s.Traffic = append(s.Traffic, sim.TrafficItem{Src: 0, Dst: 1, At: 0.1})
		}
		cfg := DefaultConfig()
		cfg.DataSendRate = rate
		factory, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		w, err := sim.NewWorld(s, factory)
		if err != nil {
			t.Fatal(err)
		}
		return w.Run().Delivered
	}
	paced := run(2)
	unpaced := run(0) // 0 disables pacing
	if unpaced <= paced {
		t.Errorf("unpaced (%d) should deliver more than paced (%d) in the window", unpaced, paced)
	}
}

func TestBroadcastDeltasSpreadWithoutNewContacts(t *testing.T) {
	// Static fully-connected cluster: after the initial contact
	// formation, only broadcast deltas advertise later messages. With
	// the enhancement on, late messages spread; with it off they rely
	// on (absent) new contacts and mostly stay put.
	run := func(broadcast bool) int {
		s := denseScenario(33)
		s.Mobility = sim.MobilityStatic
		s.N = 8
		s.Region = mobility.Region{W: 150, H: 150}
		s.SimTime = 120
		// One late burst well after contact formation.
		s.Traffic = nil
		for i := 0; i < 10; i++ {
			s.Traffic = append(s.Traffic, sim.TrafficItem{Src: 0, Dst: 1 + i%7, At: 60})
		}
		cfg := DefaultConfig()
		cfg.BroadcastDeltas = broadcast
		factory, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		w, err := sim.NewWorld(s, factory)
		if err != nil {
			t.Fatal(err)
		}
		return w.Run().Delivered
	}
	withB := run(true)
	if withB < 9 {
		t.Errorf("broadcast deltas should deliver the late burst, got %d/10", withB)
	}
}

func TestRetrySweepGivesUpEventually(t *testing.T) {
	// wants entries for unreachable peers must be garbage-collected.
	s := denseScenario(34)
	s.SimTime = 60
	s.Traffic = nil
	factory, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var eps []*Epidemic
	w, err := sim.NewWorld(s, func(n *sim.Node) sim.Protocol {
		p := factory(n)
		eps = append(eps, p.(*Epidemic))
		return p
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Run()
	for i, e := range eps {
		if len(e.wants) > 1000 {
			t.Errorf("node %d wants map grew unboundedly: %d", i, len(e.wants))
		}
	}
}
