package epidemic

import (
	"testing"

	"glr/internal/mobility"
	"glr/internal/sim"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.ExchangeInterval = 0 },
		func(c *Config) { c.SVEntryBits = 0 },
		func(c *Config) { c.SVBaseBits = 0 },
		func(c *Config) { c.DataHeaderBits = -1 },
		func(c *Config) { c.MaxBatch = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := New(Config{}); err == nil {
		t.Error("New must validate")
	}
}

// buildWorld wires an epidemic world and returns per-node instances.
func buildWorld(t *testing.T, s sim.Scenario) (*sim.World, []*Epidemic) {
	t.Helper()
	factory, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var instances []*Epidemic
	wrapped := func(n *sim.Node) sim.Protocol {
		p := factory(n)
		instances = append(instances, p.(*Epidemic))
		return p
	}
	w, err := sim.NewWorld(s, wrapped)
	if err != nil {
		t.Fatal(err)
	}
	return w, instances
}

func denseScenario(seed int64) sim.Scenario {
	s := sim.DefaultScenario(250)
	s.Seed = seed
	s.N = 15
	s.SimTime = 120
	s.Region = mobility.Region{W: 600, H: 300}
	s.Traffic = []sim.TrafficItem{
		{Src: 0, Dst: 9, At: 5},
		{Src: 3, Dst: 12, At: 6},
		{Src: 7, Dst: 1, At: 7},
	}
	return s
}

func TestEpidemicDeliversDense(t *testing.T) {
	w, _ := buildWorld(t, denseScenario(1))
	r := w.Run()
	if r.Delivered != r.Generated {
		t.Fatalf("delivered %d/%d", r.Delivered, r.Generated)
	}
	if r.ControlFrames == 0 {
		t.Error("summary vectors should be counted as control frames")
	}
}

func TestEpidemicDeliversAcrossPartition(t *testing.T) {
	// 50 m range in the strip: only mobility-assisted epidemic spread
	// can deliver.
	s := sim.DefaultScenario(50)
	s.Seed = 2
	s.N = 40
	s.SimTime = 1500
	s.Traffic = []sim.TrafficItem{
		{Src: 0, Dst: 30, At: 10},
		{Src: 5, Dst: 35, At: 20},
		{Src: 12, Dst: 22, At: 30},
	}
	w, _ := buildWorld(t, s)
	r := w.Run()
	if r.Delivered < 2 {
		t.Fatalf("epidemic delivered only %d/%d across partitions", r.Delivered, r.Generated)
	}
}

func TestEpidemicMessagesNeverCleared(t *testing.T) {
	// After delivery, copies stay in buffers (the paper's core criticism
	// of epidemic routing).
	s := denseScenario(3)
	w, instances := buildWorld(t, s)
	r := w.Run()
	if r.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	held := 0
	for _, e := range instances {
		held += e.Buffer().Len()
	}
	if held < r.Generated*5 {
		t.Errorf("messages should replicate widely and never clear; only %d copies held", held)
	}
}

func TestEpidemicBufferLimitEnforced(t *testing.T) {
	s := denseScenario(4)
	s.StorageLimit = 2
	s.Traffic = sim.PaperTraffic(40)
	for i := range s.Traffic {
		s.Traffic[i].Src %= 15
		s.Traffic[i].Dst %= 15
		if s.Traffic[i].Src == s.Traffic[i].Dst {
			s.Traffic[i].Dst = (s.Traffic[i].Dst + 1) % 15
		}
	}
	w, instances := buildWorld(t, s)
	r := w.Run()
	for i, e := range instances {
		if e.Buffer().Len() > 2 {
			t.Errorf("node %d holds %d > limit 2", i, e.Buffer().Len())
		}
	}
	if r.MaxPeakStorage > 2 {
		t.Errorf("peak storage %d exceeds limit", r.MaxPeakStorage)
	}
}

func TestEpidemicDuplicateDeliveryCountedOnce(t *testing.T) {
	s := denseScenario(5)
	s.Traffic = []sim.TrafficItem{{Src: 0, Dst: 9, At: 5}}
	w, _ := buildWorld(t, s)
	r := w.Run()
	if r.Delivered != 1 {
		t.Fatalf("delivered = %d, want 1", r.Delivered)
	}
}

func TestEpidemicDeterministic(t *testing.T) {
	run := func() any {
		w, _ := buildWorld(t, denseScenario(6))
		return w.Run()
	}
	if run() != run() {
		t.Error("identical seeds must give identical reports")
	}
}

func TestEpidemicStorageGrowsWithMessages(t *testing.T) {
	// Epidemic's storage footprint tracks the number of messages in
	// transit — the mechanism behind Figure 7 and the storage tables.
	peak := func(msgs int) int {
		s := denseScenario(7)
		s.SimTime = 200
		s.Traffic = sim.PaperTraffic(msgs)
		for i := range s.Traffic {
			s.Traffic[i].Src %= 15
			s.Traffic[i].Dst %= 15
			if s.Traffic[i].Src == s.Traffic[i].Dst {
				s.Traffic[i].Dst = (s.Traffic[i].Dst + 1) % 15
			}
		}
		w, _ := buildWorld(t, s)
		return w.Run().MaxPeakStorage
	}
	lo, hi := peak(10), peak(80)
	if hi <= lo {
		t.Errorf("peak storage should grow with traffic: %d vs %d", lo, hi)
	}
}
