package epidemic_test

import (
	"testing"

	"glr"
)

// TestEpidemicRepeatDeterminism: identical seeded epidemic runs must be
// byte-identical within one process. Regression test for the retry
// sweep iterating its wants/backlog maps in map order, which let batch
// selection and frame order drift between runs — the scenario below is
// dense enough to exercise MaxBatch-bounded retries, where the drift
// showed up as a few frames' difference.
func TestEpidemicRepeatDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run 50-node sweep; skipped in -short")
	}
	run := func(seed int64) glr.Result {
		sc, err := glr.NewScenario(
			glr.WithProtocol(glr.Epidemic),
			glr.WithNodes(50), glr.WithRange(100),
			glr.WithWorkload(glr.PaperWorkload{Messages: 150}),
			glr.WithSimTime(750), glr.WithSeed(seed),
		)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sc.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, seed := range []int64{1, 2} {
		first := run(seed)
		for i := 1; i < 3; i++ {
			if got := run(seed); got != first {
				t.Fatalf("seed %d repeat %d diverged:\nfirst: %+v\nnow:   %+v", seed, i, first, got)
			}
		}
	}
}
