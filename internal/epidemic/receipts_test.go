package epidemic

import (
	"testing"

	"glr/internal/sim"
)

func TestActiveReceiptsPurgeBuffers(t *testing.T) {
	// With active receipts, delivered messages are purged from the
	// network instead of lingering in every buffer.
	run := func(receipts bool) (delivered int, heldCopies int) {
		s := denseScenario(51)
		s.SimTime = 200
		cfg := DefaultConfig()
		cfg.ActiveReceipts = receipts
		factory, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var eps []*Epidemic
		w, err := sim.NewWorld(s, func(n *sim.Node) sim.Protocol {
			p := factory(n)
			eps = append(eps, p.(*Epidemic))
			return p
		})
		if err != nil {
			t.Fatal(err)
		}
		r := w.Run()
		held := 0
		for _, e := range eps {
			held += e.Buffer().Len()
		}
		return r.Delivered, held
	}
	delWith, heldWith := run(true)
	delWithout, heldWithout := run(false)
	if delWith < delWithout-1 {
		t.Errorf("receipts must not hurt delivery much: %d vs %d", delWith, delWithout)
	}
	if heldWith >= heldWithout {
		t.Errorf("receipts should purge copies: held %d with vs %d without", heldWith, heldWithout)
	}
}

func TestReceiptsImmuniseAgainstReinfection(t *testing.T) {
	// After a receipt spreads, nodes refuse to re-buffer the message.
	s := denseScenario(52)
	s.SimTime = 150
	s.Traffic = []sim.TrafficItem{{Src: 0, Dst: 9, At: 5}}
	cfg := DefaultConfig()
	cfg.ActiveReceipts = true
	factory, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var eps []*Epidemic
	w, err := sim.NewWorld(s, func(n *sim.Node) sim.Protocol {
		p := factory(n)
		eps = append(eps, p.(*Epidemic))
		return p
	})
	if err != nil {
		t.Fatal(err)
	}
	r := w.Run()
	if r.Delivered != 1 {
		t.Fatalf("message not delivered")
	}
	// In a dense network the receipt reaches everyone: no node should
	// still hold the delivered message.
	held := 0
	for _, e := range eps {
		held += e.Buffer().Len()
	}
	if held > 2 {
		t.Errorf("%d lingering copies after receipt spread", held)
	}
}
