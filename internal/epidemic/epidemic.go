// Package epidemic implements the benchmark protocol the paper compares
// against (Vahdat & Becker, "Epidemic routing for partially connected ad
// hoc networks"): on contact, nodes exchange summary vectors describing
// the messages they hold, then transfer the set difference. Messages are
// never cleared ("one apparent drawback of this routing protocol lies in
// that the messages are never cleared"); with bounded buffers, the oldest
// messages drop FIFO when new ones arrive.
package epidemic

import (
	"fmt"
	"sort"
	"time"

	"glr/internal/dtn"
	"glr/internal/shard"
	"glr/internal/sim"
)

// Config parameterises the epidemic baseline.
type Config struct {
	// ExchangeInterval is the anti-entropy refresh period for an ongoing
	// contact: a session always starts when a peer first comes into
	// range (the Vahdat–Becker trigger), and repeats at this interval
	// while the contact lasts so messages generated mid-contact still
	// spread.
	ExchangeInterval float64
	// SVEntryBits is the per-message-id size of a summary vector entry.
	SVEntryBits int
	// SVBaseBits is the fixed summary/request frame overhead.
	SVBaseBits int
	// DataHeaderBits is the per-message transfer overhead.
	DataHeaderBits int
	// MaxBatch bounds how many messages are requested from (and served
	// to) one peer per exchange round; larger diffs sync over multiple
	// rounds paced by RequestTimeout. It also sets the token-bucket
	// burst for DataSendRate.
	MaxBatch int
	// RequestTimeout suppresses re-requesting a message id that was
	// already requested (from any peer) within this window, and paces
	// the retry of requests whose transfers were lost. In dense
	// topologies many neighbors advertise the same message near-
	// simultaneously; requesting it from all of them multiplies data
	// traffic several-fold for no benefit.
	RequestTimeout float64
	// RequestRetries bounds how many times a lost transfer is re-
	// requested from its advertiser. Without retries a transfer lost to
	// a collision on a long-lived contact is never healed (delta
	// summaries will not re-advertise it); this is a small reliability
	// addition over the 2000-era protocol, documented in DESIGN.md.
	RequestRetries int
	// ContactGap is the silence (no beacons heard) after which a peer
	// counts as a NEW contact, triggering a full summary exchange. It
	// must tolerate several lost beacons: under load, beacon collisions
	// otherwise masquerade as contact churn and the resulting full
	// re-syncs feed the congestion that killed the beacons.
	ContactGap float64
	// DataSendRate is a per-node token-bucket budget on outgoing message
	// transfers (messages/second, burst MaxBatch). It calibrates the
	// pair-sync throughput to what the paper's stack (reliable IMEP
	// delivery over 802.11 at 1 Mbps) actually sustained — far below
	// raw link rate — and is the mechanism that reproduces epidemic's
	// load-dependent slowdown. 0 disables pacing.
	DataSendRate float64
	// BroadcastDeltas enables an ENHANCEMENT over Vahdat–Becker: fresh
	// insertions are advertised to all neighbors in a debounced
	// broadcast, instead of waiting for the next contact formation.
	// Faithful epidemic (the paper's baseline) exchanges summary vectors
	// only "when two nodes come into communication range of each other",
	// so this is off by default; it exists for ablation studies.
	BroadcastDeltas bool
	// ActiveReceipts implements the active-receipt extension the paper
	// discusses (§1, after Harras & Almeroth): when a destination
	// receives its message it generates a receipt that spreads like an
	// anti-packet, purging buffered copies and immunising nodes against
	// re-infection — addressing "the messages are never cleared". Off by
	// default (the paper's baseline does not clear).
	ActiveReceipts bool
}

// DefaultConfig returns a faithful, paper-scale parameterisation.
func DefaultConfig() Config {
	return Config{
		ExchangeInterval: 6.0,
		SVEntryBits:      6 * 8,
		SVBaseBits:       16 * 8,
		DataHeaderBits:   24 * 8,
		MaxBatch:         30,
		RequestTimeout:   3.0,
		RequestRetries:   10,
		ContactGap:       10.0,
		DataSendRate:     3.0,
	}
}

// Validate reports a descriptive error for unusable configurations.
func (c Config) Validate() error {
	switch {
	case c.ExchangeInterval <= 0:
		return fmt.Errorf("epidemic: exchange interval %v must be positive", c.ExchangeInterval)
	case c.SVEntryBits <= 0 || c.SVBaseBits <= 0 || c.DataHeaderBits < 0:
		return fmt.Errorf("epidemic: invalid frame sizes")
	case c.MaxBatch <= 0:
		return fmt.Errorf("epidemic: max batch %d must be positive", c.MaxBatch)
	case c.RequestTimeout < 0:
		return fmt.Errorf("epidemic: request timeout %v must be nonnegative", c.RequestTimeout)
	case c.RequestRetries < 0:
		return fmt.Errorf("epidemic: request retries %d must be nonnegative", c.RequestRetries)
	case c.ContactGap <= 0:
		return fmt.Errorf("epidemic: contact gap %v must be positive", c.ContactGap)
	case c.DataSendRate < 0:
		return fmt.Errorf("epidemic: data send rate %v must be nonnegative", c.DataSendRate)
	}
	return nil
}

// svFrame advertises buffer contents. A session-opening frame carries the
// full summary vector; refresh frames on an ongoing contact carry only
// the delta — ids inserted since the last exchange with that peer — a
// standard anti-entropy optimisation (Bayou-style) without which
// steady-state summary traffic alone saturates dense topologies.
type svFrame struct {
	Summary dtn.SummaryVector
	// Reply marks the responder's summary in a session (the initiator
	// answers with requests only, avoiding infinite sv ping-pong).
	Reply bool
	// Full marks a session-opening full summary; the responder mirrors
	// the fullness in its reply.
	Full bool
}

// reqFrame asks the peer to transfer the listed messages.
type reqFrame struct {
	Wanted []dtn.MessageID
}

// dataFrame transfers one buffered message.
type dataFrame struct {
	Msg dtn.Message
}

// Epidemic is one node's protocol instance.
type Epidemic struct {
	cfg Config
	n   *sim.Node

	buf           *dtn.Buffer
	lastExchange  map[int]float64
	lastHeard     map[int]float64 // contact tracking: detects NEW contacts
	lastSentVer   map[int]uint64  // buffer version last advertised per peer
	wants         map[dtn.MessageID]*want
	backlog       map[int]bool // peer advertised more than one batch's worth
	deliveredHere map[dtn.MessageID]bool

	lastBcastVer uint64 // buffer version at the last broadcast delta
	bcastArmed   bool   // a debounced broadcast is scheduled

	// immune records message ids for which a receipt was seen (active
	// receipts extension): copies are purged and never re-accepted.
	immune map[dtn.MessageID]bool

	// Token bucket pacing outgoing data transfers.
	tokens     float64
	lastRefill float64

	// Scratch for onSummary's diff: the advertised ids in (Src, Seq)
	// order and the per-id keep verdicts. Reused across exchanges; the
	// request frame itself gets a fresh slice (it outlives the call).
	diffIDs  []dtn.MessageID
	diffKeep []bool
}

// receiptFrame is the active-receipt anti-packet: it names delivered
// messages so holders can purge them.
type receiptFrame struct {
	Delivered []dtn.MessageID
}

// want tracks an outstanding transfer request for retry.
type want struct {
	peer  int
	at    float64
	tries int
}

// New builds an epidemic factory for sim.NewWorld. The per-node buffer
// capacity comes from the scenario's StorageLimit.
func New(cfg Config) (sim.ProtocolFactory, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return func(n *sim.Node) sim.Protocol {
		return &Epidemic{
			cfg:           cfg,
			n:             n,
			buf:           dtn.NewBuffer(n.StorageLimit()),
			lastExchange:  make(map[int]float64),
			lastHeard:     make(map[int]float64),
			lastSentVer:   make(map[int]uint64),
			wants:         make(map[dtn.MessageID]*want),
			backlog:       make(map[int]bool),
			immune:        make(map[dtn.MessageID]bool),
			deliveredHere: make(map[dtn.MessageID]bool),
		}
	}, nil
}

// Init implements sim.Protocol: start the slow retry sweep for lost
// transfers.
func (e *Epidemic) Init(n *sim.Node) {
	interval := e.cfg.RequestTimeout
	phase := n.Rand().Float64() * interval
	n.After(phase, func() { e.retrySweep(interval) })
}

// Restart implements sim.Restarter (fault-injected node churn): the
// node reboots with an empty buffer and no exchange state — contact
// history, advertised versions, outstanding wants, receipt immunity,
// and the delivered-here memory all reset, so previously seen copies
// can be accepted (and delivered) again as duplicates. The debounce
// flag is left alone: a pending delta broadcast fires on empty state,
// which is harmless, and clears it. The token bucket restarts empty.
func (e *Epidemic) Restart() {
	e.buf = dtn.NewBuffer(e.n.StorageLimit())
	clear(e.lastExchange)
	clear(e.lastHeard)
	clear(e.lastSentVer)
	clear(e.wants)
	clear(e.backlog)
	clear(e.immune)
	clear(e.deliveredHere)
	e.lastBcastVer = e.buf.Version()
	e.tokens = 0
	e.lastRefill = e.n.Now()
}

// retrySweep re-requests transfers that timed out, in one batch per
// advertiser, then reschedules itself.
//
// Both sweeps iterate in sorted order, never raw map order: which ids
// land in a MaxBatch-bounded batch and the order request frames hit the
// medium must not depend on map iteration, or identical seeded runs
// stop being byte-identical (the determinism the result cache and the
// committed atlas rely on).
func (e *Epidemic) retrySweep(interval float64) {
	now := e.n.Now()
	ids := make([]dtn.MessageID, 0, len(e.wants))
	for id := range e.wants {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	perPeer := make(map[int][]dtn.MessageID)
	var peers []int
	for _, id := range ids {
		w := e.wants[id]
		if e.buf.Has(id) {
			delete(e.wants, id)
			continue
		}
		if now-w.at < e.cfg.RequestTimeout {
			continue
		}
		if w.tries >= e.cfg.RequestRetries {
			delete(e.wants, id)
			continue
		}
		// Only retry toward peers we can still hear, pacing each batch.
		if heard, ok := e.lastHeard[w.peer]; !ok || now-heard > e.cfg.ContactGap {
			delete(e.wants, id)
			continue
		}
		if len(perPeer[w.peer]) >= e.cfg.MaxBatch {
			continue
		}
		w.at = now
		w.tries++
		if len(perPeer[w.peer]) == 0 {
			peers = append(peers, w.peer)
		}
		perPeer[w.peer] = append(perPeer[w.peer], id)
	}
	sort.Ints(peers)
	for _, peer := range peers {
		// Per-peer batches inherit the sorted (Src, Seq) sweep order.
		batch := perPeer[peer]
		e.n.Unicast(peer, sim.KindControl, reqFrame{Wanted: batch}, e.svBits(len(batch)), nil)
	}
	e.drainBacklogs(now, perPeer)
	e.n.After(interval, func() { e.retrySweep(interval) })
}

// drainBacklogs continues multi-batch syncs on long-lived contacts: when
// a peer advertised more messages than one batch could request and all
// current wants toward it are settled, re-open the session so the next
// batch flows. Rate-limited by ExchangeInterval.
func (e *Epidemic) drainBacklogs(now float64, outstanding map[int][]dtn.MessageID) {
	peers := make([]int, 0, len(e.backlog))
	for peer := range e.backlog {
		peers = append(peers, peer)
	}
	sort.Ints(peers)
	for _, peer := range peers {
		if heard, ok := e.lastHeard[peer]; !ok || now-heard > e.cfg.ContactGap {
			delete(e.backlog, peer) // contact gone; a new contact restarts
			continue
		}
		if len(outstanding[peer]) > 0 {
			continue // current batch still in flight
		}
		busy := false
		for _, w := range e.wants {
			if w.peer == peer {
				busy = true
				break
			}
		}
		if busy {
			continue
		}
		if last, ok := e.lastExchange[peer]; ok && now-last < e.cfg.ExchangeInterval {
			continue
		}
		delete(e.backlog, peer)
		e.lastExchange[peer] = now
		e.sendSummary(peer, false, true)
	}
}

// StorageUsed implements sim.Protocol.
func (e *Epidemic) StorageUsed() int { return e.buf.Len() }

// Buffer exposes the message buffer (tests and examples).
func (e *Epidemic) Buffer() *dtn.Buffer { return e.buf }

// OnMessageGenerated implements sim.Protocol: epidemic sources simply
// buffer the message and let anti-entropy spread it.
func (e *Epidemic) OnMessageGenerated(m *dtn.Message) {
	e.buf.Add(m)
	e.armBroadcast()
}

// armBroadcast schedules a debounced broadcast delta advertisement: at
// most roughly one per second per node, carrying every id inserted since
// the previous broadcast. One broadcast reaches every neighbor — the way
// IMEP aggregates control traffic — where per-peer delta unicasts alone
// would saturate dense topologies (each insertion re-advertised to ~49
// peers individually).
func (e *Epidemic) armBroadcast() {
	if !e.cfg.BroadcastDeltas || e.bcastArmed {
		return
	}
	e.bcastArmed = true
	delay := 0.5 + e.n.Rand().Float64()*0.5
	e.n.After(delay, e.broadcastDelta)
}

func (e *Epidemic) broadcastDelta() {
	e.bcastArmed = false
	delta := e.buf.InsertedSince(e.lastBcastVer)
	e.lastBcastVer = e.buf.Version()
	if len(delta) == 0 {
		return
	}
	sv := make(dtn.SummaryVector, len(delta))
	for _, id := range delta {
		sv.Add(id)
	}
	e.n.Broadcast(sim.KindControl, svFrame{Summary: sv, Reply: true}, e.svBits(len(sv)))
}

// OnBeacon implements sim.Protocol: a beacon from a peer not heard
// recently marks a NEW contact, which opens a full pairwise anti-entropy
// session (the Vahdat–Becker trigger). Fresh insertions reach ongoing
// contacts through the broadcast delta advertisements instead.
func (e *Epidemic) OnBeacon(b sim.Beacon) {
	now := e.n.Now()
	heardAt, known := e.lastHeard[b.From]
	e.lastHeard[b.From] = now
	if known && now-heardAt <= e.cfg.ContactGap {
		return
	}
	if last, ok := e.lastExchange[b.From]; ok && now-last < e.cfg.ExchangeInterval {
		return
	}
	e.lastExchange[b.From] = now
	e.sendSummary(b.From, false, true)
}

// svBits sizes a delta summary or request frame: an explicit id list.
func (e *Epidemic) svBits(entries int) int {
	return e.cfg.SVBaseBits + entries*e.cfg.SVEntryBits
}

// svBitsFull sizes a full summary vector. Full vectors are bitmaps over
// the message-id space (~1 bit per message, the canonical compact
// representation), not explicit id lists — at 1980 messages an explicit
// list would be a 95 ms frame and contact formations alone would saturate
// the channel.
func (e *Epidemic) svBitsFull(entries int) int {
	return e.cfg.SVBaseBits + entries
}

func (e *Epidemic) sendSummary(to int, reply, full bool) {
	var sv dtn.SummaryVector
	if full {
		sv = e.buf.Summary()
	} else {
		sv = make(dtn.SummaryVector)
		for _, id := range e.buf.InsertedSince(e.lastSentVer[to]) {
			sv.Add(id)
		}
	}
	e.lastSentVer[to] = e.buf.Version()
	if len(sv) == 0 && !full {
		return // nothing new to advertise
	}
	bits := e.svBits(len(sv))
	if full {
		bits = e.svBitsFull(len(sv))
	}
	e.n.Unicast(to, sim.KindControl, svFrame{Summary: sv, Reply: reply, Full: full}, bits, nil)
}

// OnFrame implements sim.Protocol.
func (e *Epidemic) OnFrame(payload any, from int) {
	switch f := payload.(type) {
	case svFrame:
		e.onSummary(f, from)
	case reqFrame:
		e.onRequest(f, from)
	case dataFrame:
		e.onData(f, from)
	case receiptFrame:
		e.onReceipt(f)
	}
}

// onReceipt purges delivered messages and spreads the anti-packet onward
// (rebroadcast once per newly-learned id set).
func (e *Epidemic) onReceipt(f receiptFrame) {
	if !e.cfg.ActiveReceipts {
		return
	}
	var fresh []dtn.MessageID
	for _, id := range f.Delivered {
		if e.immune[id] {
			continue
		}
		e.immune[id] = true
		e.buf.Remove(id)
		delete(e.wants, id)
		fresh = append(fresh, id)
	}
	if len(fresh) > 0 {
		e.n.Broadcast(sim.KindControl, receiptFrame{Delivered: fresh}, e.svBits(len(fresh)))
	}
}

// onSummary computes the set difference and requests what we lack; if this
// summary opened a session, we reply with our own so the exchange is
// bidirectional (the Vahdat–Becker handshake).
//
// The diff is the anti-entropy hot loop — one buffer/wants/immunity
// probe per advertised id, thousands of ids per full summary at paper
// load — and it is a pure per-id predicate over state that nothing
// mutates until the request list is committed. So the advertised ids
// are first sorted into the canonical (Src, Seq) order (fixing each
// id's slot), then the per-id verdicts are computed — forked onto the
// shard pool over contiguous chunks when the batch crosses the diff
// threshold, inline otherwise — and the request list is assembled
// serially from the verdict slots. Sorting before filtering yields
// exactly the filter-then-sort order of the serial reference (ids are
// unique, and filtering preserves sorted order), so request frames hit
// the medium in the identical (Src, Seq)/peer order either way.
func (e *Epidemic) onSummary(f svFrame, from int) {
	now := e.n.Now()
	var diffStart time.Time
	if e.n.PhaseProfiled() {
		diffStart = time.Now()
	}
	ids := e.diffIDs[:0]
	for id := range f.Summary {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	if cap(e.diffKeep) < len(ids) {
		e.diffKeep = make([]bool, len(ids))
	}
	keep := e.diffKeep[:len(ids)]
	e.diffIDs = ids
	decide := func(i int) {
		id := ids[i]
		if e.buf.Has(id) {
			keep[i] = false
			return
		}
		// Skip ids already requested recently from any peer, and ids
		// purged by active receipts.
		if w, ok := e.wants[id]; ok && now-w.at < e.cfg.RequestTimeout {
			keep[i] = false
			return
		}
		keep[i] = !(e.cfg.ActiveReceipts && e.immune[id])
	}
	if p := e.n.ShardPool(); p != nil && len(ids) >= e.n.ForkThresholds().DiffMin {
		// Forked verdicts: pure map reads (buffer membership, want
		// recency, receipt immunity) into per-id slots, each id touched
		// by exactly one worker. Nothing mutates until the join, and
		// chunk order cannot reorder slots, so the verdict vector is
		// byte-identical to the inline loop's.
		parts := p.Workers()
		p.Run(parts, func(c int) {
			lo, hi := shard.ChunkBounds(len(ids), parts, c)
			for i := lo; i < hi; i++ {
				decide(i)
			}
		})
	} else {
		for i := range ids {
			decide(i)
		}
	}
	// Serial commit in (Src, Seq) order. The request frame owns a fresh
	// slice: it stays queued in the MAC while later exchanges reuse the
	// scratch.
	var missing []dtn.MessageID
	for i := range ids {
		if !keep[i] {
			continue
		}
		if len(missing) == e.cfg.MaxBatch {
			e.backlog[from] = true // more to pull once this batch settles
			break
		}
		missing = append(missing, ids[i])
	}
	if !diffStart.IsZero() {
		e.n.AddAntiEntropyTime(time.Since(diffStart))
	}
	if len(missing) > 0 {
		for _, id := range missing {
			e.wants[id] = &want{peer: from, at: now}
		}
		e.n.Unicast(from, sim.KindControl, reqFrame{Wanted: missing}, e.svBits(len(missing)), nil)
	}
	if !f.Reply {
		e.lastExchange[from] = e.n.Now()
		e.lastHeard[from] = e.n.Now()
		e.sendSummary(from, true, f.Full)
	}
}

// onRequest streams the requested messages to the peer, subject to the
// node's data-rate budget. Requests that exceed the budget go unserved;
// the requester's retry sweep re-asks a few seconds later, so a long sync
// is paced over the contact — or cut short when the contact breaks, which
// is exactly the bandwidth-bound behaviour behind the paper's epidemic
// slowdown at high message counts.
func (e *Epidemic) onRequest(f reqFrame, from int) {
	e.refillTokens()
	sent := 0
	for _, id := range f.Wanted {
		m := e.buf.Get(id)
		if m == nil {
			continue // dropped since we advertised it
		}
		if sent >= e.cfg.MaxBatch {
			break
		}
		if e.cfg.DataSendRate > 0 {
			if e.tokens < 1 {
				break
			}
			e.tokens--
		}
		sent++
		e.n.Unicast(from, sim.KindData, dataFrame{Msg: *m},
			m.PayloadBits+e.cfg.DataHeaderBits, nil)
	}
}

// refillTokens tops up the data-rate bucket.
func (e *Epidemic) refillTokens() {
	if e.cfg.DataSendRate <= 0 {
		return
	}
	now := e.n.Now()
	e.tokens += (now - e.lastRefill) * e.cfg.DataSendRate
	e.lastRefill = now
	if burst := float64(e.cfg.MaxBatch); e.tokens > burst {
		e.tokens = burst
	}
}

// onData buffers an incoming message and records delivery when we are the
// destination. Delivered messages stay buffered — epidemic routing has no
// acknowledgment machinery, so the destination keeps (and re-advertises)
// the message like any relay.
func (e *Epidemic) onData(f dataFrame, from int) {
	m := f.Msg
	m.Hops++
	delete(e.wants, m.ID)
	if e.cfg.ActiveReceipts && e.immune[m.ID] {
		return // already purged network-wide; do not re-buffer
	}
	if m.Dst == e.n.ID() && !e.deliveredHere[m.ID] {
		e.deliveredHere[m.ID] = true
		e.n.ReportDelivered(&m)
		if e.cfg.ActiveReceipts {
			// Generate the anti-packet; we keep our own copy immune so
			// later copies bounce off.
			e.immune[m.ID] = true
			e.n.Broadcast(sim.KindControl, receiptFrame{Delivered: []dtn.MessageID{m.ID}},
				e.svBits(1))
			return
		}
	}
	e.buf.Add(&m)
	e.armBroadcast()
}
