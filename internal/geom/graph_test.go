package geom

import (
	"math/rand"
	"reflect"
	"testing"
)

func pathGraph(n int) *Graph {
	g := NewGraph(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func TestGraphBasics(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 2) // self loop ignored
	if g.N() != 4 {
		t.Errorf("N = %d, want 4", g.N())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge 0-1 must be symmetric")
	}
	if g.HasEdge(2, 2) {
		t.Error("self loop should be ignored")
	}
	if g.EdgeCount() != 2 {
		t.Errorf("EdgeCount = %d, want 2", g.EdgeCount())
	}
	if got := g.Neighbors(1); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Errorf("Neighbors(1) = %v, want [0 2]", got)
	}
	if g.Degree(1) != 2 {
		t.Errorf("Degree(1) = %d, want 2", g.Degree(1))
	}
	g.RemoveEdge(0, 1)
	if g.HasEdge(0, 1) {
		t.Error("edge should be removed")
	}
	if g.EdgeCount() != 1 {
		t.Errorf("EdgeCount after removal = %d, want 1", g.EdgeCount())
	}
}

func TestGraphEdgesDeterministic(t *testing.T) {
	g := NewGraph(5)
	g.AddEdge(3, 1)
	g.AddEdge(0, 4)
	g.AddEdge(2, 0)
	want := [][2]int{{0, 2}, {0, 4}, {1, 3}}
	if got := g.Edges(); !reflect.DeepEqual(got, want) {
		t.Errorf("Edges = %v, want %v", got, want)
	}
}

func TestComponents(t *testing.T) {
	g := NewGraph(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(4, 5)
	comps := g.Components()
	want := [][]int{{0, 1, 2}, {3}, {4, 5}}
	if !reflect.DeepEqual(comps, want) {
		t.Errorf("Components = %v, want %v", comps, want)
	}
	if g.Connected() {
		t.Error("graph should not be connected")
	}
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	if !g.Connected() {
		t.Error("graph should now be connected")
	}
}

func TestConnectedTrivial(t *testing.T) {
	if !NewGraph(0).Connected() {
		t.Error("empty graph is vacuously connected")
	}
	if !NewGraph(1).Connected() {
		t.Error("single-vertex graph is connected")
	}
}

func TestKHop(t *testing.T) {
	g := pathGraph(6)
	tests := []struct {
		u, k int
		want []int
	}{
		{0, 0, []int{0}},
		{0, 1, []int{0, 1}},
		{2, 1, []int{1, 2, 3}},
		{2, 2, []int{0, 1, 2, 3, 4}},
		{0, 10, []int{0, 1, 2, 3, 4, 5}},
	}
	for _, tt := range tests {
		if got := g.KHop(tt.u, tt.k); !reflect.DeepEqual(got, tt.want) {
			t.Errorf("KHop(%d,%d) = %v, want %v", tt.u, tt.k, got, tt.want)
		}
	}
}

func TestShortestPathLen(t *testing.T) {
	g := pathGraph(5)
	g.AddEdge(0, 3) // shortcut
	tests := []struct {
		u, v, want int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 4, 2}, // via shortcut 0-3-4
		{1, 3, 2},
	}
	for _, tt := range tests {
		if got := g.ShortestPathLen(tt.u, tt.v); got != tt.want {
			t.Errorf("ShortestPathLen(%d,%d) = %d, want %d", tt.u, tt.v, got, tt.want)
		}
	}
	g2 := NewGraph(3)
	g2.AddEdge(0, 1)
	if got := g2.ShortestPathLen(0, 2); got != -1 {
		t.Errorf("unreachable should return -1, got %d", got)
	}
}

func TestClone(t *testing.T) {
	g := pathGraph(4)
	c := g.Clone()
	c.AddEdge(0, 3)
	if g.HasEdge(0, 3) {
		t.Error("mutating clone must not affect original")
	}
	if !c.HasEdge(1, 2) {
		t.Error("clone must contain original edges")
	}
}

func TestIsPlanarEmbedding(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(2, 2), Pt(0, 2), Pt(2, 0)}
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if g.IsPlanarEmbedding(pts) {
		t.Error("crossing diagonals should not be planar")
	}
	g2 := NewGraph(4)
	g2.AddEdge(0, 2)
	g2.AddEdge(2, 1)
	g2.AddEdge(1, 3)
	g2.AddEdge(3, 0)
	if !g2.IsPlanarEmbedding(pts) {
		t.Error("boundary cycle should be planar")
	}
}

func TestUnitDiskGraph(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(1, 0), Pt(3, 0), Pt(0, 0.5)}
	g := UnitDiskGraph(pts, 1.0)
	// d(1,3) = sqrt(1+0.25) ≈ 1.118 > 1, so nodes 1 and 3 are not linked.
	wantEdges := [][2]int{{0, 1}, {0, 3}}
	if got := g.Edges(); !reflect.DeepEqual(got, wantEdges) {
		t.Errorf("UDG edges = %v, want %v", got, wantEdges)
	}
	// Exactly at range is connected (closed ball).
	g2 := UnitDiskGraph([]Point{Pt(0, 0), Pt(2, 0)}, 2.0)
	if !g2.HasEdge(0, 1) {
		t.Error("distance exactly r must be connected")
	}
}

func TestUnitDiskMonotoneInRadius(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := randomPoints(rng, 50, 1000, 1000)
	prev := -1
	for _, r := range []float64{50, 100, 150, 200, 250, 300} {
		g := UnitDiskGraph(pts, r)
		if g.EdgeCount() < prev {
			t.Fatalf("edge count must be nondecreasing in radius")
		}
		prev = g.EdgeCount()
	}
}

func TestConnectivityThreshold(t *testing.T) {
	// For the paper's strip (1500×300 m) and 50 nodes, the threshold with
	// s=10 is ≈ 133 m: 150–250 m ranges exceed it (single copy), 50–100 m
	// are below (multi copy). This is the pivotal constant of Algorithm 1.
	r := ConnectivityThreshold(50, 1500*300, 10)
	if r < 120 || r > 145 {
		t.Errorf("threshold = %.1f m, want ≈133 m", r)
	}
	if ConnectivityThreshold(1, 100, 10) != 0 {
		t.Error("n≤1 should give 0")
	}
	if ConnectivityThreshold(50, -1, 10) != 0 {
		t.Error("nonpositive area should give 0")
	}
	if ConnectivityThreshold(50, 100, 1) != 0 {
		t.Error("s≤1 should give 0")
	}
}

func TestConnectivityThresholdPredictsConnectivity(t *testing.T) {
	// Statistical sanity check: at 1.5×threshold nearly every random
	// topology is connected; at 0.4×threshold almost none are.
	rng := rand.New(rand.NewSource(10))
	const n, w, h, trials = 50, 1000.0, 1000.0, 40
	rstar := ConnectivityThreshold(n, w*h, 10)
	connAt := func(r float64) int {
		count := 0
		for i := 0; i < trials; i++ {
			pts := randomPoints(rng, n, w, h)
			if UnitDiskGraph(pts, r).Connected() {
				count++
			}
		}
		return count
	}
	if got := connAt(1.5 * rstar); got < trials*3/4 {
		t.Errorf("at 1.5·r* only %d/%d connected", got, trials)
	}
	if got := connAt(0.4 * rstar); got > trials/4 {
		t.Errorf("at 0.4·r* %d/%d connected — too many", got, trials)
	}
}

func TestConvexHull(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2), Pt(1, 1), Pt(1, 0)}
	hull := ConvexHull(pts)
	want := []int{0, 1, 2, 3} // CCW from lexicographic min; interior and edge points excluded
	if !reflect.DeepEqual(hull, want) {
		t.Errorf("hull = %v, want %v", hull, want)
	}
}

func TestConvexHullDegenerate(t *testing.T) {
	if got := ConvexHull(nil); len(got) != 0 {
		t.Errorf("empty hull = %v", got)
	}
	if got := ConvexHull([]Point{Pt(1, 1)}); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("single hull = %v", got)
	}
	got := ConvexHull([]Point{Pt(0, 0), Pt(1, 1), Pt(2, 2)})
	if len(got) != 2 {
		t.Errorf("collinear hull = %v, want two extreme points", got)
	}
	// Duplicates collapse.
	got = ConvexHull([]Point{Pt(0, 0), Pt(0, 0), Pt(1, 0)})
	if len(got) != 2 {
		t.Errorf("duplicate hull = %v, want 2 points", got)
	}
}

func TestInConvexHull(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(0, 4)}
	tests := []struct {
		p    Point
		want bool
	}{
		{Pt(2, 2), true},
		{Pt(0, 0), true},  // vertex
		{Pt(2, 0), true},  // boundary
		{Pt(5, 2), false}, // outside
		{Pt(-1, -1), false},
	}
	for _, tt := range tests {
		if got := InConvexHull(pts, tt.p); got != tt.want {
			t.Errorf("InConvexHull(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestHullContainsAllPointsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		pts := randomPoints(rng, 40, 100, 100)
		for _, p := range pts {
			if !InConvexHull(pts, p) {
				t.Fatalf("hull must contain its own points: %v", p)
			}
		}
	}
}
