package geom

import "sort"

// ConvexHull returns the indices of the convex hull of pts in
// counterclockwise order, starting from the lexicographically smallest
// point. Collinear points on the hull boundary are excluded. Inputs with
// fewer than three non-collinear points return all distinct points in
// lexicographic order.
func ConvexHull(pts []Point) []int {
	n := len(pts)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool {
		a, b := pts[idx[i]], pts[idx[j]]
		if a.X != b.X {
			return a.X < b.X
		}
		return a.Y < b.Y
	})
	// Drop exact duplicates.
	uniq := idx[:0]
	for i, id := range idx {
		if i > 0 && pts[id].Eq(pts[uniq[len(uniq)-1]]) {
			continue
		}
		uniq = append(uniq, id)
	}
	idx = uniq
	n = len(idx)
	if n < 3 {
		out := make([]int, n)
		copy(out, idx)
		return out
	}

	hull := make([]int, 0, 2*n)
	// Lower hull.
	for _, id := range idx {
		for len(hull) >= 2 && Orient(pts[hull[len(hull)-2]], pts[hull[len(hull)-1]], pts[id]) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, id)
	}
	// Upper hull.
	lower := len(hull) + 1
	for i := n - 2; i >= 0; i-- {
		id := idx[i]
		for len(hull) >= lower && Orient(pts[hull[len(hull)-2]], pts[hull[len(hull)-1]], pts[id]) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, id)
	}
	return hull[:len(hull)-1]
}

// InConvexHull reports whether p lies inside or on the boundary of the
// convex hull of pts.
func InConvexHull(pts []Point, p Point) bool {
	hull := ConvexHull(pts)
	if len(hull) == 0 {
		return false
	}
	if len(hull) == 1 {
		return p.Eq(pts[hull[0]])
	}
	if len(hull) == 2 {
		return PointOnSegment(p, pts[hull[0]], pts[hull[1]])
	}
	for i := range hull {
		a := pts[hull[i]]
		b := pts[hull[(i+1)%len(hull)]]
		if Orient(a, b, p) < 0 {
			return false
		}
	}
	return true
}
