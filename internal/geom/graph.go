package geom

import "sort"

// Graph is an undirected graph over vertices 0..n-1 with deterministic,
// sorted adjacency lists. It is the common currency between the Delaunay
// construction, the unit-disk model, and the LDTG spanner.
type Graph struct {
	adj []map[int]struct{}
}

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int) *Graph {
	adj := make([]map[int]struct{}, n)
	for i := range adj {
		adj[i] = make(map[int]struct{})
	}
	return &Graph{adj: adj}
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// AddEdge inserts the undirected edge uv. Self-loops are ignored.
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		return
	}
	g.adj[u][v] = struct{}{}
	g.adj[v][u] = struct{}{}
}

// RemoveEdge deletes the undirected edge uv if present.
func (g *Graph) RemoveEdge(u, v int) {
	delete(g.adj[u], v)
	delete(g.adj[v], u)
}

// HasEdge reports whether the undirected edge uv is present.
func (g *Graph) HasEdge(u, v int) bool {
	_, ok := g.adj[u][v]
	return ok
}

// Degree returns the number of neighbors of u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// Neighbors returns the neighbors of u in ascending order. The returned
// slice is freshly allocated; callers may mutate it.
func (g *Graph) Neighbors(u int) []int {
	out := make([]int, 0, len(g.adj[u]))
	for v := range g.adj[u] {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Edges returns all undirected edges as pairs (u, v) with u < v in
// deterministic sorted order.
func (g *Graph) Edges() [][2]int {
	var edges [][2]int
	for u := range g.adj {
		for v := range g.adj[u] {
			if u < v {
				edges = append(edges, [2]int{u, v})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	return edges
}

// EdgeCount returns the number of undirected edges.
func (g *Graph) EdgeCount() int {
	total := 0
	for u := range g.adj {
		total += len(g.adj[u])
	}
	return total / 2
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := NewGraph(g.N())
	for u := range g.adj {
		for v := range g.adj[u] {
			c.adj[u][v] = struct{}{}
		}
	}
	return c
}

// Components returns the connected components of g, each sorted ascending,
// ordered by their smallest vertex.
func (g *Graph) Components() [][]int {
	n := g.N()
	seen := make([]bool, n)
	var comps [][]int
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		var comp []int
		queue := []int{s}
		seen[s] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			comp = append(comp, u)
			for _, v := range g.Neighbors(u) {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// Connected reports whether g has exactly one connected component covering
// all vertices (vacuously true for n ≤ 1).
func (g *Graph) Connected() bool {
	if g.N() <= 1 {
		return true
	}
	return len(g.Components()) == 1
}

// KHop returns all vertices within graph distance k of u, including u
// itself, sorted ascending.
func (g *Graph) KHop(u, k int) []int {
	dist := map[int]int{u: 0}
	queue := []int{u}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		if dist[x] == k {
			continue
		}
		for _, v := range g.Neighbors(x) {
			if _, ok := dist[v]; !ok {
				dist[v] = dist[x] + 1
				queue = append(queue, v)
			}
		}
	}
	out := make([]int, 0, len(dist))
	for v := range dist {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// ShortestPathLen returns the hop count of the shortest path from u to v,
// or -1 when v is unreachable from u.
func (g *Graph) ShortestPathLen(u, v int) int {
	if u == v {
		return 0
	}
	dist := map[int]int{u: 0}
	queue := []int{u}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(x) {
			if _, ok := dist[w]; ok {
				continue
			}
			dist[w] = dist[x] + 1
			if w == v {
				return dist[w]
			}
			queue = append(queue, w)
		}
	}
	return -1
}

// IsPlanarEmbedding reports whether, with vertices embedded at pts, no two
// edges of g properly cross. Shared endpoints are allowed. O(E²) — intended
// for tests and small graphs.
func (g *Graph) IsPlanarEmbedding(pts []Point) bool {
	edges := g.Edges()
	for i := 0; i < len(edges); i++ {
		for j := i + 1; j < len(edges); j++ {
			a, b := pts[edges[i][0]], pts[edges[i][1]]
			c, d := pts[edges[j][0]], pts[edges[j][1]]
			if SegmentsProperlyIntersect(a, b, c, d) {
				return false
			}
		}
	}
	return true
}
