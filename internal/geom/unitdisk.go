package geom

import "math"

// UnitDiskGraph returns the graph connecting every pair of points at
// Euclidean distance ≤ r. This is the connectivity model of the paper: two
// nodes can communicate exactly when they are within transmission range.
func UnitDiskGraph(pts []Point, r float64) *Graph {
	g := NewGraph(len(pts))
	r2 := r * r
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if pts[i].Dist2(pts[j]) <= r2 {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// ConnectivityThreshold returns the critical radius r* above which a random
// geometric graph of n uniform nodes in a region of the given area is
// connected with probability at least 1 − 1/s (Georgiou, Kranakis,
// Marcelín-Jiménez, Rajsbaum, Urrutia 2005): for the unit square,
// r_n ≥ sqrt((ln n + ln s)/(n·π)); scaling a square of area A multiplies
// distances by sqrt(A).
//
// GLR's Algorithm 1 compares the node transmission range against this
// threshold to decide between single-copy and multi-copy delivery.
func ConnectivityThreshold(n int, area, s float64) float64 {
	if n <= 1 || area <= 0 || s <= 1 {
		return 0
	}
	return math.Sqrt(area * (math.Log(float64(n)) + math.Log(s)) / (float64(n) * math.Pi))
}
