package geom

import "math/big"

// Robust geometric predicates.
//
// The fast path evaluates the predicate determinant in float64 and accepts
// the result when its magnitude exceeds a conservative forward error bound
// (constants following Shewchuk, "Adaptive Precision Floating-Point
// Arithmetic and Fast Robust Geometric Predicates"). When the result is too
// close to zero to be trusted, we recompute exactly with math/big rationals;
// every float64 is exactly representable as a big.Rat, so the slow path is
// fully exact.

const (
	// ccwErrBound bounds the rounding error of the 2x2 orientation
	// determinant: 3u + 16u² with u = 2^-53, times the magnitude sum.
	ccwErrBound = 3.3306690738754716e-16
	// iccErrBound is the corresponding first-order bound for the 4x4
	// in-circle determinant: (10 + 96u)u.
	iccErrBound = 1.1102230246251577e-15
)

// Orient returns a value whose sign classifies the turn a→b→c:
// positive when counterclockwise, negative when clockwise, and exactly zero
// when the three points are collinear. The magnitude is twice the signed
// triangle area (meaningful only on the fast path).
func Orient(a, b, c Point) float64 {
	detl := (a.X - c.X) * (b.Y - c.Y)
	detr := (a.Y - c.Y) * (b.X - c.X)
	det := detl - detr
	var detsum float64
	switch {
	case detl > 0:
		if detr <= 0 {
			return det
		}
		detsum = detl + detr
	case detl < 0:
		if detr >= 0 {
			return det
		}
		detsum = -detl - detr
	default:
		return det
	}
	if det >= ccwErrBound*detsum || -det >= ccwErrBound*detsum {
		return det
	}
	return orientExact(a, b, c)
}

func orientExact(a, b, c Point) float64 {
	ax := new(big.Rat).SetFloat64(a.X)
	ay := new(big.Rat).SetFloat64(a.Y)
	bx := new(big.Rat).SetFloat64(b.X)
	by := new(big.Rat).SetFloat64(b.Y)
	cx := new(big.Rat).SetFloat64(c.X)
	cy := new(big.Rat).SetFloat64(c.Y)

	acx := new(big.Rat).Sub(ax, cx)
	bcy := new(big.Rat).Sub(by, cy)
	acy := new(big.Rat).Sub(ay, cy)
	bcx := new(big.Rat).Sub(bx, cx)

	l := new(big.Rat).Mul(acx, bcy)
	r := new(big.Rat).Mul(acy, bcx)
	det := l.Sub(l, r)
	return float64(det.Sign())
}

// InCircle returns a value whose sign reports the position of d relative to
// the circle through a, b, c (which must be in counterclockwise order):
// positive when d is strictly inside, negative when strictly outside, zero
// when on the circle. If a, b, c are clockwise the sign is flipped.
func InCircle(a, b, c, d Point) float64 {
	adx := a.X - d.X
	ady := a.Y - d.Y
	bdx := b.X - d.X
	bdy := b.Y - d.Y
	cdx := c.X - d.X
	cdy := c.Y - d.Y

	bdxcdy := bdx * cdy
	cdxbdy := cdx * bdy
	alift := adx*adx + ady*ady

	cdxady := cdx * ady
	adxcdy := adx * cdy
	blift := bdx*bdx + bdy*bdy

	adxbdy := adx * bdy
	bdxady := bdx * ady
	clift := cdx*cdx + cdy*cdy

	det := alift*(bdxcdy-cdxbdy) + blift*(cdxady-adxcdy) + clift*(adxbdy-bdxady)

	permanent := (abs(bdxcdy)+abs(cdxbdy))*alift +
		(abs(cdxady)+abs(adxcdy))*blift +
		(abs(adxbdy)+abs(bdxady))*clift
	errbound := iccErrBound * permanent
	if det > errbound || -det > errbound {
		return det
	}
	return inCircleExact(a, b, c, d)
}

func inCircleExact(a, b, c, d Point) float64 {
	toRat := func(f float64) *big.Rat { return new(big.Rat).SetFloat64(f) }
	adx := new(big.Rat).Sub(toRat(a.X), toRat(d.X))
	ady := new(big.Rat).Sub(toRat(a.Y), toRat(d.Y))
	bdx := new(big.Rat).Sub(toRat(b.X), toRat(d.X))
	bdy := new(big.Rat).Sub(toRat(b.Y), toRat(d.Y))
	cdx := new(big.Rat).Sub(toRat(c.X), toRat(d.X))
	cdy := new(big.Rat).Sub(toRat(c.Y), toRat(d.Y))

	lift := func(x, y *big.Rat) *big.Rat {
		xx := new(big.Rat).Mul(x, x)
		yy := new(big.Rat).Mul(y, y)
		return xx.Add(xx, yy)
	}
	alift := lift(adx, ady)
	blift := lift(bdx, bdy)
	clift := lift(cdx, cdy)

	minor := func(px, py, qx, qy *big.Rat) *big.Rat {
		l := new(big.Rat).Mul(px, qy)
		r := new(big.Rat).Mul(qx, py)
		return l.Sub(l, r)
	}
	det := new(big.Rat).Mul(alift, minor(bdx, bdy, cdx, cdy))
	t := new(big.Rat).Mul(blift, minor(cdx, cdy, adx, ady))
	det.Add(det, t)
	t = new(big.Rat).Mul(clift, minor(adx, ady, bdx, bdy))
	det.Add(det, t)
	return float64(det.Sign())
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
