package geom

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// edgesOf returns the sorted undirected edge list of a triangulation.
func edgesOf(t *Triangulation) [][2]int { return t.Edges() }

// TestMeshMatchesReferenceRandom: on points in general position (random
// float64 coordinates — no exact collinear or cocircular quadruples), the
// Delaunay triangulation is unique, so the mesh construction must return
// exactly the reference edge set.
func TestMeshMatchesReferenceRandom(t *testing.T) {
	tr := NewTriangulator()
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(120)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Pt(rng.Float64()*1500, rng.Float64()*300)
		}
		ref, err := DelaunayRef(pts)
		if err != nil {
			t.Fatal(err)
		}
		mesh, err := tr.Triangulate(pts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(edgesOf(ref), edgesOf(mesh)) {
			t.Fatalf("seed %d n=%d: mesh edges differ from reference", seed, n)
		}
	}
}

// TestMeshMatchesReferenceClustered exercises walk-based location with
// highly non-uniform densities (tight clusters plus far outliers).
func TestMeshMatchesReferenceClustered(t *testing.T) {
	tr := NewTriangulator()
	for seed := int64(100); seed < 115; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var pts []Point
		for c := 0; c < 4; c++ {
			cx, cy := rng.Float64()*5000, rng.Float64()*5000
			for i := 0; i < 5+rng.Intn(20); i++ {
				pts = append(pts, Pt(cx+rng.Float64()*10, cy+rng.Float64()*10))
			}
		}
		ref, err := DelaunayRef(pts)
		if err != nil {
			t.Fatal(err)
		}
		mesh, err := tr.Triangulate(pts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(edgesOf(ref), edgesOf(mesh)) {
			t.Fatalf("seed %d: clustered mesh edges differ from reference", seed)
		}
	}
}

// TestMeshDegenerateInputs: grid and collinear configurations must still
// produce a valid Delaunay triangulation (empty strict circumcircles,
// planar, CCW) even where cocircular ties leave the diagonal choice free,
// and exactly-collinear interior runs must exercise the reference
// fallback without error.
func TestMeshDegenerateInputs(t *testing.T) {
	cases := map[string][]Point{
		"grid3x3": {
			Pt(0, 0), Pt(25, 0), Pt(50, 0),
			Pt(0, 25), Pt(25, 25), Pt(50, 25),
			Pt(0, 50), Pt(25, 50), Pt(50, 50),
		},
		"square": {Pt(0, 0), Pt(10, 0), Pt(10, 10), Pt(0, 10)},
		"collinear-run-then-apex": {
			Pt(0, 0), Pt(10, 0), Pt(2, 0), Pt(7, 0), Pt(4, 0), Pt(5, 8),
		},
		"collinear-beyond-hull": {
			Pt(0, 0), Pt(10, 0), Pt(5, 5), Pt(20, 0), Pt(-20, 0),
		},
		"point-on-edge": {
			Pt(0, 0), Pt(10, 0), Pt(5, 10), Pt(5, 0),
		},
		"all-collinear": {Pt(0, 0), Pt(1, 0), Pt(2, 0), Pt(3, 0)},
		"two-points":    {Pt(0, 0), Pt(1, 1)},
	}
	tr := NewTriangulator()
	for name, pts := range cases {
		mesh, err := tr.Triangulate(pts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkDelaunayValid(t, name, pts, mesh)
	}
}

// checkDelaunayValid asserts CCW orientation, strict empty circumcircles,
// and a planar embedding.
func checkDelaunayValid(t *testing.T, name string, pts []Point, tri *Triangulation) {
	t.Helper()
	g := NewGraph(len(pts))
	for _, tr := range tri.Triangles {
		if Orient(pts[tr.A], pts[tr.B], pts[tr.C]) <= 0 {
			t.Fatalf("%s: triangle %v not CCW", name, tr)
		}
		for i, p := range pts {
			if i == tr.A || i == tr.B || i == tr.C {
				continue
			}
			if InCircle(pts[tr.A], pts[tr.B], pts[tr.C], p) > 0 {
				t.Fatalf("%s: circumcircle of %v strictly contains point %d", name, tr, i)
			}
		}
		g.AddEdge(tr.A, tr.B)
		g.AddEdge(tr.B, tr.C)
		g.AddEdge(tr.C, tr.A)
	}
	if !g.IsPlanarEmbedding(pts) {
		t.Fatalf("%s: embedding not planar", name)
	}
}

// TestMeshTriangulatorReuse: repeated builds over different point sets
// from one Triangulator must not leak state between calls.
func TestMeshTriangulatorReuse(t *testing.T) {
	tr := NewTriangulator()
	rng := rand.New(rand.NewSource(9))
	for round := 0; round < 30; round++ {
		n := 3 + rng.Intn(60)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Pt(rng.Float64()*100, rng.Float64()*100)
		}
		ref, err := DelaunayRef(pts)
		if err != nil {
			t.Fatal(err)
		}
		mesh, err := tr.Triangulate(pts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(edgesOf(ref), edgesOf(mesh)) {
			t.Fatalf("round %d: reused triangulator diverged from reference", round)
		}
	}
}

// TestMeshGraphMatchesDelaunayGraph: the Graph method must agree with
// building the graph from Triangulate's edges, including degenerate
// collinear path graphs.
func TestMeshGraphMatchesDelaunayGraph(t *testing.T) {
	tr := NewTriangulator()
	rng := rand.New(rand.NewSource(17))
	for round := 0; round < 20; round++ {
		n := 2 + rng.Intn(40)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Pt(rng.Float64()*400, rng.Float64()*400)
		}
		want, err := DelaunayGraphRef(pts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := tr.Graph(pts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want.Edges(), got.Edges()) {
			t.Fatalf("round %d: Graph edges differ from reference", round)
		}
	}
	// Collinear limit graph.
	got, err := tr.Graph([]Point{Pt(0, 0), Pt(2, 0), Pt(1, 0)})
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]int{{0, 2}, {1, 2}}
	if !reflect.DeepEqual(got.Edges(), want) {
		t.Fatalf("collinear limit graph = %v, want %v", got.Edges(), want)
	}
}

// TestMeshDuplicateRejected mirrors the reference behavior.
func TestMeshDuplicateRejected(t *testing.T) {
	tr := NewTriangulator()
	if _, err := tr.Triangulate([]Point{Pt(0, 0), Pt(1, 1), Pt(0, 0), Pt(2, 0)}); err != ErrDuplicatePoint {
		t.Fatalf("duplicate input: got %v, want ErrDuplicatePoint", err)
	}
}

// TestSeedSearchGuardNearCollinear is the regression test for the seed
// scan in DelaunayRef: ε-perturbed collinear inputs must neither panic
// nor index past the slice, whichever side of the collinearity test the
// exact predicates land on, and must still produce a valid triangulation
// (or the degenerate empty one).
func TestSeedSearchGuardNearCollinear(t *testing.T) {
	base := []Point{Pt(0, 0), Pt(100, 0), Pt(200, 0), Pt(300, 0), Pt(400, 0)}
	for _, eps := range []float64{0, 1e-300, 1e-18, 1e-12, 5e-9} {
		for perturb := 0; perturb < len(base); perturb++ {
			pts := make([]Point, len(base))
			copy(pts, base)
			pts[perturb].Y += eps
			name := fmt.Sprintf("eps=%g@%d", eps, perturb)

			ref, err := DelaunayRef(pts)
			if err != nil {
				t.Fatalf("%s: ref: %v", name, err)
			}
			mesh, err := Delaunay(pts)
			if err != nil {
				t.Fatalf("%s: mesh: %v", name, err)
			}
			if eps == 0 {
				if len(ref.Triangles) != 0 || len(mesh.Triangles) != 0 {
					t.Fatalf("%s: collinear input produced triangles", name)
				}
				continue
			}
			checkDelaunayValid(t, "ref-"+name, pts, ref)
			checkDelaunayValid(t, "mesh-"+name, pts, mesh)
		}
	}
}

func randomBenchPoints(n int, seed int64) []Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Pt(rng.Float64()*1500, rng.Float64()*300)
	}
	return pts
}

// benchDelaunay measures one full construction of an n-point set, the
// unit of work the GLR spanner performs per witness neighborhood.
func benchDelaunay(b *testing.B, n int, f func([]Point) (*Triangulation, error)) {
	pts := randomBenchPoints(n, 42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f(pts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDelaunayRef64(b *testing.B)  { benchDelaunay(b, 64, DelaunayRef) }
func BenchmarkDelaunayMesh64(b *testing.B) { benchDelaunay(b, 64, Delaunay) }
func BenchmarkDelaunayRef256(b *testing.B) { benchDelaunay(b, 256, DelaunayRef) }
func BenchmarkDelaunayMesh256(b *testing.B) {
	benchDelaunay(b, 256, Delaunay)
}

// BenchmarkDelaunayMeshReused256 measures the steady-state cost with the
// Triangulator's scratch storage warm — the regime the spanner cache
// operates in.
func BenchmarkDelaunayMeshReused256(b *testing.B) {
	pts := randomBenchPoints(256, 42)
	tr := NewTriangulator()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Triangulate(pts); err != nil {
			b.Fatal(err)
		}
	}
}
