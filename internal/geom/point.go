// Package geom provides the computational-geometry substrate for the GLR
// reproduction: points and vectors, robust orientation/in-circle predicates,
// convex hulls, Delaunay triangulations, and geometric graphs (unit-disk
// graphs and general adjacency structures with k-hop queries).
//
// All coordinates are float64 metres. Predicates fall back to exact
// rational arithmetic (math/big) when the floating-point computation is too
// close to zero to be trusted, so the Delaunay construction is robust for
// any float64 input, including adversarial cases from property-based tests.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the plane. It doubles as a 2-vector.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p + q componentwise.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q componentwise.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dot returns the dot product p·q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z-component of the cross product p × q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Norm2 returns the squared Euclidean length of p viewed as a vector.
func (p Point) Norm2() float64 { return p.X*p.X + p.Y*p.Y }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Dist2 returns the squared Euclidean distance between p and q. It is exact
// enough for comparisons and avoids the sqrt.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Angle returns the polar angle of the vector p in (-π, π].
func (p Point) Angle() float64 { return math.Atan2(p.Y, p.X) }

// AngleTo returns the polar angle of the vector from p to q.
func (p Point) AngleTo(q Point) float64 { return math.Atan2(q.Y-p.Y, q.X-p.X) }

// Lerp returns the point p + t·(q−p); t=0 gives p, t=1 gives q.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + t*(q.X-p.X), p.Y + t*(q.Y-p.Y)}
}

// Eq reports whether p and q have identical coordinates.
func (p Point) Eq(q Point) bool { return p.X == q.X && p.Y == q.Y }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.3f,%.3f)", p.X, p.Y) }

// Midpoint returns the midpoint of segment pq.
func Midpoint(p, q Point) Point { return Point{(p.X + q.X) / 2, (p.Y + q.Y) / 2} }

// Circumcenter returns the center of the circle through a, b, c and true,
// or the zero Point and false when the three points are collinear.
func Circumcenter(a, b, c Point) (Point, bool) {
	bx, by := b.X-a.X, b.Y-a.Y
	cx, cy := c.X-a.X, c.Y-a.Y
	d := 2 * (bx*cy - by*cx)
	if d == 0 {
		return Point{}, false
	}
	b2 := bx*bx + by*by
	c2 := cx*cx + cy*cy
	ux := (cy*b2 - by*c2) / d
	uy := (bx*c2 - cx*b2) / d
	return Point{a.X + ux, a.Y + uy}, true
}

// SegmentsProperlyIntersect reports whether open segments ab and cd cross at
// a single interior point. Shared endpoints and collinear overlap do not
// count as proper intersections; this is the notion used by planarity tests.
func SegmentsProperlyIntersect(a, b, c, d Point) bool {
	o1 := Orient(a, b, c)
	o2 := Orient(a, b, d)
	o3 := Orient(c, d, a)
	o4 := Orient(c, d, b)
	return ((o1 > 0 && o2 < 0) || (o1 < 0 && o2 > 0)) &&
		((o3 > 0 && o4 < 0) || (o3 < 0 && o4 > 0))
}

// PointOnSegment reports whether p lies on the closed segment ab.
func PointOnSegment(p, a, b Point) bool {
	if Orient(a, b, p) != 0 {
		return false
	}
	return math.Min(a.X, b.X) <= p.X && p.X <= math.Max(a.X, b.X) &&
		math.Min(a.Y, b.Y) <= p.Y && p.Y <= math.Max(a.Y, b.Y)
}

// DistPointToSegment returns the Euclidean distance from p to the closed
// segment ab.
func DistPointToSegment(p, a, b Point) float64 {
	ab := b.Sub(a)
	l2 := ab.Norm2()
	if l2 == 0 {
		return p.Dist(a)
	}
	t := p.Sub(a).Dot(ab) / l2
	t = math.Max(0, math.Min(1, t))
	return p.Dist(a.Add(ab.Scale(t)))
}
