package geom

import (
	"errors"
	"sort"
)

// Triangle holds indices into a point slice, stored in counterclockwise
// order.
type Triangle struct {
	A, B, C int
}

// Triangulation is the result of a Delaunay construction over a fixed point
// set. Triangles reference Points by index.
type Triangulation struct {
	Points    []Point
	Triangles []Triangle
}

// ErrDuplicatePoint is returned by Delaunay when the input contains two
// points with identical coordinates. Callers that may hold co-located nodes
// should deduplicate first (see DedupPoints).
var ErrDuplicatePoint = errors.New("geom: duplicate point in Delaunay input")

// Delaunay computes the Delaunay triangulation of pts with the
// adjacency-based incremental Bowyer–Watson construction (see mesh.go):
// triangle neighbor links, walk-based point location, and a BFS cavity
// search make it O(n log n)-ish in practice instead of the reference
// implementation's O(n²). Hot paths that triangulate repeatedly should
// hold a Triangulator and call its Triangulate method to also reuse the
// working storage.
//
// Degenerate inputs are handled: fewer than 3 points, or all points
// collinear, yield a triangulation with no triangles (use DelaunayGraph for
// the limit graph, which connects collinear points in path order).
func Delaunay(pts []Point) (*Triangulation, error) {
	return NewTriangulator().Triangulate(pts)
}

// DelaunayRef computes the Delaunay triangulation of pts with the
// reference incremental Bowyer–Watson algorithm that needs no
// super-triangle: points falling outside the current convex hull are
// connected through the hull edges they can see, which is the exact
// at-infinity semantics a finite super-triangle only approximates (and
// gets wrong near the hull). It is O(n²) in the worst case. It is kept as
// the independently-verifiable baseline the mesh construction is
// equivalence-tested against, and as the fallback for exact degeneracies
// the linked mesh cannot express.
func DelaunayRef(pts []Point) (*Triangulation, error) {
	t := &Triangulation{Points: pts}
	n := len(pts)
	if hasDuplicates(pts) {
		return nil, ErrDuplicatePoint
	}
	if n < 3 || allCollinear(pts) {
		return t, nil
	}

	// Seed with the first non-collinear triple (0, 1, seed). The bound
	// guards the scan: allCollinear and this loop use the same exact
	// predicate today, but an out-of-range seed must degrade to the
	// no-triangle result rather than index past the slice if the
	// predicates ever diverge on near-collinear input.
	seed := 2
	for seed < n && Orient(pts[0], pts[1], pts[seed]) == 0 {
		seed++
	}
	if seed == n {
		return t, nil
	}
	tris := []Triangle{normalizeCCW(pts, Triangle{0, 1, seed})}

	for i := 2; i < n; i++ {
		if i == seed {
			continue
		}
		tris = insertPoint(pts, tris, i)
	}
	t.Triangles = tris
	return t, nil
}

// insertPoint adds point index i to the triangulation tris and returns the
// updated triangle list.
func insertPoint(pts []Point, tris []Triangle, i int) []Triangle {
	p := pts[i]

	// Cavity: every triangle whose circumcircle strictly contains p.
	var bad []Triangle
	keep := make([]Triangle, 0, len(tris))
	for _, tr := range tris {
		if InCircle(pts[tr.A], pts[tr.B], pts[tr.C], p) > 0 {
			bad = append(bad, tr)
		} else {
			keep = append(keep, tr)
		}
	}

	// Hull edges are directed edges that occur in exactly one triangle,
	// oriented with the interior on their left. A hull edge is "visible"
	// from p when p lies strictly on its outer (right) side; such edges
	// act as virtual cavity triangles, which is the exact limit of the
	// super-triangle construction as its corners go to infinity.
	dir := make(map[[2]int]bool, 3*len(tris))
	for _, tr := range tris {
		dir[[2]int{tr.A, tr.B}] = true
		dir[[2]int{tr.B, tr.C}] = true
		dir[[2]int{tr.C, tr.A}] = true
	}
	boundary := make(map[edgeKey]int, 3*len(bad)+8)
	for _, tr := range bad {
		boundary[ek(tr.A, tr.B)]++
		boundary[ek(tr.B, tr.C)]++
		boundary[ek(tr.C, tr.A)]++
	}
	for de := range dir {
		if dir[[2]int{de[1], de[0]}] {
			continue // interior edge: reverse also present
		}
		if Orient(pts[de[0]], pts[de[1]], p) < 0 {
			boundary[ek(de[0], de[1])]++ // visible hull edge
		}
	}

	// Retriangulate: connect p to every edge on the combined boundary.
	// Multiplicity 2 means the edge is interior to the merged region
	// (either between two cavity triangles, or between a cavity triangle
	// and the visible outside); skip it. Zero-area fans (p exactly
	// collinear with the edge) are skipped — the surrounding fans cover
	// the region exactly.
	newTris := keep
	for e, count := range boundary {
		if count != 1 {
			continue
		}
		if Orient(pts[e.u], pts[e.v], p) == 0 {
			continue
		}
		newTris = append(newTris, normalizeCCW(pts, Triangle{e.u, e.v, i}))
	}
	return newTris
}

// Edges returns the undirected edge set of the triangulation as pairs of
// point indices with u < v, in deterministic sorted order.
func (t *Triangulation) Edges() [][2]int {
	set := make(map[edgeKey]struct{}, 3*len(t.Triangles))
	for _, tr := range t.Triangles {
		set[ek(tr.A, tr.B)] = struct{}{}
		set[ek(tr.B, tr.C)] = struct{}{}
		set[ek(tr.C, tr.A)] = struct{}{}
	}
	edges := make([][2]int, 0, len(set))
	for e := range set {
		edges = append(edges, [2]int{e.u, e.v})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	return edges
}

// HasEdge reports whether the undirected edge uv occurs in any triangle.
func (t *Triangulation) HasEdge(u, v int) bool {
	for _, tr := range t.Triangles {
		if triHasEdge(tr, u, v) {
			return true
		}
	}
	return false
}

func triHasEdge(tr Triangle, u, v int) bool {
	has := func(a, b int) bool {
		return (a == u && b == v) || (a == v && b == u)
	}
	return has(tr.A, tr.B) || has(tr.B, tr.C) || has(tr.C, tr.A)
}

// DelaunayGraph computes the Delaunay triangulation of pts and returns its
// edge graph. Degenerate inputs (n < 3 or all collinear) produce the limit
// graph: points connected in order along the common line.
func DelaunayGraph(pts []Point) (*Graph, error) {
	return NewTriangulator().Graph(pts)
}

// DelaunayGraphRef is DelaunayGraph over the reference construction
// (DelaunayRef); see there for why it is kept.
func DelaunayGraphRef(pts []Point) (*Graph, error) {
	g := NewGraph(len(pts))
	if len(pts) < 2 {
		return g, nil
	}
	if hasDuplicates(pts) {
		return nil, ErrDuplicatePoint
	}
	if len(pts) == 2 {
		g.AddEdge(0, 1)
		return g, nil
	}
	if allCollinear(pts) {
		order := collinearOrder(pts)
		for i := 0; i+1 < len(order); i++ {
			g.AddEdge(order[i], order[i+1])
		}
		return g, nil
	}
	t, err := DelaunayRef(pts)
	if err != nil {
		return nil, err
	}
	for _, e := range t.Edges() {
		g.AddEdge(e[0], e[1])
	}
	return g, nil
}

// DedupPoints returns the subset of pts with exact coordinate duplicates
// removed (keeping the first occurrence) and a mapping from the deduped
// index back to the original index.
func DedupPoints(pts []Point) (uniq []Point, orig []int) {
	seen := make(map[Point]struct{}, len(pts))
	for i, p := range pts {
		if _, dup := seen[p]; dup {
			continue
		}
		seen[p] = struct{}{}
		uniq = append(uniq, p)
		orig = append(orig, i)
	}
	return uniq, orig
}

type edgeKey struct{ u, v int }

func ek(u, v int) edgeKey {
	if u > v {
		u, v = v, u
	}
	return edgeKey{u, v}
}

func normalizeCCW(pts []Point, tr Triangle) Triangle {
	if Orient(pts[tr.A], pts[tr.B], pts[tr.C]) < 0 {
		tr.B, tr.C = tr.C, tr.B
	}
	return tr
}

func hasDuplicates(pts []Point) bool {
	seen := make(map[Point]struct{}, len(pts))
	for _, p := range pts {
		if _, dup := seen[p]; dup {
			return true
		}
		seen[p] = struct{}{}
	}
	return false
}

func allCollinear(pts []Point) bool {
	if len(pts) < 3 {
		return true
	}
	for i := 2; i < len(pts); i++ {
		if Orient(pts[0], pts[1], pts[i]) != 0 {
			return false
		}
	}
	return true
}

// collinearOrder returns indices of collinear pts sorted along their common
// line.
func collinearOrder(pts []Point) []int {
	idx := make([]int, len(pts))
	for i := range idx {
		idx[i] = i
	}
	// Project on the dominant axis of the direction vector.
	dir := pts[1].Sub(pts[0])
	useX := abs(dir.X) >= abs(dir.Y)
	sort.Slice(idx, func(i, j int) bool {
		a, b := pts[idx[i]], pts[idx[j]]
		if useX {
			if a.X != b.X {
				return a.X < b.X
			}
			return a.Y < b.Y
		}
		if a.Y != b.Y {
			return a.Y < b.Y
		}
		return a.X < b.X
	})
	return idx
}
