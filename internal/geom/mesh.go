package geom

// Adjacency-based incremental Delaunay (Bowyer–Watson on a linked
// triangle mesh). The reference implementation in delaunay.go rescans
// every triangle per insertion, which is O(n²) overall and dominated the
// GLR routing loop's spanner construction at scale. This mesh keeps
// triangle neighbor links so each insertion is local:
//
//   - point location walks the mesh from the previously touched triangle
//     instead of scanning;
//   - the cavity (triangles whose circumcircle contains the new point) is
//     found by breadth-first search across neighbor links from the
//     containing triangle;
//   - the hull is represented by ghost triangles sharing a virtual vertex
//     at infinity, so points outside the current hull need no special
//     code path — a ghost's "circumcircle" is the open half-plane its
//     hull edge sees.
//
// All working storage lives in the Triangulator and is reused across
// builds, eliminating the per-rebuild allocation churn of the reference
// path. Exact degeneracies that the fan retriangulation cannot express in
// a linked mesh (a new point exactly collinear with a cavity-boundary
// edge, which only arises for inputs with exactly collinear triples) are
// detected and handed to the reference implementation, so results are
// always well defined for any float64 input.

// ghostVertex is the virtual at-infinity vertex shared by hull (ghost)
// triangles.
const ghostVertex = -1

// meshTri is one triangle of the linked mesh: vertices in counterclockwise
// cyclic order (ghostVertex for the infinite vertex) and, per corner, the
// neighbor across the opposite edge.
type meshTri struct {
	v [3]int
	n [3]int
}

// ghost reports whether the triangle touches the at-infinity vertex.
func (t *meshTri) ghost() bool {
	return t.v[0] == ghostVertex || t.v[1] == ghostVertex || t.v[2] == ghostVertex
}

// boundEdge is one directed edge of a cavity boundary (cavity on the
// left), together with the surviving triangle on its right and the slot
// in that triangle pointing back into the cavity.
type boundEdge struct {
	a, b    int // directed edge, cavity on the left
	out     int // surviving neighbor across the edge
	outSlot int // index into out's n[] that pointed at the cavity
}

// Triangulator incrementally builds Delaunay triangulations, reusing its
// mesh and scratch buffers across Triangulate calls. It is not safe for
// concurrent use; create one per goroutine (the spanner cache in
// internal/ldt owns one per simulated world).
type Triangulator struct {
	pts  []Point
	tris []meshTri
	free []int

	state    []uint32 // per-triangle BFS state (see curBad/curGood)
	stateGen uint32

	stack  []int
	cavity []int
	bound  []boundEdge

	// fanAt links the two new fan triangles sharing each cavity-boundary
	// vertex during retriangulation. Keys are vertex ids (ghostVertex
	// included); entries are cleared after every insertion.
	fanAt map[int]fanSlot

	last int // walk start hint: a live real triangle, or -1
}

type fanSlot struct {
	tri  int
	slot int
}

// NewTriangulator returns an empty Triangulator.
func NewTriangulator() *Triangulator {
	return &Triangulator{fanAt: make(map[int]fanSlot), last: -1}
}

// Triangulate computes the Delaunay triangulation of pts. The returned
// Triangulation is freshly allocated and independent of the Triangulator;
// internal mesh storage is reused across calls. Semantics match Delaunay:
// duplicate points are rejected, and fewer than 3 points or an all-
// collinear input yield a triangulation with no triangles.
func (tr *Triangulator) Triangulate(pts []Point) (*Triangulation, error) {
	t := &Triangulation{Points: pts}
	if hasDuplicates(pts) {
		return nil, ErrDuplicatePoint
	}
	if len(pts) < 3 || allCollinear(pts) {
		return t, nil
	}
	if !tr.build(pts) {
		// Exact degeneracy the mesh cannot express: defer to the
		// reference construction (rare; requires exactly collinear
		// triples positioned to make a zero-area fan).
		return DelaunayRef(pts)
	}
	t.Triangles = tr.collect()
	return t, nil
}

// Graph computes the Delaunay edge graph of pts with the same degenerate-
// input semantics as DelaunayGraph (collinear inputs connect in path
// order).
func (tr *Triangulator) Graph(pts []Point) (*Graph, error) {
	g := NewGraph(len(pts))
	if len(pts) < 2 {
		return g, nil
	}
	if hasDuplicates(pts) {
		return nil, ErrDuplicatePoint
	}
	if len(pts) == 2 {
		g.AddEdge(0, 1)
		return g, nil
	}
	if allCollinear(pts) {
		order := collinearOrder(pts)
		for i := 0; i+1 < len(order); i++ {
			g.AddEdge(order[i], order[i+1])
		}
		return g, nil
	}
	if !tr.build(pts) {
		return DelaunayGraphRef(pts)
	}
	for ti := range tr.tris {
		if tr.dead(ti) {
			continue
		}
		mt := &tr.tris[ti]
		if mt.ghost() {
			continue
		}
		g.AddEdge(mt.v[0], mt.v[1])
		g.AddEdge(mt.v[1], mt.v[2])
		g.AddEdge(mt.v[2], mt.v[0])
	}
	return g, nil
}

// build runs the incremental construction over pts, which must contain a
// non-collinear triple and no duplicates. It reports false when an exact
// degeneracy requires the reference fallback.
func (tr *Triangulator) build(pts []Point) bool {
	tr.reset(pts)
	n := len(pts)

	// Seed with the first non-collinear triple (0, 1, seed), in the same
	// order as the reference construction. Guard the scan: with exact
	// predicates allCollinear and this loop agree, but the bound keeps a
	// future predicate change from indexing past the slice.
	seed := 2
	for seed < n && Orient(pts[0], pts[1], pts[seed]) == 0 {
		seed++
	}
	if seed == n {
		return false
	}
	tr.seedMesh(0, 1, seed)

	for i := 2; i < n; i++ {
		if i == seed {
			continue
		}
		if !tr.insert(i) {
			return false
		}
	}
	return true
}

// reset prepares the Triangulator for a fresh build over pts.
func (tr *Triangulator) reset(pts []Point) {
	tr.pts = pts
	tr.tris = tr.tris[:0]
	tr.free = tr.free[:0]
	tr.state = tr.state[:0]
	tr.stateGen = 0
	tr.last = -1
}

// alloc returns a triangle slot, reusing freed ones.
func (tr *Triangulator) alloc(v0, v1, v2 int) int {
	if k := len(tr.free); k > 0 {
		ti := tr.free[k-1]
		tr.free = tr.free[:k-1]
		tr.tris[ti] = meshTri{v: [3]int{v0, v1, v2}, n: [3]int{-1, -1, -1}}
		return ti
	}
	tr.tris = append(tr.tris, meshTri{v: [3]int{v0, v1, v2}, n: [3]int{-1, -1, -1}})
	tr.state = append(tr.state, 0)
	return len(tr.tris) - 1
}

// dead reports whether a slot is on the free list. Freed slots are marked
// by a ghost-only sentinel.
func (tr *Triangulator) dead(ti int) bool {
	v := &tr.tris[ti].v
	return v[0] == ghostVertex && v[1] == ghostVertex && v[2] == ghostVertex
}

func (tr *Triangulator) release(ti int) {
	tr.tris[ti].v = [3]int{ghostVertex, ghostVertex, ghostVertex}
	tr.free = append(tr.free, ti)
}

// seedMesh installs the first triangle (a, b, c oriented CCW) and its
// three ghosts.
func (tr *Triangulator) seedMesh(a, b, c int) {
	if Orient(tr.pts[a], tr.pts[b], tr.pts[c]) < 0 {
		b, c = c, b
	}
	t0 := tr.alloc(a, b, c)
	// Ghost for hull edge u→v is (v, u, ghost): its "circumcircle" is the
	// open half-plane strictly right of u→v.
	gab := tr.alloc(b, a, ghostVertex)
	gbc := tr.alloc(c, b, ghostVertex)
	gca := tr.alloc(a, c, ghostVertex)
	tr.tris[t0].n = [3]int{gbc, gca, gab}
	tr.tris[gab].n = [3]int{gca, gbc, t0}
	tr.tris[gbc].n = [3]int{gab, gca, t0}
	tr.tris[gca].n = [3]int{gbc, gab, t0}
	tr.last = t0
}

// bad reports whether triangle ti's circumcircle strictly contains p: the
// InCircle predicate for real triangles, strict hull-edge visibility for
// ghosts.
func (tr *Triangulator) bad(ti int, p Point) bool {
	mt := &tr.tris[ti]
	for k := 0; k < 3; k++ {
		if mt.v[k] == ghostVertex {
			u, v := mt.v[(k+1)%3], mt.v[(k+2)%3]
			return Orient(tr.pts[u], tr.pts[v], p) > 0
		}
	}
	return InCircle(tr.pts[mt.v[0]], tr.pts[mt.v[1]], tr.pts[mt.v[2]], p) > 0
}

// locate walks the mesh toward p and returns a triangle whose circumcircle
// strictly contains p (real containing triangle, or a strictly visible
// ghost when p lies outside the hull). It reports false on the exact
// degeneracies the caller must hand to the reference path.
func (tr *Triangulator) locate(p Point) (int, bool) {
	ti := tr.last
	if ti < 0 || tr.dead(ti) || tr.tris[ti].ghost() {
		ti = -1
		for k := range tr.tris {
			if !tr.dead(k) && !tr.tris[k].ghost() {
				ti = k
				break
			}
		}
		if ti < 0 {
			return 0, false
		}
	}
	// Visibility walk: cross any edge that p lies strictly outside of.
	// The walk terminates on a Delaunay mesh; the step cap turns any
	// surprise into a safe fallback instead of a spin.
	for steps := 4*len(tr.tris) + 16; steps > 0; steps-- {
		mt := &tr.tris[ti]
		moved := false
		for k := 0; k < 3; k++ {
			u, v := mt.v[(k+1)%3], mt.v[(k+2)%3]
			if Orient(tr.pts[u], tr.pts[v], p) < 0 {
				next := mt.n[k]
				if tr.tris[next].ghost() {
					return tr.visibleGhost(next, p)
				}
				ti = next
				moved = true
				break
			}
		}
		if !moved {
			return ti, true // p inside or on the boundary of ti
		}
	}
	return 0, false
}

// visibleGhost returns a ghost whose hull edge strictly sees p, starting
// from a ghost the locate walk exited through and scanning the ghost ring
// when that edge sees p only degenerately (p exactly on the hull line).
func (tr *Triangulator) visibleGhost(gi int, p Point) (int, bool) {
	start := gi
	for {
		if tr.bad(gi, p) {
			return gi, true
		}
		// Advance around the ghost ring: the neighbor across the spoke
		// opposite the first real vertex is the adjacent ghost.
		mt := &tr.tris[gi]
		next := -1
		for k := 0; k < 3; k++ {
			if mt.v[k] != ghostVertex && tr.tris[mt.n[k]].ghost() {
				next = mt.n[k]
				break
			}
		}
		if next < 0 || next == start {
			return 0, false
		}
		gi = next
	}
}

// insert adds point index ip to the mesh, reporting false on exact
// degeneracies.
func (tr *Triangulator) insert(ip int) bool {
	p := tr.pts[ip]
	seedTri, ok := tr.locate(p)
	if !ok {
		return false
	}
	if !tr.bad(seedTri, p) {
		// locate found a containing triangle whose circumcircle does not
		// strictly contain p — only possible for a duplicate vertex,
		// which Triangulate already rejected. Treat as degenerate.
		return false
	}

	// Cavity: BFS across neighbor links from the seed. state encodes
	// per-generation bad/good verdicts so the scratch array needs no
	// clearing between insertions.
	curBad := 2*tr.stateGen + 1
	curGood := 2*tr.stateGen + 2
	tr.stateGen++
	tr.stack = tr.stack[:0]
	tr.cavity = tr.cavity[:0]
	tr.bound = tr.bound[:0]

	tr.state[seedTri] = curBad
	tr.stack = append(tr.stack, seedTri)
	tr.cavity = append(tr.cavity, seedTri)
	for len(tr.stack) > 0 {
		ti := tr.stack[len(tr.stack)-1]
		tr.stack = tr.stack[:len(tr.stack)-1]
		mt := &tr.tris[ti]
		for k := 0; k < 3; k++ {
			nb := mt.n[k]
			if tr.state[nb] == curBad {
				continue
			}
			if tr.state[nb] != curGood {
				if tr.bad(nb, p) {
					tr.state[nb] = curBad
					tr.stack = append(tr.stack, nb)
					tr.cavity = append(tr.cavity, nb)
					continue
				}
				tr.state[nb] = curGood
			}
			// Boundary edge opposite corner k, cavity on its left.
			a, b := mt.v[(k+1)%3], mt.v[(k+2)%3]
			outSlot := -1
			for s := 0; s < 3; s++ {
				if tr.tris[nb].n[s] == ti {
					outSlot = s
					break
				}
			}
			if outSlot < 0 {
				return false
			}
			if a != ghostVertex && b != ghostVertex &&
				Orient(tr.pts[a], tr.pts[b], p) <= 0 {
				// A zero-area fan (p exactly collinear with a boundary
				// edge) cannot be linked into the mesh; the reference
				// path handles it by dropping the edge.
				return false
			}
			tr.bound = append(tr.bound, boundEdge{a: a, b: b, out: nb, outSlot: outSlot})
		}
	}

	// Retriangulate: fan p to every boundary edge. Edges that include the
	// ghost vertex produce the new hull ghosts. Side edges pair up via the
	// shared boundary vertex (each appears exactly twice on the cycle).
	firstReal := -1
	for _, e := range tr.bound {
		nt := tr.alloc(e.a, e.b, ip)
		if e.a != ghostVertex && e.b != ghostVertex && firstReal < 0 {
			firstReal = nt
		}
		tr.tris[nt].n[2] = e.out
		tr.tris[e.out].n[e.outSlot] = nt
		// Edge (b, ip) opposite corner 0 pairs at vertex b; edge (ip, a)
		// opposite corner 1 pairs at vertex a.
		tr.linkFan(e.b, nt, 0)
		tr.linkFan(e.a, nt, 1)
	}
	if len(tr.fanAt) != 0 || firstReal < 0 {
		// The boundary was not a simple cycle (only possible on exact
		// degeneracies): abandon the mesh for the reference path.
		for v := range tr.fanAt {
			delete(tr.fanAt, v)
		}
		return false
	}
	for _, ti := range tr.cavity {
		tr.release(ti)
	}
	tr.last = firstReal
	return true
}

// linkFan pairs the two fan triangles meeting at boundary vertex x.
func (tr *Triangulator) linkFan(x, ti, slot int) {
	if prev, ok := tr.fanAt[x]; ok {
		tr.tris[ti].n[slot] = prev.tri
		tr.tris[prev.tri].n[prev.slot] = ti
		delete(tr.fanAt, x)
		return
	}
	tr.fanAt[x] = fanSlot{tri: ti, slot: slot}
}

// collect extracts the live real triangles as a fresh slice.
func (tr *Triangulator) collect() []Triangle {
	out := make([]Triangle, 0, len(tr.tris)-len(tr.free))
	for ti := range tr.tris {
		if tr.dead(ti) {
			continue
		}
		mt := &tr.tris[ti]
		if mt.ghost() {
			continue
		}
		out = append(out, Triangle{A: mt.v[0], B: mt.v[1], C: mt.v[2]})
	}
	return out
}
