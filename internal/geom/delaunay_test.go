package geom

import (
	"math/rand"
	"testing"
)

func TestDelaunaySquare(t *testing.T) {
	// Four corners of a square: two triangles, five edges (one diagonal).
	pts := []Point{Pt(0, 0), Pt(1, 0), Pt(1, 1), Pt(0, 1)}
	tri, err := Delaunay(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tri.Triangles) != 2 {
		t.Fatalf("got %d triangles, want 2", len(tri.Triangles))
	}
	if got := len(tri.Edges()); got != 5 {
		t.Fatalf("got %d edges, want 5", got)
	}
}

func TestDelaunayCocircularSquareIsValid(t *testing.T) {
	// All four square corners are cocircular; either diagonal is a valid
	// Delaunay triangulation. Verify the result is a triangulation at all
	// and satisfies the (non-strict) empty-circle property.
	pts := []Point{Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2)}
	tri, err := Delaunay(pts)
	if err != nil {
		t.Fatal(err)
	}
	assertDelaunayValid(t, tri)
}

func TestDelaunayDegenerate(t *testing.T) {
	tests := []struct {
		name string
		pts  []Point
	}{
		{"empty", nil},
		{"single", []Point{Pt(1, 2)}},
		{"pair", []Point{Pt(0, 0), Pt(1, 0)}},
		{"collinear", []Point{Pt(0, 0), Pt(1, 1), Pt(2, 2), Pt(3, 3)}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			tri, err := Delaunay(tt.pts)
			if err != nil {
				t.Fatal(err)
			}
			if len(tri.Triangles) != 0 {
				t.Errorf("degenerate input should give no triangles, got %d", len(tri.Triangles))
			}
		})
	}
}

func TestDelaunayDuplicateDetection(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(1, 0), Pt(0, 0)}
	if _, err := Delaunay(pts); err != ErrDuplicatePoint {
		t.Errorf("got err %v, want ErrDuplicatePoint", err)
	}
}

func TestDelaunayGraphDegenerate(t *testing.T) {
	// Collinear points must be connected in path order (the DT limit).
	pts := []Point{Pt(3, 3), Pt(0, 0), Pt(2, 2), Pt(1, 1)}
	g, err := DelaunayGraph(pts)
	if err != nil {
		t.Fatal(err)
	}
	wantEdges := [][2]int{{0, 2}, {1, 3}, {2, 3}}
	got := g.Edges()
	if len(got) != len(wantEdges) {
		t.Fatalf("got edges %v, want %v", got, wantEdges)
	}
	for i, e := range wantEdges {
		if got[i] != e {
			t.Fatalf("got edges %v, want %v", got, wantEdges)
		}
	}
	// Two points.
	g2, err := DelaunayGraph([]Point{Pt(0, 0), Pt(5, 5)})
	if err != nil {
		t.Fatal(err)
	}
	if !g2.HasEdge(0, 1) {
		t.Error("two-point Delaunay graph must connect the pair")
	}
}

// assertDelaunayValid checks the three defining properties on small inputs:
// every triangle is CCW, no point lies strictly inside any circumcircle,
// and the triangulation covers the convex hull (checked via Euler's
// relation for triangulations of point sets: T = 2n − h − 2).
func assertDelaunayValid(t *testing.T, tri *Triangulation) {
	t.Helper()
	pts := tri.Points
	for _, tr := range tri.Triangles {
		if Orient(pts[tr.A], pts[tr.B], pts[tr.C]) <= 0 {
			t.Fatalf("triangle %v not CCW", tr)
		}
		for i, p := range pts {
			if i == tr.A || i == tr.B || i == tr.C {
				continue
			}
			if InCircle(pts[tr.A], pts[tr.B], pts[tr.C], p) > 0 {
				t.Fatalf("point %d strictly inside circumcircle of %v", i, tr)
			}
		}
	}
	if len(pts) >= 3 && !allCollinear(pts) {
		h := boundaryPointCount(pts)
		wantTriangles := 2*len(pts) - h - 2
		if len(tri.Triangles) != wantTriangles {
			t.Fatalf("got %d triangles, want %d (n=%d h=%d): triangulation does not cover hull",
				len(tri.Triangles), wantTriangles, len(pts), h)
		}
	}
}

// boundaryPointCount returns the number of input points lying on the convex
// hull boundary (hull vertices plus points collinear on hull edges) — the h
// in Euler's triangle-count relation T = 2n − h − 2.
func boundaryPointCount(pts []Point) int {
	hull := ConvexHull(pts)
	count := 0
	for _, p := range pts {
		for i := range hull {
			a := pts[hull[i]]
			b := pts[hull[(i+1)%len(hull)]]
			if PointOnSegment(p, a, b) {
				count++
				break
			}
		}
	}
	return count
}

func TestDelaunayRandomValid(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(40)
		pts := randomPoints(rng, n, 1000, 1000)
		tri, err := Delaunay(pts)
		if err != nil {
			t.Fatal(err)
		}
		assertDelaunayValid(t, tri)
	}
}

func TestDelaunayClusteredValid(t *testing.T) {
	// Clustered points stress the in-circle predicate with nearly
	// cocircular configurations.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 10 + rng.Intn(20)
		pts := make([]Point, 0, n)
		seen := map[Point]struct{}{}
		for len(pts) < n {
			p := Pt(500+rng.Float64(), 500+rng.Float64())
			if _, dup := seen[p]; dup {
				continue
			}
			seen[p] = struct{}{}
			pts = append(pts, p)
		}
		tri, err := Delaunay(pts)
		if err != nil {
			t.Fatal(err)
		}
		assertDelaunayValid(t, tri)
	}
}

func TestDelaunayGridNearlyCocircular(t *testing.T) {
	// A perfect grid has many exactly-cocircular 4-point sets; the exact
	// predicates must keep the triangulation consistent.
	var pts []Point
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			pts = append(pts, Pt(float64(i), float64(j)))
		}
	}
	tri, err := Delaunay(pts)
	if err != nil {
		t.Fatal(err)
	}
	pts2 := tri.Points
	for _, tr := range tri.Triangles {
		if Orient(pts2[tr.A], pts2[tr.B], pts2[tr.C]) <= 0 {
			t.Fatalf("triangle %v not CCW", tr)
		}
		for i, p := range pts2 {
			if i == tr.A || i == tr.B || i == tr.C {
				continue
			}
			if InCircle(pts2[tr.A], pts2[tr.B], pts2[tr.C], p) > 0 {
				t.Fatalf("grid: point %d strictly inside circumcircle of %v", i, tr)
			}
		}
	}
	// 5×5 grid: 16 points on the hull boundary ⇒ T = 2·25 − 16 − 2 = 32.
	h := boundaryPointCount(pts)
	want := 2*len(pts) - h - 2
	if h != 16 || want != 32 {
		t.Fatalf("boundary point count = %d (want 16)", h)
	}
	if len(tri.Triangles) != want {
		t.Fatalf("grid triangulation has %d triangles, want %d", len(tri.Triangles), want)
	}
}

func TestDelaunayGraphPlanar(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		pts := randomPoints(rng, 30, 500, 500)
		g, err := DelaunayGraph(pts)
		if err != nil {
			t.Fatal(err)
		}
		if !g.IsPlanarEmbedding(pts) {
			t.Fatal("Delaunay graph must be planar")
		}
		if !g.Connected() {
			t.Fatal("Delaunay graph must be connected")
		}
	}
}

func TestDelaunayContainsNearestNeighborEdges(t *testing.T) {
	// The nearest-neighbor graph is a subgraph of the Delaunay
	// triangulation — a classical property, good end-to-end check.
	rng := rand.New(rand.NewSource(7))
	pts := randomPoints(rng, 60, 1000, 1000)
	g, err := DelaunayGraph(pts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		best, bestD := -1, 0.0
		for j := range pts {
			if i == j {
				continue
			}
			d := pts[i].Dist2(pts[j])
			if best == -1 || d < bestD {
				best, bestD = j, d
			}
		}
		if !g.HasEdge(i, best) {
			t.Fatalf("nearest-neighbor edge (%d,%d) missing from Delaunay graph", i, best)
		}
	}
}

func TestDedupPoints(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(1, 1), Pt(0, 0), Pt(2, 2), Pt(1, 1)}
	uniq, orig := DedupPoints(pts)
	if len(uniq) != 3 {
		t.Fatalf("got %d unique points, want 3", len(uniq))
	}
	want := []int{0, 1, 3}
	for i, o := range orig {
		if o != want[i] {
			t.Errorf("orig[%d] = %d, want %d", i, o, want[i])
		}
	}
}

func BenchmarkDelaunay50(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	pts := randomPoints(rng, 50, 1500, 300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Delaunay(pts); err != nil {
			b.Fatal(err)
		}
	}
}
