package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	tests := []struct {
		name string
		got  Point
		want Point
	}{
		{"add", Pt(1, 2).Add(Pt(3, -4)), Pt(4, -2)},
		{"sub", Pt(1, 2).Sub(Pt(3, -4)), Pt(-2, 6)},
		{"scale", Pt(1.5, -2).Scale(2), Pt(3, -4)},
		{"lerp mid", Pt(0, 0).Lerp(Pt(10, 4), 0.5), Pt(5, 2)},
		{"lerp zero", Pt(7, 8).Lerp(Pt(10, 4), 0), Pt(7, 8)},
		{"lerp one", Pt(7, 8).Lerp(Pt(10, 4), 1), Pt(10, 4)},
		{"midpoint", Midpoint(Pt(0, 0), Pt(4, 6)), Pt(2, 3)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if !tt.got.Eq(tt.want) {
				t.Errorf("got %v, want %v", tt.got, tt.want)
			}
		})
	}
}

func TestDistAndNorm(t *testing.T) {
	if got := Pt(0, 0).Dist(Pt(3, 4)); got != 5 {
		t.Errorf("Dist = %v, want 5", got)
	}
	if got := Pt(0, 0).Dist2(Pt(3, 4)); got != 25 {
		t.Errorf("Dist2 = %v, want 25", got)
	}
	if got := Pt(3, 4).Norm(); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := Pt(3, 4).Norm2(); got != 25 {
		t.Errorf("Norm2 = %v, want 25", got)
	}
}

func TestDotCross(t *testing.T) {
	a, b := Pt(2, 3), Pt(-1, 4)
	if got := a.Dot(b); got != 10 {
		t.Errorf("Dot = %v, want 10", got)
	}
	if got := a.Cross(b); got != 11 {
		t.Errorf("Cross = %v, want 11", got)
	}
}

func TestAngle(t *testing.T) {
	if got := Pt(1, 0).Angle(); got != 0 {
		t.Errorf("Angle(+x) = %v, want 0", got)
	}
	if got := Pt(0, 1).Angle(); math.Abs(got-math.Pi/2) > 1e-15 {
		t.Errorf("Angle(+y) = %v, want π/2", got)
	}
	if got := Pt(0, 0).AngleTo(Pt(-1, 0)); math.Abs(got-math.Pi) > 1e-15 {
		t.Errorf("AngleTo(-x) = %v, want π", got)
	}
}

func TestCircumcenter(t *testing.T) {
	c, ok := Circumcenter(Pt(0, 0), Pt(2, 0), Pt(1, 1))
	if !ok {
		t.Fatal("expected circumcenter to exist")
	}
	want := Pt(1, 0)
	if c.Dist(want) > 1e-12 {
		t.Errorf("circumcenter = %v, want %v", c, want)
	}
	if _, ok := Circumcenter(Pt(0, 0), Pt(1, 1), Pt(2, 2)); ok {
		t.Error("collinear points should have no circumcenter")
	}
}

func TestCircumcenterEquidistantProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a := Pt(rng.Float64()*100, rng.Float64()*100)
		b := Pt(rng.Float64()*100, rng.Float64()*100)
		c := Pt(rng.Float64()*100, rng.Float64()*100)
		ctr, ok := Circumcenter(a, b, c)
		if !ok {
			continue
		}
		da, db, dc := ctr.Dist(a), ctr.Dist(b), ctr.Dist(c)
		if math.Abs(da-db) > 1e-6*da || math.Abs(da-dc) > 1e-6*da {
			t.Fatalf("circumcenter not equidistant: %v %v %v", da, db, dc)
		}
	}
}

func TestSegmentsProperlyIntersect(t *testing.T) {
	tests := []struct {
		name       string
		a, b, c, d Point
		want       bool
	}{
		{"crossing X", Pt(0, 0), Pt(2, 2), Pt(0, 2), Pt(2, 0), true},
		{"parallel", Pt(0, 0), Pt(2, 0), Pt(0, 1), Pt(2, 1), false},
		{"shared endpoint", Pt(0, 0), Pt(2, 2), Pt(2, 2), Pt(4, 0), false},
		{"T junction", Pt(0, 0), Pt(4, 0), Pt(2, 0), Pt(2, 3), false},
		{"disjoint", Pt(0, 0), Pt(1, 0), Pt(5, 5), Pt(6, 6), false},
		{"collinear overlap", Pt(0, 0), Pt(3, 0), Pt(1, 0), Pt(2, 0), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := SegmentsProperlyIntersect(tt.a, tt.b, tt.c, tt.d); got != tt.want {
				t.Errorf("got %v, want %v", got, tt.want)
			}
		})
	}
}

func TestPointOnSegment(t *testing.T) {
	if !PointOnSegment(Pt(1, 1), Pt(0, 0), Pt(2, 2)) {
		t.Error("midpoint should be on segment")
	}
	if !PointOnSegment(Pt(0, 0), Pt(0, 0), Pt(2, 2)) {
		t.Error("endpoint should be on segment")
	}
	if PointOnSegment(Pt(3, 3), Pt(0, 0), Pt(2, 2)) {
		t.Error("point beyond endpoint is not on segment")
	}
	if PointOnSegment(Pt(1, 0), Pt(0, 0), Pt(2, 2)) {
		t.Error("off-line point is not on segment")
	}
}

func TestDistPointToSegment(t *testing.T) {
	tests := []struct {
		name    string
		p, a, b Point
		want    float64
	}{
		{"perpendicular foot inside", Pt(1, 1), Pt(0, 0), Pt(2, 0), 1},
		{"nearest is endpoint a", Pt(-2, 0), Pt(0, 0), Pt(2, 0), 2},
		{"nearest is endpoint b", Pt(5, 4), Pt(0, 0), Pt(2, 0), 5},
		{"degenerate segment", Pt(3, 4), Pt(0, 0), Pt(0, 0), 5},
		{"on segment", Pt(1, 0), Pt(0, 0), Pt(2, 0), 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := DistPointToSegment(tt.p, tt.a, tt.b); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("got %v, want %v", got, tt.want)
			}
		})
	}
}

func TestDistSymmetryQuick(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if math.IsNaN(ax) || math.IsNaN(ay) || math.IsNaN(bx) || math.IsNaN(by) {
			return true
		}
		a, b := Pt(ax, ay), Pt(bx, by)
		d1, d2 := a.Dist(b), b.Dist(a)
		return d1 == d2 && (d1 >= 0 || math.IsInf(d1, 1) || math.IsNaN(d1))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequalityQuick(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 500,
		Values:   boundedPointsValues(3, 1e6),
	}
	f := func(pts []Point) bool {
		a, b, c := pts[0], pts[1], pts[2]
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-6
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
