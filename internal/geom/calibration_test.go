package geom

import "testing"

// BenchmarkCalibration is a fixed, deterministic, CPU-bound workload with
// an instruction mix close to the geometric hot paths (predicate
// arithmetic over float64s). It is NOT gated by the CI bench-regression
// job; cmd/benchgate uses it as a machine-speed probe to normalize ns/op
// before comparing against the committed baseline, so the gate measures
// code regressions rather than runner-hardware differences.
func BenchmarkCalibration(b *testing.B) {
	pts := randomBenchPoints(64, 1)
	sink := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j+3 < len(pts); j++ {
			sink += Orient(pts[j], pts[j+1], pts[j+2])
			sink += InCircle(pts[j], pts[j+1], pts[j+2], pts[j+3])
		}
	}
	if sink == 0 {
		b.Fatal("degenerate calibration input")
	}
}
