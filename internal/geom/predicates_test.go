package geom

import (
	"math/rand"
	"testing"
)

func TestOrientBasic(t *testing.T) {
	tests := []struct {
		name    string
		a, b, c Point
		sign    int
	}{
		{"ccw", Pt(0, 0), Pt(1, 0), Pt(0, 1), +1},
		{"cw", Pt(0, 0), Pt(0, 1), Pt(1, 0), -1},
		{"collinear diag", Pt(0, 0), Pt(1, 1), Pt(2, 2), 0},
		{"collinear x", Pt(0, 5), Pt(3, 5), Pt(-7, 5), 0},
		{"ccw big", Pt(-1e9, -1e9), Pt(1e9, -1e9), Pt(0, 1e9), +1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Orient(tt.a, tt.b, tt.c)
			if sign(got) != tt.sign {
				t.Errorf("Orient = %v (sign %d), want sign %d", got, sign(got), tt.sign)
			}
		})
	}
}

// TestOrientNearDegenerate exercises the exact-arithmetic fallback: the
// points are collinear up to a relative offset of one ulp, and naive
// float64 evaluation returns an incorrectly-signed value for some of them.
func TestOrientNearDegenerate(t *testing.T) {
	a := Pt(0.1, 0.1)
	b := Pt(0.2, 0.2)
	// Exactly collinear in the reals; float64 can't represent 0.3
	// exactly so this stresses the error-bound path.
	c := Pt(0.3, 0.3)
	if got := Orient(a, b, c); got != 0 {
		// 0.1, 0.2, 0.3 as float64 are NOT exactly collinear; the exact
		// predicate must still give a consistent (anti)symmetric answer.
		if sign(Orient(b, a, c)) != -sign(got) {
			t.Errorf("Orient not antisymmetric near degeneracy")
		}
	}
	// An exactly collinear triple built from representable values.
	p := Pt(1.0/8, 3.0/8)
	q := Pt(2.0/8, 6.0/8)
	r := Pt(4.0/8, 12.0/8)
	if got := Orient(p, q, r); got != 0 {
		t.Errorf("Orient of exactly collinear dyadic points = %v, want 0", got)
	}
}

func TestOrientAntisymmetryRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		a := Pt(rng.Float64(), rng.Float64())
		b := Pt(rng.Float64(), rng.Float64())
		c := Pt(rng.Float64(), rng.Float64())
		if sign(Orient(a, b, c)) != -sign(Orient(b, a, c)) {
			t.Fatalf("Orient(a,b,c) and Orient(b,a,c) must have opposite signs")
		}
		if sign(Orient(a, b, c)) != sign(Orient(b, c, a)) {
			t.Fatalf("Orient must be invariant under cyclic rotation")
		}
	}
}

func TestInCircleBasic(t *testing.T) {
	// Unit circle through (1,0), (0,1), (-1,0) — CCW order.
	a, b, c := Pt(1, 0), Pt(0, 1), Pt(-1, 0)
	tests := []struct {
		name string
		d    Point
		sign int
	}{
		{"center inside", Pt(0, 0), +1},
		{"far outside", Pt(5, 5), -1},
		{"on circle", Pt(0, -1), 0},
		{"just inside", Pt(0, 0.999999), +1},
		{"just outside", Pt(0, 1.000001), -1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := InCircle(a, b, c, tt.d)
			if sign(got) != tt.sign {
				t.Errorf("InCircle = %v (sign %d), want sign %d", got, sign(got), tt.sign)
			}
		})
	}
}

func TestInCircleOrientationFlip(t *testing.T) {
	// Reversing the triangle orientation must flip the in-circle sign.
	a, b, c := Pt(1, 0), Pt(0, 1), Pt(-1, 0)
	d := Pt(0.1, -0.1)
	if sign(InCircle(a, b, c, d)) != -sign(InCircle(a, c, b, d)) {
		t.Error("InCircle sign must flip when triangle orientation flips")
	}
}

func TestInCircleMatchesCircumcenterRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		pts := randomPoints(rng, 4, 100, 100)
		a, b, c, d := pts[0], pts[1], pts[2], pts[3]
		if Orient(a, b, c) <= 0 {
			b, c = c, b
		}
		if Orient(a, b, c) == 0 {
			continue
		}
		ctr, ok := Circumcenter(a, b, c)
		if !ok {
			continue
		}
		r := ctr.Dist(a)
		dd := ctr.Dist(d)
		// Skip numerically marginal cases; the predicate is exact but the
		// reference computation here is not.
		if absf(dd-r) < 1e-9*r {
			continue
		}
		want := +1
		if dd > r {
			want = -1
		}
		if got := sign(InCircle(a, b, c, d)); got != want {
			t.Fatalf("InCircle disagrees with circumcenter distance: got %d want %d", got, want)
		}
	}
}

func sign(x float64) int {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	}
	return 0
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
