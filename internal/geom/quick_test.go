package geom

import (
	"math/rand"
	"reflect"
)

// boundedPointsValues returns a testing/quick value generator that produces
// a single []Point argument of length n with coordinates uniform in
// [-bound, bound]. Using bounded coordinates keeps the geometric predicates
// in a regime where the properties under test are meaningful (no overflow
// to ±Inf).
func boundedPointsValues(n int, bound float64) func([]reflect.Value, *rand.Rand) {
	return func(args []reflect.Value, rng *rand.Rand) {
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{
				X: (rng.Float64()*2 - 1) * bound,
				Y: (rng.Float64()*2 - 1) * bound,
			}
		}
		args[0] = reflect.ValueOf(pts)
	}
}

// randomPoints returns n distinct points uniform in [0,w]×[0,h].
func randomPoints(rng *rand.Rand, n int, w, h float64) []Point {
	pts := make([]Point, 0, n)
	seen := make(map[Point]struct{}, n)
	for len(pts) < n {
		p := Point{X: rng.Float64() * w, Y: rng.Float64() * h}
		if _, dup := seen[p]; dup {
			continue
		}
		seen[p] = struct{}{}
		pts = append(pts, p)
	}
	return pts
}
