package geom

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// pointSetGenerator yields random distinct point sets for testing/quick,
// with coordinates snapped to a grid occasionally to exercise degenerate
// (collinear/cocircular) configurations.
func pointSetGenerator(minN, maxN int) func([]reflect.Value, *rand.Rand) {
	return func(args []reflect.Value, rng *rand.Rand) {
		n := minN + rng.Intn(maxN-minN+1)
		snap := rng.Intn(3) == 0 // every third set lives on a coarse grid
		seen := make(map[Point]struct{}, n)
		pts := make([]Point, 0, n)
		for len(pts) < n {
			var p Point
			if snap {
				p = Pt(float64(rng.Intn(12))*25, float64(rng.Intn(12))*25)
			} else {
				p = Pt(rng.Float64()*1000, rng.Float64()*1000)
			}
			if _, dup := seen[p]; dup {
				continue
			}
			seen[p] = struct{}{}
			pts = append(pts, p)
		}
		args[0] = reflect.ValueOf(pts)
	}
}

// Property: the Delaunay triangulation is planar and satisfies the
// empty-circumcircle condition on any distinct point set, including
// grid-degenerate ones.
func TestDelaunayPropertyQuick(t *testing.T) {
	f := func(pts []Point) bool {
		tri, err := Delaunay(pts)
		if err != nil {
			return false
		}
		for _, tr := range tri.Triangles {
			if Orient(pts[tr.A], pts[tr.B], pts[tr.C]) <= 0 {
				return false
			}
			for i, p := range pts {
				if i == tr.A || i == tr.B || i == tr.C {
					continue
				}
				if InCircle(pts[tr.A], pts[tr.B], pts[tr.C], p) > 0 {
					return false
				}
			}
		}
		g := NewGraph(len(pts))
		for _, e := range tri.Edges() {
			g.AddEdge(e[0], e[1])
		}
		return g.IsPlanarEmbedding(pts)
	}
	cfg := &quick.Config{MaxCount: 60, Values: pointSetGenerator(3, 24)}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: the convex hull contains every input point and its vertices
// are in strictly counterclockwise order.
func TestConvexHullPropertyQuick(t *testing.T) {
	f := func(pts []Point) bool {
		hull := ConvexHull(pts)
		if len(hull) >= 3 {
			for i := range hull {
				a := pts[hull[i]]
				b := pts[hull[(i+1)%len(hull)]]
				c := pts[hull[(i+2)%len(hull)]]
				if Orient(a, b, c) <= 0 {
					return false
				}
			}
		}
		for _, p := range pts {
			if !InConvexHull(pts, p) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 80, Values: pointSetGenerator(1, 30)}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: KHop neighborhoods are monotone in k and bounded by the
// connected component.
func TestKHopMonotoneQuick(t *testing.T) {
	f := func(pts []Point) bool {
		g := UnitDiskGraph(pts, 200)
		prev := 0
		for k := 0; k <= 4; k++ {
			h := g.KHop(0, k)
			if len(h) < prev {
				return false
			}
			prev = len(h)
		}
		comp := g.Components()[componentOf(g, 0)]
		return prev <= len(comp)
	}
	cfg := &quick.Config{MaxCount: 60, Values: pointSetGenerator(2, 25)}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func componentOf(g *Graph, v int) int {
	for i, c := range g.Components() {
		for _, u := range c {
			if u == v {
				return i
			}
		}
	}
	return -1
}

// Property: Delaunay edge lengths dominate the nearest-neighbor distance
// (every vertex keeps an edge to its nearest neighbor), and the
// triangulation's total edge count obeys the planar bound.
func TestDelaunayEdgeBoundsQuick(t *testing.T) {
	f := func(pts []Point) bool {
		g, err := DelaunayGraph(pts)
		if err != nil {
			return false
		}
		if g.EdgeCount() > 3*len(pts)-6 && len(pts) >= 3 {
			return false
		}
		for i := range pts {
			if len(pts) < 2 {
				break
			}
			best, bestD := -1, math.Inf(1)
			for j := range pts {
				if i == j {
					continue
				}
				if d := pts[i].Dist2(pts[j]); d < bestD {
					best, bestD = j, d
				}
			}
			// Nearest-neighbor edges belong to every Delaunay
			// triangulation except in exact-tie degeneracies; accept
			// either the edge or a tie.
			if !g.HasEdge(i, best) {
				ties := 0
				for j := range pts {
					if j != i && pts[i].Dist2(pts[j]) == bestD {
						ties++
					}
				}
				if ties <= 1 {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Values: pointSetGenerator(2, 20)}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
