package mac

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"glr/internal/des"
	"glr/internal/geom"
)

// recvRecord identifies one successful reception: which radio got which
// frame (frames carry a unique payload tag) at which simulated time.
type recvRecord struct {
	at      des.Time
	radio   int
	src     int
	payload int
}

// equivMedium is one of the two media under comparison, with its own
// scheduler and delivery log.
type equivMedium struct {
	sched  *des.Scheduler
	medium *Medium
	log    []recvRecord
}

// buildEquivMedium wires n radios with the given position functions onto
// a fresh medium. pos functions take the medium's own clock so moving
// topologies evolve identically on both sides.
func buildEquivMedium(t *testing.T, cfg Config, n int, pos func(id int, now des.Time) geom.Point, seed int64) *equivMedium {
	t.Helper()
	sched := des.NewScheduler()
	m, err := NewMedium(sched, cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	em := &equivMedium{sched: sched, medium: m}
	for i := 0; i < n; i++ {
		i := i
		_, err := m.AddRadio(i,
			func() geom.Point { return pos(i, sched.Now()) },
			func(f *Frame) {
				em.log = append(em.log, recvRecord{
					at: sched.Now(), radio: i, src: f.Src, payload: f.Payload.(int),
				})
			},
			nil,
		)
		if err != nil {
			t.Fatal(err)
		}
	}
	return em
}

// TestGridNaiveEquivalence is the property test for the spatial index:
// over randomized topologies (static and moving), MAC parameters, and
// traffic, the grid-indexed medium and the naive full-scan medium must
// deliver the exact same frame sequence and count the exact same stats.
func TestGridNaiveEquivalence(t *testing.T) {
	const trials = 24
	totalDelivered := 0
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("seed=%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial)*7919 + 3))

			n := 8 + rng.Intn(56)
			side := 300 + rng.Float64()*900
			moving := trial%2 == 1
			const reindexEvery = 0.25
			maxSpeed := 0.0
			if moving {
				maxSpeed = 5 + rng.Float64()*25
			}

			// Per-node start positions and velocities; moving nodes
			// drift linearly so both media see identical trajectories.
			starts := make([]geom.Point, n)
			vels := make([]geom.Point, n)
			for i := range starts {
				starts[i] = geom.Pt(rng.Float64()*side, rng.Float64()*side)
				if moving {
					ang := rng.Float64() * 2 * math.Pi
					sp := rng.Float64() * maxSpeed
					vels[i] = geom.Pt(sp*math.Cos(ang), sp*math.Sin(ang))
				}
			}
			pos := func(id int, now des.Time) geom.Point {
				return starts[id].Add(vels[id].Scale(now))
			}

			cfg := DefaultConfig(60 + rng.Float64()*120)
			cfg.CSRangeFactor = 1 + rng.Float64()*1.5
			cfg.VirtualCS = rng.Intn(2) == 0
			if rng.Intn(2) == 0 {
				cfg.CaptureRatio = 0
			}
			cfg.IndexSlack = maxSpeed*reindexEvery + 1

			naiveCfg := cfg
			naiveCfg.DisableSpatialIndex = true

			seed := int64(trial)*31 + 11
			grid := buildEquivMedium(t, cfg, n, pos, seed)
			naive := buildEquivMedium(t, naiveCfg, n, pos, seed)

			// Identical traffic on both media: a mix of broadcasts and
			// unicasts from random sources over the first 5 seconds.
			frames := 10 + rng.Intn(40)
			type sendSpec struct {
				at       des.Time
				src, dst int
				bits     int
			}
			specs := make([]sendSpec, frames)
			for k := range specs {
				sp := sendSpec{
					at:   rng.Float64() * 5,
					src:  rng.Intn(n),
					dst:  Broadcast,
					bits: 400 + rng.Intn(8000),
				}
				if rng.Intn(10) < 3 {
					sp.dst = rng.Intn(n)
				}
				specs[k] = sp
			}
			for _, em := range []*equivMedium{grid, naive} {
				em := em
				for k, sp := range specs {
					k, sp := k, sp
					em.sched.At(sp.at, func() {
						em.medium.radios[sp.src].Send(&Frame{Dst: sp.dst, Bits: sp.bits, Payload: k})
					})
				}
				des.NewTicker(em.sched, reindexEvery, 0, em.medium.Reindex)
				em.sched.Run(30)
			}

			if len(grid.log) != len(naive.log) {
				t.Fatalf("grid delivered %d frames, naive %d", len(grid.log), len(naive.log))
			}
			// The two paths resolve one airing's receivers in different
			// orders (id order vs grid-bucket order), so deliveries
			// within the same instant may be permuted; canonicalize
			// before the exact comparison.
			canon := func(log []recvRecord) {
				sort.Slice(log, func(i, j int) bool {
					a, b := log[i], log[j]
					if a.at != b.at {
						return a.at < b.at
					}
					if a.radio != b.radio {
						return a.radio < b.radio
					}
					if a.src != b.src {
						return a.src < b.src
					}
					return a.payload < b.payload
				})
			}
			canon(grid.log)
			canon(naive.log)
			for i := range grid.log {
				if grid.log[i] != naive.log[i] {
					t.Fatalf("delivery %d differs: grid %+v, naive %+v", i, grid.log[i], naive.log[i])
				}
			}
			if grid.medium.Stats() != naive.medium.Stats() {
				t.Fatalf("stats differ:\n grid  %+v\n naive %+v", grid.medium.Stats(), naive.medium.Stats())
			}
			totalDelivered += len(grid.log)
		})
	}
	// Guard against a vacuous pass: the randomized topologies must
	// actually exercise delivery, not just agree on silence.
	if totalDelivered == 0 {
		t.Fatal("no trial delivered any frame; the property test is vacuous")
	}
}
