package mac

import (
	"glr/internal/des"
	"glr/internal/geom"
)

// Radio is one station on the medium. All methods must be called from the
// simulation goroutine (i.e. from within event handlers).
type Radio struct {
	id     int
	medium *Medium
	pos    func() geom.Point
	onRecv ReceiveFunc
	onSent SentFunc

	queue        []*Frame // FIFO, bounded by Config.QueueLen
	transmitting bool
	attemptArmed bool        // a backoff/deferral attempt event is pending
	attemptFn    des.Handler // shared disarm-and-retry handler (one alloc per radio)
	cw           int         // current contention window in slots
	retries      int         // retries consumed by the head-of-line frame
	// recent holds this radio's own latest airing intervals for
	// half-duplex checks (spatial-index mode only); pruned on each new
	// airing.
	recent []airing

	// Per-radio counters.
	sentOK     uint64
	sentFail   uint64
	queueDrops uint64
	recvCount  uint64
}

// ID returns the radio identifier.
func (r *Radio) ID() int { return r.id }

// QueueLen returns the number of frames waiting (excluding any frame
// currently on the air).
func (r *Radio) QueueLen() int { return len(r.queue) }

// Counters returns (delivered-unicast, failed-unicast, queue-drops,
// frames-received).
func (r *Radio) Counters() (sentOK, sentFail, queueDrops, recv uint64) {
	return r.sentOK, r.sentFail, r.queueDrops, r.recvCount
}

// Send enqueues a frame for transmission. It reports false when the
// link-layer queue is full and the frame was dropped (the paper's queue
// length is 150 frames).
func (r *Radio) Send(f *Frame) bool {
	m := r.medium
	if len(r.queue) >= m.cfg.QueueLen {
		m.stats.QueueDrops++
		r.queueDrops++
		if r.onSent != nil {
			r.onSent(f, false)
		}
		return false
	}
	f.Src = r.id
	r.queue = append(r.queue, f)
	m.stats.FramesQueued++
	r.tryTransmit()
	return true
}

// tryTransmit attempts to put the head-of-line frame on the air, deferring
// with backoff when the channel is sensed busy.
func (r *Radio) tryTransmit() {
	m := r.medium
	if r.transmitting || r.attemptArmed || len(r.queue) == 0 {
		return
	}
	if busy, until := m.busyFor(r.pos()); busy {
		m.stats.BusyDeferrals++
		r.deferUntil(until)
		return
	}
	r.startTransmission()
}

// armAttempt schedules the shared disarm-and-retry handler after wait
// seconds. The handler closure is allocated once per radio (see
// Medium.AddRadio), not per deferral — deferrals are a per-frame hot
// path under contention.
func (r *Radio) armAttempt(wait float64) {
	r.attemptArmed = true
	r.medium.sched.After(wait, r.attemptFn)
}

// deferUntil schedules a fresh channel sense shortly after the sensed
// occupancy clears, plus DIFS and a random backoff.
func (r *Radio) deferUntil(until des.Time) {
	m := r.medium
	r.armAttempt((until - m.sched.Now()) + m.cfg.DIFS + float64(m.rng.Intn(r.cw))*m.cfg.SlotTime)
}

// backoffRetry schedules a retransmission attempt after a collision, with
// an exponentially grown contention window.
func (r *Radio) backoffRetry() {
	m := r.medium
	r.cw = min(r.cw*2, m.cfg.CWMax)
	r.armAttempt(m.cfg.DIFS + float64(1+m.rng.Intn(r.cw))*m.cfg.SlotTime)
}

// startTransmission puts the head-of-line frame on the air.
func (r *Radio) startTransmission() {
	m := r.medium
	f := r.queue[0]
	r.transmitting = true
	now := m.sched.Now()
	t := m.takeTx()
	t.from = r
	t.frame = f
	t.start = now
	t.end = now + m.frameAirtime(f)
	t.pos = r.pos()
	t.hasRx = false
	if f.Dst != Broadcast && f.Dst >= 0 && f.Dst < len(m.radios) {
		// Virtual carrier sense (RTS/CTS): the receiver's surroundings
		// also treat the channel as busy for this airing.
		t.rxPos = m.radios[f.Dst].pos()
		t.hasRx = true
	}
	m.active = append(m.active, t)
	m.inflight++
	m.indexTransmission(t)
	m.stats.Transmissions++
	m.sched.At(t.end, t.onEnd)
}

// endTransmission resolves the airing outcome and advances the queue.
func (r *Radio) endTransmission(t *transmission) {
	m := r.medium
	m.inflight--
	r.transmitting = false
	dstOK := m.finishTransmission(t)
	f := t.frame

	if f.Dst == Broadcast {
		// Broadcast frames are fire-and-forget.
		r.completeHead(f, true)
		return
	}
	if dstOK {
		r.completeHead(f, true)
		return
	}
	// Unicast failure: retry within budget.
	if r.retries < m.cfg.MaxRetries {
		r.retries++
		r.backoffRetry()
		return
	}
	m.stats.UnicastFailures++
	r.completeHead(f, false)
}

// completeHead pops the head-of-line frame, reports its outcome, resets
// contention state, and moves on — after SIFS, modelling ack turnaround.
func (r *Radio) completeHead(f *Frame, ok bool) {
	m := r.medium
	// Shift rather than reslice so the queue's backing array keeps its
	// capacity (queue[1:] would strand one slot per completed frame and
	// force a reallocation on the next Send).
	n := copy(r.queue, r.queue[1:])
	r.queue[n] = nil
	r.queue = r.queue[:n]
	r.retries = 0
	r.cw = m.cfg.CWMin
	if ok {
		r.sentOK++
	} else {
		r.sentFail++
	}
	if r.onSent != nil {
		r.onSent(f, ok)
	}
	if len(r.queue) > 0 {
		r.armAttempt(m.cfg.SIFS)
	}
}
