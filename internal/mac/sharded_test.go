package mac

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"glr/internal/des"
	"glr/internal/geom"
	"glr/internal/shard"
)

// TestShardedReceptionEquivalence: a medium with a shard pool attached
// must produce the exact same delivery sequence — same frames, same
// receivers, same order, same instants — and the same stats as the
// serial medium, across randomized dense broadcast-heavy topologies and
// 2/4/8 workers. Unlike the grid-vs-naive test no canonicalization is
// applied: the sharded path commits in the serial enumeration order, so
// even the within-instant order must match byte for byte.
func TestShardedReceptionEquivalence(t *testing.T) {
	const trials = 12
	totalDelivered := 0
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("seed=%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial)*104917 + 13))

			// Dense on purpose: enough radios per neighborhood to cross
			// the pinned RxMin so the parallel path actually runs.
			n := 40 + rng.Intn(60)
			side := 200 + rng.Float64()*300
			moving := trial%2 == 1
			const reindexEvery = 0.25
			maxSpeed := 0.0
			if moving {
				maxSpeed = 5 + rng.Float64()*25
			}
			starts := make([]geom.Point, n)
			vels := make([]geom.Point, n)
			for i := range starts {
				starts[i] = geom.Pt(rng.Float64()*side, rng.Float64()*side)
				if moving {
					ang := rng.Float64() * 2 * math.Pi
					sp := rng.Float64() * maxSpeed
					vels[i] = geom.Pt(sp*math.Cos(ang), sp*math.Sin(ang))
				}
			}
			pos := func(id int, now des.Time) geom.Point {
				return starts[id].Add(vels[id].Scale(now))
			}

			cfg := DefaultConfig(60 + rng.Float64()*100)
			cfg.CSRangeFactor = 1 + rng.Float64()*1.5
			cfg.VirtualCS = rng.Intn(2) == 0
			if rng.Intn(2) == 0 {
				cfg.CaptureRatio = 0
			}
			cfg.IndexSlack = maxSpeed*reindexEvery + 1

			frames := 30 + rng.Intn(60)
			type sendSpec struct {
				at       des.Time
				src, dst int
				bits     int
			}
			specs := make([]sendSpec, frames)
			for k := range specs {
				sp := sendSpec{
					at:   rng.Float64() * 5,
					src:  rng.Intn(n),
					dst:  Broadcast,
					bits: 400 + rng.Intn(8000),
				}
				if rng.Intn(10) < 2 {
					sp.dst = rng.Intn(n)
				}
				specs[k] = sp
			}
			seed := int64(trial)*77 + 5

			run := func(workers int) *equivMedium {
				em := buildEquivMedium(t, cfg, n, pos, seed)
				if workers > 1 {
					pool := shard.NewPool(workers)
					defer pool.Close()
					em.medium.SetPool(pool, side, testThresholds())
				}
				for k, sp := range specs {
					k, sp := k, sp
					em.sched.At(sp.at, func() {
						em.medium.radios[sp.src].Send(&Frame{Dst: sp.dst, Bits: sp.bits, Payload: k})
					})
				}
				des.NewTicker(em.sched, reindexEvery, 0, em.medium.Reindex)
				em.sched.Run(30)
				return em
			}

			serial := run(1)
			for _, workers := range []int{2, 4, 8} {
				sharded := run(workers)
				if len(sharded.log) != len(serial.log) {
					t.Fatalf("workers=%d: %d deliveries vs %d serial", workers, len(sharded.log), len(serial.log))
				}
				for i := range serial.log {
					if serial.log[i] != sharded.log[i] {
						t.Fatalf("workers=%d delivery %d differs: serial %+v, sharded %+v",
							workers, i, serial.log[i], sharded.log[i])
					}
				}
				if serial.medium.Stats() != sharded.medium.Stats() {
					t.Fatalf("workers=%d stats differ:\n serial  %+v\n sharded %+v",
						workers, serial.medium.Stats(), sharded.medium.Stats())
				}
			}
			totalDelivered += len(serial.log)
		})
	}
	if totalDelivered == 0 {
		t.Fatal("no trial delivered any frame; the property test is vacuous")
	}
}

// TestSetPoolRefusals: serial pools and the naive medium keep the serial
// path.
func TestSetPoolRefusals(t *testing.T) {
	sched := des.NewScheduler()
	cfg := DefaultConfig(100)
	m, err := NewMedium(sched, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.SetPool(shard.NewPool(1), 1000, testThresholds())
	if m.pool != nil {
		t.Fatal("single-worker pool attached")
	}
	m.SetPool(nil, 1000, testThresholds())
	if m.pool != nil {
		t.Fatal("nil pool attached")
	}
	naiveCfg := cfg
	naiveCfg.DisableSpatialIndex = true
	nm, err := NewMedium(des.NewScheduler(), naiveCfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	nm.SetPool(shard.NewPool(4), 1000, testThresholds())
	if nm.pool != nil {
		t.Fatal("naive medium attached a pool")
	}
}

// testThresholds pins the fork thresholds the pre-calibration code used
// (a flat minimum of 8), keeping the equivalence trials' fork decisions
// host-independent.
func testThresholds() shard.Thresholds {
	return shard.Thresholds{RxMin: 8, BeaconMin: 8, MobilityMin: 8, DiffMin: 8}
}
