// Package mac simulates a CSMA/CA-flavoured wireless MAC over a shared
// medium: carrier sensing, random backoff, finite-rate frame
// serialization, receiver-side collision corruption, a bounded link-layer
// queue (150 frames in the paper's Table 1), and bounded retransmission of
// unicast frames.
//
// It deliberately simplifies IEEE 802.11 (no RTS/CTS, no NAV, no
// bit-level capture) while preserving the mechanisms the paper's analysis
// rests on: "the increased contention is the reason why epidemic routing
// slows down when messages increase" and "it is faster because contentions
// are avoided by allowing only reasonable number of identical message
// copies in transit". More traffic here means longer queues, more
// deferrals, and more collisions — exactly those dynamics.
package mac

import (
	"fmt"
	"math/rand"

	"glr/internal/des"
	"glr/internal/geom"
)

// Broadcast is the destination id addressing every radio in range.
const Broadcast = -1

// Config holds medium-wide MAC/PHY parameters.
type Config struct {
	BitRate       float64 // link speed in bits/s (paper: 1 Mbps)
	Range         float64 // reception range in metres
	CSRangeFactor float64 // carrier-sense & interference range as a multiple of Range
	QueueLen      int     // link-layer queue capacity in frames (paper: 150)
	HeaderBits    int     // per-frame PHY+MAC overhead in bits
	SlotTime      float64 // backoff slot, seconds
	DIFS          float64 // idle time required before transmitting, seconds
	SIFS          float64 // turnaround before the implicit ack, seconds
	CWMin         int     // initial contention window, slots
	CWMax         int     // maximum contention window, slots
	MaxRetries    int     // unicast retransmission budget
	// CaptureRatio models the 802.11 capture effect: a reception
	// survives interference when the wanted signal is at least this
	// factor stronger than each interferer at the receiver. Power falls
	// as distance^-4 (two-ray ground), so with ratio 10 an interferer
	// must be within ~1.78× the sender's distance to corrupt the frame.
	// 0 disables capture (any overlap corrupts).
	CaptureRatio float64
	// VirtualCS models RTS/CTS virtual carrier sensing for unicast
	// frames: the channel is also reserved around the receiver, so
	// hidden terminals defer instead of colliding. NS-2's 802.11 used
	// RTS/CTS for all unicast data (RTSThreshold 0), so this matches
	// the paper's stack.
	VirtualCS bool
}

// DefaultConfig mirrors the paper's Table 1 at a given transmission range.
func DefaultConfig(rng float64) Config {
	return Config{
		BitRate:       1e6,
		Range:         rng,
		CSRangeFactor: 2.0,
		QueueLen:      150,
		HeaderBits:    58 * 8, // MAC+PHY header bytes, 802.11-ish
		SlotTime:      20e-6,
		DIFS:          50e-6,
		SIFS:          10e-6,
		CWMin:         32,
		CWMax:         1024,
		MaxRetries:    4,
		CaptureRatio:  10,
		VirtualCS:     true,
	}
}

// Validate reports a descriptive error for nonsensical configurations.
func (c Config) Validate() error {
	switch {
	case c.BitRate <= 0:
		return fmt.Errorf("mac: bit rate %v must be positive", c.BitRate)
	case c.Range <= 0:
		return fmt.Errorf("mac: range %v must be positive", c.Range)
	case c.CSRangeFactor < 1:
		return fmt.Errorf("mac: carrier-sense factor %v must be ≥ 1", c.CSRangeFactor)
	case c.QueueLen <= 0:
		return fmt.Errorf("mac: queue length %d must be positive", c.QueueLen)
	case c.SlotTime <= 0 || c.DIFS < 0 || c.SIFS < 0:
		return fmt.Errorf("mac: invalid timing parameters")
	case c.CWMin <= 0 || c.CWMax < c.CWMin:
		return fmt.Errorf("mac: invalid contention window [%d,%d]", c.CWMin, c.CWMax)
	case c.MaxRetries < 0:
		return fmt.Errorf("mac: negative retry budget")
	case c.CaptureRatio < 0:
		return fmt.Errorf("mac: negative capture ratio")
	}
	return nil
}

// Frame is one link-layer transmission unit. Payload is opaque to the MAC.
type Frame struct {
	Src     int
	Dst     int // Broadcast or a radio id
	Bits    int // payload size in bits (header added by the MAC)
	Payload any
}

// ReceiveFunc is invoked on a radio when a frame is successfully received.
type ReceiveFunc func(f *Frame)

// SentFunc is invoked on the sender when the MAC has finished with a frame:
// for unicast, ok reports whether the destination received it (after
// retries); for broadcast, ok is always true once the frame has aired.
type SentFunc func(f *Frame, ok bool)

// Stats counts medium-wide MAC events.
type Stats struct {
	FramesQueued    uint64
	QueueDrops      uint64
	Transmissions   uint64 // individual airings, including retries
	Collisions      uint64 // receiver-frame corruption events
	UnicastFailures uint64 // frames abandoned after MaxRetries
	Delivered       uint64 // successful frame receptions
	BusyDeferrals   uint64
}

// Medium is the shared wireless channel. All radios attached to a medium
// share one spatial channel; concurrency is event-driven via the scheduler.
type Medium struct {
	cfg    Config
	sched  *des.Scheduler
	rng    *rand.Rand
	radios []*Radio
	active []*transmission // recent & in-flight transmissions
	stats  Stats
}

// NewMedium creates a medium. seed drives backoff jitter only.
func NewMedium(sched *des.Scheduler, cfg Config, seed int64) (*Medium, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Medium{
		cfg:   cfg,
		sched: sched,
		rng:   rand.New(rand.NewSource(seed)),
	}, nil
}

// Config returns the medium configuration.
func (m *Medium) Config() Config { return m.cfg }

// Stats returns a snapshot of the medium counters.
func (m *Medium) Stats() Stats { return m.stats }

// AddRadio attaches a radio with the given id (must equal the insertion
// index), position source, and callbacks. onSent may be nil.
func (m *Medium) AddRadio(id int, pos func() geom.Point, onRecv ReceiveFunc, onSent SentFunc) (*Radio, error) {
	if id != len(m.radios) {
		return nil, fmt.Errorf("mac: radio id %d must be %d (insertion order)", id, len(m.radios))
	}
	r := &Radio{
		id:     id,
		medium: m,
		pos:    pos,
		onRecv: onRecv,
		onSent: onSent,
		cw:     m.cfg.CWMin,
	}
	m.radios = append(m.radios, r)
	return r, nil
}

// transmission is one airing of a frame.
type transmission struct {
	from       *Radio
	frame      *Frame
	start, end des.Time
	pos        geom.Point // sender position at start of airing
	rxPos      geom.Point // unicast receiver position (virtual CS anchor)
	hasRx      bool
}

func (t *transmission) overlaps(u *transmission) bool {
	return t.start < u.end && u.start < t.end
}

// frameAirtime returns the seconds needed to serialize a frame.
func (m *Medium) frameAirtime(f *Frame) float64 {
	return float64(m.cfg.HeaderBits+f.Bits) / m.cfg.BitRate
}

// busyFor reports whether the channel is sensed busy at p now, and if so,
// the latest end time among the occupying transmissions.
func (m *Medium) busyFor(p geom.Point) (bool, des.Time) {
	now := m.sched.Now()
	cs := m.cfg.Range * m.cfg.CSRangeFactor
	busy := false
	var until des.Time
	for _, t := range m.active {
		if t.end <= now {
			continue
		}
		// Physical carrier sense around the sender; virtual carrier
		// sense (the RTS/CTS NAV) only reaches nodes that can decode
		// the receiver's CTS, i.e. within reception range of it.
		occupies := t.pos.Dist(p) <= cs ||
			(m.cfg.VirtualCS && t.hasRx && t.rxPos.Dist(p) <= m.cfg.Range)
		if occupies {
			busy = true
			if t.end > until {
				until = t.end
			}
		}
	}
	return busy, until
}

// pruneActive drops transmissions old enough that they can no longer
// overlap anything in flight.
func (m *Medium) pruneActive() {
	now := m.sched.Now()
	const slack = 1.0 // seconds; far larger than any frame airtime
	keep := m.active[:0]
	for _, t := range m.active {
		if t.end+slack > now {
			keep = append(keep, t)
		}
	}
	// Nil out the tail so dropped transmissions can be collected.
	for i := len(keep); i < len(m.active); i++ {
		m.active[i] = nil
	}
	m.active = keep
}

// corruptedAt reports whether reception of t at position p (receiver id
// rid) is destroyed by an overlapping transmission from another sender
// within interference range, or by the receiver transmitting itself
// (half-duplex). The capture effect lets a much stronger wanted signal
// survive: with two-ray path loss, power ratio ≈ (d_interferer/d_sender)⁴.
func (m *Medium) corruptedAt(t *transmission, rid int, p geom.Point) bool {
	ir := m.cfg.Range * m.cfg.CSRangeFactor
	dWanted := t.pos.Dist(p)
	for _, u := range m.active {
		if u == t || !t.overlaps(u) {
			continue
		}
		if u.from.id == rid {
			return true // half-duplex: was transmitting during t
		}
		dInt := u.pos.Dist(p)
		if dInt > ir {
			continue // interferer too far to matter
		}
		if m.cfg.CaptureRatio > 0 && dWanted > 0 {
			ratio := dInt / dWanted
			if ratio*ratio*ratio*ratio >= m.cfg.CaptureRatio {
				continue // captured: wanted signal dominates
			}
		}
		return true
	}
	return false
}

// finishTransmission resolves receptions at the end of an airing and
// reports whether the unicast destination (if any) received the frame.
func (m *Medium) finishTransmission(t *transmission) bool {
	m.pruneActive()
	dstOK := false
	for _, r := range m.radios {
		if r.id == t.from.id {
			continue
		}
		if t.frame.Dst != Broadcast && r.id != t.frame.Dst {
			continue
		}
		p := r.pos()
		if t.pos.Dist(p) > m.cfg.Range {
			continue
		}
		if m.corruptedAt(t, r.id, p) {
			m.stats.Collisions++
			continue
		}
		m.stats.Delivered++
		r.recvCount++
		if r.id == t.frame.Dst {
			dstOK = true
		}
		if r.onRecv != nil {
			r.onRecv(t.frame)
		}
	}
	return dstOK
}
