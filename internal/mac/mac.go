// Package mac simulates a CSMA/CA-flavoured wireless MAC over a shared
// medium: carrier sensing, random backoff, finite-rate frame
// serialization, receiver-side collision corruption, a bounded link-layer
// queue (150 frames in the paper's Table 1), and bounded retransmission of
// unicast frames.
//
// It deliberately simplifies IEEE 802.11 (no RTS/CTS, no NAV, no
// bit-level capture) while preserving the mechanisms the paper's analysis
// rests on: "the increased contention is the reason why epidemic routing
// slows down when messages increase" and "it is faster because contentions
// are avoided by allowing only reasonable number of identical message
// copies in transit". More traffic here means longer queues, more
// deferrals, and more collisions — exactly those dynamics.
package mac

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"glr/internal/des"
	"glr/internal/geom"
	"glr/internal/phy"
	"glr/internal/shard"
	"glr/internal/spatial"
)

// Broadcast is the destination id addressing every radio in range.
const Broadcast = -1

// Config holds medium-wide MAC/PHY parameters.
type Config struct {
	BitRate       float64 // link speed in bits/s (paper: 1 Mbps)
	Range         float64 // reception range in metres
	CSRangeFactor float64 // carrier-sense & interference range as a multiple of Range
	QueueLen      int     // link-layer queue capacity in frames (paper: 150)
	HeaderBits    int     // per-frame PHY+MAC overhead in bits
	SlotTime      float64 // backoff slot, seconds
	DIFS          float64 // idle time required before transmitting, seconds
	SIFS          float64 // turnaround before the implicit ack, seconds
	CWMin         int     // initial contention window, slots
	CWMax         int     // maximum contention window, slots
	MaxRetries    int     // unicast retransmission budget
	// CaptureRatio models the 802.11 capture effect: a reception
	// survives interference when the wanted signal is at least this
	// factor stronger than each interferer at the receiver. Power falls
	// as distance^-4 (two-ray ground), so with ratio 10 an interferer
	// must be within ~1.78× the sender's distance to corrupt the frame.
	// 0 disables capture (any overlap corrupts).
	CaptureRatio float64
	// VirtualCS models RTS/CTS virtual carrier sensing for unicast
	// frames: the channel is also reserved around the receiver, so
	// hidden terminals defer instead of colliding. NS-2's 802.11 used
	// RTS/CTS for all unicast data (RTSThreshold 0), so this matches
	// the paper's stack.
	VirtualCS bool
	// DisableSpatialIndex falls back to the O(n) full scans over radios
	// and active transmissions instead of the uniform-grid spatial
	// index. The two paths resolve identical frame sets; the flag
	// exists as an escape hatch and for benchmarking the index.
	DisableSpatialIndex bool
	// IndexSlack widens spatial-index queries over radios by this many
	// metres to tolerate movement between index refreshes. It must be
	// at least the farthest any radio can drift between Reindex calls
	// (the simulator sets MaxSpeed × reindex interval); zero is correct
	// for static radios.
	IndexSlack float64
	// DropRx, when non-nil, vetoes individual receptions: a frame from
	// src arriving at dst at time now (sender position at start of
	// airing, receiver position at reception) is silently lost when it
	// returns true, counted in Stats.FaultDrops. It is consulted after
	// the range check and before interference resolution, at the same
	// point on the serial and sharded paths, so it MUST be a pure
	// function of its arguments — the fault-injection layer's blackout
	// and churn predicates are; anything stateful would break the
	// engines' byte-identity. Nil (the default) costs nothing on the
	// hot path.
	DropRx func(src, dst int, now float64, srcPos, dstPos geom.Point) bool
}

// DefaultConfig mirrors the paper's Table 1 at a given transmission range.
func DefaultConfig(rng float64) Config {
	return Config{
		BitRate:       1e6,
		Range:         rng,
		CSRangeFactor: 2.0,
		QueueLen:      150,
		HeaderBits:    58 * 8, // MAC+PHY header bytes, 802.11-ish
		SlotTime:      20e-6,
		DIFS:          50e-6,
		SIFS:          10e-6,
		CWMin:         32,
		CWMax:         1024,
		MaxRetries:    4,
		CaptureRatio:  10,
		VirtualCS:     true,
	}
}

// Validate reports a descriptive error for nonsensical configurations.
func (c Config) Validate() error {
	switch {
	case c.BitRate <= 0:
		return fmt.Errorf("mac: bit rate %v must be positive", c.BitRate)
	case c.Range <= 0:
		return fmt.Errorf("mac: range %v must be positive", c.Range)
	case c.CSRangeFactor < 1:
		return fmt.Errorf("mac: carrier-sense factor %v must be ≥ 1", c.CSRangeFactor)
	case c.QueueLen <= 0:
		return fmt.Errorf("mac: queue length %d must be positive", c.QueueLen)
	case c.SlotTime <= 0 || c.DIFS < 0 || c.SIFS < 0:
		return fmt.Errorf("mac: invalid timing parameters")
	case c.CWMin <= 0 || c.CWMax < c.CWMin:
		return fmt.Errorf("mac: invalid contention window [%d,%d]", c.CWMin, c.CWMax)
	case c.MaxRetries < 0:
		return fmt.Errorf("mac: negative retry budget")
	case c.CaptureRatio < 0:
		return fmt.Errorf("mac: negative capture ratio")
	case c.IndexSlack < 0 || math.IsNaN(c.IndexSlack):
		return fmt.Errorf("mac: index slack %v must be nonnegative", c.IndexSlack)
	}
	return nil
}

// Frame is one link-layer transmission unit. Payload is opaque to the MAC.
type Frame struct {
	Src     int
	Dst     int // Broadcast or a radio id
	Bits    int // payload size in bits (header added by the MAC)
	Payload any
}

// ReceiveFunc is invoked on a radio when a frame is successfully received.
type ReceiveFunc func(f *Frame)

// SentFunc is invoked on the sender when the MAC has finished with a frame:
// for unicast, ok reports whether the destination received it (after
// retries); for broadcast, ok is always true once the frame has aired.
type SentFunc func(f *Frame, ok bool)

// Stats counts medium-wide MAC events.
type Stats struct {
	FramesQueued    uint64
	QueueDrops      uint64
	Transmissions   uint64 // individual airings, including retries
	Collisions      uint64 // receiver-frame corruption events
	UnicastFailures uint64 // frames abandoned after MaxRetries
	Delivered       uint64 // successful frame receptions
	BusyDeferrals   uint64
	FaultDrops      uint64 // receptions vetoed by Config.DropRx
}

// Medium is the shared wireless channel. All radios attached to a medium
// share one spatial channel; concurrency is event-driven via the scheduler.
//
// Unless Config.DisableSpatialIndex is set, the medium keeps two
// uniform-grid indexes with cell size equal to the carrier-sense range:
// one over radios (cells refreshed lazily whenever a radio's position is
// observed, and in bulk by Reindex) and one over the anchor points of
// active transmissions (sender position, plus the receiver position for
// unicast virtual carrier sensing). Reception resolution, carrier
// sensing, and interference checks then touch only the 3×3 cell block
// around a point instead of every radio and airing in the simulation.
type Medium struct {
	cfg      Config
	sched    *des.Scheduler
	rng      *rand.Rand
	radios   []*Radio
	active   []*transmission // FIFO of recent & in-flight transmissions
	head     int             // index of the oldest retained entry in active
	inflight int             // airings not yet ended (end > now)
	stats    Stats

	// Spatial index state (nil / unused when DisableSpatialIndex).
	// Transmission anchors are registered under small recycled handles
	// so the handle table stays a dense slice.
	radioIdx    *spatial.Grid
	txIdx       *spatial.Grid
	txByHandle  []*transmission
	freeHandles []int
	scratch     []int           // receiver-candidate ids for the batch being resolved
	csScratch   []int           // carrier-sense / interferer-gather handle buffer
	txCand      []*transmission // interferer candidates shared by the batch being resolved
	candEpoch   uint64          // dedup stamp for txCand gathering
	batch       []*transmission // airings ending at the tick being resolved
	txFree      []*transmission // recycled transmission objects

	// Sharded reception (nil pool = serial). Broadcast analyses are
	// computed in parallel over stripe shards; see SetPool.
	pool    *shard.Pool
	thr     shard.Thresholds // per-plane fork thresholds (see SetPool)
	stripes spatial.Stripes
	candPts []geom.Point // cached grid positions parallel to scratch
	rxIDs   []int        // candidate receivers of the airing being resolved
	rxPts   []geom.Point // observed positions, written by the parallel phase
	rxShard []int        // stripe indices, same order
	rxStat  []uint8      // per-candidate analysis slots (rxSkip..rxOK)
	reixPts []geom.Point // position scratch for the parallel Reindex

	// rxClock, when non-nil, receives the wall-clock duration of each
	// end-of-airing resolution batch (see SetRxClock).
	rxClock func(time.Duration)
}

// takeTx returns a recycled (or fresh) transmission object. Recycling is
// safe because every reference to a transmission — the active FIFO, the
// spatial handles, batch, and txCand — is dropped by the time pruneActive
// releases it; radios keep only value copies of their own airings.
func (m *Medium) takeTx() *transmission {
	if n := len(m.txFree); n > 0 {
		t := m.txFree[n-1]
		m.txFree = m.txFree[:n-1]
		t.resolved = false
		t.candMark = 0
		return t
	}
	t := &transmission{}
	t.onEnd = func() { t.from.medium.resolveEnds(t) }
	return t
}

// NewMedium creates a medium. seed drives backoff jitter only.
func NewMedium(sched *des.Scheduler, cfg Config, seed int64) (*Medium, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Medium{
		cfg:   cfg,
		sched: sched,
		rng:   rand.New(rand.NewSource(seed)),
	}
	if !cfg.DisableSpatialIndex {
		// Cell sizes match each index's query radius so any disk query
		// touches at most a 3×3 cell block: reception range for the
		// radio index, carrier-sense range for transmission anchors.
		var err error
		if m.radioIdx, err = spatial.NewGrid(cfg.Range); err != nil {
			return nil, err
		}
		if m.txIdx, err = spatial.NewGrid(cfg.Range * cfg.CSRangeFactor); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// SetPool attaches a shard worker pool for parallel broadcast-reception
// analysis and the bulk Reindex, and declares the region width the
// stripe shards partition. Receivers are grouped into vertical stripes
// at least one halo (reception range + IndexSlack, see phy.HaloWidth)
// wide; each stripe's per-candidate analysis — position extrapolation,
// range and fault checks, and interference verdicts, all touching only
// per-candidate state or state frozen while the event loop blocks on
// the join — is computed by one worker, and every mutation (grid
// refreshes, stats, deliveries) stays on the event loop in exactly the
// serial enumeration order. Results are therefore byte-identical to the
// serial path; the pool only shortens the wall clock. thr gates when
// each plane forks (batches below the threshold run inline; thresholds
// never change what is computed — see shard.Calibrate). A nil or
// single-worker pool, or the naive (DisableSpatialIndex) medium, keeps
// the serial path.
func (m *Medium) SetPool(p *shard.Pool, regionW float64, thr shard.Thresholds) {
	if p == nil || p.Workers() < 2 || m.radioIdx == nil {
		m.pool = nil
		return
	}
	m.pool = p
	m.thr = thr
	m.stripes = spatial.NewStripes(regionW, phy.HaloWidth(m.cfg.Range, m.cfg.IndexSlack), p.Workers())
}

// SetRxClock installs a callback receiving the wall-clock duration of
// each end-of-airing resolution batch (reception resolution is the
// medium's hot phase). nil (the default) disables the timing; the
// simulator's phase profiler installs it on demand.
func (m *Medium) SetRxClock(fn func(time.Duration)) { m.rxClock = fn }

// Config returns the medium configuration.
func (m *Medium) Config() Config { return m.cfg }

// Stats returns a snapshot of the medium counters.
func (m *Medium) Stats() Stats { return m.stats }

// AddRadio attaches a radio with the given id (must equal the insertion
// index), position source, and callbacks. onSent may be nil.
func (m *Medium) AddRadio(id int, pos func() geom.Point, onRecv ReceiveFunc, onSent SentFunc) (*Radio, error) {
	if id != len(m.radios) {
		return nil, fmt.Errorf("mac: radio id %d must be %d (insertion order)", id, len(m.radios))
	}
	r := &Radio{
		id:     id,
		medium: m,
		pos:    pos,
		onRecv: onRecv,
		onSent: onSent,
		cw:     m.cfg.CWMin,
	}
	r.attemptFn = func() {
		r.attemptArmed = false
		r.tryTransmit()
	}
	m.radios = append(m.radios, r)
	if m.radioIdx != nil {
		if err := m.radioIdx.Insert(id, pos()); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// Reindex refreshes every radio's cached grid cell from its position
// callback. The simulator calls it periodically (once per beacon
// interval) so that, together with the lazy per-observation refreshes,
// no cached cell is ever staler than one reindex period — the drift
// bound Config.IndexSlack must cover. It is a no-op when the spatial
// index is disabled.
//
// With a pool attached and enough radios (Thresholds.MobilityMin), the
// position extrapolations — the dominant cost, each a lazy walk of the
// radio's mobility trajectory — run in parallel over contiguous id
// chunks, and the grid updates commit serially in id order. Each radio
// (and so each mobility model, which is mutable and not concurrency-
// safe) is touched by exactly one worker, and position queries are
// order-independent (see internal/mobility), so the refreshed cells are
// byte-identical to the serial loop's.
func (m *Medium) Reindex() {
	if m.radioIdx == nil {
		return
	}
	n := len(m.radios)
	if m.pool != nil && n >= m.thr.MobilityMin {
		if cap(m.reixPts) < n {
			m.reixPts = make([]geom.Point, n)
		}
		pts := m.reixPts[:n]
		parts := m.pool.Workers()
		m.pool.Run(parts, func(c int) {
			lo, hi := shard.ChunkBounds(n, parts, c)
			for i := lo; i < hi; i++ {
				pts[i] = m.radios[i].pos()
			}
		})
		for i, r := range m.radios {
			m.radioIdx.Update(r.id, pts[i])
		}
		return
	}
	for _, r := range m.radios {
		m.radioIdx.Update(r.id, r.pos())
	}
}

// transmission is one airing of a frame. Objects are pooled by the
// medium (see takeTx/pruneActive); onEnd is the reusable end-of-airing
// event handler, allocated once per pooled object.
type transmission struct {
	from       *Radio
	frame      *Frame
	start, end des.Time
	pos        geom.Point // sender position at start of airing
	rxPos      geom.Point // unicast receiver position (virtual CS anchor)
	hasRx      bool
	h0, h1     int // spatial-index handles for pos / rxPos (h1 = -1 if none)
	onEnd      des.Handler
	resolved   bool   // receptions resolved (by its own or a batch-mate's end event)
	candMark   uint64 // dedup stamp against Medium.candEpoch during gathering
}

// airing is a value copy of a transmission's interval, retained on the
// sending radio for half-duplex checks after the transmission object
// may have been recycled.
type airing struct {
	start, end des.Time
}

func (t *transmission) overlaps(u *transmission) bool {
	return t.start < u.end && u.start < t.end
}

// frameAirtime returns the seconds needed to serialize a frame.
func (m *Medium) frameAirtime(f *Frame) float64 {
	return float64(m.cfg.HeaderBits+f.Bits) / m.cfg.BitRate
}

// occupies reports whether airing t keeps the channel busy at p now, per
// physical carrier sense around the sender and (when enabled) virtual
// carrier sense around the unicast receiver — the RTS/CTS NAV only
// reaches nodes that can decode the receiver's CTS, i.e. within
// reception range of it.
func (m *Medium) occupies(t *transmission, p geom.Point, now des.Time, cs2, range2 float64) bool {
	if t.end <= now {
		return false
	}
	return t.pos.Dist2(p) <= cs2 ||
		(m.cfg.VirtualCS && t.hasRx && t.rxPos.Dist2(p) <= range2)
}

// busyFor reports whether the channel is sensed busy at p now, and if so,
// the latest end time among the occupying transmissions.
func (m *Medium) busyFor(p geom.Point) (bool, des.Time) {
	if m.inflight == 0 {
		return false, 0 // silent channel: nothing with end > now exists
	}
	now := m.sched.Now()
	cs := m.cfg.Range * m.cfg.CSRangeFactor
	cs2 := cs * cs
	range2 := m.cfg.Range * m.cfg.Range
	busy := false
	var until des.Time
	if m.txIdx == nil {
		for _, t := range m.active[m.head:] {
			if m.occupies(t, p, now, cs2, range2) {
				busy = true
				if t.end > until {
					until = t.end
				}
			}
		}
		return busy, until
	}
	// Both anchor kinds are covered by one query of radius cs: a
	// transmission occupying p has its sender anchor within cs, or its
	// receiver anchor within Range ≤ cs. Anchors are positions frozen
	// at the start of the airing, so no movement slack is needed. A
	// unicast airing indexed under both anchors may be visited twice;
	// the predicate is idempotent. The handle buffer is separate from
	// the batch's receiver scratch because carrier sensing runs inside
	// reception callbacks (receiver reacts by queueing a frame).
	m.csScratch = m.txIdx.NearIDs(p, cs, m.csScratch[:0])
	for _, h := range m.csScratch {
		if t := m.txByHandle[h]; m.occupies(t, p, now, cs2, range2) {
			busy = true
			if t.end > until {
				until = t.end
			}
		}
	}
	return busy, until
}

// activeSlack is how long a finished transmission is retained, in
// seconds; far larger than any frame airtime, so every airing that could
// still overlap an in-flight one is kept.
const activeSlack = 1.0

// allocHandle registers t under a recycled spatial-index handle at
// anchor p.
func (m *Medium) allocHandle(t *transmission, p geom.Point) int {
	var h int
	if n := len(m.freeHandles); n > 0 {
		h = m.freeHandles[n-1]
		m.freeHandles = m.freeHandles[:n-1]
		m.txByHandle[h] = t
	} else {
		h = len(m.txByHandle)
		m.txByHandle = append(m.txByHandle, t)
	}
	m.txIdx.Update(h, p)
	return h
}

// releaseHandle unregisters handle h.
func (m *Medium) releaseHandle(h int) {
	m.txIdx.Remove(h)
	m.txByHandle[h] = nil
	m.freeHandles = append(m.freeHandles, h)
}

// indexTransmission registers a fresh airing with the spatial index:
// the transmission is bucketed under its anchor cells, and the sender's
// cached cell is refreshed from the position just observed.
func (m *Medium) indexTransmission(t *transmission) {
	if m.txIdx == nil {
		t.h1 = -1
		return
	}
	if m.cfg.IndexSlack > 0 {
		m.radioIdx.Update(t.from.id, t.pos) // lazy refresh of the sender
	}
	t.h0 = m.allocHandle(t, t.pos)
	t.h1 = -1
	if t.hasRx {
		t.h1 = m.allocHandle(t, t.rxPos)
	}
	// Remember the airing interval on the sender for half-duplex
	// checks, pruning entries too old to overlap anything in flight.
	now := m.sched.Now()
	keep := t.from.recent[:0]
	for _, u := range t.from.recent {
		if u.end+activeSlack > now {
			keep = append(keep, u)
		}
	}
	t.from.recent = append(keep, airing{start: t.start, end: t.end})
}

// pruneActive drops transmissions old enough that they can no longer
// overlap anything in flight. Airings expire in near-FIFO order (they
// are appended in start order and airtimes are bounded by activeSlack),
// so popping from the front is amortized O(1) per airing; the handful of
// out-of-order stragglers a long frame keeps alive are filtered by the
// overlap checks like any other retained entry.
func (m *Medium) pruneActive() {
	now := m.sched.Now()
	for m.head < len(m.active) && m.active[m.head].end+activeSlack <= now {
		t := m.active[m.head]
		if m.txIdx != nil {
			m.releaseHandle(t.h0)
			if t.h1 >= 0 {
				m.releaseHandle(t.h1)
			}
		}
		m.active[m.head] = nil // allow collection
		m.head++
		t.frame = nil // drop the payload reference while pooled
		m.txFree = append(m.txFree, t)
	}
	if m.head == len(m.active) {
		m.active = m.active[:0]
		m.head = 0
	} else if m.head >= 64 && m.head*2 >= len(m.active) {
		n := copy(m.active, m.active[m.head:])
		for i := n; i < len(m.active); i++ {
			m.active[i] = nil
		}
		m.active = m.active[:n]
		m.head = 0
	}
}

// txCorrupts reports whether airing u destroys reception of t at
// position p (receiver id rid). The capture effect lets a much stronger
// wanted signal survive: with two-ray path loss, power ratio ≈
// (d_interferer/d_sender)⁴.
func (m *Medium) txCorrupts(u, t *transmission, rid int, p geom.Point, ir2, dWanted2 float64) bool {
	if u == t || !t.overlaps(u) {
		return false
	}
	if u.from.id == rid {
		return true // half-duplex: was transmitting during t
	}
	dInt2 := u.pos.Dist2(p)
	if dInt2 > ir2 {
		return false // interferer too far to matter
	}
	if m.cfg.CaptureRatio > 0 && dWanted2 > 0 {
		ratio2 := dInt2 / dWanted2
		if ratio2*ratio2 >= m.cfg.CaptureRatio {
			return false // captured: wanted signal dominates
		}
	}
	return true
}

// corruptedAt reports whether reception of t at position p (receiver id
// rid) is destroyed by an overlapping transmission from another sender
// within interference range, or by the receiver transmitting itself
// (half-duplex).
func (m *Medium) corruptedAt(t *transmission, rid int, p geom.Point) bool {
	ir := m.cfg.Range * m.cfg.CSRangeFactor
	ir2 := ir * ir
	dWanted2 := t.pos.Dist2(p)
	if m.txIdx == nil {
		for _, u := range m.active[m.head:] {
			if m.txCorrupts(u, t, rid, p, ir2, dWanted2) {
				return true
			}
		}
		return false
	}
	// Half-duplex first: the receiver's own overlapping airings corrupt
	// regardless of distance, so they come from the per-radio history
	// rather than the (distance-bounded) candidate set. t is never the
	// receiver's own airing (senders do not receive themselves), so no
	// identity check is needed.
	for _, u := range m.radios[rid].recent {
		if t.start < u.end && u.start < t.end {
			return true
		}
	}
	// txCand was gathered once for the whole end-of-tick batch by
	// gatherInterferers; it is a superset of every transmission within
	// interference range of any receiver of any batch member, so the
	// exact predicate decides. Batch-mates are in the set and genuinely
	// overlap each other; t itself is skipped by the u == t check.
	for _, u := range m.txCand {
		if u.from.id != rid && m.txCorrupts(u, t, rid, p, ir2, dWanted2) {
			return true
		}
	}
	return false
}

// gatherInterferers collects, once per end-of-tick batch, the active
// transmissions that could interfere at any receiver of any batch
// member. Every receiver lies within Range of its sender and an
// interferer matters within ir of the receiver, so one index query of
// radius Range+ir around each batch sender covers them all; candidates
// are deduplicated across the batch (and across a unicast airing's two
// anchors) with an epoch stamp on the transmission object, so the union
// is gathered in a single pass over the affected grid cells.
func (m *Medium) gatherInterferers() {
	m.txCand = m.txCand[:0]
	m.candEpoch++
	reach := m.cfg.Range * (1 + m.cfg.CSRangeFactor)
	for _, t := range m.batch {
		m.csScratch = m.txIdx.NearIDs(t.pos, reach, m.csScratch[:0])
		for _, h := range m.csScratch {
			if u := m.txByHandle[h]; u.candMark != m.candEpoch {
				u.candMark = m.candEpoch
				m.txCand = append(m.txCand, u)
			}
		}
	}
}

// resolveEnds is the end-of-airing event handler. Airings whose ends
// coincide (same simulated tick) are resolved as one batch: the first
// end event to fire prunes the FIFO once, gathers the batch's shared
// interferer-candidate set in one pass over the affected grid cells,
// and then resolves every batch member in scheduling order; the
// remaining members' own end events become no-ops. Ordering is
// preserved — batch members are resolved in active-FIFO order, which is
// exactly the order their individual end events were scheduled in.
func (m *Medium) resolveEnds(t *transmission) {
	if t.resolved {
		return
	}
	if m.rxClock != nil {
		start := time.Now()
		defer func() { m.rxClock(time.Since(start)) }()
	}
	now := m.sched.Now()
	m.pruneActive()
	m.batch = m.batch[:0]
	for _, u := range m.active[m.head:] {
		if !u.resolved && u.end == now {
			u.resolved = true
			m.batch = append(m.batch, u)
		}
	}
	if m.txIdx != nil {
		m.gatherInterferers()
	}
	for _, u := range m.batch {
		u.from.endTransmission(u)
	}
}

// finishTransmission resolves receptions at the end of an airing and
// reports whether the unicast destination (if any) received the frame.
// The caller (resolveEnds) has already pruned the FIFO and gathered the
// batch's interferer candidates.
func (m *Medium) finishTransmission(t *transmission) bool {
	if dst := t.frame.Dst; dst != Broadcast {
		// Unicast fast path: only the destination can accept the frame,
		// and radio ids are dense insertion indices, so the id→radio
		// lookup is O(1) regardless of network size.
		if dst < 0 || dst >= len(m.radios) || dst == t.from.id {
			return false
		}
		return m.deliverTo(t, m.radios[dst])
	}
	if m.radioIdx == nil {
		for _, r := range m.radios {
			if r.id != t.from.id {
				m.deliverTo(t, r)
			}
		}
		return false
	}
	// Candidate receivers are the radios indexed within reception range
	// of the sender, widened by IndexSlack to cover movement since
	// their cells were last refreshed. The ids are snapshotted (the
	// deliveries below move entries between cells) and visited in index
	// order, which is deterministic for a given seed but differs from
	// the naive path's id order; the delivered frame set is identical
	// either way.
	if m.pool != nil {
		m.scratch, m.candPts = m.radioIdx.NearEntries(
			t.pos, m.cfg.Range+m.cfg.IndexSlack, m.scratch[:0], m.candPts[:0])
		if len(m.scratch) >= m.thr.RxMin {
			m.finishBroadcastSharded(t)
			return false
		}
	} else {
		m.scratch = m.radioIdx.NearIDs(t.pos, m.cfg.Range+m.cfg.IndexSlack, m.scratch[:0])
	}
	for _, id := range m.scratch {
		if id != t.from.id {
			m.deliverTo(t, m.radios[id])
		}
	}
	return false
}

// Per-candidate analysis slots of the sharded broadcast path: the full
// outcome of the serial deliverTo prelude, computed in parallel and
// committed in serial enumeration order.
const (
	rxSkip  uint8 = iota // out of reception range
	rxFault              // vetoed by Config.DropRx
	rxBad                // corrupted by interference or half-duplex
	rxOK                 // delivered
)

// finishBroadcastSharded resolves a broadcast's receptions in three
// phases so the whole per-candidate analysis — not just the
// interference verdict — runs on the worker pool while everything
// observable stays in serial order:
//
//  1. Serial enumeration, in index order: fix the candidate list (and
//     with it the commit order) and assign each candidate a stripe from
//     its cached grid position. The cached position may trail the fresh
//     one, but any deterministic partition is valid — the analyses are
//     pure per candidate and write caller-indexed slots — and using the
//     cache keeps this phase free of position-callback side effects.
//  2. Parallel analysis, grouped by stripe shard: observe the
//     candidate's fresh position (each mobility model is touched by
//     exactly one worker, and position queries are order-independent —
//     see internal/mobility), apply the range check, the DropRx fault
//     predicate (pure by contract), and corruptedAt. Every other input
//     (txCand, per-radio airing histories, the scheduler clock) is
//     frozen while the event loop blocks on the join, and each
//     candidate writes only its own slots, so the phase is race-free
//     and its outcomes equal the serial path's — deliveries committed
//     mid-batch can never flip an outcome, because a transmission
//     starting at the batch tick cannot overlap one ending at it, and
//     txCand was gathered before any commit either way.
//  3. Serial commit, again in enumeration order, interleaving exactly
//     like the serial loop's deliverTo: per candidate, the lazy grid
//     refresh (in-range candidates only), then the stat counter or the
//     delivery (onRecv is protocol code — queues, carrier sensing —
//     that must see the same interleaving as the serial engine).
func (m *Medium) finishBroadcastSharded(t *transmission) {
	m.rxIDs, m.rxShard = m.rxIDs[:0], m.rxShard[:0]
	for i, id := range m.scratch {
		if id == t.from.id {
			continue
		}
		m.rxIDs = append(m.rxIDs, id)
		m.rxShard = append(m.rxShard, m.stripes.Of(m.candPts[i].X))
	}
	n := len(m.rxIDs)
	if n == 0 {
		return
	}
	if cap(m.rxPts) < n {
		m.rxPts = make([]geom.Point, n)
		m.rxStat = make([]uint8, n)
	}
	m.rxPts, m.rxStat = m.rxPts[:n], m.rxStat[:n]
	r2 := m.cfg.Range * m.cfg.Range
	now := float64(m.sched.Now())
	m.pool.Run(m.stripes.Count(), func(s int) {
		for i, id := range m.rxIDs {
			if m.rxShard[i] != s {
				continue
			}
			p := m.radios[id].pos()
			m.rxPts[i] = p
			switch {
			case t.pos.Dist2(p) > r2:
				m.rxStat[i] = rxSkip
			case m.cfg.DropRx != nil && m.cfg.DropRx(t.from.id, id, now, t.pos, p):
				m.rxStat[i] = rxFault
			case m.corruptedAt(t, id, p):
				m.rxStat[i] = rxBad
			default:
				m.rxStat[i] = rxOK
			}
		}
	})
	lazyRefresh := m.cfg.IndexSlack > 0
	for i, id := range m.rxIDs {
		st := m.rxStat[i]
		if st == rxSkip {
			continue
		}
		if lazyRefresh {
			m.radioIdx.Update(id, m.rxPts[i])
		}
		switch st {
		case rxFault:
			m.stats.FaultDrops++
		case rxBad:
			m.stats.Collisions++
		default:
			r := m.radios[id]
			m.stats.Delivered++
			r.recvCount++
			if r.onRecv != nil {
				r.onRecv(t.frame)
			}
		}
	}
}

// deliverTo attempts reception of t at radio r and reports success. As a
// side effect it refreshes r's cached grid cell from the position just
// observed.
func (m *Medium) deliverTo(t *transmission, r *Radio) bool {
	p := r.pos()
	if t.pos.Dist2(p) > m.cfg.Range*m.cfg.Range {
		return false
	}
	if m.radioIdx != nil && m.cfg.IndexSlack > 0 {
		// Lazy refresh: the receiver's position was just observed.
		// Out-of-range candidates are left to the periodic Reindex,
		// which alone bounds staleness to what IndexSlack covers. Zero
		// slack promises static radios (see Config.IndexSlack), where
		// no refresh is ever needed.
		m.radioIdx.Update(r.id, p)
	}
	if m.cfg.DropRx != nil && m.cfg.DropRx(t.from.id, r.id, float64(m.sched.Now()), t.pos, p) {
		m.stats.FaultDrops++
		return false
	}
	if m.corruptedAt(t, r.id, p) {
		m.stats.Collisions++
		return false
	}
	m.stats.Delivered++
	r.recvCount++
	if r.onRecv != nil {
		r.onRecv(t.frame)
	}
	return true
}
