package mac

import (
	"testing"

	"glr/internal/geom"
)

func TestCaptureEffectSavesStrongSignal(t *testing.T) {
	// Receiver at 10 m from its sender; interferer 180 m away (hidden
	// terminal, CS factor 1). Distance ratio 18 ⇒ power ratio 18⁴ ≫ 10:
	// the wanted frame must be captured.
	cfg := DefaultConfig(100)
	cfg.CSRangeFactor = 1.0
	cfg.VirtualCS = false
	n := newTestNet(t, cfg, []geom.Point{
		geom.Pt(0, 0),   // sender
		geom.Pt(10, 0),  // receiver (10 m from sender)
		geom.Pt(190, 0), // interferer: 180 m from receiver, hidden from sender
	})
	n.sched.At(0, func() { n.radios[0].Send(&Frame{Dst: Broadcast, Bits: 8000}) })
	n.sched.At(0, func() { n.radios[2].Send(&Frame{Dst: Broadcast, Bits: 8000}) })
	n.sched.Run(1)
	got := 0
	for _, f := range n.recv[1] {
		if f.Src == 0 {
			got++
		}
	}
	if got != 1 {
		t.Errorf("strong signal should be captured; receiver got %d frames from sender 0", got)
	}
}

func TestCaptureDisabledCorruptsEverything(t *testing.T) {
	cfg := DefaultConfig(100)
	cfg.CSRangeFactor = 1.0
	cfg.VirtualCS = false
	cfg.CaptureRatio = 0 // any overlap corrupts
	n := newTestNet(t, cfg, []geom.Point{
		geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(105, 0),
	})
	n.sched.At(0, func() { n.radios[0].Send(&Frame{Dst: Broadcast, Bits: 8000}) })
	n.sched.At(0, func() { n.radios[2].Send(&Frame{Dst: Broadcast, Bits: 8000}) })
	n.sched.Run(1)
	for _, f := range n.recv[1] {
		if f.Src == 0 {
			t.Error("with capture disabled, overlapping frames must corrupt")
		}
	}
}

func TestCaptureComparablePowersStillCollide(t *testing.T) {
	// Receiver equidistant from both senders: ratio 1 < 10 ⇒ collision.
	cfg := DefaultConfig(100)
	cfg.CSRangeFactor = 1.0
	cfg.VirtualCS = false
	n := newTestNet(t, cfg, []geom.Point{
		geom.Pt(0, 0), geom.Pt(90, 0), geom.Pt(180, 0),
	})
	n.sched.At(0, func() { n.radios[0].Send(&Frame{Dst: Broadcast, Bits: 8000}) })
	n.sched.At(0, func() { n.radios[2].Send(&Frame{Dst: Broadcast, Bits: 8000}) })
	n.sched.Run(1)
	if len(n.recv[1]) != 0 {
		t.Errorf("comparable powers must collide; receiver got %d frames", len(n.recv[1]))
	}
}

func TestVirtualCSProtectsReceiver(t *testing.T) {
	// Unicast 0→1; node 2 is hidden from 0 (CS factor 1, 180 m apart)
	// but within decode range of receiver 1. With virtual CS on, node
	// 2 defers instead of colliding.
	cfg := DefaultConfig(100)
	cfg.CSRangeFactor = 1.0
	cfg.VirtualCS = true
	n := newTestNet(t, cfg, []geom.Point{
		geom.Pt(0, 0), geom.Pt(90, 0), geom.Pt(180, 0),
	})
	f := &Frame{Dst: 1, Bits: 80000} // long frame: 2's send lands inside it
	n.sched.At(0, func() { n.radios[0].Send(f) })
	n.sched.At(0.01, func() { n.radios[2].Send(&Frame{Dst: Broadcast, Bits: 8000}) })
	n.sched.Run(2)
	if ok := n.sent[0][f]; !ok {
		t.Error("virtual CS should let the unicast complete without collision")
	}
	if n.medium.Stats().BusyDeferrals == 0 {
		t.Error("the hidden terminal should have deferred")
	}
}

func TestVirtualCSOffHiddenTerminalInterferes(t *testing.T) {
	// Same geometry with virtual CS off: node 2 transmits concurrently
	// and corrupts the long unicast at the receiver (requiring retries).
	cfg := DefaultConfig(100)
	cfg.CSRangeFactor = 1.0
	cfg.VirtualCS = false
	n := newTestNet(t, cfg, []geom.Point{
		geom.Pt(0, 0), geom.Pt(90, 0), geom.Pt(180, 0),
	})
	f := &Frame{Dst: 1, Bits: 80000}
	n.sched.At(0, func() { n.radios[0].Send(f) })
	n.sched.At(0.01, func() { n.radios[2].Send(&Frame{Dst: Broadcast, Bits: 8000}) })
	n.sched.Run(2)
	if n.medium.Stats().Collisions == 0 {
		t.Error("expected a hidden-terminal collision without virtual CS")
	}
}

func TestBroadcastNotProtectedByVirtualCS(t *testing.T) {
	// Virtual CS anchors on unicast receivers only; broadcasts carry no
	// reservation, so a hidden terminal still collides with them.
	cfg := DefaultConfig(100)
	cfg.CSRangeFactor = 1.0
	cfg.VirtualCS = true
	n := newTestNet(t, cfg, []geom.Point{
		geom.Pt(0, 0), geom.Pt(90, 0), geom.Pt(180, 0),
	})
	n.sched.At(0, func() { n.radios[0].Send(&Frame{Dst: Broadcast, Bits: 8000}) })
	n.sched.At(0, func() { n.radios[2].Send(&Frame{Dst: Broadcast, Bits: 8000}) })
	n.sched.Run(1)
	if len(n.recv[1]) != 0 {
		t.Errorf("broadcast collision expected; receiver got %d frames", len(n.recv[1]))
	}
}

func TestSIFSPipelinesQueuedFrames(t *testing.T) {
	// Two frames queued together: the second starts SIFS after the
	// first completes, not a full DIFS+backoff later.
	cfg := DefaultConfig(100)
	n := newTestNet(t, cfg, []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0)})
	var arrivals []float64
	n.medium.radios[1].onRecv = func(*Frame) { arrivals = append(arrivals, n.sched.Now()) }
	n.sched.At(0, func() {
		n.radios[0].Send(&Frame{Dst: Broadcast, Bits: 8000})
		n.radios[0].Send(&Frame{Dst: Broadcast, Bits: 8000})
	})
	n.sched.Run(1)
	if len(arrivals) != 2 {
		t.Fatalf("got %d arrivals", len(arrivals))
	}
	airtime := float64(cfg.HeaderBits+8000) / cfg.BitRate
	gap := arrivals[1] - arrivals[0]
	want := airtime + cfg.SIFS
	if gap < want-1e-9 || gap > want+cfg.DIFS+float64(cfg.CWMin)*cfg.SlotTime {
		t.Errorf("inter-frame gap %v, want ≈ %v", gap, want)
	}
}

func TestMediumConfigAccessor(t *testing.T) {
	cfg := DefaultConfig(123)
	n := newTestNet(t, cfg, []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)})
	if got := n.medium.Config().Range; got != 123 {
		t.Errorf("Config().Range = %v", got)
	}
}
