package mac

import (
	"testing"

	"glr/internal/des"
	"glr/internal/geom"
)

// testNet wires radios at fixed positions onto a fresh medium and records
// receptions and send outcomes per radio.
type testNet struct {
	sched  *des.Scheduler
	medium *Medium
	radios []*Radio
	recv   [][]*Frame
	sent   []map[*Frame]bool
}

func newTestNet(t *testing.T, cfg Config, positions []geom.Point) *testNet {
	t.Helper()
	sched := des.NewScheduler()
	m, err := NewMedium(sched, cfg, 99)
	if err != nil {
		t.Fatal(err)
	}
	n := &testNet{sched: sched, medium: m}
	n.recv = make([][]*Frame, len(positions))
	n.sent = make([]map[*Frame]bool, len(positions))
	for i, p := range positions {
		i, p := i, p
		n.sent[i] = make(map[*Frame]bool)
		r, err := m.AddRadio(i,
			func() geom.Point { return p },
			func(f *Frame) { n.recv[i] = append(n.recv[i], f) },
			func(f *Frame, ok bool) { n.sent[i][f] = ok },
		)
		if err != nil {
			t.Fatal(err)
		}
		n.radios = append(n.radios, r)
	}
	return n
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero bitrate", func(c *Config) { c.BitRate = 0 }},
		{"zero range", func(c *Config) { c.Range = 0 }},
		{"cs factor below 1", func(c *Config) { c.CSRangeFactor = 0.5 }},
		{"zero queue", func(c *Config) { c.QueueLen = 0 }},
		{"zero slot", func(c *Config) { c.SlotTime = 0 }},
		{"cw max below min", func(c *Config) { c.CWMax = 1 }},
		{"negative retries", func(c *Config) { c.MaxRetries = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig(100)
			tt.mutate(&cfg)
			if cfg.Validate() == nil {
				t.Error("expected validation error")
			}
		})
	}
	if err := DefaultConfig(100).Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestAddRadioOrderEnforced(t *testing.T) {
	sched := des.NewScheduler()
	m, _ := NewMedium(sched, DefaultConfig(100), 1)
	if _, err := m.AddRadio(3, func() geom.Point { return geom.Pt(0, 0) }, nil, nil); err == nil {
		t.Error("out-of-order radio id accepted")
	}
}

func TestBroadcastReachesAllInRange(t *testing.T) {
	// Radios at 0, 80, 160, 400 m; range 100 m. A broadcast from radio 0
	// reaches only radio 1.
	cfg := DefaultConfig(100)
	n := newTestNet(t, cfg, []geom.Point{
		geom.Pt(0, 0), geom.Pt(80, 0), geom.Pt(160, 0), geom.Pt(400, 0),
	})
	f := &Frame{Dst: Broadcast, Bits: 8000, Payload: "hello"}
	n.sched.At(0, func() { n.radios[0].Send(f) })
	n.sched.Run(1)
	if len(n.recv[1]) != 1 || n.recv[1][0].Payload != "hello" {
		t.Errorf("radio 1 should receive the broadcast, got %v", n.recv[1])
	}
	if len(n.recv[2]) != 0 || len(n.recv[3]) != 0 {
		t.Error("out-of-range radios must not receive")
	}
	if ok, exists := n.sent[0][f]; !exists || !ok {
		t.Error("broadcast sender should observe ok=true completion")
	}
}

func TestUnicastDeliveredOnlyToDestination(t *testing.T) {
	cfg := DefaultConfig(100)
	n := newTestNet(t, cfg, []geom.Point{geom.Pt(0, 0), geom.Pt(50, 0), geom.Pt(90, 0)})
	f := &Frame{Dst: 2, Bits: 8000}
	n.sched.At(0, func() { n.radios[0].Send(f) })
	n.sched.Run(1)
	if len(n.recv[2]) != 1 {
		t.Error("destination did not receive unicast")
	}
	if len(n.recv[1]) != 0 {
		t.Error("bystander should not see unicast payloads")
	}
	if ok := n.sent[0][f]; !ok {
		t.Error("sender should observe successful unicast")
	}
}

// TestUnicastFastPathMatchesBroadcastReachability pins down the unicast
// fast path: with many radios packed inside reception range, a unicast
// must invoke onRecv on the destination only, while the identical
// broadcast run proves the destination was reachable the same way —
// Stats.Delivered is 1 for the unicast vs one reception per in-range
// radio for the broadcast.
func TestUnicastFastPathMatchesBroadcastReachability(t *testing.T) {
	positions := []geom.Point{
		geom.Pt(0, 0), geom.Pt(30, 0), geom.Pt(0, 30), geom.Pt(30, 30), geom.Pt(60, 0),
	}
	run := func(dst int) (*testNet, Stats) {
		cfg := DefaultConfig(100)
		n := newTestNet(t, cfg, positions)
		n.sched.At(0, func() { n.radios[0].Send(&Frame{Dst: dst, Bits: 8000, Payload: "fp"}) })
		n.sched.Run(1)
		return n, n.medium.Stats()
	}

	uni, uniStats := run(3)
	for i := range positions {
		want := 0
		if i == 3 {
			want = 1
		}
		if got := len(uni.recv[i]); got != want {
			t.Errorf("unicast: radio %d received %d frames, want %d", i, got, want)
		}
	}
	if uniStats.Delivered != 1 {
		t.Errorf("unicast Delivered = %d, want 1", uniStats.Delivered)
	}

	bc, bcStats := run(Broadcast)
	if got := len(bc.recv[3]); got != 1 {
		t.Fatalf("broadcast-equivalent run: destination received %d frames, want 1", got)
	}
	// Every radio is within 100 m of the sender, so the broadcast
	// delivers once per non-sender — the unicast count matches the
	// destination's share of it exactly.
	if want := uint64(len(positions) - 1); bcStats.Delivered != want {
		t.Errorf("broadcast Delivered = %d, want %d", bcStats.Delivered, want)
	}
	if len(bc.recv[3]) != len(uni.recv[3]) {
		t.Errorf("destination receptions differ: broadcast %d vs unicast %d", len(bc.recv[3]), len(uni.recv[3]))
	}
}

// TestUnicastSelfAddressedFails pins the fast path's guard: a frame
// addressed to its own sender is never delivered (the naive loop always
// skipped the sender) and fails after the retry budget.
func TestUnicastSelfAddressedFails(t *testing.T) {
	cfg := DefaultConfig(100)
	n := newTestNet(t, cfg, []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0)})
	f := &Frame{Dst: 0, Bits: 800}
	n.sched.At(0, func() { n.radios[0].Send(f) })
	n.sched.Run(5)
	if ok, exists := n.sent[0][f]; !exists || ok {
		t.Error("self-addressed unicast should complete with ok=false")
	}
	if got := n.medium.Stats().Delivered; got != 0 {
		t.Errorf("Delivered = %d, want 0", got)
	}
}

func TestUnicastOutOfRangeFailsAfterRetries(t *testing.T) {
	cfg := DefaultConfig(100)
	n := newTestNet(t, cfg, []geom.Point{geom.Pt(0, 0), geom.Pt(500, 0)})
	f := &Frame{Dst: 1, Bits: 8000}
	n.sched.At(0, func() { n.radios[0].Send(f) })
	n.sched.Run(5)
	if ok, exists := n.sent[0][f]; !exists || ok {
		t.Error("unreachable unicast should complete with ok=false")
	}
	if got := n.medium.Stats().UnicastFailures; got != 1 {
		t.Errorf("UnicastFailures = %d, want 1", got)
	}
	// Retries were attempted: transmissions > 1.
	if got := n.medium.Stats().Transmissions; got != uint64(cfg.MaxRetries)+1 {
		t.Errorf("Transmissions = %d, want %d", got, cfg.MaxRetries+1)
	}
}

func TestFrameAirtimeSerialization(t *testing.T) {
	// A 1000-byte payload at 1 Mbps takes 8 ms plus header time; the
	// receive event must land at exactly start + airtime.
	cfg := DefaultConfig(100)
	n := newTestNet(t, cfg, []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0)})
	var recvAt des.Time = -1
	n.medium.radios[1].onRecv = func(*Frame) { recvAt = n.sched.Now() }
	n.sched.At(0, func() { n.radios[0].Send(&Frame{Dst: Broadcast, Bits: 8000}) })
	n.sched.Run(1)
	want := float64(cfg.HeaderBits+8000) / cfg.BitRate
	if recvAt != want {
		t.Errorf("received at %v, want %v", recvAt, want)
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	cfg := DefaultConfig(100)
	cfg.QueueLen = 3
	n := newTestNet(t, cfg, []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0)})
	accepted := 0
	n.sched.At(0, func() {
		for i := 0; i < 10; i++ {
			if n.radios[0].Send(&Frame{Dst: Broadcast, Bits: 8000}) {
				accepted++
			}
		}
	})
	n.sched.Run(10)
	// First frame starts transmitting immediately (leaves the queue is
	// not modelled — the head stays queued until completion), so only
	// QueueLen frames are accepted.
	if accepted != cfg.QueueLen {
		t.Errorf("accepted %d frames, want %d", accepted, cfg.QueueLen)
	}
	if drops := n.medium.Stats().QueueDrops; drops != 7 {
		t.Errorf("QueueDrops = %d, want 7", drops)
	}
	if len(n.recv[1]) != cfg.QueueLen {
		t.Errorf("receiver got %d frames, want %d", len(n.recv[1]), cfg.QueueLen)
	}
}

func TestCarrierSenseSerializesNeighbors(t *testing.T) {
	// Two senders in carrier-sense range both broadcast at t=0; the
	// second must defer, so the common receiver gets both frames.
	cfg := DefaultConfig(100)
	n := newTestNet(t, cfg, []geom.Point{geom.Pt(0, 0), geom.Pt(40, 0), geom.Pt(20, 10)})
	n.sched.At(0, func() { n.radios[0].Send(&Frame{Dst: Broadcast, Bits: 8000}) })
	n.sched.At(1e-9, func() { n.radios[1].Send(&Frame{Dst: Broadcast, Bits: 8000}) })
	n.sched.Run(1)
	if len(n.recv[2]) != 2 {
		t.Errorf("receiver got %d frames, want 2 (carrier sense should avoid the collision)", len(n.recv[2]))
	}
	if n.medium.Stats().BusyDeferrals == 0 {
		t.Error("expected at least one busy deferral")
	}
}

func TestHiddenTerminalCollision(t *testing.T) {
	// With carrier-sense range equal to reception range, senders 0 and 2
	// (180 m apart) cannot hear each other, but receiver 1 in the middle
	// hears both: simultaneous broadcasts collide at 1.
	cfg := DefaultConfig(100)
	cfg.CSRangeFactor = 1.0
	n := newTestNet(t, cfg, []geom.Point{geom.Pt(0, 0), geom.Pt(90, 0), geom.Pt(180, 0)})
	n.sched.At(0, func() { n.radios[0].Send(&Frame{Dst: Broadcast, Bits: 8000}) })
	n.sched.At(0, func() { n.radios[2].Send(&Frame{Dst: Broadcast, Bits: 8000}) })
	n.sched.Run(1)
	if len(n.recv[1]) != 0 {
		t.Errorf("hidden-terminal collision should corrupt both frames, receiver got %d", len(n.recv[1]))
	}
	if n.medium.Stats().Collisions == 0 {
		t.Error("collision counter should increment")
	}
}

func TestUnicastRetrySucceedsAfterCollision(t *testing.T) {
	// Hidden terminal corrupts the first airing of a unicast, but the
	// interferer sends only once; the retry must succeed. Virtual CS is
	// disabled so the hidden terminal actually transmits concurrently.
	cfg := DefaultConfig(100)
	cfg.CSRangeFactor = 1.0
	cfg.VirtualCS = false
	n := newTestNet(t, cfg, []geom.Point{geom.Pt(0, 0), geom.Pt(90, 0), geom.Pt(180, 0)})
	f := &Frame{Dst: 1, Bits: 8000}
	n.sched.At(0, func() { n.radios[0].Send(f) })
	n.sched.At(0, func() { n.radios[2].Send(&Frame{Dst: Broadcast, Bits: 8000}) })
	n.sched.Run(5)
	if ok := n.sent[0][f]; !ok {
		t.Error("unicast should succeed on retry after the interferer goes quiet")
	}
	if len(n.recv[1]) != 1 {
		t.Errorf("receiver should end up with exactly the unicast frame, got %d", len(n.recv[1]))
	}
}

func TestHalfDuplexCannotReceiveWhileSending(t *testing.T) {
	// Radios 0 and 1 are out of carrier-sense range of each other but
	// within... impossible: CS range ≥ RX range. Instead: radio 1
	// transmits a long frame; radio 0's frame arriving mid-transmission
	// must not be received by 1 (half-duplex), even though 0 is in range.
	cfg := DefaultConfig(100)
	cfg.CSRangeFactor = 1.0 // make CS range equal RX range
	n := newTestNet(t, cfg, []geom.Point{geom.Pt(0, 0), geom.Pt(99, 0)})
	// Radio 1 starts first with a long frame; radio 0 senses... at 99 m
	// with factor 1.0 they DO sense each other. Put them at the edge so
	// they are within RX range but start simultaneously: both transmit in
	// the same instant — neither senses the other (sensing happens before
	// the medium registers the peer's airing in the same tick only for
	// the earlier-scheduled event). Use explicit ordering: 1 first.
	n.sched.At(0, func() { n.radios[1].Send(&Frame{Dst: Broadcast, Bits: 80000}) })
	n.sched.At(1e-8, func() {
		// Radio 0 will sense busy and defer — forcing it NOT to defer
		// requires being outside CS range; accept deferral here and just
		// assert serialization works with factor 1.
		n.radios[0].Send(&Frame{Dst: 1, Bits: 800})
	})
	n.sched.Run(2)
	if len(n.recv[1]) != 1 {
		t.Errorf("radio 1 should receive the deferred unicast after finishing its own airing, got %d", len(n.recv[1]))
	}
}

func TestStatsAccounting(t *testing.T) {
	cfg := DefaultConfig(100)
	n := newTestNet(t, cfg, []geom.Point{geom.Pt(0, 0), geom.Pt(50, 0)})
	n.sched.At(0, func() {
		n.radios[0].Send(&Frame{Dst: 1, Bits: 8000})
		n.radios[0].Send(&Frame{Dst: Broadcast, Bits: 8000})
	})
	n.sched.Run(1)
	st := n.medium.Stats()
	if st.FramesQueued != 2 {
		t.Errorf("FramesQueued = %d, want 2", st.FramesQueued)
	}
	if st.Delivered != 2 {
		t.Errorf("Delivered = %d, want 2", st.Delivered)
	}
	sentOK, sentFail, drops, recv := n.radios[0].Counters()
	if sentOK != 2 || sentFail != 0 || drops != 0 {
		t.Errorf("sender counters = (%d,%d,%d), want (2,0,0)", sentOK, sentFail, drops)
	}
	_, _, _, recv1 := n.radios[1].Counters()
	if recv != 0 || recv1 != 2 {
		t.Errorf("receive counters: sender=%d receiver=%d, want 0 and 2", recv, recv1)
	}
}

func TestManyContendersAllFramesEventuallyDeliver(t *testing.T) {
	// 8 mutually-in-range radios each broadcast 5 frames starting at the
	// same instant. Carrier sense plus random backoff must serialize all
	// 40 airings without loss (broadcasts are not acked, but within CS
	// range collisions can only happen on identical backoff expiry, which
	// retries... broadcasts do not retry — so assert a high floor).
	cfg := DefaultConfig(100)
	positions := make([]geom.Point, 8)
	for i := range positions {
		positions[i] = geom.Pt(float64(i)*10, 0)
	}
	n := newTestNet(t, cfg, positions)
	n.sched.At(0, func() {
		for i := range n.radios {
			for k := 0; k < 5; k++ {
				n.radios[i].Send(&Frame{Dst: Broadcast, Bits: 8000})
			}
		}
	})
	n.sched.Run(30)
	st := n.medium.Stats()
	// Every radio should receive most frames from the other 7 (5×7=35).
	for i := range n.recv {
		if len(n.recv[i]) < 30 {
			t.Errorf("radio %d received %d/35 frames — too much loss under carrier sense", i, len(n.recv[i]))
		}
	}
	if st.Transmissions != 40 {
		t.Errorf("Transmissions = %d, want 40 (broadcasts never retry)", st.Transmissions)
	}
}

func TestContentionIncreasesLatency(t *testing.T) {
	// The paper's core mechanism: with more traffic, the same frame takes
	// longer to get through. Send 1 vs 100 background frames and compare
	// the probe frame's completion time.
	probeLatency := func(background int) des.Time {
		cfg := DefaultConfig(100)
		n := newTestNet(t, cfg, []geom.Point{geom.Pt(0, 0), geom.Pt(50, 0), geom.Pt(50, 50)})
		var doneAt des.Time = -1
		probe := &Frame{Dst: 1, Bits: 8000}
		n.sched.At(0, func() {
			for i := 0; i < background; i++ {
				n.radios[2].Send(&Frame{Dst: Broadcast, Bits: 8000})
			}
		})
		n.sched.At(1e-6, func() { n.radios[0].Send(probe) })
		n.medium.radios[0].onSent = func(f *Frame, ok bool) {
			if f == probe && ok {
				doneAt = n.sched.Now()
			}
		}
		n.sched.Run(60)
		if doneAt < 0 {
			t.Fatalf("probe never completed with %d background frames", background)
		}
		return doneAt
	}
	quiet := probeLatency(1)
	busy := probeLatency(100)
	if busy <= quiet*2 {
		t.Errorf("contention should slow the probe: quiet=%v busy=%v", quiet, busy)
	}
}
