package mac

import (
	"math"
	"math/rand"
	"testing"

	"glr/internal/des"
	"glr/internal/geom"
)

// benchMediumBroadcast measures the end-to-end cost of one broadcast
// airing — carrier sense, transmission, and reception resolution — on a
// 1000-radio medium at the paper's node density (50 nodes per
// 1500×300 m). The naive variant scans every radio and every active
// transmission; the grid variant touches only the sender's
// neighborhood.
func benchMediumBroadcast(b *testing.B, disableIndex bool) {
	const n = 1000
	cfg := DefaultConfig(100)
	cfg.DisableSpatialIndex = disableIndex

	// Fixed density: area grows linearly with the node count.
	area := float64(n) / (50.0 / (1500 * 300))
	side := math.Sqrt(area)

	sched := des.NewScheduler()
	m, err := NewMedium(sched, cfg, 42)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		p := geom.Pt(rng.Float64()*side, rng.Float64()*side)
		if _, err := m.AddRadio(i, func() geom.Point { return p }, nil, nil); err != nil {
			b.Fatal(err)
		}
	}

	b.ReportAllocs()
	b.ResetTimer()
	// One frame object reused across iterations: the airing completes
	// (and the MAC drops its reference) before the next Send, and the
	// benchmark measures the medium, not frame allocation.
	f := &Frame{Dst: Broadcast, Bits: 8000}
	for i := 0; i < b.N; i++ {
		m.radios[i%n].Send(f)
		sched.RunAll()
	}
	b.ReportMetric(float64(m.stats.Delivered)/float64(b.N), "recv/op")
}

func BenchmarkMediumBroadcastNaive(b *testing.B) { benchMediumBroadcast(b, true) }

func BenchmarkMediumBroadcastGrid(b *testing.B) { benchMediumBroadcast(b, false) }
