package des

import (
	"math"
	"sort"
)

// calendarQueue is the default eventQueue: a Brown-style calendar queue
// (R. Brown, "Calendar queues: a fast O(1) priority queue implementation
// for the simulation event set problem", CACM 1988), the structure NS-2's
// scheduler made standard for network DES.
//
// Geometry: time is divided into "days" of a fixed width; day k maps to
// physical bucket k mod nbuckets, so the nbuckets buckets cover one
// "year" and recycle across years. Each bucket keeps its events in an
// intrusive singly-linked chain sorted by the total order eventLess, so
// dequeue order within a day is exact — there is no approximate binning,
// and dispatch order is byte-identical to the reference heap. Chains make
// enqueue and dequeue allocation-free: an event links into its bucket
// through its own next pointer, so steady-state scheduling never grows a
// slice and never feeds the garbage collector. With the width matched to
// the local event density (≈1 event per day near the head; see newWidth)
// and the bucket count resized to stay within a factor of two of the
// event count, enqueue and dequeue touch O(1) events amortized, versus
// the heap's O(log n) sift paths.
//
// Dequeue keeps a cursor (lastV, the virtual day of the dequeue
// position): the minimum event is found by scanning days forward from
// the cursor, checking only each bucket's head. Because dispatch times
// never decrease and enqueues below the cursor rewind it, the first head
// found inside its own day window is the global minimum. If a whole year
// of days turns up empty (a sparse far-future queue), a direct scan of
// all bucket heads finds the minimum and re-anchors the cursor —
// amortized away by the resize policy, which shrinks the calendar as the
// queue drains.
type calendarQueue struct {
	heads []*event // head of the sorted chain per bucket
	tails []*event // chain tail; stale when the head is nil
	mask  int      // len(heads)-1; len is a power of two
	width float64  // day width in simulated seconds
	invW  float64  // 1/width, so vday multiplies instead of divides
	count int
	lastV int64 // virtual day of the dequeue cursor

	// peek caches its result so the pop that follows it is O(1); any
	// mutation that can change the minimum invalidates it.
	cached  *event
	cachedB int
}

const (
	calMinBuckets = 4
	// calSampleMax bounds the head sample used to estimate day width at
	// resize (Brown samples a small prefix of the queue for the same
	// reason: the width should match event density near the head).
	calSampleMax = 32
	// calMinWidth keeps virtual day numbers finite: at the simulator's
	// time scales (seconds, horizons ≤1e9), at/width stays far inside
	// int64 range.
	calMinWidth = 1e-9
)

func newCalendarQueue() *calendarQueue {
	return &calendarQueue{
		heads: make([]*event, calMinBuckets),
		tails: make([]*event, calMinBuckets),
		mask:  calMinBuckets - 1,
		width: 1.0,
		invW:  1.0,
	}
}

func (q *calendarQueue) size() int { return q.count }

// vday maps a timestamp to its virtual day. Timestamps are nonnegative
// (the Scheduler rejects scheduling before time 0), so truncation is
// floor. Multiplying by the cached reciprocal is not bit-equal to
// dividing by width, but any monotone time→day map is correct here: the
// queue only needs insert, peek, and the cursor to agree on the map.
func (q *calendarQueue) vday(t Time) int64 { return int64(t * q.invW) }

func (q *calendarQueue) push(ev *event) {
	q.insert(ev)
	if q.cached != nil && eventLess(ev, q.cached) {
		q.cached = nil
	}
	if q.count > 2*len(q.heads) {
		q.resize(2 * len(q.heads))
	}
}

// insert links ev into its bucket chain in sorted position, without
// triggering a resize (resize itself re-inserts through this path).
func (q *calendarQueue) insert(ev *event) {
	v := q.vday(ev.at)
	if v < q.lastV {
		// An enqueue below the cursor (possible after the clock advanced
		// to a horizon past the queue minimum) rewinds it so the year
		// scan cannot start beyond the new minimum.
		q.lastV = v
	}
	b := int(v & int64(q.mask))
	head := q.heads[b]
	switch {
	case head == nil:
		ev.next = nil
		q.heads[b], q.tails[b] = ev, ev
	case !eventLess(ev, q.tails[b]):
		// Append-at-end fast path: seq grows monotonically, so events
		// scheduled for the same instant (and most in-order workloads)
		// land here in O(1).
		ev.next = nil
		q.tails[b].next = ev
		q.tails[b] = ev
	case eventLess(ev, head):
		ev.next = head
		q.heads[b] = ev
	default:
		cur := head
		for cur.next != nil && !eventLess(ev, cur.next) {
			cur = cur.next
		}
		ev.next = cur.next
		cur.next = ev
	}
	q.count++
}

func (q *calendarQueue) peek() *event {
	if q.cached != nil {
		return q.cached
	}
	if q.count == 0 {
		return nil
	}
	// Year scan: walk days forward from the cursor; the first bucket head
	// lying within (or before) the day under inspection is the minimum.
	v := q.lastV
	for k := 0; k <= q.mask; k++ {
		b := int(v & int64(q.mask))
		if head := q.heads[b]; head != nil && q.vday(head.at) <= v {
			q.lastV = v
			q.cached, q.cachedB = head, b
			return head
		}
		v++
	}
	// Sparse queue: nothing within a year of the cursor. Direct-search
	// every bucket head for the global minimum and re-anchor the cursor.
	var best *event
	bestB := -1
	for b, head := range q.heads {
		if head != nil && (best == nil || eventLess(head, best)) {
			best, bestB = head, b
		}
	}
	q.lastV = q.vday(best.at)
	q.cached, q.cachedB = best, bestB
	return best
}

func (q *calendarQueue) pop() *event {
	ev := q.peek()
	if ev == nil {
		return nil
	}
	q.heads[q.cachedB] = ev.next
	ev.next = nil
	q.count--
	q.lastV = q.vday(ev.at)
	q.cached = nil
	if n := len(q.heads); n > calMinBuckets && q.count < n/2 {
		q.resize(n / 2)
	}
	return ev
}

// remove unlinks a resident event from its bucket chain: O(chain length),
// which the width policy keeps at a few events. Backs eager Cancel.
func (q *calendarQueue) remove(ev *event) {
	b := int(q.vday(ev.at) & int64(q.mask))
	if q.cached == ev {
		q.cached = nil
	}
	if head := q.heads[b]; head == ev {
		q.heads[b] = ev.next
	} else {
		cur := head
		for cur.next != ev {
			cur = cur.next
		}
		cur.next = ev.next
		if q.tails[b] == ev {
			q.tails[b] = cur
		}
	}
	ev.next = nil
	q.count--
	if n := len(q.heads); n > calMinBuckets && q.count < n/2 {
		q.resize(n / 2)
	}
}

// resize rebuilds the calendar with n buckets and a day width re-fitted
// to the current event density. O(count), amortized O(1) per operation by
// the doubling/halving policy.
func (q *calendarQueue) resize(n int) {
	if n < calMinBuckets {
		n = calMinBuckets
	}
	all := make([]*event, 0, q.count)
	for _, head := range q.heads {
		for ev := head; ev != nil; ev = ev.next {
			all = append(all, ev)
		}
	}
	q.width = q.newWidth(all)
	q.invW = 1 / q.width
	q.heads = make([]*event, n)
	q.tails = make([]*event, n)
	q.mask = n - 1
	q.count = 0
	q.cached = nil
	minV := int64(math.MaxInt64)
	for _, ev := range all {
		if v := q.vday(ev.at); v < minV {
			minV = v
		}
	}
	if len(all) > 0 {
		q.lastV = minV
	}
	for _, ev := range all {
		q.insert(ev)
	}
}

// newWidth estimates the day width from the events nearest the head: the
// average separation of the calSampleMax earliest timestamps, so a day
// holds about one event where dequeueing happens. Brown tunes for a few
// events per day, but that balance assumes comparable bucket-scan and
// chain-walk costs; here scanning an empty day is a sequential array
// read while every chain step is a dependent cache miss, so the width
// aims at occupancy ≈1. A degenerate sample (fewer than two events, or
// all simultaneous) keeps the current width — any width dispatches
// simultaneous events correctly, since buckets order by (at, seq).
func (q *calendarQueue) newWidth(all []*event) float64 {
	if len(all) < 2 {
		return q.width
	}
	sample := make([]float64, 0, calSampleMax)
	for _, ev := range all {
		t := ev.at
		if len(sample) == calSampleMax && t >= sample[len(sample)-1] {
			continue
		}
		i := sort.SearchFloat64s(sample, t)
		if len(sample) < calSampleMax {
			sample = append(sample, 0)
		}
		copy(sample[i+1:], sample[i:])
		sample[i] = t
	}
	w := (sample[len(sample)-1] - sample[0]) / float64(len(sample)-1)
	if w < calMinWidth {
		return q.width
	}
	return w
}
