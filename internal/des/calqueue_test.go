package des

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// schedulerBackends names the two queue backends every cross-backend test
// drives.
var schedulerBackends = []struct {
	name string
	mk   func() *Scheduler
}{
	{"calendar", NewScheduler},
	{"heap", NewHeapScheduler},
}

// TestPendingCounter is the regression test for the O(1) Pending
// counter: it must track schedule, cancel, and dispatch exactly, on both
// backends.
func TestPendingCounter(t *testing.T) {
	for _, backend := range schedulerBackends {
		t.Run(backend.name, func(t *testing.T) {
			s := backend.mk()
			if s.Pending() != 0 {
				t.Fatalf("fresh scheduler Pending = %d, want 0", s.Pending())
			}
			ids := make([]EventID, 0, 100)
			for i := 0; i < 100; i++ {
				ids = append(ids, s.At(Time(i), func() {}))
			}
			if s.Pending() != 100 {
				t.Fatalf("Pending = %d after 100 At, want 100", s.Pending())
			}
			for i := 0; i < 30; i++ {
				s.Cancel(ids[i*3]) // cancel 30 distinct events
			}
			if s.Pending() != 70 {
				t.Fatalf("Pending = %d after 30 cancels, want 70", s.Pending())
			}
			s.Cancel(ids[0]) // double cancel: no-op
			s.Cancel(0)      // zero id: no-op
			if s.Pending() != 70 {
				t.Fatalf("Pending = %d after no-op cancels, want 70", s.Pending())
			}
			s.Run(49.5) // dispatches the live events among ids[0..49]
			live := 0
			for i := 50; i < 100; i++ {
				if i%3 != 0 || i/3 >= 30 {
					live++
				}
			}
			if s.Pending() != live {
				t.Fatalf("Pending = %d after partial run, want %d", s.Pending(), live)
			}
			s.RunAll()
			if s.Pending() != 0 {
				t.Fatalf("Pending = %d after RunAll, want 0", s.Pending())
			}
		})
	}
}

// TestCanceledReclamation is the schedule/cancel-churn stress test for
// the canceled-event-retention fix: canceled events used to sit in the
// heap until dispatch reached them, so a workload that cancels nearly
// everything it schedules grew the queue without bound. Cancel now
// reclaims eagerly, so after any churn the resident queue holds exactly
// the live events — and the survivors must still fire in order.
func TestCanceledReclamation(t *testing.T) {
	for _, backend := range schedulerBackends {
		t.Run(backend.name, func(t *testing.T) {
			s := backend.mk()
			rng := rand.New(rand.NewSource(7))
			var fired []Time
			keepEvery := 100
			kept := 0
			for i := 0; i < 20000; i++ {
				at := rng.Float64() * 1000
				id := s.At(at, func() { fired = append(fired, s.Now()) })
				if i%keepEvery == 0 {
					kept++
					continue
				}
				s.Cancel(id)
			}
			// 200 live events remain out of 20000 scheduled; eager
			// reclamation means the resident queue holds exactly those.
			if size := s.q.size(); size != kept {
				t.Fatalf("queue holds %d events after churn, want exactly %d live", size, kept)
			}
			s.RunAll()
			if len(fired) != kept {
				t.Fatalf("fired %d events, want %d survivors", len(fired), kept)
			}
			for i := 1; i < len(fired); i++ {
				if fired[i] < fired[i-1] {
					t.Fatalf("out-of-order dispatch after compaction: %v then %v", fired[i-1], fired[i])
				}
			}
		})
	}
}

// traceEntry is one dispatched event in a recorded run: which scheduled
// event fired, and when. Equal traces mean equal (time, seq) dispatch
// sequences, since labels are assigned in scheduling order.
type traceEntry struct {
	label int
	at    Time
}

// replayScript drives one scheduler through a randomized mixed
// At/After/Cancel/Stop/Run workload derived deterministically from seed,
// recording the dispatch trace. Handlers themselves schedule and cancel,
// so the workload exercises in-dispatch mutation too.
func replayScript(s *Scheduler, seed int64) (trace []traceEntry, finalNow Time, pending int, processed uint64) {
	rng := rand.New(rand.NewSource(seed))
	var ids []EventID
	label := 0
	schedule := func(at Time) {
		l := label
		label++
		var id EventID
		id = s.At(at, func() {
			trace = append(trace, traceEntry{label: l, at: s.Now()})
			switch rng.Intn(4) {
			case 0: // schedule a follow-up relative to now
				ll := label
				label++
				ids = append(ids, s.After(rng.Float64()*10, func() {
					trace = append(trace, traceEntry{label: ll, at: s.Now()})
				}))
			case 1: // cancel a random earlier event
				if len(ids) > 0 {
					s.Cancel(ids[rng.Intn(len(ids))])
				}
			case 2: // occasionally stop mid-run
				if rng.Intn(8) == 0 {
					s.Stop()
				}
			}
			_ = id
		})
		ids = append(ids, id)
	}
	for round := 0; round < 6; round++ {
		n := 5 + rng.Intn(40)
		for i := 0; i < n; i++ {
			schedule(s.Now() + rng.Float64()*50)
		}
		for i := 0; i < n/4; i++ {
			s.Cancel(ids[rng.Intn(len(ids))])
		}
		s.Run(s.Now() + rng.Float64()*40)
	}
	s.RunAll()
	return trace, s.Now(), s.Pending(), s.Processed()
}

// TestCalendarHeapDispatchEquality is the randomized equivalence
// property: under mixed At/After/Cancel/Stop workloads the calendar queue
// must dispatch exactly the same (time, seq) sequence as the reference
// heap. Labels are assigned in scheduling (seq) order, and rng draws
// happen inside handlers, so any ordering divergence derails the whole
// trace.
func TestCalendarHeapDispatchEquality(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		calTrace, calNow, calPending, calProc := replayScript(NewScheduler(), seed)
		heapTrace, heapNow, heapPending, heapProc := replayScript(NewHeapScheduler(), seed)
		if !reflect.DeepEqual(calTrace, heapTrace) {
			i := 0
			for i < len(calTrace) && i < len(heapTrace) && calTrace[i] == heapTrace[i] {
				i++
			}
			t.Fatalf("seed %d: dispatch traces diverge at entry %d (calendar %d entries, heap %d)",
				seed, i, len(calTrace), len(heapTrace))
		}
		if calNow != heapNow || calPending != heapPending || calProc != heapProc {
			t.Fatalf("seed %d: final state diverges: now %v/%v pending %d/%d processed %d/%d",
				seed, calNow, heapNow, calPending, heapPending, calProc, heapProc)
		}
		if len(calTrace) == 0 {
			t.Fatalf("seed %d dispatched nothing; script too hostile to be meaningful", seed)
		}
	}
}

// TestCalendarResizeStress walks the calendar through its resize policy —
// growth past many doublings, drain back down, clustered, simultaneous,
// and sparse far-future time distributions — and checks exact dispatch
// order (time order, FIFO within an instant) throughout.
func TestCalendarResizeStress(t *testing.T) {
	cases := []struct {
		name string
		gen  func(rng *rand.Rand, i int) Time
	}{
		{"uniform", func(rng *rand.Rand, i int) Time { return rng.Float64() * 1000 }},
		{"clustered", func(rng *rand.Rand, i int) Time { return float64(i/500) + rng.Float64()*1e-6 }},
		{"simultaneous", func(rng *rand.Rand, i int) Time { return float64(i % 7) }},
		{"sparse", func(rng *rand.Rand, i int) Time { return rng.Float64() * 1e8 }},
		{"bimodal", func(rng *rand.Rand, i int) Time {
			if i%2 == 0 {
				return rng.Float64()
			}
			return 1e6 + rng.Float64()
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := NewScheduler()
			rng := rand.New(rand.NewSource(11))
			const n = 5000
			want := make([]dispatchKey, 0, n)
			var got []dispatchKey
			for i := 0; i < n; i++ {
				at := tc.gen(rng, i)
				k := dispatchKey{at: at, seq: i}
				want = append(want, k)
				s.At(at, func() { got = append(got, k) })
			}
			s.RunAll()
			// Expected order: stable sort by time (stability = FIFO among
			// simultaneous events, since want is in scheduling order).
			sort.SliceStable(want, func(i, j int) bool { return want[i].at < want[j].at })
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("dispatch order diverged from (time, seq) order (%d events)", n)
			}
		})
	}
}

// dispatchKey identifies one scheduled event in the resize stress test.
type dispatchKey struct {
	at  Time
	seq int
}

// benchScheduler measures a steady-state schedule/cancel/dispatch mix at
// one million pending events: each operation schedules two future events,
// cancels one live event, and dispatches one event (handlers Stop the
// scheduler, so Run delivers exactly one dispatch). Net queue change per
// operation is zero, so the pending population holds at exactly 2^20
// throughout — the regime where the heap's O(log n) sift paths hurt and
// the calendar queue's O(1) shows. Cancel targets come from a small ring
// of recently scheduled ids: the ring entry being replaced was scheduled
// ~1024 operations earlier into a 2^20-deep queue, so it is still
// pending when canceled.
func benchScheduler(b *testing.B, mk func() *Scheduler) {
	s := mk()
	rng := rand.New(rand.NewSource(1))
	const population = 1 << 20 // ~1e6 pending events
	const span = 1000.0        // seconds of event spread
	const ringSize = 1 << 10
	stop := func() { s.Stop() }
	var ring [ringSize]EventID
	for i := 0; i < population; i++ {
		ring[i&(ringSize-1)] = s.After(rng.Float64()*span, stop)
	}
	// Pre-draw the schedule offsets so the measured loop is scheduler
	// operations, not rng arithmetic.
	times := make([]float64, 1<<16)
	for i := range times {
		times[i] = rng.Float64() * span
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Cancel(ring[i&(ringSize-1)])
		ring[i&(ringSize-1)] = s.After(times[(2*i)&(len(times)-1)], stop)
		s.After(times[(2*i+1)&(len(times)-1)], stop)
		s.Run(s.Now() + span) // Stop fires after one dispatch
	}
}

func BenchmarkSchedulerHeap(b *testing.B) { benchScheduler(b, NewHeapScheduler) }

func BenchmarkSchedulerCalendar(b *testing.B) { benchScheduler(b, NewScheduler) }
