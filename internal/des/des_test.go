package des

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	s := NewScheduler()
	var fired []Time
	for _, at := range []Time{5, 1, 3, 2, 4} {
		at := at
		s.At(at, func() { fired = append(fired, s.Now()) })
	}
	s.Run(10)
	want := []Time{1, 2, 3, 4, 5}
	if !reflect.DeepEqual(fired, want) {
		t.Errorf("fired at %v, want %v", fired, want)
	}
	if s.Now() != 10 {
		t.Errorf("clock = %v, want 10 (run horizon)", s.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := NewScheduler()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(7, func() { order = append(order, i) })
	}
	s.RunAll()
	for i, got := range order {
		if got != i {
			t.Fatalf("simultaneous events out of scheduling order: %v", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	s := NewScheduler()
	var at Time = -1
	s.At(5, func() {
		s.After(2.5, func() { at = s.Now() })
	})
	s.RunAll()
	if at != 7.5 {
		t.Errorf("After fired at %v, want 7.5", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := NewScheduler()
	s.At(10, func() {})
	s.Run(100)
	defer func() {
		if recover() == nil {
			t.Error("expected panic when scheduling in the past")
		}
	}()
	s.At(5, func() {})
}

func TestCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	id := s.At(1, func() { fired = true })
	if !s.Cancel(id) {
		t.Error("Cancel should report success for a pending event")
	}
	if s.Cancel(id) {
		t.Error("double Cancel should report false")
	}
	if s.Cancel(0) {
		t.Error("Cancel of zero id should report false")
	}
	s.RunAll()
	if fired {
		t.Error("canceled event must not fire")
	}
}

func TestCancelFromHandler(t *testing.T) {
	s := NewScheduler()
	fired := false
	var id EventID
	s.At(1, func() { s.Cancel(id) })
	id = s.At(2, func() { fired = true })
	s.RunAll()
	if fired {
		t.Error("event canceled by earlier handler must not fire")
	}
}

func TestRunHorizonLeavesLaterEvents(t *testing.T) {
	s := NewScheduler()
	var fired []Time
	s.At(1, func() { fired = append(fired, 1) })
	s.At(5, func() { fired = append(fired, 5) })
	s.At(10, func() { fired = append(fired, 10) })
	s.Run(5) // events exactly at the horizon fire
	if !reflect.DeepEqual(fired, []Time{1, 5}) {
		t.Fatalf("fired %v, want [1 5]", fired)
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", s.Pending())
	}
	s.Run(20)
	if !reflect.DeepEqual(fired, []Time{1, 5, 10}) {
		t.Fatalf("fired %v, want [1 5 10]", fired)
	}
}

func TestStop(t *testing.T) {
	s := NewScheduler()
	count := 0
	s.At(1, func() { count++; s.Stop() })
	s.At(2, func() { count++ })
	s.Run(10)
	if count != 1 {
		t.Errorf("count = %d, want 1 (Stop after first event)", count)
	}
	if s.Now() != 1 {
		t.Errorf("clock = %v, want 1 after Stop", s.Now())
	}
}

func TestProcessedCount(t *testing.T) {
	s := NewScheduler()
	for i := 0; i < 5; i++ {
		s.At(Time(i), func() {})
	}
	id := s.At(6, func() {})
	s.Cancel(id)
	s.RunAll()
	if s.Processed() != 5 {
		t.Errorf("Processed = %d, want 5 (canceled events excluded)", s.Processed())
	}
}

func TestHandlersCanScheduleRecursively(t *testing.T) {
	s := NewScheduler()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			s.After(0.001, recurse)
		}
	}
	s.At(0, recurse)
	s.RunAll()
	if depth != 100 {
		t.Errorf("depth = %d, want 100", depth)
	}
}

// Property: for any set of event times, firing order is the sorted order.
func TestFireOrderSortedQuick(t *testing.T) {
	f := func(raw []uint16) bool {
		s := NewScheduler()
		times := make([]Time, len(raw))
		var fired []Time
		for i, r := range raw {
			times[i] = Time(r) / 16
			at := times[i]
			s.At(at, func() { fired = append(fired, at) })
		}
		s.RunAll()
		sort.Float64s(times)
		return reflect.DeepEqual(fired, times) || (len(fired) == 0 && len(times) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: random cancellation never causes a canceled event to fire nor a
// live event to be dropped.
func TestRandomCancellationQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		s := NewScheduler()
		n := 1 + rng.Intn(50)
		firedSet := make(map[int]bool, n)
		ids := make([]EventID, n)
		for i := 0; i < n; i++ {
			i := i
			ids[i] = s.At(Time(rng.Intn(100)), func() { firedSet[i] = true })
		}
		canceled := make(map[int]bool)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				s.Cancel(ids[i])
				canceled[i] = true
			}
		}
		s.RunAll()
		for i := 0; i < n; i++ {
			if canceled[i] && firedSet[i] {
				t.Fatal("canceled event fired")
			}
			if !canceled[i] && !firedSet[i] {
				t.Fatal("live event did not fire")
			}
		}
	}
}

func TestTimerResetAndStop(t *testing.T) {
	s := NewScheduler()
	count := 0
	tm := NewTimer(s, func() { count++ })
	if tm.Armed() {
		t.Error("new timer should be unarmed")
	}
	s.At(0, func() { tm.Reset(5) })
	s.At(2, func() { tm.Reset(5) }) // postpone: fires at 7, not 5
	s.Run(6)
	if count != 0 {
		t.Fatal("timer fired before reset deadline")
	}
	s.Run(8)
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
	if tm.Armed() {
		t.Error("fired timer should be unarmed")
	}
	tm.Reset(1)
	if !tm.Stop() {
		t.Error("Stop of armed timer should report true")
	}
	if tm.Stop() {
		t.Error("Stop of unarmed timer should report false")
	}
	s.Run(20)
	if count != 1 {
		t.Error("stopped timer must not fire")
	}
}

func TestTickerPeriodic(t *testing.T) {
	s := NewScheduler()
	var at []Time
	var tk *Ticker
	tk = NewTicker(s, 2, 1, func() {
		at = append(at, s.Now())
		if len(at) == 4 {
			tk.Stop()
		}
	})
	s.Run(100)
	want := []Time{1, 3, 5, 7}
	if !reflect.DeepEqual(at, want) {
		t.Errorf("ticks at %v, want %v", at, want)
	}
}

func TestTickerStopIdempotent(t *testing.T) {
	s := NewScheduler()
	tk := NewTicker(s, 1, 0, func() {})
	tk.Stop()
	tk.Stop()
	s.Run(5)
}

func TestTickerSetInterval(t *testing.T) {
	s := NewScheduler()
	var at []Time
	var tk *Ticker
	tk = NewTicker(s, 1, 0, func() {
		at = append(at, s.Now())
		tk.SetInterval(3)
		if len(at) >= 3 {
			tk.Stop()
		}
	})
	s.Run(100)
	want := []Time{0, 3, 6}
	if !reflect.DeepEqual(at, want) {
		t.Errorf("ticks at %v, want %v", at, want)
	}
}

func TestTickerInvalidInterval(t *testing.T) {
	s := NewScheduler()
	defer func() {
		if recover() == nil {
			t.Error("expected panic for nonpositive interval")
		}
	}()
	NewTicker(s, 0, 0, func() {})
}

func BenchmarkSchedulerChurn(b *testing.B) {
	s := NewScheduler()
	rng := rand.New(rand.NewSource(1))
	// Self-perpetuating event population of 1000.
	var spawn func()
	spawn = func() { s.After(rng.Float64(), spawn) }
	for i := 0; i < 1000; i++ {
		s.At(rng.Float64(), spawn)
	}
	b.ResetTimer()
	start := s.Processed()
	for s.Processed()-start < uint64(b.N) {
		s.Run(s.Now() + 1)
	}
}
