package des

// Timer is a restartable one-shot timer bound to a scheduler, in the style
// of protocol timers (retransmission, beacon, route-check). The zero value
// is not usable; create with NewTimer.
type Timer struct {
	sched *Scheduler
	fn    Handler
	fire  Handler // persistent expiry handler (one alloc per timer)
	id    EventID
	armed bool
}

// NewTimer returns an unarmed timer that runs fn when it fires.
func NewTimer(sched *Scheduler, fn Handler) *Timer {
	t := &Timer{sched: sched, fn: fn}
	t.fire = func() {
		t.armed = false
		t.fn()
	}
	return t
}

// Reset (re)arms the timer to fire d seconds from now, canceling any
// pending expiry.
func (t *Timer) Reset(d float64) {
	t.Stop()
	t.armed = true
	t.id = t.sched.After(d, t.fire)
}

// Stop disarms the timer if armed. It reports whether a pending expiry was
// canceled.
func (t *Timer) Stop() bool {
	if !t.armed {
		return false
	}
	t.armed = false
	return t.sched.Cancel(t.id)
}

// Armed reports whether the timer is waiting to fire.
func (t *Timer) Armed() bool { return t.armed }

// Ticker invokes fn every interval seconds until stopped, starting at
// now + phase. It models periodic protocol behaviour (beaconing, periodic
// route checks) with an optional phase offset so that nodes do not fire in
// lockstep.
type Ticker struct {
	sched    *Scheduler
	fn       Handler
	fire     Handler // persistent tick handler (one alloc per ticker)
	interval float64
	id       EventID
	running  bool
}

// NewTicker schedules fn every interval seconds, first firing at
// now + phase. A nonpositive interval panics.
func NewTicker(sched *Scheduler, interval, phase float64, fn Handler) *Ticker {
	if interval <= 0 {
		panic("des: ticker interval must be positive")
	}
	t := &Ticker{sched: sched, fn: fn, interval: interval, running: true}
	t.fire = t.tick // bound once: rescheduling a method value per tick would allocate
	t.id = sched.After(phase, t.fire)
	return t
}

func (t *Ticker) tick() {
	if !t.running {
		return
	}
	t.fn()
	if t.running { // fn may have stopped us
		t.id = t.sched.After(t.interval, t.fire)
	}
}

// Stop halts the ticker. Safe to call multiple times and from within fn.
func (t *Ticker) Stop() {
	if !t.running {
		return
	}
	t.running = false
	t.sched.Cancel(t.id)
}

// SetInterval changes the period used for subsequent ticks.
func (t *Ticker) SetInterval(interval float64) {
	if interval <= 0 {
		panic("des: ticker interval must be positive")
	}
	t.interval = interval
}
