package des

// Timer is a restartable one-shot timer bound to a scheduler, in the style
// of protocol timers (retransmission, beacon, route-check). The zero value
// is not usable; create with NewTimer.
type Timer struct {
	sched *Scheduler
	fn    Handler
	id    EventID
	armed bool
}

// NewTimer returns an unarmed timer that runs fn when it fires.
func NewTimer(sched *Scheduler, fn Handler) *Timer {
	return &Timer{sched: sched, fn: fn}
}

// Reset (re)arms the timer to fire d seconds from now, canceling any
// pending expiry.
func (t *Timer) Reset(d float64) {
	t.Stop()
	t.armed = true
	t.id = t.sched.After(d, func() {
		t.armed = false
		t.fn()
	})
}

// Stop disarms the timer if armed. It reports whether a pending expiry was
// canceled.
func (t *Timer) Stop() bool {
	if !t.armed {
		return false
	}
	t.armed = false
	return t.sched.Cancel(t.id)
}

// Armed reports whether the timer is waiting to fire.
func (t *Timer) Armed() bool { return t.armed }

// Ticker invokes fn every interval seconds until stopped, starting at
// now + phase. It models periodic protocol behaviour (beaconing, periodic
// route checks) with an optional phase offset so that nodes do not fire in
// lockstep.
type Ticker struct {
	sched    *Scheduler
	fn       Handler
	interval float64
	id       EventID
	running  bool
}

// NewTicker schedules fn every interval seconds, first firing at
// now + phase. A nonpositive interval panics.
func NewTicker(sched *Scheduler, interval, phase float64, fn Handler) *Ticker {
	if interval <= 0 {
		panic("des: ticker interval must be positive")
	}
	t := &Ticker{sched: sched, fn: fn, interval: interval, running: true}
	t.id = sched.After(phase, t.tick)
	return t
}

func (t *Ticker) tick() {
	if !t.running {
		return
	}
	t.fn()
	if t.running { // fn may have stopped us
		t.id = t.sched.After(t.interval, t.tick)
	}
}

// Stop halts the ticker. Safe to call multiple times and from within fn.
func (t *Ticker) Stop() {
	if !t.running {
		return
	}
	t.running = false
	t.sched.Cancel(t.id)
}

// SetInterval changes the period used for subsequent ticks.
func (t *Ticker) SetInterval(interval float64) {
	if interval <= 0 {
		panic("des: ticker interval must be positive")
	}
	t.interval = interval
}
