// Package des implements the discrete-event simulation core: a simulated
// clock, a calendar-queue event core with deterministic tie-breaking, and
// cancellable timers. It replaces the NS-2 scheduler the paper's
// evaluation ran on.
//
// Simulated time is a float64 number of seconds (des.Time). This is a
// deliberate, documented deviation from the "use time.Duration" guideline:
// simulated clocks are not wall clocks, and float seconds is the standard
// currency of network discrete-event simulators (NS-2, ns-3, OMNeT++).
// Events scheduled for the same instant fire in scheduling order (a
// monotone sequence number breaks ties), so a run is bit-reproducible for a
// given seed.
//
// Two event-queue backends share the Scheduler: the calendar queue
// (NewScheduler, O(1) amortized schedule/dispatch; see calqueue.go) and
// the reference binary heap (NewHeapScheduler, O(log n) per operation).
// Both dispatch in exactly the same strict (time, seq) order — seq is
// unique, so the order is total and has no implementation-defined ties —
// which makes runs byte-identical across backends. The simulator selects
// the backend via sim.Scenario.DisableCalendarQueue.
package des

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a simulated timestamp in seconds since the start of the run.
type Time = float64

// Handler is a callback invoked when its event fires. Handlers run on the
// single simulation goroutine; they may schedule and cancel further events.
type Handler func()

// EventID identifies a scheduled event for cancellation. The zero EventID
// is invalid and safe to Cancel (a no-op). IDs encode an arena slot and a
// per-slot generation, so Cancel resolves its event with one array index —
// no id→event map on the scheduling hot path.
type EventID uint64

type event struct {
	at    Time
	seq   uint64 // tie-break: FIFO among simultaneous events
	fn    Handler
	next  *event // bucket-chain link (calendar backend only)
	slot  int32  // permanent index into Scheduler.slots
	gen   uint32 // bumped on release, so stale EventIDs miss
	index int32  // heap index, -1 once popped (heap backend only)
}

// mkEventID packs an event's arena slot and generation. slot+1 keeps every
// valid id nonzero even at generation zero.
func mkEventID(slot int32, gen uint32) EventID {
	return EventID(uint64(slot+1)<<32 | uint64(gen))
}

// eventLess is the one dispatch order both queue backends implement:
// strictly increasing (at, seq).
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// eventQueue is the priority-queue abstraction behind the Scheduler: a
// min-queue over the total order eventLess. Implementations must return
// events in exactly that order so runs stay byte-identical across
// backends.
type eventQueue interface {
	push(ev *event)
	// peek returns the minimum event without removing it, nil when empty.
	peek() *event
	// pop removes and returns the minimum event, nil when empty.
	pop() *event
	// size returns the number of resident events.
	size() int
	// remove unlinks a resident event (O(1) amortized for the calendar,
	// O(log n) for the heap). The caller guarantees ev is resident.
	remove(ev *event)
}

// Scheduler is a discrete-event scheduler. The zero value is not usable;
// call NewScheduler (calendar queue) or NewHeapScheduler (reference
// binary heap).
type Scheduler struct {
	now Time
	seq uint64
	q   eventQueue
	// slots is the event arena: every event object ever created, indexed
	// by its permanent slot. Cancel decodes an EventID to (slot, gen) and
	// resolves it with one bounds-checked array read.
	slots []*event
	free  []*event // recycled event objects (resident in slots too)
	// slab is the tail of the current allocation block: events are carved
	// from 1024-event slabs so a large pending set lives in a few
	// contiguous blocks (fewer GC objects, better locality for bucket
	// chains) instead of a million scattered allocations.
	slab    []event
	stopped bool
	// processed counts events actually dispatched (excluding canceled).
	processed uint64
	// live counts events scheduled and not yet fired or canceled, so
	// Pending is O(1) instead of a queue scan.
	live int
}

// NewScheduler returns a calendar-queue scheduler with the clock at 0.
func NewScheduler() *Scheduler {
	return &Scheduler{q: newCalendarQueue()}
}

// NewHeapScheduler returns a scheduler backed by the reference binary
// heap instead of the calendar queue. Dispatch order — and therefore
// every simulation result — is byte-identical to NewScheduler; only
// per-operation cost differs. It backs the DisableCalendarQueue escape
// hatch and the equivalence tests.
func NewHeapScheduler() *Scheduler {
	return &Scheduler{q: &heapQueue{}}
}

// Now returns the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// Processed returns the number of events dispatched so far.
func (s *Scheduler) Processed() uint64 { return s.processed }

// Pending returns the number of events scheduled and not yet fired or
// canceled, in O(1).
func (s *Scheduler) Pending() int { return s.live }

// At schedules fn to run at absolute time t. Scheduling in the past (t <
// Now) panics: it is always a logic error in a discrete-event model.
func (s *Scheduler) At(t Time, fn Handler) EventID {
	if t < s.now {
		panic(fmt.Sprintf("des: scheduling event at %v before now %v", t, s.now))
	}
	if math.IsNaN(t) {
		panic("des: scheduling event at NaN time")
	}
	var ev *event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		if len(s.slab) == 0 {
			s.slab = make([]event, 1024)
		}
		ev = &s.slab[0]
		s.slab = s.slab[1:]
		ev.slot = int32(len(s.slots))
		s.slots = append(s.slots, ev)
	}
	ev.at = t
	ev.seq = s.seq
	ev.fn = fn
	s.seq++
	s.q.push(ev)
	s.live++
	return mkEventID(ev.slot, ev.gen)
}

// release returns a popped event to the free list. Events are
// single-use: once popped (dispatched or canceled) nothing else holds a
// reference, so recycling them removes the dominant per-event
// allocation from simulation hot loops. Bumping the generation
// invalidates every EventID minted for the event's previous life, so a
// stale Cancel misses instead of revoking the slot's next tenant.
func (s *Scheduler) release(ev *event) {
	ev.fn = nil // drop the closure reference while pooled
	ev.gen++
	s.free = append(s.free, ev)
}

// After schedules fn to run d seconds from now. Negative d panics.
func (s *Scheduler) After(d float64, fn Handler) EventID {
	return s.At(s.now+d, fn)
}

// Cancel revokes a scheduled event. Canceling an already-fired, already-
// canceled, or zero id is a no-op. It reports whether an event was actually
// revoked.
//
// Canceled events are unlinked from the queue and reclaimed immediately
// (they used to sit in the heap until dispatch reached them), so a
// schedule/cancel churn workload cannot grow the queue at all: the
// resident queue holds exactly the live events.
func (s *Scheduler) Cancel(id EventID) bool {
	slot := int(id>>32) - 1
	if slot < 0 || slot >= len(s.slots) {
		return false
	}
	ev := s.slots[slot]
	// A generation mismatch means the id belongs to an earlier life of
	// this slot: the event already fired or was already canceled.
	if ev.gen != uint32(id) {
		return false
	}
	s.q.remove(ev)
	s.live--
	s.release(ev)
	return true
}

// Stop makes Run return after the current event's handler completes.
func (s *Scheduler) Stop() { s.stopped = true }

// Run dispatches events in (time, seq) order until the queue empties, the
// clock passes until, or Stop is called. Events scheduled exactly at until
// still fire; the clock never exceeds until.
func (s *Scheduler) Run(until Time) {
	s.stopped = false
	for !s.stopped {
		ev := s.q.peek()
		if ev == nil || ev.at > until {
			break
		}
		s.q.pop()
		s.now = ev.at
		s.processed++
		s.live--
		fn := ev.fn
		s.release(ev)
		fn()
	}
	// Advance the clock to the horizon only on a natural finish; after
	// Stop (or an unbounded RunAll) the clock stays at the last
	// dispatched event.
	if !s.stopped && s.now < until && !math.IsInf(until, 1) {
		s.now = until
	}
}

// RunAll dispatches every remaining event regardless of time. Useful in
// tests; simulations should prefer Run with a horizon.
func (s *Scheduler) RunAll() { s.Run(math.Inf(1)) }

// heapQueue is the reference eventQueue: a binary heap ordered by
// eventLess. It was the original event core and is retained behind
// NewHeapScheduler as the equivalence baseline for the calendar queue.
type heapQueue struct {
	pq eventHeap
}

func (h *heapQueue) push(ev *event) { heap.Push(&h.pq, ev) }

func (h *heapQueue) peek() *event {
	if len(h.pq) == 0 {
		return nil
	}
	return h.pq[0]
}

func (h *heapQueue) pop() *event {
	if len(h.pq) == 0 {
		return nil
	}
	return heap.Pop(&h.pq).(*event)
}

func (h *heapQueue) size() int { return len(h.pq) }

func (h *heapQueue) remove(ev *event) {
	heap.Remove(&h.pq, int(ev.index))
}

// eventHeap orders events by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool { return eventLess(h[i], h[j]) }

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = int32(i)
	h[j].index = int32(j)
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = int32(len(*h))
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
