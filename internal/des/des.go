// Package des implements the discrete-event simulation core: a simulated
// clock, an event heap with deterministic tie-breaking, and cancellable
// timers. It replaces the NS-2 scheduler the paper's evaluation ran on.
//
// Simulated time is a float64 number of seconds (des.Time). This is a
// deliberate, documented deviation from the "use time.Duration" guideline:
// simulated clocks are not wall clocks, and float seconds is the standard
// currency of network discrete-event simulators (NS-2, ns-3, OMNeT++).
// Events scheduled for the same instant fire in scheduling order (a
// monotone sequence number breaks ties), so a run is bit-reproducible for a
// given seed.
package des

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a simulated timestamp in seconds since the start of the run.
type Time = float64

// Handler is a callback invoked when its event fires. Handlers run on the
// single simulation goroutine; they may schedule and cancel further events.
type Handler func()

// EventID identifies a scheduled event for cancellation. The zero EventID
// is invalid and safe to Cancel (a no-op).
type EventID uint64

type event struct {
	at       Time
	seq      uint64 // tie-break: FIFO among simultaneous events
	id       EventID
	fn       Handler
	canceled bool
	index    int // heap index, -1 once popped
}

// Scheduler is a discrete-event scheduler. The zero value is not usable;
// call NewScheduler.
type Scheduler struct {
	now     Time
	seq     uint64
	nextID  EventID
	pq      eventHeap
	byID    map[EventID]*event
	free    []*event // recycled event objects
	stopped bool
	// processed counts events actually dispatched (excluding canceled).
	processed uint64
}

// NewScheduler returns a scheduler with the clock at 0.
func NewScheduler() *Scheduler {
	return &Scheduler{
		byID:   make(map[EventID]*event),
		nextID: 1,
	}
}

// Now returns the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// Processed returns the number of events dispatched so far.
func (s *Scheduler) Processed() uint64 { return s.processed }

// Pending returns the number of events scheduled and not yet fired or
// canceled.
func (s *Scheduler) Pending() int {
	n := 0
	for _, ev := range s.pq {
		if !ev.canceled {
			n++
		}
	}
	return n
}

// At schedules fn to run at absolute time t. Scheduling in the past (t <
// Now) panics: it is always a logic error in a discrete-event model.
func (s *Scheduler) At(t Time, fn Handler) EventID {
	if t < s.now {
		panic(fmt.Sprintf("des: scheduling event at %v before now %v", t, s.now))
	}
	if math.IsNaN(t) {
		panic("des: scheduling event at NaN time")
	}
	var ev *event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		ev = &event{}
	}
	*ev = event{at: t, seq: s.seq, id: s.nextID, fn: fn}
	s.seq++
	s.nextID++
	s.byID[ev.id] = ev
	heap.Push(&s.pq, ev)
	return ev.id
}

// release returns a popped event to the free list. Events are
// single-use: once popped (dispatched or canceled) nothing else holds a
// reference, so recycling them removes the dominant per-event
// allocation from simulation hot loops.
func (s *Scheduler) release(ev *event) {
	ev.fn = nil // drop the closure reference while pooled
	s.free = append(s.free, ev)
}

// After schedules fn to run d seconds from now. Negative d panics.
func (s *Scheduler) After(d float64, fn Handler) EventID {
	return s.At(s.now+d, fn)
}

// Cancel revokes a scheduled event. Canceling an already-fired, already-
// canceled, or zero id is a no-op. It reports whether an event was actually
// revoked.
func (s *Scheduler) Cancel(id EventID) bool {
	ev, ok := s.byID[id]
	if !ok || ev.canceled {
		return false
	}
	ev.canceled = true
	delete(s.byID, id)
	return true
}

// Stop makes Run return after the current event's handler completes.
func (s *Scheduler) Stop() { s.stopped = true }

// Run dispatches events in (time, seq) order until the queue empties, the
// clock passes until, or Stop is called. Events scheduled exactly at until
// still fire; the clock never exceeds until.
func (s *Scheduler) Run(until Time) {
	s.stopped = false
	for len(s.pq) > 0 && !s.stopped {
		ev := s.pq[0]
		if ev.canceled {
			heap.Pop(&s.pq)
			s.release(ev)
			continue
		}
		if ev.at > until {
			break
		}
		heap.Pop(&s.pq)
		delete(s.byID, ev.id)
		s.now = ev.at
		s.processed++
		fn := ev.fn
		s.release(ev)
		fn()
	}
	// Advance the clock to the horizon only on a natural finish; after
	// Stop (or an unbounded RunAll) the clock stays at the last
	// dispatched event.
	if !s.stopped && s.now < until && !math.IsInf(until, 1) {
		s.now = until
	}
}

// RunAll dispatches every remaining event regardless of time. Useful in
// tests; simulations should prefer Run with a horizon.
func (s *Scheduler) RunAll() { s.Run(math.Inf(1)) }

// eventHeap orders events by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
