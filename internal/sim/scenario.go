// Package sim is the simulation engine: it wires mobility models, the
// shared MAC medium, per-node protocol instances, IMEP-style beaconing,
// the paper's traffic pattern, and metric collection into a reproducible
// discrete-event run. It replaces the NS-2 scenario scripts of the
// evaluation.
package sim

import (
	"fmt"

	"glr/internal/mac"
	"glr/internal/mobility"
)

// MobilityKind selects the movement model for a scenario.
type MobilityKind int

// Supported mobility models.
const (
	MobilityWaypoint MobilityKind = iota // the paper's random waypoint
	MobilityStatic                       // uniform static placement
)

// Scenario describes one simulation run. The zero value is not runnable;
// start from DefaultScenario.
type Scenario struct {
	Name string
	Seed int64

	N       int     // number of nodes (paper: 50)
	Range   float64 // transmission range in metres (paper: 50–250)
	SimTime float64 // seconds (paper: 1200 or 3800)

	Region   mobility.Region // paper: 1500 × 300 m
	Mobility MobilityKind
	MinSpeed float64 // m/s (paper: 0)
	MaxSpeed float64 // m/s (paper: 20)
	Pause    float64 // s   (paper: 0)

	PayloadBits int // application payload per message (paper: 1000 bytes)

	BeaconInterval float64 // IMEP-style neighborhood sensing period
	NeighborExpiry float64 // drop neighbors unheard for this long

	Traffic []TrafficItem

	// StorageLimit bounds per-node message storage (0 = unlimited); the
	// Figure-7 experiment sweeps this.
	StorageLimit int

	// MACOverride, when non-nil, replaces the derived MAC configuration.
	MACOverride *mac.Config

	// DisableSpatialIndex makes the medium resolve receptions with the
	// naive O(n) scans instead of the uniform-grid index. Results are
	// identical; the node-count sweep uses it to measure the win.
	DisableSpatialIndex bool

	// DisableDenseTables backs every node's neighbor/location tables
	// with the map-based reference implementation instead of the dense
	// id-indexed arrays (mirroring DisableSpatialIndex and
	// core.Config.DisableSpannerCache). Results are identical; the
	// node-count sweep uses it to measure allocation pressure.
	DisableDenseTables bool
}

// DefaultScenario returns the paper's Table-1 baseline at the given
// transmission range.
func DefaultScenario(rng float64) Scenario {
	return Scenario{
		Name:           fmt.Sprintf("paper-%.0fm", rng),
		Seed:           1,
		N:              50,
		Range:          rng,
		SimTime:        3800,
		Region:         mobility.Region{W: 1500, H: 300},
		Mobility:       MobilityWaypoint,
		MinSpeed:       0,
		MaxSpeed:       20,
		Pause:          0,
		PayloadBits:    1000 * 8,
		BeaconInterval: 1.0,
		NeighborExpiry: 2.5,
	}
}

// Validate reports a descriptive error for unusable scenarios.
func (s Scenario) Validate() error {
	switch {
	case s.N <= 1:
		return fmt.Errorf("sim: need at least 2 nodes, got %d", s.N)
	case s.Range <= 0:
		return fmt.Errorf("sim: range %v must be positive", s.Range)
	case s.SimTime <= 0:
		return fmt.Errorf("sim: sim time %v must be positive", s.SimTime)
	case s.Region.W <= 0 || s.Region.H <= 0:
		return fmt.Errorf("sim: region %vx%v must be positive", s.Region.W, s.Region.H)
	case s.PayloadBits <= 0:
		return fmt.Errorf("sim: payload bits %d must be positive", s.PayloadBits)
	case s.BeaconInterval <= 0:
		return fmt.Errorf("sim: beacon interval %v must be positive", s.BeaconInterval)
	case s.NeighborExpiry <= s.BeaconInterval:
		return fmt.Errorf("sim: neighbor expiry %v must exceed beacon interval %v",
			s.NeighborExpiry, s.BeaconInterval)
	case s.StorageLimit < 0:
		return fmt.Errorf("sim: storage limit %d must be nonnegative", s.StorageLimit)
	}
	for i, ti := range s.Traffic {
		if ti.Src < 0 || ti.Src >= s.N || ti.Dst < 0 || ti.Dst >= s.N || ti.Src == ti.Dst {
			return fmt.Errorf("sim: traffic[%d] endpoints (%d→%d) invalid", i, ti.Src, ti.Dst)
		}
		if ti.At < 0 || ti.At > s.SimTime {
			return fmt.Errorf("sim: traffic[%d] time %v outside run", i, ti.At)
		}
	}
	return nil
}

// MACConfig returns the MAC configuration for the scenario.
func (s Scenario) MACConfig() mac.Config {
	cfg := mac.DefaultConfig(s.Range)
	if s.MACOverride != nil {
		cfg = *s.MACOverride
	}
	if s.DisableSpatialIndex {
		cfg.DisableSpatialIndex = true
	}
	return cfg
}

// TrafficItem schedules one message generation.
type TrafficItem struct {
	Src, Dst int
	At       float64
}

// PaperTraffic reproduces the evaluation workload: "a subset of 50 nodes
// act as sources and destinations, with each of 45 nodes sending packets
// to other 44 nodes (1980 messages total). Packets are generated every
// second." Messages are interleaved round-robin across the 45 sources (one
// message per second network-wide) so that a prefix of the schedule — the
// paper's 400/600/890/1180-message runs — still spreads load evenly.
func PaperTraffic(count int) []TrafficItem {
	const sources = 45
	if count > sources*(sources-1) {
		count = sources * (sources - 1)
	}
	items := make([]TrafficItem, 0, count)
	for k := 0; len(items) < count; k++ {
		src := k % sources
		round := k / sources // 0..43: index into src's destination list
		if round >= sources-1 {
			break
		}
		dst := round
		if dst >= src {
			dst++ // skip self
		}
		items = append(items, TrafficItem{Src: src, Dst: dst, At: float64(k + 1)})
	}
	return items
}

// UniformTraffic generates count messages between uniformly random
// distinct pairs over n nodes at the given rate (messages/second),
// deterministically from the seed. Useful for custom examples.
func UniformTraffic(n, count int, rate float64, seed int64) []TrafficItem {
	rng := newRand(seed)
	items := make([]TrafficItem, count)
	for i := range items {
		src := rng.Intn(n)
		dst := rng.Intn(n - 1)
		if dst >= src {
			dst++
		}
		items[i] = TrafficItem{Src: src, Dst: dst, At: float64(i) / rate}
	}
	return items
}
