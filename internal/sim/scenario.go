// Package sim is the simulation engine: it wires mobility models, the
// shared MAC medium, per-node protocol instances, IMEP-style beaconing,
// the paper's traffic pattern, and metric collection into a reproducible
// discrete-event run. It replaces the NS-2 scenario scripts of the
// evaluation.
package sim

import (
	"fmt"
	"runtime"

	"glr/internal/fault"
	"glr/internal/mac"
	"glr/internal/mobility"
	"glr/internal/shard"
)

// MobilityKind selects the movement model for a scenario.
type MobilityKind int

// Supported mobility models. All four models of internal/mobility are
// reachable: the paper's random waypoint, uniform static placement, a
// reflecting random walk, and scripted traces.
const (
	MobilityWaypoint   MobilityKind = iota // the paper's random waypoint
	MobilityStatic                         // uniform static placement
	MobilityRandomWalk                     // reflecting random walk (WalkLegTime)
	MobilityTrace                          // scripted trajectories (Traces)
)

// String implements fmt.Stringer.
func (k MobilityKind) String() string {
	switch k {
	case MobilityWaypoint:
		return "waypoint"
	case MobilityStatic:
		return "static"
	case MobilityRandomWalk:
		return "randomwalk"
	case MobilityTrace:
		return "trace"
	default:
		return fmt.Sprintf("MobilityKind(%d)", int(k))
	}
}

// Scenario describes one simulation run. The zero value is not runnable;
// start from DefaultScenario.
type Scenario struct {
	Name string
	Seed int64

	N       int     // number of nodes (paper: 50)
	Range   float64 // transmission range in metres (paper: 50–250)
	SimTime float64 // seconds (paper: 1200 or 3800)

	Region   mobility.Region // paper: 1500 × 300 m
	Mobility MobilityKind
	MinSpeed float64 // m/s (paper: 0)
	MaxSpeed float64 // m/s (paper: 20)
	Pause    float64 // s   (paper: 0)

	// WalkLegTime is the straight-leg duration of the random-walk model
	// (required > 0 when Mobility is MobilityRandomWalk; speeds reuse
	// MinSpeed/MaxSpeed).
	WalkLegTime float64
	// Traces holds one scripted trajectory per node (required, length N,
	// when Mobility is MobilityTrace). Trajectories interpolate linearly
	// between waypoints, hold the last position afterwards, and must stay
	// inside Region.
	Traces [][]mobility.TracePoint

	PayloadBits int // application payload per message (paper: 1000 bytes)

	BeaconInterval float64 // IMEP-style neighborhood sensing period
	NeighborExpiry float64 // drop neighbors unheard for this long

	Traffic []TrafficItem

	// StorageLimit bounds per-node message storage (0 = unlimited); the
	// Figure-7 experiment sweeps this.
	StorageLimit int

	// MACOverride, when non-nil, replaces the derived MAC configuration.
	MACOverride *mac.Config

	// DisableSpatialIndex makes the medium resolve receptions with the
	// naive O(n) scans instead of the uniform-grid index. Results are
	// identical; the node-count sweep uses it to measure the win.
	DisableSpatialIndex bool

	// DisableDenseTables backs every node's neighbor/location tables
	// with the map-based reference implementation instead of the dense
	// id-indexed arrays (mirroring DisableSpatialIndex and
	// core.Config.DisableSpannerCache). Results are identical; the
	// node-count sweep uses it to measure allocation pressure.
	DisableDenseTables bool

	// Parallelism bounds the world's shard worker pool — the within-run
	// parallel engine behind sharded reception verdicts and speculative
	// spanner builds. 0 means automatic (GOMAXPROCS); 1 forces serial
	// stepping. Results are byte-identical at every setting; only the
	// wall clock changes.
	Parallelism int

	// DisableSharding pins the run to the fully serial engine regardless
	// of Parallelism — the escape hatch mirroring DisableSpatialIndex /
	// DisableDenseTables for the sharded stepping work. Results are
	// identical; equivalence tests and the node-count sweep use it.
	DisableSharding bool

	// ForkThresholds overrides the sharded engine's per-plane fork
	// thresholds (nil = measure once at world init via shard.Calibrate).
	// Thresholds gate only whether a parallel plane forks onto the pool,
	// never what it computes, so results are byte-identical at every
	// setting — including the pathological 0 (always fork) and
	// math.MaxInt (never fork), which the equivalence tests force.
	// Ignored by serial runs.
	ForkThresholds *shard.Thresholds

	// DisableCalendarQueue backs the event core with the reference binary
	// heap instead of the O(1)-amortized calendar queue. Dispatch order —
	// and therefore every result — is byte-identical; equivalence tests
	// and the scale sweep use it.
	DisableCalendarQueue bool

	// DisableBeaconAggregation schedules one beacon ticker per node (the
	// reference path) instead of one event per occupied grid cell. The
	// hello frames, their order, and every downstream result are
	// byte-identical; only scheduler load changes.
	DisableBeaconAggregation bool

	// Faults lists the disruption models injected into the run (see
	// internal/fault). Empty means a fault-free run, byte-identical to
	// a build without the fault subsystem; the same Seed always replays
	// the identical fault schedule.
	Faults []fault.Spec
}

// DefaultScenario returns the paper's Table-1 baseline at the given
// transmission range.
func DefaultScenario(rng float64) Scenario {
	return Scenario{
		Name:           fmt.Sprintf("paper-%.0fm", rng),
		Seed:           1,
		N:              50,
		Range:          rng,
		SimTime:        3800,
		Region:         mobility.Region{W: 1500, H: 300},
		Mobility:       MobilityWaypoint,
		MinSpeed:       0,
		MaxSpeed:       20,
		Pause:          0,
		PayloadBits:    1000 * 8,
		BeaconInterval: 1.0,
		NeighborExpiry: 2.5,
	}
}

// Validate reports a descriptive error for unusable scenarios.
func (s Scenario) Validate() error {
	switch {
	case s.N <= 1:
		return fmt.Errorf("sim: need at least 2 nodes, got %d", s.N)
	case s.Range <= 0:
		return fmt.Errorf("sim: range %v must be positive", s.Range)
	case s.SimTime <= 0:
		return fmt.Errorf("sim: sim time %v must be positive", s.SimTime)
	case s.Region.W <= 0 || s.Region.H <= 0:
		return fmt.Errorf("sim: region %vx%v must be positive", s.Region.W, s.Region.H)
	case s.PayloadBits <= 0:
		return fmt.Errorf("sim: payload bits %d must be positive", s.PayloadBits)
	case s.BeaconInterval <= 0:
		return fmt.Errorf("sim: beacon interval %v must be positive", s.BeaconInterval)
	case s.NeighborExpiry <= s.BeaconInterval:
		return fmt.Errorf("sim: neighbor expiry %v must exceed beacon interval %v",
			s.NeighborExpiry, s.BeaconInterval)
	case s.StorageLimit < 0:
		return fmt.Errorf("sim: storage limit %d must be nonnegative", s.StorageLimit)
	case s.Parallelism < 0:
		return fmt.Errorf("sim: parallelism %d must be nonnegative", s.Parallelism)
	}
	if t := s.ForkThresholds; t != nil {
		if t.RxMin < 0 || t.BeaconMin < 0 || t.MobilityMin < 0 || t.DiffMin < 0 {
			return fmt.Errorf("sim: fork thresholds %+v must be nonnegative", *t)
		}
	}
	switch s.Mobility {
	case MobilityWaypoint, MobilityStatic:
	case MobilityRandomWalk:
		if s.WalkLegTime <= 0 {
			return fmt.Errorf("sim: random-walk mobility needs WalkLegTime > 0, got %v", s.WalkLegTime)
		}
	case MobilityTrace:
		if len(s.Traces) != s.N {
			return fmt.Errorf("sim: trace mobility needs one trajectory per node (%d), got %d", s.N, len(s.Traces))
		}
		for i, tr := range s.Traces {
			if len(tr) == 0 {
				return fmt.Errorf("sim: trace for node %d is empty", i)
			}
			for j, tp := range tr {
				if j > 0 && tp.T <= tr[j-1].T {
					return fmt.Errorf("sim: trace for node %d has non-increasing time at waypoint %d", i, j)
				}
				if !s.Region.Contains(tp.P) {
					return fmt.Errorf("sim: trace for node %d leaves the region at waypoint %d (%v)", i, j, tp.P)
				}
			}
		}
	default:
		return fmt.Errorf("sim: unknown mobility kind %d", int(s.Mobility))
	}
	for i, ti := range s.Traffic {
		if ti.Src < 0 || ti.Src >= s.N || ti.Dst < 0 || ti.Dst >= s.N || ti.Src == ti.Dst {
			return fmt.Errorf("sim: traffic[%d] endpoints (%d→%d) invalid", i, ti.Src, ti.Dst)
		}
		if ti.At < 0 || ti.At > s.SimTime {
			return fmt.Errorf("sim: traffic[%d] time %v outside run", i, ti.At)
		}
	}
	for i, fs := range s.Faults {
		if err := fs.Validate(s.Region, s.SimTime); err != nil {
			return fmt.Errorf("sim: faults[%d]: %w", i, err)
		}
	}
	return nil
}

// shardWorkers resolves the effective worker count of the shard pool:
// 1 (serial) when sharding is disabled, GOMAXPROCS when Parallelism is
// automatic, the configured bound otherwise.
func (s Scenario) shardWorkers() int {
	if s.DisableSharding {
		return 1
	}
	if s.Parallelism == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return s.Parallelism
}

// maxDriftSpeed returns the fastest any node can move, for sizing the
// radio index's staleness slack: the configured MaxSpeed for the
// speed-parameterized models, the fastest trajectory segment for
// scripted traces (which are not bounded by MaxSpeed).
func (s Scenario) maxDriftSpeed() float64 {
	if s.Mobility != MobilityTrace {
		return s.MaxSpeed
	}
	top := 0.0
	for _, tr := range s.Traces {
		for j := 1; j < len(tr); j++ {
			dt := tr[j].T - tr[j-1].T
			if dt <= 0 {
				continue // Validate rejects these; stay safe regardless
			}
			if v := tr[j].P.Dist(tr[j-1].P) / dt; v > top {
				top = v
			}
		}
	}
	return top
}

// MACConfig returns the MAC configuration for the scenario.
func (s Scenario) MACConfig() mac.Config {
	cfg := mac.DefaultConfig(s.Range)
	if s.MACOverride != nil {
		cfg = *s.MACOverride
	}
	if s.DisableSpatialIndex {
		cfg.DisableSpatialIndex = true
	}
	return cfg
}

// TrafficItem schedules one message generation.
type TrafficItem struct {
	Src, Dst int
	At       float64
}

// PaperTraffic reproduces the evaluation workload: "a subset of 50 nodes
// act as sources and destinations, with each of 45 nodes sending packets
// to other 44 nodes (1980 messages total). Packets are generated every
// second." Messages are interleaved round-robin across the 45 sources (one
// message per second network-wide) so that a prefix of the schedule — the
// paper's 400/600/890/1180-message runs — still spreads load evenly.
func PaperTraffic(count int) []TrafficItem {
	return PaperTrafficN(46, count)
}

// PaperTrafficN is PaperTraffic generalized to networks smaller than the
// paper's: the round-robin source set shrinks from 45 to n when n cannot
// host it, preserving the pattern's shape (every source sends to every
// other source in turn, one message per second network-wide).
func PaperTrafficN(n, count int) []TrafficItem {
	sources := 45
	if n < sources {
		sources = n
	}
	if sources < 2 {
		return nil
	}
	if count > sources*(sources-1) {
		count = sources * (sources - 1)
	}
	items := make([]TrafficItem, 0, count)
	for k := 0; len(items) < count; k++ {
		src := k % sources
		round := k / sources // index into src's destination list
		if round >= sources-1 {
			break
		}
		dst := round
		if dst >= src {
			dst++ // skip self
		}
		items = append(items, TrafficItem{Src: src, Dst: dst, At: float64(k + 1)})
	}
	return items
}

// UniformTraffic generates count messages between uniformly random
// distinct pairs over n nodes at the given rate (messages/second),
// deterministically from the seed. Useful for custom examples.
func UniformTraffic(n, count int, rate float64, seed int64) []TrafficItem {
	rng := newRand(seed)
	items := make([]TrafficItem, count)
	for i := range items {
		src := rng.Intn(n)
		dst := rng.Intn(n - 1)
		if dst >= src {
			dst++
		}
		items[i] = TrafficItem{Src: src, Dst: dst, At: float64(i) / rate}
	}
	return items
}

// PoissonTraffic generates count messages between uniformly random
// distinct pairs whose arrivals form a Poisson process of the given rate
// (messages/second): inter-arrival gaps are exponential with mean
// 1/rate, deterministically from the seed.
func PoissonTraffic(n, count int, rate float64, seed int64) []TrafficItem {
	rng := newRand(seed)
	items := make([]TrafficItem, count)
	at := 0.0
	for i := range items {
		at += rng.ExpFloat64() / rate
		src := rng.Intn(n)
		dst := rng.Intn(n - 1)
		if dst >= src {
			dst++
		}
		items[i] = TrafficItem{Src: src, Dst: dst, At: at}
	}
	return items
}

// HotspotTraffic generates count messages at the given rate
// (messages/second) whose destinations concentrate on the first sinks
// node ids — the "everyone reports to a few collection points" workload
// — with sources uniform over the remaining nodes. Like the other
// generators it assumes a valid shape: 1 ≤ sinks ≤ n-1 (callers
// validate; the public glr.HotspotWorkload rejects anything else).
func HotspotTraffic(n, count, sinks int, rate float64, seed int64) []TrafficItem {
	rng := newRand(seed)
	items := make([]TrafficItem, count)
	for i := range items {
		dst := rng.Intn(sinks)
		src := sinks + rng.Intn(n-sinks)
		items[i] = TrafficItem{Src: src, Dst: dst, At: float64(i) / rate}
	}
	return items
}
