package sim

import (
	"context"

	"glr/internal/des"
	"glr/internal/metrics"
)

// SamplePoint is one periodic observation of a running world: the
// metrics collector's counters so far plus the instantaneous buffer
// occupancy across nodes. Samplers receive it by value; it aliases
// nothing.
type SamplePoint struct {
	Time float64

	// Workload counters so far (metrics.Snapshot).
	Generated  int
	Delivered  int
	Duplicates int
	// LatencySum is the summed first-copy delivery latency of the
	// Delivered messages, so AvgLatency-so-far is LatencySum/Delivered.
	LatencySum float64

	// Frame counters so far (control overhead).
	ControlFrames uint64
	DataFrames    uint64
	Acks          uint64

	// Instantaneous buffer occupancy: total messages held across all
	// nodes and the fullest single node.
	BufferTotal int
	BufferMax   int

	// Fault intensity so far: nodes currently crashed by churn, and
	// receptions lost to blackouts or crashed receivers since the start
	// of the run. Both zero in fault-free runs.
	NodesDown  int
	FaultDrops uint64
}

// AddSampler arms a periodic read-only probe: every `every` simulated
// seconds, first at `phase`, fn receives a SamplePoint. Samplers must
// not mutate the world; they exist so callers can observe a run in
// flight (time series of delivery, latency, occupancy, overhead)
// without touching its outcome — a sampled run dispatches the same
// protocol events as an unsampled one. Call before Run; the returned
// ticker may be stopped to detach the probe early.
func (w *World) AddSampler(every, phase float64, fn func(SamplePoint)) *des.Ticker {
	return des.NewTicker(w.sched, every, phase, func() {
		fn(w.sample())
	})
}

// sample assembles the current SamplePoint.
func (w *World) sample() SamplePoint {
	snap := w.collector.Snapshot()
	sp := SamplePoint{
		Time:          w.sched.Now(),
		Generated:     snap.Generated,
		Delivered:     snap.Delivered,
		Duplicates:    snap.Duplicates,
		LatencySum:    snap.LatencySum,
		ControlFrames: snap.ControlFrames,
		DataFrames:    snap.DataFrames,
		Acks:          snap.Acks,
	}
	for _, n := range w.nodes {
		used := n.proto.StorageUsed()
		sp.BufferTotal += used
		if used > sp.BufferMax {
			sp.BufferMax = used
		}
	}
	sp.NodesDown = w.downCount
	sp.FaultDrops = w.medium.Stats().FaultDrops
	return sp
}

// runChunk is the simulated-time slice between cancellation checks in
// RunContext: fine enough that cancellation lands within a second of
// wall clock on large worlds, coarse enough to cost nothing.
const runChunk = 30.0

// RunContext executes the scenario to its horizon like Run, but checks
// ctx between simulated-time chunks and abandons the run (returning
// ctx.Err) once the context is done. A run under an un-cancellable
// context dispatches exactly the same event sequence as Run.
func (w *World) RunContext(ctx context.Context) (metrics.Report, error) {
	if ctx != nil && ctx.Done() != nil {
		for t := runChunk; t < w.cfg.SimTime; t += runChunk {
			if err := ctx.Err(); err != nil {
				w.closePool()
				return metrics.Report{}, err
			}
			w.sched.Run(t)
		}
		if err := ctx.Err(); err != nil {
			w.closePool()
			return metrics.Report{}, err
		}
	}
	return w.Run(), nil
}
