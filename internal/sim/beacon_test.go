package sim

import (
	"reflect"
	"testing"

	"glr/internal/metrics"
)

// TestBeaconAggregationEquivalence crosses beacon aggregation with both
// event-core backends on a mobile world and requires byte-identical
// reports: the aggregated beacon plane and the calendar queue are pure
// performance work, so every combination must reproduce the reference
// (per-node tickers on the binary heap) exactly. It also checks the
// point of the aggregation — the resident event count drops from one
// ticker per node to one event per occupied cell.
func TestBeaconAggregationEquivalence(t *testing.T) {
	base := DefaultScenario(100)
	base.Name = "beacon-agg-equiv"
	base.Seed = 5
	base.N = 80
	base.SimTime = 20

	var reports []metrics.Report
	pending := map[string]int{}
	for _, mode := range []struct {
		name         string
		noAgg, noCal bool
	}{
		{"aggregated+calendar", false, false},
		{"aggregated+heap", false, true},
		{"tickers+calendar", true, false},
		{"tickers+heap", true, true},
	} {
		s := base
		s.DisableBeaconAggregation = mode.noAgg
		s.DisableCalendarQueue = mode.noCal
		w, err := NewWorld(s, func(*Node) Protocol { return nopProtocol{} })
		if err != nil {
			t.Fatalf("%s: %v", mode.name, err)
		}
		pending[mode.name] = w.Scheduler().Pending()
		reports = append(reports, w.Run())
	}
	for i := 1; i < len(reports); i++ {
		if !reflect.DeepEqual(reports[0], reports[i]) {
			t.Fatalf("report %d diverges from reference:\n%#v\nvs\n%#v", i, reports[i], reports[0])
		}
	}
	if agg, tick := pending["aggregated+calendar"], pending["tickers+calendar"]; agg >= tick {
		t.Fatalf("aggregation left %d events pending, want fewer than the %d per-node tickers", agg, tick)
	}
}

// TestPhasesCollide pins the fallback predicate: only bit-equal phase
// draws defeat aggregation's ordering argument, so only they may trigger
// the per-node ticker fallback.
func TestPhasesCollide(t *testing.T) {
	if phasesCollide([]float64{0.1, 0.2, 0.3}) {
		t.Fatal("distinct phases reported as colliding")
	}
	if !phasesCollide([]float64{0.3, 0.1, 0.3}) {
		t.Fatal("bit-equal phases not detected")
	}
	if phasesCollide(nil) {
		t.Fatal("empty phase set reported as colliding")
	}
}

// TestBeaconGroupRingOrder documents the cursor invariant on a crafted
// group: members fire one per event in phase order, cycling; bit-equal
// phases within a cell fire back-to-back in id order under one event.
func TestBeaconGroupRingOrder(t *testing.T) {
	s := DefaultScenario(100)
	s.Name = "beacon-ring"
	s.N = 6
	s.SimTime = 3.5
	s.Mobility = MobilityStatic
	for _, noAgg := range []bool{false, true} {
		s.DisableBeaconAggregation = noAgg
		w, err := NewWorld(s, func(*Node) Protocol { return nopProtocol{} })
		if err != nil {
			t.Fatal(err)
		}
		// Every node beacons once per interval; over 3.5 intervals each
		// fires either 3 or 4 times depending on phase.
		rep := w.Run()
		got := rep.ControlFrames
		if got < uint64(3*s.N) || got > uint64(4*s.N) {
			t.Fatalf("noAgg=%v: %d control frames over %v s, want %d..%d",
				noAgg, got, s.SimTime, 3*s.N, 4*s.N)
		}
	}
}
