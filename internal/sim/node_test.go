package sim

import (
	"testing"

	"glr/internal/mobility"
)

func TestUnicastCallbackOutcomes(t *testing.T) {
	s := smallScenario()
	s.Traffic = nil
	s.Mobility = MobilityStatic
	s.Region = mobility.Region{W: 100, H: 100} // all in range
	var outcomes []bool
	factory := func(n *Node) Protocol { return &directProtocol{} }
	w, err := NewWorld(s, factory)
	if err != nil {
		t.Fatal(err)
	}
	n0 := w.Node(0)
	w.Scheduler().At(1, func() {
		// Reachable destination.
		n0.Unicast(1, KindData, "payload", 800, func(ok bool) {
			outcomes = append(outcomes, ok)
		})
	})
	w.Scheduler().Run(5)
	if len(outcomes) != 1 || !outcomes[0] {
		t.Errorf("in-range unicast should succeed: %v", outcomes)
	}
}

func TestUnicastCallbackFailureOutOfRange(t *testing.T) {
	s := smallScenario()
	s.Traffic = nil
	s.Mobility = MobilityStatic
	s.Range = 10 // tiny: nodes in 300×300 are isolated w.h.p.
	var outcomes []bool
	w, err := NewWorld(s, func(n *Node) Protocol { return &directProtocol{} })
	if err != nil {
		t.Fatal(err)
	}
	// Find a pair that is genuinely out of range.
	src, dst := -1, -1
	for i := 0; i < s.N && src == -1; i++ {
		for j := 0; j < s.N; j++ {
			if i != j && w.Node(i).Pos().Dist(w.Node(j).Pos()) > 3*s.Range {
				src, dst = i, j
				break
			}
		}
	}
	if src == -1 {
		t.Skip("no out-of-range pair in this placement")
	}
	w.Scheduler().At(1, func() {
		w.Node(src).Unicast(dst, KindData, "x", 800, func(ok bool) {
			outcomes = append(outcomes, ok)
		})
	})
	w.Scheduler().Run(10)
	if len(outcomes) != 1 || outcomes[0] {
		t.Errorf("out-of-range unicast should fail after retries: %v", outcomes)
	}
}

func TestFrameKindCounting(t *testing.T) {
	s := smallScenario()
	s.Traffic = nil
	s.Mobility = MobilityStatic
	s.Region = mobility.Region{W: 100, H: 100}
	w, err := NewWorld(s, func(n *Node) Protocol { return &directProtocol{} })
	if err != nil {
		t.Fatal(err)
	}
	n0 := w.Node(0)
	w.Scheduler().At(1, func() {
		n0.Unicast(1, KindData, "d", 80, nil)
		n0.Unicast(1, KindAck, "a", 80, nil)
		n0.Broadcast(KindControl, "c", 80)
	})
	w.Scheduler().Run(3)
	rep := w.Collector().Report()
	if rep.DataFrames != 1 {
		t.Errorf("DataFrames = %d, want 1", rep.DataFrames)
	}
	if rep.Acks != 1 {
		t.Errorf("Acks = %d, want 1", rep.Acks)
	}
	// Control includes beacons from all nodes plus ours.
	if rep.ControlFrames < 1 {
		t.Errorf("ControlFrames = %d", rep.ControlFrames)
	}
}

func TestNodeAccessors(t *testing.T) {
	s := smallScenario()
	w, err := NewWorld(s, func(n *Node) Protocol { return &directProtocol{} })
	if err != nil {
		t.Fatal(err)
	}
	n := w.Node(3)
	if n.ID() != 3 {
		t.Errorf("ID = %d", n.ID())
	}
	if n.NodeCount() != s.N {
		t.Errorf("NodeCount = %d", n.NodeCount())
	}
	if n.Range() != s.Range {
		t.Errorf("Range = %v", n.Range())
	}
	if n.Region() != s.Region {
		t.Errorf("Region = %v", n.Region())
	}
	if n.StorageLimit() != s.StorageLimit {
		t.Errorf("StorageLimit = %d", n.StorageLimit())
	}
	if n.Rand() == nil || n.Sched() == nil || n.Locations() == nil {
		t.Error("accessors returned nil")
	}
	if !s.Region.Contains(n.Pos()) {
		t.Error("node outside region")
	}
}

func TestBeaconBitsGrowWithNeighbors(t *testing.T) {
	if beaconBits(0) >= beaconBits(5) {
		t.Error("beacons advertising more neighbors must be larger")
	}
	if beaconBits(0) <= 0 {
		t.Error("beacons have a positive base size")
	}
}
