package sim

import (
	"glr/internal/fault"
	"glr/internal/geom"
)

// Restarter is implemented by protocols that support crash/restart with
// state loss (fault.Churn): Restart must drop every message, table, and
// exchange-state entry the instance holds, as a reboot would. It is
// called in place — live protocol timers keep firing across a restart
// and must tolerate the cleared state.
type Restarter interface {
	Restart()
}

// byzantineProto wraps a node's protocol as an adversary
// (fault.Byzantine): every protocol frame handed to it is silently
// dropped — custody transfers vanish without acknowledgment — while the
// node keeps beaconing (with the plan's lying advertised positions) and
// generating its own traffic, so honest neighbors still treat it as an
// attractive relay.
type byzantineProto struct {
	Protocol
}

// OnFrame silently discards the frame.
func (byzantineProto) OnFrame(any, int) {}

// Restart forwards a churn restart to the wrapped protocol when it
// supports one.
func (b byzantineProto) Restart() {
	if r, ok := b.Protocol.(Restarter); ok {
		r.Restart()
	}
}

// nodeDown reports whether the node is currently crashed. Always false
// in fault-free runs (nil plan).
func (w *World) nodeDown(id int) bool {
	return w.plan != nil && w.plan.Down(id, w.sched.Now())
}

// advertisedPos resolves the position a node claims in a beacon: its
// true position in fault-free runs, the plan's GPS-perturbed or
// Byzantine-lying position otherwise.
func (w *World) advertisedPos(id int, pos geom.Point) geom.Point {
	if w.plan == nil {
		return pos
	}
	return w.plan.AdvertisedPos(id, w.sched.Now(), pos)
}

// SetFaultHook installs a callback receiving every discrete fault
// occurrence (node crashes/restarts, region blackouts starting and
// lifting). The hook runs on the simulation goroutine after the
// occurrence takes effect and must not mutate the run. Call before Run.
func (w *World) SetFaultHook(fn func(fault.Event)) { w.faultHook = fn }

// NodesDown returns the number of currently crashed nodes.
func (w *World) NodesDown() int { return w.downCount }

func (w *World) notifyFault(e fault.Event) {
	if w.faultHook != nil {
		w.faultHook(e)
	}
}

// scheduleFaults arms the compiled plan's discrete occurrences: one
// crash and one restore event per churn outage, and start/lift
// notifications per region-blackout window. A nil plan arms nothing, so
// a fault-free run schedules exactly the event sequence — and allocates
// exactly the event seqs — it did before the fault subsystem existed.
func (w *World) scheduleFaults() {
	if w.plan == nil {
		return
	}
	for _, o := range w.plan.Outages() {
		o := o
		w.sched.At(o.Down, func() { w.crashNode(o.Node) })
		w.sched.At(o.Up, func() { w.restoreNode(o.Node) })
	}
	for _, win := range w.plan.Windows() {
		win := win
		w.sched.At(win.Start, func() {
			w.notifyFault(fault.Event{Kind: fault.RegionBlackout, Time: w.sched.Now(), Node: -1})
		})
		w.sched.At(win.End, func() {
			w.notifyFault(fault.Event{Kind: fault.RegionBlackout, Time: w.sched.Now(), Node: -1, Restored: true})
		})
	}
}

// crashNode is a churn down-edge: the node loses its volatile state —
// neighbor and location tables, plus the protocol's buffers when it
// implements Restarter — exactly as a reboot would. While down, the
// plan's Down predicate blocks its receptions inside the medium and the
// node-level send gates silence it; messages its application generates
// while down queue in the fresh protocol state and survive the reboot.
func (w *World) crashNode(id int) {
	n := w.nodes[id]
	n.neighbors.Reset()
	n.locations.Reset()
	if r, ok := n.proto.(Restarter); ok {
		r.Restart()
	}
	w.downCount++
	w.notifyFault(fault.Event{Kind: fault.Churn, Time: w.sched.Now(), Node: id})
}

// restoreNode is the matching up-edge: the node resumes with fresh-boot
// state (cleared at the down-edge).
func (w *World) restoreNode(id int) {
	w.downCount--
	w.notifyFault(fault.Event{Kind: fault.Churn, Time: w.sched.Now(), Node: id, Restored: true})
}
