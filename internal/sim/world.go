package sim

import (
	"fmt"
	"math/rand"

	"glr/internal/des"
	"glr/internal/dtn"
	"glr/internal/fault"
	"glr/internal/mac"
	"glr/internal/metrics"
	"glr/internal/mobility"
	"glr/internal/shard"
)

// ProtocolFactory builds one protocol instance per node.
type ProtocolFactory func(n *Node) Protocol

// World is one fully-wired simulation run.
type World struct {
	cfg       Scenario
	sched     *des.Scheduler
	medium    *mac.Medium
	nodes     []*Node
	collector *metrics.Collector
	rng       *rand.Rand

	// pool is the shard worker pool for within-run parallelism (nil =
	// serial engine); see Scenario.Parallelism / DisableSharding. thr
	// holds the per-plane fork thresholds in effect — calibrated at
	// init or pinned by Scenario.ForkThresholds; shard.Never() for
	// serial runs.
	pool *shard.Pool
	thr  shard.Thresholds

	// prof accumulates per-phase wall clock when EnablePhaseProfile was
	// called (nil = off, the default; see phaseprof.go).
	prof *PhaseProf

	// Scratch for the batched beacon plane (see sendBeacons).
	beaconDue   []*Node
	beaconBatch []*beaconFrame

	// plan is the compiled fault set (nil = fault-free run; every
	// fault-path check is gated on it so the zero-fault hot path pays
	// one nil comparison). downCount and faultHook track and surface
	// fault occurrences; see fault.go.
	plan      *fault.Plan
	downCount int
	faultHook func(fault.Event)

	// Free lists (the internal/des pattern) for the per-send objects of
	// the hot path: broadcast hellos with their payload buffers, and
	// generic protocol frames. Single-threaded like the scheduler.
	freeBeacons []*beaconFrame
	freeFrames  []*mac.Frame
}

// beaconFrame couples one pooled hello with its MAC frame so frame,
// payload box, and advertised-neighbor buffer all recycle together when
// the MAC reports the broadcast sent. Receivers copy what they keep
// (NeighborTable.Observe row-owned storage), so recycling at that point
// is safe.
type beaconFrame struct {
	frame mac.Frame
	b     Beacon
}

// takeBeacon returns a recycled (or fresh) pooled hello.
func (w *World) takeBeacon() *beaconFrame {
	if n := len(w.freeBeacons); n > 0 {
		bf := w.freeBeacons[n-1]
		w.freeBeacons = w.freeBeacons[:n-1]
		return bf
	}
	return &beaconFrame{}
}

// putBeacon recycles bf, keeping its advertised-neighbor buffer.
func (w *World) putBeacon(bf *beaconFrame) {
	adv := bf.b.Neighbors[:0]
	bf.frame = mac.Frame{}
	bf.b = Beacon{Neighbors: adv}
	w.freeBeacons = append(w.freeBeacons, bf)
}

// takeFrame returns a recycled (or fresh) MAC frame for a protocol send.
func (w *World) takeFrame() *mac.Frame {
	if n := len(w.freeFrames); n > 0 {
		f := w.freeFrames[n-1]
		w.freeFrames = w.freeFrames[:n-1]
		return f
	}
	return &mac.Frame{}
}

// putFrame recycles f once the MAC has fully resolved it (onSent), the
// only point after which neither the medium nor any receiver reads it.
func (w *World) putFrame(f *mac.Frame) {
	*f = mac.Frame{}
	w.freeFrames = append(w.freeFrames, f)
}

// newRand builds a deterministic RNG stream from a seed.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// denseTableNodeLimit is the world size above which per-node dense
// tables (O(n) each, O(n²) per world) give way to compact tables.
const denseTableNodeLimit = 2048

// NewWorld wires a scenario and a protocol factory into a runnable world.
func NewWorld(cfg Scenario, factory ProtocolFactory) (*World, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w := &World{
		cfg:       cfg,
		collector: metrics.NewCollector(cfg.N),
		rng:       newRand(cfg.Seed),
	}
	// Compile the fault plan first: it draws from its own dedicated
	// rand stream, never the world RNG seeded above, so a fault-free
	// scenario's RNG draws — and everything downstream — are untouched.
	var err error
	w.plan, err = fault.Compile(cfg.Faults, cfg.N, cfg.Region, cfg.SimTime, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if cfg.DisableCalendarQueue {
		w.sched = des.NewHeapScheduler()
	} else {
		w.sched = des.NewScheduler()
	}

	macCfg := cfg.MACConfig()
	if !macCfg.DisableSpatialIndex && macCfg.IndexSlack == 0 {
		// The medium's radio index is refreshed once per beacon
		// interval (see scheduleReindex), so cached cells can be stale
		// by up to top-speed × BeaconInterval metres of movement; widen
		// index queries by that drift bound plus a safety metre. The
		// top speed comes from the mobility model — for traces it is
		// the fastest scripted segment, which MaxSpeed does not bound.
		macCfg.IndexSlack = cfg.maxDriftSpeed()*cfg.BeaconInterval + 1
	}
	if w.plan != nil {
		// Blackouts and crashed receivers gate reception inside the
		// medium; the predicate is pure, so serial and sharded
		// resolution reach identical verdicts.
		macCfg.DropRx = w.plan.BlocksReception
	}
	w.medium, err = mac.NewMedium(w.sched, macCfg, cfg.Seed^0x5eed)
	if err != nil {
		return nil, err
	}
	if workers := cfg.shardWorkers(); workers > 1 {
		// The sharded engine: a worker pool shared by the medium
		// (parallel reception analysis and bulk reindexing), the beacon
		// plane (parallel hello construction), the protocols' anti-
		// entropy diffs, and the speculative spanner builds (via
		// Node.ShardPool). Results stay byte-identical to the serial
		// engine — see internal/shard's package doc for the discipline
		// that guarantees it. Each plane forks only above its threshold:
		// calibrated from the measured fork cost, or pinned by the
		// scenario for reproducible fork decisions.
		w.pool = shard.NewPool(workers)
		if cfg.ForkThresholds != nil {
			w.thr = *cfg.ForkThresholds
		} else {
			w.thr = shard.Calibrate(workers)
		}
		w.medium.SetPool(w.pool, cfg.Region.W, w.thr)
	} else {
		w.thr = shard.Never()
	}

	models, err := w.buildMobility()
	if err != nil {
		return nil, err
	}

	for i := 0; i < cfg.N; i++ {
		n := &Node{
			id:    i,
			world: w,
			mob:   models[i],
			rng:   newRand(cfg.Seed + int64(i)*104729 + 7),
		}
		if cfg.DisableDenseTables {
			n.neighbors = dtn.NewNeighborTable()
			n.locations = dtn.NewLocationTable()
		} else if cfg.N > denseTableNodeLimit {
			// Dense tables cost O(n) per node — O(n²) across the world,
			// the memory wall for 10k+ nodes. Compact neighbor rows keep
			// the dense hot paths at O(neighborhood); the map location
			// table is already O(knowledge). All backends are
			// byte-identical, so the switch is invisible in reports.
			n.neighbors = dtn.NewCompactNeighborTable()
			n.locations = dtn.NewLocationTable()
		} else {
			n.neighbors = dtn.NewDenseNeighborTable(cfg.N)
			n.locations = dtn.NewDenseLocationTable(cfg.N)
		}
		n.radio, err = w.medium.AddRadio(i, n.Pos, n.onReceive, n.onSent)
		if err != nil {
			return nil, err
		}
		n.proto = factory(n)
		if n.proto == nil {
			return nil, fmt.Errorf("sim: protocol factory returned nil for node %d", i)
		}
		if w.plan != nil && w.plan.Byzantine(i) {
			n.proto = byzantineProto{n.proto}
		}
		w.nodes = append(w.nodes, n)
	}
	for _, n := range w.nodes {
		n.proto.Init(n)
	}
	w.scheduleBeacons()
	w.scheduleTraffic()
	w.scheduleStorageSampler()
	w.scheduleReindex()
	w.scheduleFaults()
	return w, nil
}

// scheduleReindex amortizes spatial-index maintenance over beacon ticks:
// one bulk refresh of every radio's grid cell per beacon interval bounds
// cell staleness to the drift the medium's IndexSlack covers. The ticker
// runs even when the index is disabled (Reindex is then a no-op) so that
// indexed and naive runs of the same scenario dispatch identical event
// sequences and stay comparable.
func (w *World) scheduleReindex() {
	des.NewTicker(w.sched, w.cfg.BeaconInterval, 0, func() {
		if w.prof != nil {
			defer w.prof.clock(&w.prof.Mobility)()
		}
		w.medium.Reindex()
	})
}

// sendBeacons fires the hellos of the due members of one aggregated
// beacon event, in due order. Below the beacon fork threshold (the
// common case — members of one cell have distinct random phases, so a
// typical event carries exactly one due member) it is the plain serial
// loop. Above it, the batch runs in three phases mirroring the sharded
// reception discipline: serial enumeration (the fault-plan liveness
// check and pooled-frame allocation, in due order), parallel hello
// construction (fillBeacon touches only the member's own tables,
// mobility model, and pooled frame — per-node state, each touched by
// exactly one worker — plus pure reads of the fault plan and clock),
// and a serial commit (frame counting and the MAC sends, whose backoff
// draws from the medium RNG must happen in exactly the serial order).
//
// One deviation from the serial loop is deliberate: pooled beacon
// frames are all taken before any send, so when a send fails
// queue-full (recycling its frame inline) the next member uses a
// different pooled object than the serial path would have. Contents
// are identical either way — every field is rewritten by fillBeacon —
// and receivers copy what they keep, so object identity is never
// observable.
func (w *World) sendBeacons(due []*Node) {
	if w.prof != nil {
		defer w.prof.clock(&w.prof.Beacon)()
	}
	if w.pool == nil || len(due) < w.thr.BeaconMin {
		for _, n := range due {
			n.sendBeacon()
		}
		return
	}
	live, bfs := w.beaconDue[:0], w.beaconBatch[:0]
	for _, n := range due {
		if w.nodeDown(n.id) {
			continue
		}
		live = append(live, n)
		bfs = append(bfs, w.takeBeacon())
	}
	w.beaconDue, w.beaconBatch = live, bfs
	w.pool.Run(len(live), func(i int) {
		live[i].fillBeacon(bfs[i])
	})
	for i, n := range live {
		n.countFrame(KindControl)
		n.radio.Send(&bfs[i].frame)
	}
}

// scheduleBeacons arms the hello beacons with random phases so nodes do
// not fire in lockstep (IMEP's periodic link/connection status sensing).
// The phases are drawn from the world RNG in node-id order regardless of
// mode, so the RNG stream — and everything downstream of it — is
// identical across modes. By default beacons are aggregated into one
// pending event per occupied grid cell (see beaconGroup);
// DisableBeaconAggregation arms the reference per-node tickers, as does
// the (astronomically unlikely) draw of two bit-equal phases, which
// aggregation cannot order byte-identically.
func (w *World) scheduleBeacons() {
	phases := make([]float64, len(w.nodes))
	for i := range phases {
		phases[i] = w.rng.Float64() * w.cfg.BeaconInterval
	}
	if w.cfg.DisableBeaconAggregation || phasesCollide(phases) {
		for i, n := range w.nodes {
			des.NewTicker(w.sched, w.cfg.BeaconInterval, phases[i], func() {
				if w.prof != nil {
					defer w.prof.clock(&w.prof.Beacon)()
				}
				n.sendBeacon()
			})
		}
		return
	}
	for _, g := range w.buildBeaconGroups(phases) {
		g.arm()
	}
}

// scheduleTraffic arms one generation event per traffic item.
func (w *World) scheduleTraffic() {
	seq := make([]int, w.cfg.N)
	for _, ti := range w.cfg.Traffic {
		ti := ti
		w.sched.At(ti.At, func() {
			src := w.nodes[ti.Src]
			m := &dtn.Message{
				ID:          dtn.MessageID{Src: ti.Src, Seq: seq[ti.Src]},
				Dst:         ti.Dst,
				Created:     w.sched.Now(),
				PayloadBits: w.cfg.PayloadBits,
			}
			seq[ti.Src]++
			w.collector.Created(m.ID, m.Created, m.Dst)
			src.proto.OnMessageGenerated(m)
		})
	}
}

// scheduleStorageSampler folds each node's occupancy into its running
// peak every second (Tables 4–5).
func (w *World) scheduleStorageSampler() {
	des.NewTicker(w.sched, 1.0, 0.5, func() {
		for i, n := range w.nodes {
			w.collector.SampleStorage(i, n.proto.StorageUsed())
		}
	})
}

// buildMobility creates one movement model per node, seeded from the
// scenario seed.
func (w *World) buildMobility() ([]mobility.Model, error) {
	cfg := w.cfg
	switch cfg.Mobility {
	case MobilityWaypoint:
		return mobility.WaypointField(cfg.N, mobility.WaypointConfig{
			Region:   cfg.Region,
			MinSpeed: cfg.MinSpeed,
			MaxSpeed: cfg.MaxSpeed,
			Pause:    cfg.Pause,
		}, cfg.Seed*31+17)
	case MobilityStatic:
		return mobility.UniformStatic(cfg.N, cfg.Region, newRand(cfg.Seed*31+17)), nil
	case MobilityRandomWalk:
		models := make([]mobility.Model, cfg.N)
		for i := range models {
			m, err := mobility.NewRandomWalk(mobility.RandomWalkConfig{
				Region:   cfg.Region,
				MinSpeed: cfg.MinSpeed,
				MaxSpeed: cfg.MaxSpeed,
				LegTime:  cfg.WalkLegTime,
			}, cfg.Seed*31+17+int64(i)*7919)
			if err != nil {
				return nil, err
			}
			models[i] = m
		}
		return models, nil
	case MobilityTrace:
		models := make([]mobility.Model, cfg.N)
		for i := range models {
			m, err := mobility.NewTrace(cfg.Traces[i])
			if err != nil {
				return nil, fmt.Errorf("sim: node %d: %w", i, err)
			}
			models[i] = m
		}
		return models, nil
	default:
		return nil, fmt.Errorf("sim: unknown mobility kind %d", cfg.Mobility)
	}
}

// Node returns the i-th node.
func (w *World) Node(i int) *Node { return w.nodes[i] }

// Scheduler returns the event scheduler (tests and tools).
func (w *World) Scheduler() *des.Scheduler { return w.sched }

// Medium returns the shared MAC medium.
func (w *World) Medium() *mac.Medium { return w.medium }

// Collector returns the metrics collector.
func (w *World) Collector() *metrics.Collector { return w.collector }

// Config returns the scenario.
func (w *World) Config() Scenario { return w.cfg }

// Run executes the scenario to its horizon and returns the run report.
// Beaconing, traffic, and sampling were armed at construction, so tests
// may alternatively step the Scheduler directly for partial runs.
func (w *World) Run() metrics.Report {
	w.sched.Run(w.cfg.SimTime)
	w.closePool()
	// Final storage sample at the horizon.
	for i, n := range w.nodes {
		w.collector.SampleStorage(i, n.proto.StorageUsed())
	}
	return w.collector.Report()
}

// closePool releases the shard workers; idempotent, and safe mid-run
// (the pool degrades to inline execution once closed). Run and the
// context-cancelled path of Scenario.RunContext both call it; tests that
// step the Scheduler directly may leave workers parked until exit, which
// is harmless.
func (w *World) closePool() {
	if w.pool != nil {
		w.pool.Close()
		w.pool = nil
	}
}
