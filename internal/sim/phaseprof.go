package sim

import (
	"time"

	"glr/internal/shard"
)

// PhaseProf accumulates the wall clock spent in each stepping plane of
// a run — the attribution the scale sweep prints so parallel-coverage
// gains are visible per plane rather than only end to end. Profiling is
// off by default (a run pays one nil check per phase dispatch);
// EnablePhaseProfile switches it on for a world before Run.
//
// The durations are wall-clock observations and vary run to run; they
// never feed back into the simulation, so profiled and unprofiled runs
// produce byte-identical reports.
type PhaseProf struct {
	// Beacon is the time constructing and queueing hello frames
	// (aggregated beacon events and per-node tickers alike).
	Beacon time.Duration
	// Mobility is the time in the periodic bulk Reindex: position
	// extrapolation plus spatial-index refresh for every radio.
	Mobility time.Duration
	// Rx is the time resolving end-of-airing reception batches — range,
	// fault, and interference analysis plus delivery callbacks (which
	// include protocol work done on reception).
	Rx time.Duration
	// AntiEntropy is the time epidemic instances spend computing
	// summary-vector diffs (zero under protocols without anti-entropy).
	AntiEntropy time.Duration
}

// clock starts timing one phase dispatch; the returned stop function
// (typically deferred) folds the elapsed wall clock into *d.
func (p *PhaseProf) clock(d *time.Duration) func() {
	start := time.Now()
	return func() { *d += time.Since(start) }
}

// EnablePhaseProfile turns on per-phase wall-clock attribution for this
// world's run. Call before Run; idempotent.
func (w *World) EnablePhaseProfile() {
	if w.prof != nil {
		return
	}
	w.prof = &PhaseProf{}
	w.medium.SetRxClock(func(d time.Duration) { w.prof.Rx += d })
}

// PhaseProfile returns the accumulated per-phase durations (zero when
// EnablePhaseProfile was never called).
func (w *World) PhaseProfile() PhaseProf {
	if w.prof == nil {
		return PhaseProf{}
	}
	return *w.prof
}

// ForkThresholds returns the per-plane fork thresholds in effect for
// this world: the scenario's pinned values, the calibrated model for an
// automatic sharded run, or shard.Never() for serial engines.
func (w *World) ForkThresholds() shard.Thresholds { return w.thr }
