package sim

import (
	"math"
	"sort"

	"glr/internal/des"
)

// beaconGroup aggregates the hello tickers of the nodes in one spatial
// grid cell into a single scheduled event. The reference path arms one
// des.Ticker per node, so a giant world keeps n beacon events pending at
// all times; a group keeps exactly one, cutting the scheduler's resident
// beacon load from n events to one per occupied cell.
//
// Byte-identity argument. Every node fires at phase + k·interval — the
// same floats the Ticker path produces, because a fired member's next
// time is computed as now + interval at its exact fire time, matching
// Ticker.tick. With one shared interval, the members' fire order within
// a cycle is their phase order, which never changes; members is sorted by
// (phase, id), so a cursor walking the ring visits members in exactly
// the order the per-node tickers would fire. Members whose phases are
// bit-equal fire back-to-back under one event in id order — the order
// the per-node path dispatches them, since their tickers were armed (and
// re-armed) in id order. Across nodes with distinct phases the scheduled
// times themselves interleave the sends, identically in both paths.
//
// The one case grouping cannot reproduce is two fire times landing
// bit-equal in different groups: the two group events would tie, and
// their seq order need not match the per-node tickers' re-arm order.
// World.scheduleBeacons detects the systematic source — bit-equal phase
// draws (a ~2⁻⁵³ coincidence per pair) — and falls back to per-node
// tickers. Distinct phases can still merge if thousands of accumulated
// interval additions round two sequences onto the same float, a
// coincidence requiring phases within ~K·ulp of each other; the scale
// sweep's report-identity check verifies every aggregated run against
// the ticker path, so such a merge would fail loudly rather than drift
// silently.
type beaconGroup struct {
	w       *World
	members []*Node    // one cell's nodes, sorted by (phase, id)
	nextAt  []des.Time // next fire time per member, parallel to members
	cursor  int        // index of the member that fires next
	due     []*Node    // scratch: the members due at the firing instant
}

// arm schedules the group's single pending event at the next member's
// fire time.
func (g *beaconGroup) arm() {
	g.w.sched.At(g.nextAt[g.cursor], g.fire)
}

// fire sends the hello of every member due at the current instant —
// consecutive ring positions, in (phase, id) order — advances their next
// fire times by one interval, and re-arms. The due members are
// collected before any hello is sent: sends never touch the ring state,
// so collect-then-send dispatches the identical member sequence while
// letting World.sendBeacons construct a multi-member batch in parallel.
func (g *beaconGroup) fire() {
	t := g.w.sched.Now()
	due := g.due[:0]
	for g.nextAt[g.cursor] == t {
		due = append(due, g.members[g.cursor])
		// now + interval at the exact fire time: the same float
		// accumulation Ticker.tick performs.
		g.nextAt[g.cursor] = t + g.w.cfg.BeaconInterval
		g.cursor++
		if g.cursor == len(g.members) {
			g.cursor = 0
		}
	}
	g.due = due
	g.w.sendBeacons(due)
	g.arm()
}

// buildBeaconGroups partitions nodes by the grid cell of their initial
// position (cell side = transmission range, the same geometry the
// medium's spatial index uses) and returns one group per occupied cell,
// each with its members sorted by (phase, id).
func (w *World) buildBeaconGroups(phases []float64) []*beaconGroup {
	side := w.cfg.Range
	type cellKey struct{ cx, cy int }
	cells := make(map[cellKey][]*Node)
	order := make([]cellKey, 0)
	for _, n := range w.nodes { // id order, so cell member lists stay id-sorted
		p := n.Pos()
		k := cellKey{int(math.Floor(p.X / side)), int(math.Floor(p.Y / side))}
		if _, ok := cells[k]; !ok {
			order = append(order, k)
		}
		cells[k] = append(cells[k], n)
	}
	groups := make([]*beaconGroup, 0, len(order))
	for _, k := range order {
		members := cells[k]
		g := &beaconGroup{
			w:       w,
			members: members,
			nextAt:  make([]des.Time, len(members)),
		}
		// Stable sort by phase: members is id-ordered, so bit-equal
		// phases stay in id order — the per-node tickers' tie order.
		sort.SliceStable(g.members, func(i, j int) bool {
			return phases[g.members[i].id] < phases[g.members[j].id]
		})
		for i, n := range g.members {
			g.nextAt[i] = phases[n.id]
		}
		groups = append(groups, g)
	}
	return groups
}

// phasesCollide reports whether any two drawn beacon phases are
// bit-equal — the one configuration beacon aggregation cannot reproduce
// byte-identically (see beaconGroup).
func phasesCollide(phases []float64) bool {
	sorted := append([]float64(nil), phases...)
	sort.Float64s(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return true
		}
	}
	return false
}
