package sim

import (
	"math"
	"testing"

	"glr/internal/dtn"
	"glr/internal/mobility"
)

// nopProtocol isolates the node/MAC beacon plane: no routing, no
// traffic — every cost measured is table bookkeeping, pooled hello
// frames, and medium resolution.
type nopProtocol struct{}

func (nopProtocol) Init(*Node)                      {}
func (nopProtocol) OnMessageGenerated(*dtn.Message) {}
func (nopProtocol) OnFrame(any, int)                {}
func (nopProtocol) OnBeacon(Beacon)                 {}
func (nopProtocol) StorageUsed() int                { return 0 }

// benchBeaconTick measures one full beacon interval of a 500-node world
// at the paper's density: every node broadcasts its hello, every
// receiver refreshes its neighbor/location tables, and the medium
// resolves all receptions. This is the simulator's steady-state load
// with routing factored out.
func benchBeaconTick(b *testing.B, disableDense, disableAgg bool) {
	const n = 500
	area := float64(n) / (50.0 / (1500 * 300))
	h := math.Sqrt(area / 5)

	s := DefaultScenario(100)
	s.N = n
	s.Region = mobility.Region{W: 5 * h, H: h}
	s.SimTime = 1e9 // horizon unused; the benchmark steps manually
	s.DisableDenseTables = disableDense
	s.DisableBeaconAggregation = disableAgg

	w, err := NewWorld(s, func(*Node) Protocol { return nopProtocol{} })
	if err != nil {
		b.Fatal(err)
	}
	// Warm up: let tables, pools, and the spatial index reach steady
	// state before measuring.
	until := 3 * s.BeaconInterval
	w.Scheduler().Run(until)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		until += s.BeaconInterval
		w.Scheduler().Run(until)
	}
}

// Dense and Map measure the two table backends under the reference
// per-node beacon tickers; Aggregated measures the full fast path
// (dense tables + cell-aggregated beacon events).
func BenchmarkBeaconTickDense(b *testing.B) { benchBeaconTick(b, false, true) }

func BenchmarkBeaconTickMap(b *testing.B) { benchBeaconTick(b, true, true) }

func BenchmarkBeaconTickAggregated(b *testing.B) { benchBeaconTick(b, false, false) }
