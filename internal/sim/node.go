package sim

import (
	"math/rand"
	"time"

	"glr/internal/des"
	"glr/internal/dtn"
	"glr/internal/geom"
	"glr/internal/mac"
	"glr/internal/metrics"
	"glr/internal/mobility"
	"glr/internal/shard"
)

// Protocol is the routing-protocol hook set. The GLR implementation lives
// in internal/core; the epidemic baseline in internal/epidemic. All
// callbacks run on the simulation goroutine.
type Protocol interface {
	// Init is called once after the node is fully wired, before any
	// event fires.
	Init(n *Node)
	// OnMessageGenerated hands the protocol a freshly created message for
	// which this node is the source.
	OnMessageGenerated(m *dtn.Message)
	// OnFrame delivers a received protocol frame payload.
	OnFrame(payload any, from int)
	// OnBeacon notifies the protocol that a beacon was heard (node-level
	// neighbor/location bookkeeping has already run). b.Neighbors aliases
	// a pooled buffer recycled after the airing resolves; implementations
	// must copy it if they keep it.
	OnBeacon(b Beacon)
	// StorageUsed returns the number of messages currently held, the
	// paper's storage metric.
	StorageUsed() int
}

// Beacon is the periodic IMEP-style hello: the sender's position and its
// current 1-hop neighbor list (which gives listeners 2-hop knowledge).
type Beacon struct {
	From      int
	Pos       geom.Point
	Time      float64
	Neighbors []dtn.NeighborNeighbor
}

// beaconBits returns the airtime size of a beacon: 24 bytes of fixed
// fields plus 20 per advertised neighbor.
func beaconBits(neighborCount int) int {
	return (24 + 20*neighborCount) * 8
}

// FrameKind classifies transmissions for the overhead counters.
type FrameKind int

// Frame classes.
const (
	KindControl FrameKind = iota
	KindData
	KindAck
)

// Node is one mobile station: radio + mobility + protocol + the
// node-level tables every DTN node keeps.
type Node struct {
	id    int
	world *World
	radio *mac.Radio
	mob   mobility.Model
	proto Protocol
	rng   *rand.Rand

	neighbors *dtn.NeighborTable
	locations *dtn.LocationTable

	// sentCB is allocated lazily on the first Unicast with a callback:
	// beacon-only nodes (and every node in a giant world before it
	// forwards data) never pay for the map.
	sentCB map[*mac.Frame]func(ok bool)
}

// ID returns the node id (0-based, dense).
func (n *Node) ID() int { return n.id }

// Now returns the current simulated time.
func (n *Node) Now() float64 { return n.world.sched.Now() }

// Pos returns the node's current true position.
func (n *Node) Pos() geom.Point { return n.mob.Position(n.Now()) }

// Range returns the transmission range.
func (n *Node) Range() float64 { return n.world.cfg.Range }

// Region returns the deployment region.
func (n *Node) Region() mobility.Region { return n.world.cfg.Region }

// NodeCount returns the number of nodes in the network.
func (n *Node) NodeCount() int { return n.world.cfg.N }

// StorageLimit returns the per-node storage bound (0 = unlimited).
func (n *Node) StorageLimit() int { return n.world.cfg.StorageLimit }

// Rand returns the node's private RNG stream.
func (n *Node) Rand() *rand.Rand { return n.rng }

// Sched exposes the scheduler for protocol timers.
func (n *Node) Sched() *des.Scheduler { return n.world.sched }

// After schedules fn after d seconds.
func (n *Node) After(d float64, fn func()) des.EventID {
	return n.world.sched.After(d, fn)
}

// Metrics returns the run's collector.
func (n *Node) Metrics() *metrics.Collector { return n.world.collector }

// Neighbors returns the node's neighbor table with stale rows (older than
// the scenario's expiry) already dropped.
func (n *Node) Neighbors() *dtn.NeighborTable {
	n.neighbors.Expire(n.Now() - n.world.cfg.NeighborExpiry)
	return n.neighbors
}

// Locations returns the node's location table (§2.3.1 diffusion state).
func (n *Node) Locations() *dtn.LocationTable { return n.locations }

// ShardPool exposes the world's shard worker pool, nil when the run is
// serial (Scenario.DisableSharding, Parallelism 1, or a single-CPU
// automatic resolution). Protocols may use it for speculative read-only
// work; everything that mutates simulation state stays on the event
// goroutine.
func (n *Node) ShardPool() *shard.Pool { return n.world.pool }

// ForkThresholds returns the run's per-plane fork thresholds
// (shard.Never() on serial engines). Protocols forking batch work onto
// ShardPool gate on the matching plane's threshold so below-break-even
// batches stay inline.
func (n *Node) ForkThresholds() shard.Thresholds { return n.world.thr }

// PhaseProfiled reports whether the run collects per-phase wall-clock
// attribution (see World.EnablePhaseProfile).
func (n *Node) PhaseProfiled() bool { return n.world.prof != nil }

// AddAntiEntropyTime folds d into the run's anti-entropy phase total.
// No-op when the run is not profiled.
func (n *Node) AddAntiEntropyTime(d time.Duration) {
	if n.world.prof != nil {
		n.world.prof.AntiEntropy += d
	}
}

// AppendTwoHopAt appends the node's two-hop neighborhood as it will look
// at the (future or present) instant `at` — the rows that will not have
// expired by then plus this node's own predicted position — without
// mutating the table. It feeds speculative spanner builds: the preview
// is byte-identical to what Neighbors().AppendTwoHop would return at
// `at` provided no beacon arrives in between.
func (n *Node) AppendTwoHopAt(ids []int, pts []geom.Point, at float64) ([]int, []geom.Point) {
	return n.neighbors.AppendTwoHopAt(ids, pts, n.id, n.mob.Position(at), at-n.world.cfg.NeighborExpiry)
}

// OraclePosition returns the true current position of any node. It backs
// the paper's evaluation assumptions ("source knows the true destination
// location" and the all-nodes-know regime of Table 2); protocols must not
// use it outside those configured regimes.
func (n *Node) OraclePosition(id int) geom.Point {
	return n.world.nodes[id].Pos()
}

// Broadcast queues a broadcast frame. It reports whether the frame was
// accepted by the link-layer queue. The frame object is pooled; the
// payload is released to the garbage collector when the MAC resolves
// the frame.
func (n *Node) Broadcast(kind FrameKind, payload any, bits int) bool {
	if n.world.nodeDown(n.id) {
		return false
	}
	n.countFrame(kind)
	f := n.world.takeFrame()
	f.Dst, f.Bits, f.Payload = mac.Broadcast, bits, payload
	return n.radio.Send(f)
}

// Unicast queues a unicast frame; cb (may be nil) fires when the MAC
// resolves the frame (delivered or abandoned). It reports whether the
// frame was accepted by the link-layer queue; when it returns false, cb
// has already been invoked with ok=false.
func (n *Node) Unicast(dst int, kind FrameKind, payload any, bits int, cb func(ok bool)) bool {
	if n.world.nodeDown(n.id) {
		if cb != nil {
			cb(false)
		}
		return false
	}
	f := n.world.takeFrame()
	f.Dst, f.Bits, f.Payload = dst, bits, payload
	if cb != nil {
		if n.sentCB == nil {
			n.sentCB = make(map[*mac.Frame]func(ok bool))
		}
		n.sentCB[f] = cb
	}
	n.countFrame(kind)
	return n.radio.Send(f)
}

func (n *Node) countFrame(kind FrameKind) {
	switch kind {
	case KindControl:
		n.world.collector.CountControlFrame()
	case KindData:
		n.world.collector.CountDataFrame()
	case KindAck:
		n.world.collector.CountAck()
	}
}

// ReportDelivered records a message arrival at this node (the
// destination). It reports whether this was the first copy to arrive.
func (n *Node) ReportDelivered(m *dtn.Message) bool {
	return n.world.collector.Delivered(m.ID, n.Now(), m.Hops)
}

// onReceive is the radio delivery callback.
func (n *Node) onReceive(f *mac.Frame) {
	if bf, ok := f.Payload.(*beaconFrame); ok {
		n.handleBeacon(bf.b)
		return
	}
	n.proto.OnFrame(f.Payload, f.Src)
}

// onSent is the radio completion callback. Every reception of the frame
// has already been delivered (the MAC resolves receptions before
// reporting the sender), so the frame — and, for hellos, the beacon
// payload with its advertised-neighbor buffer — recycles here.
func (n *Node) onSent(f *mac.Frame, ok bool) {
	if cb, exists := n.sentCB[f]; exists {
		delete(n.sentCB, f)
		cb(ok)
	}
	if bf, isBeacon := f.Payload.(*beaconFrame); isBeacon {
		n.world.putBeacon(bf)
		return
	}
	n.world.putFrame(f)
}

// handleBeacon performs the node-level bookkeeping every DTN node does on
// a hello: refresh the neighbor table and the location table ("two nodes
// exchange their location information whenever they come within
// communication range of each other"), then inform the protocol.
func (n *Node) handleBeacon(b Beacon) {
	n.neighbors.Observe(dtn.NeighborInfo{
		ID:        b.From,
		Pos:       b.Pos,
		LastSeen:  b.Time,
		Neighbors: b.Neighbors,
	})
	n.locations.Update(b.From, b.Pos, b.Time)
	n.proto.OnBeacon(b)
}

// sendBeacon broadcasts this node's current hello from a pooled frame:
// the advertised-neighbor list is built in the pooled buffer, so a
// steady-state beacon allocates nothing.
func (n *Node) sendBeacon() {
	if n.world.nodeDown(n.id) {
		return
	}
	bf := n.world.takeBeacon()
	n.fillBeacon(bf)
	n.countFrame(KindControl)
	n.radio.Send(&bf.frame)
}

// fillBeacon constructs this node's current hello into the pooled
// frame: neighbor-table expiry, advertised-neighbor fill, and the
// advertised position (the true one in fault-free runs; under GPS
// noise or a Byzantine plan the node claims somewhere else, and every
// receiver's tables trust the claim). It touches only the node's own
// tables, mobility model, and bf — plus pure reads of the clock and
// the fault plan — so the batched beacon plane may run fillBeacon for
// distinct nodes on parallel workers (see World.sendBeacons).
func (n *Node) fillBeacon(bf *beaconFrame) {
	adv := n.Neighbors().AppendAdvertised(bf.b.Neighbors[:0])
	bf.b = Beacon{From: n.id, Pos: n.world.advertisedPos(n.id, n.Pos()), Time: n.Now(), Neighbors: adv}
	bf.frame = mac.Frame{Dst: mac.Broadcast, Bits: beaconBits(len(adv)), Payload: bf}
}
