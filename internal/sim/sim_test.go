package sim

import (
	"testing"

	"glr/internal/dtn"
	"glr/internal/mobility"
)

// directProtocol is a minimal test protocol: sources broadcast each
// message once per check interval until the destination confirms via the
// metrics collector; destinations report delivery. It exercises node
// wiring, beacons, frames, and metrics without any routing intelligence.
type directProtocol struct {
	n       *Node
	pending []*dtn.Message
}

func (p *directProtocol) Init(n *Node) {
	p.n = n
	n.After(0.5, p.tick)
}

func (p *directProtocol) tick() {
	kept := p.pending[:0]
	for _, m := range p.pending {
		if !p.n.Metrics().IsDelivered(m.ID) {
			p.n.Broadcast(KindData, *m, m.PayloadBits)
			kept = append(kept, m)
		}
	}
	p.pending = kept
	p.n.After(0.5, p.tick)
}

func (p *directProtocol) OnMessageGenerated(m *dtn.Message) {
	p.pending = append(p.pending, m)
}

func (p *directProtocol) OnFrame(payload any, from int) {
	m, ok := payload.(dtn.Message)
	if !ok {
		return
	}
	m.Hops++
	if m.Dst == p.n.ID() {
		p.n.ReportDelivered(&m)
	}
}

func (p *directProtocol) OnBeacon(Beacon)  {}
func (p *directProtocol) StorageUsed() int { return len(p.pending) }

func directFactory(*Node) Protocol { return &directProtocol{} }

func smallScenario() Scenario {
	s := DefaultScenario(250)
	s.N = 10
	s.SimTime = 60
	s.Region = mobility.Region{W: 300, H: 300}
	s.Traffic = []TrafficItem{{Src: 0, Dst: 1, At: 1}, {Src: 2, Dst: 3, At: 2}}
	return s
}

func TestScenarioValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"one node", func(s *Scenario) { s.N = 1 }},
		{"zero range", func(s *Scenario) { s.Range = 0 }},
		{"zero time", func(s *Scenario) { s.SimTime = 0 }},
		{"bad region", func(s *Scenario) { s.Region.W = 0 }},
		{"bad payload", func(s *Scenario) { s.PayloadBits = 0 }},
		{"bad beacon", func(s *Scenario) { s.BeaconInterval = 0 }},
		{"expiry below beacon", func(s *Scenario) { s.NeighborExpiry = 0.5 }},
		{"negative storage", func(s *Scenario) { s.StorageLimit = -1 }},
		{"traffic self-loop", func(s *Scenario) { s.Traffic = []TrafficItem{{Src: 1, Dst: 1, At: 1}} }},
		{"traffic out of range", func(s *Scenario) { s.Traffic = []TrafficItem{{Src: 0, Dst: 99, At: 1}} }},
		{"traffic after horizon", func(s *Scenario) { s.Traffic = []TrafficItem{{Src: 0, Dst: 1, At: 1e9}} }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := smallScenario()
			tt.mutate(&s)
			if s.Validate() == nil {
				t.Error("expected validation error")
			}
		})
	}
	if err := smallScenario().Validate(); err != nil {
		t.Errorf("valid scenario rejected: %v", err)
	}
}

func TestPaperTraffic(t *testing.T) {
	full := PaperTraffic(1980)
	if len(full) != 1980 {
		t.Fatalf("full pattern has %d items, want 1980", len(full))
	}
	// Every source sends exactly 44 messages; no self-loops; 1/s rate.
	perSrc := map[int]int{}
	seen := map[[2]int]bool{}
	for i, ti := range full {
		if ti.Src == ti.Dst {
			t.Fatal("self-loop in paper traffic")
		}
		if ti.Src < 0 || ti.Src >= 45 || ti.Dst < 0 || ti.Dst >= 45 {
			t.Fatal("endpoints outside the 45-node subset")
		}
		if ti.At != float64(i+1) {
			t.Fatalf("message %d at %v, want %d (1 per second)", i, ti.At, i+1)
		}
		perSrc[ti.Src]++
		key := [2]int{ti.Src, ti.Dst}
		if seen[key] {
			t.Fatalf("duplicate pair %v", key)
		}
		seen[key] = true
	}
	for src, cnt := range perSrc {
		if cnt != 44 {
			t.Fatalf("source %d sends %d messages, want 44", src, cnt)
		}
	}
	// Prefixes interleave across sources.
	prefix := PaperTraffic(90)
	if len(prefix) != 90 {
		t.Fatalf("prefix has %d items", len(prefix))
	}
	srcs := map[int]bool{}
	for _, ti := range prefix[:45] {
		srcs[ti.Src] = true
	}
	if len(srcs) != 45 {
		t.Errorf("first 45 messages use %d sources, want 45 (round-robin)", len(srcs))
	}
	// Overflow clamps.
	if got := len(PaperTraffic(5000)); got != 1980 {
		t.Errorf("overflow request returned %d items", got)
	}
}

func TestUniformTraffic(t *testing.T) {
	items := UniformTraffic(10, 50, 2.0, 7)
	if len(items) != 50 {
		t.Fatalf("got %d items", len(items))
	}
	for _, ti := range items {
		if ti.Src == ti.Dst || ti.Src < 0 || ti.Src >= 10 || ti.Dst < 0 || ti.Dst >= 10 {
			t.Fatalf("bad endpoints %+v", ti)
		}
	}
	if items[10].At != 5.0 {
		t.Errorf("rate wrong: item 10 at %v, want 5", items[10].At)
	}
	again := UniformTraffic(10, 50, 2.0, 7)
	for i := range items {
		if items[i] != again[i] {
			t.Fatal("uniform traffic not deterministic")
		}
	}
}

func TestWorldEndToEndDirectProtocol(t *testing.T) {
	w, err := NewWorld(smallScenario(), directFactory)
	if err != nil {
		t.Fatal(err)
	}
	r := w.Run()
	if r.Generated != 2 {
		t.Fatalf("generated %d, want 2", r.Generated)
	}
	// 300×300 region, 250 m range: nearly always in range; direct
	// rebroadcast must deliver both messages quickly.
	if r.Delivered != 2 {
		t.Fatalf("delivered %d/2; report %+v", r.Delivered, r)
	}
	if r.AvgLatency <= 0 || r.AvgLatency > 30 {
		t.Errorf("suspicious latency %v", r.AvgLatency)
	}
	if r.AvgHops < 1 {
		t.Errorf("hops = %v, want ≥ 1", r.AvgHops)
	}
	if r.ControlFrames == 0 {
		t.Error("beacons should be counted as control frames")
	}
}

func TestWorldDeterministicAcrossRuns(t *testing.T) {
	run := func() any {
		w, err := NewWorld(smallScenario(), directFactory)
		if err != nil {
			t.Fatal(err)
		}
		return w.Run()
	}
	if run() != run() {
		t.Error("identical seeds must produce identical reports")
	}
}

func TestWorldSetsIndexSlackForMobility(t *testing.T) {
	// The world must widen spatial-index queries to cover the drift a
	// node can accumulate between two Reindex ticks.
	s := smallScenario()
	w, err := NewWorld(s, directFactory)
	if err != nil {
		t.Fatal(err)
	}
	want := s.MaxSpeed*s.BeaconInterval + 1
	if got := w.Medium().Config().IndexSlack; got != want {
		t.Errorf("IndexSlack = %v, want %v", got, want)
	}
	// An explicit override is left alone.
	s2 := smallScenario()
	mc := s2.MACConfig()
	mc.IndexSlack = 123
	s2.MACOverride = &mc
	w2, err := NewWorld(s2, directFactory)
	if err != nil {
		t.Fatal(err)
	}
	if got := w2.Medium().Config().IndexSlack; got != 123 {
		t.Errorf("override IndexSlack = %v, want 123", got)
	}
}

func TestWorldNaiveMediumMatchesGridDelivery(t *testing.T) {
	// Full-stack sanity for the DisableSpatialIndex escape hatch: the
	// same scenario must still deliver traffic without the index. (The
	// exact per-frame equivalence property lives in internal/mac.)
	s := smallScenario()
	s.DisableSpatialIndex = true
	if !s.MACConfig().DisableSpatialIndex {
		t.Fatal("scenario flag must reach the MAC config")
	}
	w, err := NewWorld(s, directFactory)
	if err != nil {
		t.Fatal(err)
	}
	rep := w.Run()
	if rep.Delivered != rep.Generated {
		t.Errorf("naive medium delivered %d/%d", rep.Delivered, rep.Generated)
	}
}

func TestWorldSeedChangesOutcome(t *testing.T) {
	// Different seeds must at least produce different node trajectories
	// (metric digests can coincide in tiny uncontended scenarios).
	s1 := smallScenario()
	s2 := smallScenario()
	s2.Seed = 999
	w1, _ := NewWorld(s1, directFactory)
	w2, _ := NewWorld(s2, directFactory)
	same := true
	for i := 0; i < s1.N; i++ {
		if !w1.Node(i).Pos().Eq(w2.Node(i).Pos()) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should place nodes differently")
	}
}

func TestBeaconsPopulateNeighborTables(t *testing.T) {
	s := smallScenario()
	s.Traffic = nil
	w, err := NewWorld(s, directFactory)
	if err != nil {
		t.Fatal(err)
	}
	w.Scheduler().Run(5)
	// In a 300×300 region with 250 m range, most nodes hear most others.
	heard := 0
	for i := 0; i < s.N; i++ {
		heard += w.Node(i).Neighbors().Len()
	}
	if heard < s.N { // extremely conservative floor
		t.Errorf("after 5 s of beaconing only %d neighbor rows exist", heard)
	}
	// Two-hop info: at least one node must know a neighbor's neighbor.
	twoHop := false
	for i := 0; i < s.N && !twoHop; i++ {
		for _, r := range w.Node(i).Neighbors().Snapshot() {
			if len(r.Neighbors) > 0 {
				twoHop = true
				break
			}
		}
	}
	if !twoHop {
		t.Error("beacons should carry 1-hop neighbor lists after warm-up")
	}
}

func TestNeighborExpiry(t *testing.T) {
	s := smallScenario()
	s.Traffic = nil
	w, err := NewWorld(s, directFactory)
	if err != nil {
		t.Fatal(err)
	}
	w.Scheduler().Run(5)
	n := w.Node(0)
	if n.Neighbors().Len() == 0 {
		t.Skip("node 0 heard nobody in this topology")
	}
	// Tables must drop rows not refreshed within the expiry window; we
	// simulate radio silence by advancing time without beacons. Stop all
	// beaconing by running a fresh world past its horizon: instead, query
	// with a manual Expire through the accessor after advancing the
	// clock with an empty event.
	w.Scheduler().At(5+s.NeighborExpiry+1, func() {})
	w.Scheduler().Run(5 + s.NeighborExpiry + 1)
	// Beacons kept arriving, so rows should still be fresh.
	if n.Neighbors().Len() == 0 {
		t.Error("live beaconing should keep neighbor rows fresh")
	}
}

func TestOraclePosition(t *testing.T) {
	w, err := NewWorld(smallScenario(), directFactory)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if !w.Node(0).OraclePosition(i).Eq(w.Node(i).Pos()) {
			t.Fatal("oracle must report true positions")
		}
	}
}

func TestStorageSampling(t *testing.T) {
	s := smallScenario()
	w, err := NewWorld(s, directFactory)
	if err != nil {
		t.Fatal(err)
	}
	r := w.Run()
	// The direct protocol holds pending messages until delivery, so some
	// peak storage must have been observed.
	if r.MaxPeakStorage < 1 {
		t.Errorf("MaxPeakStorage = %d, want ≥ 1", r.MaxPeakStorage)
	}
	if r.AvgPeakStorage <= 0 {
		t.Errorf("AvgPeakStorage = %v, want > 0", r.AvgPeakStorage)
	}
}

func TestStaticMobilityWorld(t *testing.T) {
	s := smallScenario()
	s.Mobility = MobilityStatic
	w, err := NewWorld(s, directFactory)
	if err != nil {
		t.Fatal(err)
	}
	p0 := w.Node(3).Pos()
	w.Run()
	if !w.Node(3).Pos().Eq(p0) {
		t.Error("static nodes must not move")
	}
}

func TestNilProtocolFactoryRejected(t *testing.T) {
	if _, err := NewWorld(smallScenario(), func(*Node) Protocol { return nil }); err == nil {
		t.Error("nil protocol should be rejected")
	}
}
