package sim

import (
	"testing"

	"glr/internal/geom"
	"glr/internal/mobility"
)

func validWalkScenario(n int) Scenario {
	s := DefaultScenario(200)
	s.N = n
	s.SimTime = 60
	s.Mobility = MobilityRandomWalk
	s.WalkLegTime = 10
	return s
}

func TestValidateRandomWalk(t *testing.T) {
	s := validWalkScenario(10)
	if err := s.Validate(); err != nil {
		t.Fatalf("valid random-walk scenario rejected: %v", err)
	}
	s.WalkLegTime = 0
	if err := s.Validate(); err == nil {
		t.Error("random walk without WalkLegTime accepted")
	}
}

func TestValidateTrace(t *testing.T) {
	s := DefaultScenario(200)
	s.N = 2
	s.SimTime = 60
	s.Mobility = MobilityTrace
	s.Traces = [][]mobility.TracePoint{
		{{T: 0, P: geom.Pt(10, 10)}, {T: 30, P: geom.Pt(100, 100)}},
		{{T: 0, P: geom.Pt(20, 20)}},
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("valid trace scenario rejected: %v", err)
	}

	bad := s
	bad.Traces = s.Traces[:1]
	if err := bad.Validate(); err == nil {
		t.Error("trace count != N accepted")
	}

	bad = s
	bad.Traces = [][]mobility.TracePoint{s.Traces[0], {}}
	if err := bad.Validate(); err == nil {
		t.Error("empty trace accepted")
	}

	bad = s
	bad.Traces = [][]mobility.TracePoint{
		{{T: 0, P: geom.Pt(10, 10)}, {T: 0, P: geom.Pt(5, 5)}},
		s.Traces[1],
	}
	if err := bad.Validate(); err == nil {
		t.Error("non-increasing trace times accepted")
	}

	bad = s
	bad.Traces = [][]mobility.TracePoint{
		{{T: 0, P: geom.Pt(-5, 10)}},
		s.Traces[1],
	}
	if err := bad.Validate(); err == nil {
		t.Error("trace outside region accepted")
	}

	bad = s
	bad.Mobility = MobilityKind(99)
	if err := bad.Validate(); err == nil {
		t.Error("unknown mobility kind accepted")
	}
}

func TestMobilityKindString(t *testing.T) {
	for kind, want := range map[MobilityKind]string{
		MobilityWaypoint:   "waypoint",
		MobilityStatic:     "static",
		MobilityRandomWalk: "randomwalk",
		MobilityTrace:      "trace",
	} {
		if got := kind.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(kind), got, want)
		}
	}
}

// TestWalkAndTraceWorldsRun drives both new mobility kinds end to end
// through NewWorld and checks node positions honour the model.
func TestWalkAndTraceWorldsRun(t *testing.T) {
	s := validWalkScenario(12)
	s.Traffic = UniformTraffic(s.N, 5, 1, 99)
	w, err := NewWorld(s, directFactory)
	if err != nil {
		t.Fatal(err)
	}
	rep := w.Run()
	if rep.Generated != 5 {
		t.Errorf("generated %d, want 5", rep.Generated)
	}

	ts := DefaultScenario(200)
	ts.N = 3
	ts.SimTime = 40
	ts.Mobility = MobilityTrace
	ts.Traces = [][]mobility.TracePoint{
		{{T: 0, P: geom.Pt(10, 10)}, {T: 40, P: geom.Pt(410, 10)}},
		{{T: 0, P: geom.Pt(100, 100)}},
		{{T: 0, P: geom.Pt(200, 200)}},
	}
	tw, err := NewWorld(ts, directFactory)
	if err != nil {
		t.Fatal(err)
	}
	tw.Scheduler().Run(20)
	// Node 0 interpolates linearly: at t=20 it is halfway along.
	pos := tw.Node(0).Pos()
	if pos.Dist(geom.Pt(210, 10)) > 1e-9 {
		t.Errorf("trace node at %v, want (210,10)", pos)
	}
	if p := tw.Node(1).Pos(); p != geom.Pt(100, 100) {
		t.Errorf("single-point trace node moved to %v", p)
	}
}

// TestFastTraceGridEquivalence is the regression test for over-speed
// traces: scripted segments are not bounded by MaxSpeed, so the radio
// index's staleness slack must derive from the fastest trace segment or
// the indexed medium silently misses receivers. A 400 m/s shuttle
// between pinned stations must produce reports identical to the naive
// full-scan reference.
func TestFastTraceGridEquivalence(t *testing.T) {
	build := func(disableIndex bool) Scenario {
		s := DefaultScenario(150)
		s.N = 6
		s.SimTime = 300
		s.Region = mobility.Region{W: 1500, H: 300}
		s.Mobility = MobilityTrace
		stations := [][2]float64{{80, 150}, {430, 150}, {780, 150}, {1130, 150}, {1480, 150}}
		s.Traces = make([][]mobility.TracePoint, s.N)
		for i, st := range stations {
			s.Traces[i] = []mobility.TracePoint{{T: 0, P: geom.Pt(st[0], st[1])}}
		}
		// The shuttle bounces across the whole strip nonstop at
		// ~370 m/s — far beyond the 20 m/s the default MaxSpeed-based
		// slack assumed.
		var shuttle []mobility.TracePoint
		for k := 0; float64(k)*4 <= s.SimTime+4; k++ {
			x := 10.0
			if k%2 == 1 {
				x = 1490
			}
			shuttle = append(shuttle, mobility.TracePoint{T: float64(k) * 4, P: geom.Pt(x, 160)})
		}
		s.Traces[5] = shuttle
		s.Traffic = UniformTraffic(s.N, 150, 1, 5)
		s.DisableSpatialIndex = disableIndex
		return s
	}
	run := func(disableIndex bool) interface{} {
		w, err := NewWorld(build(disableIndex), directFactory)
		if err != nil {
			t.Fatal(err)
		}
		return w.Run()
	}
	indexed := run(false)
	naive := run(true)
	if indexed != naive {
		t.Errorf("indexed medium diverged from naive reference on a fast trace:\nindexed: %+v\nnaive:   %+v", indexed, naive)
	}
}

func TestPoissonTraffic(t *testing.T) {
	items := PoissonTraffic(20, 50, 2.0, 7)
	if len(items) != 50 {
		t.Fatalf("got %d items, want 50", len(items))
	}
	prev := 0.0
	for i, ti := range items {
		if ti.At <= prev {
			t.Fatalf("item %d at %v not after %v", i, ti.At, prev)
		}
		if ti.Src == ti.Dst || ti.Src < 0 || ti.Src >= 20 || ti.Dst < 0 || ti.Dst >= 20 {
			t.Fatalf("item %d endpoints invalid: %d→%d", i, ti.Src, ti.Dst)
		}
		prev = ti.At
	}
	// Mean inter-arrival should be near 1/rate.
	mean := items[len(items)-1].At / float64(len(items))
	if mean < 0.2 || mean > 1.5 {
		t.Errorf("mean inter-arrival %v wildly off 0.5", mean)
	}
	again := PoissonTraffic(20, 50, 2.0, 7)
	for i := range items {
		if items[i] != again[i] {
			t.Fatal("PoissonTraffic not deterministic")
		}
	}
}

func TestHotspotTraffic(t *testing.T) {
	items := HotspotTraffic(20, 40, 3, 2.0, 11)
	if len(items) != 40 {
		t.Fatalf("got %d items, want 40", len(items))
	}
	for i, ti := range items {
		if ti.Dst < 0 || ti.Dst >= 3 {
			t.Fatalf("item %d destination %d outside sink set", i, ti.Dst)
		}
		if ti.Src < 3 || ti.Src >= 20 {
			t.Fatalf("item %d source %d overlaps sinks", i, ti.Src)
		}
		if ti.At != float64(i)/2.0 {
			t.Fatalf("item %d at %v, want %v", i, ti.At, float64(i)/2.0)
		}
	}
	// The extreme valid shape — every node but one is a sink — still
	// yields well-formed schedules.
	edge := HotspotTraffic(5, 10, 4, 1.0, 1)
	for i, ti := range edge {
		if ti.Src != 4 || ti.Dst < 0 || ti.Dst >= 4 {
			t.Fatalf("edge item %d malformed: %d→%d", i, ti.Src, ti.Dst)
		}
	}
}
