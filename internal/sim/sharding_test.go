package sim_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"

	"glr/internal/core"
	"glr/internal/dtn"
	"glr/internal/epidemic"
	"glr/internal/geom"
	"glr/internal/metrics"
	"glr/internal/mobility"
	"glr/internal/shard"
	"glr/internal/sim"
)

// deliveryRec is one observed arrival, captured through metrics.Hooks so
// the test compares the full delivered-frame set — every copy, in
// arrival order — not just the aggregate counters.
type deliveryRec struct {
	id    dtn.MessageID
	at    float64
	dst   int
	hops  int
	first bool
}

// stripeBoundaries replicates spatial.NewStripes' partition arithmetic
// for a given worker count: the x coordinates where stripe ownership
// changes. Nodes placed astride these lines exercise the halo exchange.
func stripeBoundaries(width, halo float64, shards int) []float64 {
	if width <= 0 || halo <= 0 || shards < 2 {
		return nil
	}
	cols := int(width / halo)
	if cols < 2 {
		return nil
	}
	per := (cols + shards - 1) / shards
	count := (cols + per - 1) / per
	var bs []float64
	for k := 1; k < count; k++ {
		bs = append(bs, float64(k*per)*halo)
	}
	return bs
}

// TestShardBoundaryEquivalence is the shard-boundary property test: on
// randomized mobile topologies whose sources and sinks deliberately
// straddle the stripe boundaries of every tested worker count — nodes
// oscillate across the lines while talking to each other — the sharded
// engine must deliver exactly the same frames in exactly the same order
// as the serial engine, and produce an identical metrics.Report, for
// parallelism 1, 2, 4, and 8 — with calibrated thresholds, with all-zero
// thresholds forcing every plane (beacon, mobility, rx, anti-entropy)
// to fork on every batch, and under the epidemic protocol whose
// anti-entropy diffs GLR never exercises.
func TestShardBoundaryEquivalence(t *testing.T) {
	const trials = 6
	workerSet := []int{1, 2, 4, 8}
	delivered := 0
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("seed=%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial)*7919 + 3))

			rangeM := 60 + rng.Float64()*60
			region := mobility.Region{W: 900 + rng.Float64()*600, H: 250 + rng.Float64()*150}
			const (
				beacon   = 1.0
				simTime  = 60.0
				maxSpeed = 12.0
			)
			// The medium derives IndexSlack from the fastest trace segment;
			// traces below cap leg speeds at maxSpeed, so the halo is known
			// up front and boundary placement can target it exactly.
			halo := rangeM + (maxSpeed*beacon + 1)

			// Straddling pairs: for every boundary of every worker count,
			// one node each side, oscillating across the line all run long.
			crossTrace := func(x0 float64) []mobility.TracePoint {
				y := 20 + rng.Float64()*(region.H-40)
				amp := 5 + rng.Float64()*20 // crossing amplitude, metres
				var tr []mobility.TracePoint
				at, side := 0.0, 1.0
				if rng.Intn(2) == 0 {
					side = -1
				}
				for at < simTime+10 {
					x := x0 + side*amp
					if x < 1 {
						x = 1
					}
					if x > region.W-1 {
						x = region.W - 1
					}
					tr = append(tr, mobility.TracePoint{T: at, P: geom.Pt(x, y)})
					at += (amp*2)/maxSpeed + 0.5 + rng.Float64()*2
					side = -side
				}
				return tr
			}

			var traces [][]mobility.TracePoint
			for _, workers := range workerSet[1:] {
				for _, b := range stripeBoundaries(region.W, halo, workers) {
					traces = append(traces, crossTrace(b-2), crossTrace(b+2))
				}
			}
			pairs := len(traces) / 2
			if pairs == 0 {
				t.Skip("region too narrow for any stripe boundary at this halo")
			}
			// Background nodes: random waypoint-ish traces filling the field
			// so broadcast neighborhoods are dense enough to shard.
			bg := 30 + rng.Intn(20)
			for i := 0; i < bg; i++ {
				var tr []mobility.TracePoint
				p := geom.Pt(1+rng.Float64()*(region.W-2), 1+rng.Float64()*(region.H-2))
				at := 0.0
				for at < simTime+10 {
					tr = append(tr, mobility.TracePoint{T: at, P: p})
					q := geom.Pt(1+rng.Float64()*(region.W-2), 1+rng.Float64()*(region.H-2))
					at += p.Dist(q)/(2+rng.Float64()*(maxSpeed-2)) + 0.1
					p = q
				}
				tr = append(tr, mobility.TracePoint{T: at, P: p})
				traces = append(traces, tr)
			}

			n := len(traces)
			var traffic []sim.TrafficItem
			// Boundary-straddling workload: each pair member sends to the
			// node on the other side of its line, repeatedly.
			for p := 0; p < pairs; p++ {
				a, b := 2*p, 2*p+1
				for k := 0; k < 3; k++ {
					at := 1 + rng.Float64()*(simTime-10)
					traffic = append(traffic, sim.TrafficItem{Src: a, Dst: b, At: at})
					traffic = append(traffic, sim.TrafficItem{Src: b, Dst: a, At: at + rng.Float64()})
				}
			}
			// Plus cross-field background traffic.
			for k := 0; k < 15; k++ {
				src := rng.Intn(n)
				dst := rng.Intn(n - 1)
				if dst >= src {
					dst++
				}
				traffic = append(traffic, sim.TrafficItem{Src: src, Dst: dst, At: 1 + rng.Float64()*(simTime-10)})
			}

			s := sim.Scenario{
				Name:           fmt.Sprintf("shard-boundary-%d", trial),
				Seed:           int64(trial)*131 + 7,
				N:              n,
				Range:          rangeM,
				SimTime:        simTime,
				Region:         region,
				Mobility:       sim.MobilityTrace,
				Traces:         traces,
				PayloadBits:    1000 * 8,
				BeaconInterval: beacon,
				NeighborExpiry: 2.5,
				Traffic:        traffic,
			}

			run := func(parallelism int, disable, epi bool, thr *shard.Thresholds) ([]deliveryRec, metrics.Report) {
				var factory sim.ProtocolFactory
				var err error
				if epi {
					factory, err = epidemic.New(epidemic.DefaultConfig())
				} else {
					factory, err = core.New(core.DefaultConfig())
				}
				if err != nil {
					t.Fatal(err)
				}
				sc := s
				sc.Parallelism = parallelism
				sc.DisableSharding = disable
				sc.ForkThresholds = thr
				w, err := sim.NewWorld(sc, factory)
				if err != nil {
					t.Fatal(err)
				}
				var log []deliveryRec
				w.Collector().SetHooks(metrics.Hooks{
					Delivered: func(id dtn.MessageID, _, at float64, dst, hops int, first bool) {
						log = append(log, deliveryRec{id: id, at: at, dst: dst, hops: hops, first: first})
					},
				})
				return log, w.Run()
			}
			check := func(label string, workers int, epi bool, thr *shard.Thresholds,
				serialLog []deliveryRec, serialRep metrics.Report) {
				t.Helper()
				shardLog, shardRep := run(workers, false, epi, thr)
				if !reflect.DeepEqual(serialLog, shardLog) {
					t.Fatalf("%s parallelism=%d delivered-frame log diverged (%d vs %d records)",
						label, workers, len(shardLog), len(serialLog))
				}
				if !reflect.DeepEqual(serialRep, shardRep) {
					t.Fatalf("%s parallelism=%d report diverged:\n  serial:  %+v\n  sharded: %+v",
						label, workers, serialRep, shardRep)
				}
			}

			// All-zero thresholds force every parallel plane — reception,
			// batched beacons, the bulk reindex, anti-entropy diffs — to
			// fork on every batch, so boundary crossings hit the parallel
			// code even where the calibrated thresholds would stay inline.
			forceFork := &shard.Thresholds{}

			serialLog, serialRep := run(0, true, false, nil)
			delivered += serialRep.Delivered
			for _, workers := range workerSet {
				check("glr", workers, false, nil, serialLog, serialRep)
			}
			for _, workers := range []int{2, 8} {
				check("glr/fork-always", workers, false, forceFork, serialLog, serialRep)
			}

			// The epidemic protocol drives the anti-entropy diff plane,
			// which GLR never touches; its boundary-straddling exchanges
			// must shard identically too.
			epiLog, epiRep := run(0, true, true, nil)
			delivered += epiRep.Delivered
			for _, workers := range []int{2, 8} {
				check("epidemic/fork-always", workers, true, forceFork, epiLog, epiRep)
			}
		})
	}
	if delivered == 0 {
		t.Fatal("boundary suite delivered nothing; the property test is vacuous")
	}
}

// TestShardedSpeedupDemo measures the point of the whole exercise: on a
// multi-core host, a dense 1000-node world must step faster sharded than
// serial. Skipped on small hosts and in -short runs — the byte-identity
// guarantee is covered by the equivalence tests; this one is about wall
// clock only.
func TestShardedSpeedupDemo(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock demo; skipped in -short")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("needs >= 4 CPUs to demonstrate a speedup, have %d", runtime.NumCPU())
	}
	s := sim.DefaultScenario(100)
	s.Name = "sharded-speedup"
	s.N = 1000
	s.Region = mobility.Region{W: 3000, H: 1000}
	s.SimTime = 12
	s.Traffic = sim.UniformTraffic(s.N, 200, 20, 9)

	run := func(disable bool) (time.Duration, metrics.Report) {
		factory, err := core.New(core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		sc := s
		sc.DisableSharding = disable
		w, err := sim.NewWorld(sc, factory)
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		rep := w.Run()
		return time.Since(start), rep
	}
	serialT, serialRep := run(true)
	shardT, shardRep := run(false)
	if !reflect.DeepEqual(serialRep, shardRep) {
		t.Fatalf("sharded report diverged from serial:\n  serial:  %+v\n  sharded: %+v", serialRep, shardRep)
	}
	speedup := float64(serialT) / float64(shardT)
	t.Logf("1000 nodes: serial %v, sharded %v (%.2fx, %d CPUs)", serialT, shardT, speedup, runtime.NumCPU())
	if speedup < 1.1 {
		t.Errorf("sharded engine not faster on a %d-CPU host: serial %v vs sharded %v",
			runtime.NumCPU(), serialT, shardT)
	}
}
