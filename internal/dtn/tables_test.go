package dtn

import (
	"reflect"
	"testing"

	"glr/internal/geom"
)

func TestLocationTableUpdate(t *testing.T) {
	lt := NewLocationTable()
	if !lt.Update(1, geom.Pt(5, 5), 10) {
		t.Fatal("first update should succeed")
	}
	if lt.Update(1, geom.Pt(6, 6), 9) {
		t.Error("older timestamp must not overwrite")
	}
	if lt.Update(1, geom.Pt(6, 6), 10) {
		t.Error("equal timestamp must not overwrite")
	}
	if !lt.Update(1, geom.Pt(6, 6), 11) {
		t.Error("fresher timestamp should overwrite")
	}
	e, ok := lt.Get(1)
	if !ok || !e.Pos.Eq(geom.Pt(6, 6)) || e.Time != 11 {
		t.Errorf("entry = %+v", e)
	}
	if _, ok := lt.Get(99); ok {
		t.Error("unknown id should miss")
	}
}

func TestLocationTableMerge(t *testing.T) {
	a := NewLocationTable()
	b := NewLocationTable()
	a.Update(1, geom.Pt(1, 1), 10)
	a.Update(2, geom.Pt(2, 2), 10)
	b.Update(1, geom.Pt(9, 9), 20) // fresher
	b.Update(3, geom.Pt(3, 3), 5)  // new node
	if n := a.Merge(b); n != 2 {
		t.Errorf("Merge updated %d rows, want 2", n)
	}
	if e, _ := a.Get(1); !e.Pos.Eq(geom.Pt(9, 9)) {
		t.Error("fresher entry should win on merge")
	}
	if e, _ := a.Get(2); !e.Pos.Eq(geom.Pt(2, 2)) {
		t.Error("unrelated entry should survive")
	}
	if got := a.IDs(); !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Errorf("IDs = %v", got)
	}
	if a.Len() != 3 {
		t.Errorf("Len = %d", a.Len())
	}
}

func TestNeighborTableObserveExpire(t *testing.T) {
	nt := NewNeighborTable()
	nt.Observe(NeighborInfo{ID: 1, Pos: geom.Pt(1, 0), LastSeen: 10})
	nt.Observe(NeighborInfo{ID: 2, Pos: geom.Pt(2, 0), LastSeen: 20})
	nt.Observe(NeighborInfo{ID: 3, Pos: geom.Pt(3, 0), LastSeen: 30})
	if nt.Len() != 3 {
		t.Fatalf("Len = %d", nt.Len())
	}
	gone := nt.Expire(20) // rows with LastSeen ≤ 20
	if !reflect.DeepEqual(gone, []int{1, 2}) {
		t.Errorf("expired %v, want [1 2]", gone)
	}
	if nt.Len() != 1 {
		t.Errorf("Len after expire = %d", nt.Len())
	}
	if _, ok := nt.Get(3); !ok {
		t.Error("fresh row should survive")
	}
	nt.Remove(3)
	if nt.Len() != 0 {
		t.Error("Remove should drop the row")
	}
}

func TestNeighborTableRefresh(t *testing.T) {
	nt := NewNeighborTable()
	nt.Observe(NeighborInfo{ID: 1, Pos: geom.Pt(1, 0), LastSeen: 10})
	nt.Observe(NeighborInfo{ID: 1, Pos: geom.Pt(5, 0), LastSeen: 15})
	r, _ := nt.Get(1)
	if !r.Pos.Eq(geom.Pt(5, 0)) || r.LastSeen != 15 {
		t.Errorf("row not refreshed: %+v", r)
	}
	if nt.Len() != 1 {
		t.Error("refresh must not duplicate rows")
	}
}

func TestNeighborTableSnapshotSorted(t *testing.T) {
	nt := NewNeighborTable()
	for _, id := range []int{5, 1, 3} {
		nt.Observe(NeighborInfo{ID: id, LastSeen: 1})
	}
	snap := nt.Snapshot()
	if len(snap) != 3 || snap[0].ID != 1 || snap[1].ID != 3 || snap[2].ID != 5 {
		t.Errorf("snapshot not sorted: %+v", snap)
	}
}

func TestTwoHopPoints(t *testing.T) {
	nt := NewNeighborTable()
	nt.Observe(NeighborInfo{
		ID: 1, Pos: geom.Pt(10, 0), LastSeen: 1,
		Neighbors: []NeighborNeighbor{
			{ID: 2, Pos: geom.Pt(20, 0)},
			{ID: 0, Pos: geom.Pt(0, 0)}, // self appears in neighbor's list
		},
	})
	nt.Observe(NeighborInfo{
		ID: 3, Pos: geom.Pt(0, 10), LastSeen: 1,
		Neighbors: []NeighborNeighbor{
			{ID: 2, Pos: geom.Pt(20, 0)}, // duplicate two-hop
			{ID: 4, Pos: geom.Pt(0, 20)},
		},
	})
	ids, pts := nt.TwoHopPoints(0, geom.Pt(0, 0))
	if len(ids) != len(pts) {
		t.Fatal("parallel slices must align")
	}
	if ids[0] != 0 || !pts[0].Eq(geom.Pt(0, 0)) {
		t.Fatal("self must come first")
	}
	want := map[int]bool{0: true, 1: true, 2: true, 3: true, 4: true}
	got := map[int]bool{}
	for _, id := range ids {
		if got[id] {
			t.Fatalf("duplicate id %d in two-hop set", id)
		}
		got[id] = true
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("two-hop ids = %v, want %v", got, want)
	}
}

func TestTwoHopPointsEmpty(t *testing.T) {
	nt := NewNeighborTable()
	ids, pts := nt.TwoHopPoints(7, geom.Pt(1, 2))
	if len(ids) != 1 || ids[0] != 7 || !pts[0].Eq(geom.Pt(1, 2)) {
		t.Error("empty table should yield only self")
	}
}
