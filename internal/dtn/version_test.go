package dtn

import (
	"reflect"
	"testing"
)

func TestBufferVersionBumpsOnInsertOnly(t *testing.T) {
	b := NewBuffer(0)
	v0 := b.Version()
	b.Add(msg(0, 1))
	if b.Version() != v0+1 {
		t.Error("insert should bump version")
	}
	b.Add(msg(0, 1)) // merge, not insert
	if b.Version() != v0+1 {
		t.Error("merge must not bump version")
	}
	b.Remove(MessageID{0, 1})
	if b.Version() != v0+1 {
		t.Error("removal must not bump version")
	}
	b.Add(msg(0, 1)) // re-insert
	if b.Version() != v0+2 {
		t.Error("re-insert should bump version")
	}
}

func TestInsertedSince(t *testing.T) {
	b := NewBuffer(0)
	b.Add(msg(0, 1))
	v1 := b.Version()
	b.Add(msg(0, 2))
	b.Add(msg(0, 3))
	got := b.InsertedSince(v1)
	want := []MessageID{{0, 2}, {0, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("InsertedSince = %v, want %v", got, want)
	}
	if got := b.InsertedSince(b.Version()); len(got) != 0 {
		t.Errorf("nothing inserted since current version, got %v", got)
	}
	if got := b.InsertedSince(0); len(got) != 3 {
		t.Errorf("InsertedSince(0) = %v, want all 3", got)
	}
}

func TestInsertedSinceSkipsEvicted(t *testing.T) {
	b := NewBuffer(2)
	b.Add(msg(0, 1))
	b.Add(msg(0, 2))
	b.Add(msg(0, 3)) // evicts m0.1
	got := b.InsertedSince(0)
	want := []MessageID{{0, 2}, {0, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("InsertedSince must skip evicted ids: %v", got)
	}
}

func TestInsertedSinceDedupesReinsertions(t *testing.T) {
	b := NewBuffer(0)
	b.Add(msg(0, 1))
	b.Remove(MessageID{0, 1})
	b.Add(msg(0, 1))
	got := b.InsertedSince(0)
	if len(got) != 1 || got[0] != (MessageID{0, 1}) {
		t.Errorf("re-inserted id should appear once: %v", got)
	}
}

func TestCustodyReturnToStore(t *testing.T) {
	c := NewCustodyStore(0)
	m := msg(1, 1)
	c.Add(m)
	if c.ReturnToStore(m.ID) != nil {
		t.Error("ReturnToStore of a non-cached message should be nil")
	}
	c.MarkSent(m.ID, 5)
	got := c.ReturnToStore(m.ID)
	if got != m {
		t.Fatal("ReturnToStore should move the cached message back")
	}
	if c.StoreLen() != 1 || c.CacheLen() != 0 {
		t.Error("message should be back in the Store")
	}
	// The old send timestamp must be gone: an immediate expire sweep
	// with a late deadline must not double-move anything.
	if moved := c.ExpireCache(100); len(moved) != 0 {
		t.Error("nothing should remain cached")
	}
}

// TestInsLogCompaction drives heavy insert/evict churn through a bounded
// buffer and asserts (a) the insertion log stays bounded instead of
// growing with total insertions, and (b) InsertedSince membership stays
// exact for every version cut, including ver 0 from a never-synced peer.
func TestInsLogCompaction(t *testing.T) {
	b := NewBuffer(8)
	versions := []uint64{0}
	for i := 0; i < 5000; i++ {
		b.Add(msg(i%40, i/40)) // id reuse across evictions
		if i%13 == 0 {
			b.Remove(MessageID{Src: i % 40, Seq: i / 40})
		}
		if i%97 == 0 {
			versions = append(versions, b.Version())
		}
	}
	if n := len(b.insLog); n > 64+2*b.Len()+1 {
		t.Fatalf("insertion log grew to %d records for %d held messages", n, b.Len())
	}
	for _, v := range versions {
		got := map[MessageID]bool{}
		for _, id := range b.InsertedSince(v) {
			if got[id] {
				t.Fatalf("duplicate id %v in InsertedSince(%d)", id, v)
			}
			got[id] = true
			if !b.Has(id) {
				t.Fatalf("InsertedSince(%d) returned evicted id %v", v, id)
			}
		}
	}
	// Ver 0 must still advertise every held message.
	if n := len(b.InsertedSince(0)); n != b.Len() {
		t.Fatalf("InsertedSince(0) = %d ids, buffer holds %d", n, b.Len())
	}
}
