package dtn

import (
	"testing"

	"glr/internal/geom"
)

func TestTreeFlags(t *testing.T) {
	f := FlagMax | FlagMid
	if !f.Has(FlagMax) || !f.Has(FlagMid) || f.Has(FlagMin) {
		t.Error("Has misbehaves")
	}
	if !f.Has(FlagMax | FlagMid) {
		t.Error("Has should accept multi-bit queries")
	}
	if f.Count() != 2 {
		t.Errorf("Count = %d, want 2", f.Count())
	}
	if TreeFlags(0).Count() != 0 {
		t.Error("empty flags should count 0")
	}
}

func TestTreeFlagsString(t *testing.T) {
	tests := []struct {
		f    TreeFlags
		want string
	}{
		{0, "none"},
		{FlagMax, "max"},
		{FlagMax | FlagMin | FlagMid, "max|min|mid"},
		{FlagMid2 | FlagMid3, "mid2|mid3"},
	}
	for _, tt := range tests {
		if got := tt.f.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", tt.f, got, tt.want)
		}
	}
}

func TestAllTreeFlags(t *testing.T) {
	tests := []struct {
		n    int
		want int
	}{{0, 1}, {1, 1}, {3, 3}, {5, 5}, {9, 5}}
	for _, tt := range tests {
		got := AllTreeFlags(tt.n)
		if len(got) != tt.want {
			t.Errorf("AllTreeFlags(%d) returned %d flags, want %d", tt.n, len(got), tt.want)
		}
	}
	three := AllTreeFlags(3)
	if three[0] != FlagMax || three[1] != FlagMin || three[2] != FlagMid {
		t.Error("canonical order should be max, min, mid")
	}
}

func TestMessageClone(t *testing.T) {
	m := &Message{ID: MessageID{Src: 1, Seq: 2}, Dst: 3, Flags: FlagMax}
	c := m.Clone()
	c.Flags = FlagMin
	c.Hops = 7
	if m.Flags != FlagMax || m.Hops != 0 {
		t.Error("mutating a clone must not affect the original")
	}
}

func TestUpdateDstLoc(t *testing.T) {
	m := &Message{DstLoc: geom.Pt(1, 1), DstLocTime: 10, DstLocKnown: true}
	if m.UpdateDstLoc(geom.Pt(9, 9), 5, true) {
		t.Error("older estimate must not overwrite")
	}
	if m.UpdateDstLoc(geom.Pt(9, 9), 10, true) {
		t.Error("equal-time estimate must not overwrite")
	}
	if !m.UpdateDstLoc(geom.Pt(9, 9), 11, true) {
		t.Error("fresher estimate must overwrite")
	}
	if !m.DstLoc.Eq(geom.Pt(9, 9)) || m.DstLocTime != 11 {
		t.Errorf("estimate not adopted: %v @ %v", m.DstLoc, m.DstLocTime)
	}
	if m.UpdateDstLoc(geom.Pt(0, 0), 99, false) {
		t.Error("unknown estimate must never overwrite")
	}
}

func TestUpdateDstLocFromUnknown(t *testing.T) {
	m := &Message{DstLoc: geom.Pt(5, 5), DstLocTime: 100, DstLocKnown: false}
	// A known estimate beats an unknown placeholder even if its timestamp
	// is older than the placeholder's.
	if !m.UpdateDstLoc(geom.Pt(2, 2), 1, true) {
		t.Error("known estimate should replace unknown placeholder")
	}
	if !m.DstLocKnown {
		t.Error("message should now know its destination location")
	}
}

func TestMessageIDString(t *testing.T) {
	id := MessageID{Src: 4, Seq: 17}
	if got := id.String(); got != "m4.17" {
		t.Errorf("String = %q", got)
	}
}
