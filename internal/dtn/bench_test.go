package dtn

import (
	"math/rand"
	"testing"

	"glr/internal/geom"
)

// benchNeighborTable measures the steady-state per-beacon table work of
// one node: refresh a neighbor row (with its advertised list), expire,
// and rebuild the 2-hop point set — the sequence the simulator runs for
// every received beacon plus route check. The dense backend should do
// this allocation-free once warm.
func benchNeighborTable(b *testing.B, dense bool) {
	const n = 1000 // world size
	const degree = 24
	rng := rand.New(rand.NewSource(17))

	var t *NeighborTable
	if dense {
		t = NewDenseNeighborTable(n)
	} else {
		t = NewNeighborTable()
	}

	// Steady-state neighborhood: `degree` live neighbors, each
	// advertising `degree` of its own.
	nbrIDs := rng.Perm(n)[:degree]
	advs := make([][]NeighborNeighbor, degree)
	for i := range advs {
		advs[i] = make([]NeighborNeighbor, degree)
		for j := range advs[i] {
			advs[i][j] = NeighborNeighbor{ID: rng.Intn(n), Pos: geom.Pt(rng.Float64()*1000, rng.Float64()*1000)}
		}
	}
	for i, id := range nbrIDs {
		t.Observe(NeighborInfo{ID: id, Pos: geom.Pt(float64(id), 0), LastSeen: 0, Neighbors: advs[i]})
	}

	var ids []int
	var pts []geom.Point
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := float64(i)
		k := i % degree
		t.Observe(NeighborInfo{ID: nbrIDs[k], Pos: geom.Pt(float64(i%97), 1), LastSeen: now, Neighbors: advs[k]})
		t.Expire(now - 1e9) // nothing expires; measures the live scan
		ids, pts = t.AppendTwoHop(ids[:0], pts[:0], n, geom.Pt(0, 0))
	}
	_ = ids
	_ = pts
}

func BenchmarkNeighborTableDense(b *testing.B) { benchNeighborTable(b, true) }

func BenchmarkNeighborTableMap(b *testing.B) { benchNeighborTable(b, false) }
