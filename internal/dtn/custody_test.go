package dtn

import (
	"math/rand"
	"testing"
)

func TestCustodyLifecycle(t *testing.T) {
	c := NewCustodyStore(10)
	m := msg(1, 1)
	if dropped, ok := c.Add(m); dropped != nil || !ok {
		t.Fatal("add should succeed without drops")
	}
	if c.StoreLen() != 1 || c.CacheLen() != 0 || c.Total() != 1 {
		t.Fatalf("layout after add: store=%d cache=%d", c.StoreLen(), c.CacheLen())
	}
	if !c.MarkSent(m.ID, 5.0) {
		t.Fatal("MarkSent should find the stored message")
	}
	if c.StoreLen() != 0 || c.CacheLen() != 1 {
		t.Fatal("message should have moved to cache")
	}
	if got := c.Ack(m.ID); got != m {
		t.Fatal("Ack should release the cached message")
	}
	if c.Total() != 0 {
		t.Fatal("custody complete: nothing should be held")
	}
}

func TestCustodyAckUnknown(t *testing.T) {
	c := NewCustodyStore(0)
	if c.Ack(MessageID{9, 9}) != nil {
		t.Error("ack of unknown message should return nil")
	}
	if c.MarkSent(MessageID{9, 9}, 0) {
		t.Error("MarkSent of unknown message should report false")
	}
}

func TestCustodyExpireCache(t *testing.T) {
	c := NewCustodyStore(0)
	a, b := msg(1, 1), msg(1, 2)
	c.Add(a)
	c.Add(b)
	c.MarkSent(a.ID, 1.0)
	c.MarkSent(b.ID, 5.0)
	moved := c.ExpireCache(2.0) // only a's send time ≤ 2
	if len(moved) != 1 || moved[0] != a {
		t.Fatalf("moved = %v, want [a]", moved)
	}
	if c.StoreLen() != 1 || c.CacheLen() != 1 {
		t.Fatal("a back in store, b still cached")
	}
	// Re-send a and ack it: timeout bookkeeping must have been refreshed.
	c.MarkSent(a.ID, 6.0)
	if got := c.ExpireCache(2.0); len(got) != 0 {
		t.Fatal("resent message must not expire against its old send time")
	}
	if c.Ack(a.ID) != a {
		t.Fatal("ack after resend should work")
	}
}

func TestCustodyCacheDroppedFirst(t *testing.T) {
	c := NewCustodyStore(3)
	m1, m2, m3 := msg(0, 1), msg(0, 2), msg(0, 3)
	c.Add(m1)
	c.Add(m2)
	c.Add(m3)
	c.MarkSent(m2.ID, 1.0) // cache: m2; store: m1, m3
	dropped, _ := c.Add(msg(0, 4))
	if dropped == nil || dropped.ID != m2.ID {
		t.Fatalf("cache entry should be dropped first, got %v", dropped)
	}
	if c.Total() != 3 || c.CacheLen() != 0 {
		t.Fatalf("after drop: total=%d cache=%d", c.Total(), c.CacheLen())
	}
}

func TestCustodyStoreDroppedWhenCacheEmpty(t *testing.T) {
	c := NewCustodyStore(2)
	m1, m2 := msg(0, 1), msg(0, 2)
	c.Add(m1)
	c.Add(m2)
	dropped, _ := c.Add(msg(0, 3))
	if dropped == nil || dropped.ID != m1.ID {
		t.Fatalf("oldest store entry should drop, got %v", dropped)
	}
}

func TestCustodyMergeDuplicates(t *testing.T) {
	c := NewCustodyStore(1)
	m := msg(1, 1)
	m.Flags = FlagMax
	c.Add(m)
	dup := msg(1, 1)
	dup.Flags = FlagMid
	dropped, ok := c.Add(dup)
	if dropped != nil || !ok {
		t.Fatal("duplicate merge must not drop anything")
	}
	if got := c.Get(m.ID).Flags; got != FlagMax|FlagMid {
		t.Errorf("flags = %v, want max|mid", got)
	}
	// Also merge into a cached copy.
	c.MarkSent(m.ID, 1)
	dup2 := msg(1, 1)
	dup2.Flags = FlagMin
	c.Add(dup2)
	if got := c.Get(m.ID).Flags; !got.Has(FlagMin) {
		t.Error("merge should reach cached copies too")
	}
	if c.Total() != 1 {
		t.Errorf("Total = %d, want 1", c.Total())
	}
}

func TestCustodyUnlimited(t *testing.T) {
	c := NewCustodyStore(0)
	for i := 0; i < 500; i++ {
		if dropped, _ := c.Add(msg(0, i)); dropped != nil {
			t.Fatal("unlimited custody store must not drop")
		}
	}
	if c.Total() != 500 {
		t.Errorf("Total = %d", c.Total())
	}
	if c.DropAll() != 500 {
		t.Error("DropAll should report the held count")
	}
	if c.Total() != 0 {
		t.Error("DropAll should empty the store")
	}
}

// Property: Total never exceeds capacity; Store/Cache membership is
// disjoint; every added message is held, dropped, or acked.
func TestCustodyInvariantsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		capn := 1 + rng.Intn(8)
		c := NewCustodyStore(capn)
		live := make(map[MessageID]bool)
		for op := 0; op < 300; op++ {
			id := MessageID{Src: 0, Seq: rng.Intn(20)}
			switch rng.Intn(4) {
			case 0:
				dropped, _ := c.Add(&Message{ID: id})
				live[id] = true
				if dropped != nil {
					delete(live, dropped.ID)
				}
			case 1:
				c.MarkSent(id, float64(op))
			case 2:
				if c.Ack(id) != nil {
					delete(live, id)
				}
			case 3:
				c.ExpireCache(float64(op) - 10)
			}
			if capn > 0 && c.Total() > capn {
				t.Fatalf("capacity violated: %d > %d", c.Total(), capn)
			}
			if c.StoreLen()+c.CacheLen() != c.Total() {
				t.Fatal("store/cache accounting inconsistent")
			}
			for id := range live {
				if !c.Has(id) {
					t.Fatalf("live message %v lost", id)
				}
			}
			if len(live) != c.Total() {
				t.Fatalf("live set %d != total %d", len(live), c.Total())
			}
		}
	}
}
