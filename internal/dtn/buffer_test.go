package dtn

import (
	"math/rand"
	"testing"
)

func msg(src, seq int) *Message {
	return &Message{ID: MessageID{Src: src, Seq: seq}}
}

func TestBufferFIFOEviction(t *testing.T) {
	b := NewBuffer(3)
	for i := 0; i < 3; i++ {
		if ev, ok := b.Add(msg(0, i)); ev != nil || !ok {
			t.Fatalf("unexpected eviction at %d", i)
		}
	}
	ev, ok := b.Add(msg(0, 3))
	if !ok || ev == nil || ev.ID != (MessageID{0, 0}) {
		t.Fatalf("expected eviction of oldest, got %v", ev)
	}
	if b.Len() != 3 || b.Has(MessageID{0, 0}) {
		t.Error("buffer should hold the 3 newest messages")
	}
	want := []MessageID{{0, 1}, {0, 2}, {0, 3}}
	for i, id := range b.IDs() {
		if id != want[i] {
			t.Errorf("order[%d] = %v, want %v", i, id, want[i])
		}
	}
}

func TestBufferUnlimited(t *testing.T) {
	b := NewBuffer(0)
	for i := 0; i < 1000; i++ {
		if ev, _ := b.Add(msg(0, i)); ev != nil {
			t.Fatal("unlimited buffer must never evict")
		}
	}
	if b.Len() != 1000 {
		t.Errorf("Len = %d, want 1000", b.Len())
	}
	if NewBuffer(-5).Capacity() != 0 {
		t.Error("negative capacity should normalize to unlimited")
	}
}

func TestBufferMergeFlags(t *testing.T) {
	b := NewBuffer(2)
	m1 := msg(1, 1)
	m1.Flags = FlagMax
	b.Add(m1)
	m2 := msg(1, 1)
	m2.Flags = FlagMin
	ev, ok := b.Add(m2)
	if ev != nil || !ok {
		t.Fatal("merging a duplicate must not evict")
	}
	if b.Len() != 1 {
		t.Fatalf("Len = %d, want 1 after merge", b.Len())
	}
	if got := b.Get(MessageID{1, 1}).Flags; got != FlagMax|FlagMin {
		t.Errorf("merged flags = %v, want max|min", got)
	}
}

func TestBufferRemove(t *testing.T) {
	b := NewBuffer(5)
	b.Add(msg(0, 0))
	b.Add(msg(0, 1))
	if m := b.Remove(MessageID{0, 0}); m == nil {
		t.Fatal("remove should return the message")
	}
	if b.Remove(MessageID{0, 0}) != nil {
		t.Error("double remove should return nil")
	}
	if b.Len() != 1 {
		t.Errorf("Len = %d, want 1", b.Len())
	}
}

func TestBufferRemoveReAddKeepsFIFOExact(t *testing.T) {
	b := NewBuffer(3)
	b.Add(msg(0, 0))
	b.Add(msg(0, 1))
	b.Add(msg(0, 2))
	// Re-adding 0 after removal makes it the NEWEST.
	b.Remove(MessageID{0, 0})
	b.Add(msg(0, 0))
	ev, _ := b.Add(msg(0, 3))
	if ev == nil || ev.ID != (MessageID{0, 1}) {
		t.Errorf("eviction order wrong after re-add: evicted %v, want m0.1", ev)
	}
}

func TestBufferMessagesOrder(t *testing.T) {
	b := NewBuffer(0)
	for i := 0; i < 10; i++ {
		b.Add(msg(0, i))
	}
	b.Remove(MessageID{0, 5})
	msgs := b.Messages()
	if len(msgs) != 9 {
		t.Fatalf("got %d messages", len(msgs))
	}
	prev := -1
	for _, m := range msgs {
		if m.ID.Seq <= prev {
			t.Fatal("messages not in insertion order")
		}
		prev = m.ID.Seq
	}
}

// Property: buffer never exceeds capacity, and total added = held +
// evicted + removed.
func TestBufferConservationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 50; trial++ {
		capn := 1 + rng.Intn(10)
		b := NewBuffer(capn)
		added, evicted, removed, merged := 0, 0, 0, 0
		for op := 0; op < 200; op++ {
			id := MessageID{Src: 0, Seq: rng.Intn(30)}
			if rng.Intn(2) == 0 {
				if b.Has(id) {
					merged++
				} else {
					added++
				}
				if ev, _ := b.Add(&Message{ID: id}); ev != nil {
					evicted++
				}
			} else if b.Remove(id) != nil {
				removed++
			}
			if b.Len() > capn {
				t.Fatalf("buffer exceeded capacity: %d > %d", b.Len(), capn)
			}
		}
		if added != b.Len()+evicted+removed {
			t.Fatalf("conservation violated: added=%d held=%d evicted=%d removed=%d",
				added, b.Len(), evicted, removed)
		}
	}
}

func TestSummaryVector(t *testing.T) {
	b := NewBuffer(0)
	b.Add(msg(1, 1))
	b.Add(msg(2, 2))
	sv := b.Summary()
	if !sv.Has(MessageID{1, 1}) || !sv.Has(MessageID{2, 2}) || sv.Has(MessageID{3, 3}) {
		t.Error("summary vector content wrong")
	}
	other := make(SummaryVector)
	other.Add(MessageID{2, 2})
	other.Add(MessageID{9, 9})
	missing := sv.Missing(other)
	if len(missing) != 1 || missing[0] != (MessageID{9, 9}) {
		t.Errorf("Missing = %v, want [m9.9]", missing)
	}
	if got := other.Missing(sv); len(got) != 1 || got[0] != (MessageID{1, 1}) {
		t.Errorf("reverse Missing = %v, want [m1.1]", got)
	}
}
