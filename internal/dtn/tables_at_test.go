package dtn

import (
	"math/rand"
	"reflect"
	"testing"

	"glr/internal/geom"
)

// TestAppendTwoHopAtMatchesExpire: on both backends, AppendTwoHopAt must
// emit exactly what Expire(deadline) followed by AppendTwoHop would —
// same ids, same positions, same order — while leaving the table
// untouched. This is the contract the speculative spanner path relies on
// to preview a future route check's view.
func TestAppendTwoHopAtMatchesExpire(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const idSpace = 40
	for trial := 0; trial < 60; trial++ {
		// Two identical tables per backend: one previews with
		// AppendTwoHopAt, the other actually expires.
		tables := []*NeighborTable{
			NewNeighborTable(), NewNeighborTable(),
			NewDenseNeighborTable(idSpace), NewDenseNeighborTable(idSpace),
		}
		now := 0.0
		for step := 0; step < 30+rng.Intn(40); step++ {
			now += rng.Float64()
			info := NeighborInfo{
				ID:       rng.Intn(idSpace),
				Pos:      geom.Pt(rng.Float64()*100, rng.Float64()*100),
				LastSeen: now,
			}
			for n := rng.Intn(4); n > 0; n-- {
				info.Neighbors = append(info.Neighbors, NeighborNeighbor{
					ID:  rng.Intn(idSpace),
					Pos: geom.Pt(rng.Float64()*100, rng.Float64()*100),
				})
			}
			for _, tbl := range tables {
				tbl.Observe(info)
			}
		}
		deadline := now - rng.Float64()*3
		self := idSpace + 1
		selfPos := geom.Pt(3, 4)
		for b := 0; b < 4; b += 2 {
			before, beforePts := tables[b].AppendTwoHop(nil, nil, self, selfPos)
			preview, previewPts := tables[b].AppendTwoHopAt(nil, nil, self, selfPos, deadline)
			tables[b+1].Expire(deadline)
			want, wantPts := tables[b+1].AppendTwoHop(nil, nil, self, selfPos)
			if !reflect.DeepEqual(preview, want) || !reflect.DeepEqual(previewPts, wantPts) {
				t.Fatalf("trial %d backend %d: AppendTwoHopAt diverged from Expire+AppendTwoHop:\n  at:      %v\n  expired: %v",
					trial, b/2, preview, want)
			}
			// The preview must not have mutated the table: a plain
			// AppendTwoHop before and after agrees.
			after, afterPts := tables[b].AppendTwoHop(nil, nil, self, selfPos)
			if !reflect.DeepEqual(before, after) || !reflect.DeepEqual(beforePts, afterPts) {
				t.Fatalf("trial %d backend %d: AppendTwoHopAt mutated the table", trial, b/2)
			}
		}
	}
}
