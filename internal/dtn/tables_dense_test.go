package dtn

import (
	"math/rand"
	"reflect"
	"testing"

	"glr/internal/geom"
)

// checkTablesAgree asserts every observable output of the two backends
// matches for the current state.
func checkTablesAgree(t *testing.T, m, d *NeighborTable, idSpace int) {
	t.Helper()
	if m.Len() != d.Len() {
		t.Fatalf("Len: map %d, dense %d", m.Len(), d.Len())
	}
	if !neighborsEqual(m.Snapshot(), d.Snapshot()) {
		t.Fatalf("Snapshot mismatch:\nmap   %+v\ndense %+v", m.Snapshot(), d.Snapshot())
	}
	mi, mp := m.TwoHopPoints(idSpace, geom.Pt(1, 2))
	di, dp := d.TwoHopPoints(idSpace, geom.Pt(1, 2))
	if !reflect.DeepEqual(mi, di) || !reflect.DeepEqual(mp, dp) {
		t.Fatalf("TwoHopPoints mismatch:\nmap   %v %v\ndense %v %v", mi, mp, di, dp)
	}
	if !reflect.DeepEqual(m.AppendAdvertised(nil), d.AppendAdvertised(nil)) {
		t.Fatalf("AppendAdvertised mismatch")
	}
	for id := -1; id <= idSpace; id++ {
		mr, mok := m.Get(id)
		dr, dok := d.Get(id)
		if mok != dok {
			t.Fatalf("Get(%d) presence: map %v, dense %v", id, mok, dok)
		}
		if mok && !neighborRowEqual(mr, dr) {
			t.Fatalf("Get(%d): map %+v, dense %+v", id, mr, dr)
		}
	}
}

// neighborRowEqual compares rows treating nil and empty Neighbors as
// equal (the backends differ only in backing-array provenance).
func neighborRowEqual(a, b NeighborInfo) bool {
	if a.ID != b.ID || a.Pos != b.Pos || a.LastSeen != b.LastSeen {
		return false
	}
	if len(a.Neighbors) != len(b.Neighbors) {
		return false
	}
	for i := range a.Neighbors {
		if a.Neighbors[i] != b.Neighbors[i] {
			return false
		}
	}
	return true
}

func neighborsEqual(a, b []NeighborInfo) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !neighborRowEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

// TestNeighborTableDenseMapEquivalenceChurn drives all three backends
// through randomized Observe/Expire/Remove churn — neighbors expiring,
// re-appearing, and ids (and compact row slots) being reused across
// generations — asserting identical Snapshot/TwoHopPoints/Get results
// throughout.
func TestNeighborTableDenseMapEquivalenceChurn(t *testing.T) {
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)*2671 + 9))
		idSpace := 4 + rng.Intn(28)
		m := NewNeighborTable()
		d := NewDenseNeighborTable(idSpace)
		c := NewCompactNeighborTable()
		now := 0.0
		for step := 0; step < 300; step++ {
			now += rng.Float64()
			switch op := rng.Intn(10); {
			case op < 6: // observe a beacon (possibly an id re-appearing)
				id := rng.Intn(idSpace)
				adv := make([]NeighborNeighbor, rng.Intn(5))
				for i := range adv {
					adv[i] = NeighborNeighbor{
						ID:  rng.Intn(idSpace + 4), // ids beyond the pre-size too
						Pos: geom.Pt(rng.Float64()*100, rng.Float64()*100),
					}
				}
				info := NeighborInfo{
					ID:        id,
					Pos:       geom.Pt(rng.Float64()*100, rng.Float64()*100),
					LastSeen:  now,
					Neighbors: adv,
				}
				m.Observe(info)
				d.Observe(info)
				c.Observe(info)
			case op < 8: // expire stale rows
				deadline := now - rng.Float64()*3
				gm := append([]int(nil), m.Expire(deadline)...)
				gd := append([]int(nil), d.Expire(deadline)...)
				gc := append([]int(nil), c.Expire(deadline)...)
				if (!reflect.DeepEqual(gm, gd) || !reflect.DeepEqual(gm, gc)) &&
					(len(gm) > 0 || len(gd) > 0 || len(gc) > 0) {
					t.Fatalf("trial %d step %d: Expire map %v, dense %v, compact %v", trial, step, gm, gd, gc)
				}
			default: // remove one id
				id := rng.Intn(idSpace)
				m.Remove(id)
				d.Remove(id)
				c.Remove(id)
			}
			if step%17 == 0 {
				checkTablesAgree(t, m, d, idSpace+4)
				checkTablesAgree(t, m, c, idSpace+4)
			}
		}
		checkTablesAgree(t, m, d, idSpace+4)
		checkTablesAgree(t, m, c, idSpace+4)
	}
}

// TestNeighborTableRelabelInvariance asserts the dense backend is
// insensitive to id labels: relabeling every id through a random
// bijection relabels TwoHopPoints output without changing its geometry.
func TestNeighborTableRelabelInvariance(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)*577 + 3))
		n := 6 + rng.Intn(20)
		perm := rng.Perm(n) // bijection id -> perm[id]

		orig := NewDenseNeighborTable(n)
		rel := NewDenseNeighborTable(n)
		pos := make([]geom.Point, n)
		for id := range pos {
			pos[id] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
		}
		for step := 0; step < 60; step++ {
			id := rng.Intn(n - 1)
			adv := make([]NeighborNeighbor, rng.Intn(4))
			for i := range adv {
				nid := rng.Intn(n)
				adv[i] = NeighborNeighbor{ID: nid, Pos: pos[nid]}
			}
			info := NeighborInfo{ID: id, Pos: pos[id], LastSeen: float64(step)}
			info.Neighbors = adv
			orig.Observe(info)
			radv := make([]NeighborNeighbor, len(adv))
			for i, nn := range adv {
				radv[i] = NeighborNeighbor{ID: perm[nn.ID], Pos: nn.Pos}
			}
			rel.Observe(NeighborInfo{ID: perm[id], Pos: pos[id], LastSeen: float64(step), Neighbors: radv})
		}

		self := n - 1
		ids, pts := orig.TwoHopPoints(self, pos[self])
		rids, rpts := rel.TwoHopPoints(perm[self], pos[self])
		if len(ids) != len(rids) {
			t.Fatalf("trial %d: size %d vs %d", trial, len(ids), len(rids))
		}
		// Same id set under the bijection, and each id keeps its point.
		want := map[int]geom.Point{}
		for i, id := range ids {
			want[perm[id]] = pts[i]
		}
		for i, rid := range rids {
			p, ok := want[rid]
			if !ok || p != rpts[i] {
				t.Fatalf("trial %d: relabeled id %d missing or moved", trial, rid)
			}
		}
	}
}

// TestLocationTableDenseMapEquivalence churns both location-table
// backends with updates (stale and fresh), merges, and resets.
func TestLocationTableDenseMapEquivalence(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)*911 + 1))
		idSpace := 4 + rng.Intn(28)
		m := NewLocationTable()
		d := NewDenseLocationTable(idSpace)
		for step := 0; step < 300; step++ {
			id := rng.Intn(idSpace + 4)
			pos := geom.Pt(rng.Float64()*100, rng.Float64()*100)
			ts := rng.Float64() * 50 // deliberately non-monotone: stale updates
			if got, want := d.Update(id, pos, ts), m.Update(id, pos, ts); got != want {
				t.Fatalf("trial %d step %d: Update changed=%v, map %v", trial, step, got, want)
			}
		}
		if m.Len() != d.Len() {
			t.Fatalf("Len: map %d, dense %d", m.Len(), d.Len())
		}
		if !reflect.DeepEqual(m.IDs(), d.IDs()) {
			t.Fatalf("IDs: map %v, dense %v", m.IDs(), d.IDs())
		}
		for id := -1; id <= idSpace+4; id++ {
			me, mok := m.Get(id)
			de, dok := d.Get(id)
			if mok != dok || me != de {
				t.Fatalf("Get(%d): map %v %v, dense %v %v", id, me, mok, de, dok)
			}
		}
		// Cross-backend merges agree with map-to-map merges.
		sink1, sink2 := NewLocationTable(), NewDenseLocationTable(idSpace)
		if n1, n2 := sink1.Merge(d), sink2.Merge(m); n1 != n2 {
			t.Fatalf("Merge counts differ: %d vs %d", n1, n2)
		}
		if !reflect.DeepEqual(sink1.IDs(), sink2.IDs()) {
			t.Fatal("merged id sets differ")
		}
		d.Reset()
		if d.Len() != 0 {
			t.Fatal("Reset should empty the table")
		}
		if _, ok := d.Get(1); ok {
			t.Fatal("Reset must invalidate rows")
		}
	}
}

// TestDenseNeighborTableReset exercises reset on both row-array
// backends (dense: O(1) generation bump; compact: slot recycling): rows
// from before the reset must be invisible, and id reuse afterwards must
// behave like a fresh table.
func TestDenseNeighborTableReset(t *testing.T) {
	for name, d := range map[string]*NeighborTable{
		"dense":   NewDenseNeighborTable(4),
		"compact": NewCompactNeighborTable(),
	} {
		d.Observe(NeighborInfo{ID: 1, Pos: geom.Pt(1, 1), LastSeen: 5})
		d.Observe(NeighborInfo{ID: 2, Pos: geom.Pt(2, 2), LastSeen: 5})
		d.Reset()
		if d.Len() != 0 {
			t.Fatalf("%s: Len after reset = %d", name, d.Len())
		}
		if _, ok := d.Get(1); ok {
			t.Fatalf("%s: stale row visible after reset", name)
		}
		d.Observe(NeighborInfo{ID: 1, Pos: geom.Pt(9, 9), LastSeen: 7})
		r, ok := d.Get(1)
		if !ok || !r.Pos.Eq(geom.Pt(9, 9)) || len(r.Neighbors) != 0 {
			t.Fatalf("%s: reused id row = %+v, ok=%v", name, r, ok)
		}
		if ids := d.Expire(10); len(ids) != 1 || ids[0] != 1 {
			t.Fatalf("%s: Expire after reuse = %v", name, ids)
		}
	}
}
