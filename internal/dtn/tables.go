package dtn

import (
	"sort"

	"glr/internal/geom"
)

// LocationEntry is one row of a node's location table: where a node was
// last known to be, and when that knowledge originated (§2.3.1: "Each node
// keeps a table of other nodes' location information together with their
// IDs and time stamps").
type LocationEntry struct {
	Pos  geom.Point
	Time float64
}

// LocationTable maps node ids to their freshest known location. The zero
// value is not usable; create with NewLocationTable.
type LocationTable struct {
	entries map[int]LocationEntry
}

// NewLocationTable returns an empty table.
func NewLocationTable() *LocationTable {
	return &LocationTable{entries: make(map[int]LocationEntry)}
}

// Len returns the number of known nodes.
func (t *LocationTable) Len() int { return len(t.entries) }

// Update records pos for node id if the timestamp is fresher than the
// current entry. It reports whether the table changed.
func (t *LocationTable) Update(id int, pos geom.Point, time float64) bool {
	if cur, ok := t.entries[id]; ok && time <= cur.Time {
		return false
	}
	t.entries[id] = LocationEntry{Pos: pos, Time: time}
	return true
}

// Get returns the entry for id.
func (t *LocationTable) Get(id int) (LocationEntry, bool) {
	e, ok := t.entries[id]
	return e, ok
}

// Merge adopts every entry of other that is fresher than ours, returning
// the number of rows updated. This is the "location tables should be
// exchanged whenever two nodes meet" mechanism (the paper measures the
// lighter piggyback variant; Merge supports the full exchange).
func (t *LocationTable) Merge(other *LocationTable) int {
	n := 0
	for id, e := range other.entries {
		if t.Update(id, e.Pos, e.Time) {
			n++
		}
	}
	return n
}

// IDs returns the known node ids in ascending order.
func (t *LocationTable) IDs() []int {
	out := make([]int, 0, len(t.entries))
	for id := range t.entries {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// NeighborNeighbor is a (node, position) pair inside a beacon: one of the
// beaconing node's own 1-hop neighbors. Beacons carrying these give every
// listener its distance-2 neighborhood, matching "nodes collect distance
// two neighborhood information to construct LDTG in the experiments".
type NeighborNeighbor struct {
	ID  int
	Pos geom.Point
}

// NeighborInfo is one row of a node's neighbor table.
type NeighborInfo struct {
	ID        int
	Pos       geom.Point
	LastSeen  float64
	Neighbors []NeighborNeighbor // the neighbor's own 1-hop neighborhood
}

// NeighborTable tracks currently-audible neighbors with expiry, fed by
// periodic beacons. The zero value is not usable; create with
// NewNeighborTable.
type NeighborTable struct {
	rows map[int]NeighborInfo
}

// NewNeighborTable returns an empty table.
func NewNeighborTable() *NeighborTable {
	return &NeighborTable{rows: make(map[int]NeighborInfo)}
}

// Len returns the number of live rows.
func (t *NeighborTable) Len() int { return len(t.rows) }

// Observe inserts or refreshes a neighbor row.
func (t *NeighborTable) Observe(info NeighborInfo) {
	t.rows[info.ID] = info
}

// Get returns the row for id.
func (t *NeighborTable) Get(id int) (NeighborInfo, bool) {
	r, ok := t.rows[id]
	return r, ok
}

// Remove drops the row for id.
func (t *NeighborTable) Remove(id int) { delete(t.rows, id) }

// Expire drops every row last seen at or before deadline and returns the
// expired ids in ascending order.
func (t *NeighborTable) Expire(deadline float64) []int {
	var gone []int
	for id, r := range t.rows {
		if r.LastSeen <= deadline {
			gone = append(gone, id)
			delete(t.rows, id)
		}
	}
	sort.Ints(gone)
	return gone
}

// Snapshot returns all live rows sorted by id.
func (t *NeighborTable) Snapshot() []NeighborInfo {
	out := make([]NeighborInfo, 0, len(t.rows))
	for _, r := range t.rows {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// TwoHopPoints assembles the distance-≤2 neighborhood point set around a
// node at selfPos: the node itself, every live neighbor, and every
// neighbor-of-neighbor (deduplicated, excluding ids in exclude). It
// returns parallel slices of ids and positions with the node itself first.
// This is the input the GLR protocol triangulates.
func (t *NeighborTable) TwoHopPoints(selfID int, selfPos geom.Point) (ids []int, pts []geom.Point) {
	ids = append(ids, selfID)
	pts = append(pts, selfPos)
	seen := map[int]struct{}{selfID: {}}
	for _, r := range t.Snapshot() {
		if _, dup := seen[r.ID]; !dup {
			seen[r.ID] = struct{}{}
			ids = append(ids, r.ID)
			pts = append(pts, r.Pos)
		}
		for _, nn := range r.Neighbors {
			if _, dup := seen[nn.ID]; dup {
				continue
			}
			seen[nn.ID] = struct{}{}
			ids = append(ids, nn.ID)
			pts = append(pts, nn.Pos)
		}
	}
	return ids, pts
}
