package dtn

import (
	"sort"

	"glr/internal/geom"
)

// The neighbor and location tables come in multiple storage backends
// sharing one API:
//
//   - The map backend (NewLocationTable/NewNeighborTable) keys rows by
//     node id in a Go map. It handles arbitrary sparse id spaces and is
//     the reference implementation.
//   - The dense backend (NewDenseLocationTable/NewDenseNeighborTable)
//     stores rows in per-world id-indexed arrays with generation stamps:
//     a row is live iff its stamp equals the table generation, so upsert
//     and whole-table reset are O(1) and no hashing or per-row boxing
//     happens on the beacon hot path. A sorted live-id list keeps
//     iteration order identical to the map backend's sorted outputs.
//   - The compact backend (NewCompactNeighborTable) keeps the dense
//     backend's hot paths — row-owned storage, the sorted live list,
//     allocation-free advertise/two-hop appends — but indexes rows
//     through a small id→slot map, so a node's table costs O(its
//     neighborhood) instead of O(world size). The dense backend's
//     id-indexed arrays are O(n) per node and therefore O(n²) per world,
//     which is the memory wall for 10k–100k-node runs; compact tables
//     are what giant worlds use.
//
// All backends produce byte-identical results for identical operation
// sequences (asserted by property tests in tables_dense_test.go); the
// simulator picks the backend via sim.Scenario.DisableDenseTables and
// the world size.

// LocationEntry is one row of a node's location table: where a node was
// last known to be, and when that knowledge originated (§2.3.1: "Each node
// keeps a table of other nodes' location information together with their
// IDs and time stamps").
type LocationEntry struct {
	Pos  geom.Point
	Time float64
}

// LocationTable maps node ids to their freshest known location. The zero
// value is not usable; create with NewLocationTable (map backend) or
// NewDenseLocationTable (dense backend).
type LocationTable struct {
	entries map[int]LocationEntry // map backend; nil in dense mode

	// Dense backend: rows[id] is live iff rowGen[id] == gen; live holds
	// the live ids in ascending order.
	rows   []LocationEntry
	rowGen []uint64
	gen    uint64
	live   []int
}

// NewLocationTable returns an empty map-backed table.
func NewLocationTable() *LocationTable {
	return &LocationTable{entries: make(map[int]LocationEntry)}
}

// NewDenseLocationTable returns an empty dense table pre-sized for node
// ids in [0, n). Ids beyond n still work (the arrays grow on demand).
func NewDenseLocationTable(n int) *LocationTable {
	return &LocationTable{
		rows:   make([]LocationEntry, n),
		rowGen: make([]uint64, n),
		gen:    1,
	}
}

// dense reports whether the table uses the dense backend.
func (t *LocationTable) dense() bool { return t.entries == nil }

// ensure grows the dense arrays to cover id.
func (t *LocationTable) ensure(id int) {
	for id >= len(t.rows) {
		t.rows = append(t.rows, LocationEntry{})
		t.rowGen = append(t.rowGen, 0)
	}
}

// Len returns the number of known nodes.
func (t *LocationTable) Len() int {
	if t.dense() {
		return len(t.live)
	}
	return len(t.entries)
}

// Reset empties the table in O(1) (dense backend) so pooled tables can
// be reused without reallocation.
func (t *LocationTable) Reset() {
	if t.dense() {
		t.gen++
		t.live = t.live[:0]
		return
	}
	clear(t.entries)
}

// insertSorted adds id to the sorted live list (id known to be absent).
func insertSorted(live []int, id int) []int {
	i := sort.SearchInts(live, id)
	live = append(live, 0)
	copy(live[i+1:], live[i:])
	live[i] = id
	return live
}

// removeSorted drops id from the sorted live list if present.
func removeSorted(live []int, id int) []int {
	i := sort.SearchInts(live, id)
	if i < len(live) && live[i] == id {
		copy(live[i:], live[i+1:])
		live = live[:len(live)-1]
	}
	return live
}

// Update records pos for node id if the timestamp is fresher than the
// current entry. It reports whether the table changed.
func (t *LocationTable) Update(id int, pos geom.Point, time float64) bool {
	if t.dense() {
		if id < 0 {
			return false
		}
		t.ensure(id)
		if t.rowGen[id] == t.gen {
			if time <= t.rows[id].Time {
				return false
			}
			t.rows[id] = LocationEntry{Pos: pos, Time: time}
			return true
		}
		t.rowGen[id] = t.gen
		t.rows[id] = LocationEntry{Pos: pos, Time: time}
		t.live = insertSorted(t.live, id)
		return true
	}
	if cur, ok := t.entries[id]; ok && time <= cur.Time {
		return false
	}
	t.entries[id] = LocationEntry{Pos: pos, Time: time}
	return true
}

// Get returns the entry for id.
func (t *LocationTable) Get(id int) (LocationEntry, bool) {
	if t.dense() {
		if id < 0 || id >= len(t.rows) || t.rowGen[id] != t.gen {
			return LocationEntry{}, false
		}
		return t.rows[id], true
	}
	e, ok := t.entries[id]
	return e, ok
}

// Merge adopts every entry of other that is fresher than ours, returning
// the number of rows updated. This is the "location tables should be
// exchanged whenever two nodes meet" mechanism (the paper measures the
// lighter piggyback variant; Merge supports the full exchange).
func (t *LocationTable) Merge(other *LocationTable) int {
	n := 0
	if other.dense() {
		for _, id := range other.live {
			if e := other.rows[id]; t.Update(id, e.Pos, e.Time) {
				n++
			}
		}
		return n
	}
	for id, e := range other.entries {
		if t.Update(id, e.Pos, e.Time) {
			n++
		}
	}
	return n
}

// IDs returns the known node ids in ascending order.
func (t *LocationTable) IDs() []int {
	if t.dense() {
		return append([]int(nil), t.live...)
	}
	out := make([]int, 0, len(t.entries))
	for id := range t.entries {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// NeighborNeighbor is a (node, position) pair inside a beacon: one of the
// beaconing node's own 1-hop neighbors. Beacons carrying these give every
// listener its distance-2 neighborhood, matching "nodes collect distance
// two neighborhood information to construct LDTG in the experiments".
type NeighborNeighbor struct {
	ID  int
	Pos geom.Point
}

// NeighborInfo is one row of a node's neighbor table.
type NeighborInfo struct {
	ID        int
	Pos       geom.Point
	LastSeen  float64
	Neighbors []NeighborNeighbor // the neighbor's own 1-hop neighborhood
}

// NeighborTable tracks currently-audible neighbors with expiry, fed by
// periodic beacons. The zero value is not usable; create with
// NewNeighborTable (map backend), NewDenseNeighborTable (dense backend),
// or NewCompactNeighborTable (compact backend for giant worlds).
//
// The table owns the Neighbors storage of its rows: Observe copies the
// advertised list into a row-owned backing array (reused across
// refreshes of the same neighbor), so callers may pool and recycle the
// beacon payload the info came from. Conversely, rows handed out by Get
// and Snapshot alias that row-owned storage and must not be retained
// across later Observe calls for the same id.
type NeighborTable struct {
	m map[int]NeighborInfo // map backend; nil in dense mode

	// Dense backend: rows[id] is live iff rowGen[id] == gen; live holds
	// the live ids ascending; expired is the scratch Expire returns.
	rows    []NeighborInfo
	rowGen  []uint64
	gen     uint64
	live    []int
	expired []int

	// mark/markGen implement allocation-free dedup for AppendTwoHop:
	// id already emitted iff mark[id] == markGen.
	mark    []uint64
	markGen uint64

	// Compact backend: slot maps id → index into rows (rowGen/gen unused);
	// freeSlots recycles dead rows together with their Neighbors backing
	// arrays; markM replaces the id-indexed mark array for AppendTwoHop
	// dedup. live/expired are shared with the dense backend.
	slot      map[int]int32
	freeSlots []int32
	markM     map[int]uint64
}

// NewNeighborTable returns an empty map-backed table.
func NewNeighborTable() *NeighborTable {
	return &NeighborTable{m: make(map[int]NeighborInfo)}
}

// NewDenseNeighborTable returns an empty dense table pre-sized for node
// ids in [0, n). Ids beyond n still work (the arrays grow on demand).
func NewDenseNeighborTable(n int) *NeighborTable {
	return &NeighborTable{
		rows:   make([]NeighborInfo, n),
		rowGen: make([]uint64, n),
		gen:    1,
		mark:   make([]uint64, n),
	}
}

// NewCompactNeighborTable returns an empty compact table: the dense
// backend's row-owned storage and sorted-live iteration, indexed through
// an id→slot map so memory is O(neighborhood) instead of O(world size).
func NewCompactNeighborTable() *NeighborTable {
	return &NeighborTable{
		slot:  make(map[int]int32),
		markM: make(map[int]uint64),
	}
}

// mapBacked reports whether the table uses the reference map backend
// (the other two backends share the row-array code paths).
func (t *NeighborTable) mapBacked() bool { return t.m != nil }

// compact reports whether the table uses the compact (slot-mapped) backend.
func (t *NeighborTable) compact() bool { return t.slot != nil }

// liveRow returns the row for an id known to be live (row-array backends).
func (t *NeighborTable) liveRow(id int) *NeighborInfo {
	if t.compact() {
		return &t.rows[t.slot[id]]
	}
	return &t.rows[id]
}

// takeSlot returns a free row index, growing rows if none is banked
// (compact backend). Recycled rows keep their Neighbors backing array.
func (t *NeighborTable) takeSlot() int32 {
	if n := len(t.freeSlots); n > 0 {
		si := t.freeSlots[n-1]
		t.freeSlots = t.freeSlots[:n-1]
		return si
	}
	t.rows = append(t.rows, NeighborInfo{})
	return int32(len(t.rows) - 1)
}

// kill releases a live id's row storage (row-array backends); the caller
// maintains the live list.
func (t *NeighborTable) kill(id int) {
	if t.compact() {
		t.freeSlots = append(t.freeSlots, t.slot[id])
		delete(t.slot, id)
		return
	}
	t.rowGen[id] = 0
}

// ensure grows the dense arrays to cover id.
func (t *NeighborTable) ensure(id int) {
	for id >= len(t.rows) {
		t.rows = append(t.rows, NeighborInfo{})
		t.rowGen = append(t.rowGen, 0)
	}
}

// Len returns the number of live rows.
func (t *NeighborTable) Len() int {
	if t.mapBacked() {
		return len(t.m)
	}
	return len(t.live)
}

// Reset empties the table; row-owned Neighbors backing arrays stay
// allocated for reuse (dense: O(1) generation bump; compact: slots are
// banked for recycling).
func (t *NeighborTable) Reset() {
	if t.mapBacked() {
		clear(t.m)
		return
	}
	if t.compact() {
		for _, id := range t.live {
			t.freeSlots = append(t.freeSlots, t.slot[id])
		}
		clear(t.slot)
		clear(t.markM)
		t.live = t.live[:0]
		return
	}
	t.gen++
	t.live = t.live[:0]
}

// Observe inserts or refreshes a neighbor row. The advertised Neighbors
// list is copied into row-owned storage; the caller keeps ownership of
// info.Neighbors.
func (t *NeighborTable) Observe(info NeighborInfo) {
	if t.mapBacked() {
		old := t.m[info.ID]
		info.Neighbors = append(old.Neighbors[:0], info.Neighbors...)
		t.m[info.ID] = info
		return
	}
	id := info.ID
	if id < 0 {
		return
	}
	var row *NeighborInfo
	if t.compact() {
		si, ok := t.slot[id]
		if !ok {
			si = t.takeSlot()
			t.slot[id] = si
			t.live = insertSorted(t.live, id)
		}
		row = &t.rows[si]
	} else {
		t.ensure(id)
		if t.rowGen[id] != t.gen {
			t.rowGen[id] = t.gen
			t.live = insertSorted(t.live, id)
		}
		row = &t.rows[id]
	}
	nbrs := append(row.Neighbors[:0], info.Neighbors...)
	*row = info
	row.Neighbors = nbrs
}

// Get returns the row for id. The row's Neighbors slice aliases table-
// owned storage (see the type doc).
func (t *NeighborTable) Get(id int) (NeighborInfo, bool) {
	if t.mapBacked() {
		r, ok := t.m[id]
		return r, ok
	}
	if t.compact() {
		si, ok := t.slot[id]
		if !ok {
			return NeighborInfo{}, false
		}
		return t.rows[si], true
	}
	if id < 0 || id >= len(t.rows) || t.rowGen[id] != t.gen {
		return NeighborInfo{}, false
	}
	return t.rows[id], true
}

// Remove drops the row for id.
func (t *NeighborTable) Remove(id int) {
	if t.mapBacked() {
		delete(t.m, id)
		return
	}
	if t.compact() {
		if _, ok := t.slot[id]; !ok {
			return
		}
	} else if id < 0 || id >= len(t.rows) || t.rowGen[id] != t.gen {
		return
	}
	t.kill(id)
	t.live = removeSorted(t.live, id)
}

// Expire drops every row last seen at or before deadline and returns the
// expired ids in ascending order. The returned slice is scratch reused
// by the next Expire call (dense backend); callers must not retain it.
func (t *NeighborTable) Expire(deadline float64) []int {
	if t.mapBacked() {
		var gone []int
		for id, r := range t.m {
			if r.LastSeen <= deadline {
				gone = append(gone, id)
				delete(t.m, id)
			}
		}
		sort.Ints(gone)
		return gone
	}
	t.expired = t.expired[:0]
	keep := t.live[:0]
	for _, id := range t.live {
		if t.liveRow(id).LastSeen <= deadline {
			t.kill(id)
			t.expired = append(t.expired, id)
		} else {
			keep = append(keep, id)
		}
	}
	t.live = keep
	return t.expired
}

// Snapshot returns all live rows sorted by id. The slice is freshly
// allocated; row Neighbors alias table-owned storage. Hot paths should
// prefer AppendAdvertised/AppendTwoHop.
func (t *NeighborTable) Snapshot() []NeighborInfo {
	if t.mapBacked() {
		out := make([]NeighborInfo, 0, len(t.m))
		for _, r := range t.m {
			out = append(out, r)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
		return out
	}
	out := make([]NeighborInfo, 0, len(t.live))
	for _, id := range t.live {
		out = append(out, *t.liveRow(id))
	}
	return out
}

// AppendAdvertised appends the (id, position) pair of every live row in
// ascending id order — the list a beacon advertises — and returns the
// extended slice. With a caller-reused buffer the dense backend
// allocates nothing.
func (t *NeighborTable) AppendAdvertised(buf []NeighborNeighbor) []NeighborNeighbor {
	if t.mapBacked() {
		for _, r := range t.Snapshot() {
			buf = append(buf, NeighborNeighbor{ID: r.ID, Pos: r.Pos})
		}
		return buf
	}
	for _, id := range t.live {
		buf = append(buf, NeighborNeighbor{ID: id, Pos: t.liveRow(id).Pos})
	}
	return buf
}

// TwoHopPoints assembles the distance-≤2 neighborhood point set around a
// node at selfPos: the node itself, every live neighbor, and every
// neighbor-of-neighbor (deduplicated, excluding ids in exclude). It
// returns parallel slices of ids and positions with the node itself first.
// This is the input the GLR protocol triangulates.
func (t *NeighborTable) TwoHopPoints(selfID int, selfPos geom.Point) (ids []int, pts []geom.Point) {
	return t.AppendTwoHop(nil, nil, selfID, selfPos)
}

// AppendTwoHop is TwoHopPoints appending into caller-supplied slices
// (pass buf[:0] to reuse); the dense backend dedups with generation-
// stamped marks instead of a per-call map, so a warm call allocates
// nothing. Output order is identical across backends: self first, then
// rows in ascending id order, each followed by its unseen advertised
// neighbors in advertisement order.
func (t *NeighborTable) AppendTwoHop(ids []int, pts []geom.Point, selfID int, selfPos geom.Point) ([]int, []geom.Point) {
	ids = append(ids, selfID)
	pts = append(pts, selfPos)
	if !t.mapBacked() {
		t.markGen++
		t.markSeen(selfID)
		for _, id := range t.live {
			r := t.liveRow(id)
			if !t.seen(id) {
				t.markSeen(id)
				ids = append(ids, id)
				pts = append(pts, r.Pos)
			}
			for _, nn := range r.Neighbors {
				if t.seen(nn.ID) {
					continue
				}
				t.markSeen(nn.ID)
				ids = append(ids, nn.ID)
				pts = append(pts, nn.Pos)
			}
		}
		return ids, pts
	}
	seen := map[int]struct{}{selfID: {}}
	for _, r := range t.Snapshot() {
		if _, dup := seen[r.ID]; !dup {
			seen[r.ID] = struct{}{}
			ids = append(ids, r.ID)
			pts = append(pts, r.Pos)
		}
		for _, nn := range r.Neighbors {
			if _, dup := seen[nn.ID]; dup {
				continue
			}
			seen[nn.ID] = struct{}{}
			ids = append(ids, nn.ID)
			pts = append(pts, nn.Pos)
		}
	}
	return ids, pts
}

// AppendTwoHopAt is AppendTwoHop as the table will stand after
// Expire(deadline): rows last seen at or before deadline are skipped —
// along with their advertised neighbors — without being dropped. The
// output is byte-identical to calling Expire(deadline) followed by
// AppendTwoHop, but the table itself is not mutated (only the dense
// backend's dedup marks advance, which no reader observes), so callers
// may preview the view a future route check will build without
// disturbing the run. Not safe for concurrent use, like every
// NeighborTable method.
func (t *NeighborTable) AppendTwoHopAt(ids []int, pts []geom.Point, selfID int, selfPos geom.Point, deadline float64) ([]int, []geom.Point) {
	ids = append(ids, selfID)
	pts = append(pts, selfPos)
	if !t.mapBacked() {
		t.markGen++
		t.markSeen(selfID)
		for _, id := range t.live {
			r := t.liveRow(id)
			if r.LastSeen <= deadline {
				continue
			}
			if !t.seen(id) {
				t.markSeen(id)
				ids = append(ids, id)
				pts = append(pts, r.Pos)
			}
			for _, nn := range r.Neighbors {
				if t.seen(nn.ID) {
					continue
				}
				t.markSeen(nn.ID)
				ids = append(ids, nn.ID)
				pts = append(pts, nn.Pos)
			}
		}
		return ids, pts
	}
	seen := map[int]struct{}{selfID: {}}
	for _, r := range t.Snapshot() {
		if r.LastSeen <= deadline {
			continue
		}
		if _, dup := seen[r.ID]; !dup {
			seen[r.ID] = struct{}{}
			ids = append(ids, r.ID)
			pts = append(pts, r.Pos)
		}
		for _, nn := range r.Neighbors {
			if _, dup := seen[nn.ID]; dup {
				continue
			}
			seen[nn.ID] = struct{}{}
			ids = append(ids, nn.ID)
			pts = append(pts, nn.Pos)
		}
	}
	return ids, pts
}

// seen reports whether id was already emitted in the current AppendTwoHop
// pass (row-array backends).
func (t *NeighborTable) seen(id int) bool {
	if t.markM != nil {
		return t.markM[id] == t.markGen
	}
	return id >= 0 && id < len(t.mark) && t.mark[id] == t.markGen
}

// markSeen stamps id as emitted in the current AppendTwoHop pass. The
// markGen bump preceding every pass keeps stale stamps — including the
// compact map's zero value for absent ids — from reading as seen.
func (t *NeighborTable) markSeen(id int) {
	if id < 0 {
		return
	}
	if t.markM != nil {
		t.markM[id] = t.markGen
		return
	}
	for id >= len(t.mark) {
		t.mark = append(t.mark, 0)
	}
	t.mark[id] = t.markGen
}
