package dtn

// CustodyStore implements the two-area storage of §2.3.2: "The Store is
// the place where messages are waiting to be sent whereas messages that
// are just sent are saved in the Cache." A message moves Store→Cache when
// transmitted, Cache→gone when the next hop acknowledges custody, and
// Cache→Store when the acknowledgment times out ("after staying in the
// Cache for specified time, the message is moved from Cache to Store for
// another round of transfer rescheduling").
//
// The capacity bounds Store+Cache together — the paper's per-node storage
// limit counts messages held. Under pressure, "message in the Cache is
// dropped first".
type CustodyStore struct {
	capacity int // total Store+Cache bound; 0 = unlimited
	store    *Buffer
	cache    *Buffer
	sentAt   map[MessageID]float64 // when each cached message was sent
}

// NewCustodyStore returns an empty custody store. capacity ≤ 0 means
// unlimited.
func NewCustodyStore(capacity int) *CustodyStore {
	if capacity < 0 {
		capacity = 0
	}
	return &CustodyStore{
		capacity: capacity,
		store:    NewBuffer(0),
		cache:    NewBuffer(0),
		sentAt:   make(map[MessageID]float64),
	}
}

// Total returns the number of messages held across Store and Cache — the
// paper's "storage (number of messages)" metric.
func (c *CustodyStore) Total() int { return c.store.Len() + c.cache.Len() }

// StoreLen returns the number of messages waiting to be sent.
func (c *CustodyStore) StoreLen() int { return c.store.Len() }

// CacheLen returns the number of messages awaiting acknowledgment.
func (c *CustodyStore) CacheLen() int { return c.cache.Len() }

// Capacity returns the configured total capacity (0 = unlimited).
func (c *CustodyStore) Capacity() int { return c.capacity }

// Has reports whether the message is held in either area.
func (c *CustodyStore) Has(id MessageID) bool {
	return c.store.Has(id) || c.cache.Has(id)
}

// Get returns the held message from either area, or nil.
func (c *CustodyStore) Get(id MessageID) *Message {
	if m := c.store.Get(id); m != nil {
		return m
	}
	return c.cache.Get(id)
}

// Add places m into the Store. When the total capacity is exceeded, the
// oldest Cache entry is dropped first; if the Cache is empty, the oldest
// Store entry is dropped. It returns any dropped message and reports
// whether m is now held (merging flags counts as held).
func (c *CustodyStore) Add(m *Message) (dropped *Message, stored bool) {
	if existing := c.Get(m.ID); existing != nil {
		existing.Flags |= m.Flags
		existing.UpdateDstLoc(m.DstLoc, m.DstLocTime, m.DstLocKnown)
		return nil, true
	}
	if c.capacity > 0 && c.Total() >= c.capacity {
		if c.cache.Len() > 0 {
			dropped = c.cache.popOldest()
			delete(c.sentAt, dropped.ID)
		} else {
			dropped = c.store.popOldest()
		}
		if dropped != nil && dropped.ID == m.ID {
			// Degenerate capacity-1 churn: we dropped the slot for the
			// same id; fall through and insert fresh.
			dropped = nil
		}
	}
	c.store.Add(m)
	return dropped, true
}

// StoredMessages returns the Store contents oldest-first (the messages
// eligible for a routing attempt).
func (c *CustodyStore) StoredMessages() []*Message { return c.store.Messages() }

// AppendStored appends the Store contents oldest-first into buf (pass
// buf[:0] to reuse a scratch slice on hot paths).
func (c *CustodyStore) AppendStored(buf []*Message) []*Message { return c.store.AppendMessages(buf) }

// CachedMessages returns the Cache contents oldest-first.
func (c *CustodyStore) CachedMessages() []*Message { return c.cache.Messages() }

// MarkSent moves a message from Store to Cache, recording the send time
// for ack-timeout sweeps. It reports whether the message was in the Store.
func (c *CustodyStore) MarkSent(id MessageID, now float64) bool {
	m := c.store.Remove(id)
	if m == nil {
		return false
	}
	c.cache.Add(m)
	c.sentAt[id] = now
	return true
}

// Ack removes an acknowledged message from the Cache, completing custody
// transfer. It returns the released message, or nil if it was not cached.
func (c *CustodyStore) Ack(id MessageID) *Message {
	m := c.cache.Remove(id)
	if m != nil {
		delete(c.sentAt, id)
	}
	return m
}

// ReturnToStore immediately moves a cached message back to the Store
// (used when the sender learns the transfer failed before the cache
// timeout). It returns the moved message, or nil if it was not cached.
func (c *CustodyStore) ReturnToStore(id MessageID) *Message {
	m := c.cache.Remove(id)
	if m == nil {
		return nil
	}
	delete(c.sentAt, id)
	c.store.Add(m)
	return m
}

// ExpireCache moves every cache entry sent at or before deadline back to
// the Store for rescheduling, returning the moved messages.
func (c *CustodyStore) ExpireCache(deadline float64) []*Message {
	var moved []*Message
	for _, m := range c.cache.Messages() {
		if c.sentAt[m.ID] <= deadline {
			c.cache.Remove(m.ID)
			delete(c.sentAt, m.ID)
			c.store.Add(m)
			moved = append(moved, m)
		}
	}
	return moved
}

// DropAll empties both areas (end-of-run cleanup), returning the count
// dropped.
func (c *CustodyStore) DropAll() int {
	n := c.Total()
	c.store = NewBuffer(0)
	c.cache = NewBuffer(0)
	c.sentAt = make(map[MessageID]float64)
	return n
}
