package dtn

// Buffer is a bounded FIFO message store keyed by MessageID. It models the
// paper's node storage: "When storage is limited and the storage space is
// fully occupied, old messages are dropped when new messages come in."
// A capacity of 0 means unlimited.
type Buffer struct {
	capacity int
	order    []MessageID // insertion order (oldest first)
	byID     map[MessageID]*Message
	version  uint64         // bumped on every new insertion
	insLog   []insertRecord // insertion history for delta summaries; see compactLog
}

// insertRecord is one insertion-log entry: the buffer version right after
// id was inserted.
type insertRecord struct {
	ver uint64
	id  MessageID
}

// NewBuffer returns an empty buffer. capacity ≤ 0 means unlimited.
func NewBuffer(capacity int) *Buffer {
	if capacity < 0 {
		capacity = 0
	}
	return &Buffer{capacity: capacity, byID: make(map[MessageID]*Message)}
}

// Capacity returns the configured capacity (0 = unlimited).
func (b *Buffer) Capacity() int { return b.capacity }

// Len returns the number of stored messages.
func (b *Buffer) Len() int { return len(b.byID) }

// Has reports whether a message with the given id is stored.
func (b *Buffer) Has(id MessageID) bool {
	_, ok := b.byID[id]
	return ok
}

// Get returns the stored message with the given id, or nil.
func (b *Buffer) Get(id MessageID) *Message { return b.byID[id] }

// Add inserts m. If a message with the same ID is already present, the
// tree flags are merged into the existing copy (two copies of one message
// meeting at a node coalesce) and no eviction happens. Otherwise, when the
// buffer is full, the oldest message is evicted FIFO. It returns the
// evicted message (nil if none) and reports whether m's content is now
// stored (true also for merges).
func (b *Buffer) Add(m *Message) (evicted *Message, stored bool) {
	if existing, ok := b.byID[m.ID]; ok {
		existing.Flags |= m.Flags
		existing.UpdateDstLoc(m.DstLoc, m.DstLocTime, m.DstLocKnown)
		return nil, true
	}
	if b.capacity > 0 && len(b.byID) >= b.capacity {
		evicted = b.popOldest()
	}
	b.order = append(b.order, m.ID)
	b.byID[m.ID] = m
	b.version++
	b.insLog = append(b.insLog, insertRecord{ver: b.version, id: m.ID})
	b.compactLog()
	return evicted, true
}

// compactLog bounds the insertion log, which would otherwise grow with
// every insertion for the lifetime of the buffer. When the log exceeds
// twice the held-message count it is rewritten to the latest record of
// each still-held id, preserving record order.
//
// This keeps InsertedSince exact for every version any delta-summary
// consumer can still request — including ver 0 from a peer never synced
// with: an id appears in InsertedSince(v) iff it is held and its latest
// insertion is newer than v, and records of evicted/removed ids decide
// nothing. The only observable difference is ordering across
// re-insertions (a re-inserted id sorts by its latest insertion instead
// of its first), which consumers cannot see: delta advertisements
// aggregate the ids into a SummaryVector set.
func (b *Buffer) compactLog() {
	if len(b.insLog) <= 64 || len(b.insLog) <= 2*len(b.byID) {
		return
	}
	latest := make(map[MessageID]int, len(b.byID)) // id -> index of latest record
	for i, rec := range b.insLog {
		if b.Has(rec.id) {
			latest[rec.id] = i
		}
	}
	kept := b.insLog[:0]
	for i, rec := range b.insLog {
		if latest[rec.id] == i && b.Has(rec.id) {
			kept = append(kept, rec)
		}
	}
	b.insLog = kept
}

// Version returns a counter that increments on every new insertion.
// Anti-entropy peers use it to skip advertising an unchanged buffer.
func (b *Buffer) Version() uint64 { return b.version }

// InsertedSince returns the ids inserted after version ver that are still
// held — the delta an anti-entropy refresh advertises — ordered by their
// surviving log record (insertion order; an id re-inserted after removal
// may sort by its latest insertion once the log has been compacted).
func (b *Buffer) InsertedSince(ver uint64) []MessageID {
	// Binary search the log for the first record newer than ver.
	lo, hi := 0, len(b.insLog)
	for lo < hi {
		mid := (lo + hi) / 2
		if b.insLog[mid].ver <= ver {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	var out []MessageID
	seen := make(map[MessageID]struct{})
	for _, rec := range b.insLog[lo:] {
		if _, dup := seen[rec.id]; dup {
			continue
		}
		seen[rec.id] = struct{}{}
		if b.Has(rec.id) {
			out = append(out, rec.id)
		}
	}
	return out
}

// Remove deletes and returns the message with the given id, or nil. The
// deletion is O(n) in the buffer size, which is bounded by the paper's
// storage limits (≤ a few hundred messages).
func (b *Buffer) Remove(id MessageID) *Message {
	m, ok := b.byID[id]
	if !ok {
		return nil
	}
	delete(b.byID, id)
	for i, o := range b.order {
		if o == id {
			b.order = append(b.order[:i], b.order[i+1:]...)
			break
		}
	}
	return m
}

// popOldest removes and returns the oldest message.
func (b *Buffer) popOldest() *Message {
	if len(b.order) == 0 {
		return nil
	}
	id := b.order[0]
	b.order = b.order[1:]
	m := b.byID[id]
	delete(b.byID, id)
	return m
}

// Messages returns the stored messages oldest-first. The slice is freshly
// allocated; the *Message values are the live stored messages.
func (b *Buffer) Messages() []*Message {
	return b.AppendMessages(make([]*Message, 0, len(b.order)))
}

// AppendMessages appends the stored messages oldest-first (pass buf[:0]
// to reuse a scratch slice on hot paths).
func (b *Buffer) AppendMessages(buf []*Message) []*Message {
	for _, id := range b.order {
		buf = append(buf, b.byID[id])
	}
	return buf
}

// IDs returns the stored message ids oldest-first.
func (b *Buffer) IDs() []MessageID {
	msgs := b.Messages()
	out := make([]MessageID, len(msgs))
	for i, m := range msgs {
		out[i] = m.ID
	}
	return out
}

// SummaryVector is the set of message ids a node advertises during
// epidemic anti-entropy exchange.
type SummaryVector map[MessageID]struct{}

// Summary returns the buffer's current summary vector.
func (b *Buffer) Summary() SummaryVector {
	sv := make(SummaryVector, len(b.byID))
	for id := range b.byID {
		sv[id] = struct{}{}
	}
	return sv
}

// Has reports whether id is in the vector.
func (sv SummaryVector) Has(id MessageID) bool {
	_, ok := sv[id]
	return ok
}

// Add inserts id into the vector.
func (sv SummaryVector) Add(id MessageID) { sv[id] = struct{}{} }

// Missing returns the ids present in other but absent from sv — the
// messages the peer should transfer to us.
func (sv SummaryVector) Missing(other SummaryVector) []MessageID {
	var out []MessageID
	for id := range other {
		if !sv.Has(id) {
			out = append(out, id)
		}
	}
	return out
}
