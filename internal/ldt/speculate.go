package ldt

import (
	"math"

	"glr/internal/geom"
	"glr/internal/shard"
)

// Speculative spanner precomputation.
//
// GLR's route check issues a spanner query whose inputs are fully
// determined ahead of time: the next check fires at an exact simulated
// instant (now + CheckInterval, tracked by the protocol), the neighbor
// table at that instant is the current table minus deterministic expiry
// — unless further beacons land first — and the node's own position is
// an exact lookahead (mobility models answer non-monotone queries
// without perturbing the trajectory). So on every beacon the protocol
// can hand the predicted (view, variant, k) to Speculate, and a worker
// builds the answer while the event loop keeps stepping.
//
// Determinism: a speculative build inserts only canonically-keyed
// witness triangulations into the shared cache — entries byte-identical
// to what the event loop would have built — and parks its accepted set
// in a side cache matched ORDER-EXACTLY against the real query's view.
// A matching query adopts the parked result (content identical to an
// inline build, by the determinism of the construction over an
// identically-ordered view); a stale prediction is simply never adopted
// and is swept away. Either way the query returns the same bytes the
// serial engine would, so speculation is pure wall-clock overlap.

// specEntry is one parked speculative build. done is closed by the
// worker once accIDs/accPts (or err) are final; until then only the
// immutable key fields may be read.
type specEntry struct {
	ids     []int // exact predicted view order (self first)
	pts     []geom.Point
	self    int
	variant Variant
	k       int
	r       float64
	at      float64 // predicted query time (retention)

	done   chan struct{}
	accIDs []int
	accPts []geom.Point
	err    error
}

// matchesOrdered reports whether the entry's predicted view equals the
// query's view element for element, in order. Order matters: the
// accepted set's emission order follows the view order, so only an
// order-exact match may be adopted as the query's answer.
func (s *specEntry) matchesOrdered(view *LocalView, variant Variant, k int) bool {
	if s.self != view.SelfID || s.variant != variant || s.k != k ||
		s.r != view.R || len(s.ids) != len(view.IDs) {
		return false
	}
	for i, id := range s.ids {
		if id != view.IDs[i] || !s.pts[i].Eq(view.Pts[i]) {
			return false
		}
	}
	return true
}

func (s *specEntry) isDone() bool {
	select {
	case <-s.done:
		return true
	default:
		return false
	}
}

// sigViewOrdered hashes a view order-sensitively plus the query
// parameters — the spec side-cache key.
func sigViewOrdered(view *LocalView, variant Variant, k int) uint64 {
	h := uint64(fnvOffset64)
	for i, id := range view.IDs {
		h = fnvMix(h, uint64(id)+1)
		h = fnvMix(h, math.Float64bits(view.Pts[i].X))
		h = fnvMix(h, math.Float64bits(view.Pts[i].Y))
	}
	h = fnvMix(h, uint64(view.SelfID)+1)
	h = fnvMix(h, uint64(variant)+1)
	h = fnvMix(h, uint64(k)+1)
	h = fnvMix(h, math.Float64bits(view.R))
	return h
}

// EnableConcurrent attaches a shard worker pool: speculative builds run
// on the pool and the shared caches go behind a mutex. Results are
// unchanged — see the package comment at the top of this file. A
// disabled (from-scratch) Maintainer or a serial pool leaves the
// Maintainer in single-threaded mode. Safe to call repeatedly (every
// node's Init passes the same world pool).
func (m *Maintainer) EnableConcurrent(p *shard.Pool) {
	if m.disabled || p == nil || p.Workers() < 2 {
		return
	}
	m.pool = p
	m.concurrent = true
}

// Speculative reports whether speculative builds are active, so callers
// can skip assembling predicted views in serial mode.
func (m *Maintainer) Speculative() bool { return m.concurrent }

// Speculate requests a background build of the spanner query that
// selfID will issue at future simulated time `at` if its view is then
// exactly (ids, pts) — self first, caller's predicted order. The slices
// are copied; the caller keeps ownership. Best-effort: an already-cached
// or already-speculated query, a saturated pool, or a non-LDTG variant
// (Gabriel/UDG builds are too cheap to ship to a worker) make this a
// no-op.
func (m *Maintainer) Speculate(selfID int, ids []int, pts []geom.Point, r float64, variant Variant, k int, at float64) {
	if !m.concurrent || variant != VariantLDTG || k < 1 || len(ids) < 2 {
		return
	}
	view, err := NewLocalView(selfID, ids, pts, r)
	if err != nil {
		return
	}
	resSig := sigViewQuery(view, variant, k)
	specSig := sigViewOrdered(view, variant, k)
	m.mu.Lock()
	for _, e := range m.results[resSig] {
		if e.matches(view, variant, k) {
			m.mu.Unlock()
			return // the real query will hit the result cache anyway
		}
	}
	for _, s := range m.specs[specSig] {
		if s.matchesOrdered(view, variant, k) {
			m.mu.Unlock()
			return // identical prediction already in flight or parked
		}
	}
	m.mu.Unlock()

	sp := &specEntry{
		ids:     append([]int(nil), ids...),
		pts:     append([]geom.Point(nil), pts...),
		self:    selfID,
		variant: variant,
		k:       k,
		r:       r,
		at:      at,
		done:    make(chan struct{}),
	}
	if !m.pool.Submit(func() { m.runSpec(sp) }) {
		return
	}
	m.mu.Lock()
	m.specs[specSig] = append(m.specs[specSig], sp)
	m.stats.SpecBuilds++
	m.mu.Unlock()
}

// runSpec executes one speculative build on a worker, with borrowed
// scratch. It touches no simulation state: inputs are the entry's own
// copies, and the only shared structure is the triangulation cache,
// accessed under the Maintainer lock inside triangulation().
func (m *Maintainer) runSpec(sp *specEntry) {
	defer close(sp.done)
	c := m.ctxPool.Get().(*buildCtx)
	defer m.ctxPool.Put(c)
	view, err := NewLocalView(sp.self, sp.ids, sp.pts, sp.r)
	if err != nil {
		sp.err = err
		return
	}
	local, err := m.ldtgNeighbors(c, view, sp.k, sp.at)
	if err != nil {
		sp.err = err
		return
	}
	sp.accIDs = make([]int, len(local))
	sp.accPts = make([]geom.Point, len(local))
	for i, li := range local {
		sp.accIDs[i] = view.IDs[li]
		sp.accPts[i] = view.Pts[li]
	}
}

// adoptSpec answers a result-cache miss from the spec side-cache: an
// order-exact parked prediction is promoted into the result cache
// (content identical to the inline build the serial path would do now)
// and consumed. Waits for an in-flight build — the work is already
// running; blocking the event loop until it lands still overlaps the
// whole build minus the wait.
func (m *Maintainer) adoptSpec(view *LocalView, variant Variant, k int, now float64, resSig uint64) ([]int, []geom.Point, bool) {
	specSig := sigViewOrdered(view, variant, k)
	m.mu.Lock()
	bucket := m.specs[specSig]
	var sp *specEntry
	for i, s := range bucket {
		if s.matchesOrdered(view, variant, k) {
			sp = s
			bucket[i] = bucket[len(bucket)-1]
			bucket = bucket[:len(bucket)-1]
			if len(bucket) == 0 {
				delete(m.specs, specSig)
			} else {
				m.specs[specSig] = bucket
			}
			break
		}
	}
	m.mu.Unlock()
	if sp == nil {
		return nil, nil, false
	}
	<-sp.done
	if sp.err != nil {
		return nil, nil, false // fall back to the inline build
	}
	e := &resEntry{
		ids:     sp.ids,
		pts:     sp.pts,
		self:    sp.self,
		variant: sp.variant,
		k:       sp.k,
		r:       sp.r,
		accIDs:  sp.accIDs,
		accPts:  sp.accPts,
		lastHit: now,
	}
	m.mu.Lock()
	m.results[resSig] = append(m.results[resSig], e)
	m.stats.SpecAdopted++
	m.mu.Unlock()
	return e.accIDs, e.accPts, true
}

// sweepSpecs drops parked speculations whose predicted time has passed
// by more than the cache TTL — predictions the real query overtook.
// In-flight entries are kept; their workers finish soon and the next
// sweep reaps them. Called with the cache locked.
func (m *Maintainer) sweepSpecs(now float64) {
	for sig, bucket := range m.specs {
		keep := bucket[:0]
		for _, s := range bucket {
			if s.isDone() && now-s.at > cacheTTL {
				m.stats.Evictions++
				continue
			}
			keep = append(keep, s)
		}
		if len(keep) == 0 {
			delete(m.specs, sig)
		} else {
			m.specs[sig] = keep
		}
	}
}
