package ldt

import (
	"fmt"
	"math"
	"sync"
	"time"

	"glr/internal/geom"
	"glr/internal/shard"
)

// Variant selects which local routing graph a Maintainer query builds.
// It mirrors the protocol-level spanner choice without importing it.
type Variant int

// Spanner variants.
const (
	VariantLDTG Variant = iota
	VariantGabriel
	VariantUDG
)

// SpannerStats counts Maintainer activity. BuildTime is wall-clock time
// spent inside Neighbors calls (the protocol's whole spanner-construction
// cost), so cached and from-scratch runs are directly comparable.
type SpannerStats struct {
	Queries     uint64 // Neighbors calls
	ResultHits  uint64 // whole-query (view-level) cache hits
	TriBuilds   uint64 // witness triangulations built
	TriHits     uint64 // witness triangulations reused from the cache
	Evictions   uint64 // cache entries dropped by the sweep
	SpecBuilds  uint64 // speculative builds launched on the worker pool
	SpecAdopted uint64 // queries answered by adopting a speculative build
	BuildTime   time.Duration
}

// TriHitRate returns the fraction of witness-triangulation lookups served
// from the cache.
func (s SpannerStats) TriHitRate() float64 {
	total := s.TriBuilds + s.TriHits
	if total == 0 {
		return 0
	}
	return float64(s.TriHits) / float64(total)
}

// Add accumulates counters from another stats value.
func (s *SpannerStats) Add(o SpannerStats) {
	s.Queries += o.Queries
	s.ResultHits += o.ResultHits
	s.TriBuilds += o.TriBuilds
	s.TriHits += o.TriHits
	s.Evictions += o.Evictions
	s.SpecBuilds += o.SpecBuilds
	s.SpecAdopted += o.SpecAdopted
	s.BuildTime += o.BuildTime
}

// Cache retention parameters: an entry unused for cacheTTL simulated
// seconds is dropped; entries whose members have moved (per Observe) are
// dropped one sweep after they stop being queried. Sweeps piggyback on
// queries at most once per sweepEvery simulated seconds.
const (
	cacheTTL   = 3.0
	sweepEvery = 1.0
)

// triEntry caches one witness-neighborhood Delaunay triangulation. Keys
// are exact: the member ids and their IEEE-754 position bits, sorted by
// id, so any movement or membership change misses rather than returning a
// stale graph. ids/pts are the key material; idx maps a member id to its
// triangulation vertex (coincident members share a vertex) and edges
// holds the undirected edge set over those vertices, packed u<<20|v with
// u < v.
type triEntry struct {
	ids     []int
	pts     []geom.Point
	edges   map[uint64]struct{}
	idx     map[int]int
	lastHit float64
}

// hasEdge reports whether the triangulation connects members a and b
// (global ids, both known to be members).
func (e *triEntry) hasEdge(a, b int) bool {
	u, v := e.idx[a], e.idx[b]
	if u == v {
		return false
	}
	if u > v {
		u, v = v, u
	}
	_, ok := e.edges[uint64(u)<<20|uint64(v)]
	return ok
}

// resEntry caches one whole spanner query: the accepted neighbor set for
// a (full view, self, variant, k, radius) tuple.
type resEntry struct {
	ids     []int
	pts     []geom.Point
	self    int
	variant Variant
	k       int
	r       float64
	accIDs  []int
	accPts  []geom.Point
	lastHit float64
}

// buildCtx is the scratch state one spanner build needs: the mesh
// triangulator plus adjacency/BFS/sort buffers, reused across queries.
// The Maintainer owns one for the event-loop query path; in concurrent
// mode each speculative build borrows one from a pool, so builds never
// share scratch.
type buildCtx struct {
	tr       *geom.Triangulator
	order    []int
	adj      [][]int
	seen     []uint32
	seenGen  uint32
	queue    []int
	members  []int
	sub      []geom.Point
	wit      []*triEntry
	accepted []int
}

func newBuildCtx() *buildCtx { return &buildCtx{tr: geom.NewTriangulator()} }

// Maintainer is the persistent successor to per-call spanner
// construction: it keys witness triangulations and whole accepted-
// neighbor results by exact (member-id, position) signatures and reuses
// them across check intervals, across witnesses, and across every node of
// a world (one Maintainer is shared per simulation; it is single-threaded
// like the event loop that owns it, until EnableConcurrent attaches a
// worker pool for speculative builds — then the shared caches go behind
// a mutex while query results stay byte-identical).
//
// Correctness never depends on invalidation: a signature covers the exact
// positions that produced an entry, so changed inputs can only miss.
// Invalidation is hygiene — Observe feeds the freshest beaconed position
// per node, and a periodic sweep drops entries that reference superseded
// coordinates (once no longer queried; a node's stale 2-hop knowledge
// may lag the freshest beacon) or that have idled past cacheTTL.
type Maintainer struct {
	disabled bool
	ctx      *buildCtx // event-loop build scratch

	// Concurrent mode (EnableConcurrent): pool runs speculative builds,
	// mu guards tris/results/specs/stats/lastPos, ctxPool lends scratch
	// to workers.
	concurrent bool
	pool       *shard.Pool
	mu         sync.Mutex
	ctxPool    sync.Pool
	specs      map[uint64][]*specEntry

	tris    map[uint64][]*triEntry
	results map[uint64][]*resEntry
	lastPos map[int]geom.Point

	lastSweep float64
	prevSweep float64
	stats     SpannerStats
}

// NewMaintainer returns an empty cache. disabled selects the from-scratch
// reference path for every query (the pre-cache behavior, kept behind
// core's Config.DisableSpannerCache); stats are still collected so the
// two modes are comparable.
func NewMaintainer(disabled bool) *Maintainer {
	m := &Maintainer{
		disabled: disabled,
		ctx:      newBuildCtx(),
		tris:     make(map[uint64][]*triEntry),
		results:  make(map[uint64][]*resEntry),
		lastPos:  make(map[int]geom.Point),
		specs:    make(map[uint64][]*specEntry),
	}
	m.ctxPool.New = func() any { return newBuildCtx() }
	return m
}

// lock/unlock guard the shared caches. Outside concurrent mode every
// caller is the event loop, so they collapse to no-ops and the serial
// query path stays lock-free.
func (m *Maintainer) lock() {
	if m.concurrent {
		m.mu.Lock()
	}
}

func (m *Maintainer) unlock() {
	if m.concurrent {
		m.mu.Unlock()
	}
}

// Disabled reports whether the Maintainer runs the from-scratch path.
func (m *Maintainer) Disabled() bool { return m.disabled }

// Stats returns the accumulated counters.
func (m *Maintainer) Stats() SpannerStats {
	m.lock()
	defer m.unlock()
	return m.stats
}

// Size returns the live entry counts (triangulations, results).
func (m *Maintainer) Size() (tris, results int) {
	m.lock()
	defer m.unlock()
	for _, b := range m.tris {
		tris += len(b)
	}
	for _, b := range m.results {
		results += len(b)
	}
	return
}

// Observe records the freshest directly-beaconed position of a node.
// Entries built from superseded coordinates become sweep candidates.
func (m *Maintainer) Observe(id int, pos geom.Point) {
	if m.disabled {
		return
	}
	m.lock()
	defer m.unlock()
	if last, ok := m.lastPos[id]; ok && last.Eq(pos) {
		return
	}
	m.lastPos[id] = pos
}

// Neighbors returns the global ids and positions of the accepted spanner
// neighbors of view's self node, per the requested variant (k applies to
// the LDTG only). now is simulated time, used for cache retention.
//
// The returned slices are cache-owned: callers may read them until the
// next Neighbors call on this Maintainer but must not modify or retain
// them (the routing loop reads them within one route check).
func (m *Maintainer) Neighbors(view *LocalView, variant Variant, k int, now float64) ([]int, []geom.Point, error) {
	start := time.Now()
	defer func() {
		m.lock()
		m.stats.BuildTime += time.Since(start)
		m.unlock()
	}()
	if m.disabled {
		m.stats.Queries++
		return m.fromScratch(view, variant, k)
	}
	sig := sigViewQuery(view, variant, k)
	m.lock()
	m.stats.Queries++
	m.maybeSweep(now)
	for _, e := range m.results[sig] {
		if e.matches(view, variant, k) {
			e.lastHit = now
			m.stats.ResultHits++
			m.unlock()
			return e.accIDs, e.accPts, nil
		}
	}
	m.unlock()

	if m.concurrent {
		if ids, pts, ok := m.adoptSpec(view, variant, k, now, sig); ok {
			return ids, pts, nil
		}
	}

	var local []int
	var err error
	switch variant {
	case VariantGabriel:
		local = view.GabrielNeighbors()
	case VariantUDG:
		local = view.UDGNeighbors()
	default:
		local, err = m.ldtgNeighbors(m.ctx, view, k, now)
		if err != nil {
			return nil, nil, err
		}
	}
	accIDs := make([]int, len(local))
	accPts := make([]geom.Point, len(local))
	for i, li := range local {
		accIDs[i] = view.IDs[li]
		accPts[i] = view.Pts[li]
	}
	e := &resEntry{
		ids:     append([]int(nil), view.IDs...),
		pts:     append([]geom.Point(nil), view.Pts...),
		self:    view.SelfID,
		variant: variant,
		k:       k,
		r:       view.R,
		accIDs:  accIDs,
		accPts:  accPts,
		lastHit: now,
	}
	m.lock()
	m.results[sig] = append(m.results[sig], e)
	m.unlock()
	return e.accIDs, e.accPts, nil
}

// fromScratch runs the legacy per-call construction (reference Delaunay,
// no cross-call reuse), mirroring the pre-cache protocol exactly.
func (m *Maintainer) fromScratch(view *LocalView, variant Variant, k int) ([]int, []geom.Point, error) {
	var local []int
	var err error
	switch variant {
	case VariantGabriel:
		local = view.GabrielNeighbors()
	case VariantUDG:
		local = view.UDGNeighbors()
	default:
		local, err = view.LDTGNeighborsRef(k)
		if err != nil {
			return nil, nil, err
		}
	}
	ids := make([]int, len(local))
	pts := make([]geom.Point, len(local))
	for i, li := range local {
		ids[i] = view.IDs[li]
		pts[i] = view.Pts[li]
	}
	return ids, pts, nil
}

// ldtgNeighbors is the cached engine behind the paper's acceptance rule.
// It matches LDTGNeighbors semantically; witness triangulations are
// normalized (members sorted by global id, coincident coordinates
// coalesced) so permuted views and different witnesses map to the same
// cache entries. Unlike the from-scratch path it avoids geom.Graph for
// the view's unit-disk topology: adjacency lists and BFS buffers live on
// the Maintainer, which profiling shows matters as much as the
// triangulation itself once the mesh construction is cheap.
func (m *Maintainer) ldtgNeighbors(c *buildCtx, view *LocalView, k int, now float64) ([]int, error) {
	if k < 1 {
		return nil, fmt.Errorf("ldt: k must be ≥ 1, got %d", k)
	}
	c.buildAdjacency(view)

	selfNbrs := c.adj[0] // ascending local indices
	witnesses := len(selfNbrs) + 1
	wit := c.wit[:0]
	for i := 0; i < witnesses; i++ {
		w := 0
		if i > 0 {
			w = selfNbrs[i-1]
		}
		e, err := m.triangulation(c, view, c.khop(w, k), now)
		if err != nil {
			c.wit = wit
			return nil, err
		}
		wit = append(wit, e)
	}
	c.wit = wit

	selfID := view.IDs[0]
	self := wit[0]
	accepted := c.accepted[:0]
	for _, nb := range selfNbrs {
		nbID := view.IDs[nb]
		if !self.hasEdge(selfID, nbID) {
			continue
		}
		ok := true
		for _, ww := range wit {
			if _, inS := ww.idx[selfID]; !inS {
				continue
			}
			if _, inN := ww.idx[nbID]; !inN {
				continue
			}
			if !ww.hasEdge(selfID, nbID) {
				ok = false
				break
			}
		}
		if ok {
			accepted = append(accepted, nb)
		}
	}
	c.accepted = accepted
	return accepted, nil
}

// buildAdjacency fills c.adj with the view's unit-disk adjacency lists
// (ascending local indices), reusing the backing arrays.
func (c *buildCtx) buildAdjacency(view *LocalView) {
	n := len(view.Pts)
	for len(c.adj) < n {
		c.adj = append(c.adj, nil)
	}
	for i := 0; i < n; i++ {
		c.adj[i] = c.adj[i][:0]
	}
	r2 := view.R * view.R
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if view.Pts[i].Dist2(view.Pts[j]) <= r2 {
				c.adj[i] = append(c.adj[i], j)
				c.adj[j] = append(c.adj[j], i)
			}
		}
	}
}

// khop returns the local indices within graph distance k of w over c.adj,
// including w, in scratch storage valid until the next khop call.
func (c *buildCtx) khop(w, k int) []int {
	n := len(c.adj)
	for len(c.seen) < n {
		c.seen = append(c.seen, 0)
	}
	c.seenGen++
	gen := c.seenGen
	c.members = c.members[:0]
	c.queue = c.queue[:0]
	c.seen[w] = gen
	c.members = append(c.members, w)
	c.queue = append(c.queue, w)
	for depth := 0; depth < k && len(c.queue) > 0; depth++ {
		next := len(c.members)
		for _, u := range c.queue {
			for _, v := range c.adj[u] {
				if c.seen[v] != gen {
					c.seen[v] = gen
					c.members = append(c.members, v)
				}
			}
		}
		c.queue = append(c.queue[:0], c.members[next:]...)
	}
	return c.members
}

// triangulation returns the Delaunay edge set over the positions of the
// given view members (local indices), from the cache when an entry with
// the same (id, position) set exists. A triangulation's content is a
// pure function of its canonical sorted member list, so in concurrent
// mode the event loop and the speculation workers may share one cache:
// whoever builds first inserts (with a double-check under the lock), and
// every later lookup returns the byte-identical entry it would have
// built itself.
func (m *Maintainer) triangulation(c *buildCtx, view *LocalView, members []int, now float64) (*triEntry, error) {
	// Normalize: members sorted by global id. Insertion sort instead of
	// sort.Slice: witness neighborhoods are small (tens of members),
	// global ids are unique (ties impossible), and the closure +
	// reflection swapper of sort.Slice would allocate on every
	// triangulation lookup — the routing loop's hottest call.
	c.order = append(c.order[:0], members...)
	for i := 1; i < len(c.order); i++ {
		li := c.order[i]
		key := view.IDs[li]
		j := i - 1
		for j >= 0 && view.IDs[c.order[j]] > key {
			c.order[j+1] = c.order[j]
			j--
		}
		c.order[j+1] = li
	}

	sig := sigMembers(view, c.order)
	m.lock()
	for _, e := range m.tris[sig] {
		if e.matchesMembers(view, c.order) {
			if now > e.lastHit {
				e.lastHit = now
			}
			m.stats.TriHits++
			m.unlock()
			return e, nil
		}
	}
	m.stats.TriBuilds++
	m.unlock()

	ids := make([]int, len(c.order))
	pts := make([]geom.Point, len(c.order))
	idx := make(map[int]int, len(c.order))
	byCoord := make(map[geom.Point]int, len(c.order))
	c.sub = c.sub[:0]
	for i, li := range c.order {
		ids[i] = view.IDs[li]
		pts[i] = view.Pts[li]
		si, dup := byCoord[pts[i]]
		if !dup {
			si = len(c.sub)
			byCoord[pts[i]] = si
			c.sub = append(c.sub, pts[i])
		}
		idx[ids[i]] = si
	}
	edges, err := c.delaunayEdges(c.sub)
	if err != nil {
		return nil, err
	}
	e := &triEntry{ids: ids, pts: pts, edges: edges, idx: idx, lastHit: now}
	m.lock()
	if m.concurrent {
		// Double-check: a concurrent build may have inserted the same
		// canonical entry while ours ran. Keep the first; both are
		// byte-identical.
		for _, e2 := range m.tris[sig] {
			if e2.matchesMembers(view, c.order) {
				if now > e2.lastHit {
					e2.lastHit = now
				}
				m.unlock()
				return e2, nil
			}
		}
	}
	m.tris[sig] = append(m.tris[sig], e)
	m.unlock()
	return e, nil
}

// delaunayEdges triangulates sub (distinct points) and packs the edge set,
// preserving DelaunayGraph's degenerate semantics (n < 3 or collinear
// inputs connect in path order).
func (c *buildCtx) delaunayEdges(sub []geom.Point) (map[uint64]struct{}, error) {
	tri, err := c.tr.Triangulate(sub)
	if err != nil {
		return nil, err
	}
	if len(tri.Triangles) == 0 {
		// Degenerate: defer to the graph construction's path-order limit.
		g, err := c.tr.Graph(sub)
		if err != nil {
			return nil, err
		}
		edges := make(map[uint64]struct{})
		for _, e := range g.Edges() {
			edges[uint64(e[0])<<20|uint64(e[1])] = struct{}{}
		}
		return edges, nil
	}
	edges := make(map[uint64]struct{}, 3*len(tri.Triangles))
	add := func(u, v int) {
		if u > v {
			u, v = v, u
		}
		edges[uint64(u)<<20|uint64(v)] = struct{}{}
	}
	for _, t := range tri.Triangles {
		add(t.A, t.B)
		add(t.B, t.C)
		add(t.C, t.A)
	}
	return edges, nil
}

// maybeSweep evicts idle and superseded entries at most once per
// sweepEvery simulated seconds. Called with the cache locked (in
// concurrent mode).
func (m *Maintainer) maybeSweep(now float64) {
	if now-m.lastSweep < sweepEvery {
		return
	}
	m.sweepSpecs(now)
	m.prevSweep, m.lastSweep = m.lastSweep, now
	for sig, bucket := range m.tris {
		keep := bucket[:0]
		for _, e := range bucket {
			if m.evictable(e.ids, e.pts, e.lastHit, now) {
				m.stats.Evictions++
				continue
			}
			keep = append(keep, e)
		}
		if len(keep) == 0 {
			delete(m.tris, sig)
		} else {
			m.tris[sig] = keep
		}
	}
	for sig, bucket := range m.results {
		keep := bucket[:0]
		for _, e := range bucket {
			if m.evictable(e.ids, e.pts, e.lastHit, now) {
				m.stats.Evictions++
				continue
			}
			keep = append(keep, e)
		}
		if len(keep) == 0 {
			delete(m.results, sig)
		} else {
			m.results[sig] = keep
		}
	}
}

// evictable implements the retention policy: drop after cacheTTL idle
// seconds, or — once the entry went one full sweep without a hit — as
// soon as any member's recorded position is superseded by a fresher
// beacon (stale 2-hop knowledge keeps hot entries alive until the
// viewers catch up).
func (m *Maintainer) evictable(ids []int, pts []geom.Point, lastHit, now float64) bool {
	if now-lastHit > cacheTTL {
		return true
	}
	if lastHit >= m.prevSweep {
		return false
	}
	for i, id := range ids {
		if lp, ok := m.lastPos[id]; ok && !lp.Eq(pts[i]) {
			return true
		}
	}
	return false
}

func (e *resEntry) matches(view *LocalView, variant Variant, k int) bool {
	if e.self != view.SelfID || e.variant != variant || e.k != k ||
		e.r != view.R || len(e.ids) != len(view.IDs) {
		return false
	}
	// Views are keyed order-insensitively: same (id, position) multiset
	// means the same query. Sorted comparison via the signature already
	// filtered almost everything; verify exactly.
	return sameIDPosSet(e.ids, e.pts, view.IDs, view.Pts)
}

func (e *triEntry) matchesMembers(view *LocalView, order []int) bool {
	if len(e.ids) != len(order) {
		return false
	}
	for i, li := range order {
		if e.ids[i] != view.IDs[li] || !e.pts[i].Eq(view.Pts[li]) {
			return false
		}
	}
	return true
}

// sameIDPosSet compares two (id, position) collections as sets. Both
// sides have unique ids; a is sorted by id (entry storage order is the
// view order of the first query, so sort-compare through index maps).
func sameIDPosSet(aIDs []int, aPts []geom.Point, bIDs []int, bPts []geom.Point) bool {
	if len(aIDs) != len(bIDs) {
		return false
	}
	pos := make(map[int]geom.Point, len(aIDs))
	for i, id := range aIDs {
		pos[id] = aPts[i]
	}
	for i, id := range bIDs {
		p, ok := pos[id]
		if !ok || !p.Eq(bPts[i]) {
			return false
		}
	}
	return true
}

// fnv1a64 constants.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvMix(h, x uint64) uint64 {
	h ^= x
	h *= fnvPrime64
	return h
}

// sigMembers hashes the sorted (id, position-bits) member list.
func sigMembers(view *LocalView, order []int) uint64 {
	h := uint64(fnvOffset64)
	for _, li := range order {
		h = fnvMix(h, uint64(view.IDs[li])+1)
		h = fnvMix(h, math.Float64bits(view.Pts[li].X))
		h = fnvMix(h, math.Float64bits(view.Pts[li].Y))
	}
	return h
}

// sigViewQuery hashes a whole spanner query: the view's (id, position)
// multiset (order-insensitively, via a commutative fold) plus self,
// variant, k, and radius.
func sigViewQuery(view *LocalView, variant Variant, k int) uint64 {
	var fold uint64
	for i, id := range view.IDs {
		h := uint64(fnvOffset64)
		h = fnvMix(h, uint64(id)+1)
		h = fnvMix(h, math.Float64bits(view.Pts[i].X))
		h = fnvMix(h, math.Float64bits(view.Pts[i].Y))
		fold += h // commutative: order-insensitive
	}
	h := uint64(fnvOffset64)
	h = fnvMix(h, fold)
	h = fnvMix(h, uint64(view.SelfID)+1)
	h = fnvMix(h, uint64(variant)+1)
	h = fnvMix(h, uint64(k)+1)
	h = fnvMix(h, math.Float64bits(view.R))
	return h
}
