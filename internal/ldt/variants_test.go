package ldt

import (
	"math/rand"
	"testing"

	"glr/internal/geom"
)

func viewAround(t *testing.T, pts []geom.Point, self int, r float64) *LocalView {
	t.Helper()
	udg := geom.UnitDiskGraph(pts, r)
	ids := []int{self}
	vpts := []geom.Point{pts[self]}
	for _, v := range udg.KHop(self, 2) {
		if v != self {
			ids = append(ids, v)
			vpts = append(vpts, pts[v])
		}
	}
	view, err := NewLocalView(self, ids, vpts, r)
	if err != nil {
		t.Fatal(err)
	}
	return view
}

func TestGabrielNeighborsSubsetOfUDG(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	pts := randomPoints(rng, 40, 800, 800)
	const r = 250
	for self := 0; self < 10; self++ {
		view := viewAround(t, pts, self, r)
		udgSet := map[int]bool{}
		for _, li := range view.UDGNeighbors() {
			udgSet[li] = true
		}
		for _, li := range view.GabrielNeighbors() {
			if !udgSet[li] {
				t.Fatal("Gabriel neighbor not a UDG neighbor")
			}
		}
	}
}

func TestUDGNeighborsMatchRange(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	pts := randomPoints(rng, 30, 500, 500)
	const r = 200
	view := viewAround(t, pts, 0, r)
	for _, li := range view.UDGNeighbors() {
		if view.Pts[0].Dist(view.Pts[li]) > r {
			t.Fatal("UDG neighbor out of range")
		}
	}
	// Every in-range known node must appear.
	count := 0
	for i := 1; i < len(view.Pts); i++ {
		if view.Pts[0].Dist(view.Pts[i]) <= r {
			count++
		}
	}
	if got := len(view.UDGNeighbors()); got != count {
		t.Errorf("UDGNeighbors = %d, want %d", got, count)
	}
}

func TestSpannerNeighborCountsOrdered(t *testing.T) {
	// LDTG and Gabriel both prune the UDG; Gabriel prunes at least as
	// hard as the Delaunay-based construction on incident edges is not
	// guaranteed pointwise, but both must be ≤ UDG degree.
	rng := rand.New(rand.NewSource(63))
	pts := randomPoints(rng, 50, 600, 600)
	const r = 220
	for self := 0; self < 8; self++ {
		view := viewAround(t, pts, self, r)
		udg := len(view.UDGNeighbors())
		gg := len(view.GabrielNeighbors())
		ld, err := view.LDTGNeighbors(2)
		if err != nil {
			t.Fatal(err)
		}
		if gg > udg || len(ld) > udg {
			t.Fatalf("pruned spanners exceed UDG degree: udg=%d gg=%d ldtg=%d", udg, gg, len(ld))
		}
	}
}

func TestGabrielEdgesSurviveInLDTGLocally(t *testing.T) {
	// The node's incident Gabriel edges are Delaunay edges in every
	// local triangulation, so the LDTG must accept them.
	rng := rand.New(rand.NewSource(64))
	pts := randomPoints(rng, 35, 700, 700)
	const r = 260
	for self := 0; self < 8; self++ {
		view := viewAround(t, pts, self, r)
		ld, err := view.LDTGNeighbors(2)
		if err != nil {
			t.Fatal(err)
		}
		ldSet := map[int]bool{}
		for _, li := range ld {
			ldSet[li] = true
		}
		// Gabriel test must be computed against the FULL point set to be
		// a guaranteed subset; the view-local Gabriel can accept edges a
		// hidden point would block. Use the global graph's incident
		// edges mapped into the view.
		gg := GabrielGraph(pts, r)
		for _, g := range gg.Neighbors(self) {
			li := -1
			for i, id := range view.IDs {
				if id == g {
					li = i
					break
				}
			}
			if li == -1 {
				continue // outside the 2-hop view
			}
			if !ldSet[li] {
				t.Fatalf("global Gabriel edge %d-%d missing from local LDTG", self, g)
			}
		}
	}
}
