// Package ldt implements the paper's §2.1 geometric machinery: the k-local
// Delaunay triangulation graph (k-LDTG), a planar geometric spanner built
// from k-hop neighborhood information only, plus the face-routing
// primitives (right-hand rule traversal) used to escape local minima on
// that planar graph.
//
// Two constructions are provided:
//
//   - BuildLDTG: the oracle construction over the full point set, used by
//     analysis, tests, and figures.
//   - LocalView.LDTGNeighbors: the construction a single node can perform
//     from its own distance-k neighborhood knowledge (beacon-fed), which
//     is what the GLR protocol actually runs. Because our connectivity
//     model is a unit-disk graph, known positions imply known adjacency,
//     so a node reconstructs the local topology from positions alone.
package ldt

import (
	"fmt"

	"glr/internal/geom"
)

// BuildLDTG computes the k-LDTG over pts with transmission radius r: an
// edge uv (necessarily a unit-disk edge) is accepted iff it appears in the
// Delaunay triangulation of Nk(u), of Nk(v), and of Nk(w) for every 1-hop
// neighbor w of u or v whose k-neighborhood contains both u and v. This is
// the paper's acceptance rule ("we do this to obtain a planar graph
// directly, avoiding the extra time incurred by the planar process"),
// applied symmetrically from both endpoints.
//
// The result is planar for k ≥ 2 and contains the Gabriel graph restricted
// to unit-disk edges, hence is connected whenever the unit-disk graph is.
func BuildLDTG(pts []geom.Point, r float64, k int) (*geom.Graph, error) {
	if k < 1 {
		return nil, fmt.Errorf("ldt: k must be ≥ 1, got %d", k)
	}
	n := len(pts)
	udg := geom.UnitDiskGraph(pts, r)
	out := geom.NewGraph(n)

	// Per-node k-neighborhoods and local Delaunay triangulations.
	hood := make([][]int, n)
	localDT := make([]*geom.Graph, n)  // graph over local indices
	localIdx := make([]map[int]int, n) // global id -> local index
	for u := 0; u < n; u++ {
		hood[u] = udg.KHop(u, k)
		sub := make([]geom.Point, len(hood[u]))
		localIdx[u] = make(map[int]int, len(hood[u]))
		for i, g := range hood[u] {
			sub[i] = pts[g]
			localIdx[u][g] = i
		}
		dt, err := geom.DelaunayGraph(sub)
		if err != nil {
			return nil, fmt.Errorf("ldt: local Delaunay at node %d: %w", u, err)
		}
		localDT[u] = dt
	}

	inLocalDT := func(w, a, b int) (present, applicable bool) {
		ia, oka := localIdx[w][a]
		ib, okb := localIdx[w][b]
		if !oka || !okb {
			return false, false
		}
		return localDT[w].HasEdge(ia, ib), true
	}

	for _, e := range udg.Edges() {
		u, v := e[0], e[1]
		accept := true
		// The rule quantifies over w ∈ N1(u) (and symmetrically N1(v));
		// u and v themselves are covered since v ∈ N1(u) for a UDG edge.
		witnesses := append(udg.Neighbors(u), udg.Neighbors(v)...)
		witnesses = append(witnesses, u, v)
		for _, w := range witnesses {
			if present, applicable := inLocalDT(w, u, v); applicable && !present {
				accept = false
				break
			}
		}
		if accept {
			out.AddEdge(u, v)
		}
	}
	return out, nil
}

// GabrielGraph returns the Gabriel graph restricted to unit-disk edges:
// uv is kept iff |uv| ≤ r and the closed disk with diameter uv contains no
// other point (the closed-disk rule keeps the graph planar even for
// cocircular configurations such as square corners). It is a connected
// (when the UDG is) planar subgraph of the LDTG, used in tests and as a
// baseline spanner.
func GabrielGraph(pts []geom.Point, r float64) *geom.Graph {
	g := geom.NewGraph(len(pts))
	r2 := r * r
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if pts[i].Dist2(pts[j]) > r2 {
				continue
			}
			mid := geom.Midpoint(pts[i], pts[j])
			rad2 := pts[i].Dist2(pts[j]) / 4
			empty := true
			for m := range pts {
				if m == i || m == j {
					continue
				}
				if mid.Dist2(pts[m]) <= rad2 {
					empty = false
					break
				}
			}
			if empty {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// memberSignature hashes a sorted member-index list (FNV-1a) for the
// triangulation memo.
func memberSignature(members []int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, m := range members {
		h ^= uint64(m) + 1
		h *= prime64
	}
	return h
}

// LocalView is what one node knows about its surroundings: its own id and
// the ids/positions of nodes within graph distance k (beacon-fed; self
// first). Because connectivity is a unit-disk relation, the view's
// adjacency is derived from positions.
type LocalView struct {
	SelfID int
	IDs    []int        // IDs[0] == SelfID
	Pts    []geom.Point // parallel to IDs
	R      float64      // transmission radius
}

// NewLocalView validates and builds a view. ids[0] must be selfID.
func NewLocalView(selfID int, ids []int, pts []geom.Point, r float64) (*LocalView, error) {
	if len(ids) == 0 || ids[0] != selfID {
		return nil, fmt.Errorf("ldt: view must list self first")
	}
	if len(ids) != len(pts) {
		return nil, fmt.Errorf("ldt: ids/pts length mismatch %d != %d", len(ids), len(pts))
	}
	if r <= 0 {
		return nil, fmt.Errorf("ldt: radius must be positive")
	}
	return &LocalView{SelfID: selfID, IDs: ids, Pts: pts, R: r}, nil
}

// KnownGraph returns the unit-disk graph over the view's points (local
// indices; 0 is self).
func (v *LocalView) KnownGraph() *geom.Graph {
	return geom.UnitDiskGraph(v.Pts, v.R)
}

// GabrielNeighbors returns the local indices of this node's incident
// Gabriel-graph edges within the view (ablation alternative to the LDTG).
func (v *LocalView) GabrielNeighbors() []int {
	g := GabrielGraph(v.Pts, v.R)
	return g.Neighbors(0)
}

// UDGNeighbors returns the local indices of every known 1-hop neighbor
// (greedy routing with no planarization; ablation alternative).
func (v *LocalView) UDGNeighbors() []int {
	return v.KnownGraph().Neighbors(0)
}

// LDTGNeighbors computes, from this node's standpoint, the LDTG edges
// incident to self, applying the paper's acceptance rule over the
// knowledge horizon: uv accepted iff uv ∈ A(Nk(self)) and uv ∈ A(Nk(w))
// for every known 1-hop neighbor w whose (known) k-neighborhood contains
// both endpoints. It returns local indices of accepted neighbors, sorted.
//
// Boundary truncation (the node cannot see past its k-hop horizon) can
// make this differ slightly from the oracle BuildLDTG — exactly the
// imprecision a real deployment has; greedy forwarding only requires each
// node's own incident edge set.
//
// Every call rebuilds the witness triangulations from scratch (with a
// per-call memo over shared witness neighborhoods). The protocol's hot
// path goes through Maintainer instead, which keeps triangulations alive
// across check intervals and across nodes.
func (v *LocalView) LDTGNeighbors(k int) ([]int, error) {
	return v.ldtgNeighbors(k, geom.DelaunayGraph)
}

// LDTGNeighborsRef is LDTGNeighbors over the reference (pre-mesh)
// Delaunay construction. It is the protocol's from-scratch escape hatch
// (core Config.DisableSpannerCache) and the baseline the cached path is
// equivalence-tested and benchmarked against.
func (v *LocalView) LDTGNeighborsRef(k int) ([]int, error) {
	return v.ldtgNeighbors(k, geom.DelaunayGraphRef)
}

func (v *LocalView) ldtgNeighbors(k int, graphFn func([]geom.Point) (*geom.Graph, error)) ([]int, error) {
	if k < 1 {
		return nil, fmt.Errorf("ldt: k must be ≥ 1, got %d", k)
	}
	known := v.KnownGraph()

	// dtOf triangulates the positions of a member set, coalescing
	// coincident points (two nodes at identical coordinates share one
	// Delaunay vertex; a zero-length edge is then never "present", which
	// degrades gracefully). It returns the triangulation over sub-indices
	// and the member→sub-index mapping. Results are memoized by member
	// set: in dense neighborhoods many witnesses share the same k-hop
	// hood (often the entire view), making this the dominant cost.
	type dtResult struct {
		g   *geom.Graph
		idx map[int]int
	}
	memo := make(map[uint64]dtResult)
	dtOf := func(members []int) (*geom.Graph, map[int]int, error) {
		key := memberSignature(members)
		if r, ok := memo[key]; ok {
			return r.g, r.idx, nil
		}
		byCoord := make(map[geom.Point]int, len(members))
		idx := make(map[int]int, len(members))
		sub := make([]geom.Point, 0, len(members))
		for _, m := range members {
			p := v.Pts[m]
			si, dup := byCoord[p]
			if !dup {
				si = len(sub)
				byCoord[p] = si
				sub = append(sub, p)
			}
			idx[m] = si
		}
		g, err := graphFn(sub)
		if err != nil {
			return nil, nil, err
		}
		memo[key] = dtResult{g: g, idx: idx}
		return g, idx, nil
	}

	// Precompute each witness's k-neighborhood triangulation once. The
	// witnesses are self and self's 1-hop neighbors.
	witnesses := append([]int{0}, known.Neighbors(0)...)
	type witness struct {
		dt     *geom.Graph
		idx    map[int]int
		member map[int]bool
	}
	wit := make(map[int]witness, len(witnesses))
	for _, w := range witnesses {
		wh := known.KHop(w, k)
		dt, idx, err := dtOf(wh)
		if err != nil {
			return nil, err
		}
		member := make(map[int]bool, len(wh))
		for _, x := range wh {
			member[x] = true
		}
		wit[w] = witness{dt: dt, idx: idx, member: member}
	}

	self := wit[0]
	var accepted []int
	for _, nb := range known.Neighbors(0) {
		if !self.dt.HasEdge(self.idx[0], self.idx[nb]) {
			continue
		}
		ok := true
		for _, w := range witnesses {
			ww := wit[w]
			if !ww.member[0] || !ww.member[nb] {
				continue
			}
			if !ww.dt.HasEdge(ww.idx[0], ww.idx[nb]) {
				ok = false
				break
			}
		}
		if ok {
			accepted = append(accepted, nb)
		}
	}
	return accepted, nil
}
