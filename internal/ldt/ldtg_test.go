package ldt

import (
	"math/rand"
	"testing"

	"glr/internal/geom"
)

func randomPoints(rng *rand.Rand, n int, w, h float64) []geom.Point {
	pts := make([]geom.Point, 0, n)
	seen := make(map[geom.Point]struct{}, n)
	for len(pts) < n {
		p := geom.Pt(rng.Float64()*w, rng.Float64()*h)
		if _, dup := seen[p]; dup {
			continue
		}
		seen[p] = struct{}{}
		pts = append(pts, p)
	}
	return pts
}

func TestBuildLDTGRejectsBadK(t *testing.T) {
	if _, err := BuildLDTG(nil, 100, 0); err == nil {
		t.Error("k=0 should be rejected")
	}
}

func TestLDTGSubgraphOfUDG(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		pts := randomPoints(rng, 40, 1000, 1000)
		const r = 250
		g, err := BuildLDTG(pts, r, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range g.Edges() {
			if pts[e[0]].Dist(pts[e[1]]) > r {
				t.Fatalf("LDTG edge %v longer than radius", e)
			}
		}
	}
}

func TestLDTGPlanarK2(t *testing.T) {
	// Li–Calinescu–Wan: the k-localized Delaunay graph is planar for
	// k ≥ 2. This is the paper's central structural claim for the
	// routing graph.
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 15; trial++ {
		pts := randomPoints(rng, 35, 800, 800)
		for _, r := range []float64{150, 250, 400} {
			g, err := BuildLDTG(pts, r, 2)
			if err != nil {
				t.Fatal(err)
			}
			if !g.IsPlanarEmbedding(pts) {
				t.Fatalf("2-LDTG not planar (trial %d, r=%v)", trial, r)
			}
		}
	}
}

func TestLDTGContainsGabrielGraph(t *testing.T) {
	// Gabriel edges have an empty diametral disk, so they survive every
	// local Delaunay test; GG∩UDG ⊆ LDTG gives connectivity.
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 10; trial++ {
		pts := randomPoints(rng, 40, 1000, 1000)
		const r = 300
		g, err := BuildLDTG(pts, r, 2)
		if err != nil {
			t.Fatal(err)
		}
		gg := GabrielGraph(pts, r)
		for _, e := range gg.Edges() {
			if !g.HasEdge(e[0], e[1]) {
				t.Fatalf("Gabriel edge %v missing from LDTG", e)
			}
		}
	}
}

func TestLDTGConnectedWhenUDGConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	done := 0
	for trial := 0; done < 10 && trial < 200; trial++ {
		pts := randomPoints(rng, 50, 1000, 1000)
		const r = 260 // comfortably above the connectivity threshold
		if !geom.UnitDiskGraph(pts, r).Connected() {
			continue
		}
		done++
		g, err := BuildLDTG(pts, r, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !g.Connected() {
			t.Fatal("LDTG must stay connected when the UDG is connected")
		}
	}
	if done < 10 {
		t.Fatalf("only %d connected UDG trials generated", done)
	}
}

func TestLDTGSparseDenseTriangle(t *testing.T) {
	// Three mutually-in-range nodes: the full triangle survives (it is
	// its own Delaunay triangulation everywhere).
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(5, 8)}
	g, err := BuildLDTG(pts, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.EdgeCount() != 3 {
		t.Errorf("triangle LDTG has %d edges, want 3", g.EdgeCount())
	}
}

func TestLDTGPrunesCrossingsOfDenseUDG(t *testing.T) {
	// Dense UDGs have many crossing edges; the LDTG must be much sparser
	// (≤ 3n−6 by planarity) while the UDG is quadratic-ish.
	rng := rand.New(rand.NewSource(35))
	pts := randomPoints(rng, 50, 500, 500)
	const r = 400
	udg := geom.UnitDiskGraph(pts, r)
	g, err := BuildLDTG(pts, r, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.EdgeCount() > 3*len(pts)-6 {
		t.Errorf("LDTG edge count %d exceeds planar bound %d", g.EdgeCount(), 3*len(pts)-6)
	}
	if g.EdgeCount() >= udg.EdgeCount() {
		t.Errorf("LDTG (%d edges) should be sparser than dense UDG (%d)", g.EdgeCount(), udg.EdgeCount())
	}
}

func TestGabrielGraphBasic(t *testing.T) {
	// Square: sides are Gabriel edges; diagonals are not (each diagonal's
	// diametral circle contains the other two corners).
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(10, 10), geom.Pt(0, 10)}
	g := GabrielGraph(pts, 100)
	if g.EdgeCount() != 4 {
		t.Fatalf("square Gabriel graph has %d edges, want 4", g.EdgeCount())
	}
	if g.HasEdge(0, 2) || g.HasEdge(1, 3) {
		t.Error("diagonals must not be Gabriel edges")
	}
	// Radius restriction.
	g2 := GabrielGraph(pts, 5)
	if g2.EdgeCount() != 0 {
		t.Error("radius below side length should yield no edges")
	}
}

func TestNewLocalViewValidation(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)}
	if _, err := NewLocalView(5, []int{4, 6}, pts, 10); err == nil {
		t.Error("self-not-first should be rejected")
	}
	if _, err := NewLocalView(4, []int{4}, pts, 10); err == nil {
		t.Error("length mismatch should be rejected")
	}
	if _, err := NewLocalView(4, []int{4, 6}, pts, 0); err == nil {
		t.Error("zero radius should be rejected")
	}
	if _, err := NewLocalView(4, []int{4, 6}, pts, 10); err != nil {
		t.Errorf("valid view rejected: %v", err)
	}
}

func TestLocalLDTGMatchesOracleInterior(t *testing.T) {
	// For a node whose 2-hop horizon covers the whole network, the local
	// computation must agree exactly with the oracle construction.
	rng := rand.New(rand.NewSource(36))
	for trial := 0; trial < 10; trial++ {
		pts := randomPoints(rng, 15, 200, 200)
		const r = 300 // everyone within one hop of everyone
		oracle, err := BuildLDTG(pts, r, 2)
		if err != nil {
			t.Fatal(err)
		}
		for u := range pts {
			ids := []int{u}
			vpts := []geom.Point{pts[u]}
			for v := range pts {
				if v != u {
					ids = append(ids, v)
					vpts = append(vpts, pts[v])
				}
			}
			view, err := NewLocalView(u, ids, vpts, r)
			if err != nil {
				t.Fatal(err)
			}
			local, err := view.LDTGNeighbors(2)
			if err != nil {
				t.Fatal(err)
			}
			got := map[int]bool{}
			for _, li := range local {
				got[ids[li]] = true
			}
			want := map[int]bool{}
			for _, v := range oracle.Neighbors(u) {
				want[v] = true
			}
			if len(got) != len(want) {
				t.Fatalf("node %d: local %v vs oracle %v", u, got, want)
			}
			for v := range want {
				if !got[v] {
					t.Fatalf("node %d: oracle edge to %d missing locally", u, v)
				}
			}
		}
	}
}

func TestLocalLDTGNeighborsAreUDGNeighbors(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	pts := randomPoints(rng, 30, 500, 500)
	const r = 150
	udg := geom.UnitDiskGraph(pts, r)
	for u := 0; u < len(pts); u++ {
		hood := udg.KHop(u, 2)
		ids := []int{u}
		vpts := []geom.Point{pts[u]}
		for _, v := range hood {
			if v != u {
				ids = append(ids, v)
				vpts = append(vpts, pts[v])
			}
		}
		view, err := NewLocalView(u, ids, vpts, r)
		if err != nil {
			t.Fatal(err)
		}
		local, err := view.LDTGNeighbors(2)
		if err != nil {
			t.Fatal(err)
		}
		for _, li := range local {
			if pts[u].Dist(pts[ids[li]]) > r {
				t.Fatalf("local LDTG proposed an out-of-range neighbor")
			}
		}
	}
}

func TestLocalLDTGHandlesCoincidentPoints(t *testing.T) {
	// Two nodes at identical coordinates must not break the construction.
	ids := []int{0, 1, 2, 3}
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(5, 0), geom.Pt(5, 0), geom.Pt(2, 4)}
	view, err := NewLocalView(0, ids, pts, 10)
	if err != nil {
		t.Fatal(err)
	}
	nbrs, err := view.LDTGNeighbors(2)
	if err != nil {
		t.Fatalf("coincident points broke LDTG: %v", err)
	}
	if len(nbrs) == 0 {
		t.Error("expected at least one accepted neighbor")
	}
}

func TestLocalLDTGRejectsBadK(t *testing.T) {
	view, _ := NewLocalView(0, []int{0}, []geom.Point{geom.Pt(0, 0)}, 10)
	if _, err := view.LDTGNeighbors(0); err == nil {
		t.Error("k=0 should be rejected")
	}
}

func BenchmarkLocalLDTG(b *testing.B) {
	rng := rand.New(rand.NewSource(38))
	pts := randomPoints(rng, 50, 1500, 300)
	const r = 100
	udg := geom.UnitDiskGraph(pts, r)
	hood := udg.KHop(0, 2)
	ids := []int{0}
	vpts := []geom.Point{pts[0]}
	for _, v := range hood {
		if v != 0 {
			ids = append(ids, v)
			vpts = append(vpts, pts[v])
		}
	}
	view, _ := NewLocalView(0, ids, vpts, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := view.LDTGNeighbors(2); err != nil {
			b.Fatal(err)
		}
	}
}
