package ldt

import (
	"math"
	"math/rand"
	"testing"

	"glr/internal/geom"
)

func TestGreedyNeighbor(t *testing.T) {
	self := geom.Pt(0, 0)
	dst := geom.Pt(10, 0)
	tests := []struct {
		name string
		nbrs []geom.Point
		want int
	}{
		{"closest to dst wins", []geom.Point{geom.Pt(2, 0), geom.Pt(5, 0), geom.Pt(3, 3)}, 1},
		{"no closer neighbor", []geom.Point{geom.Pt(-5, 0), geom.Pt(0, 12)}, -1},
		{"no neighbors", nil, -1},
		{"equal distance not closer", []geom.Point{geom.Pt(0, 20)}, -1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := GreedyNeighbor(self, tt.nbrs, dst); got != tt.want {
				t.Errorf("got %d, want %d", got, tt.want)
			}
		})
	}
}

func TestFirstCCW(t *testing.T) {
	center := geom.Pt(0, 0)
	nbrs := []geom.Point{geom.Pt(1, 0), geom.Pt(0, 1), geom.Pt(-1, 0), geom.Pt(0, -1)}
	tests := []struct {
		dir  float64
		want int
	}{
		{0, 1},            // from +x, first CCW is +y
		{math.Pi / 2, 2},  // from +y, first CCW is −x
		{math.Pi, 3},      // from −x, first CCW is −y
		{-math.Pi / 2, 0}, // from −y, first CCW is +x
		{math.Pi / 4, 1},  // between +x and +y: +y first
	}
	for _, tt := range tests {
		if got := firstCCW(center, tt.dir, nbrs); got != tt.want {
			t.Errorf("firstCCW(dir=%v) = %d, want %d", tt.dir, got, tt.want)
		}
	}
}

func TestFirstCCWGoBackLast(t *testing.T) {
	// A neighbor exactly in the ingress direction (the previous hop) is
	// chosen only if it is the sole option.
	center := geom.Pt(0, 0)
	if got := firstCCW(center, 0, []geom.Point{geom.Pt(5, 0)}); got != 0 {
		t.Errorf("sole neighbor must be returned, got %d", got)
	}
	nbrs := []geom.Point{geom.Pt(5, 0), geom.Pt(0, -5)}
	if got := firstCCW(center, 0, nbrs); got != 1 {
		t.Errorf("go-back should lose to any other neighbor, got %d", got)
	}
}

func TestProperIntersection(t *testing.T) {
	x, ok := properIntersection(geom.Pt(0, -1), geom.Pt(0, 1), geom.Pt(-1, 0), geom.Pt(1, 0))
	if !ok || x.Dist(geom.Pt(0, 0)) > 1e-12 {
		t.Errorf("crossing at origin expected, got %v ok=%v", x, ok)
	}
	if _, ok := properIntersection(geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1), geom.Pt(1, 1)); ok {
		t.Error("parallel segments must not intersect")
	}
	if _, ok := properIntersection(geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 0), geom.Pt(2, 0)); ok {
		t.Error("shared endpoint is not a proper intersection")
	}
}

// walkFace runs face routing over a static planar graph until delivery,
// greedy exit, failure, or a step budget is exhausted. It returns the node
// where the walk ended and the decision that ended it.
func walkFace(t *testing.T, g *geom.Graph, pts []geom.Point, start, dst int, budget int) (int, FaceDecision) {
	t.Helper()
	var st FaceState
	cur := start
	for i := 0; i < budget; i++ {
		if cur == dst {
			return cur, FaceExitGreedy
		}
		nbrs := g.Neighbors(cur)
		nbrPts := make([]geom.Point, len(nbrs))
		for j, nb := range nbrs {
			nbrPts[j] = pts[nb]
		}
		next, dec := st.Step(cur, pts[cur], nbrs, nbrPts, pts[dst])
		switch dec {
		case FaceForward:
			cur = nbrs[next]
		case FaceExitGreedy, FaceFail:
			return cur, dec
		}
	}
	t.Fatalf("face walk exceeded %d steps", budget)
	return -1, FaceFail
}

func TestFaceRoutingEscapesSimpleVoid(t *testing.T) {
	// A "U" void: greedy from node 0 toward dst 4 is stuck (0's only
	// neighbors lead away). Face routing must escape around the void.
	//
	//     1 --- 2
	//     |     |
	//     0     3 --- 4(dst)
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(0, 10), geom.Pt(10, 10), geom.Pt(10, 0), geom.Pt(20, 0),
	}
	g := geom.NewGraph(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	end, dec := walkFace(t, g, pts, 0, 4, 50)
	if dec == FaceFail {
		t.Fatalf("face routing failed; ended at %d", end)
	}
	// The walk must have reached a node strictly closer to dst than 0
	// (here eventually node 3 or 4).
	if pts[end].Dist(pts[4]) >= pts[0].Dist(pts[4]) {
		t.Errorf("no progress: ended at node %d", end)
	}
}

func TestFaceRoutingFullDeliveryOnPlanarSpanner(t *testing.T) {
	// End-to-end greedy+face (GFG) on random connected LDTGs: combined
	// forwarding must always reach the destination on a static connected
	// planar graph.
	rng := rand.New(rand.NewSource(40))
	trials := 0
	for trials < 12 {
		pts := randomPoints(rng, 40, 1000, 1000)
		const r = 280
		if !geom.UnitDiskGraph(pts, r).Connected() {
			continue
		}
		trials++
		g, err := BuildLDTG(pts, r, 2)
		if err != nil {
			t.Fatal(err)
		}
		src, dst := 0, len(pts)-1
		cur, prevMin := src, -1
		var st FaceState
		for step := 0; step < 500; step++ {
			if cur == dst {
				break
			}
			nbrs := g.Neighbors(cur)
			nbrPts := make([]geom.Point, len(nbrs))
			for j, nb := range nbrs {
				nbrPts[j] = pts[nb]
			}
			if !st.Active {
				if gi := GreedyNeighbor(pts[cur], nbrPts, pts[dst]); gi >= 0 {
					cur = nbrs[gi]
					continue
				}
				prevMin = cur
			}
			next, dec := st.Step(cur, pts[cur], nbrs, nbrPts, pts[dst])
			switch dec {
			case FaceForward:
				cur = nbrs[next]
			case FaceExitGreedy:
				// resume greedy on the next loop iteration
			case FaceFail:
				t.Fatalf("face routing failed on a connected planar graph (stuck near %d, entered at %d)", cur, prevMin)
			}
		}
		if cur != dst {
			t.Fatalf("GFG did not deliver within budget (trial %d)", trials)
		}
	}
}

func TestFaceStateEnterClear(t *testing.T) {
	var st FaceState
	st.Enter(geom.Pt(0, 0), geom.Pt(10, 0))
	if !st.Active || st.EntryDist != 10 {
		t.Errorf("Enter state wrong: %+v", st)
	}
	st.Clear()
	if st.Active {
		t.Error("Clear should deactivate")
	}
}

func TestFaceStepExitsWhenCloser(t *testing.T) {
	var st FaceState
	st.Enter(geom.Pt(0, 0), geom.Pt(10, 0))
	// Now at a node strictly closer than the entry point.
	_, dec := st.Step(7, geom.Pt(5, 0), []int{1}, []geom.Point{geom.Pt(0, 0)}, geom.Pt(10, 0))
	if dec != FaceExitGreedy {
		t.Errorf("decision = %v, want FaceExitGreedy", dec)
	}
	if st.Active {
		t.Error("state should clear on greedy exit")
	}
}

func TestFaceStepFailOnIsolatedNode(t *testing.T) {
	var st FaceState
	_, dec := st.Step(0, geom.Pt(0, 0), nil, nil, geom.Pt(10, 0))
	if dec != FaceFail {
		t.Errorf("decision = %v, want FaceFail for isolated node", dec)
	}
}

func TestFaceFailOnDisconnectedComponent(t *testing.T) {
	// Destination in a separate component, with the start node already
	// the closest point of its component: the face walk can never exit
	// to greedy, so loop detection must terminate it with FaceFail.
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(5, 8), // triangle component
		geom.Pt(-50, 0), // unreachable destination; node 0 is closest
	}
	g := geom.NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	_, dec := walkFace(t, g, pts, 0, 3, 100)
	if dec != FaceFail {
		t.Errorf("decision = %v, want FaceFail on disconnected destination", dec)
	}
}
