package ldt

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"glr/internal/geom"
)

// buildView assembles the 2-hop view of node self over pts with arbitrary
// global ids supplied by label.
func buildView(t *testing.T, pts []geom.Point, self int, r float64, label func(int) int) *LocalView {
	t.Helper()
	udg := geom.UnitDiskGraph(pts, r)
	ids := []int{label(self)}
	vpts := []geom.Point{pts[self]}
	for _, v := range udg.KHop(self, 2) {
		if v != self {
			ids = append(ids, label(v))
			vpts = append(vpts, pts[v])
		}
	}
	view, err := NewLocalView(label(self), ids, vpts, r)
	if err != nil {
		t.Fatal(err)
	}
	return view
}

// acceptedIDs maps local acceptance indices to sorted global ids.
func acceptedIDs(view *LocalView, local []int) []int {
	out := make([]int, len(local))
	for i, li := range local {
		out[i] = view.IDs[li]
	}
	sort.Ints(out)
	return out
}

func sortedCopy(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	return out
}

// TestMaintainerMatchesFromScratch: across evolving random topologies the
// cached path must accept exactly the same neighbor sets as the reference
// from-scratch construction, for every variant.
func TestMaintainerMatchesFromScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := NewMaintainer(false)
	ref := NewMaintainer(true)
	const r = 250
	pts := randomPoints(rng, 40, 900, 900)
	for epoch := 0; epoch < 12; epoch++ {
		now := float64(epoch)
		// Random-walk a subset of nodes between epochs so some witness
		// neighborhoods stay identical (cache hits) and some change.
		for i := range pts {
			if rng.Intn(3) == 0 {
				pts[i].X += rng.Float64()*40 - 20
				pts[i].Y += rng.Float64()*40 - 20
			}
		}
		for i := range pts {
			m.Observe(i, pts[i])
		}
		for self := 0; self < len(pts); self += 3 {
			view := buildView(t, pts, self, r, func(i int) int { return i })
			for _, variant := range []Variant{VariantLDTG, VariantGabriel, VariantUDG} {
				gotIDs, gotPts, err := m.Neighbors(view, variant, 2, now)
				if err != nil {
					t.Fatal(err)
				}
				wantIDs, _, err := ref.Neighbors(view, variant, 2, now)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(sortedCopy(gotIDs), sortedCopy(wantIDs)) {
					t.Fatalf("epoch %d self %d variant %d: cached %v != from-scratch %v",
						epoch, self, variant, gotIDs, wantIDs)
				}
				for i, id := range gotIDs {
					li := -1
					for j, vid := range view.IDs {
						if vid == id {
							li = j
							break
						}
					}
					if li < 0 || !gotPts[i].Eq(view.Pts[li]) {
						t.Fatalf("epoch %d self %d: returned position for %d does not match the view", epoch, self, id)
					}
				}
			}
		}
	}
	st := m.Stats()
	if st.TriHits == 0 {
		t.Error("evolving-topology run produced no triangulation cache hits")
	}
	if st.TriBuilds == 0 || st.Queries == 0 {
		t.Errorf("stats not collected: %+v", st)
	}
}

// TestLDTGNeighborsPermutationInvariant is the keying property the cache
// makes dangerous: the accepted set must be invariant under permuting the
// view's point order and under relabeling global node ids, both for the
// plain construction and — critically — when a permuted view HITS cache
// entries created by the original one.
func TestLDTGNeighborsPermutationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const r = 240
	for trial := 0; trial < 20; trial++ {
		pts := randomPoints(rng, 30, 700, 700)
		self := rng.Intn(len(pts))
		base := buildView(t, pts, self, r, func(i int) int { return i })

		baseLocal, err := base.LDTGNeighbors(2)
		if err != nil {
			t.Fatal(err)
		}
		want := acceptedIDs(base, baseLocal)

		// Point-order permutation: same ids and positions, shuffled
		// order after self.
		perm := rand.New(rand.NewSource(int64(trial))).Perm(len(base.IDs) - 1)
		pIDs := []int{base.IDs[0]}
		pPts := []geom.Point{base.Pts[0]}
		for _, j := range perm {
			pIDs = append(pIDs, base.IDs[j+1])
			pPts = append(pPts, base.Pts[j+1])
		}
		shuffled, err := NewLocalView(base.SelfID, pIDs, pPts, r)
		if err != nil {
			t.Fatal(err)
		}
		shuffledLocal, err := shuffled.LDTGNeighbors(2)
		if err != nil {
			t.Fatal(err)
		}
		if got := acceptedIDs(shuffled, shuffledLocal); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: point-order permutation changed acceptance: %v != %v", trial, got, want)
		}

		// Node-id relabeling: bijection σ, accepted(σ(view)) == σ(accepted).
		sigma := func(i int) int { return 1000 + 7*i }
		relabeled := buildView(t, pts, self, r, sigma)
		relLocal, err := relabeled.LDTGNeighbors(2)
		if err != nil {
			t.Fatal(err)
		}
		wantRel := make([]int, len(want))
		for i, id := range want {
			wantRel[i] = sigma(id)
		}
		sort.Ints(wantRel)
		if got := acceptedIDs(relabeled, relLocal); !reflect.DeepEqual(got, wantRel) {
			t.Fatalf("trial %d: id relabeling changed acceptance: %v != %v", trial, got, wantRel)
		}

		// Cache-keying check: querying the original then the shuffled
		// view on one Maintainer must hit (same signature) and still
		// return the correct mapping.
		m := NewMaintainer(false)
		ids1, _, err := m.Neighbors(base, VariantLDTG, 2, 0)
		if err != nil {
			t.Fatal(err)
		}
		before := m.Stats()
		ids2, _, err := m.Neighbors(shuffled, VariantLDTG, 2, 0)
		if err != nil {
			t.Fatal(err)
		}
		after := m.Stats()
		if after.ResultHits != before.ResultHits+1 {
			t.Fatalf("trial %d: permuted view missed the result cache", trial)
		}
		if !reflect.DeepEqual(sortedCopy(ids1), want) || !reflect.DeepEqual(sortedCopy(ids2), want) {
			t.Fatalf("trial %d: cached acceptance differs: %v / %v != %v", trial, ids1, ids2, want)
		}
	}
}

// TestMaintainerSweepEvictsSupersededAndIdle exercises the retention
// policy directly.
func TestMaintainerSweepEvictsSupersededAndIdle(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pts := randomPoints(rng, 25, 600, 600)
	const r = 220
	m := NewMaintainer(false)
	view := buildView(t, pts, 0, r, func(i int) int { return i })
	if _, _, err := m.Neighbors(view, VariantLDTG, 2, 0); err != nil {
		t.Fatal(err)
	}
	tris, results := m.Size()
	if tris == 0 || results == 0 {
		t.Fatalf("cache empty after a query: %d/%d", tris, results)
	}

	// A superseded member position evicts entries after one un-hit sweep.
	moved := view.IDs[1]
	m.Observe(moved, view.Pts[1].Add(geom.Pt(5, 5)))
	if _, _, err := m.Neighbors(view, VariantUDG, 2, sweepEvery+0.1); err != nil {
		t.Fatal(err) // first sweep: entries were hot, survive
	}
	if _, _, err := m.Neighbors(view, VariantUDG, 2, 2*sweepEvery+0.2); err != nil {
		t.Fatal(err) // second sweep: superseded + cold → evicted
	}
	if m.Stats().Evictions == 0 {
		t.Error("superseded entries were not evicted")
	}

	// Idle entries go after cacheTTL regardless of movement.
	m2 := NewMaintainer(false)
	if _, _, err := m2.Neighbors(view, VariantLDTG, 2, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m2.Neighbors(view, VariantUDG, 2, cacheTTL+sweepEvery+1); err != nil {
		t.Fatal(err)
	}
	if m2.Stats().Evictions == 0 {
		t.Error("idle entries were not TTL-evicted")
	}
}

// TestMaintainerDisabledMatchesLegacy: the from-scratch mode must be the
// literal pre-cache construction.
func TestMaintainerDisabledMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	pts := randomPoints(rng, 35, 800, 800)
	const r = 240
	m := NewMaintainer(true)
	if !m.Disabled() {
		t.Fatal("Disabled() = false")
	}
	for self := 0; self < 8; self++ {
		view := buildView(t, pts, self, r, func(i int) int { return i })
		ids, _, err := m.Neighbors(view, VariantLDTG, 2, 0)
		if err != nil {
			t.Fatal(err)
		}
		local, err := view.LDTGNeighborsRef(2)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sortedCopy(ids), acceptedIDs(view, local)) {
			t.Fatalf("self %d: disabled maintainer diverges from LDTGNeighborsRef", self)
		}
	}
	tris, results := m.Size()
	if tris != 0 || results != 0 {
		t.Error("disabled maintainer cached entries")
	}
}

// TestLDTGNeighborsRefMatchesMesh: the reference and mesh-backed
// from-scratch constructions agree on general-position views.
func TestLDTGNeighborsRefMatchesMesh(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 10; trial++ {
		pts := randomPoints(rng, 40, 900, 900)
		const r = 230
		for self := 0; self < len(pts); self += 5 {
			view := buildView(t, pts, self, r, func(i int) int { return i })
			a, err := view.LDTGNeighbors(2)
			if err != nil {
				t.Fatal(err)
			}
			b, err := view.LDTGNeighborsRef(2)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("trial %d self %d: mesh %v != ref %v", trial, self, a, b)
			}
		}
	}
}

// spannerBenchView builds a dense 2-hop view comparable to the paper's
// 100 m-range neighborhoods at scale.
func spannerBenchView(b *testing.B, n int) *LocalView {
	rng := rand.New(rand.NewSource(77))
	pts := randomPoints(rng, n, 1200, 1200)
	const r = 260
	udg := geom.UnitDiskGraph(pts, r)
	ids := []int{0}
	vpts := []geom.Point{pts[0]}
	for _, v := range udg.KHop(0, 2) {
		if v != 0 {
			ids = append(ids, v)
			vpts = append(vpts, pts[v])
		}
	}
	view, err := NewLocalView(0, ids, vpts, r)
	if err != nil {
		b.Fatal(err)
	}
	return view
}

// BenchmarkSpannerFromScratchRef is the pre-cache cost of one routing-
// loop spanner construction (reference Delaunay, per-call memo only).
func BenchmarkSpannerFromScratchRef(b *testing.B) {
	view := spannerBenchView(b, 60)
	m := NewMaintainer(true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := m.Neighbors(view, VariantLDTG, 2, float64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpannerColdCache measures the cached path on a view whose
// positions change every query: every triangulation is a rebuild (mesh +
// scratch reuse), the regime of fully mobile nodes.
func BenchmarkSpannerColdCache(b *testing.B) {
	view := spannerBenchView(b, 60)
	m := NewMaintainer(false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Nudge one position so every signature misses.
		view.Pts[len(view.Pts)-1].X += 1e-9
		if _, _, err := m.Neighbors(view, VariantLDTG, 2, float64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpannerWarmCache measures the steady state between position
// refreshes: the whole query is served from the result cache.
func BenchmarkSpannerWarmCache(b *testing.B) {
	view := spannerBenchView(b, 60)
	m := NewMaintainer(false)
	if _, _, err := m.Neighbors(view, VariantLDTG, 2, 0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := m.Neighbors(view, VariantLDTG, 2, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}
