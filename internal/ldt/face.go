package ldt

import (
	"math"

	"glr/internal/geom"
)

// Face routing (the paper's escape hatch for greedy local minima, §2.3:
// "Face routing technique is applied when nodes enter local minimum").
// The implementation follows the classical perimeter-mode rules of
// Bose–Morin–Stojmenović–Urrutia / GPSR on the planar LDTG:
//
//   - traverse the current face with the right-hand rule (next edge
//     counterclockwise from the ingress direction);
//   - when the candidate edge crosses the entry→destination segment at a
//     point strictly closer to the destination than any previous
//     crossing, switch to the adjacent face;
//   - return to greedy forwarding as soon as the packet reaches a node
//     strictly closer to the destination than where it entered face mode;
//   - declare failure (in a DTN: store and retry after mobility) when the
//     first edge of the current face is about to be re-traversed.

// FaceState is the perimeter-mode state carried with a message copy. The
// zero value means "not in face mode".
type FaceState struct {
	Active    bool
	EntryPos  geom.Point // Lp: where greedy failed
	EntryDist float64    // |Lp − D|
	CrossDist float64    // |Lf − D|: best crossing of LpD so far
	FirstFrom int        // first directed edge of the current face…
	FirstTo   int        // …for loop detection
	HavePrev  bool
	PrevPos   geom.Point // position of the node that forwarded to us
}

// FaceDecision is the outcome of one face-routing step.
type FaceDecision int

// Face-routing outcomes.
const (
	// FaceForward: forward to the returned neighbor index.
	FaceForward FaceDecision = iota
	// FaceExitGreedy: the current node is closer to the destination than
	// the face-entry point; resume greedy forwarding (state cleared).
	FaceExitGreedy
	// FaceFail: the face has been fully traversed without progress; the
	// destination is unreachable in the current topology.
	FaceFail
)

// Enter initialises face mode at a local minimum.
func (s *FaceState) Enter(selfPos, dstPos geom.Point) {
	*s = FaceState{
		Active:    true,
		EntryPos:  selfPos,
		EntryDist: selfPos.Dist(dstPos),
		CrossDist: selfPos.Dist(dstPos),
		FirstFrom: -1,
		FirstTo:   -1,
	}
}

// Clear leaves face mode.
func (s *FaceState) Clear() { *s = FaceState{} }

// Step executes one face-routing decision at node selfID located at
// selfPos, whose current planar-graph neighbors are nbrIDs/nbrPts
// (parallel slices), heading for dstPos. On FaceForward the first return
// value is the index into nbrIDs of the chosen next hop and the state has
// been updated (PrevPos set) ready to travel with the message.
func (s *FaceState) Step(selfID int, selfPos geom.Point, nbrIDs []int, nbrPts []geom.Point, dstPos geom.Point) (int, FaceDecision) {
	if !s.Active {
		s.Enter(selfPos, dstPos)
	}
	if selfPos.Dist(dstPos) < s.EntryDist {
		s.Clear()
		return -1, FaceExitGreedy
	}
	if len(nbrIDs) == 0 {
		return -1, FaceFail
	}

	// Ingress direction: from self toward the node that sent us the
	// message, or toward the destination when face mode just started.
	var ingress float64
	if s.HavePrev {
		ingress = selfPos.AngleTo(s.PrevPos)
	} else {
		ingress = selfPos.AngleTo(dstPos)
	}

	// Right-hand rule with face changes. Each face change re-aims the
	// ingress at the crossing edge; bounded by the neighbor count.
	next := firstCCW(selfPos, ingress, nbrPts)
	for iter := 0; iter <= len(nbrIDs); iter++ {
		x, crosses := properIntersection(selfPos, nbrPts[next], s.EntryPos, dstPos)
		if !crosses || x.Dist(dstPos) >= s.CrossDist {
			break
		}
		// Crossing closer to the destination: switch to the adjacent
		// face. The crossed edge becomes the new ingress; the face's
		// first-edge marker resets.
		s.CrossDist = x.Dist(dstPos)
		s.FirstFrom, s.FirstTo = -1, -1
		ingress = selfPos.AngleTo(nbrPts[next])
		next = firstCCW(selfPos, ingress, nbrPts)
	}

	if s.FirstFrom == selfID && s.FirstTo == nbrIDs[next] {
		return -1, FaceFail // completed a full face loop
	}
	if s.FirstFrom == -1 {
		s.FirstFrom = selfID
		s.FirstTo = nbrIDs[next]
	}
	s.HavePrev = true
	s.PrevPos = selfPos
	return next, FaceForward
}

// firstCCW returns the index of the neighbor whose bearing from center is
// the smallest strictly-positive counterclockwise rotation from dir;
// a neighbor exactly at dir (e.g. the previous hop) is treated as a full
// turn, making "go back" the last resort.
func firstCCW(center geom.Point, dir float64, nbrPts []geom.Point) int {
	best := -1
	bestTurn := math.Inf(1)
	for i, p := range nbrPts {
		turn := math.Mod(center.AngleTo(p)-dir, 2*math.Pi)
		if turn < 0 {
			turn += 2 * math.Pi
		}
		if turn == 0 {
			turn = 2 * math.Pi
		}
		if turn < bestTurn {
			bestTurn = turn
			best = i
		}
	}
	return best
}

// properIntersection returns the intersection point of open segments ab
// and cd when they properly cross.
func properIntersection(a, b, c, d geom.Point) (geom.Point, bool) {
	if !geom.SegmentsProperlyIntersect(a, b, c, d) {
		return geom.Point{}, false
	}
	r := b.Sub(a)
	q := d.Sub(c)
	denom := r.Cross(q)
	if denom == 0 {
		return geom.Point{}, false
	}
	t := c.Sub(a).Cross(q) / denom
	return a.Add(r.Scale(t)), true
}

// GreedyNeighbor returns the index (into nbrPts) of the neighbor that
// makes maximum progress toward dstPos — the strictly-closer neighbor
// nearest to the destination — or -1 when no neighbor is strictly closer
// (a local minimum). This is the paper's MaxDSTD next-hop choice.
func GreedyNeighbor(selfPos geom.Point, nbrPts []geom.Point, dstPos geom.Point) int {
	self := selfPos.Dist2(dstPos)
	best := -1
	bestD := self
	for i, p := range nbrPts {
		d := p.Dist2(dstPos)
		if d < bestD {
			bestD = d
			best = i
		}
	}
	return best
}
