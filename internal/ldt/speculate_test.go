package ldt

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"glr/internal/geom"
	"glr/internal/shard"
)

// randView builds a connected-ish random view: self at the centre of a
// field sized so most nodes are within radio range of something.
func randView(rng *rand.Rand, n int, r float64) (ids []int, pts []geom.Point) {
	ids = append(ids, 1000)
	pts = append(pts, geom.Pt(rng.Float64()*r, rng.Float64()*r))
	for i := 0; i < n; i++ {
		ids = append(ids, rng.Intn(500))
		pts = append(pts, geom.Pt(rng.Float64()*2.5*r, rng.Float64()*2.5*r))
	}
	// Dedup ids, keeping first occurrence order (views need unique ids).
	seen := map[int]bool{1000: true}
	outIDs, outPts := ids[:1], pts[:1]
	for i := 1; i < len(ids); i++ {
		if !seen[ids[i]] {
			seen[ids[i]] = true
			outIDs = append(outIDs, ids[i])
			outPts = append(outPts, pts[i])
		}
	}
	return outIDs, outPts
}

// TestSpeculateAdoptionIdentical: for randomized views, a query answered
// by adopting a speculative build must return exactly the bytes the
// serial Maintainer returns for the same view.
func TestSpeculateAdoptionIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	pool := shard.NewPool(4)
	defer pool.Close()
	const r = 100.0
	for trial := 0; trial < 120; trial++ {
		ids, pts := randView(rng, 3+rng.Intn(25), r)
		k := 1 + rng.Intn(2)
		now := float64(trial)

		serial := NewMaintainer(false)
		view1, err := NewLocalView(ids[0], ids, pts, r)
		if err != nil {
			t.Fatal(err)
		}
		wantIDs, wantPts, wantErr := serial.Neighbors(view1, VariantLDTG, k, now)

		conc := NewMaintainer(false)
		conc.EnableConcurrent(pool)
		if !conc.Speculative() {
			t.Fatal("EnableConcurrent did not take")
		}
		conc.Speculate(ids[0], ids, pts, r, VariantLDTG, k, now)
		// Wait for the parked build so the query exercises adoption, not
		// the in-flight wait (that path is hammered separately below).
		conc.mu.Lock()
		var parked *specEntry
		for _, bucket := range conc.specs {
			for _, s := range bucket {
				parked = s
			}
		}
		conc.mu.Unlock()
		if parked != nil {
			<-parked.done
		}
		view2, err := NewLocalView(ids[0], ids, pts, r)
		if err != nil {
			t.Fatal(err)
		}
		gotIDs, gotPts, gotErr := conc.Neighbors(view2, VariantLDTG, k, now)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("trial %d: err mismatch: serial %v, adopted %v", trial, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		if !reflect.DeepEqual(wantIDs, gotIDs) || !reflect.DeepEqual(wantPts, gotPts) {
			t.Fatalf("trial %d: adopted result diverged:\n  serial:  %v\n  adopted: %v", trial, wantIDs, gotIDs)
		}
		if parked != nil && parked.err == nil {
			if st := conc.Stats(); st.SpecAdopted != 1 {
				t.Fatalf("trial %d: SpecAdopted = %d, want 1 (stats %+v)", trial, st.SpecAdopted, st)
			}
		}
		// A repeated query hits the promoted result-cache entry.
		again, _, _ := conc.Neighbors(view2, VariantLDTG, k, now+0.1)
		if !reflect.DeepEqual(again, gotIDs) {
			t.Fatalf("trial %d: promoted entry not stable", trial)
		}
	}
}

// TestSpeculateStalePredictionFallsBack: a speculation for a view that
// never materializes is ignored — the real (different) query builds
// inline and matches the serial answer; the stale entry is swept.
func TestSpeculateStalePredictionFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pool := shard.NewPool(2)
	defer pool.Close()
	const r = 80.0
	for trial := 0; trial < 40; trial++ {
		ids, pts := randView(rng, 10+rng.Intn(10), r)
		conc := NewMaintainer(false)
		conc.EnableConcurrent(pool)
		// Predict a perturbed view (one position nudged).
		wrongPts := append([]geom.Point(nil), pts...)
		wrongPts[len(wrongPts)-1].X += 1
		conc.Speculate(ids[0], ids, wrongPts, r, VariantLDTG, 1, 1.0)
		// Let the build park so the later sweep sees a done entry.
		conc.mu.Lock()
		var parked *specEntry
		for _, bucket := range conc.specs {
			for _, s := range bucket {
				parked = s
			}
		}
		conc.mu.Unlock()
		if parked != nil {
			<-parked.done
		}

		serial := NewMaintainer(false)
		view := func() *LocalView {
			v, err := NewLocalView(ids[0], ids, pts, r)
			if err != nil {
				t.Fatal(err)
			}
			return v
		}
		wantIDs, _, wantErr := serial.Neighbors(view(), VariantLDTG, 1, 1.0)
		gotIDs, _, gotErr := conc.Neighbors(view(), VariantLDTG, 1, 1.0)
		if (wantErr == nil) != (gotErr == nil) || !reflect.DeepEqual(wantIDs, gotIDs) {
			t.Fatalf("trial %d: fallback diverged: serial %v/%v, conc %v/%v",
				trial, wantIDs, wantErr, gotIDs, gotErr)
		}
		if st := conc.Stats(); st.SpecAdopted != 0 {
			t.Fatalf("trial %d: stale prediction was adopted: %+v", trial, st)
		}
		// Sweep far in the future reaps the stale parked entry.
		conc.Neighbors(view(), VariantLDTG, 1, 100.0)
		conc.mu.Lock()
		left := len(conc.specs)
		conc.mu.Unlock()
		if left != 0 {
			t.Fatalf("trial %d: %d stale spec bucket(s) survived the sweep", trial, left)
		}
	}
}

// TestSpeculateHammer races many speculations against queries on one
// shared Maintainer — the -race job's main ldt workout. Every answer
// must equal the serial Maintainer's answer for the same view.
func TestSpeculateHammer(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pool := shard.NewPool(4)
	defer pool.Close()
	conc := NewMaintainer(false)
	conc.EnableConcurrent(pool)
	serial := NewMaintainer(false)
	const r = 60.0
	type q struct {
		ids []int
		pts []geom.Point
		k   int
	}
	var queries []q
	for i := 0; i < 60; i++ {
		ids, pts := randView(rng, 4+rng.Intn(20), r)
		queries = append(queries, q{ids, pts, 1 + rng.Intn(2)})
	}
	now := 0.0
	for round := 0; round < 6; round++ {
		for i, qq := range queries {
			now += 0.05
			// Speculate a few entries ahead, never waiting.
			ahead := queries[(i+1+round)%len(queries)]
			conc.Speculate(ahead.ids[0], ahead.ids, ahead.pts, r, VariantLDTG, ahead.k, now+0.5)
			mk := func() *LocalView {
				v, err := NewLocalView(qq.ids[0], qq.ids, qq.pts, r)
				if err != nil {
					t.Fatal(err)
				}
				return v
			}
			wantIDs, wantPts, wantErr := serial.Neighbors(mk(), VariantLDTG, qq.k, now)
			gotIDs, gotPts, gotErr := conc.Neighbors(mk(), VariantLDTG, qq.k, now)
			if (wantErr == nil) != (gotErr == nil) ||
				!reflect.DeepEqual(wantIDs, gotIDs) || !reflect.DeepEqual(wantPts, gotPts) {
				t.Fatalf("round %d query %d diverged: serial %v/%v, conc %v/%v",
					round, i, wantIDs, wantErr, gotIDs, gotErr)
			}
		}
	}
	st := conc.Stats()
	if st.SpecBuilds == 0 {
		t.Fatal("hammer never launched a speculative build")
	}
	t.Logf("hammer stats: %+v", st)
}

// TestEnableConcurrentRefusals: disabled maintainers and serial pools
// stay single-threaded.
func TestEnableConcurrentRefusals(t *testing.T) {
	m := NewMaintainer(true)
	m.EnableConcurrent(shard.NewPool(4))
	if m.Speculative() {
		t.Fatal("disabled maintainer went concurrent")
	}
	m2 := NewMaintainer(false)
	m2.EnableConcurrent(shard.NewPool(1))
	if m2.Speculative() {
		t.Fatal("serial pool enabled concurrency")
	}
	m2.EnableConcurrent(nil)
	if m2.Speculative() {
		t.Fatal("nil pool enabled concurrency")
	}
	// Speculate on a serial maintainer is a harmless no-op.
	m2.Speculate(0, []int{0, 1}, []geom.Point{geom.Pt(0, 0), geom.Pt(1, 1)}, 10, VariantLDTG, 1, 1)
	if st := m2.Stats(); st.SpecBuilds != 0 {
		t.Fatalf("serial maintainer speculated: %+v", st)
	}
}

var _ = fmt.Sprintf // keep fmt if assertions above change
