// Package spatial provides a uniform-grid point index for neighborhood
// queries over moving entities. The wireless medium uses it to resolve
// frame receptions, carrier sensing, and interference over only the
// radios and transmissions near a point, instead of scanning every
// entity in the simulation.
//
// The grid hashes the plane into square cells of a fixed edge length
// (the medium uses the carrier-sense range, so any disk query of that
// radius touches at most a 3×3 block of cells). Entries are identified
// by small dense nonnegative integer ids; positions are cached at
// insert/update time, so a query reflects the positions last pushed
// into the index — callers tracking moving points must refresh entries
// (see Update) often enough that the staleness stays within whatever
// slack they add to query radii.
//
// Storage is a dense window of cell buckets covering the bounding box
// of the cells in use (simulation regions are bounded, so the window is
// small and bucket fetches are array indexing, not map lookups), with a
// map overflow for pathological outliers beyond the window cap.
package spatial

import (
	"fmt"
	"math"

	"glr/internal/geom"
)

// Cell addresses one grid square: the cell with corner
// (X·size, Y·size) covering [X·size, (X+1)·size) × [Y·size, (Y+1)·size).
type Cell struct {
	X, Y int
}

// key packs a cell into a single integer for the overflow map and for
// compact locators. Coordinates are truncated to int32, which at any
// practical cell size covers regions far beyond float64 simulation
// scales.
func (c Cell) key() uint64 {
	return uint64(uint32(int32(c.X)))<<32 | uint64(uint32(int32(c.Y)))
}

// cellOfKey unpacks key.
func cellOfKey(k uint64) Cell {
	return Cell{X: int(int32(uint32(k >> 32))), Y: int(int32(uint32(k)))}
}

// item is one indexed entry as stored in a cell bucket. The position is
// kept inline so queries never touch the id table.
type item struct {
	id int
	p  geom.Point
}

// locator records where an id currently lives: its cell (packed) and
// its index within that cell's bucket. idx < 0 means "not indexed".
type locator struct {
	key uint64
	idx int
}

// maxDenseSpan caps the dense window extent per axis, bounding window
// memory at maxDenseSpan² slice headers; cells beyond a full window
// fall back to the overflow map.
const maxDenseSpan = 512

// Grid is a uniform-grid point index. The zero value is not usable;
// construct with NewGrid. Grid is not safe for concurrent use.
type Grid struct {
	size float64
	inv  float64

	// Dense window: buckets for cells in [ox, ox+w) × [oy, oy+h),
	// bucket of (cx, cy) at dense[(cy-oy)*w + (cx-ox)]. Empty until the
	// first insert.
	ox, oy, w, h int
	dense        [][]item

	// overflow holds buckets for cells outside the window once the
	// window has hit maxDenseSpan. Usually empty.
	overflow map[uint64][]item

	// where maps id → locator, indexed directly (ids are small dense
	// nonnegative integers).
	where []locator
}

// NewGrid returns an empty index with the given cell edge length.
func NewGrid(cellSize float64) (*Grid, error) {
	if !(cellSize > 0) || math.IsInf(cellSize, 1) {
		return nil, fmt.Errorf("spatial: cell size %v must be positive and finite", cellSize)
	}
	return &Grid{
		size:     cellSize,
		inv:      1 / cellSize,
		overflow: make(map[uint64][]item),
	}, nil
}

// CellSize returns the cell edge length.
func (g *Grid) CellSize() float64 { return g.size }

// Len returns the number of indexed entries.
func (g *Grid) Len() int {
	n := 0
	for _, loc := range g.where {
		if loc.idx >= 0 {
			n++
		}
	}
	return n
}

// CellOf returns the cell containing p.
func (g *Grid) CellOf(p geom.Point) Cell {
	return Cell{X: int(math.Floor(p.X * g.inv)), Y: int(math.Floor(p.Y * g.inv))}
}

// locOf returns the locator slot for id, or nil when id was never
// indexed.
func (g *Grid) locOf(id int) *locator {
	if id < 0 || id >= len(g.where) {
		return nil
	}
	return &g.where[id]
}

// Insert adds id at position p. Inserting an id that is already present
// is an error, as is a negative id; use Update to move an existing
// entry.
func (g *Grid) Insert(id int, p geom.Point) error {
	if id < 0 {
		return fmt.Errorf("spatial: id %d must be nonnegative", id)
	}
	if loc := g.locOf(id); loc != nil && loc.idx >= 0 {
		return fmt.Errorf("spatial: id %d already indexed", id)
	}
	g.place(id, p)
	return nil
}

// Update moves id to position p, inserting it if absent. When the new
// position lands in the entry's current cell only the cached position
// is refreshed, so calling Update on every observation is cheap.
// Negative ids panic (Insert reports them as errors).
func (g *Grid) Update(id int, p geom.Point) {
	loc := g.locOf(id)
	if loc == nil || loc.idx < 0 {
		if id < 0 {
			panic(fmt.Sprintf("spatial: id %d must be nonnegative", id))
		}
		g.place(id, p)
		return
	}
	if k := g.CellOf(p).key(); k == loc.key {
		g.bucketRef(loc.key)[loc.idx].p = p
		return
	}
	g.unplace(*loc)
	g.place(id, p)
}

// Remove deletes id from the index. It reports whether the id was
// present.
func (g *Grid) Remove(id int) bool {
	loc := g.locOf(id)
	if loc == nil || loc.idx < 0 {
		return false
	}
	g.unplace(*loc)
	loc.idx = -1
	return true
}

// At returns the cached position of id and whether it is indexed.
func (g *Grid) At(id int) (geom.Point, bool) {
	loc := g.locOf(id)
	if loc == nil || loc.idx < 0 {
		return geom.Point{}, false
	}
	return g.bucketRef(loc.key)[loc.idx].p, true
}

// denseIndex returns the window slot of c and whether c lies inside the
// window.
func (g *Grid) denseIndex(c Cell) (int, bool) {
	cx, cy := c.X-g.ox, c.Y-g.oy
	if cx < 0 || cx >= g.w || cy < 0 || cy >= g.h {
		return 0, false
	}
	return cy*g.w + cx, true
}

// bucketRef returns the current bucket of the packed cell k (nil when
// empty).
func (g *Grid) bucketRef(k uint64) []item {
	if i, ok := g.denseIndex(cellOfKey(k)); ok {
		return g.dense[i]
	}
	return g.overflow[k]
}

// setBucket stores b as the bucket of packed cell k.
func (g *Grid) setBucket(k uint64, b []item) {
	if i, ok := g.denseIndex(cellOfKey(k)); ok {
		g.dense[i] = b
		return
	}
	if len(b) == 0 {
		delete(g.overflow, k)
	} else {
		g.overflow[k] = b
	}
}

// place appends id to the bucket of the cell containing p, growing the
// dense window to cover it when possible.
func (g *Grid) place(id int, p geom.Point) {
	c := g.CellOf(p)
	if _, ok := g.denseIndex(c); !ok {
		g.growWindow(c)
	}
	k := c.key()
	b := append(g.bucketRef(k), item{id: id, p: p})
	g.setBucket(k, b)
	for id >= len(g.where) {
		g.where = append(g.where, locator{idx: -1})
	}
	g.where[id] = locator{key: k, idx: len(b) - 1}
}

// unplace removes the entry at loc with a swap-delete, fixing up the
// moved entry's locator.
func (g *Grid) unplace(loc locator) {
	b := g.bucketRef(loc.key)
	last := len(b) - 1
	if loc.idx < last {
		moved := b[last]
		b[loc.idx] = moved
		g.where[moved.id] = locator{key: loc.key, idx: loc.idx}
	}
	b[last] = item{}
	g.setBucket(loc.key, b[:last])
}

// growWindow expands the dense window to cover cell c, up to
// maxDenseSpan per axis; beyond that the cell stays in the overflow
// map. Growth is geometric (a margin of a quarter of the new span) so
// entities drifting across a region trigger O(log) rebuilds, each
// O(window) bucket-header copies.
func (g *Grid) growWindow(c Cell) {
	nx0, ny0, nx1, ny1 := c.X, c.Y, c.X, c.Y
	if g.w > 0 {
		nx0 = min(nx0, g.ox)
		ny0 = min(ny0, g.oy)
		nx1 = max(nx1, g.ox+g.w-1)
		ny1 = max(ny1, g.oy+g.h-1)
	}
	if nx1-nx0 >= maxDenseSpan || ny1-ny0 >= maxDenseSpan {
		return // window capped; the cell lives in overflow
	}
	// Inflate by a quarter-span margin, capped so the final window
	// always still covers the whole union box [nx0, nx1] × [ny0, ny1]
	// (clamping the width without re-anchoring the origin would strand
	// old buckets outside the window and corrupt their locators).
	spanX := nx1 - nx0 + 1
	spanY := ny1 - ny0 + 1
	w := min(spanX+2*((spanX+3)/4), maxDenseSpan)
	h := min(spanY+2*((spanY+3)/4), maxDenseSpan)
	nx0 -= (w - spanX) / 2
	ny0 -= (h - spanY) / 2
	dense := make([][]item, w*h)
	// Re-home existing dense buckets...
	for cy := 0; cy < g.h; cy++ {
		for cx := 0; cx < g.w; cx++ {
			b := g.dense[cy*g.w+cx]
			if len(b) > 0 {
				dense[(cy+g.oy-ny0)*w+(cx+g.ox-nx0)] = b
			}
		}
	}
	g.ox, g.oy, g.w, g.h, g.dense = nx0, ny0, w, h, dense
	// ...and pull overflow buckets that now fit the window.
	for k, b := range g.overflow {
		if i, ok := g.denseIndex(cellOfKey(k)); ok {
			g.dense[i] = b
			delete(g.overflow, k)
		}
	}
}

// scanRect bounds one disk query: the cell rectangle covering the disk.
// Grid queries use radii close to the cell size (a 3×3 block), where a
// per-cell circle test costs more than visiting the few extra corner
// entries, so the whole rectangle is scanned and callers' exact
// predicates do the filtering.
type scanRect struct {
	x0, x1, y0, y1 int
	clipped        bool // scan fully inside the dense window
}

// rect computes the cell rectangle covering the disk (p, r), clipped to
// the dense window when the overflow map is empty.
func (g *Grid) rect(p geom.Point, r float64) scanRect {
	if r < 0 {
		r = 0
	}
	s := scanRect{
		x0: int(math.Floor((p.X - r) * g.inv)),
		x1: int(math.Floor((p.X + r) * g.inv)),
		y0: int(math.Floor((p.Y - r) * g.inv)),
		y1: int(math.Floor((p.Y + r) * g.inv)),
	}
	if len(g.overflow) == 0 {
		s.x0, s.y0 = max(s.x0, g.ox), max(s.y0, g.oy)
		s.x1, s.y1 = min(s.x1, g.ox+g.w-1), min(s.y1, g.oy+g.h-1)
		s.clipped = true
	}
	return s
}

// bucketAt returns the bucket of cell (cx, cy); clipped avoids the
// denseIndex bounds checks when the scan is pre-clipped to the window.
func (g *Grid) bucketAt(cx, cy int, clipped bool) []item {
	if clipped {
		return g.dense[(cy-g.oy)*g.w+(cx-g.ox)]
	}
	if i, ok := g.denseIndex(Cell{X: cx, Y: cy}); ok {
		return g.dense[i]
	}
	return g.overflow[Cell{X: cx, Y: cy}.key()]
}

// Near visits every entry whose cell intersects the bounding square of
// the disk of radius r around p, in unspecified order, passing the
// entry's cached position. It is a superset query: visited entries may
// lie farther than r from p (their cell merely touches the square, and
// cached positions may be stale), so callers must apply their own exact
// predicate. Returning false from visit stops the walk.
func (g *Grid) Near(p geom.Point, r float64, visit func(id int, q geom.Point) bool) {
	s := g.rect(p, r)
	for cy := s.y0; cy <= s.y1; cy++ {
		for cx := s.x0; cx <= s.x1; cx++ {
			for _, it := range g.bucketAt(cx, cy, s.clipped) {
				if !visit(it.id, it.p) {
					return
				}
			}
		}
	}
}

// NearIDs appends to buf the ids of every entry whose cell intersects
// the bounding square of the disk of radius r around p and returns the
// extended slice. Like Near it is a superset query with unspecified
// order; callers sort and/or filter as needed. (Open-coded rather than
// delegating to Near: this is the medium's per-reception hot path, and
// the closure-free loop measurably beats the visitor.)
func (g *Grid) NearIDs(p geom.Point, r float64, buf []int) []int {
	s := g.rect(p, r)
	for cy := s.y0; cy <= s.y1; cy++ {
		for cx := s.x0; cx <= s.x1; cx++ {
			for _, it := range g.bucketAt(cx, cy, s.clipped) {
				buf = append(buf, it.id)
			}
		}
	}
	return buf
}

// NearEntries is NearIDs returning the cached positions alongside the
// ids, appended to parallel buffers in one scan. The sharded reception
// path partitions candidates into stripe shards before observing their
// fresh positions; the cached position is the deterministic stand-in
// that keeps the partition free of position-callback side effects.
func (g *Grid) NearEntries(p geom.Point, r float64, ids []int, pts []geom.Point) ([]int, []geom.Point) {
	s := g.rect(p, r)
	for cy := s.y0; cy <= s.y1; cy++ {
		for cx := s.x0; cx <= s.x1; cx++ {
			for _, it := range g.bucketAt(cx, cy, s.clipped) {
				ids = append(ids, it.id)
				pts = append(pts, it.p)
			}
		}
	}
	return ids, pts
}
