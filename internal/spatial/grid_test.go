package spatial

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"glr/internal/geom"
)

func TestNewGridRejectsBadCellSize(t *testing.T) {
	for _, size := range []float64{0, -1} {
		if _, err := NewGrid(size); err == nil {
			t.Errorf("cell size %v accepted", size)
		}
	}
	if _, err := NewGrid(10); err != nil {
		t.Fatalf("valid cell size rejected: %v", err)
	}
}

func TestCellOfNegativeCoordinates(t *testing.T) {
	g, _ := NewGrid(10)
	tests := []struct {
		p    geom.Point
		want Cell
	}{
		{geom.Pt(0, 0), Cell{0, 0}},
		{geom.Pt(9.99, 9.99), Cell{0, 0}},
		{geom.Pt(10, 10), Cell{1, 1}},
		{geom.Pt(-0.01, -0.01), Cell{-1, -1}},
		{geom.Pt(-10, -10), Cell{-1, -1}},
		{geom.Pt(-10.01, 0), Cell{-2, 0}},
	}
	for _, tt := range tests {
		if got := g.CellOf(tt.p); got != tt.want {
			t.Errorf("CellOf(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestInsertRemoveUpdate(t *testing.T) {
	g, _ := NewGrid(10)
	if err := g.Insert(1, geom.Pt(5, 5)); err != nil {
		t.Fatal(err)
	}
	if err := g.Insert(1, geom.Pt(6, 6)); err == nil {
		t.Error("duplicate insert accepted")
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
	if p, ok := g.At(1); !ok || !p.Eq(geom.Pt(5, 5)) {
		t.Errorf("At(1) = %v,%v", p, ok)
	}

	// Same-cell update refreshes the cached point without moving buckets.
	g.Update(1, geom.Pt(7, 7))
	if p, _ := g.At(1); !p.Eq(geom.Pt(7, 7)) {
		t.Errorf("cached point not refreshed: %v", p)
	}
	// Cross-cell update moves the entry.
	g.Update(1, geom.Pt(25, 25))
	var seen []int
	g.Near(geom.Pt(25, 25), 1, func(id int, _ geom.Point) bool {
		seen = append(seen, id)
		return true
	})
	if len(seen) != 1 || seen[0] != 1 {
		t.Errorf("entry not found in new cell: %v", seen)
	}
	// Update on an absent id inserts it.
	g.Update(2, geom.Pt(0, 0))
	if g.Len() != 2 {
		t.Errorf("Len = %d, want 2", g.Len())
	}

	if !g.Remove(1) {
		t.Error("Remove(1) = false")
	}
	if g.Remove(1) {
		t.Error("double remove reported true")
	}
	if g.Len() != 1 {
		t.Errorf("Len after remove = %d", g.Len())
	}
}

func TestNearEarlyStop(t *testing.T) {
	g, _ := NewGrid(10)
	for i := 0; i < 5; i++ {
		g.Insert(i, geom.Pt(1, 1))
	}
	visits := 0
	g.Near(geom.Pt(1, 1), 5, func(int, geom.Point) bool {
		visits++
		return false
	})
	if visits != 1 {
		t.Errorf("early-stop visited %d entries, want 1", visits)
	}
}

// TestNearSupersetAgainstBruteForce drives randomized insert / update /
// remove churn and checks, for random disk queries, that Near yields a
// superset of the brute-force answer and nothing outside the scanned
// cell block.
func TestNearSupersetAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		cell := 5 + rng.Float64()*100
		g, err := NewGrid(cell)
		if err != nil {
			t.Fatal(err)
		}
		pts := make(map[int]geom.Point)
		n := 1 + rng.Intn(120)
		randPt := func() geom.Point {
			return geom.Pt(rng.Float64()*1000-500, rng.Float64()*1000-500)
		}
		for i := 0; i < n; i++ {
			pts[i] = randPt()
			if err := g.Insert(i, pts[i]); err != nil {
				t.Fatal(err)
			}
		}
		// Churn.
		for k := 0; k < 200; k++ {
			id := rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				p := randPt()
				pts[id] = p
				g.Update(id, p)
			case 1:
				removed := g.Remove(id)
				if _, had := pts[id]; had != removed {
					t.Fatalf("Remove(%d) = %v, tracked presence %v", id, removed, had)
				}
				delete(pts, id)
			case 2:
				if _, had := pts[id]; !had {
					p := randPt()
					pts[id] = p
					g.Update(id, p)
				}
			}
		}
		if g.Len() != len(pts) {
			t.Fatalf("Len = %d, want %d", g.Len(), len(pts))
		}
		for q := 0; q < 20; q++ {
			p := randPt()
			r := rng.Float64() * 300
			got := map[int]bool{}
			g.Near(p, r, func(id int, cached geom.Point) bool {
				if !cached.Eq(pts[id]) {
					t.Fatalf("cached point for %d = %v, want %v", id, cached, pts[id])
				}
				if got[id] {
					t.Fatalf("id %d visited twice", id)
				}
				got[id] = true
				return true
			})
			for id, pt := range pts {
				d := p.Dist(pt)
				if d <= r && !got[id] {
					t.Fatalf("trial %d: id %d at dist %.2f ≤ r=%.2f missed", trial, id, d, r)
				}
				// Anything visited must at least be within the scanned
				// cell rectangle: (r + one cell) per axis, so the
				// diagonal bounds the distance.
				if got[id] && d > (r+cell)*math.Sqrt2+1e-9 {
					t.Fatalf("trial %d: id %d at dist %.2f visited for r=%.2f (cell %.2f)", trial, id, d, r, cell)
				}
			}
		}
	}
}

func TestNearIDsAppendsAndMatchesNear(t *testing.T) {
	g, _ := NewGrid(20)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 40; i++ {
		g.Insert(i, geom.Pt(rng.Float64()*200, rng.Float64()*200))
	}
	var fromNear []int
	g.Near(geom.Pt(100, 100), 60, func(id int, _ geom.Point) bool {
		fromNear = append(fromNear, id)
		return true
	})
	buf := []int{-1}
	ids := g.NearIDs(geom.Pt(100, 100), 60, buf)
	if ids[0] != -1 {
		t.Error("NearIDs must append to buf")
	}
	ids = ids[1:]
	sort.Ints(fromNear)
	sort.Ints(ids)
	if len(ids) != len(fromNear) {
		t.Fatalf("NearIDs %d entries, Near %d", len(ids), len(fromNear))
	}
	for i := range ids {
		if ids[i] != fromNear[i] {
			t.Fatalf("NearIDs mismatch at %d: %d vs %d", i, ids[i], fromNear[i])
		}
	}
}

// TestGrowWindowClampKeepsOldEntries is a regression test: when margin
// inflation would push the dense window past maxDenseSpan, the clamped
// window must still cover every previously indexed cell, or old buckets
// get re-homed out of bounds and their entries vanish from queries.
func TestGrowWindowClampKeepsOldEntries(t *testing.T) {
	g, _ := NewGrid(1)
	pts := []geom.Point{geom.Pt(0.5, 0.5), geom.Pt(300.5, 0.5), geom.Pt(-130.5, 0.5)}
	for id, p := range pts {
		if err := g.Insert(id, p); err != nil {
			t.Fatal(err)
		}
	}
	for id, p := range pts {
		if got, ok := g.At(id); !ok || !got.Eq(p) {
			t.Fatalf("At(%d) = %v,%v, want %v", id, got, ok, p)
		}
		found := false
		g.Near(p, 0.25, func(v int, _ geom.Point) bool {
			if v == id {
				found = true
			}
			return true
		})
		if !found {
			t.Errorf("entry %d at %v lost after window growth", id, p)
		}
	}
	if g.Len() != len(pts) {
		t.Errorf("Len = %d, want %d", g.Len(), len(pts))
	}
}

func TestNegativeRadiusTreatedAsZero(t *testing.T) {
	g, _ := NewGrid(10)
	g.Insert(0, geom.Pt(5, 5))
	count := 0
	g.Near(geom.Pt(5, 5), -3, func(int, geom.Point) bool {
		count++
		return true
	})
	if count != 1 {
		t.Errorf("negative radius should still scan the containing cell, got %d visits", count)
	}
}
