package spatial

// Stripes partitions a region's width into vertical shard stripes of
// whole halo-width cells. Each stripe is at least one halo wide, so a
// point's radio neighborhood (reception range + index slack) reaches at
// most into the two adjacent stripes — the invariant the sharded
// reception path relies on to keep per-stripe verdict work disjoint
// while boundary receivers are still committed in the global serial
// order (see docs/ARCHITECTURE.md).
//
// The zero Stripes is a single stripe covering everything.
type Stripes struct {
	cell      float64 // column width, ≥ halo
	perStripe int     // halo columns per stripe
	count     int
}

// NewStripes partitions width metres into at most shards stripes whose
// widths are whole multiples of halo. Degenerate inputs (non-positive
// width or halo, shards < 2, or a region narrower than two halos)
// collapse to a single stripe.
func NewStripes(width, halo float64, shards int) Stripes {
	if width <= 0 || halo <= 0 || shards < 2 {
		return Stripes{}
	}
	cols := int(width / halo)
	if cols < 2 {
		return Stripes{}
	}
	per := (cols + shards - 1) / shards
	count := (cols + per - 1) / per
	if count < 2 {
		return Stripes{}
	}
	return Stripes{cell: halo, perStripe: per, count: count}
}

// Count returns the number of stripes (≥ 1).
func (s Stripes) Count() int {
	if s.count == 0 {
		return 1
	}
	return s.count
}

// Of returns the stripe index of x-coordinate x, clamped into range so
// points that drift outside the declared region still map to the edge
// stripes.
func (s Stripes) Of(x float64) int {
	if s.count == 0 {
		return 0
	}
	i := int(x/s.cell) / s.perStripe
	if i < 0 {
		return 0
	}
	if i >= s.count {
		return s.count - 1
	}
	return i
}
