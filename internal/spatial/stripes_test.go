package spatial

import (
	"math/rand"
	"testing"
)

// TestStripesInvariants: for randomized widths/halos/shard counts, every
// stripe is at least one halo wide, stripe indices are monotone in x,
// the whole width is covered, and the stripe count respects the request.
func TestStripesInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		width := 100 + rng.Float64()*5000
		halo := 20 + rng.Float64()*400
		shards := 2 + rng.Intn(15)
		s := NewStripes(width, halo, shards)
		if s.Count() > shards {
			t.Fatalf("width=%.0f halo=%.0f shards=%d: got %d stripes", width, halo, shards, s.Count())
		}
		if s.Count() < 1 {
			t.Fatalf("stripe count %d < 1", s.Count())
		}
		prev := 0
		for x := 0.0; x <= width; x += width / 997 {
			i := s.Of(x)
			if i < 0 || i >= s.Count() {
				t.Fatalf("Of(%.2f) = %d out of [0,%d)", x, i, s.Count())
			}
			if i < prev {
				t.Fatalf("stripe index decreased: Of(%.2f) = %d after %d", x, i, prev)
			}
			prev = i
		}
		if s.Count() > 1 {
			// Minimum stripe width: each stripe spans whole halo columns,
			// so consecutive x values mapping to different stripes must be
			// at least one halo apart when probed at column granularity.
			if got := s.cell * float64(s.perStripe); got < halo {
				t.Fatalf("stripe width %.2f < halo %.2f", got, halo)
			}
		}
		// Out-of-region points clamp to the edge stripes.
		if s.Of(-10) != 0 {
			t.Fatalf("Of(-10) = %d, want 0", s.Of(-10))
		}
		if s.Of(width*2) != s.Count()-1 {
			t.Fatalf("Of(2w) = %d, want %d", s.Of(width*2), s.Count()-1)
		}
	}
}

// TestStripesDegenerate: hostile inputs collapse to one stripe.
func TestStripesDegenerate(t *testing.T) {
	for _, s := range []Stripes{
		{},
		NewStripes(0, 50, 4),
		NewStripes(100, 0, 4),
		NewStripes(100, 60, 4), // fewer than two halo columns
		NewStripes(500, 50, 1),
	} {
		if s.Count() != 1 {
			t.Fatalf("degenerate stripes got count %d", s.Count())
		}
		if s.Of(123) != 0 {
			t.Fatalf("degenerate Of = %d", s.Of(123))
		}
	}
}
