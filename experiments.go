package glr

import (
	"context"
	"fmt"
	"sort"

	"glr/internal/experiments"
)

// Scale selects the fidelity of an experiment run.
type Scale int

// Experiment scales.
const (
	// Quick runs 3 replications at one-fifth the paper's message load —
	// minutes instead of hours, same qualitative shapes.
	Quick Scale = iota
	// Paper runs the full methodology: 10 replications at full load.
	Paper
)

// ExperimentInfo describes one reproducible paper artifact.
type ExperimentInfo struct {
	ID          string
	Title       string
	Description string
}

// experimentRunner executes one artifact and renders it.
type experimentRunner func(o experiments.Options) (string, error)

var experimentTable = map[string]struct {
	info ExperimentInfo
	run  experimentRunner
}{
	"fig1": {
		ExperimentInfo{"fig1", "Figure 1", "Topology connectivity of 50 nodes at 250 m / 100 m in 1000×1000 m"},
		func(o experiments.Options) (string, error) {
			r, err := experiments.Fig1Connectivity(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
	},
	"fig3": {
		ExperimentInfo{"fig3", "Figure 3", "GLR latency vs route-check interval (1980 msgs, 100 m)"},
		func(o experiments.Options) (string, error) {
			r, err := experiments.Fig3CheckInterval(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
	},
	"tab2": {
		ExperimentInfo{"tab2", "Table 2", "Delivery under four location-knowledge regimes (1980 msgs, 100 m)"},
		func(o experiments.Options) (string, error) {
			r, err := experiments.Table2LocationKnowledge(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
	},
	"fig4": {
		ExperimentInfo{"fig4", "Figure 4", "Latency vs messages in transit, GLR vs epidemic (50 m)"},
		func(o experiments.Options) (string, error) {
			r, err := experiments.Fig45Latency(o, 50)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
	},
	"fig5": {
		ExperimentInfo{"fig5", "Figure 5", "Latency vs messages in transit, GLR vs epidemic (100 m)"},
		func(o experiments.Options) (string, error) {
			r, err := experiments.Fig45Latency(o, 100)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
	},
	"fig6": {
		ExperimentInfo{"fig6", "Figure 6", "Latency vs transmission radius (1980 msgs)"},
		func(o experiments.Options) (string, error) {
			r, err := experiments.Fig6LatencyRadius(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
	},
	"tab3": {
		ExperimentInfo{"tab3", "Table 3", "Delivery ratio with vs without custody transfer (890 msgs, 50 m)"},
		func(o experiments.Options) (string, error) {
			r, err := experiments.Table3Custody(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
	},
	"fig7": {
		ExperimentInfo{"fig7", "Figure 7", "Delivery ratio vs per-node storage limit (1980 msgs, 50 m)"},
		func(o experiments.Options) (string, error) {
			r, err := experiments.Fig7StorageLimit(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
	},
	"tab4": {
		ExperimentInfo{"tab4", "Table 4", "GLR peak storage vs message count (50 m)"},
		func(o experiments.Options) (string, error) {
			r, err := experiments.Table4StorageByMessages(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
	},
	"tab5": {
		ExperimentInfo{"tab5", "Table 5", "GLR peak storage vs radius (1980 msgs)"},
		func(o experiments.Options) (string, error) {
			r, err := experiments.Table5StorageByRadius(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
	},
	"tab6": {
		ExperimentInfo{"tab6", "Table 6", "Hop counts vs radius, GLR vs epidemic (1980 msgs)"},
		func(o experiments.Options) (string, error) {
			r, err := experiments.Table6HopCounts(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
	},
	"disruption": {
		ExperimentInfo{"disruption", "Robustness", "Delivery/latency robustness curve under composite disruption (churn + blackouts + GPS noise + Byzantine), GLR vs epidemic"},
		func(o experiments.Options) (string, error) {
			r, err := experiments.Disruption(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
	},
	"ablate": {
		ExperimentInfo{"ablate", "Ablation", "GLR design-choice ablation: spanner, face routing, hysteresis, tree count, custody"},
		func(o experiments.Options) (string, error) {
			r, err := experiments.Ablation(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
	},
	"scale": {
		ExperimentInfo{"scale", "Scaling", "Node-count sweep (100..1000 nodes, fixed density): delivery + wall-clock + spanner-construction time, cached vs from-scratch spanner"},
		func(o experiments.Options) (string, error) {
			r, err := experiments.NodeCountSweep(o, nil)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
	},
}

// Experiments lists the reproducible paper artifacts in a stable order.
func Experiments() []ExperimentInfo {
	out := make([]ExperimentInfo, 0, len(experimentTable))
	for _, e := range experimentTable {
		out = append(out, e.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// RunExperiment regenerates one paper artifact at the given scale and
// returns its rendered text (figure and/or paper-vs-measured table).
func RunExperiment(id string, scale Scale) (string, error) {
	return RunExperimentVerbose(id, scale, nil)
}

// RunExperimentVerbose is RunExperiment with a progress callback (one
// line per completed scenario point).
func RunExperimentVerbose(id string, scale Scale, progress func(format string, args ...any)) (string, error) {
	return RunExperimentContext(context.Background(), id, scale, progress)
}

// RunExperimentContext is RunExperimentVerbose with cancellation: once
// ctx is done, queued replications are abandoned and in-flight
// simulations stop between event batches, returning ctx's error.
func RunExperimentContext(ctx context.Context, id string, scale Scale, progress func(format string, args ...any)) (string, error) {
	e, ok := experimentTable[id]
	if !ok {
		return "", fmt.Errorf("glr: unknown experiment %q (known: %v)", id, experimentIDs())
	}
	o := experiments.QuickOptions()
	if scale == Paper {
		o = experiments.PaperOptions()
	}
	o.Ctx = ctx
	o.Progress = progress
	return e.run(o)
}

func experimentIDs() []string {
	ids := make([]string, 0, len(experimentTable))
	for id := range experimentTable {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
