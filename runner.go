package glr

import (
	"context"
	"fmt"
	"runtime"

	"glr/internal/metrics"
	"glr/internal/runner"
	"glr/internal/stats"
)

// Runner executes multi-seed replications of a Scenario — and protocol
// comparisons — across a worker pool, aggregating results as mean ±
// Student-t confidence half-width (the paper's methodology). The zero
// value runs on all CPUs at 90% confidence.
//
// Replication r runs with seed base+r, where base is the scenario's
// WithSeed value — so any single replication can be reproduced with
// Scenario.Run after WithSeed(base+r). Results are independent of the
// worker count and of scheduling order: a parallel sweep returns
// exactly what a sequential one does, seed for seed.
//
// Runner does not attach the scenario's observers: replications run
// concurrently, and observer callbacks are defined to fire on a single
// run's simulation goroutine. Observe a single Scenario.Run instead.
type Runner struct {
	// Workers bounds concurrent replications (0 = GOMAXPROCS, 1 =
	// sequential).
	Workers int
	// Confidence is the two-sided confidence level for the aggregate
	// intervals (0 = the paper's 0.90).
	Confidence float64
}

// MeanCI is a sample mean with its confidence half-width over N
// replications, in the paper's "value ± halfwidth" presentation.
type MeanCI struct {
	Mean      float64
	HalfWidth float64
	N         int
}

// String renders the interval in the paper's table style.
func (m MeanCI) String() string { return fmt.Sprintf("%.2f±%.2f", m.Mean, m.HalfWidth) }

// Summary aggregates the replications of one scenario under one
// protocol: the per-seed Results plus mean ± CI for every headline
// metric.
type Summary struct {
	Protocol Protocol
	// Seeds and Results are aligned: Results[i] ran with Seeds[i].
	Seeds   []int64
	Results []Result

	DeliveryRatio  MeanCI
	AvgLatency     MeanCI // seconds
	AvgHops        MeanCI
	AvgPeakStorage MeanCI
	MaxPeakStorage MeanCI
	Duplicates     MeanCI
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("%s over %d seeds: delivery %.2f±%.2f, latency %.1f±%.1fs, hops %v, peak storage %v",
		s.Protocol, len(s.Results),
		s.DeliveryRatio.Mean, s.DeliveryRatio.HalfWidth,
		s.AvgLatency.Mean, s.AvgLatency.HalfWidth, s.AvgHops, s.AvgPeakStorage)
}

// Comparison pairs GLR and epidemic summaries over identical workloads.
type Comparison struct {
	GLR      Summary
	Epidemic Summary
}

// Replicate runs the scenario `runs` times with seeds base..base+runs-1
// across the worker pool and aggregates the results. ctx cancels queued
// and in-flight replications.
func (r Runner) Replicate(ctx context.Context, s *Scenario, runs int) (Summary, error) {
	if err := r.check(runs); err != nil {
		return Summary{}, err
	}
	reports, err := r.replicate(ctx, s, s.protocol, runs)
	if err != nil {
		return Summary{}, err
	}
	return r.summarize(s, s.protocol, reports, runs), nil
}

// Compare runs the scenario under both GLR and the epidemic baseline,
// `runs` replications each with identical seeds, across one shared
// worker pool.
func (r Runner) Compare(ctx context.Context, s *Scenario, runs int) (Comparison, error) {
	if err := r.check(runs); err != nil {
		return Comparison{}, err
	}
	budget := runnerShardBudget(r.Workers, 2*runs)
	jobs := make([]runner.Job[metrics.Report], 0, 2*runs)
	for _, proto := range []Protocol{GLR, Epidemic} {
		proto := proto
		for i := 0; i < runs; i++ {
			seed := s.seed + int64(i)
			jobs = append(jobs, func(ctx context.Context) (metrics.Report, error) {
				cp := s.withProtocol(proto)
				cp.parallelism = capParallelism(s.parallelism, budget)
				return cp.runSeed(ctx, seed, false)
			})
		}
	}
	reports, err := runner.Run(ctx, r.Workers, jobs)
	if err != nil {
		return Comparison{}, err
	}
	return Comparison{
		GLR:      r.summarize(s, GLR, reports[:runs], runs),
		Epidemic: r.summarize(s, Epidemic, reports[runs:], runs),
	}, nil
}

// replicate fans one protocol's replications over the pool.
func (r Runner) replicate(ctx context.Context, s *Scenario, proto Protocol, runs int) ([]metrics.Report, error) {
	budget := runnerShardBudget(r.Workers, runs)
	jobs := make([]runner.Job[metrics.Report], runs)
	for i := 0; i < runs; i++ {
		seed := s.seed + int64(i)
		jobs[i] = func(ctx context.Context) (metrics.Report, error) {
			cp := s.withProtocol(proto)
			cp.parallelism = capParallelism(s.parallelism, budget)
			return cp.runSeed(ctx, seed, false)
		}
	}
	return runner.Run(ctx, r.Workers, jobs)
}

// runnerShardBudget divides the machine between the Runner's replication
// workers and each replication's shard pool: with w replications running
// concurrently, each gets GOMAXPROCS/w shard workers (at least 1, i.e.
// serial), so the combined goroutine count stays within GOMAXPROCS
// instead of multiplying. Results are unaffected — per-run parallelism
// is byte-identical at every setting — only the machine split changes.
func runnerShardBudget(workers, jobs int) int {
	procs := runtime.GOMAXPROCS(0)
	w := workers
	if w <= 0 {
		w = procs
	}
	if jobs > 0 && jobs < w {
		w = jobs
	}
	if b := procs / w; b > 1 {
		return b
	}
	return 1
}

// capParallelism bounds a scenario's requested shard parallelism by the
// runner's per-replication budget: automatic (0) takes the whole budget;
// an explicit request is honored up to it.
func capParallelism(p, budget int) int {
	if p == 0 || p > budget {
		return budget
	}
	return p
}

// withProtocol returns a shallow copy of the scenario pinned to proto.
func (s *Scenario) withProtocol(p Protocol) *Scenario {
	cp := *s
	cp.protocol = p
	return &cp
}

// summarize aggregates per-seed reports at the runner's confidence.
func (r Runner) summarize(s *Scenario, proto Protocol, reports []metrics.Report, runs int) Summary {
	conf := r.Confidence
	if conf == 0 {
		conf = 0.90
	}
	sum := Summary{
		Protocol: proto,
		Seeds:    make([]int64, runs),
		Results:  make([]Result, runs),
	}
	if sum.Protocol == "" {
		sum.Protocol = GLR
	}
	for i, rep := range reports {
		sum.Seeds[i] = s.seed + int64(i)
		sum.Results[i] = resultFromReport(rep)
	}
	pull := func(f func(Result) float64) MeanCI {
		xs := make([]float64, len(sum.Results))
		for i, res := range sum.Results {
			xs[i] = f(res)
		}
		ci := stats.ConfidenceInterval(xs, conf)
		return MeanCI{Mean: ci.Mean, HalfWidth: ci.HalfWidth, N: ci.N}
	}
	sum.DeliveryRatio = pull(func(r Result) float64 { return r.DeliveryRatio })
	sum.AvgLatency = pull(func(r Result) float64 { return r.AvgLatency })
	sum.AvgHops = pull(func(r Result) float64 { return r.AvgHops })
	sum.AvgPeakStorage = pull(func(r Result) float64 { return r.AvgPeakStorage })
	sum.MaxPeakStorage = pull(func(r Result) float64 { return float64(r.MaxPeakStorage) })
	sum.Duplicates = pull(func(r Result) float64 { return float64(r.Duplicates) })
	return sum
}

// check validates the runner's knobs and the replication count.
// Confidence is a fraction in (0,1); 0 means the default 0.90 — a
// percentage like 95 would otherwise silently produce ±Inf intervals.
func (r Runner) check(runs int) error {
	if runs < 1 {
		return fmt.Errorf("glr: replication count %d must be ≥ 1", runs)
	}
	if r.Confidence < 0 || r.Confidence >= 1 {
		return fmt.Errorf("glr: confidence %v must be a fraction in [0,1) (0 = default 0.90)", r.Confidence)
	}
	return nil
}
