package glr

import (
	"testing"
)

// TestObserverDoesNotPerturbRun: observation is read-only — the same
// scenario with and without observers must produce identical Results.
func TestObserverDoesNotPerturbRun(t *testing.T) {
	opts := []Option{
		WithNodes(25),
		WithRange(180),
		WithWorkload(PaperWorkload{Messages: 15}),
		WithSimTime(150),
		WithSeed(11),
	}
	plain, err := NewScenario(opts...)
	if err != nil {
		t.Fatal(err)
	}
	events := 0
	samples := 0
	observed, err := NewScenario(append(opts,
		WithObserver(&Observer{
			OnGenerated: func(MessageEvent) { events++ },
			OnDelivered: func(DeliveryEvent) { events++ },
			SampleEvery: 10,
			OnSample:    func(Sample) { samples++ },
		}))...)
	if err != nil {
		t.Fatal(err)
	}
	a, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := observed.Run()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("observed run diverged from plain run:\nplain:    %+v\nobserved: %+v", a, b)
	}
	if events == 0 || samples == 0 {
		t.Errorf("observer saw %d events, %d samples; want both > 0", events, samples)
	}
}

// TestObserverEventAccounting: the event stream must reconcile exactly
// with the final Result, and the periodic time series must be coherent.
func TestObserverEventAccounting(t *testing.T) {
	var (
		generated  int
		delivered  int
		duplicates int
		badLatency int
		samples    []Sample
	)
	sc, err := NewScenario(
		WithNodes(30),
		WithRange(220),
		WithWorkload(UniformWorkload{Messages: 20, Rate: 1}),
		WithSimTime(160),
		WithSeed(3),
		WithObserver(&Observer{
			OnGenerated: func(e MessageEvent) {
				generated++
				if e.At < 0 {
					t.Errorf("generation at negative time %v", e.At)
				}
			},
			OnDelivered: func(e DeliveryEvent) {
				if e.Duplicate {
					duplicates++
				} else {
					delivered++
				}
				if e.Latency() < 0 {
					badLatency++
				}
			},
			SampleEvery: 20,
			OnSample:    func(s Sample) { samples = append(samples, s) },
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}

	if generated != res.Generated {
		t.Errorf("observer saw %d generations, Result says %d", generated, res.Generated)
	}
	if delivered != res.Delivered {
		t.Errorf("observer saw %d first deliveries, Result says %d", delivered, res.Delivered)
	}
	if duplicates != res.Duplicates {
		t.Errorf("observer saw %d duplicates, Result says %d", duplicates, res.Duplicates)
	}
	if badLatency > 0 {
		t.Errorf("%d deliveries with negative latency", badLatency)
	}

	if len(samples) == 0 {
		t.Fatal("no periodic samples")
	}
	prev := Sample{}
	for i, s := range samples {
		if s.Time <= prev.Time {
			t.Errorf("sample %d time %v not increasing", i, s.Time)
		}
		if s.Generated < prev.Generated || s.Delivered < prev.Delivered ||
			s.ControlFrames < prev.ControlFrames || s.DataFrames < prev.DataFrames {
			t.Errorf("sample %d cumulative counters decreased: %+v after %+v", i, s, prev)
		}
		if s.BufferMax > s.BufferTotal {
			t.Errorf("sample %d: BufferMax %d exceeds BufferTotal %d", i, s.BufferMax, s.BufferTotal)
		}
		prev = s
	}
	last := samples[len(samples)-1]
	if last.Generated != res.Generated {
		t.Errorf("final sample generated %d, Result %d", last.Generated, res.Generated)
	}
	if last.Delivered > res.Delivered {
		t.Errorf("final sample delivered %d exceeds Result %d", last.Delivered, res.Delivered)
	}
}

// TestMultipleObservers: observers attach independently and all fire.
func TestMultipleObservers(t *testing.T) {
	var a, b int
	sc, err := NewScenario(
		WithNodes(20),
		WithRange(250),
		WithWorkload(PaperWorkload{Messages: 10}),
		WithSimTime(120),
		WithObserver(&Observer{OnDelivered: func(DeliveryEvent) { a++ }}),
		WithObserver(&Observer{OnDelivered: func(DeliveryEvent) { b++ }}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Run(); err != nil {
		t.Fatal(err)
	}
	if a == 0 || a != b {
		t.Errorf("observer counts diverged: %d vs %d", a, b)
	}
}

// TestObserverValidation: malformed observers are rejected at
// construction.
func TestObserverValidation(t *testing.T) {
	if _, err := NewScenario(WithObserver(nil)); err == nil {
		t.Error("nil observer accepted")
	}
	if _, err := NewScenario(WithObserver(&Observer{SampleEvery: -1})); err == nil {
		t.Error("negative sample interval accepted")
	}
	if _, err := NewScenario(WithObserver(&Observer{SampleEvery: 5})); err == nil {
		t.Error("SampleEvery without OnSample accepted")
	}
	if _, err := NewScenario(WithObserver(&Observer{OnSample: func(Sample) {}})); err == nil {
		t.Error("OnSample without SampleEvery accepted (silent no-op)")
	}
}
