package glr

import (
	"encoding/json"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"
)

// faultTestSet exercises every disruption model at once: churn with
// state loss, stochastic link blackouts, GPS noise, Byzantine nodes,
// and a scheduled region blackout.
func faultTestSet() []Fault {
	return []Fault{
		{Kind: FaultChurn, Rate: 0.01, Duration: 15},
		{Kind: FaultLinkBlackout, Rate: 0.2, Period: 10},
		{Kind: FaultGPSNoise, Sigma: 30},
		{Kind: FaultByzantine, Fraction: 0.2},
		{Kind: FaultRegionBlackout, X: 300, Y: 50, W: 400, H: 200, Start: 30, End: 90},
	}
}

// runFaulted runs a small faulted scenario under the given engine and
// parallelism and returns its result.
func runFaulted(t *testing.T, seed int64, engine Engine, parallelism int, faults []Fault) Result {
	t.Helper()
	opts := []Option{
		WithNodes(30),
		WithWorkload(UniformWorkload{Messages: 40}),
		WithSimTime(150),
		WithSeed(seed),
		WithEngine(engine),
		WithParallelism(parallelism),
	}
	if len(faults) > 0 {
		opts = append(opts, WithFaults(faults...))
	}
	s, err := NewScenario(opts...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFaultedRunEquivalence: a faulted run must produce identical
// results on every engine escape hatch and at every shard count — the
// fault schedule is a pure function of (fault set, seed), never of the
// execution strategy. Short mode crosses each single hatch and the
// shard counts; full mode crosses all 64 hatch combinations.
func TestFaultedRunEquivalence(t *testing.T) {
	faults := faultTestSet()
	base := runFaulted(t, 7, Engine{}, 0, faults)
	if base.Delivered == 0 {
		t.Fatal("faulted baseline delivered nothing; scenario too hostile to be meaningful")
	}

	single := []Engine{
		{DisableSharding: true},
		{DisableSpatialIndex: true},
		{DisableSpannerCache: true},
		{DisableDenseTables: true},
		{DisableCalendarQueue: true},
		{DisableBeaconAggregation: true},
		{DisableSharding: true, DisableSpatialIndex: true, DisableSpannerCache: true,
			DisableDenseTables: true, DisableCalendarQueue: true, DisableBeaconAggregation: true},
	}
	for i, e := range single {
		if got := runFaulted(t, 7, e, 0, faults); !reflect.DeepEqual(base, got) {
			t.Errorf("engine variant %d (%+v) diverged:\n  base: %+v\n  got:  %+v", i, e, base, got)
		}
	}
	for _, workers := range []int{1, 2, 4, 8} {
		if got := runFaulted(t, 7, Engine{}, workers, faults); !reflect.DeepEqual(base, got) {
			t.Errorf("parallelism=%d diverged:\n  base: %+v\n  got:  %+v", workers, base, got)
		}
	}
	// All-zero thresholds force every parallel plane — reception
	// verdicts, batched beacons, the bulk reindex, anti-entropy diffs —
	// to fork on every batch, however small, crossing the fault schedule
	// with maximal parallel coverage.
	forceFork := &ForkThresholds{}
	for _, workers := range []int{2, 8} {
		if got := runFaulted(t, 7, Engine{ForkThresholds: forceFork}, workers, faults); !reflect.DeepEqual(base, got) {
			t.Errorf("parallelism=%d fork-always diverged:\n  base: %+v\n  got:  %+v", workers, base, got)
		}
	}

	if testing.Short() {
		return
	}
	for mask := 1; mask < 64; mask++ {
		e := Engine{
			DisableSharding:          mask&1 != 0,
			DisableSpatialIndex:      mask&2 != 0,
			DisableSpannerCache:      mask&4 != 0,
			DisableDenseTables:       mask&8 != 0,
			DisableCalendarQueue:     mask&16 != 0,
			DisableBeaconAggregation: mask&32 != 0,
		}
		// Sharded combinations run with forked-always thresholds so the
		// hatch cross exercises the parallel planes, not just the pool
		// attachment; calibrated thresholds are covered by the sweeps
		// above.
		if !e.DisableSharding {
			e.ForkThresholds = forceFork
		}
		if got := runFaulted(t, 7, e, 4, faults); !reflect.DeepEqual(base, got) {
			t.Errorf("hatch mask %06b diverged:\n  base: %+v\n  got:  %+v", mask, base, got)
		}
	}
}

// TestForkThresholdEquivalence is the pathological-threshold property
// test: pinning the per-plane fork thresholds to the extremes — 0
// (every batch forks, even singletons) and math.MaxInt (nothing ever
// forks, the pool idles) — must leave a faulted run's result
// byte-identical to the auto-calibrated default, for both protocols
// and across worker counts. Thresholds gate only where work executes,
// never what it computes.
func TestForkThresholdEquivalence(t *testing.T) {
	faults := faultTestSet()
	run := func(p Protocol, ft *ForkThresholds, workers int) Result {
		t.Helper()
		s, err := NewScenario(
			WithProtocol(p),
			WithNodes(30),
			WithWorkload(UniformWorkload{Messages: 40}),
			WithSimTime(150),
			WithSeed(11),
			WithEngine(Engine{ForkThresholds: ft}),
			WithParallelism(workers),
			WithFaults(faults...),
		)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	never := &ForkThresholds{RxMin: math.MaxInt, BeaconMin: math.MaxInt,
		MobilityMin: math.MaxInt, DiffMin: math.MaxInt}
	for _, p := range []Protocol{GLR, Epidemic} {
		base := run(p, nil, 0)
		if base.Delivered == 0 {
			t.Fatalf("%s: baseline delivered nothing; the property test is vacuous", p)
		}
		for _, workers := range []int{2, 8} {
			for name, ft := range map[string]*ForkThresholds{
				"fork-always": {},
				"fork-never":  never,
			} {
				if got := run(p, ft, workers); !reflect.DeepEqual(base, got) {
					t.Errorf("%s parallelism=%d %s diverged:\n  base: %+v\n  got:  %+v",
						p, workers, name, base, got)
				}
			}
		}
	}
}

// TestForkThresholdValidation: negative thresholds are rejected at
// scenario construction.
func TestForkThresholdValidation(t *testing.T) {
	for _, ft := range []ForkThresholds{
		{RxMin: -1}, {BeaconMin: -1}, {MobilityMin: -2}, {DiffMin: -3},
	} {
		ft := ft
		if _, err := NewScenario(WithEngine(Engine{ForkThresholds: &ft})); err == nil {
			t.Errorf("negative thresholds %+v accepted", ft)
		}
	}
	if _, err := NewScenario(WithEngine(Engine{ForkThresholds: &ForkThresholds{}})); err != nil {
		t.Errorf("zero thresholds rejected: %v", err)
	}
}

// TestZeroFaultsByteIdentity: building a scenario with an empty
// WithFaults (or none at all) must leave every engine's results
// byte-identical — the fault subsystem may not perturb a fault-free
// run, not even by consuming an RNG draw or an event sequence number.
func TestZeroFaultsByteIdentity(t *testing.T) {
	engines := []Engine{
		{},
		{DisableSharding: true},
		{DisableSharding: true, DisableSpatialIndex: true, DisableSpannerCache: true,
			DisableDenseTables: true, DisableCalendarQueue: true, DisableBeaconAggregation: true},
	}
	for i, e := range engines {
		plain := runFaulted(t, 3, e, 0, nil)
		empty := runFaulted(t, 3, e, 0, []Fault{})
		if !reflect.DeepEqual(plain, empty) {
			t.Errorf("engine %d: empty WithFaults diverged from no faults:\n  plain: %+v\n  empty: %+v",
				i, plain, empty)
		}
	}
}

// TestFaultScheduleReplay: identical seeds replay the identical fault
// schedule (the observer's event stream) and run outcome; a different
// seed draws a different schedule.
func TestFaultScheduleReplay(t *testing.T) {
	faults := []Fault{{Kind: FaultChurn, Rate: 0.01, Duration: 15}}
	observe := func(seed int64) ([]FaultEvent, Result) {
		var events []FaultEvent
		s, err := NewScenario(
			WithNodes(30),
			WithWorkload(UniformWorkload{Messages: 40}),
			WithSimTime(150),
			WithSeed(seed),
			WithFaults(faults...),
			WithObserver(&Observer{OnFault: func(e FaultEvent) { events = append(events, e) }}),
		)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return events, res
	}
	ev1, res1 := observe(5)
	ev2, res2 := observe(5)
	if len(ev1) == 0 {
		t.Fatal("churn plan produced no fault events")
	}
	if !reflect.DeepEqual(ev1, ev2) {
		t.Errorf("same seed replayed different fault schedules: %d vs %d events", len(ev1), len(ev2))
	}
	if !reflect.DeepEqual(res1, res2) {
		t.Errorf("same seed produced different results:\n  %+v\n  %+v", res1, res2)
	}
	ev3, _ := observe(6)
	if reflect.DeepEqual(ev1, ev3) {
		t.Error("different seeds replayed the identical fault schedule")
	}
	for _, e := range ev1 {
		if e.Kind != FaultChurn {
			t.Fatalf("unexpected event kind %q", e.Kind)
		}
		if e.Node < 0 || e.Node >= 30 {
			t.Fatalf("event node %d out of range", e.Node)
		}
	}
}

// TestFaultSampleIntensity: samples of a heavily faulted run must
// report fault intensity (drops, and down nodes at some instant),
// while a fault-free run reports zero on both.
func TestFaultSampleIntensity(t *testing.T) {
	run := func(faults []Fault) (maxDown int, drops uint64) {
		opts := []Option{
			WithNodes(30),
			WithWorkload(UniformWorkload{Messages: 40}),
			WithSimTime(150),
			WithObserver(&Observer{
				SampleEvery: 5,
				OnSample: func(s Sample) {
					if s.NodesDown > maxDown {
						maxDown = s.NodesDown
					}
					drops = s.FaultDrops
				},
			}),
		}
		if len(faults) > 0 {
			opts = append(opts, WithFaults(faults...))
		}
		s, err := NewScenario(opts...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return maxDown, drops
	}
	down, drops := run([]Fault{
		{Kind: FaultChurn, Rate: 0.02, Duration: 30},
		{Kind: FaultLinkBlackout, Rate: 0.5, Period: 10},
	})
	if down == 0 {
		t.Error("churn at rate 0.02 never sampled a down node")
	}
	if drops == 0 {
		t.Error("link blackout at rate 0.5 never dropped a reception")
	}
	down, drops = run(nil)
	if down != 0 || drops != 0 {
		t.Errorf("fault-free run reported intensity: down=%d drops=%d", down, drops)
	}
}

// TestWithFaultsValidation: malformed fault specs must be rejected at
// scenario construction with a descriptive error.
func TestWithFaultsValidation(t *testing.T) {
	bad := []struct {
		name  string
		fault Fault
	}{
		{"negative churn rate", Fault{Kind: FaultChurn, Rate: -1, Duration: 10}},
		{"churn without duration", Fault{Kind: FaultChurn, Rate: 0.1}},
		{"negative churn duration", Fault{Kind: FaultChurn, Rate: 0.1, Duration: -5}},
		{"link rate above 1", Fault{Kind: FaultLinkBlackout, Rate: 1.5}},
		{"negative link period", Fault{Kind: FaultLinkBlackout, Rate: 0.2, Period: -1}},
		{"rect outside region", Fault{Kind: FaultRegionBlackout, X: 1400, Y: 0, W: 200, H: 100, Start: 0, End: 10}},
		{"negative rect size", Fault{Kind: FaultRegionBlackout, X: 0, Y: 0, W: -10, H: 10, Start: 0, End: 10}},
		{"inverted window", Fault{Kind: FaultRegionBlackout, X: 0, Y: 0, W: 10, H: 10, Start: 20, End: 10}},
		{"negative sigma", Fault{Kind: FaultGPSNoise, Sigma: -1}},
		{"fraction above 1", Fault{Kind: FaultByzantine, Fraction: 1.1}},
		{"unknown kind", Fault{Kind: "meteor-strike"}},
	}
	for _, tc := range bad {
		if _, err := NewScenario(WithFaults(tc.fault)); err == nil {
			t.Errorf("%s: accepted %+v", tc.name, tc.fault)
		}
	}
	if _, err := NewScenario(WithFaults(faultTestSet()...)); err != nil {
		t.Errorf("valid fault set rejected: %v", err)
	}
}

// TestEncodeParseFaults: the canonical slug round-trips, empty sets
// encode to "", and malformed slugs are rejected.
func TestEncodeParseFaults(t *testing.T) {
	set := faultTestSet()
	enc := EncodeFaults(set)
	if enc == "" || !strings.Contains(enc, "churn(") || !strings.Contains(enc, "+byzantine(") {
		t.Fatalf("unexpected encoding %q", enc)
	}
	back, err := ParseFaults(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(set, back) {
		t.Errorf("round trip changed the set:\n  in:  %+v\n  out: %+v", set, back)
	}
	if EncodeFaults(back) != enc {
		t.Errorf("re-encoding drifted: %q vs %q", EncodeFaults(back), enc)
	}
	if got := EncodeFaults(nil); got != "" {
		t.Errorf("EncodeFaults(nil) = %q, want \"\"", got)
	}
	if fs, err := ParseFaults(""); err != nil || fs != nil {
		t.Errorf("ParseFaults(\"\") = %v, %v; want nil, nil", fs, err)
	}
	for _, s := range []string{
		"meteor-strike(rate=1)",
		"churn(rate=0.1,boom=2)",
		"churn(rate=abc)",
		"churn(rate0.1)",
		"churn(rate=0.1",
	} {
		if _, err := ParseFaults(s); err == nil {
			t.Errorf("ParseFaults(%q) accepted", s)
		}
	}
}

// TestMatrixFaultAxis: fault sets are a first-class matrix axis — they
// appear in Axes, expand the cell cross-product, ride cell labels, and
// stay invisible (for cache-key stability) on fault-free cells.
func TestMatrixFaultAxis(t *testing.T) {
	m := Matrix{
		Nodes: []int{30},
		Faults: [][]Fault{
			nil,
			{{Kind: FaultChurn, Rate: 0.004, Duration: 30}},
		},
		Messages: 40,
		Seeds:    2,
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	var faultAxis *Axis
	for _, ax := range m.Axes() {
		if ax.Name == "faults" {
			ax := ax
			faultAxis = &ax
		}
	}
	if faultAxis == nil {
		t.Fatal("no faults axis")
	}
	want := []string{"none", "churn(rate=0.004,dur=30)"}
	if !reflect.DeepEqual(faultAxis.Values, want) {
		t.Errorf("faults axis %v, want %v", faultAxis.Values, want)
	}

	cells := m.Cells()
	if len(cells) != 4 { // 2 fault sets × 2 protocols
		t.Fatalf("got %d cells, want 4", len(cells))
	}
	if cells[0].Faults != "" || cells[2].Faults != "churn(rate=0.004,dur=30)" {
		t.Errorf("cell fault encodings: %q, %q", cells[0].Faults, cells[2].Faults)
	}
	if l := cells[2].Label(); !strings.HasSuffix(l, "/churn(rate=0.004,dur=30)") {
		t.Errorf("faulted label %q lacks fault slug", l)
	}
	if l := cells[0].Label(); strings.Contains(l, "churn") {
		t.Errorf("fault-free label %q mentions faults", l)
	}

	// Fault-free cells must serialize exactly as they did before the
	// fault axis existed: cache keys hash the cell's JSON.
	raw, err := json.Marshal(cells[0])
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "Faults") {
		t.Errorf("fault-free cell JSON mentions Faults: %s", raw)
	}

	// A faulted cell compiles into a runnable scenario; a corrupt slug
	// surfaces at Options.
	if _, err := cells[2].Scenario(WithSeed(2)); err != nil {
		t.Errorf("faulted cell failed to compile: %v", err)
	}
	corrupt := cells[2]
	corrupt.Faults = "meteor-strike(x=1)"
	if _, err := corrupt.Options(); err == nil {
		t.Error("corrupt fault slug accepted by Options")
	}

	bad := Matrix{Faults: [][]Fault{{{Kind: FaultChurn, Rate: -1, Duration: 5}}}}
	if err := bad.Validate(); err == nil {
		t.Error("matrix with malformed fault accepted")
	}
}

// TestFaultKindsCoverInternal pins the public kind constants to their
// internal spellings (the serialization format).
func TestFaultKindsCoverInternal(t *testing.T) {
	for kind, want := range map[FaultKind]string{
		FaultLinkBlackout:   "link-blackout",
		FaultRegionBlackout: "region-blackout",
		FaultChurn:          "churn",
		FaultGPSNoise:       "gps-noise",
		FaultByzantine:      "byzantine",
	} {
		if string(kind) != want {
			t.Errorf("kind %q, want %q", kind, want)
		}
	}
}

// TestFaultedRunnerSmoke: a faulted scenario runs under the Runner's
// replication machinery and degrades delivery versus fault-free.
func TestFaultedRunnerSmoke(t *testing.T) {
	res := runFaulted(t, 1, Engine{}, 0, nil)
	faulted := runFaulted(t, 1, Engine{}, 0, []Fault{
		{Kind: FaultChurn, Rate: 0.05, Duration: 60},
		{Kind: FaultLinkBlackout, Rate: 0.6, Period: 10},
	})
	if faulted.DeliveryRatio >= res.DeliveryRatio {
		t.Logf("warning: heavy faults did not reduce delivery (%v vs %v)", faulted.DeliveryRatio, res.DeliveryRatio)
	}
	if faulted.Generated == 0 {
		t.Fatal("faulted run generated nothing")
	}
	_ = fmt.Sprintf("%v", faulted)
}
