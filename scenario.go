package glr

import (
	"context"
	"fmt"
	"reflect"

	"glr/internal/geom"
	"glr/internal/metrics"
	"glr/internal/mobility"
	"glr/internal/shard"
	"glr/internal/sim"
)

// Scenario is a fully described simulation scenario built with
// NewScenario. It is immutable after construction; Run / RunContext
// execute it, and Runner replicates it across seeds and protocols.
type Scenario struct {
	protocol     Protocol
	nodes        int     // 0 = paper's 50
	rangeM       float64 // 0 = 100 m
	width        float64 // 0 (with height 0) = paper's 1500×300
	height       float64
	simTime      float64 // 0 = horizon derived from the workload
	storageLimit int
	seed         int64
	maxSpeed     float64 // legacy-adapter override (Config.MaxSpeed with Static)

	mob       Mobility // nil = Waypoint{} (the paper's model)
	work      Workload // nil = PaperWorkload{}
	glrCfg    *GLRConfig
	epiCfg    *EpidemicConfig
	observers []*Observer
	faults    []Fault // WithFaults: empty = fault-free

	parallelism int // WithParallelism: 0 = auto, 1 = serial
	engine      Engine
}

// Engine selects the execution engine for a scenario's runs — the
// consolidated escape-hatch surface. Every field is a "disable" switch
// restoring a reference implementation; results are byte-identical in
// every combination (equivalence tests in internal/core assert it), so
// the engine only changes speed and allocation pressure, never outcomes.
// The zero value is the full fast path: sharded stepping, grid spatial
// index, shared spanner cache, dense tables.
type Engine struct {
	// DisableSharding pins runs to the fully serial engine regardless of
	// WithParallelism: no worker pool, no parallel reception verdicts, no
	// speculative spanner builds.
	DisableSharding bool
	// DisableSpatialIndex resolves receptions and carrier sensing with
	// naive O(n) scans instead of the uniform-grid index.
	DisableSpatialIndex bool
	// DisableSpannerCache rebuilds every route check's spanner from
	// scratch with the reference construction instead of the shared
	// ldt.Maintainer.
	DisableSpannerCache bool
	// DisableDenseTables backs neighbor/location tables with the
	// map-based reference implementation instead of dense id-indexed
	// arrays.
	DisableDenseTables bool
	// DisableCalendarQueue backs the event scheduler with the reference
	// binary heap instead of the O(1)-amortized calendar queue.
	DisableCalendarQueue bool
	// DisableBeaconAggregation arms one reference ticker per node
	// instead of aggregating beacons into one pending event per occupied
	// grid cell.
	DisableBeaconAggregation bool
	// ForkThresholds pins the per-plane fork thresholds of a sharded run:
	// a stepping plane forks its batch onto the worker pool only when the
	// batch size reaches the plane's threshold, and runs inline otherwise.
	// nil (the default) calibrates thresholds at world construction from a
	// measured fork-cost model; pinning them makes fork decisions
	// reproducible across hosts (useful for benchmarks and tests).
	// Thresholds gate only whether work forks, never what it computes —
	// results are byte-identical at every setting, including the
	// pathological extremes 0 (always fork) and math.MaxInt (never fork).
	// Ignored by serial runs.
	ForkThresholds *ForkThresholds
}

// ForkThresholds carries the per-plane minimum batch sizes at which a
// sharded run forks work onto the worker pool (see
// Engine.ForkThresholds). A batch smaller than the plane's threshold
// runs inline on the event goroutine; 0 forks always, math.MaxInt
// never. All fields must be nonnegative.
type ForkThresholds struct {
	// RxMin gates reception-verdict batches: the candidate receivers of
	// one ended airing.
	RxMin int
	// BeaconMin gates batched beacon construction: the due senders of
	// one aggregated beacon event.
	BeaconMin int
	// MobilityMin gates the periodic bulk position reindex: the number
	// of radios whose positions are re-extrapolated.
	MobilityMin int
	// DiffMin gates epidemic anti-entropy diffs: the number of summary
	// ids screened against the local buffer.
	DiffMin int
}

// WithEngine selects the execution engine (default: the zero Engine —
// all fast paths on). See Engine for the switches and docs/MIGRATION.md
// for the mapping from the scattered internal flags this consolidates.
func WithEngine(e Engine) Option {
	return func(s *Scenario) error {
		s.engine = e
		return nil
	}
}

// WithParallelism bounds the per-run shard worker pool: n workers step
// the world's sharded phases concurrently. 0 (the default) sizes the
// pool automatically to GOMAXPROCS; 1 forces serial execution. Results
// are byte-identical at every setting — parallelism only changes wall
// clock. Runner caps each replication's pool so combined workers across
// concurrent replications stay within GOMAXPROCS.
func WithParallelism(n int) Option {
	return func(s *Scenario) error {
		if n < 0 {
			return fmt.Errorf("glr: parallelism %d must be nonnegative", n)
		}
		s.parallelism = n
		return nil
	}
}

// Option configures a Scenario under construction.
type Option func(*Scenario) error

// NewScenario builds a scenario from functional options. With no
// options it is the paper's Table-1 baseline: 50 nodes at 100 m range
// on a 1500×300 m strip, random waypoint 0–20 m/s, the paper's
// round-robin workload (200 messages), GLR routing.
func NewScenario(opts ...Option) (*Scenario, error) {
	s := &Scenario{protocol: GLR, seed: 1}
	for _, opt := range opts {
		if opt == nil {
			return nil, fmt.Errorf("glr: nil Option")
		}
		if err := opt(s); err != nil {
			return nil, err
		}
	}
	// Surface configuration errors at construction, not first Run.
	if _, _, err := s.compile(s.seed); err != nil {
		return nil, err
	}
	return s, nil
}

// WithProtocol selects the routing protocol (default GLR).
func WithProtocol(p Protocol) Option {
	return func(s *Scenario) error {
		switch p {
		case GLR, Epidemic, "":
			s.protocol = p
			return nil
		default:
			return fmt.Errorf("glr: unknown protocol %q", p)
		}
	}
}

// WithNodes sets the network size (default: the paper's 50).
func WithNodes(n int) Option {
	return func(s *Scenario) error {
		if n < 2 {
			return fmt.Errorf("glr: need at least 2 nodes, got %d", n)
		}
		s.nodes = n
		return nil
	}
}

// WithRange sets the transmission range in metres (default 100).
func WithRange(metres float64) Option {
	return func(s *Scenario) error {
		if metres <= 0 {
			return fmt.Errorf("glr: range %v must be positive", metres)
		}
		s.rangeM = metres
		return nil
	}
}

// WithRegion sets the deployment region in metres (default: the
// paper's 1500×300 strip).
func WithRegion(width, height float64) Option {
	return func(s *Scenario) error {
		if width <= 0 || height <= 0 {
			return fmt.Errorf("glr: region %vx%v must be positive", width, height)
		}
		s.width, s.height = width, height
		return nil
	}
}

// WithSimTime fixes the simulation horizon in seconds. Without it the
// horizon is the last scheduled generation plus 600 s of delivery
// slack.
func WithSimTime(seconds float64) Option {
	return func(s *Scenario) error {
		if seconds <= 0 {
			return fmt.Errorf("glr: sim time %v must be positive", seconds)
		}
		s.simTime = seconds
		return nil
	}
}

// WithStorageLimit bounds per-node message storage (default 0 =
// unlimited).
func WithStorageLimit(messages int) Option {
	return func(s *Scenario) error {
		if messages < 0 {
			return fmt.Errorf("glr: storage limit %d must be nonnegative", messages)
		}
		s.storageLimit = messages
		return nil
	}
}

// WithSeed sets the base RNG seed (default 1). Runner replications use
// this as the base of their per-seed derivation.
func WithSeed(seed int64) Option {
	return func(s *Scenario) error {
		s.seed = seed
		return nil
	}
}

// WithMobility selects the movement model (default Waypoint{}).
func WithMobility(m Mobility) Option {
	return func(s *Scenario) error {
		if m == nil || isNilPointer(m) {
			return fmt.Errorf("glr: nil Mobility")
		}
		s.mob = m
		return nil
	}
}

// isNilPointer catches typed-nil pointers hiding inside a non-nil
// interface (e.g. (*Trace)(nil)), which would panic on method dispatch.
func isNilPointer(v any) bool {
	rv := reflect.ValueOf(v)
	return rv.Kind() == reflect.Pointer && rv.IsNil()
}

// WithWorkload selects the traffic generator (default PaperWorkload{}).
func WithWorkload(w Workload) Option {
	return func(s *Scenario) error {
		if w == nil || isNilPointer(w) {
			return fmt.Errorf("glr: nil Workload")
		}
		s.work = w
		return nil
	}
}

// WithGLR overrides the GLR protocol knobs (see GLRConfig).
func WithGLR(cfg GLRConfig) Option {
	return func(s *Scenario) error {
		s.glrCfg = &cfg
		return nil
	}
}

// WithEpidemic overrides the epidemic baseline knobs (see
// EpidemicConfig).
func WithEpidemic(cfg EpidemicConfig) Option {
	return func(s *Scenario) error {
		s.epiCfg = &cfg
		return nil
	}
}

// WithObserver attaches an observer to the scenario's runs. Several
// observers may be attached; callbacks fire in attachment order.
// Observers are read-only probes: an observed run produces exactly the
// same Result as an unobserved one. Runner ignores observers (its runs
// execute concurrently; see Runner).
func WithObserver(o *Observer) Option {
	return func(s *Scenario) error {
		if o == nil {
			return fmt.Errorf("glr: nil Observer")
		}
		if o.SampleEvery < 0 {
			return fmt.Errorf("glr: Observer.SampleEvery %v must be nonnegative", o.SampleEvery)
		}
		if o.SampleEvery > 0 && o.OnSample == nil {
			return fmt.Errorf("glr: Observer.SampleEvery set without OnSample")
		}
		if o.OnSample != nil && o.SampleEvery == 0 {
			return fmt.Errorf("glr: Observer.OnSample set without SampleEvery")
		}
		s.observers = append(s.observers, o)
		return nil
	}
}

// legacyMaxSpeed reproduces the deprecated Config path's quirk of
// carrying MaxSpeed into static scenarios (where it only sizes the
// radio index's staleness slack); it keeps Config.Scenario byte-exact.
func legacyMaxSpeed(v float64) Option {
	return func(s *Scenario) error {
		s.maxSpeed = v
		return nil
	}
}

// Run executes the scenario once and returns its metrics.
func (s *Scenario) Run() (Result, error) {
	return s.RunContext(context.Background())
}

// RunContext is Run with cancellation: once ctx is done the simulation
// is abandoned between event batches and ctx's error returned.
func (s *Scenario) RunContext(ctx context.Context) (Result, error) {
	rep, err := s.runSeed(ctx, s.seed, true)
	if err != nil {
		return Result{}, err
	}
	return resultFromReport(rep), nil
}

// runSeed compiles and executes one replication. Observers attach only
// when observe is set (Runner runs replications concurrently and keeps
// them detached).
func (s *Scenario) runSeed(ctx context.Context, seed int64, observe bool) (metrics.Report, error) {
	scn, factory, err := s.compile(seed)
	if err != nil {
		return metrics.Report{}, err
	}
	w, err := sim.NewWorld(scn, factory)
	if err != nil {
		return metrics.Report{}, err
	}
	if observe {
		s.attachObservers(w)
	}
	return w.RunContext(ctx)
}

// compile lowers the public scenario onto the internal simulator types,
// with the given seed substituted for the base seed (Runner
// replications re-derive the workload from their run seed, so traffic
// randomization is independent across replications).
func (s *Scenario) compile(seed int64) (sim.Scenario, sim.ProtocolFactory, error) {
	rangeM := s.rangeM
	if rangeM == 0 {
		rangeM = 100
	}
	scn := sim.DefaultScenario(rangeM)
	scn.Seed = seed
	if s.nodes > 0 {
		scn.N = s.nodes
	} else if paths, ok := tracePaths(s.mob); ok {
		// Trace mobility pins one trajectory per node; without an
		// explicit node count the trace set determines it.
		scn.N = len(paths)
	}
	if s.width > 0 && s.height > 0 {
		scn.Region.W, scn.Region.H = s.width, s.height
	}
	scn.StorageLimit = s.storageLimit
	scn.Parallelism = s.parallelism
	scn.DisableSharding = s.engine.DisableSharding
	scn.DisableSpatialIndex = s.engine.DisableSpatialIndex
	scn.DisableDenseTables = s.engine.DisableDenseTables
	scn.DisableCalendarQueue = s.engine.DisableCalendarQueue
	scn.DisableBeaconAggregation = s.engine.DisableBeaconAggregation
	if ft := s.engine.ForkThresholds; ft != nil {
		scn.ForkThresholds = &shard.Thresholds{
			RxMin:       ft.RxMin,
			BeaconMin:   ft.BeaconMin,
			MobilityMin: ft.MobilityMin,
			DiffMin:     ft.DiffMin,
		}
	}

	// Workload generators draw random pairs over scn.N; reject
	// degenerate sizes before they schedule (a one-trajectory Trace can
	// reach here without WithNodes).
	if scn.N < 2 {
		return sim.Scenario{}, nil, fmt.Errorf("glr: need at least 2 nodes, got %d", scn.N)
	}

	mob := s.mob
	if mob == nil {
		mob = Waypoint{}
	}
	if err := mob.apply(&scn); err != nil {
		return sim.Scenario{}, nil, err
	}
	if s.maxSpeed > 0 {
		scn.MaxSpeed = s.maxSpeed
	}

	work := s.work
	if work == nil {
		work = PaperWorkload{}
	}
	msgs, err := work.Schedule(scn.N, seed)
	if err != nil {
		return sim.Scenario{}, nil, err
	}
	for _, m := range msgs {
		scn.Traffic = append(scn.Traffic, sim.TrafficItem{Src: m.Src, Dst: m.Dst, At: m.At})
	}

	for _, f := range s.faults {
		scn.Faults = append(scn.Faults, f.spec())
	}

	if s.simTime > 0 {
		scn.SimTime = s.simTime
	} else {
		last := 0.0
		for _, ti := range scn.Traffic {
			if ti.At > last {
				last = ti.At
			}
		}
		scn.SimTime = last + 600
	}
	if err := scn.Validate(); err != nil {
		return sim.Scenario{}, nil, err
	}
	factory, err := buildFactory(s.protocol, s.glrCfg, s.epiCfg, s.engine.DisableSpannerCache)
	if err != nil {
		return sim.Scenario{}, nil, err
	}
	return scn, factory, nil
}

// Mobility is a pluggable movement model for WithMobility. The four
// implementations — Waypoint, Static, RandomWalk, Trace — cover every
// model the simulator provides; the set is closed because models
// evaluate trajectories inside the simulation core.
type Mobility interface {
	apply(s *sim.Scenario) error
}

// Waypoint is the paper's random waypoint model: travel to a uniform
// destination at a uniform random speed, pause, repeat. Zero values
// take the paper's defaults (0–20 m/s, no pause).
type Waypoint struct {
	MinSpeed float64 // m/s (default 0)
	MaxSpeed float64 // m/s (default 20)
	Pause    float64 // seconds at each waypoint (default 0)
}

func (m Waypoint) apply(s *sim.Scenario) error {
	if err := checkSpeeds(m.MinSpeed, m.MaxSpeed, m.Pause); err != nil {
		return err
	}
	s.Mobility = sim.MobilityWaypoint
	s.MinSpeed = m.MinSpeed
	if m.MaxSpeed > 0 {
		s.MaxSpeed = m.MaxSpeed
	}
	s.Pause = m.Pause
	return nil
}

// Static places nodes uniformly at random and never moves them.
type Static struct{}

func (Static) apply(s *sim.Scenario) error {
	s.Mobility = sim.MobilityStatic
	return nil
}

// RandomWalk is a reflecting random walk: pick a uniform direction,
// travel for LegTime seconds at a uniform random speed, reflect off
// region boundaries. Zero values default to 0–20 m/s legs of 20 s.
type RandomWalk struct {
	MinSpeed float64 // m/s (default 0)
	MaxSpeed float64 // m/s (default 20)
	LegTime  float64 // seconds per straight leg (default 20)
}

func (m RandomWalk) apply(s *sim.Scenario) error {
	if err := checkSpeeds(m.MinSpeed, m.MaxSpeed, 0); err != nil {
		return err
	}
	if m.LegTime < 0 {
		return fmt.Errorf("glr: random-walk leg time %v must be nonnegative", m.LegTime)
	}
	s.Mobility = sim.MobilityRandomWalk
	s.MinSpeed = m.MinSpeed
	if m.MaxSpeed > 0 {
		s.MaxSpeed = m.MaxSpeed
	}
	s.WalkLegTime = m.LegTime
	if s.WalkLegTime == 0 {
		s.WalkLegTime = 20
	}
	return nil
}

// TracePoint is one scripted waypoint of a Trace: be at (X, Y) at time
// T. Between waypoints positions interpolate linearly; after the last
// waypoint the node holds position.
type TracePoint struct {
	T    float64 // seconds
	X, Y float64 // metres
}

// Trace replays scripted trajectories, one per node — GPS logs, contact
// traces, or hand-built topologies (a single waypoint pins a node to a
// fixed position). The trace count must match the node count; with no
// WithNodes option the trace count sets it.
type Trace struct {
	Paths [][]TracePoint
}

func (m Trace) apply(s *sim.Scenario) error {
	if len(m.Paths) == 0 {
		return fmt.Errorf("glr: trace mobility needs at least one trajectory")
	}
	s.Mobility = sim.MobilityTrace
	s.Traces = make([][]mobility.TracePoint, len(m.Paths))
	for i, path := range m.Paths {
		pts := make([]mobility.TracePoint, len(path))
		for j, tp := range path {
			pts[j] = mobility.TracePoint{T: tp.T, P: geom.Pt(tp.X, tp.Y)}
		}
		s.Traces[i] = pts
	}
	return nil
}

// tracePaths unwraps a Trace mobility (value or pointer — both satisfy
// Mobility) for node-count inference.
func tracePaths(m Mobility) ([][]TracePoint, bool) {
	switch tr := m.(type) {
	case Trace:
		return tr.Paths, true
	case *Trace:
		if tr == nil {
			return nil, false
		}
		return tr.Paths, true
	default:
		return nil, false
	}
}

func checkSpeeds(minSpeed, maxSpeed, pause float64) error {
	if minSpeed < 0 || maxSpeed < 0 {
		return fmt.Errorf("glr: speeds [%v,%v] must be nonnegative", minSpeed, maxSpeed)
	}
	eff := maxSpeed
	if eff == 0 {
		eff = 20 // the paper's default top speed applies when unset
	}
	if minSpeed > eff {
		return fmt.Errorf("glr: min speed %v exceeds max %v", minSpeed, eff)
	}
	if pause < 0 {
		return fmt.Errorf("glr: pause %v must be nonnegative", pause)
	}
	return nil
}

// Workload is a pluggable traffic generator for WithWorkload. Schedule
// returns the message generations for a run over n nodes; randomized
// workloads must derive all randomness from seed (the run's seed, which
// Runner varies per replication) so runs stay reproducible.
//
// Applications may implement Workload themselves. Schedule must be safe
// for concurrent use — Runner compiles replications on parallel workers
// against the one shared value — so implementations should be stateless
// (like the value types here), seeding a fresh RNG per call rather than
// holding one.
type Workload interface {
	Schedule(n int, seed int64) ([]Message, error)
}

// workloadSeed decorrelates a workload's randomness from the run seed
// that also drives mobility and the MAC.
func workloadSeed(seed int64) int64 { return seed*977 + 5 }

// PaperWorkload is the paper's evaluation traffic: 45 sources sending
// round-robin to 44 destinations at one message per second network-wide.
// Messages 0 means the package default of 200; the paper's full load is
// 1980. For networks smaller than 45 nodes the source set shrinks to n
// (all nodes send and receive) so the pattern still fits. Like the
// paper's schedule, the pattern is finite: Messages beyond
// sources×(sources−1) — 1980 at full size, n×(n−1) below it — are
// truncated to the pattern's capacity.
type PaperWorkload struct {
	Messages int
}

// Schedule implements Workload.
func (w PaperWorkload) Schedule(n int, seed int64) ([]Message, error) {
	msgs := w.Messages
	if msgs == 0 {
		msgs = 200
	}
	if msgs < 0 {
		return nil, fmt.Errorf("glr: message count %d must be nonnegative", w.Messages)
	}
	return fromTraffic(sim.PaperTrafficN(n, msgs)), nil
}

// legacyPaperWorkload pins the fixed 45-source pattern of the
// pre-builder Config API regardless of network size, so the deprecated
// adapters keep their exact semantics — including the validation error
// small networks always produced. New code gets the adaptive
// PaperWorkload instead.
type legacyPaperWorkload struct {
	messages int
}

// Schedule implements Workload.
func (w legacyPaperWorkload) Schedule(n int, seed int64) ([]Message, error) {
	msgs := w.messages
	if msgs <= 0 {
		msgs = 200
	}
	return fromTraffic(sim.PaperTraffic(msgs)), nil
}

// UniformWorkload generates messages between uniformly random distinct
// pairs at a fixed rate. Zero values: 200 messages at 1 msg/s.
type UniformWorkload struct {
	Messages int
	Rate     float64 // messages/second
}

// Schedule implements Workload.
func (w UniformWorkload) Schedule(n int, seed int64) ([]Message, error) {
	msgs, rate, err := countRate(w.Messages, w.Rate)
	if err != nil {
		return nil, err
	}
	return fromTraffic(sim.UniformTraffic(n, msgs, rate, workloadSeed(seed))), nil
}

// PoissonWorkload generates messages between uniformly random distinct
// pairs whose arrivals form a Poisson process (exponential
// inter-arrival gaps with mean 1/Rate). Zero values: 200 messages at
// 1 msg/s.
type PoissonWorkload struct {
	Messages int
	Rate     float64 // mean messages/second
}

// Schedule implements Workload.
func (w PoissonWorkload) Schedule(n int, seed int64) ([]Message, error) {
	msgs, rate, err := countRate(w.Messages, w.Rate)
	if err != nil {
		return nil, err
	}
	return fromTraffic(sim.PoissonTraffic(n, msgs, rate, workloadSeed(seed))), nil
}

// HotspotWorkload concentrates all traffic on a few sink nodes (ids
// 0..Sinks-1), with sources uniform over the rest — the
// "sensors report to collection points" workload. Zero values: 200
// messages at 1 msg/s to a single sink.
type HotspotWorkload struct {
	Messages int
	Rate     float64 // messages/second
	Sinks    int     // number of sink nodes (default 1)
}

// Schedule implements Workload.
func (w HotspotWorkload) Schedule(n int, seed int64) ([]Message, error) {
	msgs, rate, err := countRate(w.Messages, w.Rate)
	if err != nil {
		return nil, err
	}
	if w.Sinks < 0 {
		return nil, fmt.Errorf("glr: sink count %d must be nonnegative", w.Sinks)
	}
	sinks := w.Sinks
	if sinks == 0 {
		sinks = 1
	}
	if sinks > n-1 {
		return nil, fmt.Errorf("glr: %d sinks leave no sources among %d nodes", sinks, n)
	}
	return fromTraffic(sim.HotspotTraffic(n, msgs, sinks, rate, workloadSeed(seed))), nil
}

// ScheduleWorkload is an explicit message schedule, replayed verbatim.
type ScheduleWorkload []Message

// Schedule implements Workload.
func (w ScheduleWorkload) Schedule(n int, seed int64) ([]Message, error) {
	out := make([]Message, len(w))
	copy(out, w)
	return out, nil
}

func countRate(messages int, rate float64) (int, float64, error) {
	if messages < 0 {
		return 0, 0, fmt.Errorf("glr: message count %d must be nonnegative", messages)
	}
	if rate < 0 {
		return 0, 0, fmt.Errorf("glr: rate %v must be nonnegative", rate)
	}
	if messages == 0 {
		messages = 200
	}
	if rate == 0 {
		rate = 1
	}
	return messages, rate, nil
}

func fromTraffic(items []sim.TrafficItem) []Message {
	out := make([]Message, len(items))
	for i, ti := range items {
		out[i] = Message{Src: ti.Src, Dst: ti.Dst, At: ti.At}
	}
	return out
}
