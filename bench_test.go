package glr

// One benchmark per table and figure of the paper's evaluation (§3). Each
// iteration regenerates the artifact end to end at a reduced scale (one
// replication, 5% of the paper's message load) so that a default `go test
// -bench=. -benchmem` pass self-limits to roughly one iteration per
// artifact. Headline metrics are attached via b.ReportMetric so trends
// are visible straight from the bench output; `cmd/glrexp -scale paper`
// runs the full-fidelity versions.

import (
	"context"
	"math"
	"runtime"
	"testing"

	"glr/internal/experiments"
)

// benchOptions is the reduced-scale configuration used by the artifact
// benchmarks.
func benchOptions() experiments.Options {
	return experiments.Options{
		Runs:       1,
		MsgScale:   0.05,
		TimeScale:  1,
		Confidence: 0.90,
		BaseSeed:   1,
		Parallel:   true,
	}
}

func BenchmarkFig1Connectivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig1Connectivity(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ConnectedFrac[0], "connected-frac-250m")
		b.ReportMetric(res.ConnectedFrac[1], "connected-frac-100m")
	}
}

func BenchmarkFig3CheckInterval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3CheckInterval(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Latency[0].AvgLatency.Mean, "lat-0.6s")
		b.ReportMetric(res.Latency[len(res.Latency)-1].AvgLatency.Mean, "lat-1.6s")
	}
}

func BenchmarkTable2LocationKnowledge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2LocationKnowledge(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].Agg.AvgLatency.Mean, "lat-allknow")
		b.ReportMetric(res.Rows[3].Agg.AvgLatency.Mean, "lat-noneknow")
	}
}

func BenchmarkFig4Latency50m(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig45Latency(benchOptions(), 50)
		if err != nil {
			b.Fatal(err)
		}
		last := len(res.GLR) - 1
		b.ReportMetric(res.GLR[last].AvgLatency.Mean, "glr-lat-s")
		b.ReportMetric(res.Epidemic[last].AvgLatency.Mean, "epidemic-lat-s")
	}
}

func BenchmarkFig5Latency100m(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig45Latency(benchOptions(), 100)
		if err != nil {
			b.Fatal(err)
		}
		last := len(res.GLR) - 1
		b.ReportMetric(res.GLR[last].AvgLatency.Mean, "glr-lat-s")
		b.ReportMetric(res.Epidemic[last].AvgLatency.Mean, "epidemic-lat-s")
	}
}

func BenchmarkFig6LatencyRadius(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6LatencyRadius(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.GLR[0].AvgLatency.Mean, "glr-lat-50m")
		b.ReportMetric(res.GLR[len(res.GLR)-1].AvgLatency.Mean, "glr-lat-250m")
	}
}

func BenchmarkTable3Custody(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3Custody(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.With.DeliveryRatio.Mean, "ratio-custody")
		b.ReportMetric(res.Without.DeliveryRatio.Mean, "ratio-no-custody")
	}
}

func BenchmarkFig7StorageLimit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7StorageLimit(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.GLR[0].DeliveryRatio.Mean, "glr-ratio-tight")
		b.ReportMetric(res.Epidemic[0].DeliveryRatio.Mean, "epidemic-ratio-tight")
	}
}

func BenchmarkTable4StorageByMessages(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table4StorageByMessages(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Agg[len(res.Agg)-1].AvgPeakStorage.Mean, "avg-peak-max-load")
	}
}

func BenchmarkTable5StorageByRadius(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table5StorageByRadius(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Agg[0].AvgPeakStorage.Mean, "avg-peak-250m")
		b.ReportMetric(res.Agg[len(res.Agg)-1].AvgPeakStorage.Mean, "avg-peak-50m")
	}
}

func BenchmarkTable6HopCounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table6HopCounts(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		last := len(res.GLR) - 1
		b.ReportMetric(res.GLR[last].AvgHops.Mean, "glr-hops-50m")
		b.ReportMetric(res.Epidemic[last].AvgHops.Mean, "epidemic-hops-50m")
	}
}

func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Ablation(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].Agg.DeliveryRatio.Mean, "ratio-baseline")
		b.ReportMetric(res.Rows[len(res.Rows)-1].Agg.DeliveryRatio.Mean, "ratio-no-custody")
	}
}

// BenchmarkSingleRunGLR measures one end-to-end GLR scenario (the unit of
// every experiment above), for profiling the simulator itself.
func BenchmarkSingleRunGLR(b *testing.B) {
	cfg := DefaultConfig(100)
	cfg.Messages = 100
	cfg.SimTime = 700
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// runnerScenario is the replication workload of the Runner benchmarks:
// small enough for the CI benchmark gate, large enough that per-run
// work dominates pool overhead. Sharding is pinned off so the
// measurement isolates the Runner's own pool (per-run shard workers
// would otherwise vary with the host's core count and the B/op profile
// with goroutine scheduling).
func runnerScenario(b *testing.B) *Scenario {
	sc, err := NewScenario(
		WithNodes(50),
		WithRange(100),
		WithWorkload(UniformWorkload{Messages: 40, Rate: 1}),
		WithSimTime(120),
		WithEngine(Engine{DisableSharding: true}),
	)
	if err != nil {
		b.Fatal(err)
	}
	return sc
}

// benchmarkRunner measures a 4-seed replication sweep at the given pool
// width.
func benchmarkRunner(b *testing.B, workers int) {
	sc := runnerScenario(b)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sum, err := Runner{Workers: workers}.Replicate(ctx, sc, 4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sum.DeliveryRatio.Mean, "delivery-ratio")
	}
}

// BenchmarkRunnerSequential is the single-worker baseline of the
// parallel Runner: the gap to BenchmarkRunnerParallel is the multi-core
// speedup the benchgate baseline records.
func BenchmarkRunnerSequential(b *testing.B) { benchmarkRunner(b, 1) }

// BenchmarkRunnerParallel runs the identical sweep on a GOMAXPROCS-wide
// pool (results are identical seed-for-seed; see
// TestRunnerParallelMatchesSequential).
func BenchmarkRunnerParallel(b *testing.B) { benchmarkRunner(b, runtime.GOMAXPROCS(0)) }

// worldStepScenario is the workload of the execution-engine benchmarks:
// a dense 1000-node field (denser than the paper's strip, so broadcast
// neighborhoods are large enough to shard) over a short horizon. The
// serial and sharded runs produce byte-identical results — the
// equivalence suites prove it — so the pair measures pure wall clock.
func worldStepScenario(b *testing.B, engine Engine, parallelism int) *Scenario {
	sc, err := NewScenario(
		WithNodes(1000),
		WithRange(100),
		WithRegion(3000, 1000),
		WithWorkload(UniformWorkload{Messages: 150, Rate: 20}),
		WithSimTime(10),
		WithEngine(engine),
		WithParallelism(parallelism),
	)
	if err != nil {
		b.Fatal(err)
	}
	return sc
}

// benchmarkWorldStep runs the scenario once per iteration.
func benchmarkWorldStep(b *testing.B, engine Engine, parallelism int) {
	sc := worldStepScenario(b, engine, parallelism)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := sc.Run()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.DeliveryRatio, "delivery-ratio")
	}
}

// BenchmarkWorldStepSerial is the serial-engine baseline at 1000 nodes.
func BenchmarkWorldStepSerial(b *testing.B) {
	benchmarkWorldStep(b, Engine{DisableSharding: true}, 0)
}

// BenchmarkWorldStepSharded runs the identical world on the sharded
// engine with an automatic (GOMAXPROCS) worker pool; the gap to
// BenchmarkWorldStepSerial is the within-run speedup the benchgate
// baseline records. On a single-CPU host the automatic pool resolves
// serial and the two benchmarks coincide.
func BenchmarkWorldStepSharded(b *testing.B) {
	benchmarkWorldStep(b, Engine{}, 0)
}

// benchmarkWorldStepPlane runs the 1000-node world on a pinned 4-worker
// pool with exactly one plane's fork threshold open (1) and every other
// pinned shut (math.MaxInt), so each benchmark isolates one parallel
// plane's cost. The epidemic protocol replaces GLR: its exchange work
// is deterministic under sharding (GLR's speculative spanner builds
// vary with worker timing, making B/op host-dependent) and it drives
// the anti-entropy plane GLR never touches. Pinned thresholds keep the
// fork decisions — and so the allocation profile the benchgate baseline
// gates — independent of the host's calibration.
func benchmarkWorldStepPlane(b *testing.B, ft ForkThresholds) {
	sc, err := NewScenario(
		WithProtocol(Epidemic),
		WithNodes(1000),
		WithRange(100),
		WithRegion(3000, 1000),
		WithWorkload(UniformWorkload{Messages: 150, Rate: 20}),
		WithSimTime(10),
		WithEngine(Engine{ForkThresholds: &ft}),
		WithParallelism(4),
	)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := sc.Run()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.DeliveryRatio, "delivery-ratio")
	}
}

// BenchmarkWorldStepBeaconSharded isolates the batched beacon plane:
// per-cell hello batches fork however small, everything else inline.
func BenchmarkWorldStepBeaconSharded(b *testing.B) {
	benchmarkWorldStepPlane(b, ForkThresholds{
		RxMin: math.MaxInt, BeaconMin: 1, MobilityMin: math.MaxInt, DiffMin: math.MaxInt})
}

// BenchmarkWorldStepMobilitySharded isolates the bulk-reindex plane:
// the periodic position re-extrapolation forks, everything else inline.
func BenchmarkWorldStepMobilitySharded(b *testing.B) {
	benchmarkWorldStepPlane(b, ForkThresholds{
		RxMin: math.MaxInt, BeaconMin: math.MaxInt, MobilityMin: 1, DiffMin: math.MaxInt})
}

// BenchmarkWorldStepAntiEntropySharded isolates the anti-entropy diff
// plane: summary-vector screening forks, everything else inline.
func BenchmarkWorldStepAntiEntropySharded(b *testing.B) {
	benchmarkWorldStepPlane(b, ForkThresholds{
		RxMin: math.MaxInt, BeaconMin: math.MaxInt, MobilityMin: math.MaxInt, DiffMin: 1})
}

// BenchmarkWorldStepFaults runs the serial world-step scenario under a
// composite fault plan (churn + link blackouts + GPS noise + Byzantine
// nodes): the per-reception fault predicate and the churn event
// schedule are on the hot path here. The serial engine keeps B/op
// host-independent; like the other WorldStep macro-benchmarks the
// benchgate baseline gates memory only.
func BenchmarkWorldStepFaults(b *testing.B) {
	sc, err := NewScenario(
		WithNodes(1000),
		WithRange(100),
		WithRegion(3000, 1000),
		WithWorkload(UniformWorkload{Messages: 150, Rate: 20}),
		WithSimTime(10),
		WithEngine(Engine{DisableSharding: true}),
		WithFaults(
			Fault{Kind: FaultChurn, Rate: 0.01, Duration: 2},
			Fault{Kind: FaultLinkBlackout, Rate: 0.2, Period: 5},
			Fault{Kind: FaultGPSNoise, Sigma: 30},
			Fault{Kind: FaultByzantine, Fraction: 0.1},
		),
	)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := sc.Run()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.DeliveryRatio, "delivery-ratio")
	}
}

// BenchmarkSingleRunEpidemic is the epidemic counterpart.
func BenchmarkSingleRunEpidemic(b *testing.B) {
	cfg := DefaultConfig(100)
	cfg.Protocol = Epidemic
	cfg.Messages = 100
	cfg.SimTime = 700
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
