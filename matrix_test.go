package glr

import (
	"strings"
	"testing"
)

func TestMatrixNormalizedDefaults(t *testing.T) {
	m := Matrix{}.Normalized()
	if len(m.Protocols) != 2 || m.Protocols[0] != GLR || m.Protocols[1] != Epidemic {
		t.Fatalf("default protocols = %v", m.Protocols)
	}
	if len(m.Mobilities) != 1 || m.Mobilities[0] != MobilityWaypoint {
		t.Fatalf("default mobilities = %v", m.Mobilities)
	}
	if len(m.Workloads) != 1 || m.Workloads[0] != WorkloadPaper {
		t.Fatalf("default workloads = %v", m.Workloads)
	}
	if m.Messages != 200 || m.Seeds != 3 || m.BaseSeed != 1 {
		t.Fatalf("default replication = %d msgs, %d seeds, base %d", m.Messages, m.Seeds, m.BaseSeed)
	}
	if m.SimTime != float64(m.Messages)+600 {
		t.Fatalf("default horizon = %v", m.SimTime)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("normalized zero matrix invalid: %v", err)
	}
}

func TestMatrixValidateRejectsBadValues(t *testing.T) {
	bad := []Matrix{
		{Mobilities: []MobilityKind{"teleport"}},
		{Workloads: []WorkloadKind{"bursty"}},
		{Protocols: []Protocol{"carrier-pigeon"}},
		{Nodes: []int{0}},
		{Ranges: []float64{-1}},
		{StorageLimits: []int{-2}},
	}
	for i, m := range bad {
		if err := m.Normalized().Validate(); err == nil {
			t.Errorf("bad matrix %d validated", i)
		}
	}
}

func TestMatrixCellsDeterministicOrder(t *testing.T) {
	m := Matrix{
		Protocols:     []Protocol{GLR, Epidemic},
		Mobilities:    []MobilityKind{MobilityWaypoint, MobilityStatic},
		Nodes:         []int{30, 50},
		StorageLimits: []int{0, 10},
	}.Normalized()
	cells := m.Cells()
	want := 2 * 2 * 1 * 2 * 1 * 2
	if len(cells) != want {
		t.Fatalf("got %d cells, want %d", len(cells), want)
	}
	// Protocol is the innermost axis: consecutive cells differ only by
	// protocol, so regime rows compare like against like.
	for i := 0; i+1 < len(cells); i += 2 {
		a, b := cells[i], cells[i+1]
		if a.Protocol != GLR || b.Protocol != Epidemic {
			t.Fatalf("cells %d,%d protocols = %s,%s", i, i+1, a.Protocol, b.Protocol)
		}
		if a.Coordinate() != b.Coordinate() {
			t.Fatalf("cells %d,%d straddle coordinates", i, i+1)
		}
	}
	again := m.Cells()
	for i := range cells {
		if cells[i] != again[i] {
			t.Fatal("Cells enumeration is not deterministic")
		}
	}
}

func TestCellScenarioRuns(t *testing.T) {
	m := Matrix{
		Protocols: []Protocol{GLR},
		Workloads: []WorkloadKind{WorkloadPoisson},
		Nodes:     []int{10},
		Ranges:    []float64{150},
		Messages:  5,
		SimTime:   90,
		Seeds:     1,
	}.Normalized()
	cell := m.Cells()[0]
	sc, err := cell.Scenario(WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Generated == 0 {
		t.Fatal("cell scenario generated no messages")
	}
}

func TestCellLabel(t *testing.T) {
	cell := Cell{Protocol: GLR, Mobility: MobilityWaypoint, Workload: WorkloadPaper, Nodes: 50, Range: 100}
	if got := cell.Label(); got != "glr/waypoint/paper/n50/r100/s∞" {
		t.Fatalf("label = %q", got)
	}
	cell.StorageLimit = 10
	if got := cell.Label(); !strings.HasSuffix(got, "/s10") {
		t.Fatalf("bounded-storage label = %q", got)
	}
}

func TestKindExpansion(t *testing.T) {
	for _, k := range []MobilityKind{MobilityWaypoint, MobilityStatic, MobilityRandomWalk} {
		if _, err := k.Mobility(); err != nil {
			t.Errorf("%s: %v", k, err)
		}
	}
	if _, err := MobilityKind("teleport").Mobility(); err == nil {
		t.Error("unknown mobility kind expanded")
	}
	for _, k := range []WorkloadKind{WorkloadPaper, WorkloadUniform, WorkloadPoisson, WorkloadHotspot} {
		if _, err := k.Workload(10); err != nil {
			t.Errorf("%s: %v", k, err)
		}
	}
	if _, err := WorkloadKind("bursty").Workload(10); err == nil {
		t.Error("unknown workload kind expanded")
	}
}
