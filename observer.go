package glr

import (
	"glr/internal/dtn"
	"glr/internal/fault"
	"glr/internal/metrics"
	"glr/internal/sim"
)

// Observer surfaces a run in flight: per-event callbacks on message
// generation and delivery, plus an optional periodic sampler producing
// a time series of delivery, latency, buffer occupancy, and control
// overhead. Attach with WithObserver.
//
// All callbacks fire synchronously on the simulation goroutine, in
// simulated-time order; they must not block and must not attempt to
// mutate the run. Observation is free of side effects: a run with
// observers attached produces exactly the same Result as one without.
type Observer struct {
	// OnGenerated fires when a message is created at its source.
	OnGenerated func(MessageEvent)
	// OnDelivered fires when a copy of a message reaches its
	// destination, including duplicate copies (Duplicate true).
	OnDelivered func(DeliveryEvent)
	// OnFault fires on every discrete fault occurrence in a run built
	// with WithFaults: a node crashing or restarting (FaultChurn) and a
	// region blackout starting or lifting (FaultRegionBlackout).
	// Fault-free runs never fire it.
	OnFault func(FaultEvent)

	// SampleEvery enables the periodic sampler: every SampleEvery
	// simulated seconds (first at SampleEvery) OnSample receives a
	// Sample. Zero disables sampling; negative is a configuration
	// error. Setting SampleEvery requires OnSample.
	SampleEvery float64
	// OnSample receives the periodic time-series points.
	OnSample func(Sample)
}

// MessageEvent describes one message generation. (Src, Seq) identify
// the message uniquely within a run.
type MessageEvent struct {
	Src, Seq int
	Dst      int
	At       float64 // seconds
}

// DeliveryEvent describes one copy arriving at its destination.
type DeliveryEvent struct {
	Src, Seq  int
	Dst       int
	CreatedAt float64 // generation time, seconds
	At        float64 // arrival time, seconds
	Hops      int
	// Duplicate is true for every copy after the first; only the first
	// copy counts toward latency and hop metrics.
	Duplicate bool
}

// Latency returns the copy's end-to-end delay in seconds.
func (e DeliveryEvent) Latency() float64 { return e.At - e.CreatedAt }

// FaultEvent describes one discrete fault occurrence: a churn crash or
// restart, or a region blackout starting or lifting. Continuous faults
// (link blackouts, GPS noise, Byzantine drops) have no discrete edges;
// their intensity surfaces through Sample instead.
type FaultEvent struct {
	// Kind is the model that fired (FaultChurn or FaultRegionBlackout).
	Kind FaultKind
	// At is the simulation time of the occurrence, in seconds.
	At float64
	// Node is the crashed or restarted node, or -1 for region-scoped
	// events.
	Node int
	// Restored is false when disruption begins (crash, blackout start)
	// and true when it ends (restart, blackout lift).
	Restored bool
}

// Sample is one periodic observation of a running scenario.
type Sample struct {
	Time float64 // seconds

	// Cumulative workload counters.
	Generated  int
	Delivered  int
	Duplicates int

	// DeliveryRatio is Delivered/Generated so far (0 when nothing has
	// been generated yet).
	DeliveryRatio float64
	// AvgLatency is the mean first-copy delivery latency so far, in
	// seconds (0 while nothing is delivered).
	AvgLatency float64

	// Instantaneous buffer occupancy: messages held across all nodes,
	// and the fullest single node.
	BufferTotal int
	BufferMax   int

	// Cumulative control-plane/data-plane overhead counters.
	ControlFrames uint64
	DataFrames    uint64
	Acks          uint64

	// NodesDown is the number of nodes currently crashed by churn;
	// FaultDrops counts receptions lost so far to blackouts or crashed
	// receivers. Both stay zero in fault-free runs.
	NodesDown  int
	FaultDrops uint64
}

// attachObservers wires the scenario's observers into a freshly built
// world: event hooks onto the metrics collector, samplers onto the
// scheduler.
func (s *Scenario) attachObservers(w *sim.World) {
	if len(s.observers) == 0 {
		return
	}
	var hooks metrics.Hooks
	var faultHook func(fault.Event)
	for _, o := range s.observers {
		o := o
		if o.OnFault != nil {
			prev := faultHook
			faultHook = func(e fault.Event) {
				if prev != nil {
					prev(e)
				}
				o.OnFault(FaultEvent{
					Kind: FaultKind(e.Kind), At: e.Time, Node: e.Node, Restored: e.Restored,
				})
			}
		}
		if o.OnGenerated != nil {
			prev := hooks.Created
			hooks.Created = func(id dtn.MessageID, at float64, dst int) {
				if prev != nil {
					prev(id, at, dst)
				}
				o.OnGenerated(MessageEvent{Src: id.Src, Seq: id.Seq, Dst: dst, At: at})
			}
		}
		if o.OnDelivered != nil {
			prev := hooks.Delivered
			hooks.Delivered = func(id dtn.MessageID, createdAt, at float64, dst, hops int, first bool) {
				if prev != nil {
					prev(id, createdAt, at, dst, hops, first)
				}
				o.OnDelivered(DeliveryEvent{
					Src: id.Src, Seq: id.Seq, Dst: dst,
					CreatedAt: createdAt, At: at, Hops: hops, Duplicate: !first,
				})
			}
		}
		if o.SampleEvery > 0 && o.OnSample != nil {
			w.AddSampler(o.SampleEvery, o.SampleEvery, func(sp sim.SamplePoint) {
				o.OnSample(sampleFromPoint(sp))
			})
		}
	}
	if hooks.Created != nil || hooks.Delivered != nil {
		w.Collector().SetHooks(hooks)
	}
	if faultHook != nil {
		w.SetFaultHook(faultHook)
	}
}

// sampleFromPoint lowers the internal sample to the public schema.
func sampleFromPoint(sp sim.SamplePoint) Sample {
	s := Sample{
		Time:          sp.Time,
		Generated:     sp.Generated,
		Delivered:     sp.Delivered,
		Duplicates:    sp.Duplicates,
		BufferTotal:   sp.BufferTotal,
		BufferMax:     sp.BufferMax,
		ControlFrames: sp.ControlFrames,
		DataFrames:    sp.DataFrames,
		Acks:          sp.Acks,
		NodesDown:     sp.NodesDown,
		FaultDrops:    sp.FaultDrops,
	}
	if sp.Generated > 0 {
		s.DeliveryRatio = float64(sp.Delivered) / float64(sp.Generated)
	}
	if sp.Delivered > 0 {
		s.AvgLatency = sp.LatencySum / float64(sp.Delivered)
	}
	return s
}
