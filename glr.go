// Package glr is a Go reproduction of "A Geometric Routing Protocol in
// Disruption Tolerant Network" (Du, Kranakis, Nayak; ICDCS Workshops
// 2009): the GLR protocol — greedy geographic routing over a localized
// Delaunay triangulation spanner with controlled multi-copy flooding
// along MaxDSTD/MinDSTD/MidDSTD trees, store-and-forward, face routing,
// location diffusion and custody transfer — together with the epidemic
// routing baseline, a discrete-event wireless network simulator (CSMA/CA
// MAC, two-ray ground propagation, random waypoint mobility), and a
// harness that regenerates every table and figure of the paper's
// evaluation.
//
// Quick start:
//
//	cfg := glr.DefaultConfig(100) // 100 m transmission range
//	cfg.Messages = 200
//	res, err := glr.Run(cfg)
//	fmt.Println(res)
//
// Compare against the epidemic baseline:
//
//	mine, base, err := glr.Compare(cfg)
//
// Regenerate a paper artifact:
//
//	out, err := glr.RunExperiment("fig7", glr.Quick)
//	fmt.Println(out)
//
// # Performance & scaling
//
// The wireless medium resolves receptions, carrier sensing, and
// interference through a uniform-grid spatial index (internal/spatial)
// whose cells match the relevant query radii, so the per-airing cost
// depends on the sender's neighborhood, not on the network size; unicast
// frames resolve against their destination in O(1). Radio cells are
// refreshed lazily as positions are observed and in bulk once per beacon
// interval, with index queries widened by a slack covering the possible
// drift in between, which keeps grid resolution exactly equivalent to a
// full scan (a property test in internal/mac asserts identical delivered
// frame sets and MAC statistics across randomized static and mobile
// topologies). The naive O(n²) path remains available behind
// mac.Config.DisableSpatialIndex as an escape hatch and benchmark
// baseline: BenchmarkMediumBroadcast{Naive,Grid} in internal/mac compare
// the two on a 1000-radio medium.
//
// The GLR routing loop's spanner construction — the per-check k-LDTG a
// node derives from beacon knowledge — runs through a persistent cache
// (ldt.Maintainer, one shared per world) instead of re-triangulating
// every witness neighborhood from scratch each check interval:
//
//   - Witness triangulations and whole accepted-neighbor results are
//     keyed by exact signatures (member ids plus IEEE-754 position bits,
//     sorted by id), so permuted views, repeated checks, and overlapping
//     neighborhoods of different nodes all reuse one entry, and any
//     movement or membership change misses rather than returning stale
//     state. Correctness therefore never depends on invalidation;
//     invalidation is hygiene: beacons feed Maintainer.Observe with the
//     freshest position per node, and a periodic sweep evicts entries
//     built from superseded coordinates once they stop being queried,
//     plus anything idle past a short TTL.
//   - Cold rebuilds use an adjacency-based Bowyer–Watson triangulator
//     (geom.Triangulator: neighbor-linked mesh, walk-based point
//     location, BFS cavity search, ghost triangles for the hull,
//     reusable scratch buffers), which replaces the reference
//     implementation's O(triangles) scans per insertion and cuts a
//     256-point construction from ~15 ms to ~0.3 ms with ~60× fewer
//     allocations. The reference construction is kept as
//     geom.DelaunayRef and is equivalence-tested against the mesh.
//   - The Gabriel and UDG ablation spanners ride the same result cache.
//   - core.Config.DisableSpannerCache restores the from-scratch
//     reference path (mirroring DisableSpatialIndex); equivalence tests
//     in internal/core assert that cached and from-scratch runs produce
//     identical per-node accepted-neighbor sets and identical end-to-end
//     reports across randomized mobile scenarios.
//
// The per-node state plane — the neighbor and location tables every DTN
// node refreshes on every received beacon — is dense and generation-
// stamped rather than map-based: rows live in per-world id-indexed
// arrays (dtn.NewDenseNeighborTable/NewDenseLocationTable), a row is
// live iff its stamp matches the table generation (O(1) upsert, O(1)
// whole-table reset), and a sorted live-id list keeps outputs in the
// same deterministic order as the map-backed reference. The hot tick
// path is allocation-free in steady state:
//
//   - Observe copies each beacon's advertised list into row-owned
//     backing arrays reused across refreshes, so beacon payloads (frame,
//     payload box, and neighbor buffer together) recycle on world-level
//     free lists the moment the MAC resolves the broadcast; generic
//     protocol frames and GLR data-frame boxes pool the same way.
//   - Snapshot-style queries have appending variants (AppendAdvertised,
//     AppendTwoHop) writing into caller-reused scratch, with generation-
//     stamped marks replacing the per-call dedup map; the GLR routing
//     loop feeds its spanner construction and per-message candidate
//     sort entirely from per-instance scratch buffers.
//   - The medium resolves receptions in per-tick batches: airings whose
//     ends coincide are resolved by one pass that prunes the FIFO once
//     and gathers a shared interferer-candidate set over the affected
//     grid cells (epoch-stamped dedup), with closure-free NearIDs
//     queries into reused buffers; per-radio backoff/defer retries reuse
//     one pre-allocated handler.
//   - The map-backed reference tables remain behind
//     sim.Scenario.DisableDenseTables (mirroring DisableSpatialIndex and
//     DisableSpannerCache); property tests in internal/dtn drive both
//     backends through randomized churn — expiry, re-appearance, id
//     reuse, relabeling — asserting identical outputs, and equivalence
//     tests in internal/core prove byte-identical end-to-end reports
//     across every escape-hatch combination.
//
// The node-count scaling sweep (`glrexp -exp scale`) reports delivery,
// wall-clock, spanner-construction time (cached vs from-scratch), and
// heap-allocation pressure (dense vs map-backed tables, via
// runtime.ReadMemStats) for 100..1000-node scenarios at the paper's
// density; at 1000 nodes the cached spanner path cuts construction
// ~3.6× and the dense state plane removes over half of all heap
// allocations. CI guards the hot paths with a benchmark-regression gate
// (cmd/benchgate): spanner + medium + table + beacon-tick benchmarks
// run five times with -benchmem, per-benchmark median ns/op is
// normalized by a calibration probe while B/op and allocs/op gate raw,
// and any >15% regression against the committed ci/bench_baseline.json
// fails the build.
package glr

import (
	"fmt"

	"glr/internal/core"
	"glr/internal/epidemic"
	"glr/internal/sim"
)

// Protocol selects the routing protocol for a run.
type Protocol string

// Supported protocols.
const (
	// GLR is the paper's Geometric Localized Routing protocol.
	GLR Protocol = "glr"
	// Epidemic is the Vahdat–Becker benchmark.
	Epidemic Protocol = "epidemic"
)

// Config describes one simulation run. Zero values fall back to the
// paper's Table-1 defaults; construct with DefaultConfig.
type Config struct {
	// Protocol to run (default GLR).
	Protocol Protocol
	// Nodes is the network size (paper: 50).
	Nodes int
	// Range is the transmission range in metres (paper: 50–250).
	Range float64
	// Width and Height set the deployment region (paper: 1500×300 m).
	Width, Height float64
	// Messages generated using the paper's traffic pattern (45 sources,
	// round-robin, 1 msg/s). Ignored when Traffic is set.
	Messages int
	// Traffic optionally supplies an explicit schedule: (src, dst, at).
	Traffic []Message
	// SimTime is the horizon in seconds (0 = long enough for Traffic).
	SimTime float64
	// StorageLimit bounds per-node message storage (0 = unlimited).
	StorageLimit int
	// MaxSpeed is the random-waypoint top speed in m/s (paper: 20).
	MaxSpeed float64
	// Static disables mobility (uniform static placement).
	Static bool
	// Seed makes the run reproducible.
	Seed int64

	// GLRConfig overrides the GLR protocol parameters (nil = paper
	// defaults). See package documentation for the knobs.
	GLRConfig *GLRConfig
	// EpidemicConfig overrides the epidemic baseline parameters.
	EpidemicConfig *EpidemicConfig
}

// Message is one scheduled message generation.
type Message struct {
	Src, Dst int
	At       float64
}

// GLRConfig exposes the protocol knobs of the paper's §2 mechanisms.
type GLRConfig struct {
	// CheckInterval is the store-and-forward route re-check period
	// (paper default 0.9 s; Figure 3 sweeps it).
	CheckInterval float64
	// Copies forces the number of message copies; 0 uses Algorithm 1
	// (network sparsity decides).
	Copies int
	// DisableCustody turns off custody transfer (§2.3.2; Table 3
	// measures the cost of running without it).
	DisableCustody bool
	// Location selects the Table-2 destination-knowledge regime:
	// "source" (default), "all", or "none".
	Location string
	// K is the LDTG neighborhood depth (paper: 2).
	K int
	// FullTableExchange enables the §2.3.1 extension: whole location
	// tables are exchanged when nodes meet (the paper describes but
	// disables this for overhead reasons).
	FullTableExchange bool
}

// EpidemicConfig exposes the baseline's anti-entropy knobs.
type EpidemicConfig struct {
	// ExchangeInterval rate-limits per-pair anti-entropy sessions.
	ExchangeInterval float64
	// DataSendRate paces per-node message transfers (msgs/s; 0 = line
	// rate).
	DataSendRate float64
	// BroadcastDeltas enables the broadcast-advertisement enhancement
	// (off = faithful Vahdat–Becker; see DESIGN.md).
	BroadcastDeltas bool
	// ActiveReceipts enables the delivery-receipt extension discussed in
	// the paper's introduction: anti-packets purge delivered messages
	// from buffers network-wide.
	ActiveReceipts bool
}

// DefaultConfig returns the paper's Table-1 scenario at the given
// transmission range, with a modest default workload.
func DefaultConfig(rangeMetres float64) Config {
	return Config{
		Protocol: GLR,
		Nodes:    50,
		Range:    rangeMetres,
		Width:    1500,
		Height:   300,
		Messages: 200,
		MaxSpeed: 20,
		Seed:     1,
	}
}

// Result digests one run.
type Result struct {
	Generated      int
	Delivered      int
	DeliveryRatio  float64
	AvgLatency     float64 // seconds
	AvgHops        float64
	MaxPeakStorage int
	AvgPeakStorage float64
	Duplicates     int
	ControlFrames  uint64
	DataFrames     uint64
	Acks           uint64
}

// String implements fmt.Stringer.
func (r Result) String() string {
	return fmt.Sprintf("delivered %d/%d (%.1f%%), latency %.2fs, hops %.2f, peak storage max %d avg %.1f",
		r.Delivered, r.Generated, 100*r.DeliveryRatio, r.AvgLatency, r.AvgHops,
		r.MaxPeakStorage, r.AvgPeakStorage)
}

// Run executes one simulation and returns its metrics.
func Run(cfg Config) (Result, error) {
	scenario, err := cfg.scenario()
	if err != nil {
		return Result{}, err
	}
	factory, err := cfg.factory()
	if err != nil {
		return Result{}, err
	}
	w, err := sim.NewWorld(scenario, factory)
	if err != nil {
		return Result{}, err
	}
	rep := w.Run()
	return Result{
		Generated:      rep.Generated,
		Delivered:      rep.Delivered,
		DeliveryRatio:  rep.DeliveryRatio,
		AvgLatency:     rep.AvgLatency,
		AvgHops:        rep.AvgHops,
		MaxPeakStorage: rep.MaxPeakStorage,
		AvgPeakStorage: rep.AvgPeakStorage,
		Duplicates:     rep.Duplicates,
		ControlFrames:  rep.ControlFrames,
		DataFrames:     rep.DataFrames,
		Acks:           rep.Acks,
	}, nil
}

// Compare runs the same scenario under GLR and epidemic routing.
func Compare(cfg Config) (glrRes, epidemicRes Result, err error) {
	cfg.Protocol = GLR
	glrRes, err = Run(cfg)
	if err != nil {
		return
	}
	cfg.Protocol = Epidemic
	epidemicRes, err = Run(cfg)
	return
}

// scenario translates the public Config into the internal scenario.
func (cfg Config) scenario() (sim.Scenario, error) {
	rangeM := cfg.Range
	if rangeM == 0 {
		rangeM = 100
	}
	s := sim.DefaultScenario(rangeM)
	if cfg.Nodes > 0 {
		s.N = cfg.Nodes
	}
	if cfg.Width > 0 && cfg.Height > 0 {
		s.Region.W, s.Region.H = cfg.Width, cfg.Height
	}
	if cfg.MaxSpeed > 0 {
		s.MaxSpeed = cfg.MaxSpeed
	}
	if cfg.Static {
		s.Mobility = sim.MobilityStatic
	}
	s.StorageLimit = cfg.StorageLimit
	s.Seed = cfg.Seed
	if len(cfg.Traffic) > 0 {
		for _, m := range cfg.Traffic {
			s.Traffic = append(s.Traffic, sim.TrafficItem{Src: m.Src, Dst: m.Dst, At: m.At})
		}
	} else {
		msgs := cfg.Messages
		if msgs <= 0 {
			msgs = 200
		}
		s.Traffic = sim.PaperTraffic(msgs)
	}
	if cfg.SimTime > 0 {
		s.SimTime = cfg.SimTime
	} else {
		last := 0.0
		for _, ti := range s.Traffic {
			if ti.At > last {
				last = ti.At
			}
		}
		s.SimTime = last + 600
	}
	return s, s.Validate()
}

// factory builds the protocol factory for the configured protocol.
func (cfg Config) factory() (sim.ProtocolFactory, error) {
	switch cfg.Protocol {
	case Epidemic:
		ec := epidemic.DefaultConfig()
		if o := cfg.EpidemicConfig; o != nil {
			if o.ExchangeInterval > 0 {
				ec.ExchangeInterval = o.ExchangeInterval
			}
			if o.DataSendRate > 0 {
				ec.DataSendRate = o.DataSendRate
			}
			ec.BroadcastDeltas = o.BroadcastDeltas
			ec.ActiveReceipts = o.ActiveReceipts
		}
		return epidemic.New(ec)
	case GLR, "":
		gc := core.DefaultConfig()
		if o := cfg.GLRConfig; o != nil {
			if o.CheckInterval > 0 {
				gc.CheckInterval = o.CheckInterval
			}
			if o.Copies > 0 {
				gc.Copies = o.Copies
			}
			if o.K > 0 {
				gc.K = o.K
			}
			gc.Custody = !o.DisableCustody
			gc.FullTableExchange = o.FullTableExchange
			switch o.Location {
			case "", "source":
				gc.Location = core.LocSourceKnows
			case "all":
				gc.Location = core.LocAllKnow
			case "none":
				gc.Location = core.LocNoneKnow
			default:
				return nil, fmt.Errorf("glr: unknown location regime %q", o.Location)
			}
		}
		return core.New(gc)
	default:
		return nil, fmt.Errorf("glr: unknown protocol %q", cfg.Protocol)
	}
}
