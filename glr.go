// Package glr is a Go reproduction of "A Geometric Routing Protocol in
// Disruption Tolerant Network" (Du, Kranakis, Nayak; ICDCS Workshops
// 2009): the GLR protocol — greedy geographic routing over a localized
// Delaunay triangulation spanner with controlled multi-copy flooding
// along MaxDSTD/MinDSTD/MidDSTD trees, store-and-forward, face routing,
// location diffusion and custody transfer — together with the epidemic
// routing baseline, a discrete-event wireless network simulator (CSMA/CA
// MAC, two-ray ground propagation, random waypoint mobility), and a
// harness that regenerates every table and figure of the paper's
// evaluation.
//
// Quick start — describe a scenario with functional options and run it:
//
//	sc, err := glr.NewScenario(
//		glr.WithRange(100),          // metres (paper: 50–250)
//		glr.WithWorkload(glr.PaperWorkload{Messages: 200}),
//		glr.WithSeed(42),
//	)
//	res, err := sc.Run()
//	fmt.Println(res)
//
// Everything is pluggable. Mobility models (the paper's random
// waypoint, static placement, a reflecting random walk, scripted
// traces):
//
//	sc, err := glr.NewScenario(
//		glr.WithMobility(glr.RandomWalk{MaxSpeed: 10, LegTime: 30}),
//	)
//
// Traffic workloads (the paper's round-robin pattern, uniform random
// pairs, Poisson arrivals, hotspot sinks, explicit schedules — or any
// type implementing Workload):
//
//	sc, err := glr.NewScenario(
//		glr.WithWorkload(glr.PoissonWorkload{Messages: 500, Rate: 2}),
//	)
//
// Observe a run in flight instead of waiting for the final digest —
// per-event callbacks plus a periodic time series of delivery, latency,
// buffer occupancy, and control overhead:
//
//	sc, err := glr.NewScenario(glr.WithObserver(&glr.Observer{
//		OnDelivered: func(e glr.DeliveryEvent) { fmt.Println("delivered", e.Src, e.Seq, e.Latency()) },
//		SampleEvery: 60,
//		OnSample:    func(s glr.Sample) { fmt.Printf("t=%gs ratio=%.2f buffered=%d\n", s.Time, s.DeliveryRatio, s.BufferTotal) },
//	}))
//
// Replicate across seeds — and compare protocols — on all cores, with
// mean ± confidence-interval aggregation and context cancellation:
//
//	var r glr.Runner // zero value: all CPUs, 90% confidence
//	cmp, err := r.Compare(ctx, sc, 10)
//	fmt.Println(cmp.GLR.DeliveryRatio, cmp.Epidemic.DeliveryRatio)
//
// Regenerate a paper artifact:
//
//	out, err := glr.RunExperiment("fig7", glr.Quick)
//	fmt.Println(out)
//
// The flat Config / Run / Compare surface predating the builder remains
// as a thin adapter and produces byte-identical results; new code
// should prefer NewScenario.
//
// # Performance & scaling
//
// The wireless medium resolves receptions, carrier sensing, and
// interference through a uniform-grid spatial index (internal/spatial)
// whose cells match the relevant query radii, so the per-airing cost
// depends on the sender's neighborhood, not on the network size; unicast
// frames resolve against their destination in O(1). Radio cells are
// refreshed lazily as positions are observed and in bulk once per beacon
// interval, with index queries widened by a slack covering the possible
// drift in between, which keeps grid resolution exactly equivalent to a
// full scan (a property test in internal/mac asserts identical delivered
// frame sets and MAC statistics across randomized static and mobile
// topologies). The naive O(n²) path remains available behind
// mac.Config.DisableSpatialIndex as an escape hatch and benchmark
// baseline: BenchmarkMediumBroadcast{Naive,Grid} in internal/mac compare
// the two on a 1000-radio medium.
//
// The GLR routing loop's spanner construction — the per-check k-LDTG a
// node derives from beacon knowledge — runs through a persistent cache
// (ldt.Maintainer, one shared per world) instead of re-triangulating
// every witness neighborhood from scratch each check interval:
//
//   - Witness triangulations and whole accepted-neighbor results are
//     keyed by exact signatures (member ids plus IEEE-754 position bits,
//     sorted by id), so permuted views, repeated checks, and overlapping
//     neighborhoods of different nodes all reuse one entry, and any
//     movement or membership change misses rather than returning stale
//     state. Correctness therefore never depends on invalidation;
//     invalidation is hygiene: beacons feed Maintainer.Observe with the
//     freshest position per node, and a periodic sweep evicts entries
//     built from superseded coordinates once they stop being queried,
//     plus anything idle past a short TTL.
//   - Cold rebuilds use an adjacency-based Bowyer–Watson triangulator
//     (geom.Triangulator: neighbor-linked mesh, walk-based point
//     location, BFS cavity search, ghost triangles for the hull,
//     reusable scratch buffers), which replaces the reference
//     implementation's O(triangles) scans per insertion and cuts a
//     256-point construction from ~15 ms to ~0.3 ms with ~60× fewer
//     allocations. The reference construction is kept as
//     geom.DelaunayRef and is equivalence-tested against the mesh.
//   - The Gabriel and UDG ablation spanners ride the same result cache.
//   - core.Config.DisableSpannerCache restores the from-scratch
//     reference path (mirroring DisableSpatialIndex); equivalence tests
//     in internal/core assert that cached and from-scratch runs produce
//     identical per-node accepted-neighbor sets and identical end-to-end
//     reports across randomized mobile scenarios.
//
// The per-node state plane — the neighbor and location tables every DTN
// node refreshes on every received beacon — is dense and generation-
// stamped rather than map-based: rows live in per-world id-indexed
// arrays (dtn.NewDenseNeighborTable/NewDenseLocationTable), a row is
// live iff its stamp matches the table generation (O(1) upsert, O(1)
// whole-table reset), and a sorted live-id list keeps outputs in the
// same deterministic order as the map-backed reference. The hot tick
// path is allocation-free in steady state:
//
//   - Observe copies each beacon's advertised list into row-owned
//     backing arrays reused across refreshes, so beacon payloads (frame,
//     payload box, and neighbor buffer together) recycle on world-level
//     free lists the moment the MAC resolves the broadcast; generic
//     protocol frames and GLR data-frame boxes pool the same way.
//   - Snapshot-style queries have appending variants (AppendAdvertised,
//     AppendTwoHop) writing into caller-reused scratch, with generation-
//     stamped marks replacing the per-call dedup map; the GLR routing
//     loop feeds its spanner construction and per-message candidate
//     sort entirely from per-instance scratch buffers.
//   - The medium resolves receptions in per-tick batches: airings whose
//     ends coincide are resolved by one pass that prunes the FIFO once
//     and gathers a shared interferer-candidate set over the affected
//     grid cells (epoch-stamped dedup), with closure-free NearIDs
//     queries into reused buffers; per-radio backoff/defer retries reuse
//     one pre-allocated handler.
//   - The map-backed reference tables remain behind
//     sim.Scenario.DisableDenseTables (mirroring DisableSpatialIndex and
//     DisableSpannerCache); property tests in internal/dtn drive both
//     backends through randomized churn — expiry, re-appearance, id
//     reuse, relabeling — asserting identical outputs, and equivalence
//     tests in internal/core prove byte-identical end-to-end reports
//     across every escape-hatch combination.
//
// On multi-core hosts a single run additionally executes on a sharded
// engine: the region is partitioned into grid-cell stripes with halo
// overlap of one radio range plus the index slack, a per-world worker
// pool (internal/shard) evaluates the read-only parts of broadcast
// reception resolution and of the GLR spanner precompute concurrently
// by stripe, and every mutation commits on the single event-loop
// goroutine in the exact order serial execution would have produced —
// so sharded results are byte-identical to serial, not merely
// statistically equivalent. WithParallelism sets the pool width (0 =
// automatic, GOMAXPROCS; the Runner divides the machine between its
// replication workers and each run's pool), and the engine escape
// hatches — sharding included — are consolidated behind WithEngine:
//
//	sc, err := glr.NewScenario(
//		glr.WithParallelism(4),                          // 4 shard workers
//		glr.WithEngine(glr.Engine{DisableSharding: true}), // bitwise-legacy serial
//	)
//
// Equivalence suites in internal/core and internal/sim compare sharded
// runs against serial across every Engine combination and shard counts
// 1/2/4/8 — including randomized mobile topologies whose traffic
// deliberately straddles stripe boundaries — under the race detector,
// asserting identical delivered-frame logs and identical end-to-end
// reports. docs/ARCHITECTURE.md documents the stripe/halo geometry and
// the determinism argument.
//
// The event core itself is a calendar queue (internal/des): events hash
// into day buckets by timestamp, dequeue scans the current year of
// buckets behind a cursor, and the bucket count and day width track the
// live population, so schedule/cancel/dispatch stay O(1) amortized
// where the reference binary heap pays O(log n) per operation at
// 10k–100k pending events (BenchmarkSchedulerCalendar vs
// BenchmarkSchedulerHeap, ~10⁶ resident events). Dispatch follows the
// exact (time, seq) total order both backends share, so calendar and
// heap runs are byte-identical, not merely statistically equivalent.
// Two more giant-world levers ride on it: beacons aggregate into one
// pending event per occupied grid cell (members fire in phase order
// under a ring cursor), collapsing the dominant event population, and
// above 2048 nodes the per-node tables switch from dense id-indexed
// arrays to compact slot-mapped rows (dtn.NewCompactNeighborTable) so
// table memory is O(neighborhood) per node instead of O(world).
// Engine.DisableCalendarQueue and Engine.DisableBeaconAggregation
// restore the reference heap and per-node tickers.
//
// The node-count scaling sweep (`glrexp -exp scale`) reports delivery,
// wall-clock, spanner-construction time (cached vs from-scratch),
// heap-allocation pressure (dense vs map-backed tables, via
// runtime.ReadMemStats), and serial-vs-sharded wall clock for
// 100..1000-node scenarios at the paper's density; at 1000 nodes the
// cached spanner path cuts construction ~3.6× and the dense state
// plane removes over half of all heap allocations. CI guards the hot
// paths with a benchmark-regression gate (cmd/benchgate): spanner +
// medium + table + beacon-tick + world-step benchmarks run five times
// with -benchmem, per-benchmark median ns/op is normalized by a
// calibration probe while B/op and allocs/op gate raw, and any >15%
// regression against the committed ci/bench_baseline.json fails the
// build.
package glr

import (
	"fmt"

	"glr/internal/core"
	"glr/internal/epidemic"
	"glr/internal/metrics"
	"glr/internal/sim"
)

// Protocol selects the routing protocol for a run.
type Protocol string

// Supported protocols.
const (
	// GLR is the paper's Geometric Localized Routing protocol.
	GLR Protocol = "glr"
	// Epidemic is the Vahdat–Becker benchmark.
	Epidemic Protocol = "epidemic"
)

// Config describes one simulation run on the original flat surface.
// Zero values fall back to the paper's Table-1 defaults; construct with
// DefaultConfig.
//
// Config predates the composable scenario API and remains supported as
// a thin adapter: Run(cfg) is exactly cfg.Scenario() + Scenario.Run and
// produces byte-identical results. New code should use NewScenario,
// which also reaches the mobility models, workloads, observers, and the
// parallel Runner that Config cannot express.
//
// Deprecated: use NewScenario with functional options; see
// docs/MIGRATION.md for the field-by-field mapping. Config stays
// supported (and byte-identical) for existing callers.
type Config struct {
	// Protocol to run (default GLR).
	Protocol Protocol
	// Nodes is the network size (paper: 50).
	Nodes int
	// Range is the transmission range in metres (paper: 50–250).
	Range float64
	// Width and Height set the deployment region (paper: 1500×300 m).
	Width, Height float64
	// Messages generated using the paper's traffic pattern (45 sources,
	// round-robin, 1 msg/s). Ignored when Traffic is set.
	Messages int
	// Traffic optionally supplies an explicit schedule: (src, dst, at).
	Traffic []Message
	// SimTime is the horizon in seconds (0 = long enough for Traffic).
	SimTime float64
	// StorageLimit bounds per-node message storage (0 = unlimited).
	StorageLimit int
	// MaxSpeed is the random-waypoint top speed in m/s (paper: 20).
	MaxSpeed float64
	// Static disables mobility (uniform static placement).
	Static bool
	// Seed makes the run reproducible.
	Seed int64

	// GLRConfig overrides the GLR protocol parameters (nil = paper
	// defaults). See package documentation for the knobs.
	GLRConfig *GLRConfig
	// EpidemicConfig overrides the epidemic baseline parameters.
	EpidemicConfig *EpidemicConfig
}

// Message is one scheduled message generation.
type Message struct {
	Src, Dst int
	At       float64
}

// GLRConfig exposes the protocol knobs of the paper's §2 mechanisms.
type GLRConfig struct {
	// CheckInterval is the store-and-forward route re-check period
	// (paper default 0.9 s; Figure 3 sweeps it).
	CheckInterval float64
	// Copies forces the number of message copies; 0 uses Algorithm 1
	// (network sparsity decides).
	Copies int
	// DisableCustody turns off custody transfer (§2.3.2; Table 3
	// measures the cost of running without it).
	DisableCustody bool
	// Location selects the Table-2 destination-knowledge regime:
	// "source" (default), "all", or "none".
	Location string
	// K is the LDTG neighborhood depth (paper: 2).
	K int
	// FullTableExchange enables the §2.3.1 extension: whole location
	// tables are exchanged when nodes meet (the paper describes but
	// disables this for overhead reasons).
	FullTableExchange bool
}

// EpidemicConfig exposes the baseline's anti-entropy knobs.
type EpidemicConfig struct {
	// ExchangeInterval rate-limits per-pair anti-entropy sessions.
	ExchangeInterval float64
	// DataSendRate paces per-node message transfers (msgs/s; 0 = line
	// rate).
	DataSendRate float64
	// BroadcastDeltas enables the broadcast-advertisement enhancement
	// (off = faithful Vahdat–Becker; see DESIGN.md).
	BroadcastDeltas bool
	// ActiveReceipts enables the delivery-receipt extension discussed in
	// the paper's introduction: anti-packets purge delivered messages
	// from buffers network-wide.
	ActiveReceipts bool
}

// DefaultConfig returns the paper's Table-1 scenario at the given
// transmission range, with a modest default workload.
func DefaultConfig(rangeMetres float64) Config {
	return Config{
		Protocol: GLR,
		Nodes:    50,
		Range:    rangeMetres,
		Width:    1500,
		Height:   300,
		Messages: 200,
		MaxSpeed: 20,
		Seed:     1,
	}
}

// Result digests one run.
type Result struct {
	Generated      int
	Delivered      int
	DeliveryRatio  float64
	AvgLatency     float64 // seconds
	AvgHops        float64
	MaxPeakStorage int
	AvgPeakStorage float64
	Duplicates     int
	ControlFrames  uint64
	DataFrames     uint64
	Acks           uint64
}

// String implements fmt.Stringer.
func (r Result) String() string {
	return fmt.Sprintf("delivered %d/%d (%.1f%%), latency %.2fs, hops %.2f, peak storage max %d avg %.1f",
		r.Delivered, r.Generated, 100*r.DeliveryRatio, r.AvgLatency, r.AvgHops,
		r.MaxPeakStorage, r.AvgPeakStorage)
}

// resultFromReport lowers the internal run digest onto the public type.
func resultFromReport(rep metrics.Report) Result {
	return Result{
		Generated:      rep.Generated,
		Delivered:      rep.Delivered,
		DeliveryRatio:  rep.DeliveryRatio,
		AvgLatency:     rep.AvgLatency,
		AvgHops:        rep.AvgHops,
		MaxPeakStorage: rep.MaxPeakStorage,
		AvgPeakStorage: rep.AvgPeakStorage,
		Duplicates:     rep.Duplicates,
		ControlFrames:  rep.ControlFrames,
		DataFrames:     rep.DataFrames,
		Acks:           rep.Acks,
	}
}

// Run executes one simulation and returns its metrics.
//
// Run is the original flat entry point, kept as a thin adapter over the
// scenario builder: it is exactly cfg.Scenario() followed by
// Scenario.Run, with byte-identical results. New code should use
// NewScenario.
//
// Deprecated: use NewScenario(...).Run(); see docs/MIGRATION.md.
func Run(cfg Config) (Result, error) {
	sc, err := cfg.Scenario()
	if err != nil {
		return Result{}, err
	}
	return sc.Run()
}

// Compare runs the same scenario under GLR and epidemic routing.
//
// Like Run, Compare is a thin adapter over the scenario builder; for
// multi-seed comparisons with confidence intervals and a worker pool,
// use Runner.Compare.
//
// Deprecated: use Runner.Compare, or two NewScenario runs differing
// only in WithGLR/WithEpidemic; see docs/MIGRATION.md.
func Compare(cfg Config) (glrRes, epidemicRes Result, err error) {
	cfg.Protocol = GLR
	glrRes, err = Run(cfg)
	if err != nil {
		return
	}
	cfg.Protocol = Epidemic
	epidemicRes, err = Run(cfg)
	return
}

// Validate reports a descriptive error for unusable configurations.
// Negative knobs are rejected rather than silently treated as unset.
func (cfg Config) Validate() error {
	switch {
	case cfg.Nodes < 0:
		return fmt.Errorf("glr: node count %d must be nonnegative", cfg.Nodes)
	case cfg.Range < 0:
		return fmt.Errorf("glr: range %v must be nonnegative", cfg.Range)
	case cfg.Width < 0 || cfg.Height < 0:
		// One dimension set without the other keeps the default region,
		// as the legacy path always did; only negatives are rejected.
		return fmt.Errorf("glr: region %vx%v must be nonnegative", cfg.Width, cfg.Height)
	case cfg.Messages < 0:
		return fmt.Errorf("glr: message count %d must be nonnegative", cfg.Messages)
	case cfg.SimTime < 0:
		return fmt.Errorf("glr: sim time %v must be nonnegative", cfg.SimTime)
	case cfg.StorageLimit < 0:
		return fmt.Errorf("glr: storage limit %d must be nonnegative", cfg.StorageLimit)
	case cfg.MaxSpeed < 0:
		return fmt.Errorf("glr: max speed %v must be nonnegative", cfg.MaxSpeed)
	}
	if err := cfg.GLRConfig.validate(); err != nil {
		return err
	}
	return cfg.EpidemicConfig.validate()
}

// validate rejects knob values outside their domain (nil is valid:
// paper defaults).
func (o *GLRConfig) validate() error {
	if o == nil {
		return nil
	}
	switch {
	case o.CheckInterval < 0:
		return fmt.Errorf("glr: check interval %v must be nonnegative", o.CheckInterval)
	case o.Copies < 0:
		return fmt.Errorf("glr: copy count %d must be nonnegative", o.Copies)
	case o.K < 0:
		return fmt.Errorf("glr: LDTG depth K %d must be nonnegative", o.K)
	}
	switch o.Location {
	case "", "source", "all", "none":
	default:
		return fmt.Errorf("glr: unknown location regime %q", o.Location)
	}
	return nil
}

// validate rejects knob values outside their domain (nil is valid:
// faithful Vahdat–Becker defaults).
func (o *EpidemicConfig) validate() error {
	if o == nil {
		return nil
	}
	switch {
	case o.ExchangeInterval < 0:
		return fmt.Errorf("glr: exchange interval %v must be nonnegative", o.ExchangeInterval)
	case o.DataSendRate < 0:
		return fmt.Errorf("glr: data send rate %v must be nonnegative", o.DataSendRate)
	}
	return nil
}

// Scenario translates the flat Config onto the scenario builder — the
// migration path from the legacy surface: Run(cfg) ≡ cfg.Scenario() +
// Scenario.Run. The translation preserves the legacy zero-value
// semantics exactly (0 = paper default everywhere).
func (cfg Config) Scenario() (*Scenario, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	opts := []Option{WithProtocol(cfg.Protocol), WithSeed(cfg.Seed)}
	if cfg.Nodes > 0 {
		opts = append(opts, WithNodes(cfg.Nodes))
	}
	if cfg.Range > 0 {
		opts = append(opts, WithRange(cfg.Range))
	}
	if cfg.Width > 0 && cfg.Height > 0 {
		opts = append(opts, WithRegion(cfg.Width, cfg.Height))
	}
	if cfg.SimTime > 0 {
		opts = append(opts, WithSimTime(cfg.SimTime))
	}
	if cfg.StorageLimit > 0 {
		opts = append(opts, WithStorageLimit(cfg.StorageLimit))
	}
	if cfg.Static {
		opts = append(opts, WithMobility(Static{}))
		if cfg.MaxSpeed > 0 {
			// The legacy path carried MaxSpeed into static scenarios,
			// where it only widens the radio index's staleness slack;
			// preserved for byte-identical adapter results.
			opts = append(opts, legacyMaxSpeed(cfg.MaxSpeed))
		}
	} else if cfg.MaxSpeed > 0 {
		opts = append(opts, WithMobility(Waypoint{MaxSpeed: cfg.MaxSpeed}))
	}
	if len(cfg.Traffic) > 0 {
		opts = append(opts, WithWorkload(ScheduleWorkload(cfg.Traffic)))
	} else {
		// Always the fixed 45-source pattern, never the adaptive
		// PaperWorkload: legacy configs on networks too small for it
		// must keep erroring exactly as they always did.
		opts = append(opts, WithWorkload(legacyPaperWorkload{messages: cfg.Messages}))
	}
	if cfg.GLRConfig != nil {
		opts = append(opts, WithGLR(*cfg.GLRConfig))
	}
	if cfg.EpidemicConfig != nil {
		opts = append(opts, WithEpidemic(*cfg.EpidemicConfig))
	}
	return NewScenario(opts...)
}

// buildFactory constructs the protocol factory shared by the scenario
// builder and the legacy Config adapter, validating every knob (invalid
// values error instead of passing through as "unset").
// disableSpannerCache threads Engine.DisableSpannerCache down to the GLR
// core (a no-op for the epidemic baseline, which builds no spanners).
func buildFactory(p Protocol, g *GLRConfig, e *EpidemicConfig, disableSpannerCache bool) (sim.ProtocolFactory, error) {
	// Both knob sets validate regardless of the selected protocol:
	// Runner.Compare runs the same scenario under either.
	if err := g.validate(); err != nil {
		return nil, err
	}
	if err := e.validate(); err != nil {
		return nil, err
	}
	switch p {
	case Epidemic:
		ec := epidemic.DefaultConfig()
		if o := e; o != nil {
			if o.ExchangeInterval > 0 {
				ec.ExchangeInterval = o.ExchangeInterval
			}
			if o.DataSendRate > 0 {
				ec.DataSendRate = o.DataSendRate
			}
			ec.BroadcastDeltas = o.BroadcastDeltas
			ec.ActiveReceipts = o.ActiveReceipts
		}
		return epidemic.New(ec)
	case GLR, "":
		gc := core.DefaultConfig()
		gc.DisableSpannerCache = disableSpannerCache
		if o := g; o != nil {
			if o.CheckInterval > 0 {
				gc.CheckInterval = o.CheckInterval
			}
			if o.Copies > 0 {
				gc.Copies = o.Copies
			}
			if o.K > 0 {
				gc.K = o.K
			}
			gc.Custody = !o.DisableCustody
			gc.FullTableExchange = o.FullTableExchange
			switch o.Location {
			case "", "source":
				gc.Location = core.LocSourceKnows
			case "all":
				gc.Location = core.LocAllKnow
			case "none":
				gc.Location = core.LocNoneKnow
			default:
				return nil, fmt.Errorf("glr: unknown location regime %q", o.Location)
			}
		}
		return core.New(gc)
	default:
		return nil, fmt.Errorf("glr: unknown protocol %q", p)
	}
}
