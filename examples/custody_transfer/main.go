// Custody transfer walkthrough (§2.3.2, Table 3): GLR keeps every sent
// message in a Cache until the next hop acknowledges custody; on timeout
// the message returns to the Store for rescheduling. This example runs
// the same lossy sparse scenario with custody on and off and shows the
// delivery-ratio gap.
//
//	go run ./examples/custody_transfer
package main

import (
	"fmt"
	"log"

	"glr"
)

func main() {
	run := func(disable bool) glr.Result {
		sc, err := glr.NewScenario(
			glr.WithRange(50), // sparse: transfers fail often
			glr.WithWorkload(glr.PaperWorkload{Messages: 300}),
			glr.WithSimTime(1200), // the paper's Table-3 horizon
			glr.WithSeed(11),
			glr.WithGLR(glr.GLRConfig{DisableCustody: disable}),
		)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sc.Run()
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	with := run(false)
	without := run(true)

	fmt.Println("GLR on a 50 m sparse strip, 300 messages, 1200 s horizon:")
	fmt.Printf("  with custody transfer:    %v\n", with)
	fmt.Printf("    (%d custody acks exchanged)\n", with.Acks)
	fmt.Printf("  without custody transfer: %v\n", without)
	fmt.Printf("    (fire-and-forget: %d acks)\n", without.Acks)
	fmt.Println()
	fmt.Printf("Custody lifts delivery from %.1f%% to %.1f%% — the paper reports 84.7%% -> 97.9%%.\n",
		100*without.DeliveryRatio, 100*with.DeliveryRatio)
	fmt.Println("Without acknowledgments, any copy lost to collisions, queue overflow or a")
	fmt.Println("receiver that moved away mid-transfer is simply gone.")
}
