// Face routing on the planar LDTG spanner (§2.1/§2.3): greedy geographic
// forwarding gets stuck at local minima ("voids"); the planar localized
// Delaunay graph lets the packet escape by walking faces with the
// right-hand rule. This example builds a static topology, shows the
// spanner structure, traces one greedy+face (GFG) walk hop by hop, and
// then replays the exact same topology through the public API — Trace
// mobility with one-waypoint trajectories pins every node in place — to
// confirm the full protocol stack delivers over it.
//
//	go run ./examples/face_routing
package main

import (
	"fmt"
	"log"
	"math/rand"

	"glr"
	"glr/internal/asciiplot"
	"glr/internal/geom"
	"glr/internal/ldt"
)

func main() {
	const (
		n      = 45
		radius = 270.0
		w, h   = 1000.0, 1000.0
	)
	// Find a seed whose unit-disk graph is connected so the walk must
	// succeed.
	var pts []geom.Point
	for seed := int64(1); ; seed++ {
		rng := rand.New(rand.NewSource(seed))
		pts = make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*w, rng.Float64()*h)
		}
		if geom.UnitDiskGraph(pts, radius).Connected() {
			fmt.Printf("Connected topology found (seed %d)\n\n", seed)
			break
		}
	}

	udg := geom.UnitDiskGraph(pts, radius)
	spanner, err := ldt.BuildLDTG(pts, radius, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Unit-disk graph: %d edges. 2-LDTG planar spanner: %d edges (planar: %v)\n",
		udg.EdgeCount(), spanner.EdgeCount(), spanner.IsPlanarEmbedding(pts))

	pp := make([][2]float64, n)
	for i, p := range pts {
		pp[i] = [2]float64{p.X, p.Y}
	}
	fmt.Print(asciiplot.Scatter{
		Title:  "2-LDTG planar spanner",
		W:      w,
		H:      h,
		Points: pp,
		Edges:  spanner.Edges(),
	}.Render())

	// Trace a GFG walk between the two most distant nodes.
	src, dst := mostDistantPair(pts)
	fmt.Printf("\nGFG walk from node %d %v to node %d %v:\n", src, pts[src], dst, pts[dst])
	cur := src
	var st ldt.FaceState
	for step := 0; cur != dst && step < 200; step++ {
		nbrs := spanner.Neighbors(cur)
		nbrPts := make([]geom.Point, len(nbrs))
		for j, nb := range nbrs {
			nbrPts[j] = pts[nb]
		}
		if !st.Active {
			if gi := ldt.GreedyNeighbor(pts[cur], nbrPts, pts[dst]); gi >= 0 {
				fmt.Printf("  greedy: %3d -> %3d  (%.0f m to go)\n",
					cur, nbrs[gi], pts[nbrs[gi]].Dist(pts[dst]))
				cur = nbrs[gi]
				continue
			}
			fmt.Printf("  LOCAL MINIMUM at %d — entering face mode\n", cur)
		}
		next, dec := st.Step(cur, pts[cur], nbrs, nbrPts, pts[dst])
		switch dec {
		case ldt.FaceForward:
			fmt.Printf("  face:   %3d -> %3d\n", cur, nbrs[next])
			cur = nbrs[next]
		case ldt.FaceExitGreedy:
			fmt.Printf("  face exit at %d — closer than entry, resuming greedy\n", cur)
		case ldt.FaceFail:
			log.Fatalf("face routing failed on a connected planar graph — this is a bug")
		}
	}
	if cur == dst {
		fmt.Println("Delivered.")
	} else {
		fmt.Println("Walk exceeded step budget.")
	}

	// Now the same topology under the full stack: Trace mobility with a
	// single waypoint per node pins the exact positions above, and an
	// explicit schedule sends one message over the walk's src→dst pair.
	paths := make([][]glr.TracePoint, n)
	for i, p := range pts {
		paths[i] = []glr.TracePoint{{T: 0, X: p.X, Y: p.Y}}
	}
	sc, err := glr.NewScenario(
		glr.WithRange(radius),
		glr.WithRegion(w, h),
		glr.WithMobility(glr.Trace{Paths: paths}),
		glr.WithWorkload(glr.ScheduleWorkload{{Src: src, Dst: dst, At: 5}}),
		glr.WithSimTime(120),
		glr.WithObserver(&glr.Observer{
			OnDelivered: func(e glr.DeliveryEvent) {
				if e.Duplicate {
					return // Algorithm 1 may send several copies; report the first
				}
				fmt.Printf("\nFull stack on the pinned topology: message %d/%d delivered to %d after %.2fs over %d hops.\n",
					e.Src, e.Seq, e.Dst, e.Latency(), e.Hops)
			},
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sc.Run()
	if err != nil {
		log.Fatal(err)
	}
	if res.Delivered == 0 {
		fmt.Println("\nFull stack did not deliver within the horizon (MAC losses can do that).")
	}
}

func mostDistantPair(pts []geom.Point) (int, int) {
	bi, bj, best := 0, 1, 0.0
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if d := pts[i].Dist2(pts[j]); d > best {
				bi, bj, best = i, j, d
			}
		}
	}
	return bi, bj
}
