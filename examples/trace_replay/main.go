// Trace replay: scripted trajectories instead of a synthetic mobility
// model. Three "buses" shuttle along fixed routes between four corner
// "stations" of a 1200×1200 m campus that is far too sparse for any
// contemporaneous path — every delivery must be carried. The observer
// API streams a per-30 s time series of the run (delivery, latency,
// buffer occupancy, control overhead), which is how scenario-dependent
// DTN behaviour is meant to be studied: watch the buffers drain each
// time a bus docks at a station.
//
//	go run ./examples/trace_replay
package main

import (
	"fmt"
	"log"

	"glr"
)

const (
	side   = 1200.0
	period = 240.0 // one bus round trip, seconds
)

// stationPos returns the four corner stations' positions.
func stationPos(i int) (x, y float64) {
	m := 80.0
	switch i {
	case 0:
		return m, m
	case 1:
		return side - m, m
	case 2:
		return side - m, side - m
	default:
		return m, side - m
	}
}

// busLoop scripts one bus cycling the four stations, offset so the
// buses are spread around the loop. Each leg takes period/4 seconds;
// the trace covers the whole horizon.
func busLoop(offset int, horizon float64) []glr.TracePoint {
	var pts []glr.TracePoint
	leg := period / 4
	for k := 0; ; k++ {
		t := float64(k) * leg
		x, y := stationPos((k + offset) % 4)
		pts = append(pts, glr.TracePoint{T: t, X: x, Y: y})
		if t > horizon {
			return pts
		}
	}
}

func main() {
	const horizon = 600.0

	// Nodes 0..3 are the pinned stations, 4..6 the buses.
	paths := make([][]glr.TracePoint, 7)
	for i := 0; i < 4; i++ {
		x, y := stationPos(i)
		paths[i] = []glr.TracePoint{{T: 0, X: x, Y: y}}
	}
	for b := 0; b < 3; b++ {
		paths[4+b] = busLoop(b, horizon)
	}

	// Stations exchange messages pairwise; only buses can carry them.
	var schedule glr.ScheduleWorkload
	at := 10.0
	for src := 0; src < 4; src++ {
		for dst := 0; dst < 4; dst++ {
			if src == dst {
				continue
			}
			schedule = append(schedule, glr.Message{Src: src, Dst: dst, At: at})
			at += 25
		}
	}

	fmt.Printf("Trace replay: 4 stations, 3 buses on a %gx%g m campus, %d messages, %.0f s.\n",
		side, side, len(schedule), horizon)
	fmt.Println("time series (sampled every 30 s):")
	fmt.Println()

	sc, err := glr.NewScenario(
		glr.WithRange(150), // docking range: stations only reach a stopped bus
		glr.WithRegion(side, side),
		glr.WithMobility(glr.Trace{Paths: paths}),
		glr.WithWorkload(schedule),
		glr.WithSimTime(horizon),
		glr.WithGLR(glr.GLRConfig{Location: "all"}), // stations know each other
		glr.WithObserver(&glr.Observer{
			SampleEvery: 30,
			OnSample: func(s glr.Sample) {
				bar := ""
				for i := 0; i < s.BufferTotal && i < 40; i++ {
					bar += "#"
				}
				fmt.Printf("  t=%5.0fs  sent %2d  delivered %2d (%.0f%%)  latency %5.1fs  in transit %-2d %s\n",
					s.Time, s.Generated, s.Delivered, 100*s.DeliveryRatio,
					s.AvgLatency, s.BufferTotal, bar)
			},
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sc.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Printf("final: %v\n", res)
	fmt.Println()
	fmt.Println("The sawtooth \"in transit\" column is the DTN story: messages queue at a")
	fmt.Println("station until a bus docks, ride the loop, and drain at the destination —")
	fmt.Println("store, carry, forward.")
}
