// Location diffusion (§2.3.1, Table 2): geographic routing needs the
// destination's coordinates, but in a DTN the destination drifts far from
// where it was when the message was created. This example runs the three
// knowledge regimes of Table 2 — every node knows, only the source knows
// (diffusion refines en route), and nobody knows (a random guess that
// only diffusion and the stale-location remedy can fix).
//
//	go run ./examples/location_diffusion
package main

import (
	"fmt"
	"log"

	"glr"
)

func main() {
	regimes := []struct {
		location string
		copies   int
		label    string
	}{
		{"all", 1, "all nodes always know the true location (oracle)"},
		{"source", 3, "only the source stamps it; relays diffuse updates"},
		{"none", 3, "nobody knows: random initial guess + diffusion"},
	}

	fmt.Println("Destination-location knowledge vs delivery (100 m, 300 msgs):")
	for _, reg := range regimes {
		sc, err := glr.NewScenario(
			glr.WithRange(100),
			glr.WithWorkload(glr.PaperWorkload{Messages: 300}),
			glr.WithSeed(3),
			glr.WithGLR(glr.GLRConfig{Location: reg.location, Copies: reg.copies}),
		)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sc.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-55s -> %.1f%% delivered, %.1fs latency, %.1f hops\n",
			reg.label, 100*res.DeliveryRatio, res.AvgLatency, res.AvgHops)
	}
	fmt.Println()
	fmt.Println("The paper's Table 2 shows the same ordering: oracle knowledge is fastest;")
	fmt.Println("source-only knowledge costs latency and hops; no knowledge costs the most")
	fmt.Println("(and a few messages miss the horizon entirely).")
}
