// Quickstart: run one GLR scenario at the paper's defaults and print the
// delivery metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"glr"
)

func main() {
	// A 100 m radius on the paper's 1500×300 m strip: below the
	// connectivity threshold (~133 m), so Algorithm 1 sends three copies
	// of every message along the Max/Min/Mid distance-to-destination
	// trees.
	cfg := glr.DefaultConfig(100)
	cfg.Messages = 200 // paper traffic pattern: 45 sources, 1 msg/s
	cfg.Seed = 42

	res, err := glr.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("GLR on a sparse DTN strip (100 m radius):")
	fmt.Printf("  %v\n", res)
	fmt.Printf("  control frames: %d, data frames: %d, custody acks: %d\n",
		res.ControlFrames, res.DataFrames, res.Acks)

	// The same workload under the epidemic baseline: same deliveries,
	// but every node ends up holding every message.
	cfg.Protocol = glr.Epidemic
	base, err := glr.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Epidemic baseline on the identical workload:")
	fmt.Printf("  %v\n", base)
	fmt.Printf("\nStorage advantage: GLR peaks at %d messages/node vs epidemic's %d.\n",
		res.MaxPeakStorage, base.MaxPeakStorage)
}
