// Quickstart: describe one GLR scenario with the composable builder,
// run it, and compare against the epidemic baseline on the identical
// workload.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"glr"
)

func main() {
	// A 100 m radius on the paper's 1500×300 m strip: below the
	// connectivity threshold (~133 m), so Algorithm 1 sends three copies
	// of every message along the Max/Min/Mid distance-to-destination
	// trees. Omitted options take the paper's Table-1 defaults.
	opts := []glr.Option{
		glr.WithRange(100),
		glr.WithWorkload(glr.PaperWorkload{Messages: 200}), // 45 sources, 1 msg/s
		glr.WithSeed(42),
	}
	sc, err := glr.NewScenario(opts...)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sc.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("GLR on a sparse DTN strip (100 m radius):")
	fmt.Printf("  %v\n", res)
	fmt.Printf("  control frames: %d, data frames: %d, custody acks: %d\n",
		res.ControlFrames, res.DataFrames, res.Acks)

	// The same workload under the epidemic baseline — the scenario
	// recomposes with one extra option: same deliveries, but every node
	// ends up holding every message. (For multi-seed comparisons with
	// confidence intervals, see glr.Runner and examples/sparse_comparison.)
	epi, err := glr.NewScenario(append(opts, glr.WithProtocol(glr.Epidemic))...)
	if err != nil {
		log.Fatal(err)
	}
	base, err := epi.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Epidemic baseline on the identical workload:")
	fmt.Printf("  %v\n", base)
	fmt.Printf("\nStorage advantage: GLR peaks at %d messages/node vs epidemic's %d.\n",
		res.MaxPeakStorage, base.MaxPeakStorage)
}
