// Sparse-network comparison: the paper's motivating scenario — a heavily
// partitioned 50 m-radius strip where contemporaneous source→destination
// paths almost never exist — run under GLR and epidemic routing, with and
// without per-node storage limits (the Figure 4 / Figure 7 story), as a
// multi-seed Runner sweep with mean ± 90% confidence intervals.
//
//	go run ./examples/sparse_comparison
package main

import (
	"context"
	"fmt"
	"log"

	"glr"
)

func main() {
	fmt.Println("50 m radius, 1500×300 m strip, 50 nodes, random waypoint 0-20 m/s")
	fmt.Println("(the unit-disk graph is shattered: ~0.9 neighbors per node on average)")
	fmt.Println()

	const seeds = 3
	var runner glr.Runner // zero value: all CPUs, 90% confidence

	sweep := func(storage int) glr.Comparison {
		opts := []glr.Option{
			glr.WithRange(50),
			glr.WithWorkload(glr.PaperWorkload{Messages: 300}),
			glr.WithSeed(7),
		}
		if storage > 0 {
			opts = append(opts, glr.WithStorageLimit(storage))
		}
		sc, err := glr.NewScenario(opts...)
		if err != nil {
			log.Fatal(err)
		}
		cmp, err := runner.Compare(context.Background(), sc, seeds)
		if err != nil {
			log.Fatal(err)
		}
		return cmp
	}

	// Unlimited storage: both deliver via store-carry-forward; epidemic
	// buys its delivery ratio with full replication.
	free := sweep(0)
	fmt.Printf("Unlimited storage (%d seeds):\n", seeds)
	fmt.Printf("  GLR:      delivery %v, peak storage %v msgs/node\n",
		free.GLR.DeliveryRatio, free.GLR.AvgPeakStorage)
	fmt.Printf("  Epidemic: delivery %v, peak storage %v msgs/node\n",
		free.Epidemic.DeliveryRatio, free.Epidemic.AvgPeakStorage)
	fmt.Println()

	// Tight storage (20 messages/node): epidemic's FIFO buffers thrash
	// and its delivery ratio collapses; GLR's controlled flooding keeps
	// only a handful of copies in flight and barely notices.
	tight := sweep(20)
	fmt.Printf("Storage limited to 20 messages/node (%d seeds):\n", seeds)
	fmt.Printf("  GLR:      delivery %v, peak storage %v msgs/node\n",
		tight.GLR.DeliveryRatio, tight.GLR.AvgPeakStorage)
	fmt.Printf("  Epidemic: delivery %v, peak storage %v msgs/node\n",
		tight.Epidemic.DeliveryRatio, tight.Epidemic.AvgPeakStorage)
	fmt.Println()
	fmt.Printf("Delivery drop under pressure: GLR %.1f%% -> %.1f%%, epidemic %.1f%% -> %.1f%%\n",
		100*free.GLR.DeliveryRatio.Mean, 100*tight.GLR.DeliveryRatio.Mean,
		100*free.Epidemic.DeliveryRatio.Mean, 100*tight.Epidemic.DeliveryRatio.Mean)
}
