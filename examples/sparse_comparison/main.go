// Sparse-network comparison: the paper's motivating scenario — a heavily
// partitioned 50 m-radius strip where contemporaneous source→destination
// paths almost never exist — run under GLR and epidemic routing, with and
// without per-node storage limits (the Figure 4 / Figure 7 story).
//
//	go run ./examples/sparse_comparison
package main

import (
	"fmt"
	"log"

	"glr"
)

func main() {
	fmt.Println("50 m radius, 1500×300 m strip, 50 nodes, random waypoint 0-20 m/s")
	fmt.Println("(the unit-disk graph is shattered: ~0.9 neighbors per node on average)")
	fmt.Println()

	// Unlimited storage: both deliver via store-carry-forward; epidemic
	// buys its delivery ratio with full replication.
	cfg := glr.DefaultConfig(50)
	cfg.Messages = 300
	cfg.Seed = 7
	mine, base, err := glr.Compare(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Unlimited storage:")
	fmt.Printf("  GLR:      %v\n", mine)
	fmt.Printf("  Epidemic: %v\n", base)
	fmt.Println()

	// Tight storage (20 messages/node): epidemic's FIFO buffers thrash
	// and its delivery ratio collapses; GLR's controlled flooding keeps
	// only a handful of copies in flight and barely notices.
	cfg.StorageLimit = 20
	mineLtd, baseLtd, err := glr.Compare(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Storage limited to 20 messages/node:")
	fmt.Printf("  GLR:      %v\n", mineLtd)
	fmt.Printf("  Epidemic: %v\n", baseLtd)
	fmt.Println()
	fmt.Printf("Delivery-ratio drop under pressure: GLR %.1f%% -> %.1f%%, epidemic %.1f%% -> %.1f%%\n",
		100*mine.DeliveryRatio, 100*mineLtd.DeliveryRatio,
		100*base.DeliveryRatio, 100*baseLtd.DeliveryRatio)
}
