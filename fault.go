package glr

import (
	"fmt"
	"strconv"
	"strings"

	"glr/internal/fault"
)

// FaultKind names one of the built-in disruption models a Fault can
// declare. Like MobilityKind and WorkloadKind, a kind is a canonical
// string so fault sets serialize deterministically and can ride through
// scenario matrices and content-addressed result caches.
type FaultKind string

// The disruption models WithFaults can inject.
const (
	// FaultLinkBlackout severs random links: in every epoch of length
	// Period seconds, each unordered node pair is independently blacked
	// out with probability Rate (frames between the pair are lost).
	FaultLinkBlackout FaultKind = FaultKind(fault.LinkBlackout)
	// FaultRegionBlackout jams a rectangle for a scheduled window:
	// frames with either endpoint inside the rectangle are lost while
	// Start ≤ t < End.
	FaultRegionBlackout FaultKind = FaultKind(fault.RegionBlackout)
	// FaultChurn crashes nodes and restarts them with full state loss:
	// each node fails as a Poisson process of Rate crashes per second
	// and stays down for Duration seconds per outage.
	FaultChurn FaultKind = FaultKind(fault.Churn)
	// FaultGPSNoise perturbs the position every node advertises in its
	// beacons by independent Gaussian error with standard deviation
	// Sigma meters per axis.
	FaultGPSNoise FaultKind = FaultKind(fault.GPSNoise)
	// FaultByzantine marks a Fraction of nodes adversarial: they
	// advertise lying positions and silently drop every protocol frame
	// handed to them, losing custody without acknowledgment.
	FaultByzantine FaultKind = FaultKind(fault.Byzantine)
)

// Fault declares one disruption model for WithFaults. It is flat plain
// data — comparable and canonically serializable via EncodeFaults — so
// fault sets can become a Matrix axis. Fields not used by a Kind must
// stay zero; Validate (run at scenario construction) rejects anything
// else, along with negative rates and durations, probabilities outside
// [0,1], and blackout rectangles outside the deployment region.
type Fault struct {
	// Kind selects the disruption model.
	Kind FaultKind
	// Rate is the per-epoch link-blackout probability
	// (FaultLinkBlackout, in [0,1]) or the per-node crash rate in
	// crashes per second (FaultChurn).
	Rate float64 `json:",omitempty"`
	// Period is the FaultLinkBlackout epoch length in seconds
	// (default 10).
	Period float64 `json:",omitempty"`
	// Duration is the FaultChurn per-outage downtime in seconds.
	Duration float64 `json:",omitempty"`
	// Start bounds the FaultRegionBlackout window from below.
	Start float64 `json:",omitempty"`
	// End bounds the FaultRegionBlackout window from above
	// (the window is [Start, End)).
	End float64 `json:",omitempty"`
	// X is the FaultRegionBlackout rectangle's left edge in meters.
	X float64 `json:",omitempty"`
	// Y is the FaultRegionBlackout rectangle's bottom edge in meters.
	Y float64 `json:",omitempty"`
	// W is the FaultRegionBlackout rectangle's width in meters.
	W float64 `json:",omitempty"`
	// H is the FaultRegionBlackout rectangle's height in meters.
	H float64 `json:",omitempty"`
	// Sigma is the FaultGPSNoise per-axis standard deviation in meters.
	Sigma float64 `json:",omitempty"`
	// Fraction is the FaultByzantine share of nodes, in [0,1].
	Fraction float64 `json:",omitempty"`
}

// spec lowers the public fault onto the internal model.
func (f Fault) spec() fault.Spec {
	return fault.Spec{
		Kind:     fault.Kind(f.Kind),
		Rate:     f.Rate,
		Period:   f.Period,
		Duration: f.Duration,
		Start:    f.Start,
		End:      f.End,
		X:        f.X,
		Y:        f.Y,
		W:        f.W,
		H:        f.H,
		Sigma:    f.Sigma,
		Fraction: f.Fraction,
	}
}

// WithFaults injects disruption models into the scenario's runs. Faults
// compose: several models (and several instances of one model) apply
// simultaneously. The compiled fault schedule is a pure function of the
// fault set and the run seed — identical seeds replay identical
// schedules, independent of Engine escape hatches and parallelism — and
// an empty fault set leaves the run byte-identical to one built without
// this option. Malformed faults are rejected at NewScenario.
func WithFaults(faults ...Fault) Option {
	return func(s *Scenario) error {
		s.faults = append(s.faults, faults...)
		return nil
	}
}

// faultFields lists, per kind, the encodable fields in canonical order:
// their slugs and accessors for EncodeFaults/ParseFaults.
var faultFields = map[FaultKind][]struct {
	key string
	get func(*Fault) *float64
}{
	FaultLinkBlackout: {
		{"rate", func(f *Fault) *float64 { return &f.Rate }},
		{"period", func(f *Fault) *float64 { return &f.Period }},
	},
	FaultRegionBlackout: {
		{"x", func(f *Fault) *float64 { return &f.X }},
		{"y", func(f *Fault) *float64 { return &f.Y }},
		{"w", func(f *Fault) *float64 { return &f.W }},
		{"h", func(f *Fault) *float64 { return &f.H }},
		{"start", func(f *Fault) *float64 { return &f.Start }},
		{"end", func(f *Fault) *float64 { return &f.End }},
	},
	FaultChurn: {
		{"rate", func(f *Fault) *float64 { return &f.Rate }},
		{"dur", func(f *Fault) *float64 { return &f.Duration }},
	},
	FaultGPSNoise: {
		{"sigma", func(f *Fault) *float64 { return &f.Sigma }},
	},
	FaultByzantine: {
		{"frac", func(f *Fault) *float64 { return &f.Fraction }},
	},
}

// EncodeFaults renders a fault set as its canonical slug — e.g.
// "churn(rate=0.002,dur=30)+gps-noise(sigma=25)" — with models joined
// by "+", fields in a fixed per-kind order, and zero fields omitted.
// The encoding is what Matrix uses as the fault-axis value and what
// cache keys and cell labels embed; ParseFaults inverts it. An empty
// set encodes as "".
func EncodeFaults(faults []Fault) string {
	parts := make([]string, 0, len(faults))
	for i := range faults {
		f := faults[i]
		var kv []string
		for _, fld := range faultFields[f.Kind] {
			if v := *fld.get(&f); v != 0 {
				kv = append(kv, fld.key+"="+strconv.FormatFloat(v, 'g', -1, 64))
			}
		}
		part := string(f.Kind)
		if len(kv) > 0 {
			part += "(" + strings.Join(kv, ",") + ")"
		}
		parts = append(parts, part)
	}
	return strings.Join(parts, "+")
}

// ParseFaults parses the slug format EncodeFaults renders back into a
// fault set. "" parses to nil (fault-free). Unknown kinds and field
// keys are errors; range validation happens later, at scenario
// construction.
func ParseFaults(s string) ([]Fault, error) {
	if s == "" {
		return nil, nil
	}
	var out []Fault
	for _, part := range strings.Split(s, "+") {
		kind := part
		args := ""
		if i := strings.IndexByte(part, '('); i >= 0 {
			if !strings.HasSuffix(part, ")") {
				return nil, fmt.Errorf("glr: fault %q: unterminated argument list", part)
			}
			kind, args = part[:i], part[i+1:len(part)-1]
		}
		fields, ok := faultFields[FaultKind(kind)]
		if !ok {
			return nil, fmt.Errorf("glr: unknown fault kind %q", kind)
		}
		f := Fault{Kind: FaultKind(kind)}
		if args != "" {
			for _, kv := range strings.Split(args, ",") {
				key, val, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, fmt.Errorf("glr: fault %q: argument %q is not key=value", part, kv)
				}
				var dst *float64
				for _, fld := range fields {
					if fld.key == key {
						dst = fld.get(&f)
						break
					}
				}
				if dst == nil {
					return nil, fmt.Errorf("glr: fault %q: unknown field %q for kind %q", part, key, kind)
				}
				v, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return nil, fmt.Errorf("glr: fault %q: field %q: %v", part, key, err)
				}
				*dst = v
			}
		}
		out = append(out, f)
	}
	return out, nil
}
