package glr

import (
	"fmt"
	"math/rand"
	"testing"

	"glr/internal/metrics"
	"glr/internal/sim"
)

// legacyScenario is the pre-builder Config-to-sim translation, kept
// verbatim as the reference the golden equivalence test compares the
// builder path against. It lives in the test so it cannot leak into
// production use.
func (cfg Config) legacyScenario() (sim.Scenario, error) {
	rangeM := cfg.Range
	if rangeM == 0 {
		rangeM = 100
	}
	s := sim.DefaultScenario(rangeM)
	if cfg.Nodes > 0 {
		s.N = cfg.Nodes
	}
	if cfg.Width > 0 && cfg.Height > 0 {
		s.Region.W, s.Region.H = cfg.Width, cfg.Height
	}
	if cfg.MaxSpeed > 0 {
		s.MaxSpeed = cfg.MaxSpeed
	}
	if cfg.Static {
		s.Mobility = sim.MobilityStatic
	}
	s.StorageLimit = cfg.StorageLimit
	s.Seed = cfg.Seed
	if len(cfg.Traffic) > 0 {
		for _, m := range cfg.Traffic {
			s.Traffic = append(s.Traffic, sim.TrafficItem{Src: m.Src, Dst: m.Dst, At: m.At})
		}
	} else {
		msgs := cfg.Messages
		if msgs <= 0 {
			msgs = 200
		}
		s.Traffic = sim.PaperTraffic(msgs)
	}
	if cfg.SimTime > 0 {
		s.SimTime = cfg.SimTime
	} else {
		last := 0.0
		for _, ti := range s.Traffic {
			if ti.At > last {
				last = ti.At
			}
		}
		s.SimTime = last + 600
	}
	return s, s.Validate()
}

// legacyRun executes cfg through the pre-builder reference path —
// Config.legacyScenario + buildFactory + sim directly — bypassing the
// scenario builder entirely.
func legacyRun(t *testing.T, cfg Config) metrics.Report {
	t.Helper()
	scn, err := cfg.legacyScenario()
	if err != nil {
		t.Fatalf("legacy scenario: %v", err)
	}
	factory, err := buildFactory(cfg.Protocol, cfg.GLRConfig, cfg.EpidemicConfig, false)
	if err != nil {
		t.Fatalf("legacy factory: %v", err)
	}
	w, err := sim.NewWorld(scn, factory)
	if err != nil {
		t.Fatalf("legacy world: %v", err)
	}
	return w.Run()
}

// builderRun executes cfg through the public adapter: Config.Scenario
// and the scenario builder's compile/run path.
func builderRun(t *testing.T, cfg Config) metrics.Report {
	t.Helper()
	sc, err := cfg.Scenario()
	if err != nil {
		t.Fatalf("builder scenario: %v", err)
	}
	rep, err := sc.runSeed(t.Context(), sc.seed, true)
	if err != nil {
		t.Fatalf("builder run: %v", err)
	}
	return rep
}

// randomConfig draws a small but structurally varied legacy Config.
func randomConfig(rng *rand.Rand) Config {
	// The paper workload schedules 45 distinct sources, so node counts
	// stay at or above the paper's 50.
	cfg := Config{
		Protocol: GLR,
		Nodes:    50 + rng.Intn(10),
		Range:    120 + rng.Float64()*130,
		Messages: 8 + rng.Intn(15),
		SimTime:  100 + rng.Float64()*60,
		Seed:     rng.Int63n(1 << 30),
	}
	switch rng.Intn(3) {
	case 0:
		cfg.Width, cfg.Height = 800+rng.Float64()*700, 250+rng.Float64()*250
	case 1:
		cfg.Width = 900 // Height unset: legacy keeps the default region
	}
	switch rng.Intn(3) {
	case 0:
		cfg.Static = true
		if rng.Intn(2) == 0 {
			cfg.MaxSpeed = 5 + rng.Float64()*25 // exercises the index-slack quirk
		}
	case 1:
		cfg.MaxSpeed = 5 + rng.Float64()*25
	}
	if rng.Intn(3) == 0 {
		cfg.StorageLimit = 3 + rng.Intn(10)
	}
	if rng.Intn(3) == 0 {
		cfg.Traffic = randomTraffic(rng, cfg.Nodes, cfg.SimTime)
	}
	switch rng.Intn(3) {
	case 0:
		cfg.GLRConfig = &GLRConfig{
			CheckInterval:  0.5 + rng.Float64(),
			Copies:         rng.Intn(4),
			DisableCustody: rng.Intn(2) == 0,
			Location:       []string{"", "source", "all", "none"}[rng.Intn(4)],
		}
	case 1:
		cfg.Protocol = Epidemic
		cfg.EpidemicConfig = &EpidemicConfig{
			ExchangeInterval: rng.Float64() * 3,
			DataSendRate:     float64(rng.Intn(3)) * 5,
			BroadcastDeltas:  rng.Intn(2) == 0,
		}
	}
	return cfg
}

func randomTraffic(rng *rand.Rand, n int, simTime float64) []Message {
	msgs := make([]Message, 5+rng.Intn(10))
	for i := range msgs {
		src := rng.Intn(n)
		dst := rng.Intn(n - 1)
		if dst >= src {
			dst++
		}
		msgs[i] = Message{Src: src, Dst: dst, At: rng.Float64() * simTime / 2}
	}
	return msgs
}

// TestGoldenBuilderEquivalence is the golden equivalence test of the
// API redesign: across randomized legacy Configs, the scenario-builder
// path must reproduce the legacy path's metrics.Report byte for byte —
// including the observer-attached variant (observation is side-effect
// free).
func TestGoldenBuilderEquivalence(t *testing.T) {
	cases := 10
	if testing.Short() {
		cases = 4
	}
	rng := rand.New(rand.NewSource(20260729))
	for i := 0; i < cases; i++ {
		cfg := randomConfig(rng)
		t.Run(fmt.Sprintf("case%d", i), func(t *testing.T) {
			legacy := legacyRun(t, cfg)
			built := builderRun(t, cfg)
			if legacy != built {
				t.Errorf("builder diverged from legacy path\nconfig: %+v\nlegacy: %+v\nbuilt:  %+v", cfg, legacy, built)
			}
		})
	}
}

// TestLegacySmallNetworkStillErrors pins the adapter's error
// compatibility: a legacy Config whose network cannot host the fixed
// 45-source paper pattern must keep failing, even though the builder's
// adaptive PaperWorkload would accept it.
func TestLegacySmallNetworkStillErrors(t *testing.T) {
	cfg := DefaultConfig(100)
	cfg.Nodes = 30
	cfg.Messages = 50
	if _, err := Run(cfg); err == nil {
		t.Error("legacy 30-node paper-workload config now runs; it must keep erroring")
	}
	// The builder path accepts the same shape by design.
	if _, err := NewScenario(WithNodes(30), WithWorkload(PaperWorkload{Messages: 50})); err != nil {
		t.Errorf("builder path rejected the adaptive paper workload: %v", err)
	}
}

// TestGoldenRunAdapter pins the public adapters: Run(cfg) and the
// builder's Scenario.Run must agree exactly with the legacy reference.
func TestGoldenRunAdapter(t *testing.T) {
	cfg := DefaultConfig(200)
	cfg.Messages = 15
	cfg.SimTime = 150
	want := resultFromReport(legacyRun(t, cfg))
	got, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("Run diverged from legacy reference: %+v vs %+v", got, want)
	}
	sc, err := cfg.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res != want {
		t.Errorf("Scenario.Run diverged from legacy reference: %+v vs %+v", res, want)
	}
}
