package glr

import (
	"context"
	"reflect"
	"runtime"
	"testing"
	"time"
)

func testScenario(t *testing.T, opts ...Option) *Scenario {
	t.Helper()
	base := []Option{
		WithNodes(30),
		WithRange(200),
		WithWorkload(UniformWorkload{Messages: 12, Rate: 1}),
		WithSimTime(140),
		WithSeed(7),
	}
	sc, err := NewScenario(append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestRunnerParallelMatchesSequential is the redesign's determinism
// guarantee: a Runner with a full worker pool must return exactly what
// a sequential Runner does, seed for seed. Run under -race in CI.
func TestRunnerParallelMatchesSequential(t *testing.T) {
	sc := testScenario(t)
	ctx := context.Background()
	seq, err := Runner{Workers: 1}.Replicate(ctx, sc, 4)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Runner{Workers: 4}.Replicate(ctx, sc, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("parallel summary diverged from sequential:\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestRunnerCompareMatchesSequential covers the comparison path, where
// one pool interleaves both protocols' replications.
func TestRunnerCompareMatchesSequential(t *testing.T) {
	sc := testScenario(t)
	ctx := context.Background()
	seq, err := Runner{Workers: 1}.Compare(ctx, sc, 3)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Runner{Workers: 6}.Compare(ctx, sc, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("parallel comparison diverged from sequential:\nseq: %+v\npar: %+v", seq, par)
	}
	if seq.GLR.Protocol != GLR || seq.Epidemic.Protocol != Epidemic {
		t.Errorf("comparison protocols mislabeled: %v / %v", seq.GLR.Protocol, seq.Epidemic.Protocol)
	}
	if seq.GLR.Results[0].Generated != seq.Epidemic.Results[0].Generated {
		t.Error("protocols must see identical workloads seed-for-seed")
	}
}

// TestRunnerSeedDerivation pins the documented derivation: replication
// r runs with base+r, reproducible by a single Scenario.Run.
func TestRunnerSeedDerivation(t *testing.T) {
	sc := testScenario(t) // base seed 7
	sum, err := Runner{Workers: 2}.Replicate(context.Background(), sc, 3)
	if err != nil {
		t.Fatal(err)
	}
	wantSeeds := []int64{7, 8, 9}
	if !reflect.DeepEqual(sum.Seeds, wantSeeds) {
		t.Fatalf("seeds %v, want %v", sum.Seeds, wantSeeds)
	}
	for i, seed := range sum.Seeds {
		single := testScenario(t, WithSeed(seed))
		res, err := single.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res != sum.Results[i] {
			t.Errorf("replication %d (seed %d) not reproducible standalone:\nrunner: %+v\nsingle: %+v",
				i, seed, sum.Results[i], res)
		}
	}
	if sum.DeliveryRatio.N != 3 {
		t.Errorf("aggregate over %d runs, want 3", sum.DeliveryRatio.N)
	}
}

// TestRunnerCancellation verifies ctx cancellation surfaces instead of
// results.
func TestRunnerCancellation(t *testing.T) {
	sc := testScenario(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := (Runner{Workers: 2}).Replicate(ctx, sc, 4); err == nil {
		t.Error("canceled replication sweep returned no error")
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel2()
	big := testScenario(t, WithNodes(200), WithRegion(3000, 600), WithSimTime(600))
	if _, err := (Runner{Workers: 1}).Replicate(ctx2, big, 2); err == nil {
		t.Error("timed-out replication sweep returned no error")
	}
}

// TestRunnerRejectsBadRuns covers the argument validation.
func TestRunnerRejectsBadRuns(t *testing.T) {
	sc := testScenario(t)
	if _, err := (Runner{}).Replicate(context.Background(), sc, 0); err == nil {
		t.Error("0 replications accepted")
	}
	if _, err := (Runner{}).Compare(context.Background(), sc, -1); err == nil {
		t.Error("negative replications accepted")
	}
	if _, err := (Runner{Confidence: 95}).Replicate(context.Background(), sc, 2); err == nil {
		t.Error("percentage confidence accepted (must be a fraction)")
	}
	if _, err := (Runner{Confidence: -0.5}).Replicate(context.Background(), sc, 2); err == nil {
		t.Error("negative confidence accepted")
	}
}

// TestRunnerParallelSpeedup is the acceptance demonstration: on a
// multi-core machine, a GOMAXPROCS-wide Runner must finish a 4-seed
// 500-node comparison sweep at least twice as fast as a sequential one,
// with identical results. Skipped in -short and on machines without
// enough cores to make the bound physical.
func TestRunnerParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second sweep; skipped in -short")
	}
	procs := runtime.GOMAXPROCS(0)
	if procs < 4 {
		t.Skipf("need ≥4 CPUs for a ≥2x bound, have %d", procs)
	}
	sc, err := NewScenario(
		WithNodes(500),
		WithRange(100),
		WithRegion(4743, 949), // the paper's density and 5:1 aspect at 500 nodes
		WithWorkload(UniformWorkload{Messages: 100, Rate: 2}),
		WithSimTime(240),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const seeds = 4

	start := time.Now()
	seq, err := Runner{Workers: 1}.Compare(ctx, sc, seeds)
	if err != nil {
		t.Fatal(err)
	}
	seqWall := time.Since(start)

	start = time.Now()
	par, err := Runner{Workers: procs}.Compare(ctx, sc, seeds)
	if err != nil {
		t.Fatal(err)
	}
	parWall := time.Since(start)

	if !reflect.DeepEqual(seq, par) {
		t.Errorf("parallel sweep results diverged from sequential")
	}
	speedup := float64(seqWall) / float64(parWall)
	t.Logf("sequential %v, parallel %v on %d procs: %.2fx", seqWall, parWall, procs, speedup)
	if speedup < 2 {
		t.Errorf("parallel speedup %.2fx, want ≥2x (seq %v, par %v, %d procs)",
			speedup, seqWall, parWall, procs)
	}
}
