// Command doccheck enforces the godoc audit: every exported identifier
// in the listed packages must carry a doc comment. It prints one
// vet-style "file:line: identifier" diagnostic per omission and exits
// non-zero if any were found.
//
// Usage:
//
//	doccheck [package-dir ...]   (default: . ./internal/matrix)
//
// The check covers top-level functions, methods with exported
// receivers, types, and const/var declarations (a doc comment on a
// grouped declaration covers the group, matching godoc rendering).
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = []string{".", filepath.Join("internal", "matrix")}
	}
	bad := 0
	for _, dir := range dirs {
		missing, err := checkDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
		for _, m := range missing {
			fmt.Println(m)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d exported identifier(s) missing doc comments\n", bad)
		os.Exit(1)
	}
}

// checkDir parses every non-test Go file in dir and returns one
// "file:line: name" diagnostic per undocumented exported identifier,
// sorted by position.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	report := func(pos token.Pos, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: exported %s is undocumented", p.Filename, p.Line, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || !exportedReceiver(d) {
						continue
					}
					if d.Doc == nil {
						report(d.Pos(), funcLabel(d))
					}
				case *ast.GenDecl:
					checkGenDecl(d, report)
				}
			}
		}
	}
	sort.Strings(missing)
	return missing, nil
}

// exportedReceiver reports whether a method's receiver type is exported
// (true for plain functions).
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

// funcLabel names a function or method for the diagnostic.
func funcLabel(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return "function " + d.Name.Name
	}
	return "method " + d.Name.Name
}

// checkGenDecl audits a type/const/var declaration. A doc comment on
// the declaration covers every spec in its group (godoc renders the
// group under it); otherwise each exported spec needs its own doc or
// line comment.
func checkGenDecl(d *ast.GenDecl, report func(token.Pos, string)) {
	groupDoc := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !groupDoc && s.Doc == nil {
				report(s.Pos(), "type "+s.Name.Name)
			}
		case *ast.ValueSpec:
			for _, name := range s.Names {
				if name.IsExported() && !groupDoc && s.Doc == nil && s.Comment == nil {
					report(name.Pos(), kindOf(d.Tok)+" "+name.Name)
				}
			}
		}
	}
}

// kindOf renders a declaration token for diagnostics.
func kindOf(tok token.Token) string {
	return strings.ToLower(tok.String())
}
